package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"allnn/internal/datagen"
)

func TestRunGeneratesEachKind(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"uniform", "clusters", "skewed", "synthetic", "tac", "fc"} {
		out := filepath.Join(dir, kind+".pts")
		var buf bytes.Buffer
		err := run([]string{"-kind", kind, "-n", "500", "-dim", "3", "-out", out}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(buf.String(), "wrote 500") {
			t.Fatalf("%s: unexpected output %q", kind, buf.String())
		}
		pts, err := datagen.ReadFile(out)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(pts) != 500 {
			t.Fatalf("%s: file holds %d points", kind, len(pts))
		}
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "uniform"}, &buf); err == nil {
		t.Error("expected error without -out")
	}
	if err := run([]string{"-kind", "nope", "-out", filepath.Join(t.TempDir(), "x")}, &buf); err == nil {
		t.Error("expected error for unknown kind")
	}
	if err := run([]string{"-n", "0", "-out", filepath.Join(t.TempDir(), "x")}, &buf); err == nil {
		t.Error("expected error for n=0")
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	a := filepath.Join(dir, "a.pts")
	b := filepath.Join(dir, "b.pts")
	if err := run([]string{"-kind", "tac", "-n", "200", "-seed", "9", "-out", a}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "tac", "-n", "200", "-seed", "9", "-out", b}, &buf); err != nil {
		t.Fatal(err)
	}
	pa, _ := datagen.ReadFile(a)
	pb, _ := datagen.ReadFile(b)
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			t.Fatal("same seed produced different files")
		}
	}
}
