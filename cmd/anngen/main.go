// Command anngen generates the experimental datasets (the GSTD-style
// synthetic workloads and the TAC/FC surrogates) as binary dataset files
// readable by annquery and the benchmark harness.
//
// Examples:
//
//	anngen -kind synthetic -n 500000 -dim 4 -out 500K4D.pts
//	anngen -kind tac -n 700000 -out tac.pts
//	anngen -kind fc  -n 580000 -out fc.pts
//	anngen -kind uniform -n 100000 -dim 2 -extent 1000 -out uni.pts
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"allnn/internal/datagen"
	"allnn/internal/geom"
	"allnn/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anngen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses args and generates a dataset; separated from main for
// testability.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("anngen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "synthetic", "dataset kind: uniform | clusters | skewed | synthetic | tac | fc")
		n        = fs.Int("n", 100000, "number of points")
		dim      = fs.Int("dim", 2, "dimensionality (uniform/clusters/skewed/synthetic)")
		seed     = fs.Int64("seed", 1, "random seed")
		extent   = fs.Float64("extent", 1000, "space extent per dimension (uniform/clusters/skewed)")
		clusters = fs.Int("clusters", 40, "number of clusters (clusters kind)")
		spread   = fs.Float64("spread", 0.02, "cluster spread as a fraction of the extent")
		skew     = fs.Float64("skew", 3, "skew exponent (skewed kind)")
		out      = fs.String("out", "", "output file (required)")
	)
	var prof obs.ProfileFlags
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	stopProf, err := prof.Start(nil)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			log.Printf("profile: %v", perr)
		}
	}()

	var pts []geom.Point
	switch *kind {
	case "uniform":
		pts = datagen.Uniform(*seed, *n, datagen.ScaledBounds(*dim, *extent))
	case "clusters":
		pts = datagen.GaussianClusters(*seed, *n, datagen.ScaledBounds(*dim, *extent), *clusters, *spread)
	case "skewed":
		pts = datagen.Skewed(*seed, *n, datagen.ScaledBounds(*dim, *extent), *skew)
	case "synthetic":
		pts = datagen.Synthetic500K(*seed, *n, *dim)
	case "tac":
		pts = datagen.TACSurrogate(*seed, *n)
	case "fc":
		pts = datagen.FCSurrogate(*seed, *n)
	default:
		return fmt.Errorf("unknown dataset kind %q", *kind)
	}

	if err := datagen.WriteFile(*out, pts); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d %d-dimensional points to %s\n", len(pts), len(pts[0]), *out)
	return nil
}
