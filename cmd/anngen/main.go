// Command anngen generates the experimental datasets (the GSTD-style
// synthetic workloads and the TAC/FC surrogates) as binary dataset files
// readable by annquery and the benchmark harness.
//
// Examples:
//
//	anngen -kind synthetic -n 500000 -dim 4 -out 500K4D.pts
//	anngen -kind tac -n 700000 -out tac.pts
//	anngen -kind fc  -n 580000 -out fc.pts
//	anngen -kind uniform -n 100000 -dim 2 -extent 1000 -out uni.pts
//
// With -shards N the dataset is additionally partitioned into N
// space-filling-curve range shards (per -curve): the main output file
// is written in curve order (the global id order a router reproduces),
// one <base>.shardK<ext> file per shard holds that shard's points, and
// <base>.shardmap.json holds the router topology. Backend addresses can
// be filled in at generation time with -shard-addrs or edited into the
// JSON afterwards:
//
//	anngen -kind clusters -n 100000 -out pts.pts -shards 4 -curve hilbert \
//	    -shard-addrs :4321,:4322,:4323,:4324
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"allnn/internal/curve"
	"allnn/internal/datagen"
	"allnn/internal/geom"
	"allnn/internal/obs"
	"allnn/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anngen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses args and generates a dataset; separated from main for
// testability.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("anngen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "synthetic", "dataset kind: uniform | clusters | skewed | synthetic | tac | fc")
		n        = fs.Int("n", 100000, "number of points")
		dim      = fs.Int("dim", 2, "dimensionality (uniform/clusters/skewed/synthetic)")
		seed     = fs.Int64("seed", 1, "random seed")
		extent   = fs.Float64("extent", 1000, "space extent per dimension (uniform/clusters/skewed)")
		clusters = fs.Int("clusters", 40, "number of clusters (clusters kind)")
		spread   = fs.Float64("spread", 0.02, "cluster spread as a fraction of the extent")
		skew     = fs.Float64("skew", 3, "skew exponent (skewed kind)")
		out      = fs.String("out", "", "output file (required)")
		shards   = fs.Int("shards", 0, "partition into this many curve-range shards (0: single file, no shard map)")
		curveStr = fs.String("curve", "hilbert", "partitioning curve: zorder | hilbert (with -shards)")
		addrsStr = fs.String("shard-addrs", "", "comma-separated backend addresses for the shard map (with -shards; may be left blank and edited into the JSON)")
	)
	var prof obs.ProfileFlags
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	stopProf, err := prof.Start(nil)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			log.Printf("profile: %v", perr)
		}
	}()

	var pts []geom.Point
	switch *kind {
	case "uniform":
		pts = datagen.Uniform(*seed, *n, datagen.ScaledBounds(*dim, *extent))
	case "clusters":
		pts = datagen.GaussianClusters(*seed, *n, datagen.ScaledBounds(*dim, *extent), *clusters, *spread)
	case "skewed":
		pts = datagen.Skewed(*seed, *n, datagen.ScaledBounds(*dim, *extent), *skew)
	case "synthetic":
		pts = datagen.Synthetic500K(*seed, *n, *dim)
	case "tac":
		pts = datagen.TACSurrogate(*seed, *n)
	case "fc":
		pts = datagen.FCSurrogate(*seed, *n)
	default:
		return fmt.Errorf("unknown dataset kind %q", *kind)
	}

	if *shards > 0 {
		return writeSharded(stdout, *out, pts, *shards, *curveStr, *addrsStr)
	}

	if err := datagen.WriteFile(*out, pts); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d %d-dimensional points to %s\n", len(pts), len(pts[0]), *out)
	return nil
}

// writeSharded partitions pts by curve range and writes the
// curve-ordered full dataset, the per-shard datasets, and the shard
// map. The full file's point order is the concatenation of the shards
// in key order — exactly the global id order a router over the shards
// produces, so it doubles as the single-node parity baseline.
func writeSharded(stdout io.Writer, out string, pts []geom.Point, n int, curveStr, addrsStr string) error {
	kind, err := curve.ParseKind(curveStr)
	if err != nil {
		return err
	}
	part, err := curve.Partition(pts, n, kind)
	if err != nil {
		return err
	}

	ext := filepath.Ext(out)
	base := strings.TrimSuffix(out, ext)
	var addrs []string
	if addrsStr != "" {
		addrs = strings.Split(addrsStr, ",")
		if len(addrs) != len(part.Shards) {
			return fmt.Errorf("-shard-addrs names %d backends but the partitioning produced %d shards", len(addrs), len(part.Shards))
		}
	}

	ordered := make([]geom.Point, 0, len(pts))
	for i, s := range part.Shards {
		shardPts := make([]geom.Point, len(s.Points))
		for j, idx := range s.Points {
			shardPts[j] = pts[idx]
		}
		ordered = append(ordered, shardPts...)
		path := fmt.Sprintf("%s.shard%d%s", base, i, ext)
		if err := datagen.WriteFile(path, shardPts); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote shard %d: %d points, keys [%d, %d] to %s\n",
			i, len(shardPts), s.LoKey, s.HiKey, path)
	}
	if err := datagen.WriteFile(out, ordered); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d %d-dimensional points (curve-ordered) to %s\n", len(ordered), len(ordered[0]), out)

	name := filepath.Base(base)
	m := router.MapFromPartitioning(name, part, addrs)
	mapPath := base + ".shardmap.json"
	if err := m.Save(mapPath); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote shard map (%d shards, %s curve) to %s\n", len(m.Shards), m.Curve, mapPath)
	return nil
}
