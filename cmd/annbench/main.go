// Command annbench regenerates the paper's evaluation tables and figures.
//
// Examples:
//
//	annbench -exp fig3a              # one experiment at the default scale
//	annbench -all -scale 0.1         # the full evaluation at 10% cardinality
//	annbench -exp fig3b -latency 2ms # different modeled disk latency
//
// The -scale flag multiplies the paper's dataset cardinalities (500K-700K
// points); 1.0 reproduces the full sizes but takes correspondingly long.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"allnn/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annbench: ")
	var (
		exp     = flag.String("exp", "", "experiment to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiments and exit")
		scale   = flag.Float64("scale", 0.05, "fraction of the paper's dataset cardinalities")
		latency = flag.Duration("latency", time.Millisecond, "modeled time per page transfer")
		pool    = flag.Int("pool", 512*1024, "buffer pool size in bytes (experiments that vary it ignore this)")
		seed    = flag.Int64("seed", 1, "dataset generator seed")
		par     = flag.Int("parallelism", 0, "max workers for the parallel scaling experiment (0 = GOMAXPROCS)")
		jsonOut = flag.String("json", "", "write a machine-readable summary here (parallel and nodecache experiments)")
		ncBytes = flag.Int64("nodecache-bytes", 0, "decoded-node cache budget for the nodecache experiment (0 = default, <0 = disabled)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return
	}

	cfg := bench.Config{
		Scale:          *scale,
		PageLatency:    *latency,
		PoolBytes:      *pool,
		Seed:           *seed,
		Out:            os.Stdout,
		Parallelism:    *par,
		JSONPath:       *jsonOut,
		NodeCacheBytes: *ncBytes,
	}

	switch {
	case *all:
		for _, e := range bench.Experiments() {
			fmt.Printf("\n=== %s: %s ===\n", e.Name, e.Description)
			start := time.Now()
			if err := e.Run(cfg); err != nil {
				log.Fatalf("%s: %v", e.Name, err)
			}
			fmt.Printf("(%s finished in %s)\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
	case *exp != "":
		e, ok := bench.Find(*exp)
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", *exp)
		}
		if err := e.Run(cfg); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
