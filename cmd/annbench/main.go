// Command annbench regenerates the paper's evaluation tables and figures.
//
// Examples:
//
//	annbench -exp fig3a              # one experiment at the default scale
//	annbench -all -scale 0.1         # the full evaluation at 10% cardinality
//	annbench -exp fig3b -latency 2ms # different modeled disk latency
//	annbench -exp mba -trace out.json -json report.json
//	annbench -all -metrics-addr :9100 -cpuprofile cpu.pprof
//
// The -scale flag multiplies the paper's dataset cardinalities (500K-700K
// points); 1.0 reproduces the full sizes but takes correspondingly long.
// A progress heartbeat is printed to stderr after each measurement;
// -quiet suppresses it. -trace writes a Chrome trace-event JSON of the
// traced experiment ("mba"), loadable at https://ui.perfetto.dev;
// -metrics-addr serves the live metrics registry (plus /debug/pprof/)
// over HTTP while the experiments run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"allnn/internal/bench"
	"allnn/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annbench: ")
	var (
		exp         = flag.String("exp", "", "experiment to run (see -list)")
		all         = flag.Bool("all", false, "run every experiment")
		list        = flag.Bool("list", false, "list experiments and exit")
		scale       = flag.Float64("scale", 0.05, "fraction of the paper's dataset cardinalities")
		latency     = flag.Duration("latency", time.Millisecond, "modeled time per page transfer")
		pool        = flag.Int("pool", 512*1024, "buffer pool size in bytes (experiments that vary it ignore this)")
		seed        = flag.Int64("seed", 1, "dataset generator seed")
		par         = flag.Int("parallelism", 0, "max workers for the parallel scaling experiment (0 = GOMAXPROCS)")
		minSpeedup4 = flag.Float64("min-speedup4", 0, "fail the parallel experiment unless 4 workers reach this speedup over serial (0 = no gate; skipped when the host has fewer than 4 usable CPUs)")
		minRecall   = flag.Float64("min-recall", 0, "fail the approx experiment unless some approximate run reaches this measured recall (0 = no gate)")
		jsonOut     = flag.String("json", "", "write a machine-readable summary here (parallel, nodecache and mba experiments)")
		ncBytes     = flag.Int64("nodecache-bytes", 0, "decoded-node cache budget for the nodecache experiment (0 = default, <0 = disabled)")
		quiet       = flag.Bool("quiet", false, "suppress the per-measurement progress heartbeat on stderr")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON of the traced experiment here (mba experiment; open at ui.perfetto.dev)")
		metricsAddr = flag.String("metrics-addr", "", "serve the metrics registry as JSON (and /debug/pprof/) on this address")
	)
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Description)
		}
		return
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		bench.DeclareMetricFamilies(reg)
		addr, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "annbench: metrics on http://%s/metrics\n", addr)
	}
	stopProf, err := prof.Start(reg)
	if err != nil {
		log.Fatal(err)
	}
	fail := func(format string, args ...any) {
		_ = stopProf()
		log.Fatalf(format, args...)
	}

	cfg := bench.Config{
		Scale:          *scale,
		PageLatency:    *latency,
		PoolBytes:      *pool,
		Seed:           *seed,
		Out:            os.Stdout,
		Parallelism:    *par,
		JSONPath:       *jsonOut,
		NodeCacheBytes: *ncBytes,
		TracePath:      *tracePath,
		Metrics:        reg,
		MinSpeedup4:    *minSpeedup4,
		MinRecall:      *minRecall,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	switch {
	case *all:
		for _, e := range bench.Experiments() {
			fmt.Printf("\n=== %s: %s ===\n", e.Name, e.Description)
			start := time.Now()
			if err := e.Run(cfg); err != nil {
				fail("%s: %v", e.Name, err)
			}
			fmt.Printf("(%s finished in %s)\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
	case *exp != "":
		e, ok := bench.Find(*exp)
		if !ok {
			fail("unknown experiment %q (use -list)", *exp)
		}
		if err := e.Run(cfg); err != nil {
			fail("%v", err)
		}
	default:
		_ = stopProf()
		flag.Usage()
		os.Exit(2)
	}
	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
}
