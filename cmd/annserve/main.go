// Command annserve is the ANN query daemon: it keeps a catalog of
// disk-resident indexes hot behind one buffer pool each and serves
// point kNN, batched kNN, range, within-distance, closest-pairs, and
// streamed ANN/AkNN join queries over the annserve wire protocol.
//
// Examples:
//
//	annserve -addr :4321 -index pts=catalog.pages
//	annserve -addr :4321 -index r=r.pages -index s=s.pages -pprof-addr :6060
//
// Indexes may also be opened and closed at runtime through the client
// (or annquery -remote). SIGTERM or SIGINT drains gracefully: in-flight
// queries finish, new ones are refused, then the process exits.
//
// -pprof-addr serves /metrics (the server's obs registry: in-flight
// gauge, queue depth, per-op latency histograms, bytes in/out, engine
// counters) alongside /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"allnn/ann"
	"allnn/internal/obs"
	"allnn/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annserve: ")
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		log.Fatal(err)
	}
}

// indexFlags collects repeated -index name=path mounts.
type indexFlags []struct{ name, path string }

func (f *indexFlags) String() string { return fmt.Sprintf("%d indexes", len(*f)) }

func (f *indexFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*f = append(*f, struct{ name, path string }{name, path})
	return nil
}

// run starts the daemon and blocks until a shutdown signal drains it;
// separated from main for testability. If ready is non-nil it receives
// the bound listen address once the server is accepting.
func run(args []string, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("annserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":4321", "TCP listen address")
		indexes      indexFlags
		poolBytes    = fs.Int("pool-bytes", 64<<20, "buffer-pool bytes per opened index")
		maxInFlight  = fs.Int("max-inflight", 0, "max concurrently executing queries (0: GOMAXPROCS)")
		maxQueue     = fs.Int("max-queue", 0, "max queries queued for a slot (0: 4x max-inflight)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight queries before cancelling them")
		tracePath    = fs.String("trace", "", "write request trace spans as Chrome trace-event JSON here on exit")
		slowThresh   = fs.Duration("slow-threshold", 0, "record requests at least this slow in the /debug/slow ring (0: disabled)")
		slowLogSize  = fs.Int("slow-log", 128, "slow-query ring capacity")
		accessLog    = fs.String("access-log", "", "append one JSON line per finished request to this file (- for stderr)")
		logLevel     = fs.String("log-level", "info", "minimum log severity: debug, info, warn or error")
	)
	fs.Var(&indexes, "index", "mount an index file into the catalog as name=path (repeatable)")
	var prof obs.ProfileFlags
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var level server.LogLevel
	switch *logLevel {
	case "debug":
		level = server.LevelDebug
	case "info":
		level = server.LevelInfo
	case "warn":
		level = server.LevelWarn
	case "error":
		level = server.LevelError
	default:
		return fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", *logLevel)
	}

	var accessW io.Writer
	if *accessLog == "-" {
		accessW = stderr
	} else if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("access log: %v", err)
		}
		defer f.Close()
		accessW = f
	}

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}

	srv := server.New(server.Config{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		IndexBufferBytes: *poolBytes,
		Metrics:          reg,
		Tracer:           tracer,
		SlowThreshold:    *slowThresh,
		SlowLogSize:      *slowLogSize,
		AccessLog:        accessW,
		LogLevel:         level,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "annserve: "+format+"\n", a...)
		},
	})
	defer srv.Catalog().CloseAll()

	stopProf, err := prof.Start(reg, srv.DebugRoutes()...)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(stderr, "annserve: profile: %v\n", perr)
		}
	}()
	if prof.BoundAddr != "" {
		fmt.Fprintf(stderr, "annserve: obs endpoints on http://%s/ (metrics, metrics/prom, debug/slow, debug/requests, debug/pprof)\n", prof.BoundAddr)
	}
	for _, m := range indexes {
		ix, err := srv.Catalog().Open(m.name, m.path, ann.IndexConfig{BufferPoolBytes: *poolBytes})
		if err != nil {
			return fmt.Errorf("mounting %s: %v", m.name, err)
		}
		fmt.Fprintf(stderr, "annserve: mounted %s: %s, %d points, dim %d\n",
			m.name, ix.Kind(), ix.Len(), ix.Dim())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "annserve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "annserve: %v: draining (timeout %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(stderr, "annserve: drain: %v (in-flight queries were cancelled)\n", err)
		} else {
			fmt.Fprintf(stderr, "annserve: drained cleanly\n")
		}
		if err := <-serveDone; err != nil {
			return err
		}
	case err := <-serveDone:
		if err != nil {
			return err
		}
	}

	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
