package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"allnn/ann"
	"allnn/ann/client"
)

// TestServeSmoke is the `make serve-smoke` CI check: start the daemon
// on a temp index, run a batch kNN and a streamed self-AkNN through the
// client, deliver a real SIGTERM, and assert a clean drain.
func TestServeSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]ann.Point, 1500)
	for i := range pts {
		pts[i] = ann.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	pageFile := filepath.Join(t.TempDir(), "pts.pages")
	ix, err := ann.BuildIndex(pts, ann.IndexConfig{PageFile: pageFile})
	if err != nil {
		t.Fatal(err)
	}
	wantSelf, err := ann.SelfAllKNearestNeighbors(ix, 4, ann.QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantKNN, err := ix.NearestNeighbors(pts[7], 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	var stderrMu sync.Mutex
	safeStderr := writerFunc(func(p []byte) (int, error) {
		stderrMu.Lock()
		defer stderrMu.Unlock()
		return stderr.Write(p)
	})

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-index", "pts=" + pageFile,
			"-drain-timeout", "30s",
		}, safeStderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Batch kNN through the client.
	got, err := cl.BatchKNN(ctx, "pts", []ann.Point{pts[7]}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0].Neighbors, wantKNN) {
		t.Fatalf("served batch kNN diverges from direct call")
	}

	// Streamed self-AkNN through the client.
	st, err := cl.SelfJoin(ctx, "pts", 4)
	if err != nil {
		t.Fatal(err)
	}
	var gotSelf []ann.Result
	for st.Next() {
		gotSelf = append(gotSelf, st.Result())
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSelf, wantSelf) {
		t.Fatalf("served self-AkNN diverges from direct call (%d vs %d results)", len(gotSelf), len(wantSelf))
	}

	// SIGTERM → clean drain.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	stderrMu.Lock()
	log := stderr.String()
	stderrMu.Unlock()
	if !strings.Contains(log, "drained cleanly") {
		t.Fatalf("drain was not clean:\n%s", log)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestObsServeSmoke is the `make obs-serve-smoke` CI check: start the
// daemon with the full observability surface enabled, run a traced
// WantReport join remotely, and assert the report comes back, the slow
// ring and in-flight table serve JSON, the Prometheus exposition
// carries the per-op quantiles, and the access log captured the
// request — then SIGTERM-drain cleanly.
func TestObsServeSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := make([]ann.Point, 1200)
	for i := range pts {
		pts[i] = ann.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	dir := t.TempDir()
	pageFile := filepath.Join(dir, "pts.pages")
	ix, err := ann.BuildIndex(pts, ann.IndexConfig{PageFile: pageFile})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	accessPath := filepath.Join(dir, "access.jsonl")

	var stderr bytes.Buffer
	var stderrMu sync.Mutex
	safeStderr := writerFunc(func(p []byte) (int, error) {
		stderrMu.Lock()
		defer stderrMu.Unlock()
		return stderr.Write(p)
	})
	readStderr := func() string {
		stderrMu.Lock()
		defer stderrMu.Unlock()
		return stderr.String()
	}

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-index", "pts=" + pageFile,
			"-pprof-addr", "127.0.0.1:0",
			"-slow-threshold", "1ns",
			"-access-log", accessPath,
			"-drain-timeout", "30s",
		}, safeStderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// The daemon announces its debug address on stderr; it starts the
	// obs server before listening, so the line is there by now.
	var obsAddr string
	for _, line := range strings.Split(readStderr(), "\n") {
		if rest, ok := strings.CutPrefix(line, "annserve: obs endpoints on http://"); ok {
			obsAddr = rest[:strings.IndexByte(rest, '/')]
		}
	}
	if obsAddr == "" {
		t.Fatalf("no obs-endpoints line on stderr:\n%s", readStderr())
	}

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// A traced, report-carrying join end to end.
	st, err := cl.SelfJoinApprox(ctx, "pts", 3,
		client.JoinOptions{TraceID: "smoke-join-1", WantReport: true})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for st.Next() {
		count++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if count != len(pts) {
		t.Fatalf("join returned %d results, want %d", count, len(pts))
	}
	rep := st.Report()
	if rep == nil {
		t.Fatal("WantReport join returned no report")
	}
	if rep.TraceID != "smoke-join-1" {
		t.Errorf("report trace id %q, want smoke-join-1", rep.TraceID)
	}
	if rep.Engine.Results != uint64(count) || rep.EngineTime <= 0 || rep.BytesOut == 0 {
		t.Errorf("report not populated: %+v", rep)
	}

	getBody := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + obsAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(b)
	}

	// The slow ring captured the join (threshold 1ns) under its trace
	// id. The server records the request after the client sees the end
	// frame, so poll briefly.
	var slow struct {
		Total   uint64 `json:"total"`
		Entries []struct {
			TraceID string `json:"trace_id"`
			Op      string `json:"op"`
		} `json:"entries"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := json.Unmarshal([]byte(getBody("/debug/slow")), &slow); err != nil {
			t.Fatal(err)
		}
		if slow.Total > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	found := false
	for _, e := range slow.Entries {
		if e.TraceID == "smoke-join-1" && e.Op == "join" {
			found = true
		}
	}
	if !found {
		t.Errorf("slow ring did not capture the traced join: %+v", slow)
	}

	// The in-flight table serves valid JSON (idle by now).
	var live struct {
		Count    int   `json:"count"`
		Requests []any `json:"requests"`
	}
	if err := json.Unmarshal([]byte(getBody("/debug/requests")), &live); err != nil {
		t.Fatal(err)
	}

	// Prometheus exposition with the per-op quantile gauges.
	prom := getBody("/metrics/prom")
	for _, want := range []string{
		"server_join_latency_ns_p50",
		"server_join_latency_ns_bucket",
		"server_requests",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %s", want)
		}
	}

	// SIGTERM → clean drain.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(readStderr(), "drained cleanly") {
		t.Fatalf("drain was not clean:\n%s", readStderr())
	}

	// The access log on disk holds one parseable JSONL record per
	// request, the traced join among them.
	raw, err := os.ReadFile(accessPath)
	if err != nil {
		t.Fatal(err)
	}
	foundAccess := false
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct {
			TraceID string `json:"trace_id"`
			Op      string `json:"op"`
			Latency int64  `json:"latency_ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad access log line %q: %v", line, err)
		}
		if rec.TraceID == "smoke-join-1" && rec.Op == "join" && rec.Latency > 0 {
			foundAccess = true
		}
	}
	if !foundAccess {
		t.Errorf("access log missing the traced join:\n%s", raw)
	}
}

// TestFlagValidation pins the daemon's argument errors.
func TestFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-index", "nopath"}, &stderr, nil); err == nil {
		t.Error("malformed -index accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-index", "x=" + filepath.Join(t.TempDir(), "missing.pages")}, &stderr, nil); err == nil {
		t.Error("missing index file accepted")
	}
}
