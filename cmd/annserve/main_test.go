package main

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"allnn/ann"
	"allnn/ann/client"
)

// TestServeSmoke is the `make serve-smoke` CI check: start the daemon
// on a temp index, run a batch kNN and a streamed self-AkNN through the
// client, deliver a real SIGTERM, and assert a clean drain.
func TestServeSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]ann.Point, 1500)
	for i := range pts {
		pts[i] = ann.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	pageFile := filepath.Join(t.TempDir(), "pts.pages")
	ix, err := ann.BuildIndex(pts, ann.IndexConfig{PageFile: pageFile})
	if err != nil {
		t.Fatal(err)
	}
	wantSelf, err := ann.SelfAllKNearestNeighbors(ix, 4, ann.QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantKNN, err := ix.NearestNeighbors(pts[7], 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	var stderrMu sync.Mutex
	safeStderr := writerFunc(func(p []byte) (int, error) {
		stderrMu.Lock()
		defer stderrMu.Unlock()
		return stderr.Write(p)
	})

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-index", "pts=" + pageFile,
			"-drain-timeout", "30s",
		}, safeStderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Batch kNN through the client.
	got, err := cl.BatchKNN(ctx, "pts", []ann.Point{pts[7]}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0].Neighbors, wantKNN) {
		t.Fatalf("served batch kNN diverges from direct call")
	}

	// Streamed self-AkNN through the client.
	st, err := cl.SelfJoin(ctx, "pts", 4)
	if err != nil {
		t.Fatal(err)
	}
	var gotSelf []ann.Result
	for st.Next() {
		gotSelf = append(gotSelf, st.Result())
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSelf, wantSelf) {
		t.Fatalf("served self-AkNN diverges from direct call (%d vs %d results)", len(gotSelf), len(wantSelf))
	}

	// SIGTERM → clean drain.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	stderrMu.Lock()
	log := stderr.String()
	stderrMu.Unlock()
	if !strings.Contains(log, "drained cleanly") {
		t.Fatalf("drain was not clean:\n%s", log)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestFlagValidation pins the daemon's argument errors.
func TestFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-index", "nopath"}, &stderr, nil); err == nil {
		t.Error("malformed -index accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-index", "x=" + filepath.Join(t.TempDir(), "missing.pages")}, &stderr, nil); err == nil {
		t.Error("missing index file accepted")
	}
}
