package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"allnn/ann"
	"allnn/internal/datagen"
	"allnn/internal/geom"
	"allnn/internal/server"
)

func writeDataset(t *testing.T, name string, pts []geom.Point) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := datagen.WriteFile(path, pts); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCrossJoin(t *testing.T) {
	r := writeDataset(t, "r.pts", []geom.Point{{0, 0}, {10, 10}})
	s := writeDataset(t, "s.pts", []geom.Point{{1, 1}, {9, 9}, {50, 50}})
	var out, errBuf bytes.Buffer
	if err := run([]string{"-r", r, "-s", s, "-k", "1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d result lines, want 2: %q", len(lines), out.String())
	}
	// Query 0 at (0,0) must match target 0 at (1,1).
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "0\t0:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected query 0 -> target 0 in output: %q", out.String())
	}
	if !strings.Contains(errBuf.String(), "2 results") {
		t.Fatalf("summary missing: %q", errBuf.String())
	}
}

func TestRunSelfJoinAllIndexesAndMetrics(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {5, 5}, {6, 6}}
	r := writeDataset(t, "r.pts", pts)
	for _, idx := range []string{"mbrqt", "rstar"} {
		for _, metric := range []string{"nxndist", "maxmax"} {
			var out, errBuf bytes.Buffer
			err := run([]string{"-r", r, "-self", "-k", "2", "-index", idx, "-metric", metric}, &out, &errBuf)
			if err != nil {
				t.Fatalf("%s/%s: %v", idx, metric, err)
			}
			lines := strings.Split(strings.TrimSpace(out.String()), "\n")
			if len(lines) != 4 {
				t.Fatalf("%s/%s: %d lines", idx, metric, len(lines))
			}
			// Each line: id + 2 neighbors.
			for _, l := range lines {
				if len(strings.Split(l, "\t")) != 3 {
					t.Fatalf("%s/%s: malformed line %q", idx, metric, l)
				}
			}
		}
	}
}

func TestRunQuiet(t *testing.T) {
	r := writeDataset(t, "r.pts", []geom.Point{{0, 0}, {1, 1}})
	var out, errBuf bytes.Buffer
	if err := run([]string{"-r", r, "-self", "-quiet"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("quiet mode still printed: %q", out.String())
	}
}

// TestRunPagefilePersistAndReopen builds an index through -r-pagefile,
// then reruns from the page file alone and expects identical output.
func TestRunPagefilePersistAndReopen(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {5, 5}, {6, 6}, {2, 3}}
	r := writeDataset(t, "r.pts", pts)
	page := filepath.Join(t.TempDir(), "r.pages")

	var built, errBuf bytes.Buffer
	if err := run([]string{"-r", r, "-r-pagefile", page, "-self", "-k", "2"}, &built, &errBuf); err != nil {
		t.Fatal(err)
	}
	var reopened bytes.Buffer
	if err := run([]string{"-r-pagefile", page, "-self", "-k", "2"}, &reopened, &errBuf); err != nil {
		t.Fatal(err)
	}
	if built.String() != reopened.String() {
		t.Fatalf("reopened page file diverges from build:\nbuilt:    %q\nreopened: %q",
			built.String(), reopened.String())
	}
	if built.Len() == 0 {
		t.Fatal("no output produced")
	}
}

// TestRunCleanErrors pins the one-line (no stack trace) failure mode
// for missing files, garbage page files, and corrupt dataset headers.
func TestRunCleanErrors(t *testing.T) {
	var out, errBuf bytes.Buffer

	// Missing page file.
	err := run([]string{"-r-pagefile", filepath.Join(t.TempDir(), "missing.pages"), "-self"}, &out, &errBuf)
	if err == nil {
		t.Fatal("missing page file accepted")
	}
	assertCleanError(t, err)

	// Garbage page file: must fail the header check, not crash.
	garbage := filepath.Join(t.TempDir(), "garbage.pages")
	if werr := os.WriteFile(garbage, bytes.Repeat([]byte{0xAB}, 16384), 0o644); werr != nil {
		t.Fatal(werr)
	}
	err = run([]string{"-r-pagefile", garbage, "-self"}, &out, &errBuf)
	if err == nil {
		t.Fatal("garbage page file accepted")
	}
	assertCleanError(t, err)

	// Dataset with a corrupt count header (declares far more points than
	// the file holds): clean error, not an allocation panic.
	r := writeDataset(t, "r.pts", []geom.Point{{0, 0}, {1, 1}})
	data, rerr := os.ReadFile(r)
	if rerr != nil {
		t.Fatal(rerr)
	}
	binary.LittleEndian.PutUint64(data[12:], 1<<40)
	if werr := os.WriteFile(r, data, 0o644); werr != nil {
		t.Fatal(werr)
	}
	err = run([]string{"-r", r, "-self"}, &out, &errBuf)
	if err == nil {
		t.Fatal("corrupt dataset header accepted")
	}
	assertCleanError(t, err)
	if !strings.Contains(err.Error(), "declares") {
		t.Fatalf("corrupt-header error should name the bad count: %v", err)
	}
}

func assertCleanError(t *testing.T, err error) {
	t.Helper()
	msg := err.Error()
	if strings.Contains(msg, "\n") || strings.Contains(msg, "goroutine") {
		t.Fatalf("error is not a clean single line: %q", msg)
	}
}

// TestRunRemote starts an in-process annserve and checks that
// -remote produces byte-identical output to the local path.
func TestRunRemote(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {5, 5}, {6, 6}, {2, 3}, {7, 2}}
	r := writeDataset(t, "r.pts", pts)

	// Local baseline.
	var localOut, errBuf bytes.Buffer
	if err := run([]string{"-r", r, "-self", "-k", "2"}, &localOut, &errBuf); err != nil {
		t.Fatal(err)
	}

	// Served copy of the same points.
	annPts := make([]ann.Point, len(pts))
	for i, p := range pts {
		annPts[i] = ann.Point(p)
	}
	ix, err := ann.BuildIndex(annPts, ann.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{})
	if err := srv.Catalog().Add("pts", ix); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
		srv.Catalog().CloseAll()
	})

	var remoteOut bytes.Buffer
	addr := ln.Addr().String()
	if err := run([]string{"-remote", addr, "-r", "pts", "-self", "-k", "2"}, &remoteOut, &errBuf); err != nil {
		t.Fatal(err)
	}
	if remoteOut.String() != localOut.String() {
		t.Fatalf("remote output diverges from local:\nlocal:  %q\nremote: %q",
			localOut.String(), remoteOut.String())
	}

	// Unknown catalog name: clean one-line error.
	err = run([]string{"-remote", addr, "-r", "nope", "-self"}, &remoteOut, &errBuf)
	if err == nil {
		t.Fatal("unknown catalog index accepted")
	}
	assertCleanError(t, err)

	// Remote argument validation.
	if err := run([]string{"-remote", addr, "-self"}, &remoteOut, &errBuf); err == nil {
		t.Error("expected error without -r in remote mode")
	}
	if err := run([]string{"-remote", addr, "-r", "pts"}, &remoteOut, &errBuf); err == nil {
		t.Error("expected error without -s or -self in remote mode")
	}
}

func TestRunValidation(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{}, &out, &errBuf); err == nil {
		t.Error("expected error without -r")
	}
	r := writeDataset(t, "r.pts", []geom.Point{{0, 0}})
	if err := run([]string{"-r", r}, &out, &errBuf); err == nil {
		t.Error("expected error without -s or -self")
	}
	if err := run([]string{"-r", r, "-self", "-index", "btree"}, &out, &errBuf); err == nil {
		t.Error("expected error for unknown index")
	}
	if err := run([]string{"-r", r, "-self", "-metric", "euclid"}, &out, &errBuf); err == nil {
		t.Error("expected error for unknown metric")
	}
	if err := run([]string{"-r", "/does/not/exist", "-self"}, &out, &errBuf); err == nil {
		t.Error("expected error for missing file")
	}
}
