package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"allnn/internal/datagen"
	"allnn/internal/geom"
)

func writeDataset(t *testing.T, name string, pts []geom.Point) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := datagen.WriteFile(path, pts); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCrossJoin(t *testing.T) {
	r := writeDataset(t, "r.pts", []geom.Point{{0, 0}, {10, 10}})
	s := writeDataset(t, "s.pts", []geom.Point{{1, 1}, {9, 9}, {50, 50}})
	var out, errBuf bytes.Buffer
	if err := run([]string{"-r", r, "-s", s, "-k", "1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d result lines, want 2: %q", len(lines), out.String())
	}
	// Query 0 at (0,0) must match target 0 at (1,1).
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "0\t0:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected query 0 -> target 0 in output: %q", out.String())
	}
	if !strings.Contains(errBuf.String(), "2 results") {
		t.Fatalf("summary missing: %q", errBuf.String())
	}
}

func TestRunSelfJoinAllIndexesAndMetrics(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {5, 5}, {6, 6}}
	r := writeDataset(t, "r.pts", pts)
	for _, idx := range []string{"mbrqt", "rstar"} {
		for _, metric := range []string{"nxndist", "maxmax"} {
			var out, errBuf bytes.Buffer
			err := run([]string{"-r", r, "-self", "-k", "2", "-index", idx, "-metric", metric}, &out, &errBuf)
			if err != nil {
				t.Fatalf("%s/%s: %v", idx, metric, err)
			}
			lines := strings.Split(strings.TrimSpace(out.String()), "\n")
			if len(lines) != 4 {
				t.Fatalf("%s/%s: %d lines", idx, metric, len(lines))
			}
			// Each line: id + 2 neighbors.
			for _, l := range lines {
				if len(strings.Split(l, "\t")) != 3 {
					t.Fatalf("%s/%s: malformed line %q", idx, metric, l)
				}
			}
		}
	}
}

func TestRunQuiet(t *testing.T) {
	r := writeDataset(t, "r.pts", []geom.Point{{0, 0}, {1, 1}})
	var out, errBuf bytes.Buffer
	if err := run([]string{"-r", r, "-self", "-quiet"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("quiet mode still printed: %q", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{}, &out, &errBuf); err == nil {
		t.Error("expected error without -r")
	}
	r := writeDataset(t, "r.pts", []geom.Point{{0, 0}})
	if err := run([]string{"-r", r}, &out, &errBuf); err == nil {
		t.Error("expected error without -s or -self")
	}
	if err := run([]string{"-r", r, "-self", "-index", "btree"}, &out, &errBuf); err == nil {
		t.Error("expected error for unknown index")
	}
	if err := run([]string{"-r", r, "-self", "-metric", "euclid"}, &out, &errBuf); err == nil {
		t.Error("expected error for unknown metric")
	}
	if err := run([]string{"-r", "/does/not/exist", "-self"}, &out, &errBuf); err == nil {
		t.Error("expected error for missing file")
	}
}
