// Command annquery runs an ANN or AkNN query over dataset files produced
// by anngen, printing one line per query point.
//
// Examples:
//
//	annquery -r queries.pts -s targets.pts -k 1
//	annquery -r catalog.pts -self -k 5 -index rstar -metric maxmax
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"allnn/ann"
	"allnn/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annquery: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run parses args and executes the query; separated from main for
// testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("annquery", flag.ContinueOnError)
	var (
		rPath   = fs.String("r", "", "query dataset file (required)")
		sPath   = fs.String("s", "", "target dataset file (defaults to -r with -self)")
		selfQ   = fs.Bool("self", false, "self-join: exclude each point's own pairing")
		k       = fs.Int("k", 1, "neighbors per query point")
		kindStr = fs.String("index", "mbrqt", "index structure: mbrqt | rstar")
		metric  = fs.String("metric", "nxndist", "pruning metric: nxndist | maxmax")
		quiet   = fs.Bool("quiet", false, "suppress per-point output; print only the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rPath == "" {
		return fmt.Errorf("-r is required")
	}
	if *sPath == "" {
		if !*selfQ {
			return fmt.Errorf("either -s or -self is required")
		}
		*sPath = *rPath
	}

	cfg := ann.IndexConfig{}
	switch *kindStr {
	case "mbrqt":
		cfg.Kind = ann.MBRQT
	case "rstar":
		cfg.Kind = ann.RStar
	default:
		return fmt.Errorf("unknown index kind %q", *kindStr)
	}
	qcfg := ann.QueryConfig{}
	switch *metric {
	case "nxndist":
		qcfg.Metric = ann.NXNDist
	case "maxmax":
		qcfg.Metric = ann.MaxMaxDist
	default:
		return fmt.Errorf("unknown metric %q", *metric)
	}

	rRaw, err := datagen.ReadFile(*rPath)
	if err != nil {
		return err
	}
	rPts := make([]ann.Point, len(rRaw))
	for i, p := range rRaw {
		rPts[i] = ann.Point(p)
	}

	buildStart := time.Now()
	rIx, err := ann.BuildIndex(rPts, cfg)
	if err != nil {
		return err
	}
	sIx := rIx
	if *sPath != *rPath {
		sRaw, err := datagen.ReadFile(*sPath)
		if err != nil {
			return err
		}
		sPts := make([]ann.Point, len(sRaw))
		for i, p := range sRaw {
			sPts[i] = ann.Point(p)
		}
		sIx, err = ann.BuildIndex(sPts, cfg)
		if err != nil {
			return err
		}
	}
	buildTime := time.Since(buildStart)

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	queryStart := time.Now()
	count := 0
	emit := func(res ann.Result) error {
		count++
		if *quiet {
			return nil
		}
		fmt.Fprintf(w, "%d", res.ID)
		for _, nn := range res.Neighbors {
			fmt.Fprintf(w, "\t%d:%.6g", nn.ID, nn.Dist)
		}
		fmt.Fprintln(w)
		return nil
	}
	if *selfQ && sIx == rIx {
		results, err := ann.SelfAllKNearestNeighbors(rIx, *k, qcfg)
		if err != nil {
			return err
		}
		for _, res := range results {
			if err := emit(res); err != nil {
				return err
			}
		}
	} else {
		if err := ann.StreamAllKNearestNeighbors(rIx, sIx, *k, qcfg, emit); err != nil {
			return err
		}
	}
	queryTime := time.Since(queryStart)
	fmt.Fprintf(stderr, "annquery: %d results, index build %v, query %v (%s, %s, k=%d)\n",
		count, buildTime.Round(time.Millisecond), queryTime.Round(time.Millisecond),
		*kindStr, *metric, *k)
	return nil
}
