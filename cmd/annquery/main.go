// Command annquery runs an ANN or AkNN query over dataset files produced
// by anngen, printing one line per query point.
//
// Examples:
//
//	annquery -r queries.pts -s targets.pts -k 1
//	annquery -r catalog.pts -self -k 5 -index rstar -metric maxmax
//	annquery -r catalog.pts -self -trace trace.json -report -quiet
//
// -trace writes the query's execution trace as Chrome trace-event JSON
// (open at https://ui.perfetto.dev); -report prints the unified
// QueryReport (counters + stage timings) as JSON to stderr; -cpuprofile,
// -memprofile and -pprof-addr enable the standard Go profiling hooks.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"allnn/ann"
	"allnn/internal/datagen"
	"allnn/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annquery: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run parses args and executes the query; separated from main for
// testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("annquery", flag.ContinueOnError)
	var (
		rPath   = fs.String("r", "", "query dataset file (required)")
		sPath   = fs.String("s", "", "target dataset file (defaults to -r with -self)")
		selfQ   = fs.Bool("self", false, "self-join: exclude each point's own pairing")
		k       = fs.Int("k", 1, "neighbors per query point")
		kindStr = fs.String("index", "mbrqt", "index structure: mbrqt | rstar")
		metric  = fs.String("metric", "nxndist", "pruning metric: nxndist | maxmax")
		quiet   = fs.Bool("quiet", false, "suppress per-point output; print only the summary")
		timeout = fs.Duration("timeout", 0, "abort the query after this long (0 disables); exits with ctx deadline error")

		tracePath   = fs.String("trace", "", "write a Chrome trace-event JSON of the query here (open at ui.perfetto.dev)")
		report      = fs.Bool("report", false, "print the unified QueryReport (counters + stage timings) as JSON to stderr")
		metricsAddr = fs.String("metrics-addr", "", "serve the metrics registry as JSON (and /debug/pprof/) on this address")
	)
	var prof obs.ProfileFlags
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rPath == "" {
		return fmt.Errorf("-r is required")
	}
	if *sPath == "" {
		if !*selfQ {
			return fmt.Errorf("either -s or -self is required")
		}
		*sPath = *rPath
	}

	cfg := ann.IndexConfig{}
	switch *kindStr {
	case "mbrqt":
		cfg.Kind = ann.MBRQT
	case "rstar":
		cfg.Kind = ann.RStar
	default:
		return fmt.Errorf("unknown index kind %q", *kindStr)
	}
	qcfg := ann.QueryConfig{}
	switch *metric {
	case "nxndist":
		qcfg.Metric = ann.NXNDist
	case "maxmax":
		qcfg.Metric = ann.MaxMaxDist
	default:
		return fmt.Errorf("unknown metric %q", *metric)
	}

	var metrics *ann.MetricsRegistry
	if *metricsAddr != "" {
		metrics = ann.NewMetricsRegistry()
		addr, err := metrics.Serve(*metricsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "annquery: metrics on http://%s/metrics\n", addr)
		qcfg.Metrics = metrics
	}
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		traceFile = f
		defer traceFile.Close()
		qcfg.TraceOut = traceFile
	}
	if *report {
		qcfg.OnReport = func(rep ann.QueryReport) {
			enc := json.NewEncoder(stderr)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rep)
		}
	}
	stopProf, err := prof.Start(nil)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(stderr, "annquery: profile: %v\n", perr)
		}
	}()

	rRaw, err := datagen.ReadFile(*rPath)
	if err != nil {
		return err
	}
	rPts := make([]ann.Point, len(rRaw))
	for i, p := range rRaw {
		rPts[i] = ann.Point(p)
	}

	buildStart := time.Now()
	rIx, err := ann.BuildIndex(rPts, cfg)
	if err != nil {
		return err
	}
	sIx := rIx
	if *sPath != *rPath {
		sRaw, err := datagen.ReadFile(*sPath)
		if err != nil {
			return err
		}
		sPts := make([]ann.Point, len(sRaw))
		for i, p := range sRaw {
			sPts[i] = ann.Point(p)
		}
		sIx, err = ann.BuildIndex(sPts, cfg)
		if err != nil {
			return err
		}
	}
	buildTime := time.Since(buildStart)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	queryStart := time.Now()
	count := 0
	emit := func(res ann.Result) error {
		count++
		if *quiet {
			return nil
		}
		fmt.Fprintf(w, "%d", res.ID)
		for _, nn := range res.Neighbors {
			fmt.Fprintf(w, "\t%d:%.6g", nn.ID, nn.Dist)
		}
		fmt.Fprintln(w)
		return nil
	}
	if *selfQ && sIx == rIx {
		results, err := ann.SelfAllKNearestNeighborsContext(ctx, rIx, *k, qcfg)
		if err != nil {
			return err
		}
		for _, res := range results {
			if err := emit(res); err != nil {
				return err
			}
		}
	} else {
		if err := ann.StreamAllKNearestNeighborsContext(ctx, rIx, sIx, *k, qcfg, emit); err != nil {
			return err
		}
	}
	queryTime := time.Since(queryStart)
	fmt.Fprintf(stderr, "annquery: %d results, index build %v, query %v (%s, %s, k=%d)\n",
		count, buildTime.Round(time.Millisecond), queryTime.Round(time.Millisecond),
		*kindStr, *metric, *k)
	return nil
}
