// Command annquery runs an ANN or AkNN query over dataset files produced
// by anngen — or, with -remote, against a running annserve daemon —
// printing one line per query point.
//
// Examples:
//
//	annquery -r queries.pts -s targets.pts -k 1
//	annquery -r catalog.pts -self -k 5 -index rstar -metric maxmax
//	annquery -r catalog.pts -self -trace trace.json -report -quiet
//	annquery -r catalog.pts -self -r-pagefile catalog.pages        # build and persist
//	annquery -r-pagefile catalog.pages -self -k 2                  # reopen, no rebuild
//	annquery -remote localhost:4321 -r pts -self -k 2              # served query
//
// With -remote, -r and -s name indexes in the server's catalog rather
// than dataset files. -trace writes the query's execution trace as
// Chrome trace-event JSON (open at https://ui.perfetto.dev); -report
// prints the unified QueryReport (counters + stage timings) as JSON to
// stderr — with -remote the server computes it and ships it back on the
// stream's end frame, with a "service" section (admission wait, engine
// vs flush time, wire bytes) only the server can measure; -trace-id
// labels a remote request across the server's logs and debug endpoints;
// -cpuprofile, -memprofile and -pprof-addr enable the standard Go
// profiling hooks.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/datagen"
	"allnn/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annquery: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		// log.Fatal: one clean line on stderr, exit code 1 — corrupt or
		// missing files must not stack-trace.
		log.Fatal(err)
	}
}

// run parses args and executes the query; separated from main for
// testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("annquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rPath   = fs.String("r", "", "query dataset file (with -remote: catalog index name)")
		sPath   = fs.String("s", "", "target dataset file (defaults to -r with -self; with -remote: catalog index name)")
		rPage   = fs.String("r-pagefile", "", "query index page file: built and persisted here with -r, reopened without")
		sPage   = fs.String("s-pagefile", "", "target index page file (see -r-pagefile)")
		selfQ   = fs.Bool("self", false, "self-join: exclude each point's own pairing")
		k       = fs.Int("k", 1, "neighbors per query point")
		kindStr = fs.String("index", "mbrqt", "index structure: mbrqt | rstar")
		metric  = fs.String("metric", "nxndist", "pruning metric: nxndist | maxmax")
		quiet   = fs.Bool("quiet", false, "suppress per-point output; print only the summary")
		timeout = fs.Duration("timeout", 0, "abort the query after this long (0 disables); exits with ctx deadline error")
		remote  = fs.String("remote", "", "route the query to the annserve daemon at this address")
		traceID = fs.String("trace-id", "", "with -remote: label the request in the server's logs and debug endpoints")

		tracePath   = fs.String("trace", "", "write a Chrome trace-event JSON of the query here (open at ui.perfetto.dev)")
		report      = fs.Bool("report", false, "print the unified QueryReport (counters + stage timings) as JSON to stderr")
		metricsAddr = fs.String("metrics-addr", "", "serve the metrics registry as JSON (and /debug/pprof/) on this address")
	)
	var prof obs.ProfileFlags
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *remote != "" {
		return runRemote(ctx, *remote, *rPath, *sPath, *selfQ, *k, *quiet, *report, *traceID, stdout, stderr)
	}

	if *rPath == "" && *rPage == "" {
		return fmt.Errorf("-r or -r-pagefile is required")
	}
	if *sPath == "" && *sPage == "" && !*selfQ {
		return fmt.Errorf("either -s, -s-pagefile or -self is required")
	}

	cfg := ann.IndexConfig{}
	switch *kindStr {
	case "mbrqt":
		cfg.Kind = ann.MBRQT
	case "rstar":
		cfg.Kind = ann.RStar
	default:
		return fmt.Errorf("unknown index kind %q", *kindStr)
	}
	qcfg := ann.QueryConfig{}
	switch *metric {
	case "nxndist":
		qcfg.Metric = ann.NXNDist
	case "maxmax":
		qcfg.Metric = ann.MaxMaxDist
	default:
		return fmt.Errorf("unknown metric %q", *metric)
	}

	var metrics *ann.MetricsRegistry
	if *metricsAddr != "" {
		metrics = ann.NewMetricsRegistry()
		addr, err := metrics.Serve(*metricsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "annquery: metrics on http://%s/metrics\n", addr)
		qcfg.Metrics = metrics
	}
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		traceFile = f
		defer traceFile.Close()
		qcfg.TraceOut = traceFile
	}
	if *report {
		qcfg.OnReport = func(rep ann.QueryReport) {
			enc := json.NewEncoder(stderr)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rep)
		}
	}
	stopProf, err := prof.Start(nil)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(stderr, "annquery: profile: %v\n", perr)
		}
	}()

	buildStart := time.Now()
	rIx, err := loadIndex(*rPath, *rPage, cfg)
	if err != nil {
		return err
	}
	defer rIx.Close()
	sIx := rIx
	sameSource := *selfQ && *sPath == "" && *sPage == "" ||
		(*sPath != "" && *sPath == *rPath) || (*sPage != "" && *sPage == *rPage)
	if !sameSource {
		sIx, err = loadIndex(*sPath, *sPage, cfg)
		if err != nil {
			return err
		}
		defer sIx.Close()
	}
	buildTime := time.Since(buildStart)

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	queryStart := time.Now()
	count := 0
	emit := func(res ann.Result) error {
		count++
		if *quiet {
			return nil
		}
		printResult(w, res)
		return nil
	}
	if *selfQ && sIx == rIx {
		results, err := ann.SelfAllKNearestNeighborsContext(ctx, rIx, *k, qcfg)
		if err != nil {
			return err
		}
		for _, res := range results {
			if err := emit(res); err != nil {
				return err
			}
		}
	} else {
		if err := ann.StreamAllKNearestNeighborsContext(ctx, rIx, sIx, *k, qcfg, emit); err != nil {
			return err
		}
	}
	queryTime := time.Since(queryStart)
	fmt.Fprintf(stderr, "annquery: %d results, index build %v, query %v (%s, %s, k=%d)\n",
		count, buildTime.Round(time.Millisecond), queryTime.Round(time.Millisecond),
		*kindStr, *metric, *k)
	return nil
}

// loadIndex resolves one side of the query: reopen a persisted page
// file (pagePath only), build in memory (dataPath only), or build
// file-backed and persist (both).
func loadIndex(dataPath, pagePath string, cfg ann.IndexConfig) (*ann.Index, error) {
	if dataPath == "" {
		return ann.OpenIndex(pagePath, cfg)
	}
	raw, err := datagen.ReadFile(dataPath)
	if err != nil {
		return nil, err
	}
	pts := make([]ann.Point, len(raw))
	for i, p := range raw {
		pts[i] = ann.Point(p)
	}
	cfg.PageFile = pagePath // empty means in-memory
	ix, err := ann.BuildIndex(pts, cfg)
	if err != nil {
		return nil, err
	}
	if pagePath != "" {
		if err := ix.Flush(); err != nil {
			ix.Close()
			return nil, err
		}
	}
	return ix, nil
}

// runRemote routes the join through a served catalog via ann/client.
// With report, the server's QueryReport travels back on the stream's
// end frame and prints as JSON to stderr — the remote analogue of the
// local -report path.
func runRemote(ctx context.Context, addr, rName, sName string, selfQ bool, k int, quiet, report bool, traceID string, stdout, stderr io.Writer) error {
	if rName == "" {
		return fmt.Errorf("-r (catalog index name) is required with -remote")
	}
	if sName == "" && !selfQ {
		return fmt.Errorf("either -s or -self is required with -remote")
	}
	cl, err := client.DialContext(ctx, addr)
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", addr, err)
	}
	defer cl.Close()

	opts := client.JoinOptions{WantReport: report, TraceID: traceID}
	var st *client.JoinStream
	queryStart := time.Now()
	if selfQ {
		st, err = cl.SelfJoinApprox(ctx, rName, k, opts)
	} else {
		st, err = cl.JoinApprox(ctx, rName, sName, k, opts)
	}
	if err != nil {
		return err
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	count := 0
	for st.Next() {
		count++
		if !quiet {
			printResult(w, st.Result())
		}
	}
	if err := st.Err(); err != nil {
		return err
	}
	if rep := st.Report(); rep != nil {
		enc := json.NewEncoder(stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(remoteReportJSON(rep)); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "annquery: %d results, query %v (remote %s, k=%d)\n",
		count, time.Since(queryStart).Round(time.Millisecond), addr, k)
	return nil
}

// remoteReportJSON shapes a remote report for printing: the engine
// report in its stable local JSON layout plus a "service" section for
// the server-side costs.
func remoteReportJSON(rep *client.QueryReport) any {
	return struct {
		ann.QueryReport
		Service struct {
			TraceID         string `json:"trace_id,omitempty"`
			AdmissionWaitNs int64  `json:"admission_wait_ns"`
			EngineNs        int64  `json:"engine_ns"`
			FlushNs         int64  `json:"flush_ns"`
			BytesIn         uint64 `json:"bytes_in"`
			BytesOut        uint64 `json:"bytes_out"`
		} `json:"service"`
	}{
		QueryReport: rep.QueryReport,
		Service: struct {
			TraceID         string `json:"trace_id,omitempty"`
			AdmissionWaitNs int64  `json:"admission_wait_ns"`
			EngineNs        int64  `json:"engine_ns"`
			FlushNs         int64  `json:"flush_ns"`
			BytesIn         uint64 `json:"bytes_in"`
			BytesOut        uint64 `json:"bytes_out"`
		}{
			TraceID:         rep.TraceID,
			AdmissionWaitNs: rep.AdmissionWait.Nanoseconds(),
			EngineNs:        rep.EngineTime.Nanoseconds(),
			FlushNs:         rep.FlushTime.Nanoseconds(),
			BytesIn:         rep.BytesIn,
			BytesOut:        rep.BytesOut,
		},
	}
}

// printResult writes one per-point output line: the query id, then one
// "id:dist" column per neighbor.
func printResult(w io.Writer, res ann.Result) {
	fmt.Fprintf(w, "%d", res.ID)
	for _, nn := range res.Neighbors {
		fmt.Fprintf(w, "\t%d:%.6g", nn.ID, nn.Dist)
	}
	fmt.Fprintln(w)
}
