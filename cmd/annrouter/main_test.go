package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/curve"
	"allnn/internal/geom"
	"allnn/internal/router"
	"allnn/internal/server"
)

// TestRouterSmoke is the `make router-smoke` CI check: two in-process
// annserve shards behind one annrouter started through its real main
// path (shard-map file, flags, signal handling), byte parity against
// direct library calls over the curve-ordered dataset, then a real
// SIGTERM and a clean drain.
func TestRouterSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]geom.Point, 1200)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	part, err := curve.Partition(pts, 2, curve.Hilbert)
	if err != nil {
		t.Fatal(err)
	}

	// One in-process annserve per shard.
	addrs := make([]string, len(part.Shards))
	var ordered []ann.Point
	for i, s := range part.Shards {
		shardPts := make([]ann.Point, len(s.Points))
		for j, idx := range s.Points {
			shardPts[j] = ann.Point(pts[idx])
			ordered = append(ordered, ann.Point(pts[idx]))
		}
		ix, err := ann.BuildIndex(shardPts, ann.IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{})
		if err := srv.Catalog().Add(fmt.Sprintf("pts-%d", i), ix); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-serveDone
			srv.Catalog().CloseAll()
		})
		addrs[i] = ln.Addr().String()
	}

	// Ground truth: direct library calls over the curve-ordered points
	// (the router's global id order).
	full, err := ann.BuildIndex(ordered, ann.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantKNN, err := full.NearestNeighbors(ordered[7], 3)
	if err != nil {
		t.Fatal(err)
	}
	wantSelf, err := ann.SelfAllKNearestNeighbors(full, 4, ann.QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The library emits traversal order; the router emits ascending
	// global id. Canonicalize the ground truth to the router's order.
	sort.Slice(wantSelf, func(a, b int) bool { return wantSelf[a].ID < wantSelf[b].ID })
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}

	mapPath := filepath.Join(t.TempDir(), "pts.shardmap.json")
	if err := router.MapFromPartitioning("pts", part, addrs).Save(mapPath); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	var stderrMu sync.Mutex
	safeStderr := writerFunc(func(p []byte) (int, error) {
		stderrMu.Lock()
		defer stderrMu.Unlock()
		return stderr.Write(p)
	})

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-shardmap", mapPath,
			"-drain-timeout", "30s",
		}, safeStderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("router exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("router never became ready")
	}

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Routed kNN parity against the direct call.
	got, err := cl.KNN(ctx, "pts", ordered[7], 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantKNN) {
		t.Fatalf("routed kNN diverges from the direct call: %+v vs %+v", got, wantKNN)
	}

	// Routed self-AkNN parity, id-canonicalized.
	st, err := cl.SelfJoin(ctx, "pts", 4)
	if err != nil {
		t.Fatal(err)
	}
	var gotSelf []ann.Result
	for st.Next() {
		gotSelf = append(gotSelf, st.Result())
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSelf, wantSelf) {
		t.Fatalf("routed self-AkNN diverges from the direct call (%d vs %d results)", len(gotSelf), len(wantSelf))
	}

	// The topology is served back over the wire.
	m, err := cl.ShardMap(ctx, "pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 2 || m.Name != "pts" {
		t.Fatalf("served shard map: %+v", m)
	}

	// SIGTERM → clean drain.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("router exited with %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("router did not drain after SIGTERM")
	}
	stderrMu.Lock()
	log := stderr.String()
	stderrMu.Unlock()
	if !strings.Contains(log, "drained cleanly") {
		t.Fatalf("drain was not clean:\n%s", log)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestRouterFlagValidation pins the daemon's argument errors.
func TestRouterFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(nil, &stderr, nil); err == nil || !strings.Contains(err.Error(), "-shardmap") {
		t.Errorf("no shard map: got %v", err)
	}
	missing := filepath.Join(t.TempDir(), "missing.json")
	if err := run([]string{"-shardmap", missing}, &stderr, nil); err == nil {
		t.Error("missing shard-map file accepted")
	}
	if err := run([]string{"-shardmap", missing, "-mode", "lenient"}, &stderr, nil); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Errorf("bad -mode: got %v", err)
	}
}
