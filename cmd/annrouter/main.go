// Command annrouter is the scatter-gather front-end for a fleet of
// annserve shards. It loads one or more shard-map files (written by
// anngen -shards), speaks the same wire protocol as annserve on the
// client side, and routes point kNN, batched kNN, range, range-points,
// within-distance, and streamed ANN self-join queries across the
// backends, pruning shards with NXNDIST/MINDIST bounds and merging
// per-shard answers into single-node-identical results.
//
// Examples:
//
//	annrouter -addr :4320 -shardmap pts.shardmap.json
//	annrouter -addr :4320 -shardmap pts.shardmap.json -mode degraded -fanout 8
//
// -mode selects the failure policy when a shard is unreachable: strict
// (default) fails the request with SHARD_UNAVAILABLE; degraded answers
// from the live shards and marks the reply PARTIAL_RESULT. SIGTERM or
// SIGINT drains gracefully, exactly as annserve does.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"allnn/internal/obs"
	"allnn/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annrouter: ")
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		log.Fatal(err)
	}
}

// mapFlags collects repeated -shardmap paths.
type mapFlags []string

func (f *mapFlags) String() string { return fmt.Sprintf("%d shard maps", len(*f)) }

func (f *mapFlags) Set(v string) error {
	if v == "" {
		return fmt.Errorf("want a shard-map path")
	}
	*f = append(*f, v)
	return nil
}

// run starts the router and blocks until a shutdown signal drains it;
// separated from main for testability. If ready is non-nil it receives
// the bound listen address once the router is accepting.
func run(args []string, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("annrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":4320", "TCP listen address")
		maps         mapFlags
		modeFlag     = fs.String("mode", "strict", "failure policy for dead shards: strict or degraded")
		fanout       = fs.Int("fanout", 0, "max concurrently outstanding backend RPCs (0: 2x GOMAXPROCS; 1: serial scatter)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight queries before cancelling them")
		backoffBase  = fs.Duration("backoff-base", 100*time.Millisecond, "initial per-backend cool-off after a transport failure")
		backoffMax   = fs.Duration("backoff-max", 5*time.Second, "cap on the per-backend cool-off")
	)
	fs.Var(&maps, "shardmap", "load a shard-map JSON file (repeatable, one per routed dataset)")
	var prof obs.ProfileFlags
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(maps) == 0 {
		return fmt.Errorf("no -shardmap given (nothing to route)")
	}
	mode, err := router.ParseMode(*modeFlag)
	if err != nil {
		return err
	}

	var files []*router.MapFile
	for _, path := range maps {
		m, err := router.LoadMapFile(path)
		if err != nil {
			return err
		}
		files = append(files, m)
	}

	reg := obs.NewRegistry()
	rt, err := router.New(router.Config{
		Mode:        mode,
		MaxFanout:   *fanout,
		BackoffBase: *backoffBase,
		BackoffMax:  *backoffMax,
		Metrics:     reg,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "annrouter: "+format+"\n", a...)
		},
	}, files...)
	if err != nil {
		return err
	}
	for _, m := range files {
		fmt.Fprintf(stderr, "annrouter: routing %s: %d shards, %s curve, mode %s\n",
			m.Name, len(m.Shards), m.Curve, mode)
	}

	stopProf, err := prof.Start(reg)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(stderr, "annrouter: profile: %v\n", perr)
		}
	}()
	if prof.BoundAddr != "" {
		fmt.Fprintf(stderr, "annrouter: obs endpoints on http://%s/ (metrics, metrics/prom, debug/pprof)\n", prof.BoundAddr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "annrouter: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)

	serveDone := make(chan error, 1)
	go func() { serveDone <- rt.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "annrouter: %v: draining (timeout %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			fmt.Fprintf(stderr, "annrouter: drain: %v (in-flight queries were cancelled)\n", err)
		} else {
			fmt.Fprintf(stderr, "annrouter: drained cleanly\n")
		}
		return <-serveDone
	case err := <-serveDone:
		return err
	}
}
