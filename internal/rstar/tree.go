package rstar

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

// Config tunes the tree. The zero value selects page-sized fanout with
// the canonical R* parameters (40% minimum fill, 30% forced reinsert).
type Config struct {
	// MaxEntries caps the node fanout; 0 means "as many as fit one page".
	// Tests use small values to force deep trees.
	MaxEntries int
	// MinFill is the minimum fill fraction of a node (default 0.4).
	MinFill float64
	// ReinsertFraction is the share of entries evicted on first overflow
	// per level (default 0.3). Negative disables forced reinsertion.
	ReinsertFraction float64
}

func (c Config) withDefaults(dim int) Config {
	if c.MaxEntries <= 0 {
		c.MaxEntries = maxEntriesFor(internalEntrySize(dim))
		if leafMax := maxEntriesFor(leafEntrySize(dim)); leafMax < c.MaxEntries {
			c.MaxEntries = leafMax
		}
	}
	if c.MaxEntries < 4 {
		c.MaxEntries = 4
	}
	if c.MinFill <= 0 || c.MinFill > 0.5 {
		c.MinFill = 0.4
	}
	if c.ReinsertFraction == 0 {
		c.ReinsertFraction = 0.3
	}
	return c
}

func (c Config) minEntries() int {
	m := int(float64(c.MaxEntries) * c.MinFill)
	if m < 1 {
		m = 1
	}
	return m
}

func (c Config) reinsertCount() int {
	if c.ReinsertFraction < 0 {
		return 0
	}
	p := int(float64(c.MaxEntries) * c.ReinsertFraction)
	if p < 1 {
		p = 1
	}
	return p
}

// Tree is a disk-resident R*-tree over points.
type Tree struct {
	pool *storage.BufferPool
	meta storage.PageID
	dim  int
	cfg  Config

	root   storage.PageID
	height int // number of levels; 1 = root is a leaf; 0 = empty
	size   int
	bounds geom.Rect

	// freePages holds reusable node pages. In CoW mode only
	// checkpoint-fenced pages land here (see freePage / fence).
	freePages []storage.PageID

	// Copy-on-write state; inert until EnableCoW. R* nodes occupy whole
	// pages, so the CoW unit is the page itself: a batch writes only
	// pages in its writable set, published pages are deferred on free and
	// relocated on update (see writeNode).
	cow      bool
	writable map[storage.PageID]bool
	deferred []storage.PageID // pages unlinked this batch, pending release
	drained  []storage.PageID // released pages awaiting the checkpoint fence

	// reclaimQ collects deferred pages whose snapshots have all been
	// dropped; release functions append from reader goroutines.
	reclaimMu sync.Mutex
	reclaimQ  []storage.PageID

	// cache, when attached, serves Expand from decoded entry slices keyed
	// by page id. writeNode and the delete paths invalidate through it.
	// The pointer is atomic so concurrent readers can race with an
	// idempotent re-attach without a data race (see mbrqt.Tree).
	cache atomic.Pointer[index.NodeCache]

	// reinserting tracks the levels where forced reinsertion already ran
	// during the current top-level Insert (R* applies it once per level).
	reinserting map[int]bool
	pending     []pendingEntry
}

type pendingEntry struct {
	e     entry
	level int
}

const metaMagic = 0x52535431 // "RST1"

// New creates an empty R*-tree for dim-dimensional points, allocating its
// pages from pool's store.
func New(pool *storage.BufferPool, dim int, cfg Config) (*Tree, error) {
	if dim < 1 {
		return nil, fmt.Errorf("rstar: dimensionality %d out of range", dim)
	}
	t := &Tree{
		pool:   pool,
		dim:    dim,
		cfg:    cfg.withDefaults(dim),
		root:   storage.InvalidPage,
		bounds: geom.EmptyRect(dim),
	}
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	t.meta = f.ID()
	f.Release()
	return t, t.writeMeta()
}

// Open loads a persisted tree anchored at the given meta page.
func Open(pool *storage.BufferPool, meta storage.PageID) (*Tree, error) {
	t := &Tree{pool: pool, meta: meta}
	f, err := pool.Get(meta)
	if err != nil {
		return nil, err
	}
	defer f.Release()
	data := f.Data()
	if binary.LittleEndian.Uint32(data) != metaMagic {
		return nil, fmt.Errorf("rstar: page %d is not an R*-tree header: %w", meta, storage.ErrCorruptPage)
	}
	t.dim = int(binary.LittleEndian.Uint32(data[4:]))
	if t.dim < 1 || 44+16*t.dim > storage.PageSize {
		return nil, fmt.Errorf("rstar: header dim %d out of range: %w", t.dim, storage.ErrCorruptPage)
	}
	t.root = storage.PageID(binary.LittleEndian.Uint32(data[8:]))
	t.size = int(binary.LittleEndian.Uint64(data[12:]))
	t.height = int(binary.LittleEndian.Uint32(data[20:]))
	t.cfg.MaxEntries = int(binary.LittleEndian.Uint32(data[24:]))
	t.cfg.MinFill = math.Float64frombits(binary.LittleEndian.Uint64(data[28:]))
	t.cfg.ReinsertFraction = math.Float64frombits(binary.LittleEndian.Uint64(data[36:]))
	off := 44
	t.bounds = geom.Rect{Lo: make(geom.Point, t.dim), Hi: make(geom.Point, t.dim)}
	for d := 0; d < t.dim; d++ {
		t.bounds.Lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	for d := 0; d < t.dim; d++ {
		t.bounds.Hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	return t, nil
}

func (t *Tree) writeMeta() error {
	f, err := t.pool.Get(t.meta)
	if err != nil {
		return err
	}
	defer f.Release()
	data := f.Data()
	binary.LittleEndian.PutUint32(data, metaMagic)
	binary.LittleEndian.PutUint32(data[4:], uint32(t.dim))
	binary.LittleEndian.PutUint32(data[8:], uint32(t.root))
	binary.LittleEndian.PutUint64(data[12:], uint64(t.size))
	binary.LittleEndian.PutUint32(data[20:], uint32(t.height))
	binary.LittleEndian.PutUint32(data[24:], uint32(t.cfg.MaxEntries))
	binary.LittleEndian.PutUint64(data[28:], math.Float64bits(t.cfg.MinFill))
	binary.LittleEndian.PutUint64(data[36:], math.Float64bits(t.cfg.ReinsertFraction))
	off := 44
	for d := 0; d < t.dim; d++ {
		binary.LittleEndian.PutUint64(data[off:], math.Float64bits(t.bounds.Lo[d]))
		off += 8
	}
	for d := 0; d < t.dim; d++ {
		binary.LittleEndian.PutUint64(data[off:], math.Float64bits(t.bounds.Hi[d]))
		off += 8
	}
	f.MarkDirty()
	return nil
}

// Flush persists the tree durably: all dirty data pages are written and
// synced before the header page is, so a crash mid-flush can never leave
// a durable header pointing at unwritten pages. (CheckpointWith is the
// same protocol with a WAL hook between the two syncs.)
func (t *Tree) Flush() error {
	return t.CheckpointWith(nil)
}

// MetaPage returns the page anchoring this tree inside its store.
func (t *Tree) MetaPage() storage.PageID { return t.meta }

// Pool returns the buffer pool the tree performs its I/O through.
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// Dim implements index.Tree.
func (t *Tree) Dim() int { return t.dim }

// Len implements index.Tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int { return t.height }

// Bounds implements index.Tree.
func (t *Tree) Bounds() geom.Rect { return t.bounds.Clone() }

// Root implements index.Tree.
func (t *Tree) Root() (index.Entry, error) {
	if t.root == storage.InvalidPage {
		return index.Entry{Kind: index.NodeEntry, MBR: geom.EmptyRect(t.dim), Child: storage.InvalidPage}, nil
	}
	return index.Entry{
		Kind:  index.NodeEntry,
		MBR:   t.bounds.Clone(),
		Child: t.root,
		Count: uint32(t.size),
	}, nil
}

// SetNodeCache implements index.NodeCacher. The cache is keyed by node
// page id, so it must not be shared with a tree in a different store
// (the engine attaches one cache per tree, shared only for self-joins).
func (t *Tree) SetNodeCache(c *index.NodeCache) { t.cache.Store(c) }

// NodeCacheRef implements index.NodeCacher.
func (t *Tree) NodeCacheRef() *index.NodeCache { return t.cache.Load() }

// Expand implements index.Tree. With a node cache attached, a warm
// expansion is a single lookup returning the shared immutable slice.
func (t *Tree) Expand(e *index.Entry) ([]index.Entry, error) {
	if e.IsObject() {
		return nil, fmt.Errorf("rstar: Expand called on an object entry")
	}
	cache := t.cache.Load()
	if out, ok := cache.Get(e.Child); ok {
		return out, nil
	}
	out, err := t.decodeEntries(e.Child)
	if err != nil {
		return nil, err
	}
	index.CachePut(cache, e.Child, out)
	return out, nil
}

// decodeEntries reads the node at pid and materialises its entry slice.
func (t *Tree) decodeEntries(pid storage.PageID) ([]index.Entry, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return nil, err
	}
	out := make([]index.Entry, len(n.entries))
	for i := range n.entries {
		en := &n.entries[i]
		if n.leaf {
			out[i] = index.Entry{
				Kind:   index.ObjectEntry,
				MBR:    en.mbr,
				Count:  1,
				Object: en.obj,
				Point:  en.pt,
			}
		} else {
			out[i] = index.Entry{
				Kind:  index.NodeEntry,
				MBR:   en.mbr,
				Child: en.child,
				Count: en.count,
			}
		}
	}
	return out, nil
}

// Insert adds one point to the tree.
func (t *Tree) Insert(id index.ObjectID, pt geom.Point) error {
	if len(pt) != t.dim {
		return fmt.Errorf("rstar: point dimensionality %d, tree %d", len(pt), t.dim)
	}
	pt = pt.Clone()
	e := entry{mbr: geom.NewRect(pt, pt), obj: id, pt: pt, count: 1}
	t.reinserting = make(map[int]bool)
	if err := t.insertEntry(e, 0); err != nil {
		return err
	}
	// Drain forced reinsertions queued during the descent. Reinserting
	// can enqueue more (overflows at other levels); the per-level guard
	// bounds the process.
	for len(t.pending) > 0 {
		p := t.pending[0]
		t.pending = t.pending[1:]
		if err := t.insertEntry(p.e, p.level); err != nil {
			return err
		}
	}
	t.size++
	if t.bounds.IsEmpty() {
		t.bounds = geom.NewRect(pt.Clone(), pt.Clone())
	} else {
		t.bounds.ExpandPoint(pt)
	}
	return nil
}

// insertEntry places e at the given level (0 = leaf level), growing the
// root on split.
func (t *Tree) insertEntry(e entry, level int) error {
	if t.root == storage.InvalidPage {
		if level != 0 {
			return fmt.Errorf("rstar: internal entry insert into empty tree")
		}
		pid, err := t.allocPage()
		if err != nil {
			return err
		}
		pid, err = t.writeNode(pid, &node{leaf: true, entries: []entry{e}})
		if err != nil {
			return err
		}
		t.root = pid
		t.height = 1
		return nil
	}
	res, err := t.insertRec(t.root, t.height-1, e, level)
	if err != nil {
		return err
	}
	t.root = res.pid
	if res.split != nil {
		// Grow a new root over the old root and its split sibling.
		oldRootEntry := entry{mbr: res.mbr, child: res.pid, count: res.count}
		newRoot, err := t.allocPage()
		if err != nil {
			return err
		}
		newRoot, err = t.writeNode(newRoot, &node{leaf: false, entries: []entry{oldRootEntry, *res.split}})
		if err != nil {
			return err
		}
		t.root = newRoot
		t.height++
	}
	return nil
}

// insertResult carries the updated geometry — and the possibly relocated
// page — of a child back to its parent.
type insertResult struct {
	pid   storage.PageID // where the node lives now (CoW may relocate it)
	mbr   geom.Rect
	count uint32
	split *entry // sibling created by a node split, to be added to the parent
}

func (t *Tree) insertRec(pid storage.PageID, nodeLevel int, e entry, targetLevel int) (insertResult, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return insertResult{}, err
	}
	if nodeLevel == targetLevel {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.cfg.MaxEntries {
			return t.handleOverflow(pid, n, nodeLevel)
		}
		newPid, err := t.writeNode(pid, n)
		if err != nil {
			return insertResult{}, err
		}
		return insertResult{pid: newPid, mbr: n.mbr(t.dim), count: n.countPoints()}, nil
	}

	i := t.chooseSubtree(n, e.mbr, nodeLevel-1 == targetLevel)
	child := &n.entries[i]
	res, err := t.insertRec(child.child, nodeLevel-1, e, targetLevel)
	if err != nil {
		return insertResult{}, err
	}
	child.child = res.pid
	child.mbr = res.mbr
	child.count = res.count
	if res.split != nil {
		n.entries = append(n.entries, *res.split)
		if len(n.entries) > t.cfg.MaxEntries {
			return t.handleOverflow(pid, n, nodeLevel)
		}
	}
	newPid, err := t.writeNode(pid, n)
	if err != nil {
		return insertResult{}, err
	}
	return insertResult{pid: newPid, mbr: n.mbr(t.dim), count: n.countPoints()}, nil
}

// chooseSubtree implements the R* descent heuristic: at the level just
// above the target, pick the entry needing the least overlap enlargement
// (ties: least area enlargement, then least area); higher up, pick the
// least area enlargement (ties: least area).
func (t *Tree) chooseSubtree(n *node, mbr geom.Rect, aboveTarget bool) int {
	best := 0
	bestOverlap := math.Inf(1)
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range n.entries {
		en := &n.entries[i]
		union := en.mbr.Union(mbr)
		enlarge := union.Area() - en.mbr.Area()
		area := en.mbr.Area()
		overlap := 0.0
		if aboveTarget {
			// Overlap enlargement of entry i against its siblings.
			for j := range n.entries {
				if j == i {
					continue
				}
				overlap += union.OverlapArea(n.entries[j].mbr) - en.mbr.OverlapArea(n.entries[j].mbr)
			}
		}
		better := false
		switch {
		case aboveTarget && overlap != bestOverlap:
			better = overlap < bestOverlap
		case enlarge != bestEnlarge:
			better = enlarge < bestEnlarge
		default:
			better = area < bestArea
		}
		if i == 0 || better {
			best = i
			bestOverlap = overlap
			bestEnlarge = enlarge
			bestArea = area
		}
	}
	return best
}

// handleOverflow applies the R* policy to an overflowing node: forced
// reinsertion on the first overflow at this level (unless disabled or at
// the root), a split otherwise.
func (t *Tree) handleOverflow(pid storage.PageID, n *node, level int) (insertResult, error) {
	isRoot := pid == t.root
	if !isRoot && t.cfg.reinsertCount() > 0 && !t.reinserting[level] {
		t.reinserting[level] = true
		kept, evicted := t.pickReinsertions(n)
		n.entries = kept
		newPid, err := t.writeNode(pid, n)
		if err != nil {
			return insertResult{}, err
		}
		for _, ev := range evicted {
			t.pending = append(t.pending, pendingEntry{e: ev, level: level})
		}
		return insertResult{pid: newPid, mbr: n.mbr(t.dim), count: n.countPoints()}, nil
	}

	left, right := t.splitNode(n)
	leftPid, err := t.writeNode(pid, left)
	if err != nil {
		return insertResult{}, err
	}
	sibPage, err := t.allocPage()
	if err != nil {
		return insertResult{}, err
	}
	sibPage, err = t.writeNode(sibPage, right)
	if err != nil {
		return insertResult{}, err
	}
	sibEntry := entry{mbr: right.mbr(t.dim), child: sibPage, count: right.countPoints()}
	return insertResult{
		pid:   leftPid,
		mbr:   left.mbr(t.dim),
		count: left.countPoints(),
		split: &sibEntry,
	}, nil
}

// pickReinsertions removes the p entries whose centers are farthest from
// the node MBR center ("far reinsert" variant of the R* paper), returning
// (kept, evicted).
func (t *Tree) pickReinsertions(n *node) (kept, evicted []entry) {
	p := t.cfg.reinsertCount()
	if p >= len(n.entries) {
		p = len(n.entries) - 1
	}
	center := n.mbr(t.dim).Center()
	type distEntry struct {
		d float64
		e entry
	}
	ds := make([]distEntry, len(n.entries))
	for i := range n.entries {
		ds[i] = distEntry{d: geom.DistSq(center, n.entries[i].mbr.Center()), e: n.entries[i]}
	}
	sort.SliceStable(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
	evicted = make([]entry, 0, p)
	kept = make([]entry, 0, len(n.entries)-p)
	for i, de := range ds {
		if i < p {
			evicted = append(evicted, de.e)
		} else {
			kept = append(kept, de.e)
		}
	}
	return kept, evicted
}

// splitNode implements the R* topological split: choose the axis with the
// minimum total margin over all candidate distributions, then the
// distribution on that axis with the minimum overlap (ties: minimum total
// area).
func (t *Tree) splitNode(n *node) (left, right *node) {
	m := t.cfg.minEntries()
	total := len(n.entries)
	bestAxis, bestLowSort := 0, true
	bestMargin := math.Inf(1)

	marginOf := func(entries []entry) float64 {
		var sum float64
		for k := m; k <= total-m; k++ {
			l := geom.EmptyRect(t.dim)
			r := geom.EmptyRect(t.dim)
			for i := 0; i < k; i++ {
				l.ExpandRect(entries[i].mbr)
			}
			for i := k; i < total; i++ {
				r.ExpandRect(entries[i].mbr)
			}
			sum += l.Margin() + r.Margin()
		}
		return sum
	}

	work := make([]entry, total)
	for axis := 0; axis < t.dim; axis++ {
		for _, lowSort := range []bool{true, false} {
			copy(work, n.entries)
			sortEntriesByAxis(work, axis, lowSort)
			if margin := marginOf(work); margin < bestMargin {
				bestMargin = margin
				bestAxis = axis
				bestLowSort = lowSort
			}
		}
	}

	copy(work, n.entries)
	sortEntriesByAxis(work, bestAxis, bestLowSort)
	bestK := m
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := m; k <= total-m; k++ {
		l := geom.EmptyRect(t.dim)
		r := geom.EmptyRect(t.dim)
		for i := 0; i < k; i++ {
			l.ExpandRect(work[i].mbr)
		}
		for i := k; i < total; i++ {
			r.ExpandRect(work[i].mbr)
		}
		overlap := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestOverlap = overlap
			bestArea = area
			bestK = k
		}
	}
	left = &node{leaf: n.leaf, entries: append([]entry(nil), work[:bestK]...)}
	right = &node{leaf: n.leaf, entries: append([]entry(nil), work[bestK:]...)}
	return left, right
}

// sortEntriesByAxis sorts by lower bound (lowSort) or upper bound along
// the axis, with the other bound as tie-breaker.
func sortEntriesByAxis(entries []entry, axis int, lowSort bool) {
	sort.SliceStable(entries, func(a, b int) bool {
		ea, eb := &entries[a], &entries[b]
		if lowSort {
			if ea.mbr.Lo[axis] != eb.mbr.Lo[axis] {
				return ea.mbr.Lo[axis] < eb.mbr.Lo[axis]
			}
			return ea.mbr.Hi[axis] < eb.mbr.Hi[axis]
		}
		if ea.mbr.Hi[axis] != eb.mbr.Hi[axis] {
			return ea.mbr.Hi[axis] < eb.mbr.Hi[axis]
		}
		return ea.mbr.Lo[axis] < eb.mbr.Lo[axis]
	})
}
