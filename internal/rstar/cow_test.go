package rstar

import (
	"math/rand"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
)

// snapshotObjects walks a published snapshot and returns every object it
// holds, keyed by ID.
func snapshotObjects(t *testing.T, s *Snapshot) map[index.ObjectID]geom.Point {
	t.Helper()
	out := make(map[index.ObjectID]geom.Point, s.Len())
	if s.Len() == 0 {
		return out
	}
	root, err := s.Root()
	if err != nil {
		t.Fatalf("snapshot root: %v", err)
	}
	stack := []index.Entry{root}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.IsObject() {
			if _, dup := out[e.Object]; dup {
				t.Fatalf("snapshot holds object %d twice", e.Object)
			}
			out[e.Object] = append(geom.Point{}, e.Point...)
			continue
		}
		kids, err := s.Expand(&e)
		if err != nil {
			t.Fatalf("snapshot expand: %v", err)
		}
		stack = append(stack, kids...)
	}
	if len(out) != s.Len() {
		t.Fatalf("snapshot enumerated %d objects, Len says %d", len(out), s.Len())
	}
	return out
}

func requireObjects(t *testing.T, label string, got map[index.ObjectID]geom.Point, ids []index.ObjectID, pts []geom.Point) {
	t.Helper()
	if len(got) != len(ids) {
		t.Fatalf("%s: %d objects, want %d", label, len(got), len(ids))
	}
	for i, id := range ids {
		p, ok := got[id]
		if !ok {
			t.Fatalf("%s: object %d missing", label, id)
		}
		for d := range p {
			if p[d] != pts[i][d] {
				t.Fatalf("%s: object %d at %v, want %v", label, id, p, pts[i])
			}
		}
	}
}

// TestSnapshotIsolationUnderWrites publishes a snapshot, mutates the
// tree through insert/delete batches heavy enough to trigger splits,
// reinsertion, and underflow merges, and checks the snapshot still
// reads exactly the state it froze.
func TestSnapshotIsolationUnderWrites(t *testing.T) {
	pool := newPool(256)
	tree, err := New(pool, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	pts := clusteredPoints(rng, 150, 2, 1)
	ids := make([]index.ObjectID, len(pts))
	for i := range pts {
		ids[i] = index.ObjectID(i)
		if err := tree.Insert(ids[i], pts[i]); err != nil {
			t.Fatal(err)
		}
	}
	tree.EnableCoW()
	s1, rel1 := tree.Publish()
	rel1() // first publish: nothing precedes it, release immediately

	// Batch 1: remove a block (forces underflow handling), add a cluster.
	for i := 0; i < 40; i++ {
		if ok, err := tree.Delete(ids[i], pts[i]); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	add := clusteredPoints(rng, 50, 2, 1)
	addIDs := make([]index.ObjectID, len(add))
	for i := range add {
		addIDs[i] = index.ObjectID(500 + i)
		if err := tree.Insert(addIDs[i], add[i]); err != nil {
			t.Fatal(err)
		}
	}
	s2, rel2 := tree.Publish()

	// s1 must be frozen at the pre-batch state even though the writer has
	// replaced every node on the mutated root-to-leaf paths.
	requireObjects(t, "s1 after batch", snapshotObjects(t, s1), ids, pts)
	wantIDs := append(append([]index.ObjectID{}, ids[40:]...), addIDs...)
	wantPts := append(append([]geom.Point{}, pts[40:]...), add...)
	requireObjects(t, "s2", snapshotObjects(t, s2), wantIDs, wantPts)

	// s1 readers are done: retire batch 1's superseded pages and reclaim.
	rel2()
	if err := tree.DrainReclaim(); err != nil {
		t.Fatal(err)
	}

	// Batch 2 after reclaim: recycled pages must not disturb s2.
	for i := 0; i < 15; i++ {
		if ok, err := tree.Delete(addIDs[i], add[i]); err != nil || !ok {
			t.Fatalf("delete new %d: ok=%v err=%v", i, ok, err)
		}
	}
	_, rel3 := tree.Publish()
	requireObjects(t, "s2 after batch 2", snapshotObjects(t, s2), wantIDs, wantPts)
	rel3()

	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckpointWith(nil); err != nil {
		t.Fatal(err)
	}
	if got := pool.PinnedFrames(); got != 0 {
		t.Fatalf("%d pinned frames after checkpoint", got)
	}
	if tree.Len() != 150-40+50-15 {
		t.Fatalf("final Len %d", tree.Len())
	}
}
