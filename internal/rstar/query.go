package rstar

import (
	"allnn/internal/geom"
	"allnn/internal/index"
)

// RangeSearch returns every indexed point inside rect (inclusive).
func (t *Tree) RangeSearch(rect geom.Rect) ([]index.QueryResult, error) {
	return index.RangeSearch(t, rect)
}

// NearestNeighbors returns the k nearest indexed points to q in ascending
// distance order.
func (t *Tree) NearestNeighbors(q geom.Point, k int) ([]index.QueryResult, error) {
	return index.NearestNeighbors(t, q, k)
}
