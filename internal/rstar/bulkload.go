package rstar

import (
	"fmt"
	"math"
	"sort"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

// BulkLoad builds an R*-tree from a point set with the Sort-Tile-Recursive
// (STR) algorithm: points are recursively sorted and tiled into runs of
// page-sized leaves, then the upper levels are built the same way over the
// node center points. IDs default to 0..len(pts)-1 unless ids is non-nil.
//
// STR produces better-packed nodes than one-at-a-time insertion, which is
// how production systems build an index over an existing dataset.
func BulkLoad(pool *storage.BufferPool, pts []geom.Point, ids []index.ObjectID, cfg Config) (*Tree, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("rstar: BulkLoad of empty point set")
	}
	if ids != nil && len(ids) != len(pts) {
		return nil, fmt.Errorf("rstar: %d ids for %d points", len(ids), len(pts))
	}
	dim := len(pts[0])
	t, err := New(pool, dim, cfg)
	if err != nil {
		return nil, err
	}

	// Fill factor below 100% leaves headroom for later inserts.
	capacity := int(float64(t.cfg.MaxEntries) * 0.9)
	if capacity < 2 {
		capacity = 2
	}

	// Build the leaf level.
	leafEntries := make([]entry, len(pts))
	for i, p := range pts {
		oid := index.ObjectID(i)
		if ids != nil {
			oid = ids[i]
		}
		leafEntries[i] = entry{mbr: geom.NewRect(p, p), obj: oid, pt: p, count: 1}
	}
	level, err := t.strLevel(leafEntries, capacity, true)
	if err != nil {
		return nil, err
	}
	height := 1
	for len(level) > 1 {
		level, err = t.strLevel(level, capacity, false)
		if err != nil {
			return nil, err
		}
		height++
	}
	t.root = level[0].child
	t.height = height
	t.size = len(pts)
	t.bounds = geom.BoundingRect(pts)
	return t, t.writeMeta()
}

// strLevel tiles entries into nodes of at most capacity entries and
// returns the parent entries describing those nodes.
func (t *Tree) strLevel(entries []entry, capacity int, leaf bool) ([]entry, error) {
	nodes := strTile(entries, capacity, t.dim, 0)
	parents := make([]entry, 0, len(nodes))
	for _, group := range nodes {
		pid, err := t.allocPage()
		if err != nil {
			return nil, err
		}
		n := &node{leaf: leaf, entries: group}
		pid, err = t.writeNode(pid, n)
		if err != nil {
			return nil, err
		}
		parents = append(parents, entry{mbr: n.mbr(t.dim), child: pid, count: n.countPoints()})
	}
	return parents, nil
}

// strTile recursively slices entries into groups of at most capacity,
// sorting by successive axes of the entry centers.
func strTile(entries []entry, capacity, dim, axis int) [][]entry {
	if len(entries) <= capacity {
		return [][]entry{entries}
	}
	sort.SliceStable(entries, func(a, b int) bool {
		ca := (entries[a].mbr.Lo[axis] + entries[a].mbr.Hi[axis]) / 2
		cb := (entries[b].mbr.Lo[axis] + entries[b].mbr.Hi[axis]) / 2
		return ca < cb
	})
	if axis == dim-1 {
		// Final axis: cut into runs of exactly capacity.
		var out [][]entry
		for start := 0; start < len(entries); start += capacity {
			end := start + capacity
			if end > len(entries) {
				end = len(entries)
			}
			out = append(out, entries[start:end:end])
		}
		return out
	}
	// Number of slabs along this axis: S = ceil((n/capacity)^(1/(dim-axis))).
	nodesNeeded := float64(len(entries)) / float64(capacity)
	slabs := int(math.Ceil(math.Pow(nodesNeeded, 1/float64(dim-axis))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(entries) + slabs - 1) / slabs
	var out [][]entry
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, strTile(entries[start:end:end], capacity, dim, axis+1)...)
	}
	return out
}
