package rstar

import (
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

// Delete removes the point with the given id and coordinates. It returns
// false if no such entry exists. Deletion follows the classic condense
// protocol: underflowing nodes are dissolved and their remaining entries
// reinserted at their original level, and a root with a single child is
// collapsed.
func (t *Tree) Delete(id index.ObjectID, pt geom.Point) (bool, error) {
	if t.root == storage.InvalidPage || len(pt) != t.dim {
		return false, nil
	}
	t.reinserting = map[int]bool{}
	res, err := t.deleteRec(t.root, t.height-1, id, pt)
	if err != nil {
		return false, err
	}
	if !res.found {
		return false, nil
	}
	t.root = res.pid // the root never dissolves, but CoW may relocate it
	t.size--

	// Drain the entries orphaned by condensed nodes.
	for len(t.pending) > 0 {
		p := t.pending[0]
		t.pending = t.pending[1:]
		if err := t.insertEntry(p.e, p.level); err != nil {
			return false, err
		}
	}

	// Collapse the root while it is an internal node with a single child.
	for t.height > 1 {
		n, err := t.readNode(t.root)
		if err != nil {
			return false, err
		}
		if n.leaf || len(n.entries) != 1 {
			break
		}
		t.freePage(t.root)
		t.root = n.entries[0].child
		t.height--
	}
	if t.size == 0 {
		t.freePage(t.root)
		t.root = storage.InvalidPage
		t.height = 0
		t.bounds = geom.EmptyRect(t.dim)
		return true, nil
	}
	// Recompute the exact data bounds from the root.
	rootNode, err := t.readNode(t.root)
	if err != nil {
		return false, err
	}
	t.bounds = rootNode.mbr(t.dim)
	return true, nil
}

type deleteResult struct {
	found bool
	// pid is where the surviving node lives now (CoW may relocate it).
	pid   storage.PageID
	mbr   geom.Rect
	count uint32
	// dissolved reports that the node underflowed and was freed; its
	// surviving entries were queued for reinsertion by the callee.
	dissolved bool
}

func (t *Tree) deleteRec(pid storage.PageID, level int, id index.ObjectID, pt geom.Point) (deleteResult, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return deleteResult{}, err
	}
	if n.leaf {
		at := -1
		for i := range n.entries {
			if n.entries[i].obj == id && n.entries[i].pt.Equal(pt) {
				at = i
				break
			}
		}
		if at == -1 {
			return deleteResult{found: false}, nil
		}
		n.entries = append(n.entries[:at], n.entries[at+1:]...)
		if pid != t.root && len(n.entries) < t.cfg.minEntries() {
			// Condense: dissolve this leaf; reinsert the survivors.
			for i := range n.entries {
				t.pending = append(t.pending, pendingEntry{e: n.entries[i], level: 0})
			}
			t.freePage(pid)
			return deleteResult{found: true, dissolved: true}, nil
		}
		newPid, err := t.writeNode(pid, n)
		if err != nil {
			return deleteResult{}, err
		}
		return deleteResult{found: true, pid: newPid, mbr: n.mbr(t.dim), count: n.countPoints()}, nil
	}

	for i := range n.entries {
		e := &n.entries[i]
		if !e.mbr.Contains(pt) {
			continue
		}
		res, err := t.deleteRec(e.child, level-1, id, pt)
		if err != nil {
			return deleteResult{}, err
		}
		if !res.found {
			continue
		}
		if res.dissolved {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			e.child = res.pid
			e.mbr = res.mbr
			e.count = res.count
		}
		if pid != t.root && len(n.entries) < t.cfg.minEntries() {
			// Dissolve this internal node too; its child-subtree entries
			// are reinserted into nodes at this node's own level (each
			// entry references a subtree one level below it).
			for j := range n.entries {
				t.pending = append(t.pending, pendingEntry{e: n.entries[j], level: level})
			}
			t.freePage(pid)
			return deleteResult{found: true, dissolved: true}, nil
		}
		newPid, err := t.writeNode(pid, n)
		if err != nil {
			return deleteResult{}, err
		}
		return deleteResult{found: true, pid: newPid, mbr: n.mbr(t.dim), count: n.countPoints()}, nil
	}
	return deleteResult{found: false}, nil
}
