package rstar

import (
	"encoding/binary"
	"math"
	"testing"

	"allnn/internal/storage"
)

// seedNodePage hand-renders a valid node page at the given dimensionality
// using the same layout writeNode produces.
func seedNodePage(dim int, leaf bool) []byte {
	data := make([]byte, storage.PageSize)
	if leaf {
		data[offType] = nodeTypeLeaf
	} else {
		data[offType] = nodeTypeInternal
	}
	binary.LittleEndian.PutUint16(data[offNumEntries:], 2)
	off := pageHeaderSize
	for i := 0; i < 2; i++ {
		if leaf {
			binary.LittleEndian.PutUint64(data[off:], uint64(100+i))
			off += 8
			for d := 0; d < dim; d++ {
				binary.LittleEndian.PutUint64(data[off:], math.Float64bits(float64(i*dim+d)))
				off += 8
			}
		} else {
			binary.LittleEndian.PutUint32(data[off:], uint32(5+i))
			binary.LittleEndian.PutUint32(data[off+4:], 17)
			off += 8
			for d := 0; d < 2*dim; d++ {
				binary.LittleEndian.PutUint64(data[off:], math.Float64bits(float64(d)))
				off += 8
			}
		}
	}
	return data
}

// FuzzDecodeNode feeds arbitrary bytes to the R*-tree node decoder: it
// must reject malformed pages with an error wrapping ErrCorruptPage and
// never panic or read out of bounds.
func FuzzDecodeNode(f *testing.F) {
	for _, dim := range []int{1, 2, 3, 10} {
		f.Add(seedNodePage(dim, true), uint8(dim))
		f.Add(seedNodePage(dim, false), uint8(dim))
	}
	f.Add([]byte{}, uint8(2))
	// A page whose entry count overruns the page.
	bad := make([]byte, storage.PageSize)
	bad[offType] = nodeTypeLeaf
	binary.LittleEndian.PutUint16(bad[offNumEntries:], 0xFFFF)
	f.Add(bad, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, dimByte uint8) {
		dim := int(dimByte)%16 + 1
		n, err := decodeNode(data, dim)
		if err != nil {
			if !storage.IsCorrupt(err) {
				t.Fatalf("decode error does not wrap ErrCorruptPage: %v", err)
			}
			return
		}
		entrySize := internalEntrySize(dim)
		if n.leaf {
			entrySize = leafEntrySize(dim)
		}
		if pageHeaderSize+len(n.entries)*entrySize > len(data) {
			t.Fatalf("decoded %d entries from a %d-byte page", len(n.entries), len(data))
		}
	})
}
