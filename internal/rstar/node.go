// Package rstar implements a disk-resident R*-tree (Beckmann, Kriegel,
// Schneider, Seeger; SIGMOD 1990): ChooseSubtree with minimal overlap
// enlargement at the leaf level, the margin-driven split axis selection,
// and forced reinsertion on first overflow per level. It is the index the
// paper's BNN and RBA competitors run on.
//
// Every node occupies exactly one 8 KB page; the fanout is whatever fits
// (around 200 entries in 2-D, around 45 in 10-D). Entries carry subtree
// point counts in addition to MBRs so that AkNN pruning bounds can use
// cardinality information.
package rstar

import (
	"encoding/binary"
	"fmt"
	"math"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

const (
	nodeTypeLeaf     = 1
	nodeTypeInternal = 2

	pageHeaderSize = 8
	offType        = 0
	offNumEntries  = 2
)

// entry is one slot of a node: a child subtree for internal nodes, a data
// point for leaves.
type entry struct {
	mbr   geom.Rect
	child storage.PageID // internal only
	count uint32         // points under the entry (1 for leaf entries)
	obj   index.ObjectID // leaf only
	pt    geom.Point     // leaf only
}

type node struct {
	leaf    bool
	entries []entry
}

func internalEntrySize(dim int) int { return 4 + 4 + 16*dim }
func leafEntrySize(dim int) int     { return 8 + 8*dim }

// maxEntriesFor returns the per-node fanout for the given entry size.
func maxEntriesFor(entrySize int) int {
	return (storage.PageSize - pageHeaderSize) / entrySize
}

// mbr returns the tight MBR over the node's entries.
func (n *node) mbr(dim int) geom.Rect {
	r := geom.EmptyRect(dim)
	for i := range n.entries {
		r.ExpandRect(n.entries[i].mbr)
	}
	return r
}

// countPoints sums the subtree counts of the node's entries.
func (n *node) countPoints() uint32 {
	var c uint32
	for i := range n.entries {
		c += n.entries[i].count
	}
	return c
}

// decodeNode parses a node page, validating the header before trusting
// any count in it: data may be arbitrary bytes (a logically damaged page
// that still checksums, a legacy file without checksums, fuzzer input).
// Structural violations wrap storage.ErrCorruptPage.
func decodeNode(data []byte, dim int) (*node, error) {
	if len(data) < pageHeaderSize {
		return nil, fmt.Errorf("rstar: node page truncated to %d bytes: %w", len(data), storage.ErrCorruptPage)
	}
	n := &node{}
	switch data[offType] {
	case nodeTypeLeaf:
		n.leaf = true
	case nodeTypeInternal:
		n.leaf = false
	default:
		return nil, fmt.Errorf("rstar: invalid node type %d: %w", data[offType], storage.ErrCorruptPage)
	}
	num := int(binary.LittleEndian.Uint16(data[offNumEntries:]))
	entrySize := internalEntrySize(dim)
	if n.leaf {
		entrySize = leafEntrySize(dim)
	}
	if pageHeaderSize+num*entrySize > len(data) {
		return nil, fmt.Errorf("rstar: node claims %d entries, page fits %d: %w",
			num, (len(data)-pageHeaderSize)/entrySize, storage.ErrCorruptPage)
	}
	n.entries = make([]entry, 0, num)
	off := pageHeaderSize
	if n.leaf {
		for i := 0; i < num; i++ {
			e := entry{
				obj:   index.ObjectID(binary.LittleEndian.Uint64(data[off:])),
				pt:    make(geom.Point, dim),
				count: 1,
			}
			off += 8
			for d := 0; d < dim; d++ {
				e.pt[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
				off += 8
			}
			e.mbr = geom.NewRect(e.pt, e.pt)
			n.entries = append(n.entries, e)
		}
	} else {
		for i := 0; i < num; i++ {
			e := entry{
				child: storage.PageID(binary.LittleEndian.Uint32(data[off:])),
				count: binary.LittleEndian.Uint32(data[off+4:]),
				mbr:   geom.Rect{Lo: make(geom.Point, dim), Hi: make(geom.Point, dim)},
			}
			off += 8
			for d := 0; d < dim; d++ {
				e.mbr.Lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
				off += 8
			}
			for d := 0; d < dim; d++ {
				e.mbr.Hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
				off += 8
			}
			n.entries = append(n.entries, e)
		}
	}
	return n, nil
}

// readNode loads the node at pid.
func (t *Tree) readNode(pid storage.PageID) (*node, error) {
	f, err := t.pool.Get(pid)
	if err != nil {
		return nil, fmt.Errorf("rstar: read node page %d: %w", pid, err)
	}
	defer f.Release()
	n, err := decodeNode(f.Data(), t.dim)
	if err != nil {
		return nil, fmt.Errorf("rstar: page %d: %w", pid, err)
	}
	return n, nil
}

// writeNode stores n, normally at pid, and returns the page the node now
// occupies. In copy-on-write mode a node on a published page is never
// overwritten: the new version lands on a freshly allocated (writable)
// page, the old page is deferred for the snapshots still reading it, and
// the caller must record the returned page in the parent. Every
// structural mutation funnels through here, so it also drops the page's
// stale decoded form from the node cache.
func (t *Tree) writeNode(pid storage.PageID, n *node) (storage.PageID, error) {
	if t.cow && !t.writable[pid] {
		t.deferred = append(t.deferred, pid)
		newPid, err := t.allocPage()
		if err != nil {
			return storage.InvalidPage, err
		}
		pid = newPid
	}
	t.cache.Load().Invalidate(pid)
	var max int
	if n.leaf {
		max = maxEntriesFor(leafEntrySize(t.dim))
	} else {
		max = maxEntriesFor(internalEntrySize(t.dim))
	}
	if len(n.entries) > max {
		return storage.InvalidPage, fmt.Errorf("rstar: node with %d entries exceeds page fanout %d", len(n.entries), max)
	}
	f, err := t.pool.Get(pid)
	if err != nil {
		return storage.InvalidPage, fmt.Errorf("rstar: write node page %d: %w", pid, err)
	}
	defer f.Release()
	data := f.Data()
	if n.leaf {
		data[offType] = nodeTypeLeaf
	} else {
		data[offType] = nodeTypeInternal
	}
	binary.LittleEndian.PutUint16(data[offNumEntries:], uint16(len(n.entries)))
	off := pageHeaderSize
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			binary.LittleEndian.PutUint64(data[off:], uint64(e.obj))
			off += 8
			for d := 0; d < t.dim; d++ {
				binary.LittleEndian.PutUint64(data[off:], math.Float64bits(e.pt[d]))
				off += 8
			}
		}
	} else {
		for i := range n.entries {
			e := &n.entries[i]
			binary.LittleEndian.PutUint32(data[off:], uint32(e.child))
			binary.LittleEndian.PutUint32(data[off+4:], e.count)
			off += 8
			for d := 0; d < t.dim; d++ {
				binary.LittleEndian.PutUint64(data[off:], math.Float64bits(e.mbr.Lo[d]))
				off += 8
			}
			for d := 0; d < t.dim; d++ {
				binary.LittleEndian.PutUint64(data[off:], math.Float64bits(e.mbr.Hi[d]))
				off += 8
			}
		}
	}
	f.MarkDirty()
	return pid, nil
}

// freePage returns a node page to the tree's free list, dropping any
// cached decode so a recycled page can never serve stale entries. In CoW
// mode a published page is only deferred: snapshots may still traverse
// it, and the durable root may still reference it, so it re-enters the
// free list via reclaim and the checkpoint fence.
func (t *Tree) freePage(pid storage.PageID) {
	if t.cow && !t.writable[pid] {
		t.deferred = append(t.deferred, pid)
		return
	}
	t.cache.Load().Invalidate(pid)
	t.freePages = append(t.freePages, pid)
}

// allocPage takes a page from the free list or the shared store. In CoW
// mode the returned page joins the current batch's writable set (free
// pages are checkpoint-fenced, so rewriting them is safe).
func (t *Tree) allocPage() (storage.PageID, error) {
	if n := len(t.freePages); n > 0 {
		pid := t.freePages[n-1]
		t.freePages = t.freePages[:n-1]
		if t.cow {
			t.writable[pid] = true
		}
		return pid, nil
	}
	f, err := t.pool.NewPage()
	if err != nil {
		return storage.InvalidPage, err
	}
	pid := f.ID()
	f.Release()
	if t.cow {
		t.writable[pid] = true
	}
	return pid, nil
}
