package rstar

import (
	"math/rand"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
)

func TestDeleteBasic(t *testing.T) {
	pool := newPool(256)
	tree, err := New(pool, 2, Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	pts := uniformPoints(rand.New(rand.NewSource(1)), 30, 2, 100)
	for i, p := range pts {
		if err := tree.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tree.Delete(5, pts[5])
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Delete did not find an indexed point")
	}
	if tree.Len() != 29 {
		t.Fatalf("Len = %d, want 29", tree.Len())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The deleted point must be gone; others must remain findable.
	res, err := tree.RangeSearch(geom.PointRect(pts[5]))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Object == 5 {
			t.Fatal("deleted object still indexed")
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	pool := newPool(64)
	tree, err := New(pool, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(1, geom.Point{1, 1}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := tree.Delete(2, geom.Point{1, 1}); ok {
		t.Fatal("Delete found a nonexistent id")
	}
	if ok, _ := tree.Delete(1, geom.Point{9, 9}); ok {
		t.Fatal("Delete found nonexistent coordinates")
	}
	if tree.Len() != 1 {
		t.Fatal("failed deletes must not change size")
	}
}

func TestDeleteAllPoints(t *testing.T) {
	pool := newPool(512)
	tree, err := New(pool, 2, Config{MaxEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pts := uniformPoints(rng, 200, 2, 50)
	for i, p := range pts {
		if err := tree.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	// Delete in random order, verifying integrity periodically.
	order := rng.Perm(len(pts))
	for step, i := range order {
		ok, err := tree.Delete(index.ObjectID(i), pts[i])
		if err != nil {
			t.Fatalf("delete %d: %v", step, err)
		}
		if !ok {
			t.Fatalf("delete %d: point %d not found", step, i)
		}
		if step%25 == 0 {
			if err := tree.CheckIntegrity(); err != nil {
				t.Fatalf("after %d deletes: %v", step+1, err)
			}
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tree.Len())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Reuse after emptying must work.
	if err := tree.Insert(999, geom.Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	res, err := tree.NearestNeighbors(geom.Point{1, 2}, 1)
	if err != nil || len(res) != 1 || res[0].Object != 999 {
		t.Fatalf("tree unusable after emptying: %v %v", res, err)
	}
}

func TestDeleteInterleavedWithQueries(t *testing.T) {
	pool := newPool(1024)
	tree, err := New(pool, 3, Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	type rec struct {
		pt    geom.Point
		alive bool
	}
	var recs []rec
	for step := 0; step < 1500; step++ {
		switch {
		case rng.Intn(3) > 0 || len(recs) == 0: // insert
			p := geom.Point{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
			if err := tree.Insert(index.ObjectID(len(recs)), p); err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec{pt: p, alive: true})
		default: // delete a random live record
			alive := make([]int, 0, len(recs))
			for i := range recs {
				if recs[i].alive {
					alive = append(alive, i)
				}
			}
			if len(alive) == 0 {
				continue
			}
			i := alive[rng.Intn(len(alive))]
			ok, err := tree.Delete(index.ObjectID(i), recs[i].pt)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("live record %d not found", i)
			}
			recs[i].alive = false
		}
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Every live record must be findable, every dead one gone.
	liveCount := 0
	for i := range recs {
		found := false
		res, err := tree.RangeSearch(geom.PointRect(recs[i].pt))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Object == index.ObjectID(i) {
				found = true
			}
		}
		if found != recs[i].alive {
			t.Fatalf("record %d: found=%v alive=%v", i, found, recs[i].alive)
		}
		if recs[i].alive {
			liveCount++
		}
	}
	if tree.Len() != liveCount {
		t.Fatalf("Len = %d, live records %d", tree.Len(), liveCount)
	}
}
