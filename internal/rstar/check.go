package rstar

import (
	"fmt"

	"allnn/internal/geom"
	"allnn/internal/storage"
)

// CheckIntegrity validates the structural invariants of the R*-tree:
//
//  1. every entry's MBR tightly bounds its subtree;
//  2. subtree counts are exact;
//  3. all leaves are at the same depth (the tree is balanced);
//  4. nodes respect the fanout, and non-root nodes the minimum fill
//     (leaves produced by forced-reinsert underflow are tolerated down to
//     one entry, matching the R* behaviour);
//  5. the recorded size and height match reality.
func (t *Tree) CheckIntegrity() error {
	if t.root == storage.InvalidPage {
		if t.size != 0 || t.height != 0 {
			return fmt.Errorf("rstar: empty root but size %d height %d", t.size, t.height)
		}
		return nil
	}
	count, mbr, depth, err := t.checkNode(t.root, 1)
	if err != nil {
		return err
	}
	if int(count) != t.size {
		return fmt.Errorf("rstar: tree size %d but %d points found", t.size, count)
	}
	if depth != t.height {
		return fmt.Errorf("rstar: recorded height %d but leaves at depth %d", t.height, depth)
	}
	if t.size > 0 && !mbr.Equal(t.bounds) {
		return fmt.Errorf("rstar: recorded bounds %v but data MBR %v", t.bounds, mbr)
	}
	return nil
}

// checkNode returns (points, tight MBR, leaf depth) of the subtree.
func (t *Tree) checkNode(pid storage.PageID, depth int) (uint32, geom.Rect, int, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return 0, geom.Rect{}, 0, err
	}
	if len(n.entries) > t.cfg.MaxEntries {
		return 0, geom.Rect{}, 0, fmt.Errorf("rstar: node %d has %d entries, fanout %d",
			pid, len(n.entries), t.cfg.MaxEntries)
	}
	if len(n.entries) == 0 && pid != t.root {
		return 0, geom.Rect{}, 0, fmt.Errorf("rstar: non-root node %d is empty", pid)
	}
	mbr := geom.EmptyRect(t.dim)
	if n.leaf {
		for i := range n.entries {
			mbr.ExpandPoint(n.entries[i].pt)
		}
		return uint32(len(n.entries)), mbr, depth, nil
	}
	var total uint32
	leafDepth := -1
	for i := range n.entries {
		e := &n.entries[i]
		cnt, childMBR, d, err := t.checkNode(e.child, depth+1)
		if err != nil {
			return 0, geom.Rect{}, 0, err
		}
		if cnt != e.count {
			return 0, geom.Rect{}, 0, fmt.Errorf(
				"rstar: node %d entry %d count %d but subtree has %d", pid, i, e.count, cnt)
		}
		if !childMBR.Equal(e.mbr) {
			return 0, geom.Rect{}, 0, fmt.Errorf(
				"rstar: node %d entry %d MBR %v but subtree MBR %v", pid, i, e.mbr, childMBR)
		}
		if leafDepth == -1 {
			leafDepth = d
		} else if leafDepth != d {
			return 0, geom.Rect{}, 0, fmt.Errorf("rstar: unbalanced: leaves at depths %d and %d", leafDepth, d)
		}
		total += cnt
		mbr.ExpandRect(childMBR)
	}
	return total, mbr, leafDepth, nil
}

// StatsReport summarises the physical shape of the tree.
type StatsReport struct {
	Nodes, Leaves, Internal int
	Points                  int
	AvgLeafFill             float64 // average leaf occupancy relative to fanout
}

// Stats walks the tree and collects a StatsReport.
func (t *Tree) Stats() (StatsReport, error) {
	var r StatsReport
	if t.root == storage.InvalidPage {
		return r, nil
	}
	var totalLeafEntries int
	var walk func(pid storage.PageID) error
	walk = func(pid storage.PageID) error {
		n, err := t.readNode(pid)
		if err != nil {
			return err
		}
		r.Nodes++
		if n.leaf {
			r.Leaves++
			r.Points += len(n.entries)
			totalLeafEntries += len(n.entries)
			return nil
		}
		r.Internal++
		for i := range n.entries {
			if err := walk(n.entries[i].child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return r, err
	}
	if r.Leaves > 0 {
		r.AvgLeafFill = float64(totalLeafEntries) / float64(r.Leaves) / float64(t.cfg.MaxEntries)
	}
	return r, nil
}
