package rstar

import (
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

// This file holds the copy-on-write face of the R*-tree, mirroring the
// one in internal/mbrqt: snapshot publication for isolated readers,
// deferred page reclaim, and the ordered checkpoint. R* nodes occupy
// whole pages, so the machinery is simpler than the quadtree's
// slotted-page variant — a page is dead the moment its node is unlinked.

// EnableCoW switches the tree to copy-on-write mutation. From here on a
// mutation batch writes only pages it allocated (or took from the
// checkpoint-fenced free list); published pages stay byte-stable, so
// snapshots handed out by Publish read consistently while the writer
// advances, and a crash always finds the last checkpoint intact. Must be
// called before any CoW-era mutation, with no snapshot extant.
func (t *Tree) EnableCoW() {
	t.cow = true
	t.writable = make(map[storage.PageID]bool)
}

// Publish freezes the current tree state into a Snapshot readers can
// traverse concurrently with later mutation batches, and returns a
// release function. The caller must invoke release exactly once, after
// every reader that could still hold the PREVIOUS snapshot has finished:
// it retires the pages this batch unlinked. Publish itself must only be
// called between batches, by the single writer.
func (t *Tree) Publish() (*Snapshot, func()) {
	snap := &Snapshot{
		t:      t,
		root:   t.root,
		size:   t.size,
		height: t.height,
		bounds: t.bounds.Clone(),
	}
	freed := t.deferred
	t.deferred = nil
	t.writable = make(map[storage.PageID]bool)
	release := func() {
		if len(freed) == 0 {
			return
		}
		// Runs from whatever goroutine drops the last reference to the
		// superseded snapshot. Cache entries must die here, not earlier: a
		// reader of the old snapshot could re-populate the cache after a
		// premature invalidation, and the stale decode would outlive the
		// page.
		cache := t.cache.Load()
		for _, pid := range freed {
			cache.Invalidate(pid)
		}
		t.reclaimMu.Lock()
		t.reclaimQ = append(t.reclaimQ, freed...)
		t.reclaimMu.Unlock()
	}
	return snap, release
}

// DrainReclaim moves released pages to the drained list, where they wait
// for a checkpoint fence before reuse. Called by the writer, typically
// at batch start and inside CheckpointWith.
func (t *Tree) DrainReclaim() error {
	t.reclaimMu.Lock()
	q := t.reclaimQ
	t.reclaimQ = nil
	t.reclaimMu.Unlock()
	t.drained = append(t.drained, q...)
	return nil
}

// CheckpointWith makes the current tree state durable with the ordering
// crash recovery depends on: every data page is flushed and synced
// BEFORE the header page, with the hook running between the two syncs.
// The ann layer's hook appends the header image to the WAL and syncs it,
// so a crash at any point leaves either the old checkpoint (data pages
// untouched by CoW) or a WAL-recorded new one. After the header sync the
// drained pages are fenced into the free list. Must not run concurrently
// with mutation, and only between batches (no unpublished writes).
func (t *Tree) CheckpointWith(hook func(metaPage []byte) error) error {
	if err := t.DrainReclaim(); err != nil {
		return err
	}
	if err := t.writeMeta(); err != nil {
		return err
	}
	// No page faults happen between writeMeta and FlushPage below, so the
	// dirty header cannot be evicted — and hit the disk — before the hook
	// has made the new state recoverable.
	if err := t.pool.FlushAllExcept(t.meta); err != nil {
		return err
	}
	if err := t.pool.Store().Sync(); err != nil {
		return err
	}
	if hook != nil {
		f, err := t.pool.Get(t.meta)
		if err != nil {
			return err
		}
		page := make([]byte, storage.PageSize)
		copy(page, f.Data())
		f.Release()
		if err := hook(page); err != nil {
			return err
		}
	}
	if err := t.pool.FlushPage(t.meta); err != nil {
		return err
	}
	if err := t.pool.Store().Sync(); err != nil {
		return err
	}
	t.freePages = append(t.freePages, t.drained...)
	t.drained = nil
	return nil
}

// Snapshot is a frozen, traversal-only view of the tree as of one
// Publish. It implements index.Tree and index.NodeCacher over the pages
// that were live at publication, which copy-on-write keeps byte-stable,
// so any number of snapshot readers run concurrently with the writer.
type Snapshot struct {
	t      *Tree
	root   storage.PageID
	size   int
	height int
	bounds geom.Rect
}

// Dim implements index.Tree.
func (s *Snapshot) Dim() int { return s.t.dim }

// Len implements index.Tree.
func (s *Snapshot) Len() int { return s.size }

// Height returns the number of levels at publication time.
func (s *Snapshot) Height() int { return s.height }

// Bounds implements index.Tree.
func (s *Snapshot) Bounds() geom.Rect { return s.bounds.Clone() }

// Root implements index.Tree.
func (s *Snapshot) Root() (index.Entry, error) {
	if s.root == storage.InvalidPage {
		return index.Entry{Kind: index.NodeEntry, MBR: geom.EmptyRect(s.t.dim), Child: storage.InvalidPage}, nil
	}
	return index.Entry{
		Kind:  index.NodeEntry,
		MBR:   s.bounds.Clone(),
		Child: s.root,
		Count: uint32(s.size),
	}, nil
}

// Expand implements index.Tree. Snapshot pages are never rewritten by
// the writer, so the parent tree's read path serves them.
func (s *Snapshot) Expand(e *index.Entry) ([]index.Entry, error) { return s.t.Expand(e) }

// SetNodeCache implements index.NodeCacher by attaching to the parent
// tree: page ids are unique across snapshots of one tree (recycled only
// after invalidation), so the cache is shared.
func (s *Snapshot) SetNodeCache(c *index.NodeCache) { s.t.SetNodeCache(c) }

// NodeCacheRef implements index.NodeCacher.
func (s *Snapshot) NodeCacheRef() *index.NodeCache { return s.t.NodeCacheRef() }
