package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMemStore(), frames)
}

func uniformPoints(rng *rand.Rand, n, dim int, lim float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * lim
		}
		pts[i] = p
	}
	return pts
}

func clusteredPoints(rng *rand.Rand, n, dim int, lim float64) []geom.Point {
	// Gaussian clusters stress ChooseSubtree and the split heuristics more
	// than uniform data.
	const clusters = 8
	centers := uniformPoints(rng, clusters, dim, lim)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*lim/50
		}
		pts[i] = p
	}
	return pts
}

func TestNewRejectsBadDim(t *testing.T) {
	if _, err := New(newPool(8), 0, Config{}); err == nil {
		t.Fatal("expected error for 0-dim tree")
	}
}

func TestInsertSmall(t *testing.T) {
	pool := newPool(64)
	tree, err := New(pool, 2, Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}, {7, 7}}
	for i, p := range pts {
		if err := tree.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if tree.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(pts))
	}
	if tree.Height() < 2 {
		t.Fatalf("tree with fanout 4 and 7 points must have split, height = %d", tree.Height())
	}
}

func TestInsertManyIntegrity(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, gen := range []func(*rand.Rand, int, int, float64) []geom.Point{uniformPoints, clusteredPoints} {
			rng := rand.New(rand.NewSource(int64(dim)))
			pool := newPool(512)
			tree, err := New(pool, dim, Config{MaxEntries: 8})
			if err != nil {
				t.Fatal(err)
			}
			pts := gen(rng, 600, dim, 100)
			for i, p := range pts {
				if err := tree.Insert(index.ObjectID(i), p); err != nil {
					t.Fatal(err)
				}
			}
			if err := tree.CheckIntegrity(); err != nil {
				t.Fatal(err)
			}
			if tree.Len() != 600 {
				t.Fatalf("Len = %d, want 600", tree.Len())
			}
		}
	}
}

func TestForcedReinsertionRuns(t *testing.T) {
	// With reinsert disabled the tree still works; with it enabled the
	// node count is typically lower (better packing). At minimum both
	// must produce correct trees.
	rng := rand.New(rand.NewSource(5))
	pts := clusteredPoints(rng, 500, 2, 100)
	var nodeCounts []int
	for _, frac := range []float64{-1, 0.3} {
		pool := newPool(512)
		tree, err := New(pool, 2, Config{MaxEntries: 10, ReinsertFraction: frac})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			if err := tree.Insert(index.ObjectID(i), p); err != nil {
				t.Fatal(err)
			}
		}
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatalf("reinsert frac %g: %v", frac, err)
		}
		st, err := tree.Stats()
		if err != nil {
			t.Fatal(err)
		}
		nodeCounts = append(nodeCounts, st.Nodes)
	}
	t.Logf("nodes without reinsert: %d, with: %d", nodeCounts[0], nodeCounts[1])
}

func TestRangeSearchMatchesLinearScan(t *testing.T) {
	for _, dim := range []int{1, 2, 4} {
		rng := rand.New(rand.NewSource(int64(dim) * 3))
		pool := newPool(512)
		pts := uniformPoints(rng, 500, dim, 100)
		tree, err := BulkLoad(pool, pts, nil, Config{MaxEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 20; iter++ {
			q := randQueryRect(rng, dim, 100)
			got, err := tree.RangeSearch(q)
			if err != nil {
				t.Fatal(err)
			}
			var want []int
			for i, p := range pts {
				if q.Contains(p) {
					want = append(want, i)
				}
			}
			gotIDs := make([]int, len(got))
			for i, r := range got {
				gotIDs[i] = int(r.Object)
			}
			sort.Ints(gotIDs)
			if len(gotIDs) != len(want) {
				t.Fatalf("dim %d: range found %d, scan %d", dim, len(gotIDs), len(want))
			}
			for i := range want {
				if gotIDs[i] != want[i] {
					t.Fatalf("dim %d: mismatch at %d", dim, i)
				}
			}
		}
	}
}

func randQueryRect(rng *rand.Rand, dim int, lim float64) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		a := rng.Float64() * lim
		b := rng.Float64() * lim
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return geom.NewRect(lo, hi)
}

func TestNearestNeighborsMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pool := newPool(512)
	pts := clusteredPoints(rng, 400, 3, 50)
	tree, err := BulkLoad(pool, pts, nil, Config{MaxEntries: 12})
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 25; iter++ {
		q := geom.Point{rng.Float64() * 50, rng.Float64() * 50, rng.Float64() * 50}
		for _, k := range []int{1, 5, 20} {
			got, err := tree.NearestNeighbors(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i].DistSq != want[i] {
					t.Fatalf("k=%d: result %d dist %g, want %g", k, i, got[i].DistSq, want[i])
				}
			}
		}
	}
}

func bruteKNN(pts []geom.Point, q geom.Point, k int) []float64 {
	d := make([]float64, len(pts))
	for i, p := range pts {
		d[i] = geom.DistSq(q, p)
	}
	sort.Float64s(d)
	if k > len(d) {
		k = len(d)
	}
	return d[:k]
}

func TestBulkLoadIntegrityAndBalance(t *testing.T) {
	for _, n := range []int{1, 5, 100, 2000} {
		rng := rand.New(rand.NewSource(int64(n)))
		pool := newPool(1024)
		pts := uniformPoints(rng, n, 2, 100)
		tree, err := BulkLoad(pool, pts, nil, Config{MaxEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tree.Len())
		}
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkLoadThenInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pool := newPool(512)
	pts := uniformPoints(rng, 300, 2, 100)
	tree, err := BulkLoad(pool, pts, nil, Config{MaxEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	extra := uniformPoints(rng, 200, 2, 100)
	for i, p := range extra {
		if err := tree.Insert(index.ObjectID(1000+i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tree.Len())
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	store := storage.NewMemStore()
	pool := storage.NewBufferPool(store, 256)
	rng := rand.New(rand.NewSource(55))
	pts := uniformPoints(rng, 300, 2, 10)
	tree, err := BulkLoad(pool, pts, nil, Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	pool2 := storage.NewBufferPool(store, 256)
	reopened, err := Open(pool2, tree.MetaPage())
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 300 || reopened.Dim() != 2 {
		t.Fatalf("reopened: len=%d dim=%d", reopened.Len(), reopened.Dim())
	}
	if err := reopened.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	res, err := reopened.NearestNeighbors(pts[7], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DistSq != 0 {
		t.Fatalf("NN of indexed point: %+v", res)
	}
}

func TestOpenRejectsNonHeaderPage(t *testing.T) {
	pool := newPool(8)
	f, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	pid := f.ID()
	f.Release()
	if _, err := Open(pool, pid); err == nil {
		t.Fatal("expected error opening a zero page as a tree")
	}
}

func TestDuplicatePoints(t *testing.T) {
	pool := newPool(256)
	tree, err := New(pool, 2, Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{1, 1}
	for i := 0; i < 50; i++ {
		if err := tree.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	res, err := tree.RangeSearch(geom.PointRect(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 50 {
		t.Fatalf("found %d duplicates, want 50", len(res))
	}
}

func TestHighDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	pool := newPool(1024)
	pts := uniformPoints(rng, 1000, 10, 1)
	tree, err := BulkLoad(pool, pts, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	got, err := tree.NearestNeighbors(pts[3], 4)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKNN(pts, pts[3], 4)
	for i := range got {
		if got[i].DistSq != want[i] {
			t.Fatalf("10-D kNN mismatch at %d: %g vs %g", i, got[i].DistSq, want[i])
		}
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	pool := newPool(8)
	tree, err := New(pool, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tree.RangeSearch(geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})); err != nil || len(res) != 0 {
		t.Fatalf("range on empty tree: %v %v", res, err)
	}
	if res, err := tree.NearestNeighbors(geom.Point{0, 0}, 3); err != nil || len(res) != 0 {
		t.Fatalf("kNN on empty tree: %v %v", res, err)
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestNoPinLeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pool := newPool(16)
	tree, err := New(pool, 2, Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range uniformPoints(rng, 400, 2, 100) {
		if err := tree.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tree.NearestNeighbors(geom.Point{50, 50}, 10); err != nil {
		t.Fatal(err)
	}
	if pool.PinnedFrames() != 0 {
		t.Fatalf("%d frames still pinned", pool.PinnedFrames())
	}
}
