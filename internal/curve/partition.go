package curve

import (
	"fmt"
	"math"
	"sort"

	"allnn/internal/geom"
)

// Kind names a space-filling curve family for partitioning.
type Kind uint8

const (
	// ZOrder partitions by Morton key (any dimensionality).
	ZOrder Kind = 1
	// Hilbert partitions by Hilbert key (2-D only).
	Hilbert Kind = 2
)

func (k Kind) String() string {
	switch k {
	case ZOrder:
		return "zorder"
	case Hilbert:
		return "hilbert"
	default:
		return fmt.Sprintf("curve.Kind(%d)", uint8(k))
	}
}

// ParseKind maps a curve name ("zorder"/"hilbert") to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "zorder", "z":
		return ZOrder, nil
	case "hilbert", "h":
		return Hilbert, nil
	default:
		return 0, fmt.Errorf("curve: unknown curve kind %q (want zorder or hilbert)", s)
	}
}

// Encoder maps points to curve keys. Both ZEncoder and HilbertEncoder
// satisfy it.
type Encoder interface {
	Value(p geom.Point) uint64
}

// NewEncoder builds the encoder for a curve kind over bounds. Hilbert
// requires 2-D bounds.
func NewEncoder(kind Kind, bounds geom.Rect) (Encoder, error) {
	switch kind {
	case ZOrder:
		return NewZEncoder(bounds), nil
	case Hilbert:
		if bounds.Dim() != 2 {
			return nil, fmt.Errorf("curve: Hilbert partitioning requires 2-D data, got %d-D", bounds.Dim())
		}
		return NewHilbertEncoder(bounds), nil
	default:
		return nil, fmt.Errorf("curve: unknown curve kind %d", kind)
	}
}

// Shard is one contiguous curve-key range of a partitioning. Key ranges
// are inclusive on both ends: a point belongs to the shard whose
// [LoKey, HiKey] contains its curve value. Ranges of consecutive shards
// are adjacent (next.LoKey == prev.HiKey+1), so together they tile the
// entire uint64 key space: every representable key lands in exactly one
// shard, including keys of points that were not in the partitioned
// dataset (future inserts route deterministically).
type Shard struct {
	LoKey uint64 // first curve key owned by this shard
	HiKey uint64 // last curve key owned by this shard (inclusive)
	MBR   geom.Rect
	// Points holds indices into the partitioned dataset, in ascending
	// curve-key order. The concatenation of all shards' Points is the
	// curve-sorted order of the whole dataset.
	Points []int
}

// Contains reports whether key falls in the shard's range.
func (s *Shard) Contains(key uint64) bool { return key >= s.LoKey && key <= s.HiKey }

// Partitioning is a dataset cut into balanced contiguous curve-range
// shards. The boundary MBRs are tight over each shard's points — they
// may overlap spatially (curve ranges are disjoint in key space, not in
// geometry), which is exactly why routed queries need MINDIST/NXNDIST
// pruning rather than plain containment tests.
type Partitioning struct {
	Kind   Kind
	Bounds geom.Rect // encoder bounds (bounding rect of the dataset)
	Shards []Shard

	enc Encoder
}

// Partition cuts pts into at most n balanced contiguous curve-range
// shards. Every shard is non-empty; heavily duplicated keys can force
// fewer than n shards (a run of equal keys is never split across a
// boundary, so that each curve value is owned by exactly one shard).
func Partition(pts []geom.Point, n int, kind Kind) (*Partitioning, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("curve: cannot partition an empty dataset")
	}
	if n < 1 {
		return nil, fmt.Errorf("curve: shard count %d < 1", n)
	}
	bounds := geom.BoundingRect(pts)
	enc, err := NewEncoder(kind, bounds)
	if err != nil {
		return nil, err
	}
	keys := make([]uint64, len(pts))
	for i, p := range pts {
		keys[i] = enc.Value(p)
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	part := &Partitioning{Kind: kind, Bounds: bounds, enc: enc}
	start := 0
	for start < len(order) {
		remainingShards := n - len(part.Shards)
		if remainingShards < 1 {
			remainingShards = 1
		}
		size := (len(order) - start + remainingShards - 1) / remainingShards
		end := start + size
		if end > len(order) {
			end = len(order)
		}
		// Never cut inside a run of equal keys: the whole run belongs to
		// the shard that owns its key.
		for end < len(order) && keys[order[end]] == keys[order[end-1]] {
			end++
		}
		idx := make([]int, end-start)
		copy(idx, order[start:end])
		mbr := geom.EmptyRect(bounds.Dim())
		for _, i := range idx {
			mbr.ExpandPoint(pts[i])
		}
		part.Shards = append(part.Shards, Shard{MBR: mbr, Points: idx})
		start = end
	}

	// Assign key ranges: shard boundaries sit between the last key of one
	// shard and the first key of the next (strictly greater by
	// construction). The first shard starts at 0 and the last ends at
	// MaxUint64 so the ranges tile the whole key space.
	for i := range part.Shards {
		if i == 0 {
			part.Shards[i].LoKey = 0
		} else {
			part.Shards[i].LoKey = part.Shards[i-1].HiKey + 1
		}
		if i == len(part.Shards)-1 {
			part.Shards[i].HiKey = math.MaxUint64
		} else {
			next := part.Shards[i+1].Points[0]
			part.Shards[i].HiKey = keys[next] - 1
		}
	}
	return part, nil
}

// Key returns the curve key of p under the partitioning's encoder.
func (p *Partitioning) Key(pt geom.Point) uint64 { return p.enc.Value(pt) }

// Locate returns the index of the shard owning pt's curve key.
func (p *Partitioning) Locate(pt geom.Point) int {
	return LocateKey(p.Key(pt), len(p.Shards), func(i int) uint64 { return p.Shards[i].LoKey })
}

// LocateKey finds, by binary search over ascending range starts, the
// index of the shard owning key. n is the shard count and loKey returns
// shard i's LoKey. Because shard ranges tile the key space, every key
// has exactly one owner.
func LocateKey(key uint64, n int, loKey func(int) uint64) int {
	// First shard whose LoKey is > key, minus one.
	i := sort.Search(n, func(i int) bool { return loKey(i) > key })
	if i == 0 {
		return 0
	}
	return i - 1
}
