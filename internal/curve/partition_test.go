package curve

import (
	"math"
	"math/rand"
	"testing"

	"allnn/internal/datagen"
	"allnn/internal/geom"
)

// checkPartitioning asserts the range-partition invariants: shard key
// ranges are disjoint, adjacent, and cover the whole uint64 key space;
// every input point's curve value lands in exactly one shard's range,
// and that shard is the one holding the point; MBRs are tight.
func checkPartitioning(t *testing.T, pts []geom.Point, part *Partitioning, want int) {
	t.Helper()
	if len(part.Shards) == 0 {
		t.Fatal("partitioning has no shards")
	}
	if len(part.Shards) > want {
		t.Fatalf("got %d shards, requested at most %d", len(part.Shards), want)
	}

	// Coverage and disjointness: ranges are adjacent, start at 0, end at
	// MaxUint64, and each is non-inverted.
	if lo := part.Shards[0].LoKey; lo != 0 {
		t.Fatalf("first shard LoKey = %d, want 0", lo)
	}
	if hi := part.Shards[len(part.Shards)-1].HiKey; hi != math.MaxUint64 {
		t.Fatalf("last shard HiKey = %d, want MaxUint64", hi)
	}
	for i, s := range part.Shards {
		if s.HiKey < s.LoKey {
			t.Fatalf("shard %d has inverted range [%d, %d]", i, s.LoKey, s.HiKey)
		}
		if len(s.Points) == 0 {
			t.Fatalf("shard %d is empty", i)
		}
		if i > 0 {
			prev := part.Shards[i-1]
			if s.LoKey != prev.HiKey+1 {
				t.Fatalf("shard %d LoKey = %d, want %d (gap/overlap after shard %d)", i, s.LoKey, prev.HiKey+1, i-1)
			}
		}
	}

	// Balance: with distinct keys the largest shard should not dwarf the
	// smallest (equal-key runs may skew this, so allow 2x + run slack).
	min, max := len(pts), 0
	total := 0
	for _, s := range part.Shards {
		if len(s.Points) < min {
			min = len(s.Points)
		}
		if len(s.Points) > max {
			max = len(s.Points)
		}
		total += len(s.Points)
	}
	if total != len(pts) {
		t.Fatalf("shards hold %d points, dataset has %d", total, len(pts))
	}

	// Every point: key in exactly one range, owner shard holds it, MBR
	// contains it.
	owners := make(map[int]int) // point index -> shard
	for si, s := range part.Shards {
		for _, pi := range s.Points {
			if prev, dup := owners[pi]; dup {
				t.Fatalf("point %d appears in shards %d and %d", pi, prev, si)
			}
			owners[pi] = si
		}
	}
	for pi, p := range pts {
		key := part.Key(p)
		matches := 0
		owner := -1
		for si := range part.Shards {
			if part.Shards[si].Contains(key) {
				matches++
				owner = si
			}
		}
		if matches != 1 {
			t.Fatalf("point %d key %d is contained by %d shard ranges, want exactly 1", pi, key, matches)
		}
		if owners[pi] != owner {
			t.Fatalf("point %d held by shard %d but its key %d is owned by shard %d", pi, owners[pi], key, owner)
		}
		if got := part.Locate(p); got != owner {
			t.Fatalf("Locate(point %d) = %d, want %d", pi, got, owner)
		}
		if !part.Shards[owner].MBR.Contains(p) {
			t.Fatalf("shard %d MBR %v does not contain its point %v", owner, part.Shards[owner].MBR, p)
		}
	}

	// Keys within each shard are ascending (curve order preserved).
	for si, s := range part.Shards {
		for j := 1; j < len(s.Points); j++ {
			a := part.Key(pts[s.Points[j-1]])
			b := part.Key(pts[s.Points[j]])
			if a > b {
				t.Fatalf("shard %d points not in curve order at position %d", si, j)
			}
		}
	}
}

func TestPartitionHilbert2D(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		pts := datagen.GaussianClusters(41, 600, datagen.UnitBounds(2), 5, 0.04)
		part, err := Partition(pts, n, Hilbert)
		if err != nil {
			t.Fatalf("Partition(hilbert, %d shards): %v", n, err)
		}
		checkPartitioning(t, pts, part, n)
	}
}

func TestPartitionZOrderDims(t *testing.T) {
	for _, dim := range []int{2, 3, 7} {
		for _, n := range []int{3, 5} {
			pts := datagen.Uniform(int64(dim)*100+int64(n), 500, datagen.UnitBounds(dim))
			part, err := Partition(pts, n, ZOrder)
			if err != nil {
				t.Fatalf("Partition(zorder, dim %d, %d shards): %v", dim, n, err)
			}
			checkPartitioning(t, pts, part, n)
		}
	}
}

// TestPartitionDuplicateKeys forces long equal-key runs (all points in
// one grid cell per cluster) and checks runs are never split.
func TestPartitionDuplicateKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts []geom.Point
	// Three distinct locations, each repeated many times: at most three
	// distinct curve keys.
	locs := []geom.Point{{0.1, 0.1}, {0.5, 0.55}, {0.9, 0.85}}
	for i := 0; i < 120; i++ {
		pts = append(pts, locs[rng.Intn(len(locs))].Clone())
	}
	part, err := Partition(pts, 8, ZOrder)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Shards) > 3 {
		t.Fatalf("got %d shards from 3 distinct keys, want <= 3", len(part.Shards))
	}
	checkPartitioning(t, pts, part, 8)
}

func TestPartitionSmallAndDegenerate(t *testing.T) {
	// Fewer points than shards.
	pts := datagen.Uniform(3, 3, datagen.UnitBounds(2))
	part, err := Partition(pts, 10, Hilbert)
	if err != nil {
		t.Fatal(err)
	}
	checkPartitioning(t, pts, part, 10)

	// Single point.
	part, err = Partition(pts[:1], 4, ZOrder)
	if err != nil {
		t.Fatal(err)
	}
	checkPartitioning(t, pts[:1], part, 4)

	if _, err := Partition(nil, 2, ZOrder); err == nil {
		t.Fatal("Partition(empty) should fail")
	}
	if _, err := Partition(pts, 0, ZOrder); err == nil {
		t.Fatal("Partition(0 shards) should fail")
	}
	pts3 := datagen.Uniform(5, 16, datagen.UnitBounds(3))
	if _, err := Partition(pts3, 2, Hilbert); err == nil {
		t.Fatal("Hilbert partition of 3-D data should fail")
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{{"zorder", ZOrder}, {"z", ZOrder}, {"hilbert", Hilbert}, {"h", Hilbert}} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseKind("peano"); err == nil {
		t.Fatal("ParseKind(peano) should fail")
	}
	if ZOrder.String() != "zorder" || Hilbert.String() != "hilbert" {
		t.Fatal("Kind.String mismatch")
	}
}
