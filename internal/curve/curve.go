// Package curve implements the space-filling curves used to impose a
// locality-preserving linear order on multi-dimensional points: Z-order
// (Morton order, arbitrary dimensionality) and the Hilbert curve (2-D).
//
// The BNN baseline sorts the outer dataset along such a curve to form
// spatially coherent groups; GORDER's grid order is a related
// lexicographic cell order implemented in the gorder package.
package curve

import (
	"fmt"
	"sort"

	"allnn/internal/geom"
)

// ZEncoder quantises points within a bounding box onto a 2^bits-per-dim
// grid and interleaves the coordinate bits into a single uint64 Z-value.
type ZEncoder struct {
	bounds  geom.Rect
	scale   []float64 // per-dim multiplier mapping coordinate -> cell
	bits    uint      // bits per dimension
	maxCell uint64    // 2^bits - 1
}

// NewZEncoder builds an encoder for points inside bounds. The number of
// bits per dimension is chosen as large as fits in 64 total bits (capped
// at 21 per dimension so that the shifts stay in range).
func NewZEncoder(bounds geom.Rect) *ZEncoder {
	dim := bounds.Dim()
	if dim == 0 {
		panic("curve: zero-dimensional bounds")
	}
	bits := uint(64 / dim)
	if bits > 21 {
		bits = 21
	}
	if bits == 0 {
		panic(fmt.Sprintf("curve: dimensionality %d too large for a 64-bit Z-value", dim))
	}
	e := &ZEncoder{
		bounds:  bounds.Clone(),
		scale:   make([]float64, dim),
		bits:    bits,
		maxCell: (uint64(1) << bits) - 1,
	}
	for d := 0; d < dim; d++ {
		extent := bounds.Hi[d] - bounds.Lo[d]
		if extent > 0 {
			e.scale[d] = float64(e.maxCell+1) / extent
		}
	}
	return e
}

// BitsPerDim returns the grid resolution in bits per dimension.
func (e *ZEncoder) BitsPerDim() uint { return e.bits }

// Cell returns the grid cell of p in dimension d, clamped to the grid.
func (e *ZEncoder) Cell(p geom.Point, d int) uint64 {
	v := (p[d] - e.bounds.Lo[d]) * e.scale[d]
	if v <= 0 {
		return 0
	}
	c := uint64(v)
	if c > e.maxCell {
		c = e.maxCell
	}
	return c
}

// Value returns the Z-order value of p: the bit-interleaving of its grid
// cell coordinates, most significant bit first.
func (e *ZEncoder) Value(p geom.Point) uint64 {
	dim := len(e.scale)
	if len(p) != dim {
		panic(fmt.Sprintf("curve: point dimensionality %d, encoder %d", len(p), dim))
	}
	var z uint64
	for b := int(e.bits) - 1; b >= 0; b-- {
		for d := 0; d < dim; d++ {
			z = (z << 1) | ((e.Cell(p, d) >> uint(b)) & 1)
		}
	}
	return z
}

// SortZOrder sorts idx (a permutation of point indices) in place by the
// Z-order value of the corresponding points. Sorting an index slice
// rather than the points keeps the caller's point identities stable.
func SortZOrder(pts []geom.Point, idx []int) {
	if len(pts) == 0 {
		return
	}
	e := NewZEncoder(geom.BoundingRect(pts))
	keys := make([]uint64, len(pts))
	for i, p := range pts {
		keys[i] = e.Value(p)
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
}

// HilbertValue returns the index of cell (x, y) along a 2-D Hilbert curve
// of the given order (grid side 2^order). x and y must be < 2^order.
//
// This is the classic bit-twiddling conversion (Warren, "Hacker's
// Delight" / Wikipedia xy2d): walk the quadrant bits from most to least
// significant, rotating the frame at each step.
func HilbertValue(order uint, x, y uint64) uint64 {
	var d uint64
	for s := uint64(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint64
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// HilbertPoint is the inverse of HilbertValue: it maps a curve index d to
// the cell (x, y) on a Hilbert curve of the given order.
func HilbertPoint(order uint, d uint64) (x, y uint64) {
	t := d
	for s := uint64(1); s < uint64(1)<<order; s <<= 1 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// HilbertEncoder quantises 2-D points onto a Hilbert curve within a
// bounding box. It provides better locality than Z-order in two
// dimensions and is the grouping order used by the BNN baseline on 2-D
// workloads.
type HilbertEncoder struct {
	z     *ZEncoder
	order uint
}

// NewHilbertEncoder builds an encoder over 2-D bounds.
func NewHilbertEncoder(bounds geom.Rect) *HilbertEncoder {
	if bounds.Dim() != 2 {
		panic(fmt.Sprintf("curve: Hilbert encoder requires 2-D bounds, got %d-D", bounds.Dim()))
	}
	return &HilbertEncoder{z: NewZEncoder(bounds), order: NewZEncoder(bounds).BitsPerDim()}
}

// Value returns the Hilbert index of the grid cell containing p.
func (e *HilbertEncoder) Value(p geom.Point) uint64 {
	return HilbertValue(e.order, e.z.Cell(p, 0), e.z.Cell(p, 1))
}

// SortHilbert sorts idx in place by Hilbert order of 2-D points.
func SortHilbert(pts []geom.Point, idx []int) {
	if len(pts) == 0 {
		return
	}
	e := NewHilbertEncoder(geom.BoundingRect(pts))
	keys := make([]uint64, len(pts))
	for i, p := range pts {
		keys[i] = e.Value(p)
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
}
