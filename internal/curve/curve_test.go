package curve

import (
	"math/rand"
	"testing"

	"allnn/internal/geom"
)

func unitSquare() geom.Rect {
	return geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
}

func TestZEncoderBits(t *testing.T) {
	cases := []struct {
		dim  int
		want uint
	}{
		{1, 21}, {2, 21}, {3, 21}, {4, 16}, {6, 10}, {10, 6}, {32, 2},
	}
	for _, c := range cases {
		lo := make(geom.Point, c.dim)
		hi := make(geom.Point, c.dim)
		for d := range hi {
			hi[d] = 1
		}
		e := NewZEncoder(geom.NewRect(lo, hi))
		if e.BitsPerDim() != c.want {
			t.Errorf("dim %d: bits = %d, want %d", c.dim, e.BitsPerDim(), c.want)
		}
	}
}

func TestZEncoderCellClamping(t *testing.T) {
	e := NewZEncoder(unitSquare())
	// Outside points clamp to the boundary cells rather than wrapping.
	if got := e.Cell(geom.Point{-5, 0}, 0); got != 0 {
		t.Errorf("cell below range = %d, want 0", got)
	}
	max := uint64(1)<<e.BitsPerDim() - 1
	if got := e.Cell(geom.Point{5, 0}, 0); got != max {
		t.Errorf("cell above range = %d, want %d", got, max)
	}
}

func TestZValueKnownInterleaving(t *testing.T) {
	// 2-D with 21 bits/dim: the point at the exact center has top cell
	// bits (1, 1), so the two most significant interleaved bits are 11.
	e := NewZEncoder(unitSquare())
	zCenter := e.Value(geom.Point{0.5, 0.5})
	zOrigin := e.Value(geom.Point{0, 0})
	if zOrigin != 0 {
		t.Errorf("Z(origin) = %d, want 0", zOrigin)
	}
	if zCenter <= zOrigin {
		t.Error("Z(center) should exceed Z(origin)")
	}
	// Quadrant ordering of Z: (lo,lo) < (hi,lo)... with x interleaved
	// first: z(0.25,0.25) < z(0.25,0.75) < z(0.75,0.25) < z(0.75,0.75)
	q := []geom.Point{{0.25, 0.25}, {0.25, 0.75}, {0.75, 0.25}, {0.75, 0.75}}
	var prev uint64
	for i, p := range q {
		z := e.Value(p)
		if i > 0 && z <= prev {
			t.Fatalf("quadrant %d out of order: z=%d prev=%d", i, z, prev)
		}
		prev = z
	}
}

func TestZValueMonotone1D(t *testing.T) {
	e := NewZEncoder(geom.NewRect(geom.Point{0}, geom.Point{100}))
	var prev uint64
	for i := 0; i <= 100; i++ {
		z := e.Value(geom.Point{float64(i)})
		if z < prev {
			t.Fatalf("1-D Z-order not monotone at %d", i)
		}
		prev = z
	}
}

func TestSortZOrderGroupsNeighbors(t *testing.T) {
	// Two well-separated clusters: after Z-order sorting, all points of
	// one cluster must be contiguous.
	rng := rand.New(rand.NewSource(9))
	var pts []geom.Point
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Point{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Point{1000 + rng.Float64(), 1000 + rng.Float64()})
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	SortZOrder(pts, idx)
	// Find the transition point; after it, no low-cluster point may appear.
	inHigh := false
	for _, i := range idx {
		high := pts[i][0] > 500
		if inHigh && !high {
			t.Fatal("Z-order interleaved two well-separated clusters")
		}
		if high {
			inHigh = true
		}
	}
}

func TestHilbertKnownOrder2(t *testing.T) {
	// Order-2 Hilbert curve (4x4 grid) canonical indexing.
	want := map[[2]uint64]uint64{
		{0, 0}: 0, {1, 0}: 1, {1, 1}: 2, {0, 1}: 3,
		{0, 2}: 4, {0, 3}: 5, {1, 3}: 6, {1, 2}: 7,
		{2, 2}: 8, {2, 3}: 9, {3, 3}: 10, {3, 2}: 11,
		{3, 1}: 12, {2, 1}: 13, {2, 0}: 14, {3, 0}: 15,
	}
	for xy, d := range want {
		if got := HilbertValue(2, xy[0], xy[1]); got != d {
			t.Errorf("HilbertValue(2, %d, %d) = %d, want %d", xy[0], xy[1], got, d)
		}
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	const order = 8
	n := uint64(1) << (2 * order)
	for d := uint64(0); d < n; d += 7 { // sample the curve
		x, y := HilbertPoint(order, d)
		if got := HilbertValue(order, x, y); got != d {
			t.Fatalf("round trip failed: d=%d -> (%d,%d) -> %d", d, x, y, got)
		}
	}
}

// TestHilbertAdjacency: consecutive curve indices map to grid cells at
// Manhattan distance exactly 1 — the defining property of the Hilbert
// curve.
func TestHilbertAdjacency(t *testing.T) {
	const order = 6
	n := uint64(1) << (2 * order)
	px, py := HilbertPoint(order, 0)
	for d := uint64(1); d < n; d++ {
		x, y := HilbertPoint(order, d)
		dx := int64(x) - int64(px)
		dy := int64(y) - int64(py)
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("cells for d=%d and d=%d are not adjacent: (%d,%d) -> (%d,%d)",
				d-1, d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestHilbertEncoderRequires2D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 3-D bounds")
		}
	}()
	NewHilbertEncoder(geom.NewRect(geom.Point{0, 0, 0}, geom.Point{1, 1, 1}))
}

func TestSortHilbertGroupsNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts []geom.Point
	for i := 0; i < 40; i++ {
		pts = append(pts, geom.Point{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, geom.Point{500 + rng.Float64(), 500 + rng.Float64()})
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	SortHilbert(pts, idx)
	inHigh := false
	for _, i := range idx {
		high := pts[i][0] > 250
		if inHigh && !high {
			t.Fatal("Hilbert order interleaved two well-separated clusters")
		}
		if high {
			inHigh = true
		}
	}
}

func TestZeroExtentBounds(t *testing.T) {
	// Degenerate bounds (all points identical) must not divide by zero.
	e := NewZEncoder(geom.NewRect(geom.Point{3, 3}, geom.Point{3, 3}))
	if got := e.Value(geom.Point{3, 3}); got != 0 {
		t.Fatalf("Z-value in degenerate bounds = %d, want 0", got)
	}
}
