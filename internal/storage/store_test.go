package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testStores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewTempFileStore()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	ms := NewMemStore()
	t.Cleanup(func() { ms.Close() })
	return map[string]Store{"mem": ms, "file": fs}
}

func TestStoreAllocateReadWrite(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			id0, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			id1, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id0 == id1 {
				t.Fatalf("Allocate returned duplicate id %d", id0)
			}
			if s.NumPages() != 2 {
				t.Fatalf("NumPages = %d, want 2", s.NumPages())
			}

			buf := make([]byte, PageSize)
			for i := range buf {
				buf[i] = byte(i % 251)
			}
			if err := s.WritePage(id1, buf); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, PageSize)
			if err := s.ReadPage(id1, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, got) {
				t.Fatal("read back different bytes")
			}
			// Page 0 must still be zeroed.
			if err := s.ReadPage(id0, got); err != nil {
				t.Fatal(err)
			}
			for i, b := range got {
				if b != 0 {
					t.Fatalf("fresh page byte %d = %d, want 0", i, b)
				}
			}
		})
	}
}

func TestStoreOutOfRange(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			buf := make([]byte, PageSize)
			if err := s.ReadPage(5, buf); err == nil {
				t.Error("expected error reading unallocated page")
			}
			if err := s.WritePage(5, buf); err == nil {
				t.Error("expected error writing unallocated page")
			}
		})
	}
}

func TestFileStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, []byte("persistent payload"))
	if err := fs.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d, want 1", reopened.NumPages())
	}
	got := make([]byte, PageSize)
	if err := reopened.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("persistent payload")) {
		t.Fatal("payload lost across reopen")
	}
}

func TestOpenFileStoreRejectsRaggedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ragged.db")
	if err := os.WriteFile(path, make([]byte, PageSize+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("expected error opening ragged page file")
	}
}

func TestTempFileStoreRemovedOnClose(t *testing.T) {
	fs, err := NewTempFileStore()
	if err != nil {
		t.Fatal(err)
	}
	path := fs.Path()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("temp file missing before close: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("temp file still present after close: %v", err)
	}
}
