// Package storage provides the disk substrate the indexes and join
// algorithms run on: fixed-size pages, page stores (file-backed and
// in-memory), and an LRU buffer pool with pin/unpin semantics and full
// I/O statistics.
//
// It plays the role that the SHORE storage manager plays in the paper's
// experiments: the paper compiles SHORE with 8 KB pages and a 64-page
// (512 KB) buffer pool, and reports I/O cost that is driven by buffer
// misses under LRU replacement. This package reproduces exactly that
// behaviour and exposes the miss counts so the benchmark harness can
// derive I/O time.
//
// The buffer pool and both stores are safe for concurrent use: the pool
// shards its frames by page id behind per-shard mutexes so that the
// parallel ANN executor's subtree workers can read index pages through a
// shared pool. The index structures built on top remain single-writer
// (concurrent *reads* of a finished index are safe; concurrent inserts
// are not).
package storage

import (
	"fmt"
	"os"
	"sync"
)

// PageSize is the size of every page in bytes. The paper uses 8 KB pages.
const PageSize = 8192

// PageID identifies a page within a Store. Pages are numbered from zero.
type PageID uint32

// InvalidPage is a sentinel PageID that never refers to a real page.
const InvalidPage PageID = ^PageID(0)

// Store is a flat array of fixed-size pages. Implementations must allow
// reading any previously allocated page and writing any allocated page.
type Store interface {
	// ReadPage copies the content of page id into buf, which must be at
	// least PageSize bytes long.
	ReadPage(id PageID, buf []byte) error
	// WritePage overwrites page id with the first PageSize bytes of buf.
	WritePage(id PageID, buf []byte) error
	// Allocate appends a new zeroed page and returns its id.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases the underlying resources.
	Close() error
}

// MemStore is an in-memory Store. It is the default substrate for tests
// and for experiments where only the buffer-miss counts (not real disk
// latency) matter. All methods are safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadPage implements Store.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, len(s.pages))
	}
	copy(buf[:PageSize], s.pages[id])
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, len(s.pages))
	}
	copy(s.pages[id], buf[:PageSize])
	return nil
}

// Allocate implements Store.
func (s *MemStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = append(s.pages, make([]byte, PageSize))
	return PageID(len(s.pages) - 1), nil
}

// NumPages implements Store.
func (s *MemStore) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = nil
	return nil
}

// FileStore is a Store backed by a single flat file of pages, the
// disk-resident variant used when experiments should touch a real
// filesystem. Page reads and writes go through ReadAt/WriteAt, which the
// OS serialises per offset; the page count is guarded by a mutex, so all
// methods are safe for concurrent use.
type FileStore struct {
	f     *os.File
	mu    sync.RWMutex
	pages int
	path  string
	temp  bool
}

// NewFileStore creates (truncating) a page file at path.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create page file: %w", err)
	}
	return &FileStore{f: f, path: path}, nil
}

// OpenFileStore opens an existing page file at path for reading and
// writing. The file length must be a multiple of PageSize.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s has size %d, not a multiple of %d",
			path, info.Size(), PageSize)
	}
	return &FileStore{f: f, path: path, pages: int(info.Size() / PageSize)}, nil
}

// NewTempFileStore creates a page file in the default temp directory that
// is removed on Close.
func NewTempFileStore() (*FileStore, error) {
	f, err := os.CreateTemp("", "allnn-pages-*.db")
	if err != nil {
		return nil, fmt.Errorf("storage: create temp page file: %w", err)
	}
	return &FileStore{f: f, path: f.Name(), temp: true}, nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	s.mu.RLock()
	n := s.pages
	s.mu.RUnlock()
	if int(id) >= n {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, n)
	}
	_, err := s.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	s.mu.RLock()
	n := s.pages
	s.mu.RUnlock()
	if int(id) >= n {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, n)
	}
	_, err := s.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(s.pages)
	if err := s.f.Truncate(int64(s.pages+1) * PageSize); err != nil {
		return InvalidPage, fmt.Errorf("storage: grow page file: %w", err)
	}
	s.pages++
	return id, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pages
}

// Path returns the location of the backing file.
func (s *FileStore) Path() string { return s.path }

// Close implements Store, removing the file if it was created as a temp
// store.
func (s *FileStore) Close() error {
	err := s.f.Close()
	if s.temp {
		if rmErr := os.Remove(s.path); err == nil {
			err = rmErr
		}
	}
	return err
}
