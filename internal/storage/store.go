// Package storage provides the disk substrate the indexes and join
// algorithms run on: fixed-size pages, page stores (file-backed and
// in-memory), and an LRU buffer pool with pin/unpin semantics and full
// I/O statistics.
//
// It plays the role that the SHORE storage manager plays in the paper's
// experiments: the paper compiles SHORE with 8 KB pages and a 64-page
// (512 KB) buffer pool, and reports I/O cost that is driven by buffer
// misses under LRU replacement. This package reproduces exactly that
// behaviour and exposes the miss counts so the benchmark harness can
// derive I/O time.
//
// Unlike the original in-memory substitute, the stores here assume disks
// fail: every page is stored with a small header (magic, format version,
// page-id echo, CRC32-C over the payload) sealed on write and verified on
// read, failures are classified as ErrCorruptPage or ErrTransientIO, the
// buffer pool retries transient read errors with capped backoff, and
// FaultStore injects deterministic faults for chaos testing.
//
// The buffer pool and both stores are safe for concurrent use: the pool
// shards its frames by page id behind per-shard mutexes so that the
// parallel ANN executor's subtree workers can read index pages through a
// shared pool. The index structures built on top remain single-writer,
// but once a tree enables copy-on-write versioning (see the mbrqt and
// rstar packages) that single writer may run concurrently with readers:
// published pages are never mutated, so reader pins and writer updates
// touch disjoint pages.
//
// Durability is layered on top by the WAL (see wal.go): mutations are
// logged and fsynced before they touch tree pages, checkpoints flush the
// pool with the tree's meta page written and synced last, and recovery
// replays the committed log suffix against the last checkpointed root.
package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// PageSize is the size of every page in bytes. The paper uses 8 KB pages.
const PageSize = 8192

// PageID identifies a page within a Store. Pages are numbered from zero.
type PageID uint32

// InvalidPage is a sentinel PageID that never refers to a real page.
const InvalidPage PageID = ^PageID(0)

// Store is a flat array of fixed-size pages. Implementations must allow
// reading any previously allocated page and writing any allocated page.
type Store interface {
	// ReadPage copies the content of page id into buf, which must be at
	// least PageSize bytes long. Implementations verify the page header
	// and return an error wrapping ErrCorruptPage when the stored bytes
	// fail verification.
	ReadPage(id PageID, buf []byte) error
	// WritePage overwrites page id with the first PageSize bytes of buf,
	// sealing the page header (checksum included) around the payload.
	WritePage(id PageID, buf []byte) error
	// Allocate appends a new zeroed page and returns its id.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Sync forces previously written pages to stable storage. A failure
	// wraps ErrWriteFailed: the durability of everything written since
	// the last successful Sync is unknown.
	Sync() error
	// Close releases the underlying resources.
	Close() error
}

// MemStore is an in-memory Store. It is the default substrate for tests
// and for experiments where only the buffer-miss counts (not real disk
// latency) matter. Pages are held in their physical form (header +
// payload) so that checksum verification — and FaultStore's corruption
// injection — behave identically to the file-backed store. All methods
// are safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte // physical pages: PageHeaderSize + PageSize bytes each
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadPage implements Store.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, len(s.pages))
	}
	phys := s.pages[id]
	if err := verifyPage(phys, id); err != nil {
		return err
	}
	copy(buf[:PageSize], phys[PageHeaderSize:])
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, len(s.pages))
	}
	phys := s.pages[id]
	copy(phys[PageHeaderSize:], buf[:PageSize])
	sealPage(phys, id)
	return nil
}

// Allocate implements Store. The fresh page is sealed around a zero
// payload so that reading an allocated-but-never-written page verifies.
func (s *MemStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(len(s.pages))
	phys := make([]byte, physPageSize)
	sealPage(phys, id)
	s.pages = append(s.pages, phys)
	return id, nil
}

// NumPages implements Store.
func (s *MemStore) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// Sync implements Store. Memory is as stable as it gets.
func (s *MemStore) Sync() error { return nil }

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = nil
	return nil
}

// mutatePhysical implements physicalMutator for fault injection.
func (s *MemStore) mutatePhysical(id PageID, mutate func(phys []byte)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: mutate of unallocated page %d (have %d)", id, len(s.pages))
	}
	mutate(s.pages[id])
	return nil
}

// physBufPool recycles physical-page scratch buffers for the file store's
// read/write paths, keeping the steady state allocation-free.
var physBufPool = sync.Pool{New: func() any {
	b := make([]byte, physPageSize)
	return &b
}}

// FileStore is a Store backed by a single flat file of pages, the
// disk-resident variant used when experiments should touch a real
// filesystem. Each stored page is a PageHeaderSize header followed by the
// PageSize payload; files written before the header existed (detected by
// OpenFileStore via the magic) are served in legacy mode: raw PageSize
// pages with no verification, so pre-header data stays readable.
//
// Page reads and writes go through ReadAt/WriteAt, which the OS
// serialises per offset; the page count is guarded by a mutex, so all
// methods are safe for concurrent use.
type FileStore struct {
	f      *os.File
	mu     sync.RWMutex
	pages  int
	path   string
	temp   bool
	legacy bool // pre-header file: raw pages, no checksums
}

// NewFileStore creates (truncating) a page file at path.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create page file: %w", err)
	}
	return &FileStore{f: f, path: path}, nil
}

// OpenFileStore opens an existing page file at path for reading and
// writing, detecting its on-disk format:
//
//   - current format: pages carry the checksummed header; the file length
//     is a multiple of PageHeaderSize+PageSize and the first page starts
//     with the magic. Reads are verified.
//   - legacy format (pre-header): the file length is a multiple of
//     PageSize and the first bytes are not the magic. The store serves it
//     in legacy mode — raw pages, no verification — so data written by
//     older builds keeps working. Use Legacy to detect and re-write.
//
// A file matching neither layout is rejected with a clear error.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return &FileStore{f: f, path: path}, nil
	}
	var head [4]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: read page file header: %w", err)
	}
	hasMagic := binary.LittleEndian.Uint32(head[:]) == pageMagic
	switch {
	case hasMagic && size%physPageSize == 0:
		return &FileStore{f: f, path: path, pages: int(size / physPageSize)}, nil
	case !hasMagic && size%PageSize == 0:
		return &FileStore{f: f, path: path, pages: int(size / PageSize), legacy: true}, nil
	default:
		f.Close()
		return nil, fmt.Errorf("storage: page file %s (size %d, magic %v) matches neither the "+
			"checksummed layout (%d-byte pages) nor the legacy layout (%d-byte pages)",
			path, size, hasMagic, physPageSize, PageSize)
	}
}

// NewTempFileStore creates a page file in the default temp directory that
// is removed on Close.
func NewTempFileStore() (*FileStore, error) {
	f, err := os.CreateTemp("", "allnn-pages-*.db")
	if err != nil {
		return nil, fmt.Errorf("storage: create temp page file: %w", err)
	}
	return &FileStore{f: f, path: f.Name(), temp: true}, nil
}

// Legacy reports whether the file predates the page header and is served
// without checksums.
func (s *FileStore) Legacy() bool { return s.legacy }

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	s.mu.RLock()
	n := s.pages
	s.mu.RUnlock()
	if int(id) >= n {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, n)
	}
	if s.legacy {
		_, err := s.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
		return err
	}
	physPtr := physBufPool.Get().(*[]byte)
	phys := *physPtr
	defer physBufPool.Put(physPtr)
	if _, err := s.f.ReadAt(phys, int64(id)*physPageSize); err != nil {
		return err
	}
	if err := verifyPage(phys, id); err != nil {
		return err
	}
	copy(buf[:PageSize], phys[PageHeaderSize:])
	return nil
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	s.mu.RLock()
	n := s.pages
	s.mu.RUnlock()
	if int(id) >= n {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, n)
	}
	if s.legacy {
		if _, err := s.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
			return fmt.Errorf("storage: page %d: %v: %w", id, err, ErrWriteFailed)
		}
		return nil
	}
	physPtr := physBufPool.Get().(*[]byte)
	phys := *physPtr
	defer physBufPool.Put(physPtr)
	copy(phys[PageHeaderSize:], buf[:PageSize])
	sealPage(phys, id)
	if _, err := s.f.WriteAt(phys, int64(id)*physPageSize); err != nil {
		return fmt.Errorf("storage: page %d: %v: %w", id, err, ErrWriteFailed)
	}
	return nil
}

// Allocate implements Store. In the current format the fresh page is
// sealed around a zero payload so that a read before any write verifies.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(s.pages)
	stride := int64(physPageSize)
	if s.legacy {
		stride = PageSize
	}
	if err := s.f.Truncate(int64(s.pages+1) * stride); err != nil {
		return InvalidPage, fmt.Errorf("storage: grow page file: %w", err)
	}
	if !s.legacy {
		physPtr := physBufPool.Get().(*[]byte)
		phys := *physPtr
		for i := range phys {
			phys[i] = 0
		}
		sealPage(phys, id)
		_, err := s.f.WriteAt(phys, int64(id)*stride)
		physBufPool.Put(physPtr)
		if err != nil {
			return InvalidPage, fmt.Errorf("storage: seal fresh page: %w", err)
		}
	}
	s.pages++
	return id, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pages
}

// Path returns the location of the backing file.
func (s *FileStore) Path() string { return s.path }

// Sync implements Store: an fsync of the backing file, the durability
// fence every checkpoint relies on.
func (s *FileStore) Sync() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync page file: %v: %w", err, ErrWriteFailed)
	}
	return nil
}

// Close implements Store, removing the file if it was created as a temp
// store.
func (s *FileStore) Close() error {
	err := s.f.Close()
	if s.temp {
		if rmErr := os.Remove(s.path); err == nil {
			err = rmErr
		}
	}
	return err
}

// mutatePhysical implements physicalMutator for fault injection. In
// legacy mode the raw page doubles as the physical page.
func (s *FileStore) mutatePhysical(id PageID, mutate func(phys []byte)) error {
	s.mu.RLock()
	n := s.pages
	s.mu.RUnlock()
	if int(id) >= n {
		return fmt.Errorf("storage: mutate of unallocated page %d (have %d)", id, n)
	}
	stride := int64(physPageSize)
	if s.legacy {
		stride = PageSize
	}
	phys := make([]byte, stride)
	if _, err := s.f.ReadAt(phys, int64(id)*stride); err != nil {
		return err
	}
	mutate(phys)
	_, err := s.f.WriteAt(phys, int64(id)*stride)
	return err
}
