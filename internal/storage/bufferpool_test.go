package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// newPoolWithPages returns a pool over a MemStore pre-filled with n pages,
// page i filled with byte(i).
func newPoolWithPages(t *testing.T, frames, n int) *BufferPool {
	t.Helper()
	store := NewMemStore()
	buf := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		id, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := store.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return NewBufferPool(store, frames)
}

func TestFramesForBytes(t *testing.T) {
	if got := FramesForBytes(512 * 1024); got != 64 {
		t.Errorf("FramesForBytes(512KB) = %d, want 64", got)
	}
	if got := FramesForBytes(100); got != 1 {
		t.Errorf("FramesForBytes(100) = %d, want 1", got)
	}
}

func TestGetHitMiss(t *testing.T) {
	p := newPoolWithPages(t, 4, 8)
	f, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data()[0] != 3 {
		t.Fatalf("page content = %d, want 3", f.Data()[0])
	}
	f.Release()
	st := p.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats after first Get = %+v", st)
	}
	f, err = p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	st = p.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats after second Get = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p := newPoolWithPages(t, 2, 4)
	get := func(id PageID) {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	get(0) // resident: {0}
	get(1) // resident: {0,1}
	get(0) // 0 now MRU
	get(2) // must evict 1 (LRU), resident {0,2}
	p.ResetStats()
	get(0)
	if st := p.Stats(); st.Hits != 1 {
		t.Fatalf("page 0 should still be resident: %+v", st)
	}
	get(1)
	if st := p.Stats(); st.Misses != 1 {
		t.Fatalf("page 1 should have been evicted: %+v", st)
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	p := newPoolWithPages(t, 2, 4)
	pinned, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle several other pages through the remaining frame.
	for id := PageID(1); id <= 3; id++ {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	p.ResetStats()
	f, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 {
		t.Fatalf("pinned page was evicted: %+v", st)
	}
	f.Release()
	pinned.Release()
}

func TestPoolFullWhenAllPinned(t *testing.T) {
	p := newPoolWithPages(t, 2, 4)
	f0, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(2); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("Get with all frames pinned: err = %v, want ErrPoolFull", err)
	}
	f0.Release()
	// Now there is an evictable frame.
	f2, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	f2.Release()
	f1.Release()
}

func TestDirtyPageWrittenBackOnEviction(t *testing.T) {
	store := NewMemStore()
	id, _ := store.Allocate()
	id2, _ := store.Allocate()
	p := NewBufferPool(store, 1)

	f, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 0xAB
	f.MarkDirty()
	f.Release()

	// Force eviction of the dirty page.
	f2, err := p.Get(id2)
	if err != nil {
		t.Fatal(err)
	}
	f2.Release()
	if st := p.Stats(); st.Writes != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 write and 1 eviction", st)
	}

	buf := make([]byte, PageSize)
	if err := store.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatal("dirty page not written back on eviction")
	}
}

func TestCleanPageNotWrittenBackOnEviction(t *testing.T) {
	p := newPoolWithPages(t, 1, 2)
	f, _ := p.Get(0)
	f.Release()
	f, _ = p.Get(1)
	f.Release()
	if st := p.Stats(); st.Writes != 0 {
		t.Fatalf("clean eviction caused %d writes", st.Writes)
	}
}

func TestNewPageZeroedAndFlushed(t *testing.T) {
	store := NewMemStore()
	p := NewBufferPool(store, 2)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	copy(f.Data(), []byte("hello"))
	f.MarkDirty()
	f.Release()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := store.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:5]) != "hello" {
		t.Fatal("FlushAll did not persist page content")
	}
}

// TestNewPageReusedFrameIsZeroed ensures NewPage never leaks bytes from a
// previous occupant of the frame.
func TestNewPageReusedFrameIsZeroed(t *testing.T) {
	store := NewMemStore()
	p := NewBufferPool(store, 1)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data() {
		f.Data()[i] = 0xFF
	}
	f.MarkDirty()
	f.Release()

	f2, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Release()
	for i, b := range f2.Data() {
		if b != 0 {
			t.Fatalf("byte %d of fresh page = %#x, want 0", i, b)
		}
	}
}

func TestReleaseTwicePanics(t *testing.T) {
	p := newPoolWithPages(t, 2, 2)
	f, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	f.Release()
}

func TestPinnedFramesCounter(t *testing.T) {
	p := newPoolWithPages(t, 4, 4)
	if p.PinnedFrames() != 0 {
		t.Fatal("fresh pool has pinned frames")
	}
	f0, _ := p.Get(0)
	f1, _ := p.Get(1)
	if p.PinnedFrames() != 2 {
		t.Fatalf("PinnedFrames = %d, want 2", p.PinnedFrames())
	}
	f0.Release()
	f1.Release()
	if p.PinnedFrames() != 0 {
		t.Fatalf("PinnedFrames = %d, want 0", p.PinnedFrames())
	}
}

// TestRandomizedConsistency drives the pool with a random workload against
// a reference model and verifies page contents and conservation of data.
func TestRandomizedConsistency(t *testing.T) {
	const numPages = 32
	store := NewMemStore()
	model := make([][]byte, numPages)
	for i := 0; i < numPages; i++ {
		if _, err := store.Allocate(); err != nil {
			t.Fatal(err)
		}
		model[i] = make([]byte, PageSize)
	}
	p := NewBufferPool(store, 5)
	rng := rand.New(rand.NewSource(123))
	for step := 0; step < 5000; step++ {
		id := PageID(rng.Intn(numPages))
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		// Verify a few random offsets against the model.
		for k := 0; k < 4; k++ {
			off := rng.Intn(PageSize)
			if f.Data()[off] != model[id][off] {
				t.Fatalf("step %d: page %d offset %d = %d, model says %d",
					step, id, off, f.Data()[off], model[id][off])
			}
		}
		if rng.Intn(2) == 0 {
			off := rng.Intn(PageSize)
			v := byte(rng.Intn(256))
			f.Data()[off] = v
			model[id][off] = v
			f.MarkDirty()
		}
		f.Release()
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < numPages; i++ {
		if err := store.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		for off := range buf {
			if buf[off] != model[i][off] {
				t.Fatalf("final state: page %d offset %d = %d, model %d",
					i, off, buf[off], model[i][off])
			}
		}
	}
}

func TestDefaultShardCount(t *testing.T) {
	// Small pools must stay single-sharded so the paper's 64-frame pool
	// keeps its exact global LRU behaviour.
	if got := NewBufferPool(NewMemStore(), 64).NumShards(); got != 1 {
		t.Errorf("64-frame pool has %d shards, want 1", got)
	}
	p := NewBufferPool(NewMemStore(), 8192)
	if p.NumShards() < 1 || p.NumShards() > 16 {
		t.Errorf("8192-frame pool has %d shards, want 1..16", p.NumShards())
	}
	if p.NumFrames() != 8192 {
		t.Errorf("NumFrames = %d, want 8192", p.NumFrames())
	}
}

func TestShardedPoolFrameSplit(t *testing.T) {
	p := NewShardedBufferPool(NewMemStore(), 10, 4)
	if p.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", p.NumShards())
	}
	if p.NumFrames() != 10 {
		t.Fatalf("NumFrames = %d, want 10", p.NumFrames())
	}
	// More shards than frames collapses to one frame per shard.
	p = NewShardedBufferPool(NewMemStore(), 3, 8)
	if p.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", p.NumShards())
	}
}

// TestConcurrentGetStress hammers a sharded pool from many goroutines
// pinning and unpinning overlapping page sets, verifying page contents
// on every access and the pin accounting at the end. Run with -race this
// is the synchronization proof for the parallel ANN executor.
func TestConcurrentGetStress(t *testing.T) {
	const (
		numPages   = 64
		goroutines = 8
		iters      = 3000
	)
	store := NewMemStore()
	for i := 0; i < numPages; i++ {
		id, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, PageSize)
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := store.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Frames are scarce relative to the page set so evictions happen
	// constantly, but each shard can still hold every concurrent pin
	// (goroutines pin at most 2 pages at a time).
	p := NewShardedBufferPool(store, 64, 4)
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < iters; it++ {
				id := PageID(rng.Intn(numPages))
				f, err := p.Get(id)
				if err != nil {
					errc <- err
					return
				}
				if got := f.Data()[rng.Intn(PageSize)]; got != byte(id) {
					errc <- fmt.Errorf("page %d holds byte %d", id, got)
					f.Release()
					return
				}
				// Half the time pin a second, overlapping page before
				// releasing the first, to exercise nested pin counts.
				if rng.Intn(2) == 0 {
					id2 := PageID(rng.Intn(numPages))
					f2, err := p.Get(id2)
					if err != nil {
						errc <- err
						f.Release()
						return
					}
					if got := f2.Data()[0]; got != byte(id2) {
						errc <- fmt.Errorf("page %d holds byte %d", id2, got)
						f2.Release()
						f.Release()
						return
					}
					f2.Release()
				}
				f.Release()
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if n := p.PinnedFrames(); n != 0 {
		t.Fatalf("PinnedFrames = %d after all releases, want 0", n)
	}
	st := p.Stats()
	if st.Hits+st.Misses < goroutines*iters {
		t.Fatalf("hits+misses = %d, want at least %d", st.Hits+st.Misses, goroutines*iters)
	}
	if st.Writes != 0 {
		t.Fatalf("read-only workload caused %d writes", st.Writes)
	}
}

// TestConcurrentPinsSamePage verifies the pin count under many
// simultaneous pins of one page: the page must stay resident and the
// final unpin must return it to the LRU exactly once.
func TestConcurrentPinsSamePage(t *testing.T) {
	p := newPoolWithPages(t, 8, 8)
	const goroutines = 16
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f, err := p.Get(3)
				if err != nil {
					errc <- err
					return
				}
				if f.Data()[0] != 3 {
					errc <- fmt.Errorf("page 3 holds byte %d", f.Data()[0])
					f.Release()
					return
				}
				f.Release()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if n := p.PinnedFrames(); n != 0 {
		t.Fatalf("PinnedFrames = %d, want 0", n)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, Reads: 3, Writes: 4, Evictions: 5}
	b := Stats{Hits: 10, Misses: 20, Reads: 30, Writes: 40, Evictions: 50}
	a.Add(b)
	want := Stats{Hits: 11, Misses: 22, Reads: 33, Writes: 44, Evictions: 55}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
	if want.IOs() != 77 {
		t.Fatalf("IOs = %d, want 77", want.IOs())
	}
}
