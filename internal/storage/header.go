package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Every stored page carries a small physical header ahead of its PageSize
// payload, playing the role SHORE's page LSN/checksum machinery plays for
// the paper's experiments: disks fail, writes tear, and a storage manager
// must notice before corrupt bytes reach the index decoders.
//
// Physical page layout (PageHeaderSize + PageSize bytes):
//
//	offset  0: magic    uint32  — pageMagic ("ANNP")
//	offset  4: version  uint16  — pageFormatVersion
//	offset  6: reserved uint16  — must be zero
//	offset  8: pageID   uint32  — echo of the page's own id, catching
//	                              misdirected reads/writes
//	offset 12: crc      uint32  — CRC32-C over the PageSize payload
//	offset 16: payload  [PageSize]byte
//
// The header is sealed by every WritePage (and Allocate) and verified by
// every ReadPage; any mismatch surfaces as a wrapped ErrCorruptPage. The
// callers of Store only ever see the PageSize payload — framing is
// invisible above the store. Files written before this header existed are
// detected by OpenFileStore and served in legacy mode (see FileStore).
const (
	// PageHeaderSize is the per-page on-disk overhead in bytes.
	PageHeaderSize = 16
	// physPageSize is the stored size of one page: header plus payload.
	physPageSize = PageHeaderSize + PageSize

	pageMagic         = 0x414E4E50 // "PNNA" little-endian; reads as "ANNP" on disk
	pageFormatVersion = 1
)

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sealPage writes a valid header over phys (header + payload) for page id.
// The payload bytes must already be in place.
func sealPage(phys []byte, id PageID) {
	binary.LittleEndian.PutUint32(phys[0:], pageMagic)
	binary.LittleEndian.PutUint16(phys[4:], pageFormatVersion)
	binary.LittleEndian.PutUint16(phys[6:], 0)
	binary.LittleEndian.PutUint32(phys[8:], uint32(id))
	binary.LittleEndian.PutUint32(phys[12:], crc32.Checksum(phys[PageHeaderSize:physPageSize], castagnoli))
}

// verifyPage checks the header of phys against page id and the payload
// checksum. Any mismatch returns an error wrapping ErrCorruptPage.
func verifyPage(phys []byte, id PageID) error {
	if got := binary.LittleEndian.Uint32(phys[0:]); got != pageMagic {
		return fmt.Errorf("storage: page %d: bad magic %#08x: %w", id, got, ErrCorruptPage)
	}
	if got := binary.LittleEndian.Uint16(phys[4:]); got != pageFormatVersion {
		return fmt.Errorf("storage: page %d: unsupported format version %d: %w", id, got, ErrCorruptPage)
	}
	if got := binary.LittleEndian.Uint16(phys[6:]); got != 0 {
		return fmt.Errorf("storage: page %d: nonzero reserved header field %#04x: %w", id, got, ErrCorruptPage)
	}
	if got := binary.LittleEndian.Uint32(phys[8:]); got != uint32(id) {
		return fmt.Errorf("storage: page %d: header claims page %d (misdirected I/O): %w", id, got, ErrCorruptPage)
	}
	want := binary.LittleEndian.Uint32(phys[12:])
	if got := crc32.Checksum(phys[PageHeaderSize:physPageSize], castagnoli); got != want {
		return fmt.Errorf("storage: page %d: checksum mismatch (stored %#08x, computed %#08x): %w",
			id, want, got, ErrCorruptPage)
	}
	return nil
}

// physicalMutator is implemented by stores that can expose a page's raw
// physical bytes (header included) for in-place mutation WITHOUT resealing
// the header. It exists for FaultStore's corruption injection — bit flips
// and torn writes must damage the stored bytes below the checksum so that
// the next ReadPage detects them exactly as a real torn sector would be
// detected.
type physicalMutator interface {
	mutatePhysical(id PageID, mutate func(phys []byte)) error
}
