package storage

// TB is the subset of testing.TB the leak-check helper needs. Declared
// structurally so this file stays out of test-only builds without
// importing the testing package into production code.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// RequireNoPinnedFrames fails the test if any frame of the pool is still
// pinned. Call it (usually via defer) after exercising an error path:
// every code path that pins a frame — including every failure exit — must
// release it, and a nonzero count here is a pin leak that would eventually
// starve the pool into ErrPoolFull.
func RequireNoPinnedFrames(t TB, p *BufferPool) {
	t.Helper()
	if n := p.PinnedFrames(); n != 0 {
		t.Errorf("buffer pool leak: %d frame(s) still pinned", n)
	}
}
