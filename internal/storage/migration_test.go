package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// legacyPageByte reproduces the generator of testdata/legacy_pages.db:
// three raw PageSize pages, no header, written by pre-header builds.
func legacyPageByte(page, off int) byte { return byte(page*131 + off*7) }

// TestOpenLegacyFixture is the migration regression test: a page file
// written before the checksummed header existed must open in legacy mode
// and serve its raw pages byte-for-byte.
func TestOpenLegacyFixture(t *testing.T) {
	// Work on a copy; the test also writes.
	raw, err := os.ReadFile(filepath.Join("testdata", "legacy_pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 3*PageSize {
		t.Fatalf("fixture is %d bytes, want %d", len(raw), 3*PageSize)
	}
	path := filepath.Join(t.TempDir(), "legacy.db")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("OpenFileStore(legacy fixture): %v", err)
	}
	defer s.Close()
	if !s.Legacy() {
		t.Fatal("pre-header file not detected as legacy")
	}
	if got := s.NumPages(); got != 3 {
		t.Fatalf("NumPages = %d, want 3", got)
	}
	buf := make([]byte, PageSize)
	for p := 0; p < 3; p++ {
		if err := s.ReadPage(PageID(p), buf); err != nil {
			t.Fatalf("ReadPage(%d): %v", p, err)
		}
		for j, b := range buf {
			if b != legacyPageByte(p, j) {
				t.Fatalf("page %d byte %d = %#x, want %#x", p, j, b, legacyPageByte(p, j))
			}
		}
	}

	// Legacy files stay writable and growable in the legacy layout, and a
	// reopen still detects them as legacy.
	for i := range buf {
		buf[i] = 0x5A
	}
	if err := s.WritePage(1, buf); err != nil {
		t.Fatalf("legacy WritePage: %v", err)
	}
	if id, err := s.Allocate(); err != nil || id != 3 {
		t.Fatalf("legacy Allocate = (%d, %v), want (3, nil)", id, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen legacy file: %v", err)
	}
	defer s2.Close()
	if !s2.Legacy() || s2.NumPages() != 4 {
		t.Fatalf("reopen: legacy=%v pages=%d, want legacy 4 pages", s2.Legacy(), s2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := s2.ReadPage(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("legacy write did not round-trip")
	}

	// The buffer pool works over a legacy store unchanged.
	pool := NewBufferPool(s2, 2)
	f, err := pool.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data()[10] != legacyPageByte(0, 10) {
		t.Fatal("pool read over legacy store returned wrong bytes")
	}
	f.Release()
	RequireNoPinnedFrames(t, pool)
}

// TestCurrentFormatRoundTrip makes sure the reopen path detects the
// checksummed layout and keeps verifying it.
func TestCurrentFormatRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "current.db")
	s, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = byte(i * 3)
	}
	if err := s.WritePage(id, page); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Legacy() {
		t.Fatal("checksummed file misdetected as legacy")
	}
	buf := make([]byte, PageSize)
	if err := s2.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page) {
		t.Fatal("payload did not round-trip through the header")
	}

	// Damage one payload byte on disk: the reopen store must refuse it.
	fh, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteAt([]byte{0xFF}, int64(PageHeaderSize+100)); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	if err := s2.ReadPage(id, buf); !IsCorrupt(err) {
		t.Fatalf("ReadPage of damaged page = %v, want ErrCorruptPage", err)
	}
}

// TestOpenFileStoreRejectsUnrecognized covers the "matches neither
// layout" rejection.
func TestOpenFileStoreRejectsUnrecognized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	if err := os.WriteFile(path, make([]byte, PageSize+17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("OpenFileStore accepted a file matching neither layout")
	}
}

// TestVerifyPageTaxonomy exercises each header check directly.
func TestVerifyPageTaxonomy(t *testing.T) {
	phys := make([]byte, physPageSize)
	for i := range phys {
		phys[i] = byte(i)
	}
	sealPage(phys, 7)
	if err := verifyPage(phys, 7); err != nil {
		t.Fatalf("freshly sealed page fails verification: %v", err)
	}
	// Misdirected I/O: valid page, wrong id.
	if err := verifyPage(phys, 8); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("verify with wrong id = %v, want ErrCorruptPage", err)
	}
	// Payload damage.
	phys[PageHeaderSize+5] ^= 1
	if err := verifyPage(phys, 7); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("verify with flipped payload bit = %v, want ErrCorruptPage", err)
	}
	phys[PageHeaderSize+5] ^= 1
	// Header damage: bad magic.
	phys[0] ^= 1
	if err := verifyPage(phys, 7); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("verify with bad magic = %v, want ErrCorruptPage", err)
	}
}
