package storage

import (
	"errors"
	"fmt"
)

// Stats accumulates buffer pool activity. Misses is the number that
// matters for reproducing the paper's I/O costs: each miss is one page
// fetched from the store.
type Stats struct {
	Hits      uint64 // Get served from a resident frame
	Misses    uint64 // Get that had to read the page from the store
	Reads     uint64 // pages read from the store (== Misses)
	Writes    uint64 // dirty pages written back to the store
	Evictions uint64 // frames recycled to make room
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Evictions += other.Evictions
}

// IOs returns the total number of page transfers (reads + writes).
func (s Stats) IOs() uint64 { return s.Reads + s.Writes }

// ErrPoolFull is returned by Get/NewPage when every frame is pinned.
var ErrPoolFull = errors.New("storage: all buffer frames pinned")

const noFrame = -1

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	// Doubly-linked LRU list over frame indices; only unpinned resident
	// frames are linked. More-recently-used frames are nearer the head.
	prev, next int
}

// Frame is a pinned page in the buffer pool. The caller must Release it
// when done; the data slice is only valid while the frame is pinned.
type Frame struct {
	pool *BufferPool
	idx  int
	id   PageID
}

// ID returns the page id this frame holds.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page bytes. Mutating them requires MarkDirty.
func (f *Frame) Data() []byte { return f.pool.frames[f.idx].data }

// MarkDirty records that the page content was modified and must be
// written back before eviction.
func (f *Frame) MarkDirty() { f.pool.frames[f.idx].dirty = true }

// Release unpins the frame. It is safe to call exactly once per Get /
// NewPage; releasing an unpinned frame panics, as it indicates a
// pin-accounting bug in the caller.
func (f *Frame) Release() { f.pool.unpin(f.idx) }

// BufferPool caches pages of a Store in a fixed number of PageSize frames
// with LRU replacement, mirroring the small SHORE buffer pool used in the
// paper's experiments (64 frames = 512 KB by default).
type BufferPool struct {
	store  Store
	frames []frame
	table  map[PageID]int // resident page -> frame index
	free   []int          // unused frame indices
	// LRU list head/tail over unpinned resident frames.
	lruHead, lruTail int
	stats            Stats
}

// FramesForBytes returns the number of PageSize frames that fit in a pool
// of the given byte budget (minimum 1).
func FramesForBytes(bytes int) int {
	n := bytes / PageSize
	if n < 1 {
		n = 1
	}
	return n
}

// NewBufferPool creates a pool of numFrames frames over store.
func NewBufferPool(store Store, numFrames int) *BufferPool {
	if numFrames < 1 {
		panic(fmt.Sprintf("storage: buffer pool needs at least 1 frame, got %d", numFrames))
	}
	p := &BufferPool{
		store:   store,
		frames:  make([]frame, numFrames),
		table:   make(map[PageID]int, numFrames),
		free:    make([]int, 0, numFrames),
		lruHead: noFrame,
		lruTail: noFrame,
	}
	for i := numFrames - 1; i >= 0; i-- {
		p.frames[i] = frame{id: InvalidPage, prev: noFrame, next: noFrame}
		p.free = append(p.free, i)
	}
	return p
}

// Store returns the underlying page store.
func (p *BufferPool) Store() Store { return p.store }

// NumFrames returns the pool capacity in frames.
func (p *BufferPool) NumFrames() int { return len(p.frames) }

// Stats returns a snapshot of the accumulated statistics.
func (p *BufferPool) Stats() Stats { return p.stats }

// ResetStats zeroes the statistics counters (the page cache itself is
// left intact).
func (p *BufferPool) ResetStats() { p.stats = Stats{} }

// Get pins the page id, reading it from the store on a miss.
func (p *BufferPool) Get(id PageID) (*Frame, error) {
	if idx, ok := p.table[id]; ok {
		p.stats.Hits++
		f := &p.frames[idx]
		if f.pins == 0 {
			p.lruRemove(idx)
		}
		f.pins++
		return &Frame{pool: p, idx: idx, id: id}, nil
	}
	p.stats.Misses++
	idx, err := p.grabFrame()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	if err := p.store.ReadPage(id, f.data); err != nil {
		p.free = append(p.free, idx)
		return nil, err
	}
	p.stats.Reads++
	f.id = id
	f.pins = 1
	f.dirty = false
	p.table[id] = idx
	return &Frame{pool: p, idx: idx, id: id}, nil
}

// NewPage allocates a fresh page in the store and returns it pinned and
// zeroed. The page is marked dirty so that it reaches the store even if
// the caller writes nothing.
func (p *BufferPool) NewPage() (*Frame, error) {
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	idx, err := p.grabFrame()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pins = 1
	f.dirty = true
	p.table[id] = idx
	return &Frame{pool: p, idx: idx, id: id}, nil
}

// FlushAll writes every dirty resident page back to the store. Pinned
// pages are flushed too (they stay resident and pinned).
func (p *BufferPool) FlushAll() error {
	for i := range p.frames {
		f := &p.frames[i]
		if f.id != InvalidPage && f.dirty {
			if err := p.store.WritePage(f.id, f.data); err != nil {
				return err
			}
			p.stats.Writes++
			f.dirty = false
		}
	}
	return nil
}

// PinnedFrames returns the number of currently pinned frames; useful for
// leak checking in tests.
func (p *BufferPool) PinnedFrames() int {
	n := 0
	for i := range p.frames {
		if p.frames[i].pins > 0 {
			n++
		}
	}
	return n
}

// grabFrame returns the index of a frame ready to be loaded: a free frame
// if available, otherwise the least recently used unpinned frame (flushed
// if dirty).
func (p *BufferPool) grabFrame() (int, error) {
	if n := len(p.free); n > 0 {
		idx := p.free[n-1]
		p.free = p.free[:n-1]
		if p.frames[idx].data == nil {
			p.frames[idx].data = make([]byte, PageSize)
		}
		return idx, nil
	}
	idx := p.lruTail
	if idx == noFrame {
		return 0, ErrPoolFull
	}
	p.lruRemove(idx)
	f := &p.frames[idx]
	if f.dirty {
		if err := p.store.WritePage(f.id, f.data); err != nil {
			return 0, err
		}
		p.stats.Writes++
	}
	delete(p.table, f.id)
	f.id = InvalidPage
	f.dirty = false
	p.stats.Evictions++
	return idx, nil
}

func (p *BufferPool) unpin(idx int) {
	f := &p.frames[idx]
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned frame (page %d)", f.id))
	}
	f.pins--
	if f.pins == 0 {
		p.lruPush(idx)
	}
}

// lruPush links idx at the head (most recently used end) of the LRU list.
func (p *BufferPool) lruPush(idx int) {
	f := &p.frames[idx]
	f.prev = noFrame
	f.next = p.lruHead
	if p.lruHead != noFrame {
		p.frames[p.lruHead].prev = idx
	}
	p.lruHead = idx
	if p.lruTail == noFrame {
		p.lruTail = idx
	}
}

// lruRemove unlinks idx from the LRU list.
func (p *BufferPool) lruRemove(idx int) {
	f := &p.frames[idx]
	if f.prev != noFrame {
		p.frames[f.prev].next = f.next
	} else {
		p.lruHead = f.next
	}
	if f.next != noFrame {
		p.frames[f.next].prev = f.prev
	} else {
		p.lruTail = f.prev
	}
	f.prev, f.next = noFrame, noFrame
}
