package storage

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"allnn/internal/obs"
)

// Stats accumulates buffer pool activity. Misses is the number that
// matters for reproducing the paper's I/O costs: each miss is one page
// fetched from the store.
type Stats struct {
	Hits      uint64 // Get served from a resident frame
	Misses    uint64 // Get that had to read the page from the store
	Reads     uint64 // pages read from the store (== Misses)
	Writes    uint64 // dirty pages written back to the store
	Evictions uint64 // frames recycled to make room
	// Retries counts transient read failures that were retried (whether or
	// not the retry eventually succeeded); CorruptPages counts reads that
	// surfaced a verification failure (wrapped ErrCorruptPage).
	Retries      uint64
	CorruptPages uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Evictions += other.Evictions
	s.Retries += other.Retries
	s.CorruptPages += other.CorruptPages
}

// Delta returns s - prev, the activity between two snapshots (all
// counters are monotonic).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Hits:         s.Hits - prev.Hits,
		Misses:       s.Misses - prev.Misses,
		Reads:        s.Reads - prev.Reads,
		Writes:       s.Writes - prev.Writes,
		Evictions:    s.Evictions - prev.Evictions,
		Retries:      s.Retries - prev.Retries,
		CorruptPages: s.CorruptPages - prev.CorruptPages,
	}
}

// AddTo accumulates the snapshot into a metrics registry under the given
// family prefix ("<prefix>.hits", ".misses", ".reads", ".writes",
// ".evictions", ".retries", ".corrupt_pages"). Used for publishing
// per-run deltas; for live wiring of a long-lived pool prefer
// BufferPool.Register.
func (s Stats) AddTo(r *obs.Registry, prefix string) {
	r.Counter(prefix + ".hits").Add(s.Hits)
	r.Counter(prefix + ".misses").Add(s.Misses)
	r.Counter(prefix + ".reads").Add(s.Reads)
	r.Counter(prefix + ".writes").Add(s.Writes)
	r.Counter(prefix + ".evictions").Add(s.Evictions)
	r.Counter(prefix + ".retries").Add(s.Retries)
	r.Counter(prefix + ".corrupt_pages").Add(s.CorruptPages)
}

// IOs returns the total number of page transfers (reads + writes).
func (s Stats) IOs() uint64 { return s.Reads + s.Writes }

// ErrPoolFull is returned by Get/NewPage when every candidate frame is
// pinned. In a sharded pool the error is per shard: a page can only live
// in its own shard's frames, so it is raised when that shard is fully
// pinned even if other shards still have room.
var ErrPoolFull = errors.New("storage: all buffer frames pinned")

const noFrame = -1

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	// Doubly-linked LRU list over frame indices; only unpinned resident
	// frames are linked. More-recently-used frames are nearer the head.
	prev, next int
}

// Frame is a pinned page in the buffer pool. The caller must Release it
// when done; the data slice is only valid while the frame is pinned.
type Frame struct {
	shard *poolShard
	idx   int
	id    PageID
}

// ID returns the page id this frame holds.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page bytes. Mutating them requires MarkDirty. The
// slice is stable and exclusively visible for the duration of the pin (a
// frame is never recycled while pinned), so no lock is needed here.
func (f *Frame) Data() []byte { return f.shard.frames[f.idx].data }

// MarkDirty records that the page content was modified and must be
// written back before eviction.
func (f *Frame) MarkDirty() {
	f.shard.mu.Lock()
	f.shard.frames[f.idx].dirty = true
	f.shard.mu.Unlock()
}

// Release unpins the frame. It is safe to call exactly once per Get /
// NewPage; releasing an unpinned frame panics, as it indicates a
// pin-accounting bug in the caller.
func (f *Frame) Release() { f.shard.unpin(f.idx) }

// poolShard is one independently-locked slice of the pool: a page id maps
// to exactly one shard, which runs the classic pin-counted LRU over its
// own frames. All shard state below mu is guarded by it.
type poolShard struct {
	mu     sync.Mutex
	store  Store
	frames []frame
	table  map[PageID]int // resident page -> frame index
	free   []int          // unused frame indices
	// LRU list head/tail over unpinned resident frames.
	lruHead, lruTail int
	stats            Stats
}

// BufferPool caches pages of a Store in a fixed number of PageSize frames
// with LRU replacement, mirroring the small SHORE buffer pool used in the
// paper's experiments (64 frames = 512 KB by default).
//
// The pool is safe for concurrent use: frames are sharded by page id into
// independently-locked shards, so concurrent readers (e.g. the parallel
// ANN executor's subtree workers) only contend when they touch pages of
// the same shard. Small pools (fewer than shardThreshold frames) use a
// single shard and therefore keep the exact global LRU behaviour of the
// paper's experiments.
type BufferPool struct {
	store  Store
	shards []poolShard
	// Retry policy for transient read failures (see BufferPoolConfig).
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	// trace, when set, receives a "pool.read" span per miss (lane
	// obs.TidPool). One atomic load per Get when unset.
	trace atomic.Pointer[obs.Tracer]
}

// Retry policy defaults: three retries starting at 200µs roughly double
// each time and stay under DefaultRetryBackoffMax, so a persistently
// failing page costs a few milliseconds before the error surfaces.
const (
	DefaultReadRetries     = 3
	DefaultRetryBackoff    = 200 * time.Microsecond
	DefaultRetryBackoffMax = 5 * time.Millisecond
)

// BufferPoolConfig tunes a pool beyond its frame count. The zero value
// selects the defaults (automatic sharding, DefaultReadRetries transient
// read retries with jittered exponential backoff).
type BufferPoolConfig struct {
	// Shards splits the frames across this many independently-locked
	// shards; 0 picks automatically (single shard below shardThreshold
	// frames, preserving exact global LRU).
	Shards int
	// ShardHint is the number of concurrent readers the pool should
	// expect (e.g. the engine's parallel workers). When Shards is 0 and
	// the pool is large enough to shard at all, the automatic count is
	// raised to the next power of two covering ShardHint*2, within the
	// minFramesPerShard floor — so worker goroutines pinning hot pages do
	// not serialise on a machine-sized handful of shard locks. It never
	// shards a pool below shardThreshold frames (the exact-LRU rule the
	// paper experiments depend on) and is ignored when Shards is set
	// explicitly.
	ShardHint int
	// ReadRetries is the maximum number of times a transient read failure
	// (an error wrapping ErrTransientIO) is retried before the error
	// surfaces. 0 selects DefaultReadRetries; negative disables retries.
	// Errors wrapping ErrCorruptPage are never retried — re-reading
	// damaged bytes cannot heal them.
	ReadRetries int
	// RetryBackoff is the base delay before the first retry; each further
	// retry doubles it. 0 selects DefaultRetryBackoff.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the per-retry delay. 0 selects
	// DefaultRetryBackoffMax. Delays are jittered uniformly in
	// [d/2, d] to avoid retry convoys across concurrent readers.
	RetryBackoffMax time.Duration
}

func (c BufferPoolConfig) withDefaults() BufferPoolConfig {
	switch {
	case c.ReadRetries == 0:
		c.ReadRetries = DefaultReadRetries
	case c.ReadRetries < 0:
		c.ReadRetries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = DefaultRetryBackoffMax
	}
	return c
}

// shardThreshold is the pool size (in frames) below which the pool stays
// single-sharded, preserving exact global-LRU replacement. The paper's
// 512 KB pool (64 frames) is deliberately below it.
const shardThreshold = 128

// minFramesPerShard keeps shards large enough that per-shard LRU still
// approximates global LRU.
const minFramesPerShard = 32

// FramesForBytes returns the number of PageSize frames that fit in a pool
// of the given byte budget (minimum 1).
func FramesForBytes(bytes int) int {
	n := bytes / PageSize
	if n < 1 {
		n = 1
	}
	return n
}

// defaultShardCount picks the shard count for NewBufferPool: 1 for small
// pools (exact LRU), otherwise a power of two scaled to the machine with
// every shard keeping at least minFramesPerShard frames.
func defaultShardCount(numFrames int) int {
	if numFrames < shardThreshold {
		return 1
	}
	s := 1
	for s < 16 && s*2 <= runtime.GOMAXPROCS(0)*2 {
		s *= 2
	}
	for s > 1 && numFrames/s < minFramesPerShard {
		s /= 2
	}
	return s
}

// hintedShardCount is defaultShardCount raised to cover an expected
// reader count (see BufferPoolConfig.ShardHint).
func hintedShardCount(numFrames, readers int) int {
	s := defaultShardCount(numFrames)
	if readers <= 1 || numFrames < shardThreshold {
		return s
	}
	want := 1
	for want < readers*2 && want < 64 {
		want *= 2
	}
	if want > s {
		s = want
	}
	for s > 1 && numFrames/s < minFramesPerShard {
		s /= 2
	}
	return s
}

// NewBufferPool creates a pool of numFrames frames over store, choosing a
// shard count automatically (single shard below shardThreshold frames)
// and the default retry policy.
func NewBufferPool(store Store, numFrames int) *BufferPool {
	return NewBufferPoolWithConfig(store, numFrames, BufferPoolConfig{})
}

// NewShardedBufferPool creates a pool of numFrames frames split across
// numShards independently-locked shards. Pages map to shards by id, so a
// given page always competes for the same shard's frames.
func NewShardedBufferPool(store Store, numFrames, numShards int) *BufferPool {
	return NewBufferPoolWithConfig(store, numFrames, BufferPoolConfig{Shards: numShards})
}

// NewBufferPoolWithConfig creates a pool of numFrames frames over store
// with an explicit sharding and retry configuration.
func NewBufferPoolWithConfig(store Store, numFrames int, cfg BufferPoolConfig) *BufferPool {
	if numFrames < 1 {
		panic(fmt.Sprintf("storage: buffer pool needs at least 1 frame, got %d", numFrames))
	}
	cfg = cfg.withDefaults()
	numShards := cfg.Shards
	if numShards == 0 {
		numShards = hintedShardCount(numFrames, cfg.ShardHint)
	}
	if numShards < 1 {
		numShards = 1
	}
	if numShards > numFrames {
		numShards = numFrames
	}
	p := &BufferPool{
		store:       store,
		shards:      make([]poolShard, numShards),
		retries:     cfg.ReadRetries,
		backoffBase: cfg.RetryBackoff,
		backoffMax:  cfg.RetryBackoffMax,
	}
	base, extra := numFrames/numShards, numFrames%numShards
	for si := range p.shards {
		n := base
		if si < extra {
			n++
		}
		sh := &p.shards[si]
		sh.store = store
		sh.frames = make([]frame, n)
		sh.table = make(map[PageID]int, n)
		sh.free = make([]int, 0, n)
		sh.lruHead = noFrame
		sh.lruTail = noFrame
		for i := n - 1; i >= 0; i-- {
			sh.frames[i] = frame{id: InvalidPage, prev: noFrame, next: noFrame}
			sh.free = append(sh.free, i)
		}
	}
	return p
}

// shardOf returns the shard owning page id.
func (p *BufferPool) shardOf(id PageID) *poolShard {
	return &p.shards[uint32(id)%uint32(len(p.shards))]
}

// Store returns the underlying page store.
func (p *BufferPool) Store() Store { return p.store }

// NumFrames returns the pool capacity in frames.
func (p *BufferPool) NumFrames() int {
	n := 0
	for i := range p.shards {
		n += len(p.shards[i].frames)
	}
	return n
}

// NumShards returns the number of independently-locked shards.
func (p *BufferPool) NumShards() int { return len(p.shards) }

// Stats returns a snapshot of the accumulated statistics, summed over the
// shards.
func (p *BufferPool) Stats() Stats {
	var st Stats
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		st.Add(sh.stats)
		sh.mu.Unlock()
	}
	return st
}

// ResetStats zeroes the statistics counters (the page cache itself is
// left intact).
func (p *BufferPool) ResetStats() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.stats = Stats{}
		sh.mu.Unlock()
	}
}

// Get pins the page id, reading it from the store on a miss.
func (p *BufferPool) Get(id PageID) (*Frame, error) {
	tr := p.trace.Load()
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if idx, ok := sh.table[id]; ok {
		sh.stats.Hits++
		f := &sh.frames[idx]
		if f.pins == 0 {
			sh.lruRemove(idx)
		}
		f.pins++
		return &Frame{shard: sh, idx: idx, id: id}, nil
	}
	sh.stats.Misses++
	idx, err := sh.grabFrame()
	if err != nil {
		return nil, err
	}
	f := &sh.frames[idx]
	var readStart time.Time
	if tr != nil {
		readStart = time.Now()
	}
	if err := p.readWithRetry(sh, id, f.data); err != nil {
		// The frame grabbed for this read holds no page yet; recycle it so
		// a failed read never shrinks the pool.
		sh.free = append(sh.free, idx)
		return nil, err
	}
	if tr != nil {
		tr.Complete("pool.read", obs.TidPool, readStart, time.Now(), "page", int64(id))
	}
	sh.stats.Reads++
	f.id = id
	f.pins = 1
	f.dirty = false
	sh.table[id] = idx
	return &Frame{shard: sh, idx: idx, id: id}, nil
}

// NewPage allocates a fresh page in the store and returns it pinned and
// zeroed. The page is marked dirty so that it reaches the store even if
// the caller writes nothing.
func (p *BufferPool) NewPage() (*Frame, error) {
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, err := sh.grabFrame()
	if err != nil {
		return nil, err
	}
	f := &sh.frames[idx]
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pins = 1
	f.dirty = true
	sh.table[id] = idx
	return &Frame{shard: sh, idx: idx, id: id}, nil
}

// FlushAll writes every dirty resident page back to the store. Pinned
// pages are flushed too (they stay resident and pinned).
func (p *BufferPool) FlushAll() error {
	return p.flushExcept(InvalidPage)
}

// FlushAllExcept is FlushAll with one page held back. Checkpoints use it
// to write every page but the tree's meta page, sync, and only then
// write the meta page — making the meta write the atomic commit point of
// the checkpoint.
func (p *BufferPool) FlushAllExcept(except PageID) error {
	return p.flushExcept(except)
}

func (p *BufferPool) flushExcept(except PageID) error {
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			if f.id != InvalidPage && f.id != except && f.dirty {
				if err := sh.store.WritePage(f.id, f.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				sh.stats.Writes++
				f.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// FlushPage writes page id back to the store if it is resident and
// dirty. A non-resident page was either never dirtied or already written
// back by eviction, so there is nothing to do.
func (p *BufferPool) FlushPage(id PageID) error {
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.table[id]
	if !ok {
		return nil
	}
	f := &sh.frames[idx]
	if !f.dirty {
		return nil
	}
	if err := sh.store.WritePage(f.id, f.data); err != nil {
		return err
	}
	sh.stats.Writes++
	f.dirty = false
	return nil
}

// SetTracer attaches (or, with nil, detaches) a tracer receiving a
// "pool.read" span per page fetched from the store. Safe to flip
// concurrently with Gets. Spans land in the shared obs.TidPool lane, so
// concurrent workers' reads may overlap there — use them for when/what,
// not for nesting.
func (p *BufferPool) SetTracer(t *obs.Tracer) { p.trace.Store(t) }

// Register wires the pool into a metrics registry under the given family
// prefix ("<prefix>.hits", ".misses", ".reads", ".writes", ".evictions",
// ".retries", ".corrupt_pages", plus gauge "<prefix>.pinned_frames").
// Callback-backed, so snapshots
// always reflect the live pool; re-registering is idempotent.
func (p *BufferPool) Register(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.CounterFunc(prefix+".hits", func() uint64 { return p.Stats().Hits })
	r.CounterFunc(prefix+".misses", func() uint64 { return p.Stats().Misses })
	r.CounterFunc(prefix+".reads", func() uint64 { return p.Stats().Reads })
	r.CounterFunc(prefix+".writes", func() uint64 { return p.Stats().Writes })
	r.CounterFunc(prefix+".evictions", func() uint64 { return p.Stats().Evictions })
	r.CounterFunc(prefix+".retries", func() uint64 { return p.Stats().Retries })
	r.CounterFunc(prefix+".corrupt_pages", func() uint64 { return p.Stats().CorruptPages })
	r.GaugeFunc(prefix+".pinned_frames", func() int64 { return int64(p.PinnedFrames()) })
}

// PinnedFrames returns the number of currently pinned frames; useful for
// leak checking in tests.
func (p *BufferPool) PinnedFrames() int {
	n := 0
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			if sh.frames[i].pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// readWithRetry reads page id into buf through the shard's store,
// retrying transient failures (errors wrapping ErrTransientIO) with
// capped, jittered exponential backoff. Corruption (ErrCorruptPage) is
// never retried — re-reading damaged bytes cannot heal them — but is
// counted. Called with the shard lock held, so a retry sequence stalls
// this shard's other readers; the backoff cap keeps the stall to a few
// milliseconds even when every retry fails.
func (p *BufferPool) readWithRetry(sh *poolShard, id PageID, buf []byte) error {
	err := sh.store.ReadPage(id, buf)
	delay := p.backoffBase
	for attempt := 0; err != nil && attempt < p.retries && errors.Is(err, ErrTransientIO); attempt++ {
		sh.stats.Retries++
		// Uniform jitter in [delay/2, delay] avoids retry convoys when
		// several shards back off at once.
		time.Sleep(delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1)))
		if delay *= 2; delay > p.backoffMax {
			delay = p.backoffMax
		}
		err = sh.store.ReadPage(id, buf)
	}
	if err != nil && errors.Is(err, ErrCorruptPage) {
		sh.stats.CorruptPages++
	}
	return err
}

// grabFrame returns the index of a frame ready to be loaded: a free frame
// if available, otherwise the least recently used unpinned frame (flushed
// if dirty). Called with the shard lock held.
func (sh *poolShard) grabFrame() (int, error) {
	if n := len(sh.free); n > 0 {
		idx := sh.free[n-1]
		sh.free = sh.free[:n-1]
		if sh.frames[idx].data == nil {
			sh.frames[idx].data = make([]byte, PageSize)
		}
		return idx, nil
	}
	idx := sh.lruTail
	if idx == noFrame {
		return 0, ErrPoolFull
	}
	sh.lruRemove(idx)
	f := &sh.frames[idx]
	if f.dirty {
		if err := sh.store.WritePage(f.id, f.data); err != nil {
			// The victim stays resident and dirty. Relink it into the LRU
			// list — it was already unlinked above, and leaving it orphaned
			// would both leak the frame (never evictable again) and corrupt
			// the list when a later Get of its page unlinks it a second
			// time.
			sh.lruPush(idx)
			return 0, err
		}
		sh.stats.Writes++
	}
	delete(sh.table, f.id)
	f.id = InvalidPage
	f.dirty = false
	sh.stats.Evictions++
	return idx, nil
}

func (sh *poolShard) unpin(idx int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f := &sh.frames[idx]
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned frame (page %d)", f.id))
	}
	f.pins--
	if f.pins == 0 {
		sh.lruPush(idx)
	}
}

// lruPush links idx at the head (most recently used end) of the LRU list.
// Called with the shard lock held.
func (sh *poolShard) lruPush(idx int) {
	f := &sh.frames[idx]
	f.prev = noFrame
	f.next = sh.lruHead
	if sh.lruHead != noFrame {
		sh.frames[sh.lruHead].prev = idx
	}
	sh.lruHead = idx
	if sh.lruTail == noFrame {
		sh.lruTail = idx
	}
}

// lruRemove unlinks idx from the LRU list. Called with the shard lock
// held.
func (sh *poolShard) lruRemove(idx int) {
	f := &sh.frames[idx]
	if f.prev != noFrame {
		sh.frames[f.prev].next = f.next
	} else {
		sh.lruHead = f.next
	}
	if f.next != noFrame {
		sh.frames[f.next].prev = f.prev
	} else {
		sh.lruTail = f.prev
	}
	f.prev, f.next = noFrame, noFrame
}
