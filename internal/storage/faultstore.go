package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultConfig selects the faults a FaultStore injects. The zero value
// injects nothing. All probabilities are per operation in [0, 1].
//
// Two fault families exist:
//
//   - Transient failures (ReadErrProb, WriteErrProb, and the deterministic
//     FailReadsAfter/FailWritesAfter/FailAllocsAfter countdowns) reject
//     the operation with an error wrapping ErrTransientIO without touching
//     the stored bytes — the class the BufferPool retries.
//   - Corruptions (BitFlipProb, TornWriteProb) let the write succeed and
//     then damage the stored physical bytes below the checksum, so the
//     damage is discovered by a later ReadPage as ErrCorruptPage — exactly
//     how a real bit rot or torn sector surfaces. Corruption injection
//     requires the inner store to be a MemStore or FileStore (or a
//     FaultStore over one); over other stores it is silently skipped.
type FaultConfig struct {
	// Seed makes the fault sequence deterministic; 0 selects seed 1.
	Seed int64

	// ReadErrProb / WriteErrProb inject transient failures on ReadPage /
	// WritePage with the given probability.
	ReadErrProb  float64
	WriteErrProb float64

	// BitFlipProb flips one random bit of the stored physical page after a
	// successful WritePage.
	BitFlipProb float64
	// TornWriteProb zeroes a suffix of the stored physical page after a
	// successful WritePage, simulating a partially persisted (torn) write.
	TornWriteProb float64

	// ReadLatency / WriteLatency sleep before each operation, simulating
	// device latency (useful for cancellation and backoff tests).
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// FailReadsAfter, when n > 0, makes the n-th ReadPage from now — and
	// every later one — fail transiently (n=1 fails immediately). 0
	// disables. Same for writes and Allocate. These deterministic
	// countdowns are what targeted error-path tests use.
	FailReadsAfter  int
	FailWritesAfter int
	FailAllocsAfter int

	// FailSyncsAfter is the same countdown for Sync; injected failures
	// wrap ErrWriteFailed (a failed fsync is a durability loss, not a
	// retryable hiccup). The crash-recovery loop uses it to kill an index
	// mid-checkpoint.
	FailSyncsAfter int

	// TransientReadErrs fails each of the next n ReadPage calls
	// transiently and then subsides — unlike the sticky FailReadsAfter,
	// this is the knob for observing a retry that eventually succeeds.
	TransientReadErrs int
}

// FaultStats counts the faults a FaultStore actually injected.
type FaultStats struct {
	ReadErrors  uint64 // transient read failures injected
	WriteErrors uint64 // transient write failures injected
	AllocErrors uint64 // allocate failures injected
	SyncErrors  uint64 // sync failures injected
	BitFlips    uint64 // pages corrupted by a bit flip
	TornWrites  uint64 // pages corrupted by a torn write
}

// FaultStore wraps a Store and injects configurable failures: transient
// read/write errors, allocation failures, stored-byte corruption (bit
// flips, torn writes) and latency — all driven by a seeded RNG so chaos
// runs are reproducible. It is the first-class replacement for the
// test-only fault wrapper the error-path tests used to carry, and is safe
// for concurrent use.
//
// FaultStore passes verification through untouched: corruption faults
// damage the physical bytes underneath the checksum header, so they are
// detected by the inner store's own ReadPage verification, surfacing as
// wrapped ErrCorruptPage exactly like real media damage.
type FaultStore struct {
	inner Store
	mut   physicalMutator // inner's corruption hook, nil if unsupported

	mu    sync.Mutex
	rng   *rand.Rand
	cfg   FaultConfig
	stats FaultStats
}

// NewFaultStore wraps inner with fault injection per cfg.
func NewFaultStore(inner Store, cfg FaultConfig) *FaultStore {
	fs := &FaultStore{inner: inner}
	fs.mut, _ = inner.(physicalMutator)
	fs.setConfigLocked(cfg)
	return fs
}

// SetConfig replaces the fault configuration (and reseeds the RNG),
// atomically with respect to in-flight operations. Typical use: build an
// index fault-free, then arm the faults for the query phase.
func (s *FaultStore) SetConfig(cfg FaultConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setConfigLocked(cfg)
}

func (s *FaultStore) setConfigLocked(cfg FaultConfig) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s.cfg = cfg
	s.rng = rand.New(rand.NewSource(seed))
}

// Config returns the current fault configuration.
func (s *FaultStore) Config() FaultConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// Stats returns a snapshot of the injected-fault counters.
func (s *FaultStore) Stats() FaultStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Inner returns the wrapped store.
func (s *FaultStore) Inner() Store { return s.inner }

// decideRead decides, under the lock, whether this read faults; it
// returns the latency to sleep and the error to inject (nil for none).
func (s *FaultStore) decideRead(id PageID) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lat := s.cfg.ReadLatency
	if s.cfg.FailReadsAfter > 0 {
		if s.cfg.FailReadsAfter == 1 {
			s.stats.ReadErrors++
			return lat, fmt.Errorf("storage: injected fault reading page %d: %w", id, ErrTransientIO)
		}
		s.cfg.FailReadsAfter--
	}
	if s.cfg.TransientReadErrs > 0 {
		s.cfg.TransientReadErrs--
		s.stats.ReadErrors++
		return lat, fmt.Errorf("storage: injected fault reading page %d: %w", id, ErrTransientIO)
	}
	if s.cfg.ReadErrProb > 0 && s.rng.Float64() < s.cfg.ReadErrProb {
		s.stats.ReadErrors++
		return lat, fmt.Errorf("storage: injected fault reading page %d: %w", id, ErrTransientIO)
	}
	return lat, nil
}

// ReadPage implements Store.
func (s *FaultStore) ReadPage(id PageID, buf []byte) error {
	lat, err := s.decideRead(id)
	if lat > 0 {
		time.Sleep(lat)
	}
	if err != nil {
		return err
	}
	return s.inner.ReadPage(id, buf)
}

// decideWrite mirrors decideRead and additionally rolls the corruption
// dice: the returned corrupt func (nil for none) is applied to the stored
// physical bytes after a successful inner write.
func (s *FaultStore) decideWrite(id PageID) (time.Duration, error, func(phys []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lat := s.cfg.WriteLatency
	if s.cfg.FailWritesAfter > 0 {
		if s.cfg.FailWritesAfter == 1 {
			s.stats.WriteErrors++
			return lat, fmt.Errorf("storage: injected fault writing page %d: %w", id, ErrTransientIO), nil
		}
		s.cfg.FailWritesAfter--
	}
	if s.cfg.WriteErrProb > 0 && s.rng.Float64() < s.cfg.WriteErrProb {
		s.stats.WriteErrors++
		return lat, fmt.Errorf("storage: injected fault writing page %d: %w", id, ErrTransientIO), nil
	}
	if s.mut != nil {
		if s.cfg.BitFlipProb > 0 && s.rng.Float64() < s.cfg.BitFlipProb {
			bit := s.rng.Intn(physPageSize * 8)
			s.stats.BitFlips++
			return lat, nil, func(phys []byte) {
				if bit < len(phys)*8 {
					phys[bit/8] ^= 1 << (bit % 8)
				}
			}
		}
		if s.cfg.TornWriteProb > 0 && s.rng.Float64() < s.cfg.TornWriteProb {
			keep := s.rng.Intn(physPageSize)
			s.stats.TornWrites++
			return lat, nil, func(phys []byte) {
				if keep < len(phys) {
					for i := keep; i < len(phys); i++ {
						phys[i] = 0
					}
				}
			}
		}
	}
	return lat, nil, nil
}

// WritePage implements Store.
func (s *FaultStore) WritePage(id PageID, buf []byte) error {
	lat, err, corrupt := s.decideWrite(id)
	if lat > 0 {
		time.Sleep(lat)
	}
	if err != nil {
		return err
	}
	if err := s.inner.WritePage(id, buf); err != nil {
		return err
	}
	if corrupt != nil {
		return s.mut.mutatePhysical(id, corrupt)
	}
	return nil
}

// Allocate implements Store.
func (s *FaultStore) Allocate() (PageID, error) {
	s.mu.Lock()
	if s.cfg.FailAllocsAfter > 0 {
		if s.cfg.FailAllocsAfter == 1 {
			s.stats.AllocErrors++
			s.mu.Unlock()
			return InvalidPage, fmt.Errorf("storage: injected fault allocating page: %w", ErrTransientIO)
		}
		s.cfg.FailAllocsAfter--
	}
	s.mu.Unlock()
	return s.inner.Allocate()
}

// NumPages implements Store.
func (s *FaultStore) NumPages() int { return s.inner.NumPages() }

// Sync implements Store.
func (s *FaultStore) Sync() error {
	s.mu.Lock()
	if s.cfg.FailSyncsAfter > 0 {
		if s.cfg.FailSyncsAfter == 1 {
			s.stats.SyncErrors++
			s.mu.Unlock()
			return fmt.Errorf("storage: injected fault syncing store: %w", ErrWriteFailed)
		}
		s.cfg.FailSyncsAfter--
	}
	s.mu.Unlock()
	return s.inner.Sync()
}

// Close implements Store.
func (s *FaultStore) Close() error { return s.inner.Close() }

// mutatePhysical passes through so FaultStores compose.
func (s *FaultStore) mutatePhysical(id PageID, mutate func(phys []byte)) error {
	if s.mut == nil {
		return fmt.Errorf("storage: inner store %T does not expose physical pages", s.inner)
	}
	return s.mut.mutatePhysical(id, mutate)
}

// FlipBit deterministically flips the given bit (modulo the physical page
// size) of page id's stored bytes, bypassing the checksum seal. Flipping
// the same bit twice restores the page. Used by chaos tests to plant
// corruption that a later read must detect.
func (s *FaultStore) FlipBit(id PageID, bit int) error {
	if s.mut == nil {
		return fmt.Errorf("storage: inner store %T does not expose physical pages", s.inner)
	}
	return s.mut.mutatePhysical(id, func(phys []byte) {
		b := bit % (len(phys) * 8)
		if b < 0 {
			b += len(phys) * 8
		}
		phys[b/8] ^= 1 << (b % 8)
	})
}

// TearPage zeroes the stored physical bytes of page id from offset keep
// onward, simulating a torn write after the fact.
func (s *FaultStore) TearPage(id PageID, keep int) error {
	if s.mut == nil {
		return fmt.Errorf("storage: inner store %T does not expose physical pages", s.inner)
	}
	return s.mut.mutatePhysical(id, func(phys []byte) {
		if keep < 0 {
			keep = 0
		}
		for i := keep; i < len(phys); i++ {
			phys[i] = 0
		}
	})
}
