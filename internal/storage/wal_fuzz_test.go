package storage

import (
	"bytes"
	"testing"
)

// FuzzDecodeWALRecord feeds arbitrary bytes to the WAL record decoder:
// it must reject malformed payloads with an error wrapping
// ErrCorruptPage, never panic, never over-allocate from a hostile
// length, and round-trip every payload it accepts.
func FuzzDecodeWALRecord(f *testing.F) {
	f.Add(AppendWALInsert(nil, 42, []float64{1.5, -2.5}))
	f.Add(AppendWALDelete(nil, 7, []float64{0}))
	page := make([]byte, PageSize)
	page[0] = 0xAB
	f.Add(AppendWALMeta(nil, 3, page))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255}) // hostile dim
	f.Add([]byte{3, 0, 0, 0, 0})                       // truncated meta
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeWALRecord(payload)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("decode error does not wrap ErrCorruptPage: %v", err)
			}
			return
		}
		// Accepted payloads must re-encode byte-identically.
		var out []byte
		switch {
		case rec.IsWALInsert():
			out = AppendWALInsert(nil, rec.ID, rec.Point)
		case rec.IsWALDelete():
			out = AppendWALDelete(nil, rec.ID, rec.Point)
		case rec.IsWALMeta():
			out = AppendWALMeta(nil, rec.PageID, rec.Page)
		default:
			t.Fatalf("decoded record has unknown kind %d", rec.Kind)
		}
		if !bytes.Equal(out, payload) {
			t.Fatalf("decode/re-encode not identical: %d vs %d bytes", len(out), len(payload))
		}
	})
}
