package storage

import (
	"errors"
	"fmt"
	"testing"
)

// faultStore wraps a Store and fails operations once a countdown expires,
// for error-path testing across the stack.
type faultStore struct {
	inner      Store
	failReads  int // fail reads after this many successful ones (-1: never)
	failWrites int
	failAllocs int
}

var errInjected = errors.New("injected fault")

func (s *faultStore) ReadPage(id PageID, buf []byte) error {
	if s.failReads == 0 {
		return fmt.Errorf("read page %d: %w", id, errInjected)
	}
	if s.failReads > 0 {
		s.failReads--
	}
	return s.inner.ReadPage(id, buf)
}

func (s *faultStore) WritePage(id PageID, buf []byte) error {
	if s.failWrites == 0 {
		return fmt.Errorf("write page %d: %w", id, errInjected)
	}
	if s.failWrites > 0 {
		s.failWrites--
	}
	return s.inner.WritePage(id, buf)
}

func (s *faultStore) Allocate() (PageID, error) {
	if s.failAllocs == 0 {
		return InvalidPage, fmt.Errorf("allocate: %w", errInjected)
	}
	if s.failAllocs > 0 {
		s.failAllocs--
	}
	return s.inner.Allocate()
}

func (s *faultStore) NumPages() int { return s.inner.NumPages() }
func (s *faultStore) Close() error  { return s.inner.Close() }

func TestPoolPropagatesReadError(t *testing.T) {
	inner := NewMemStore()
	id, _ := inner.Allocate()
	fs := &faultStore{inner: inner, failReads: 0, failWrites: -1, failAllocs: -1}
	pool := NewBufferPool(fs, 2)
	if _, err := pool.Get(id); !errors.Is(err, errInjected) {
		t.Fatalf("Get error = %v, want injected fault", err)
	}
	// The frame grabbed for the failed read must be recycled, not leaked.
	fs.failReads = -1
	f, err := pool.Get(id)
	if err != nil {
		t.Fatalf("pool unusable after a failed read: %v", err)
	}
	f.Release()
	if pool.PinnedFrames() != 0 {
		t.Fatal("pinned frame leak after failed read")
	}
}

func TestPoolPropagatesWriteErrorOnEviction(t *testing.T) {
	inner := NewMemStore()
	id0, _ := inner.Allocate()
	id1, _ := inner.Allocate()
	fs := &faultStore{inner: inner, failReads: -1, failWrites: 0, failAllocs: -1}
	pool := NewBufferPool(fs, 1)
	f, err := pool.Get(id0)
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	f.Release()
	// Evicting the dirty page must surface the write failure.
	if _, err := pool.Get(id1); !errors.Is(err, errInjected) {
		t.Fatalf("eviction error = %v, want injected fault", err)
	}
}

func TestPoolPropagatesAllocError(t *testing.T) {
	fs := &faultStore{inner: NewMemStore(), failReads: -1, failWrites: -1, failAllocs: 0}
	pool := NewBufferPool(fs, 2)
	if _, err := pool.NewPage(); !errors.Is(err, errInjected) {
		t.Fatalf("NewPage error = %v, want injected fault", err)
	}
}

func TestFlushAllPropagatesWriteError(t *testing.T) {
	inner := NewMemStore()
	id, _ := inner.Allocate()
	fs := &faultStore{inner: inner, failReads: -1, failWrites: 0, failAllocs: -1}
	pool := NewBufferPool(fs, 2)
	f, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	f.Release()
	if err := pool.FlushAll(); !errors.Is(err, errInjected) {
		t.Fatalf("FlushAll error = %v, want injected fault", err)
	}
}
