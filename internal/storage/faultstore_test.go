package storage

import (
	"errors"
	"testing"
	"time"
)

// fastRetries keeps retry-path tests quick without changing the policy
// shape (3 retries, exponential, jittered).
var fastRetries = BufferPoolConfig{
	RetryBackoff:    time.Microsecond,
	RetryBackoffMax: 10 * time.Microsecond,
}

func noRetries() BufferPoolConfig {
	cfg := fastRetries
	cfg.ReadRetries = -1
	return cfg
}

func TestPoolPropagatesReadError(t *testing.T) {
	inner := NewMemStore()
	id, _ := inner.Allocate()
	fs := NewFaultStore(inner, FaultConfig{FailReadsAfter: 1})
	pool := NewBufferPoolWithConfig(fs, 2, noRetries())
	if _, err := pool.Get(id); !errors.Is(err, ErrTransientIO) {
		t.Fatalf("Get error = %v, want ErrTransientIO", err)
	}
	// The frame grabbed for the failed read must be recycled, not leaked.
	fs.SetConfig(FaultConfig{})
	f, err := pool.Get(id)
	if err != nil {
		t.Fatalf("pool unusable after a failed read: %v", err)
	}
	f.Release()
	RequireNoPinnedFrames(t, pool)
}

func TestPoolPropagatesWriteErrorOnEviction(t *testing.T) {
	inner := NewMemStore()
	id0, _ := inner.Allocate()
	id1, _ := inner.Allocate()
	fs := NewFaultStore(inner, FaultConfig{FailWritesAfter: 1})
	pool := NewBufferPool(fs, 1)
	f, err := pool.Get(id0)
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	f.Release()
	// Evicting the dirty page must surface the write failure.
	if _, err := pool.Get(id1); !errors.Is(err, ErrTransientIO) {
		t.Fatalf("eviction error = %v, want ErrTransientIO", err)
	}
	RequireNoPinnedFrames(t, pool)
}

// TestEvictionWriteFailureKeepsFrameUsable is the regression test for a
// frame leak: when the eviction write-back fails, the victim frame was
// unlinked from the LRU list and never relinked, so it became permanently
// unevictable — and a later hit on its page would unlink it a second
// time, corrupting the list.
func TestEvictionWriteFailureKeepsFrameUsable(t *testing.T) {
	inner := NewMemStore()
	id0, _ := inner.Allocate()
	id1, _ := inner.Allocate()
	fs := NewFaultStore(inner, FaultConfig{FailWritesAfter: 1})
	pool := NewBufferPool(fs, 1)
	f, err := pool.Get(id0)
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	f.Release()
	if _, err := pool.Get(id1); !errors.Is(err, ErrTransientIO) {
		t.Fatalf("eviction error = %v, want ErrTransientIO", err)
	}
	// The dirty victim must still be resident, hittable, and — after the
	// fault clears — evictable.
	f, err = pool.Get(id0)
	if err != nil {
		t.Fatalf("victim page lost after failed eviction: %v", err)
	}
	f.Release()
	fs.SetConfig(FaultConfig{})
	f, err = pool.Get(id1)
	if err != nil {
		t.Fatalf("frame leaked after failed eviction: %v", err)
	}
	f.Release()
	f, err = pool.Get(id0)
	if err != nil {
		t.Fatalf("LRU list corrupted after failed eviction: %v", err)
	}
	f.Release()
	RequireNoPinnedFrames(t, pool)
}

func TestPoolPropagatesAllocError(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultConfig{FailAllocsAfter: 1})
	pool := NewBufferPool(fs, 2)
	if _, err := pool.NewPage(); !errors.Is(err, ErrTransientIO) {
		t.Fatalf("NewPage error = %v, want ErrTransientIO", err)
	}
	RequireNoPinnedFrames(t, pool)
}

func TestFlushAllPropagatesWriteError(t *testing.T) {
	inner := NewMemStore()
	id, _ := inner.Allocate()
	fs := NewFaultStore(inner, FaultConfig{FailWritesAfter: 1})
	pool := NewBufferPool(fs, 2)
	f, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	f.Release()
	if err := pool.FlushAll(); !errors.Is(err, ErrTransientIO) {
		t.Fatalf("FlushAll error = %v, want ErrTransientIO", err)
	}
}

func TestPoolRetriesTransientReads(t *testing.T) {
	inner := NewMemStore()
	id, _ := inner.Allocate()
	fs := NewFaultStore(inner, FaultConfig{TransientReadErrs: 2})
	pool := NewBufferPoolWithConfig(fs, 2, fastRetries)
	f, err := pool.Get(id)
	if err != nil {
		t.Fatalf("Get should have retried through 2 transient failures: %v", err)
	}
	f.Release()
	if got := pool.Stats().Retries; got != 2 {
		t.Errorf("Stats().Retries = %d, want 2", got)
	}
	if got := fs.Stats().ReadErrors; got != 2 {
		t.Errorf("FaultStore.Stats().ReadErrors = %d, want 2", got)
	}
	RequireNoPinnedFrames(t, pool)
}

func TestPoolRetryGivesUp(t *testing.T) {
	inner := NewMemStore()
	id, _ := inner.Allocate()
	fs := NewFaultStore(inner, FaultConfig{FailReadsAfter: 1})
	pool := NewBufferPoolWithConfig(fs, 2, fastRetries)
	if _, err := pool.Get(id); !errors.Is(err, ErrTransientIO) {
		t.Fatalf("Get error = %v, want ErrTransientIO", err)
	}
	if got := pool.Stats().Retries; got != DefaultReadRetries {
		t.Errorf("Stats().Retries = %d, want %d", got, DefaultReadRetries)
	}
	RequireNoPinnedFrames(t, pool)
}

func TestCorruptPageNotRetried(t *testing.T) {
	inner := NewMemStore()
	id, _ := inner.Allocate()
	fs := NewFaultStore(inner, FaultConfig{})
	if err := fs.FlipBit(id, 40_000); err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPoolWithConfig(fs, 2, fastRetries)
	if _, err := pool.Get(id); !IsCorrupt(err) {
		t.Fatalf("Get error = %v, want ErrCorruptPage", err)
	}
	st := pool.Stats()
	if st.Retries != 0 {
		t.Errorf("corruption was retried %d times; corrupt pages must not be retried", st.Retries)
	}
	if st.CorruptPages != 1 {
		t.Errorf("Stats().CorruptPages = %d, want 1", st.CorruptPages)
	}
	RequireNoPinnedFrames(t, pool)
}

func TestBitFlipDetectedOnRead(t *testing.T) {
	for _, mk := range []struct {
		name string
		make func(t *testing.T) Store
	}{
		{"MemStore", func(t *testing.T) Store { return NewMemStore() }},
		{"FileStore", func(t *testing.T) Store {
			s, err := NewTempFileStore()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			fs := NewFaultStore(mk.make(t), FaultConfig{})
			id, err := fs.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			page := make([]byte, PageSize)
			for i := range page {
				page[i] = byte(i)
			}
			if err := fs.WritePage(id, page); err != nil {
				t.Fatal(err)
			}
			if err := fs.FlipBit(id, 12345); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, PageSize)
			if err := fs.ReadPage(id, buf); !IsCorrupt(err) {
				t.Fatalf("ReadPage after bit flip = %v, want ErrCorruptPage", err)
			}
			// Flipping the same bit again restores the page.
			if err := fs.FlipBit(id, 12345); err != nil {
				t.Fatal(err)
			}
			if err := fs.ReadPage(id, buf); err != nil {
				t.Fatalf("ReadPage after restore: %v", err)
			}
		})
	}
}

func TestTornWriteDetectedOnRead(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultConfig{})
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = 0xAB
	}
	if err := fs.WritePage(id, page); err != nil {
		t.Fatal(err)
	}
	if err := fs.TearPage(id, physPageSize/2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := fs.ReadPage(id, buf); !IsCorrupt(err) {
		t.Fatalf("ReadPage after torn write = %v, want ErrCorruptPage", err)
	}
}

func TestFaultStoreProbabilisticFaults(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultConfig{Seed: 7, ReadErrProb: 0.5})
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	failures := 0
	for i := 0; i < 200; i++ {
		if err := fs.ReadPage(id, buf); err != nil {
			if !IsTransient(err) {
				t.Fatalf("injected read error is not transient: %v", err)
			}
			failures++
		}
	}
	if failures < 50 || failures > 150 {
		t.Errorf("with p=0.5 over 200 reads got %d failures, expected ~100", failures)
	}
	if got := fs.Stats().ReadErrors; got != uint64(failures) {
		t.Errorf("Stats().ReadErrors = %d, want %d", got, failures)
	}
	// Same seed, same sequence: reproducibility is the whole point.
	fs2 := NewFaultStore(NewMemStore(), FaultConfig{Seed: 7, ReadErrProb: 0.5})
	if _, err := fs2.Allocate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := fs2.ReadPage(id, buf); err != nil {
			failures--
		}
	}
	if failures != 0 {
		t.Error("same seed produced a different fault sequence")
	}
}

func TestFaultStoreWriteCorruptionProbabilistic(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), FaultConfig{Seed: 3, BitFlipProb: 1})
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, PageSize)
	if err := fs.WritePage(id, page); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().BitFlips; got != 1 {
		t.Fatalf("Stats().BitFlips = %d, want 1", got)
	}
	buf := make([]byte, PageSize)
	if err := fs.ReadPage(id, buf); !IsCorrupt(err) {
		t.Fatalf("ReadPage after injected bit flip = %v, want ErrCorruptPage", err)
	}
}
