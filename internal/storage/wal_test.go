package storage

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"
)

func TestWALAppendRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	pts := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	for i, pt := range pts {
		if err := w.AppendInsert(uint64(i), pt); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendDelete(99, []float64{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != 4 || st.Fsyncs != 1 {
		t.Fatalf("stats after one group commit: %+v", st)
	}
	if w.Empty() {
		t.Fatal("WAL with records reports empty")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	snap, ops, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("unexpected meta snapshot %+v", snap)
	}
	if len(ops) != 4 {
		t.Fatalf("recovered %d ops, want 4", len(ops))
	}
	for i, pt := range pts {
		if !ops[i].IsWALInsert() || ops[i].ID != uint64(i) || !sliceEq(ops[i].Point, pt) {
			t.Fatalf("op %d = %+v, want insert %d %v", i, ops[i], i, pt)
		}
	}
	if !ops[3].IsWALDelete() || ops[3].ID != 99 {
		t.Fatalf("op 3 = %+v, want delete 99", ops[3])
	}
}

func TestWALMetaSnapshotSplitsReplay(t *testing.T) {
	f := NewMemWALFile()
	w, err := NewWALOn(f)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, PageSize)
	page[0], page[100] = 0xAB, 0xCD
	w.AppendInsert(1, []float64{1})
	w.AppendInsert(2, []float64{2})
	w.AppendMeta(7, page)
	w.AppendInsert(3, []float64{3})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	w2, err := NewWALOn(f)
	if err != nil {
		t.Fatal(err)
	}
	snap, ops, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.PageID != 7 || !bytes.Equal(snap.Page, page) {
		t.Fatalf("snapshot not recovered: %+v", snap)
	}
	if len(ops) != 1 || ops[0].ID != 3 {
		t.Fatalf("ops after snapshot = %+v, want just insert 3", ops)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	f := NewMemWALFile()
	w, err := NewWALOn(f)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendInsert(1, []float64{1, 2})
	w.AppendInsert(2, []float64{3, 4})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	goodSize, _ := f.Size()

	// A torn append: only part of the third record reaches the file.
	rec := AppendWALInsert(nil, 3, []float64{5, 6})
	var framed []byte
	framed = binary.LittleEndian.AppendUint32(framed, uint32(len(rec)))
	framed = binary.LittleEndian.AppendUint32(framed, 0xDEADBEEF) // wrong CRC anyway
	framed = append(framed, rec...)
	f.WriteAt(framed[:len(framed)-5], goodSize)

	w2, err := NewWALOn(f)
	if err != nil {
		t.Fatal(err)
	}
	snap, ops, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(ops) != 2 {
		t.Fatalf("recovered snap=%v ops=%d, want nil/2", snap, len(ops))
	}
	if size, _ := f.Size(); size != goodSize {
		t.Fatalf("torn tail not truncated: size %d, want %d", size, goodSize)
	}
	// The log must accept appends cleanly after truncation.
	if err := w2.AppendInsert(3, []float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	w3, _ := NewWALOn(f)
	_, ops, err = w3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("after post-recovery append: %d ops, want 3", len(ops))
	}
}

func TestWALBitFlipCutsCommitPoint(t *testing.T) {
	f := NewMemWALFile()
	w, _ := NewWALOn(f)
	w.AppendInsert(1, []float64{1})
	w.AppendInsert(2, []float64{2})
	w.AppendInsert(3, []float64{3})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit of the second record (below its checksum).
	rec1 := walHeaderSize + walRecHeader + 1 + 8 + 2 + 8
	var b [1]byte
	f.ReadAt(b[:], int64(rec1+walRecHeader+3))
	b[0] ^= 0x10
	f.WriteAt(b[:], int64(rec1+walRecHeader+3))

	w2, _ := NewWALOn(f)
	_, ops, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].ID != 1 {
		t.Fatalf("recovered %+v, want exactly the record before the flip", ops)
	}
}

func TestWALResetAndEmpty(t *testing.T) {
	f := NewMemWALFile()
	w, _ := NewWALOn(f)
	if !w.Empty() {
		t.Fatal("fresh WAL not empty")
	}
	w.AppendInsert(1, []float64{1})
	w.Sync()
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if !w.Empty() {
		t.Fatal("WAL not empty after Reset")
	}
	if w.Stats().Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", w.Stats().Checkpoints)
	}
	w2, _ := NewWALOn(f)
	snap, ops, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(ops) != 0 {
		t.Fatalf("reset log recovered snap=%v ops=%d", snap, len(ops))
	}
}

func TestWALFaultTornWriteRecoversPrefix(t *testing.T) {
	mem := NewMemWALFile()
	// First batch lands cleanly.
	w, _ := NewWALOn(mem)
	w.AppendInsert(1, []float64{1, 1})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	goodSize, _ := mem.Size()

	// Second batch is torn mid-write at every possible byte offset; the
	// recovered log must always be a prefix of the op sequence.
	batch := [][]float64{{2, 2}, {3, 3}}
	var encoded []byte
	for i, pt := range batch {
		rec := AppendWALInsert(nil, uint64(i+2), pt)
		encoded = binary.LittleEndian.AppendUint32(encoded, uint32(len(rec)))
		encoded = append(encoded, 0, 0, 0, 0)
		encoded = append(encoded, rec...)
	}
	for keep := 0; keep <= len(encoded); keep += 7 {
		mem.Truncate(goodSize)
		fw := NewFaultWALFile(mem, WALFaultConfig{TornWriteAfter: 1, TornKeepBytes: keep})
		w2, err := NewWALOn(fw)
		if err != nil {
			t.Fatal(err)
		}
		w2.AppendInsert(2, batch[0])
		w2.AppendInsert(3, batch[1])
		if err := w2.Sync(); err == nil {
			t.Fatalf("keep=%d: torn sync did not fail", keep)
		} else if !IsWriteFailed(err) {
			t.Fatalf("keep=%d: torn sync error %v not classified as write failure", keep, err)
		}
		// The WAL is broken now; appends must refuse.
		if err := w2.AppendInsert(4, []float64{4, 4}); err == nil {
			t.Fatalf("keep=%d: broken WAL accepted an append", keep)
		}

		// "Crash" and recover: the committed prefix plus 0..2 records of
		// the torn batch, never garbage.
		w3, err := NewWALOn(mem)
		if err != nil {
			t.Fatal(err)
		}
		snap, ops, err := w3.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if snap != nil {
			t.Fatalf("keep=%d: phantom snapshot", keep)
		}
		if len(ops) < 1 || len(ops) > 3 {
			t.Fatalf("keep=%d: recovered %d ops", keep, len(ops))
		}
		for i, op := range ops {
			if op.ID != uint64(i+1) {
				t.Fatalf("keep=%d: op %d has id %d — not a prefix", keep, i, op.ID)
			}
		}
	}
}

func TestWALRoundTripFloats(t *testing.T) {
	vals := []float64{0, -0.0, 1.5, math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64}
	payload := AppendWALInsert(nil, 42, vals)
	rec, err := DecodeWALRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.Float64bits(rec.Point[i]) != math.Float64bits(v) {
			t.Fatalf("value %d: %v != %v (bits)", i, rec.Point[i], v)
		}
	}
}

func sliceEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
