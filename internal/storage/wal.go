package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"allnn/internal/obs"
)

// The write-ahead log makes index mutations durable before they touch
// tree pages. It is a separate append-only file next to the page file
// (<pagefile>.wal) with a fixed header followed by length-prefixed,
// CRC32-C-checksummed records:
//
//	header:  magic "ANNW" uint32 | version uint16 | flags uint16 |
//	         reserved uint64                        (16 bytes)
//	record:  payloadLen uint32 | crc32c(payload) uint32 | payload
//
// Record payloads are typed by their first byte:
//
//	walKindInsert:  kind | id uint64 | dim uint16 | dim × float64
//	walKindDelete:  same layout as insert
//	walKindMeta:    kind | metaPageID uint32 | PageSize payload bytes
//
// The commit rule is the classic one: the longest prefix of records with
// valid lengths and checksums is committed; the first invalid or
// truncated record marks the torn tail, which recovery truncates. A
// walKindMeta record is a full copy of the tree's meta page captured at
// a checkpoint: recovery restores the LAST valid one to the page file
// and replays only the op records after it, which makes every crash
// point — before the snapshot, between the snapshot and the meta page
// write, or during the log reset — land on a consistent tree without
// log sequence numbers in the page file (see ann.OpenIndex and
// DESIGN.md §15).
//
// Appends are group-committed: Append* buffers records in memory and
// Sync persists the whole batch with one write and one fsync.
const (
	walMagic      = 0x414E4E57 // "WNNA" little-endian; reads as "ANNW" on disk
	walVersion    = 1
	walHeaderSize = 16

	walRecHeader = 8 // payloadLen u32 | crc u32

	// walMaxRecord bounds one record's payload, protecting replay (and
	// the fuzzer's allocations) against hostile lengths. The largest
	// legitimate record is a meta snapshot: 1 + 4 + PageSize bytes.
	walMaxRecord = 16 << 10

	// walMaxDim bounds the dimensionality an op record may claim.
	walMaxDim = 1024
)

// WAL record payload kinds.
const (
	walKindInsert byte = 1
	walKindDelete byte = 2
	walKindMeta   byte = 3
)

// WALRecord is one decoded log record. Kind selects which fields are
// meaningful: ID and Point for inserts and deletes, PageID and Page for
// meta snapshots.
type WALRecord struct {
	Kind   byte
	ID     uint64
	Point  []float64
	PageID PageID
	Page   []byte
}

// AppendWALInsert appends the encoded payload of an insert record to buf.
func AppendWALInsert(buf []byte, id uint64, pt []float64) []byte {
	return appendWALOp(buf, walKindInsert, id, pt)
}

// AppendWALDelete appends the encoded payload of a delete record to buf.
func AppendWALDelete(buf []byte, id uint64, pt []float64) []byte {
	return appendWALOp(buf, walKindDelete, id, pt)
}

func appendWALOp(buf []byte, kind byte, id uint64, pt []float64) []byte {
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(pt)))
	for _, v := range pt {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// AppendWALMeta appends the encoded payload of a meta-snapshot record
// (a full copy of the tree's meta page) to buf.
func AppendWALMeta(buf []byte, pid PageID, page []byte) []byte {
	buf = append(buf, walKindMeta)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(pid))
	return append(buf, page[:PageSize]...)
}

// DecodeWALRecord decodes one record payload, validating it completely:
// exact length, sane dimensionality, full meta page. Malformed payloads
// return an error wrapping ErrCorruptPage and never panic — this is the
// boundary the WAL fuzzer hammers.
func DecodeWALRecord(payload []byte) (WALRecord, error) {
	if len(payload) == 0 {
		return WALRecord{}, fmt.Errorf("storage: empty WAL record: %w", ErrCorruptPage)
	}
	switch kind := payload[0]; kind {
	case walKindInsert, walKindDelete:
		if len(payload) < 1+8+2 {
			return WALRecord{}, fmt.Errorf("storage: WAL op record of %d bytes: %w", len(payload), ErrCorruptPage)
		}
		id := binary.LittleEndian.Uint64(payload[1:])
		dim := int(binary.LittleEndian.Uint16(payload[9:]))
		if dim == 0 || dim > walMaxDim {
			return WALRecord{}, fmt.Errorf("storage: WAL op record claims dim %d: %w", dim, ErrCorruptPage)
		}
		if len(payload) != 1+8+2+8*dim {
			return WALRecord{}, fmt.Errorf("storage: WAL op record of %d bytes for dim %d: %w",
				len(payload), dim, ErrCorruptPage)
		}
		pt := make([]float64, dim)
		for d := range pt {
			pt[d] = math.Float64frombits(binary.LittleEndian.Uint64(payload[11+8*d:]))
		}
		return WALRecord{Kind: kind, ID: id, Point: pt}, nil
	case walKindMeta:
		if len(payload) != 1+4+PageSize {
			return WALRecord{}, fmt.Errorf("storage: WAL meta record of %d bytes: %w", len(payload), ErrCorruptPage)
		}
		pid := PageID(binary.LittleEndian.Uint32(payload[1:]))
		page := make([]byte, PageSize)
		copy(page, payload[5:])
		return WALRecord{Kind: walKindMeta, PageID: pid, Page: page}, nil
	default:
		return WALRecord{}, fmt.Errorf("storage: unknown WAL record kind %d: %w", kind, ErrCorruptPage)
	}
}

// IsWALInsert reports whether r is an insert op.
func (r *WALRecord) IsWALInsert() bool { return r.Kind == walKindInsert }

// IsWALDelete reports whether r is a delete op.
func (r *WALRecord) IsWALDelete() bool { return r.Kind == walKindDelete }

// IsWALMeta reports whether r is a meta snapshot.
func (r *WALRecord) IsWALMeta() bool { return r.Kind == walKindMeta }

// --- backend ----------------------------------------------------------------

// WALBackend is the file surface the WAL runs on. *os.File satisfies it
// via OSWALFile; MemWALFile keeps everything in memory for tests and
// fuzzing; FaultWALFile injects torn writes and failed syncs for the
// crash-recovery suite.
type WALBackend interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// OSWALFile adapts an *os.File to WALBackend.
type OSWALFile struct{ F *os.File }

func (f OSWALFile) ReadAt(p []byte, off int64) (int, error)  { return f.F.ReadAt(p, off) }
func (f OSWALFile) WriteAt(p []byte, off int64) (int, error) { return f.F.WriteAt(p, off) }
func (f OSWALFile) Truncate(size int64) error                { return f.F.Truncate(size) }
func (f OSWALFile) Sync() error                              { return f.F.Sync() }
func (f OSWALFile) Close() error                             { return f.F.Close() }
func (f OSWALFile) Size() (int64, error) {
	info, err := f.F.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// MemWALFile is an in-memory WALBackend.
type MemWALFile struct {
	mu  sync.Mutex
	buf []byte
}

// NewMemWALFile returns an empty in-memory WAL backend.
func NewMemWALFile() *MemWALFile { return &MemWALFile{} }

func (f *MemWALFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *MemWALFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(f.buf)) {
		f.buf = append(f.buf, make([]byte, need-int64(len(f.buf)))...)
	}
	return copy(f.buf[off:], p), nil
}

func (f *MemWALFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < int64(len(f.buf)) {
		f.buf = f.buf[:size]
	} else {
		f.buf = append(f.buf, make([]byte, size-int64(len(f.buf)))...)
	}
	return nil
}

func (f *MemWALFile) Sync() error  { return nil }
func (f *MemWALFile) Close() error { return nil }
func (f *MemWALFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.buf)), nil
}

// Bytes returns a copy of the backing buffer (for test assertions).
func (f *MemWALFile) Bytes() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]byte, len(f.buf))
	copy(out, f.buf)
	return out
}

// WALFaultConfig selects the faults a FaultWALFile injects. The zero
// value injects nothing. The countdowns follow FaultConfig's convention:
// n=1 fails the next matching operation, larger n fails the n-th.
type WALFaultConfig struct {
	// FailWritesAfter makes the n-th WriteAt — and every later one —
	// fail without writing anything.
	FailWritesAfter int
	// TornWriteAfter makes the n-th WriteAt persist only TornKeepBytes
	// bytes of its buffer and then report failure, simulating a crash
	// mid-append.
	TornWriteAfter int
	// TornKeepBytes is how much of the torn write survives.
	TornKeepBytes int
	// FailSyncsAfter makes the n-th Sync — and every later one — fail.
	FailSyncsAfter int
}

// FaultWALFile wraps a WALBackend with deterministic write/sync faults
// for the crash-recovery loop.
type FaultWALFile struct {
	inner WALBackend

	mu  sync.Mutex
	cfg WALFaultConfig
}

// NewFaultWALFile wraps inner with fault injection per cfg.
func NewFaultWALFile(inner WALBackend, cfg WALFaultConfig) *FaultWALFile {
	return &FaultWALFile{inner: inner, cfg: cfg}
}

// SetConfig replaces the fault configuration.
func (f *FaultWALFile) SetConfig(cfg WALFaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg = cfg
}

func (f *FaultWALFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *FaultWALFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	fail, torn, keep := false, false, 0
	if f.cfg.FailWritesAfter > 0 {
		if f.cfg.FailWritesAfter == 1 {
			fail = true
		}
		f.cfg.FailWritesAfter--
	}
	if f.cfg.TornWriteAfter > 0 {
		if f.cfg.TornWriteAfter == 1 {
			torn, keep = true, f.cfg.TornKeepBytes
		}
		f.cfg.TornWriteAfter--
	}
	f.mu.Unlock()
	if torn {
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			f.inner.WriteAt(p[:keep], off)
		}
		return keep, fmt.Errorf("storage: injected torn WAL write (%d of %d bytes): %w", keep, len(p), ErrWriteFailed)
	}
	if fail {
		return 0, fmt.Errorf("storage: injected WAL write fault: %w", ErrWriteFailed)
	}
	return f.inner.WriteAt(p, off)
}

func (f *FaultWALFile) Truncate(size int64) error { return f.inner.Truncate(size) }

func (f *FaultWALFile) Sync() error {
	f.mu.Lock()
	fail := false
	if f.cfg.FailSyncsAfter > 0 {
		if f.cfg.FailSyncsAfter == 1 {
			fail = true
		}
		f.cfg.FailSyncsAfter--
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("storage: injected WAL sync fault: %w", ErrWriteFailed)
	}
	return f.inner.Sync()
}

func (f *FaultWALFile) Close() error         { return f.inner.Close() }
func (f *FaultWALFile) Size() (int64, error) { return f.inner.Size() }

// --- WAL --------------------------------------------------------------------

// WAL is a write-ahead log over a WALBackend. Append* buffers records;
// Sync persists the pending batch with one write and one fsync (group
// commit). After any failed write or sync the WAL is broken: the
// durable state of the file is unknown, so every later operation fails
// until the index is reopened and recovered.
//
// The WAL itself is not locked — the single index writer serialises
// access, matching the trees it protects.
type WAL struct {
	f    WALBackend
	size int64 // end offset of the durable region
	pend []byte
	// pendRecords counts the records in pend, moved to the records
	// counter when the batch commits.
	pendRecords uint64
	broken      error

	records     atomic.Uint64
	fsyncs      atomic.Uint64
	checkpoints atomic.Uint64
	replayed    atomic.Uint64
	replayNs    atomic.Int64
	pinsFn      atomic.Value // func() int64
}

// CreateWAL creates (truncating) a fresh log at path.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create WAL: %w", err)
	}
	w := &WAL{f: OSWALFile{F: f}}
	if err := w.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// OpenWAL opens the log at path, creating it fresh if absent. The
// returned WAL still holds whatever committed records the file carries;
// the caller runs Recover to read them (and detect an unclean
// shutdown) before appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open WAL: %w", err)
	}
	w, err := NewWALOn(OSWALFile{F: f})
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// NewWALOn opens a WAL over an arbitrary backend (tests inject
// MemWALFile and FaultWALFile here). An empty or header-torn backend is
// initialised fresh; a backend with a valid header keeps its records
// for Recover.
func NewWALOn(f WALBackend) (*WAL, error) {
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("storage: stat WAL: %w", err)
	}
	w := &WAL{f: f, size: size}
	if size < walHeaderSize {
		// Empty, or torn during initial creation — either way there are
		// no records yet; start fresh.
		if err := w.writeHeader(); err != nil {
			return nil, err
		}
		return w, nil
	}
	var hdr [walHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("storage: read WAL header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != walMagic {
		return nil, fmt.Errorf("storage: bad WAL magic %#08x: %w", got, ErrCorruptPage)
	}
	if got := binary.LittleEndian.Uint16(hdr[4:]); got != walVersion {
		return nil, fmt.Errorf("storage: unsupported WAL version %d: %w", got, ErrCorruptPage)
	}
	return w, nil
}

func (w *WAL) writeHeader() error {
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], walMagic)
	binary.LittleEndian.PutUint16(hdr[4:], walVersion)
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: init WAL: %v: %w", err, ErrWriteFailed)
	}
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("storage: init WAL: %v: %w", err, ErrWriteFailed)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: init WAL: %v: %w", err, ErrWriteFailed)
	}
	w.size = walHeaderSize
	return nil
}

// AppendInsert buffers an insert record.
func (w *WAL) AppendInsert(id uint64, pt []float64) error {
	return w.appendPayload(AppendWALInsert(nil, id, pt))
}

// AppendDelete buffers a delete record.
func (w *WAL) AppendDelete(id uint64, pt []float64) error {
	return w.appendPayload(AppendWALDelete(nil, id, pt))
}

// AppendMeta buffers a meta-snapshot record.
func (w *WAL) AppendMeta(pid PageID, page []byte) error {
	return w.appendPayload(AppendWALMeta(nil, pid, page))
}

func (w *WAL) appendPayload(payload []byte) error {
	if w.broken != nil {
		return w.broken
	}
	if len(payload) > walMaxRecord {
		return fmt.Errorf("storage: WAL record of %d bytes exceeds limit %d: %w",
			len(payload), walMaxRecord, ErrWriteFailed)
	}
	w.pend = binary.LittleEndian.AppendUint32(w.pend, uint32(len(payload)))
	w.pend = binary.LittleEndian.AppendUint32(w.pend, crc32.Checksum(payload, castagnoli))
	w.pend = append(w.pend, payload...)
	w.pendRecords++
	return nil
}

// Sync group-commits the pending batch: one write at the current end of
// the log, one fsync. On failure the WAL is broken (the batch may be
// torn on disk; recovery will truncate it) and the error, wrapping
// ErrWriteFailed, is sticky.
func (w *WAL) Sync() error {
	if w.broken != nil {
		return w.broken
	}
	if len(w.pend) == 0 {
		return nil
	}
	if _, err := w.f.WriteAt(w.pend, w.size); err != nil {
		w.broken = fmt.Errorf("storage: WAL append: %v: %w", err, ErrWriteFailed)
		return w.broken
	}
	if err := w.f.Sync(); err != nil {
		w.broken = fmt.Errorf("storage: WAL fsync: %v: %w", err, ErrWriteFailed)
		return w.broken
	}
	w.size += int64(len(w.pend))
	w.pend = w.pend[:0]
	w.records.Add(w.pendRecords)
	w.pendRecords = 0
	w.fsyncs.Add(1)
	return nil
}

// Recover scans the committed prefix of the log and truncates the torn
// tail. It returns the last valid meta snapshot (nil if none) and the
// op records that follow it — exactly what OpenIndex must replay on top
// of the snapshot's tree. An empty result (nil, nil) means the index
// was closed cleanly.
func (w *WAL) Recover() (snap *WALRecord, ops []WALRecord, err error) {
	start := time.Now()
	off := int64(walHeaderSize)
	var hdr [walRecHeader]byte
	var ok int64 = walHeaderSize
	for {
		if _, err := w.f.ReadAt(hdr[:], off); err != nil {
			break // torn or clean end of log
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:]))
		want := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > walMaxRecord {
			break
		}
		payload := make([]byte, n)
		if _, err := w.f.ReadAt(payload, off+walRecHeader); err != nil {
			break
		}
		if crc32.Checksum(payload, castagnoli) != want {
			break
		}
		rec, derr := DecodeWALRecord(payload)
		if derr != nil {
			break
		}
		if rec.IsWALMeta() {
			r := rec
			snap, ops = &r, ops[:0]
		} else {
			ops = append(ops, rec)
		}
		off += walRecHeader + n
		ok = off
	}
	// Drop the torn tail so later appends land on a clean end.
	if cur, serr := w.f.Size(); serr == nil && cur > ok {
		if err := w.f.Truncate(ok); err != nil {
			return nil, nil, fmt.Errorf("storage: truncate torn WAL tail: %v: %w", err, ErrWriteFailed)
		}
		if err := w.f.Sync(); err != nil {
			return nil, nil, fmt.Errorf("storage: truncate torn WAL tail: %v: %w", err, ErrWriteFailed)
		}
	}
	w.size = ok
	w.replayed.Add(uint64(len(ops)))
	if snap != nil {
		w.replayed.Add(1)
	}
	w.replayNs.Add(time.Since(start).Nanoseconds())
	return snap, ops, nil
}

// Reset truncates the log back to a bare header after a checkpoint: the
// checkpointed page file now owns everything the log described.
func (w *WAL) Reset() error {
	if w.broken != nil {
		return w.broken
	}
	if err := w.f.Truncate(walHeaderSize); err != nil {
		w.broken = fmt.Errorf("storage: reset WAL: %v: %w", err, ErrWriteFailed)
		return w.broken
	}
	if err := w.f.Sync(); err != nil {
		w.broken = fmt.Errorf("storage: reset WAL: %v: %w", err, ErrWriteFailed)
		return w.broken
	}
	w.size = walHeaderSize
	w.pend = w.pend[:0]
	w.pendRecords = 0
	w.checkpoints.Add(1)
	return nil
}

// Empty reports whether the durable log holds no records — true after a
// clean shutdown, false when recovery has work to do.
func (w *WAL) Empty() bool { return w.size == walHeaderSize }

// Size returns the durable log size in bytes, excluding the fixed file
// header — the replay debt a crash right now would incur, and the
// quantity auto-checkpoint policies budget against.
func (w *WAL) Size() int64 { return w.size - walHeaderSize }

// Close closes the backend without checkpointing; call Reset first for
// a clean shutdown.
func (w *WAL) Close() error { return w.f.Close() }

// SetPinsFunc wires the snapshot-pin gauge (wal.snapshot_pins) to the
// index's version chain.
func (w *WAL) SetPinsFunc(fn func() int64) { w.pinsFn.Store(fn) }

// WALStats is a snapshot of the log's counters.
type WALStats struct {
	Records     uint64 // records group-committed
	Fsyncs      uint64 // group commits (one fsync each)
	Checkpoints uint64 // log resets after a checkpoint
	Replayed    uint64 // records recovered at open
	ReplayNs    int64  // time spent scanning the log at open
}

// Stats returns a snapshot of the log's counters.
func (w *WAL) Stats() WALStats {
	return WALStats{
		Records:     w.records.Load(),
		Fsyncs:      w.fsyncs.Load(),
		Checkpoints: w.checkpoints.Load(),
		Replayed:    w.replayed.Load(),
		ReplayNs:    w.replayNs.Load(),
	}
}

// Register wires the WAL into a metrics registry under the given family
// prefix ("<prefix>.records", ".fsyncs", ".checkpoints",
// ".replayed_records", ".replay_ns", plus gauge "<prefix>.snapshot_pins"
// once SetPinsFunc has been called).
func (w *WAL) Register(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.CounterFunc(prefix+".records", func() uint64 { return w.records.Load() })
	r.CounterFunc(prefix+".fsyncs", func() uint64 { return w.fsyncs.Load() })
	r.CounterFunc(prefix+".checkpoints", func() uint64 { return w.checkpoints.Load() })
	r.CounterFunc(prefix+".replayed_records", func() uint64 { return w.replayed.Load() })
	r.CounterFunc(prefix+".replay_ns", func() uint64 { return uint64(w.replayNs.Load()) })
	r.GaugeFunc(prefix+".snapshot_pins", func() int64 {
		if fn, ok := w.pinsFn.Load().(func() int64); ok {
			return fn()
		}
		return 0
	})
}
