package storage

import "errors"

// Error taxonomy of the storage layer. Every failure a Store or BufferPool
// surfaces is classified against these sentinels (errors.Is), so callers
// at any level of the stack can distinguish "the bytes are bad" from "the
// device hiccuped" without parsing messages:
//
//   - ErrCorruptPage: the page content failed verification (bad magic,
//     version, page-id echo, or CRC mismatch) or a node decoder found the
//     payload structurally invalid. Retrying cannot help; the page (and
//     whatever index lives on it) needs repair or rebuild.
//   - ErrTransientIO: the operation failed in a way that may succeed if
//     retried (injected faults, and the class a real device's EINTR/EAGAIN
//     family maps to). The BufferPool retries these with capped,
//     jittered exponential backoff before giving up.
//   - ErrWriteFailed: a write-path operation (page write, file sync, WAL
//     append) failed against the device and durability can no longer be
//     promised for it. Unlike ErrTransientIO it is not auto-retried: the
//     caller must decide whether the mutation is abandoned or replayed.
//
// All always travel wrapped with the page id (and usually the operation),
// so a surfaced error reads like "storage: page 17: checksum mismatch ...:
// corrupt page".
var (
	// ErrCorruptPage marks permanently damaged page content.
	ErrCorruptPage = errors.New("corrupt page")
	// ErrTransientIO marks failures worth retrying.
	ErrTransientIO = errors.New("transient I/O failure")
	// ErrWriteFailed marks a failed durable write (page write, sync, or
	// WAL append).
	ErrWriteFailed = errors.New("write failed")
)

// IsCorrupt reports whether err is classified as page corruption.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorruptPage) }

// IsTransient reports whether err is classified as retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransientIO) }

// IsWriteFailed reports whether err is classified as a durable-write
// failure.
func IsWriteFailed(err error) bool { return errors.Is(err, ErrWriteFailed) }
