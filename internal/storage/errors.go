package storage

import "errors"

// Error taxonomy of the storage layer. Every failure a Store or BufferPool
// surfaces is classified against these sentinels (errors.Is), so callers
// at any level of the stack can distinguish "the bytes are bad" from "the
// device hiccuped" without parsing messages:
//
//   - ErrCorruptPage: the page content failed verification (bad magic,
//     version, page-id echo, or CRC mismatch) or a node decoder found the
//     payload structurally invalid. Retrying cannot help; the page (and
//     whatever index lives on it) needs repair or rebuild.
//   - ErrTransientIO: the operation failed in a way that may succeed if
//     retried (injected faults, and the class a real device's EINTR/EAGAIN
//     family maps to). The BufferPool retries these with capped,
//     jittered exponential backoff before giving up.
//
// Both always travel wrapped with the page id (and usually the operation),
// so a surfaced error reads like "storage: page 17: checksum mismatch ...:
// corrupt page".
var (
	// ErrCorruptPage marks permanently damaged page content.
	ErrCorruptPage = errors.New("corrupt page")
	// ErrTransientIO marks failures worth retrying.
	ErrTransientIO = errors.New("transient I/O failure")
)

// IsCorrupt reports whether err is classified as page corruption.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorruptPage) }

// IsTransient reports whether err is classified as retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransientIO) }
