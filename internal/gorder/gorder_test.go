package gorder

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/bruteforce"
	"allnn/internal/core"
	"allnn/internal/geom"
	"allnn/internal/storage"
)

const tol = 1e-9

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMemStore(), frames)
}

func uniformPoints(rng *rand.Rand, n, dim int, lim float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * lim
		}
		pts[i] = p
	}
	return pts
}

func runJoin(t *testing.T, rPts, sPts []geom.Point, frames int, opts Options) ([]core.Result, Stats) {
	t.Helper()
	pool := newPool(frames)
	var out []core.Result
	stats, err := Join(FromPoints(rPts), FromPoints(sPts), pool, opts, func(r core.Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pool.PinnedFrames() != 0 {
		t.Fatalf("%d frames leaked", pool.PinnedFrames())
	}
	return out, stats
}

func checkAgainstBrute(t *testing.T, rPts, sPts []geom.Point, frames int, opts Options) Stats {
	t.Helper()
	got, stats := runJoin(t, rPts, sPts, frames, opts)
	k := opts.K
	if k <= 0 {
		k = 1
	}
	want := bruteforce.AkNN(bruteforce.FromPoints(rPts), bruteforce.FromPoints(sPts), k, opts.ExcludeSelf)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	sort.Slice(got, func(a, b int) bool { return got[a].Object < got[b].Object })
	for i := range want {
		g, w := got[i], want[i]
		if g.Object != w.Object {
			t.Fatalf("result %d for object %d, want %d", i, g.Object, w.Object)
		}
		if len(g.Neighbors) != len(w.Neighbors) {
			t.Fatalf("object %d: %d neighbors, want %d", g.Object, len(g.Neighbors), len(w.Neighbors))
		}
		for n := range w.Neighbors {
			if math.Abs(g.Neighbors[n].Dist-w.Neighbors[n].Dist) > tol {
				t.Fatalf("object %d neighbor %d dist %g, want %g",
					g.Object, n, g.Neighbors[n].Dist, w.Neighbors[n].Dist)
			}
		}
	}
	return stats
}

func TestJoinMatchesBrute2D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rPts := uniformPoints(rng, 300, 2, 100)
	sPts := uniformPoints(rng, 400, 2, 100)
	for _, k := range []int{1, 5} {
		checkAgainstBrute(t, rPts, sPts, 64, Options{K: k})
	}
}

func TestJoinMatchesBruteHighDim(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rPts := uniformPoints(rng, 150, 10, 1)
	sPts := uniformPoints(rng, 200, 10, 1)
	checkAgainstBrute(t, rPts, sPts, 64, Options{K: 3})
}

func TestJoinSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := uniformPoints(rng, 250, 2, 100)
	checkAgainstBrute(t, pts, pts, 64, Options{K: 2, ExcludeSelf: true})
}

func TestJoinTinyPool(t *testing.T) {
	// Must stay correct with the minimum possible buffer.
	rng := rand.New(rand.NewSource(4))
	rPts := uniformPoints(rng, 200, 2, 100)
	sPts := uniformPoints(rng, 200, 2, 100)
	checkAgainstBrute(t, rPts, sPts, 3, Options{})
}

func TestJoinTinyInputs(t *testing.T) {
	checkAgainstBrute(t, []geom.Point{{1, 1}}, []geom.Point{{2, 2}}, 16, Options{})
	checkAgainstBrute(t, []geom.Point{{1, 1}}, []geom.Point{{2, 2}, {3, 3}}, 16, Options{K: 5})
}

func TestJoinEmptyInputs(t *testing.T) {
	got, _ := runJoin(t, nil, []geom.Point{{1, 1}}, 16, Options{})
	if len(got) != 0 {
		t.Fatal("empty R should produce no results")
	}
	got, _ = runJoin(t, []geom.Point{{1, 1}}, nil, 16, Options{})
	if len(got) != 1 || len(got[0].Neighbors) != 0 {
		t.Fatalf("empty S should produce empty neighbor lists: %+v", got)
	}
}

func TestJoinDimMismatch(t *testing.T) {
	pool := newPool(16)
	_, err := Join(FromPoints([]geom.Point{{1, 2}}), FromPoints([]geom.Point{{1, 2, 3}}), pool,
		Options{}, func(core.Result) error { return nil })
	if err == nil {
		t.Fatal("expected dimensionality error")
	}
}

func TestBufferSensitivity(t *testing.T) {
	// Figure 3(b)'s mechanism: with a larger pool, the inner blocks that
	// several outer blocks share stay cached, so the same logical block
	// fetches cause far fewer physical page misses.
	rng := rand.New(rand.NewSource(5))
	rPts := uniformPoints(rng, 3000, 6, 100)
	sPts := uniformPoints(rng, 3000, 6, 100)
	physical := func(frames int) uint64 {
		pool := newPool(frames)
		_, err := Join(FromPoints(rPts), FromPoints(sPts), pool, Options{},
			func(core.Result) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		return pool.Stats().Misses
	}
	small := physical(4)
	large := physical(256)
	t.Logf("physical page misses: small pool %d, large pool %d", small, large)
	if large >= small {
		t.Errorf("larger pool missed %d pages, small pool %d — expected fewer", large, small)
	}
}

func TestBlockPruningHappens(t *testing.T) {
	// Two well-separated clusters: most cross-cluster blocks must be
	// pruned without being read.
	rng := rand.New(rand.NewSource(6))
	var rPts, sPts []geom.Point
	for i := 0; i < 1000; i++ {
		rPts = append(rPts, geom.Point{rng.Float64(), rng.Float64()})
		sPts = append(sPts, geom.Point{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 1000; i++ {
		rPts = append(rPts, geom.Point{1e6 + rng.Float64(), rng.Float64()})
		sPts = append(sPts, geom.Point{1e6 + rng.Float64(), rng.Float64()})
	}
	stats := checkAgainstBrute(t, rPts, sPts, 8, Options{})
	if stats.BlockPairsPruned == 0 {
		t.Error("no block pairs pruned on a bimodal workload")
	}
}

// --- PCA unit tests ----------------------------------------------------------

func TestCovarianceKnown(t *testing.T) {
	pts := []geom.Point{{1, 2}, {3, 6}, {5, 10}}
	cov := covariance(pts)
	// x: mean 3, var 4; y = 2x: var 16, cov 8.
	if math.Abs(cov[0][0]-4) > tol || math.Abs(cov[1][1]-16) > tol || math.Abs(cov[0][1]-8) > tol {
		t.Fatalf("covariance = %v", cov)
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// Matrix [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	values, vectors, err := jacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if math.Abs(sorted[0]-1) > 1e-9 || math.Abs(sorted[1]-3) > 1e-9 {
		t.Fatalf("eigenvalues = %v", values)
	}
	// Eigenvector columns must be orthonormal.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var dot float64
			for k := 0; k < 2; k++ {
				dot += vectors[k][i] * vectors[k][j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("eigenvectors not orthonormal: <%d,%d> = %g", i, j, dot)
			}
		}
	}
}

func TestPCADistancePreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := uniformPoints(rng, 50, 5, 100)
	s := uniformPoints(rng, 50, 5, 100)
	tr, ts, err := pcaTransform(r, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a, b := rng.Intn(len(r)), rng.Intn(len(s))
		orig := geom.Dist(r[a], s[b])
		proj := geom.Dist(tr[a], ts[b])
		if math.Abs(orig-proj) > 1e-6*(1+orig) {
			t.Fatalf("distance not preserved: %g vs %g", orig, proj)
		}
	}
}

func TestPCAFirstComponentHasMaxVariance(t *testing.T) {
	// Strongly anisotropic data: the first component must capture the
	// dominant direction.
	rng := rand.New(rand.NewSource(8))
	pts := make([]geom.Point, 500)
	for i := range pts {
		v := rng.NormFloat64() * 100
		pts[i] = geom.Point{v + rng.NormFloat64(), v - rng.NormFloat64(), rng.NormFloat64()}
	}
	tr, _, err := pcaTransform(pts, pts[:1])
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, 3)
	means := make([]float64, 3)
	for _, p := range tr {
		for d := range p {
			means[d] += p[d]
		}
	}
	for d := range means {
		means[d] /= float64(len(tr))
	}
	for _, p := range tr {
		for d := range p {
			vars[d] += (p[d] - means[d]) * (p[d] - means[d])
		}
	}
	if vars[0] < vars[1] || vars[0] < vars[2] {
		t.Fatalf("component variances not descending: %v", vars)
	}
}

func TestGridOrderGroupsCells(t *testing.T) {
	pts := []geom.Point{{0.9, 0.9}, {0.1, 0.1}, {0.9, 0.1}, {0.1, 0.9}, {0.15, 0.12}}
	bounds := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	order, err := gridOrder(newPool(16), pts, bounds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Lexicographic cell order: (0,0) points first (indices 1 and 4),
	// then (0,1) -> 3, then (1,0) -> 2, then (1,1) -> 0.
	want := map[int]int{0: 4, 1: 4, 2: 3, 3: 2, 4: 0} // position -> allowed region check below
	_ = want
	pos := make(map[int]int)
	for p, idx := range order {
		pos[idx] = p
	}
	if !(pos[1] < 2 && pos[4] < 2) {
		t.Fatalf("cell (0,0) points not first: %v", order)
	}
	if pos[3] != 2 || pos[2] != 3 || pos[0] != 4 {
		t.Fatalf("unexpected grid order: %v", order)
	}
}

func TestPagedFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := uniformPoints(rng, 1000, 3, 10)
	ids := FromPoints(pts).IDs
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	pool := newPool(512)
	pf, err := writePaged(pool, pts, ids, order)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.pages) < 2 {
		t.Fatalf("expected multiple pages for 1000 points, got %d", len(pf.pages))
	}
	seen := 0
	for pg := range pf.pages {
		objs, err := pf.readBlock(pool, pg)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range objs {
			if !o.pt.Equal(pts[o.id]) {
				t.Fatalf("object %d round-trip mismatch", o.id)
			}
			if !pf.blockMBR[pg].Contains(o.pt) {
				t.Fatalf("block MBR does not contain its point")
			}
			seen++
		}
	}
	if seen != 1000 {
		t.Fatalf("round-tripped %d points, want 1000", seen)
	}
}
