package gorder

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"allnn/internal/core"
	"allnn/internal/extsort"
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/obs"
	"allnn/internal/pq"
	"allnn/internal/storage"
)

// Options configures a GORDER join.
type Options struct {
	// K is the number of neighbors per query point (0 means 1).
	K int
	// Segments is the number of grid segments per dimension used by the
	// grid-order sort (the paper's suggested value is around 100; 0 means
	// 100).
	Segments int
	// ExcludeSelf skips neighbors with the query point's own ObjectID.
	ExcludeSelf bool
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 1
	}
	if o.Segments <= 0 {
		o.Segments = 100
	}
	return o
}

// Stats counts the work performed.
type Stats struct {
	// BlocksRead counts inner (S) data pages fetched during the join.
	BlocksRead uint64
	// BlockPairsPruned counts (outer chunk, S block) pairs skipped by the
	// block-level distance test without touching the page.
	BlockPairsPruned uint64
	// PointDistCalcs counts object-level distance computations (including
	// partially evaluated ones).
	PointDistCalcs uint64
	// Chunks counts outer-chunk iterations (full scans of S metadata).
	Chunks uint64
}

// AddTo accumulates the counters into a metrics registry under the
// "gorder" family (see DESIGN.md §10).
func (s Stats) AddTo(r *obs.Registry) {
	r.Counter("gorder.blocks_read").Add(s.BlocksRead)
	r.Counter("gorder.block_pairs_pruned").Add(s.BlockPairsPruned)
	r.Counter("gorder.point_dist_calcs").Add(s.PointDistCalcs)
	r.Counter("gorder.chunks").Add(s.Chunks)
}

// Dataset pairs ids with points.
type Dataset struct {
	IDs    []index.ObjectID
	Points []geom.Point
}

// FromPoints wraps pts with ids 0..n-1.
func FromPoints(pts []geom.Point) Dataset {
	ids := make([]index.ObjectID, len(pts))
	for i := range ids {
		ids[i] = index.ObjectID(i)
	}
	return Dataset{IDs: ids, Points: pts}
}

// Join computes, for every point of r, its k nearest neighbors in s,
// calling emit once per r point. All data passes through pool: the
// grid-ordered datasets are written to paged files in pool's store, and
// the block nested loops join reads them back through the pool, so its
// buffer statistics reflect GORDER's true I/O behaviour (including its
// sensitivity to the pool size, paper Figure 3(b)).
func Join(r, s Dataset, pool *storage.BufferPool, opts Options, emit func(core.Result) error) (Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if len(r.Points) == 0 {
		return stats, nil
	}
	if len(s.Points) == 0 {
		for i := range r.Points {
			if err := emit(core.Result{Object: r.IDs[i], Point: r.Points[i]}); err != nil {
				return stats, err
			}
		}
		return stats, nil
	}
	if len(r.Points[0]) != len(s.Points[0]) {
		return stats, fmt.Errorf("gorder: dimensionality mismatch: %d vs %d",
			len(r.Points[0]), len(s.Points[0]))
	}

	// Phase 1: PCA transform of the union space (distance-preserving).
	tr, ts, err := pcaTransform(r.Points, s.Points)
	if err != nil {
		return stats, err
	}

	// Phase 2: grid-order sort of both transformed datasets — an external
	// merge sort through the buffer pool, as in the paper (its datasets
	// do not fit memory) — written back to paged files through the pool.
	bounds := unionBounds(tr, ts)
	sortBudget := pool.NumFrames() * 600 // items the in-memory run may hold
	orderR, err := gridOrder(pool, tr, bounds, opts.Segments, sortBudget)
	if err != nil {
		return stats, err
	}
	orderS, err := gridOrder(pool, ts, bounds, opts.Segments, sortBudget)
	if err != nil {
		return stats, err
	}
	fileR, err := writePaged(pool, tr, r.IDs, orderR)
	if err != nil {
		return stats, err
	}
	fileS, err := writePaged(pool, ts, s.IDs, orderS)
	if err != nil {
		return stats, err
	}

	// Phase 3: scheduled block nested loops join. The outer chunk size is
	// tied to the buffer budget: all but two frames hold outer pages, the
	// rest stream the inner file.
	chunkPages := pool.NumFrames() - 2
	if chunkPages < 1 {
		chunkPages = 1
	}

	// GORDER scans S exhaustively per chunk and can therefore skip the
	// self pairing by id during the scan, so k candidates suffice even
	// for self-joins.
	rLookup := makeLookup(r)
	sLookup := makeLookup(s)
	for chunkStart := 0; chunkStart < len(fileR.pages); chunkStart += chunkPages {
		chunkEnd := chunkStart + chunkPages
		if chunkEnd > len(fileR.pages) {
			chunkEnd = len(fileR.pages)
		}
		stats.Chunks++
		if err := joinChunk(pool, fileR, fileS, chunkStart, chunkEnd, opts, &stats,
			rLookup, sLookup, emit); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// joinChunk joins outer pages [chunkStart, chunkEnd) against the whole
// inner file.
func joinChunk(pool *storage.BufferPool, fileR, fileS *pagedFile, chunkStart, chunkEnd int,
	opts Options, stats *Stats, rLookup, sLookup map[index.ObjectID]geom.Point,
	emit func(core.Result) error) error {

	type queryState struct {
		id   index.ObjectID
		pt   geom.Point // transformed coordinates
		best *pq.KBest[index.ObjectID]
	}
	// The chunk keeps its outer-block structure: the two-tier pruning of
	// the paper tests (outer block, inner block) pairs on their grid MBRs
	// before touching the inner page, then individual points against the
	// inner block MBR.
	type rBlock struct {
		mbr    geom.Rect
		points []queryState
	}
	var blocks []rBlock
	chunkMBR := geom.EmptyRect(fileR.dim)
	for pg := chunkStart; pg < chunkEnd; pg++ {
		objs, err := fileR.readBlock(pool, pg)
		if err != nil {
			return err
		}
		blk := rBlock{mbr: fileR.blockMBR[pg]}
		for _, o := range objs {
			blk.points = append(blk.points, queryState{id: o.id, pt: o.pt, best: pq.NewKBest[index.ObjectID](opts.K)})
		}
		blocks = append(blocks, blk)
		chunkMBR.ExpandRect(blk.mbr)
	}

	_ = chunkMBR
	// blockBound is the pruning bound of one outer block: every point in
	// it has its k-th candidate within this squared distance (+Inf until
	// all points have k candidates).
	blockBound := func(b *rBlock) float64 {
		worst := 0.0
		for i := range b.points {
			if w := b.points[i].best.Worst(); w > worst {
				worst = w
			}
		}
		return worst
	}

	// The scheduled join runs per outer block: each outer block visits
	// the inner blocks in ascending distance from *itself*, stopping when
	// the next inner block is farther than its bound. Near blocks thus
	// tighten the bounds before far ones are considered, and far ones are
	// pruned without ever being read — while the buffer pool's caching
	// makes the repeated inner reads across outer blocks cheap exactly
	// when the pool is large (the paper's Figure 3(b) effect).
	type sched struct {
		pg   int
		dist float64
	}
	order := make([]sched, len(fileS.pages))
	for bi := range blocks {
		rb := &blocks[bi]
		for i := range fileS.pages {
			order[i] = sched{pg: i, dist: geom.MinDistSq(rb.mbr, fileS.blockMBR[i])}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].dist < order[b].dist })
		for rank, blk := range order {
			if blk.dist > blockBound(rb) {
				stats.BlockPairsPruned += uint64(len(order) - rank)
				break
			}
			blockMBR := fileS.blockMBR[blk.pg]
			objs, err := fileS.readBlock(pool, blk.pg)
			if err != nil {
				return err
			}
			stats.BlocksRead++
			for i := range rb.points {
				q := &rb.points[i]
				// Tier 2: point-block pruning.
				if geom.MinDistPointRectSq(q.pt, blockMBR) > q.best.Worst() {
					continue
				}
				for _, o := range objs {
					if opts.ExcludeSelf && o.id == q.id {
						continue
					}
					stats.PointDistCalcs++
					if d, ok := distSqWithin(q.pt, o.pt, q.best.Worst()); ok {
						q.best.Add(d, o.id)
					}
				}
			}
		}
	}

	// Emit results, mapping ids back to original-space points.
	for bi := range blocks {
		for i := range blocks[bi].points {
			q := &blocks[bi].points[i]
			items := q.best.Items()
			neighbors := make([]core.Neighbor, 0, len(items))
			for _, it := range items {
				neighbors = append(neighbors, core.Neighbor{
					Object: it.Value,
					Point:  sLookup[it.Value],
					Dist:   math.Sqrt(it.Key),
				})
			}
			if err := emit(core.Result{Object: q.id, Point: rLookup[q.id], Neighbors: neighbors}); err != nil {
				return err
			}
		}
	}
	return nil
}

// distSqWithin computes the squared distance between p and q but aborts
// as soon as the partial sum exceeds limit — GORDER's object-level
// "pruning during distance computation". The boolean reports whether the
// full distance is below the limit.
func distSqWithin(p, q geom.Point, limit float64) (float64, bool) {
	var sum float64
	for d := range p {
		diff := p[d] - q[d]
		sum += diff * diff
		if sum >= limit {
			return sum, false
		}
	}
	return sum, true
}

func makeLookup(ds Dataset) map[index.ObjectID]geom.Point {
	m := make(map[index.ObjectID]geom.Point, len(ds.IDs))
	for i, id := range ds.IDs {
		m[id] = ds.Points[i]
	}
	return m
}

func unionBounds(a, b []geom.Point) geom.Rect {
	r := geom.EmptyRect(len(a[0]))
	for _, p := range a {
		r.ExpandPoint(p)
	}
	for _, p := range b {
		r.ExpandPoint(p)
	}
	return r
}

// gridOrder returns point indices sorted by the lexicographic grid-cell
// order of the paper: cell ids per dimension (principal component first),
// segments cells per dimension. The sort is external (runs of at most
// runItems items, spilled and merged through pool).
//
// Cell keys pack 10 bits per dimension for the first six dimensions: the
// dimensions are PCA-ordered by descending variance, so the remaining
// ones contribute negligibly to locality, and GORDER's pruning relies on
// block MBRs rather than exact cell order anyway.
func gridOrder(pool *storage.BufferPool, pts []geom.Point, bounds geom.Rect, segments, runItems int) ([]int, error) {
	if segments > 1024 {
		segments = 1024 // 10 bits per packed dimension
	}
	dim := bounds.Dim()
	if dim > 6 {
		dim = 6
	}
	cellOf := func(p geom.Point, d int) uint64 {
		extent := bounds.Hi[d] - bounds.Lo[d]
		if extent <= 0 {
			return 0
		}
		c := int((p[d] - bounds.Lo[d]) / extent * float64(segments))
		if c >= segments {
			c = segments - 1
		}
		if c < 0 {
			c = 0
		}
		return uint64(c)
	}
	items := make([]extsort.Item, len(pts))
	for i, p := range pts {
		var key uint64
		for d := 0; d < dim; d++ {
			key = key<<10 | cellOf(p, d)
		}
		items[i] = extsort.Item{Key: key, Value: uint32(i)}
	}
	sorted, err := extsort.Sort(pool, items, runItems)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(sorted))
	for i, it := range sorted {
		idx[i] = int(it.Value)
	}
	return idx, nil
}

// --- paged data files --------------------------------------------------------

// Page layout: uint16 count, 2 bytes pad, then count * (uint64 id + dim
// float64 coordinates).
type pagedObj struct {
	id index.ObjectID
	pt geom.Point
}

type pagedFile struct {
	dim      int
	pages    []storage.PageID
	blockMBR []geom.Rect // in-memory per-block MBR summary (the paper's grid metadata)
}

func pageCapacity(dim int) int {
	return (storage.PageSize - 4) / (8 + 8*dim)
}

// writePaged stores pts (visited in the given order) as a paged file in
// pool's store, returning the file descriptor with per-block MBRs.
func writePaged(pool *storage.BufferPool, pts []geom.Point, ids []index.ObjectID, order []int) (*pagedFile, error) {
	dim := len(pts[0])
	capacity := pageCapacity(dim)
	pf := &pagedFile{dim: dim}
	for start := 0; start < len(order); start += capacity {
		end := start + capacity
		if end > len(order) {
			end = len(order)
		}
		f, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		data := f.Data()
		binary.LittleEndian.PutUint16(data, uint16(end-start))
		off := 4
		mbr := geom.EmptyRect(dim)
		for _, i := range order[start:end] {
			binary.LittleEndian.PutUint64(data[off:], uint64(ids[i]))
			off += 8
			for d := 0; d < dim; d++ {
				binary.LittleEndian.PutUint64(data[off:], math.Float64bits(pts[i][d]))
				off += 8
			}
			mbr.ExpandPoint(pts[i])
		}
		f.MarkDirty()
		pid := f.ID()
		f.Release()
		pf.pages = append(pf.pages, pid)
		pf.blockMBR = append(pf.blockMBR, mbr)
	}
	return pf, nil
}

// readBlock fetches one page of the file through the pool.
func (pf *pagedFile) readBlock(pool *storage.BufferPool, pg int) ([]pagedObj, error) {
	f, err := pool.Get(pf.pages[pg])
	if err != nil {
		return nil, err
	}
	defer f.Release()
	data := f.Data()
	count := int(binary.LittleEndian.Uint16(data))
	out := make([]pagedObj, count)
	off := 4
	for i := 0; i < count; i++ {
		o := pagedObj{
			id: index.ObjectID(binary.LittleEndian.Uint64(data[off:])),
			pt: make(geom.Point, pf.dim),
		}
		off += 8
		for d := 0; d < pf.dim; d++ {
			o.pt[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		out[i] = o
	}
	return out, nil
}
