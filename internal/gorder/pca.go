// Package gorder implements the GORDER kNN-join baseline (Xia, Lu, Ooi,
// Hu; VLDB 2004): a PCA transform of the union of the two datasets, a
// grid-order sort of the transformed points into paged files, and a
// scheduled block nested loops join with two-tier (block-level and
// object-level) distance pruning.
package gorder

import (
	"fmt"
	"math"
	"sort"

	"allnn/internal/geom"
)

// covariance returns the sample covariance matrix of pts (dim x dim).
func covariance(pts []geom.Point) [][]float64 {
	dim := len(pts[0])
	mean := make([]float64, dim)
	for _, p := range pts {
		for d := 0; d < dim; d++ {
			mean[d] += p[d]
		}
	}
	n := float64(len(pts))
	for d := range mean {
		mean[d] /= n
	}
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, p := range pts {
		for i := 0; i < dim; i++ {
			di := p[i] - mean[i]
			for j := i; j < dim; j++ {
				cov[i][j] += di * (p[j] - mean[j])
			}
		}
	}
	denom := n - 1
	if denom < 1 {
		denom = 1
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] /= denom
			cov[j][i] = cov[i][j]
		}
	}
	return cov
}

// jacobiEigen diagonalises the symmetric matrix a (destructively) with
// cyclic Jacobi rotations, returning the eigenvalues and the matrix of
// eigenvectors (columns). Standard numeric recipe; converges quickly for
// the small (D <= 32) matrices PCA produces here.
func jacobiEigen(a [][]float64) (values []float64, vectors [][]float64, err error) {
	n := len(a)
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			values = make([]float64, n)
			for i := 0; i < n; i++ {
				values[i] = a[i][i]
			}
			return values, v, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if a[p][q] == 0 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("gorder: Jacobi eigendecomposition did not converge")
}

// pcaTransform computes the principal components of the union of r and s
// and returns both datasets rotated into the component space, with
// components ordered by descending variance. The rotation is orthonormal,
// so all pairwise distances are preserved exactly (up to float rounding).
func pcaTransform(r, s []geom.Point) (tr, ts []geom.Point, err error) {
	union := make([]geom.Point, 0, len(r)+len(s))
	union = append(union, r...)
	union = append(union, s...)
	if len(union) == 0 {
		return nil, nil, fmt.Errorf("gorder: PCA of empty input")
	}
	dim := len(union[0])
	cov := covariance(union)
	values, vectors, err := jacobiEigen(cov)
	if err != nil {
		return nil, nil, err
	}
	// Order components by descending eigenvalue.
	order := make([]int, dim)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return values[order[a]] > values[order[b]] })

	project := func(pts []geom.Point) []geom.Point {
		out := make([]geom.Point, len(pts))
		for i, p := range pts {
			q := make(geom.Point, dim)
			for c := 0; c < dim; c++ {
				col := order[c]
				var dot float64
				for d := 0; d < dim; d++ {
					dot += p[d] * vectors[d][col]
				}
				q[c] = dot
			}
			out[i] = q
		}
		return out
	}
	return project(r), project(s), nil
}
