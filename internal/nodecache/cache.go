// Package nodecache provides the decoded-node cache sitting between the
// spatial indexes and the page-level buffer pool. The buffer pool caches
// raw 8 KB page bytes; every index.Tree.Expand still re-parses the page
// and allocates fresh entry slices, even though ANN traversal expands the
// same I_S nodes once per owning LPQ — across sibling subtrees, across
// the Filter/Gather stages, and across parallel workers. This cache maps
// a page id to the immutable decoded value (an entry slice and the packed
// coordinate slabs it points into) so repeated expansions of a warm node
// cost one map lookup and zero allocations.
//
// The cache is generic over the cached value so the storage layer stays
// free of index types; the indexes cache []index.Entry through the
// helpers in the index package.
//
// Capacity is bounded in bytes (the caller reports each value's resident
// footprint at Put time), with LRU replacement. Like the buffer pool, the
// cache shards itself by page id for concurrency — and stays single-
// sharded below the same 128-page-equivalent threshold, so the small
// caches of paper-scale experiments keep exact global LRU behaviour and
// exact counters.
package nodecache

import (
	"runtime"
	"sync"
	"sync/atomic"

	"allnn/internal/obs"
	"allnn/internal/storage"
)

// Counters are the monotonic counters of cache activity, summed over the
// shards. Unlike residency, counters may be subtracted between two
// snapshots to obtain an exact per-run delta.
type Counters struct {
	// Hits and Misses count Get outcomes; the hit rate is the fraction
	// of node expansions served without decoding.
	Hits   uint64
	Misses uint64
	// Evictions counts values dropped to stay within the byte budget.
	Evictions uint64
	// Invalidations counts values dropped because their page mutated.
	Invalidations uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Hits += other.Hits
	c.Misses += other.Misses
	c.Evictions += other.Evictions
	c.Invalidations += other.Invalidations
}

// AddTo accumulates the counters into a metrics registry under the given
// family prefix ("<prefix>.hits", ".misses", ".evictions",
// ".invalidations"). Used for publishing per-run deltas; for live wiring
// of a long-lived cache prefer Cache.Register.
func (c Counters) AddTo(r *obs.Registry, prefix string) {
	r.Counter(prefix + ".hits").Add(c.Hits)
	r.Counter(prefix + ".misses").Add(c.Misses)
	r.Counter(prefix + ".evictions").Add(c.Evictions)
	r.Counter(prefix + ".invalidations").Add(c.Invalidations)
}

// Delta returns c - prev, the activity between two snapshots.
func (c Counters) Delta(prev Counters) Counters {
	return Counters{
		Hits:          c.Hits - prev.Hits,
		Misses:        c.Misses - prev.Misses,
		Evictions:     c.Evictions - prev.Evictions,
		Invalidations: c.Invalidations - prev.Invalidations,
	}
}

// Residency describes the cache's point-in-time occupancy. It is a gauge:
// summing residency snapshots across shards is correct for one instant,
// but accumulating residency across runs (as the old combined Stats.Add
// invited) double-counts values that simply stayed resident — which is
// why it is a separate type with no Add.
type Residency struct {
	Entries int
	Bytes   int64
}

// Stats combines the monotonic counters with the current residency, for
// display. It deliberately has no Add: accumulate Counters (monotonic)
// and sample Residency (gauge) separately.
type Stats struct {
	Counters
	Residency
}

// node is one cached value, linked into its shard's LRU list.
type node[V any] struct {
	id         storage.PageID
	val        V
	bytes      int64
	prev, next *node[V]
}

// shard is one independently-locked slice of the cache. A page id maps to
// exactly one shard, which runs its own byte-bounded LRU.
type shard[V any] struct {
	mu       sync.Mutex
	maxBytes int64
	table    map[storage.PageID]*node[V]
	// Doubly-linked LRU list; head is most recently used.
	head, tail *node[V]
	bytes      int64
	stats      Counters
}

// Cache is a sharded, byte-bounded LRU over decoded page values. It is
// safe for concurrent use; a nil *Cache is a valid always-miss cache
// whose methods are no-ops.
type Cache[V any] struct {
	shards   []shard[V]
	maxBytes int64
	// trace, when set, receives an instant event per Get (lane
	// obs.TidCache). One atomic load per lookup when unset.
	trace atomic.Pointer[obs.Tracer]
}

// shardThresholdPages mirrors the buffer pool's single-shard rule: below
// 128 page-equivalents of budget the cache keeps one shard and therefore
// exact global LRU replacement and exact counters.
const shardThresholdPages = 128

// minPagesPerShard keeps shards large enough that per-shard LRU still
// approximates global LRU.
const minPagesPerShard = 32

// defaultShardCount picks the shard count for New: 1 for small caches,
// otherwise a power of two scaled to the machine, every shard keeping at
// least minPagesPerShard page-equivalents of budget.
func defaultShardCount(maxBytes int64) int {
	pages := maxBytes / storage.PageSize
	if pages < shardThresholdPages {
		return 1
	}
	s := 1
	for s < 16 && s*2 <= runtime.GOMAXPROCS(0)*2 {
		s *= 2
	}
	for s > 1 && pages/int64(s) < minPagesPerShard {
		s /= 2
	}
	return s
}

// ShardsFor picks the shard count for a cache that expects the given
// number of concurrent readers (e.g. the engine's parallel workers). The
// single-shard exactness rule for small caches always wins; above the
// threshold the count is raised — beyond what defaultShardCount picks
// for the machine — to the next power of two covering readers*2, so a
// burst of workers hitting the same hot level does not serialise on a
// handful of shard locks. readers <= 1 defers to defaultShardCount.
func ShardsFor(maxBytes int64, readers int) int {
	s := defaultShardCount(maxBytes)
	if readers <= 1 {
		return s
	}
	pages := maxBytes / storage.PageSize
	if pages < shardThresholdPages {
		return s
	}
	want := 1
	for want < readers*2 && want < 64 {
		want *= 2
	}
	if want > s {
		s = want
	}
	for s > 1 && pages/int64(s) < minPagesPerShard {
		s /= 2
	}
	return s
}

// New creates a cache bounded to maxBytes of decoded values, choosing a
// shard count automatically. maxBytes must be positive.
func New[V any](maxBytes int64) *Cache[V] {
	return NewSharded[V](maxBytes, defaultShardCount(maxBytes))
}

// NewWithHint is New with an expected-concurrent-readers hint (see
// ShardsFor).
func NewWithHint[V any](maxBytes int64, readers int) *Cache[V] {
	return NewSharded[V](maxBytes, ShardsFor(maxBytes, readers))
}

// NewSharded creates a cache with an explicit shard count; the byte
// budget is split evenly across the shards.
func NewSharded[V any](maxBytes int64, numShards int) *Cache[V] {
	if maxBytes < 1 {
		maxBytes = 1
	}
	if numShards < 1 {
		numShards = 1
	}
	c := &Cache[V]{shards: make([]shard[V], numShards), maxBytes: maxBytes}
	base, extra := maxBytes/int64(numShards), maxBytes%int64(numShards)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.maxBytes = base
		if int64(i) < extra {
			sh.maxBytes++
		}
		sh.table = make(map[storage.PageID]*node[V])
	}
	return c
}

// shardOf returns the shard owning page id.
func (c *Cache[V]) shardOf(id storage.PageID) *shard[V] {
	return &c.shards[uint32(id)%uint32(len(c.shards))]
}

// Cap returns the configured byte budget.
func (c *Cache[V]) Cap() int64 {
	if c == nil {
		return 0
	}
	return c.maxBytes
}

// NumShards returns the number of independently-locked shards.
func (c *Cache[V]) NumShards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// Get returns the cached value for id. The value must be treated as
// immutable: it is shared with every other Get of the same page.
func (c *Cache[V]) Get(id storage.PageID) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	sh := c.shardOf(id)
	sh.mu.Lock()
	n, ok := sh.table[id]
	if !ok {
		sh.stats.Misses++
		sh.mu.Unlock()
		if tr := c.trace.Load(); tr != nil {
			tr.Instant("cache.miss", obs.TidCache, "page", int64(id))
		}
		var zero V
		return zero, false
	}
	sh.stats.Hits++
	sh.moveFront(n)
	v := n.val
	sh.mu.Unlock()
	if tr := c.trace.Load(); tr != nil {
		tr.Instant("cache.hit", obs.TidCache, "page", int64(id))
	}
	return v, true
}

// Put stores the value for id with its resident footprint in bytes,
// evicting least recently used values as needed to stay within the
// budget. A value larger than a whole shard's budget is not retained.
// Storing for an id that is already cached replaces the old value
// (concurrent decoders may race to fill the same page; last wins).
func (c *Cache[V]) Put(id storage.PageID, v V, bytes int64) {
	if c == nil {
		return
	}
	if bytes < 1 {
		bytes = 1
	}
	sh := c.shardOf(id)
	sh.mu.Lock()
	if n, ok := sh.table[id]; ok {
		sh.bytes += bytes - n.bytes
		n.val = v
		n.bytes = bytes
		sh.moveFront(n)
	} else {
		n := &node[V]{id: id, val: v, bytes: bytes}
		sh.table[id] = n
		sh.pushFront(n)
		sh.bytes += bytes
	}
	for sh.bytes > sh.maxBytes && sh.tail != nil {
		sh.stats.Evictions++
		sh.remove(sh.tail)
	}
	sh.mu.Unlock()
}

// Invalidate drops the cached value for id, if any. Index mutation paths
// call it for every page whose decoded form went stale.
func (c *Cache[V]) Invalidate(id storage.PageID) {
	if c == nil {
		return
	}
	sh := c.shardOf(id)
	sh.mu.Lock()
	if n, ok := sh.table[id]; ok {
		sh.stats.Invalidations++
		sh.remove(n)
	}
	sh.mu.Unlock()
}

// Len returns the number of cached values.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.table)
		sh.mu.Unlock()
	}
	return n
}

// Counters returns the accumulated monotonic counters, summed over the
// shards. Two Counters snapshots subtract into an exact per-run delta.
func (c *Cache[V]) Counters() Counters {
	var ct Counters
	if c == nil {
		return ct
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		ct.Add(sh.stats)
		sh.mu.Unlock()
	}
	return ct
}

// Residency returns the current occupancy, summed over the shards. It is
// a point-in-time gauge — never accumulate it across runs.
func (c *Cache[V]) Residency() Residency {
	var rs Residency
	if c == nil {
		return rs
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		rs.Entries += len(sh.table)
		rs.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return rs
}

// Stats returns the combined counters-plus-residency snapshot.
func (c *Cache[V]) Stats() Stats {
	return Stats{Counters: c.Counters(), Residency: c.Residency()}
}

// SetTracer attaches (or, with nil, detaches) a tracer receiving an
// instant event per Get. Safe to flip concurrently with lookups.
func (c *Cache[V]) SetTracer(t *obs.Tracer) {
	if c == nil {
		return
	}
	c.trace.Store(t)
}

// Register wires the cache into a metrics registry under the given
// family prefix: monotonic counters "<prefix>.hits" / ".misses" /
// ".evictions" / ".invalidations" and residency gauges "<prefix>.entries"
// / ".bytes". Callback-backed, so snapshots always reflect the live
// cache; re-registering (e.g. once per run) is idempotent.
func (c *Cache[V]) Register(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.CounterFunc(prefix+".hits", func() uint64 { return c.Counters().Hits })
	r.CounterFunc(prefix+".misses", func() uint64 { return c.Counters().Misses })
	r.CounterFunc(prefix+".evictions", func() uint64 { return c.Counters().Evictions })
	r.CounterFunc(prefix+".invalidations", func() uint64 { return c.Counters().Invalidations })
	r.GaugeFunc(prefix+".entries", func() int64 { return int64(c.Residency().Entries) })
	r.GaugeFunc(prefix+".bytes", func() int64 { return c.Residency().Bytes })
}

// --- intrusive LRU list (all called with the shard lock held) ---------------

func (sh *shard[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = sh.head
	if sh.head != nil {
		sh.head.prev = n
	}
	sh.head = n
	if sh.tail == nil {
		sh.tail = n
	}
}

func (sh *shard[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		sh.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		sh.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (sh *shard[V]) moveFront(n *node[V]) {
	if sh.head == n {
		return
	}
	sh.unlink(n)
	sh.pushFront(n)
}

// remove unlinks n and deletes it from the table, adjusting residency.
func (sh *shard[V]) remove(n *node[V]) {
	sh.unlink(n)
	delete(sh.table, n.id)
	sh.bytes -= n.bytes
	var zero V
	n.val = zero // release the value for the GC
}
