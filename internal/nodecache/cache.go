// Package nodecache provides the decoded-node cache sitting between the
// spatial indexes and the page-level buffer pool. The buffer pool caches
// raw 8 KB page bytes; every index.Tree.Expand still re-parses the page
// and allocates fresh entry slices, even though ANN traversal expands the
// same I_S nodes once per owning LPQ — across sibling subtrees, across
// the Filter/Gather stages, and across parallel workers. This cache maps
// a page id to the immutable decoded value (an entry slice and the packed
// coordinate slabs it points into) so repeated expansions of a warm node
// cost one map lookup and zero allocations.
//
// The cache is generic over the cached value so the storage layer stays
// free of index types; the indexes cache []index.Entry through the
// helpers in the index package.
//
// Capacity is bounded in bytes (the caller reports each value's resident
// footprint at Put time), with LRU replacement. Like the buffer pool, the
// cache shards itself by page id for concurrency — and stays single-
// sharded below the same 128-page-equivalent threshold, so the small
// caches of paper-scale experiments keep exact global LRU behaviour and
// exact counters.
package nodecache

import (
	"runtime"
	"sync"

	"allnn/internal/storage"
)

// Stats accumulates cache activity, summed over the shards.
type Stats struct {
	// Hits and Misses count Get outcomes; the hit rate is the fraction
	// of node expansions served without decoding.
	Hits   uint64
	Misses uint64
	// Evictions counts values dropped to stay within the byte budget.
	Evictions uint64
	// Invalidations counts values dropped because their page mutated.
	Invalidations uint64
	// Entries and Bytes describe the current residency.
	Entries int
	Bytes   int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Invalidations += other.Invalidations
	s.Entries += other.Entries
	s.Bytes += other.Bytes
}

// node is one cached value, linked into its shard's LRU list.
type node[V any] struct {
	id         storage.PageID
	val        V
	bytes      int64
	prev, next *node[V]
}

// shard is one independently-locked slice of the cache. A page id maps to
// exactly one shard, which runs its own byte-bounded LRU.
type shard[V any] struct {
	mu       sync.Mutex
	maxBytes int64
	table    map[storage.PageID]*node[V]
	// Doubly-linked LRU list; head is most recently used.
	head, tail *node[V]
	bytes      int64
	stats      Stats
}

// Cache is a sharded, byte-bounded LRU over decoded page values. It is
// safe for concurrent use; a nil *Cache is a valid always-miss cache
// whose methods are no-ops.
type Cache[V any] struct {
	shards   []shard[V]
	maxBytes int64
}

// shardThresholdPages mirrors the buffer pool's single-shard rule: below
// 128 page-equivalents of budget the cache keeps one shard and therefore
// exact global LRU replacement and exact counters.
const shardThresholdPages = 128

// minPagesPerShard keeps shards large enough that per-shard LRU still
// approximates global LRU.
const minPagesPerShard = 32

// defaultShardCount picks the shard count for New: 1 for small caches,
// otherwise a power of two scaled to the machine, every shard keeping at
// least minPagesPerShard page-equivalents of budget.
func defaultShardCount(maxBytes int64) int {
	pages := maxBytes / storage.PageSize
	if pages < shardThresholdPages {
		return 1
	}
	s := 1
	for s < 16 && s*2 <= runtime.GOMAXPROCS(0)*2 {
		s *= 2
	}
	for s > 1 && pages/int64(s) < minPagesPerShard {
		s /= 2
	}
	return s
}

// New creates a cache bounded to maxBytes of decoded values, choosing a
// shard count automatically. maxBytes must be positive.
func New[V any](maxBytes int64) *Cache[V] {
	return NewSharded[V](maxBytes, defaultShardCount(maxBytes))
}

// NewSharded creates a cache with an explicit shard count; the byte
// budget is split evenly across the shards.
func NewSharded[V any](maxBytes int64, numShards int) *Cache[V] {
	if maxBytes < 1 {
		maxBytes = 1
	}
	if numShards < 1 {
		numShards = 1
	}
	c := &Cache[V]{shards: make([]shard[V], numShards), maxBytes: maxBytes}
	base, extra := maxBytes/int64(numShards), maxBytes%int64(numShards)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.maxBytes = base
		if int64(i) < extra {
			sh.maxBytes++
		}
		sh.table = make(map[storage.PageID]*node[V])
	}
	return c
}

// shardOf returns the shard owning page id.
func (c *Cache[V]) shardOf(id storage.PageID) *shard[V] {
	return &c.shards[uint32(id)%uint32(len(c.shards))]
}

// Cap returns the configured byte budget.
func (c *Cache[V]) Cap() int64 {
	if c == nil {
		return 0
	}
	return c.maxBytes
}

// NumShards returns the number of independently-locked shards.
func (c *Cache[V]) NumShards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// Get returns the cached value for id. The value must be treated as
// immutable: it is shared with every other Get of the same page.
func (c *Cache[V]) Get(id storage.PageID) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	sh := c.shardOf(id)
	sh.mu.Lock()
	n, ok := sh.table[id]
	if !ok {
		sh.stats.Misses++
		sh.mu.Unlock()
		var zero V
		return zero, false
	}
	sh.stats.Hits++
	sh.moveFront(n)
	v := n.val
	sh.mu.Unlock()
	return v, true
}

// Put stores the value for id with its resident footprint in bytes,
// evicting least recently used values as needed to stay within the
// budget. A value larger than a whole shard's budget is not retained.
// Storing for an id that is already cached replaces the old value
// (concurrent decoders may race to fill the same page; last wins).
func (c *Cache[V]) Put(id storage.PageID, v V, bytes int64) {
	if c == nil {
		return
	}
	if bytes < 1 {
		bytes = 1
	}
	sh := c.shardOf(id)
	sh.mu.Lock()
	if n, ok := sh.table[id]; ok {
		sh.bytes += bytes - n.bytes
		n.val = v
		n.bytes = bytes
		sh.moveFront(n)
	} else {
		n := &node[V]{id: id, val: v, bytes: bytes}
		sh.table[id] = n
		sh.pushFront(n)
		sh.bytes += bytes
	}
	for sh.bytes > sh.maxBytes && sh.tail != nil {
		sh.stats.Evictions++
		sh.remove(sh.tail)
	}
	sh.mu.Unlock()
}

// Invalidate drops the cached value for id, if any. Index mutation paths
// call it for every page whose decoded form went stale.
func (c *Cache[V]) Invalidate(id storage.PageID) {
	if c == nil {
		return
	}
	sh := c.shardOf(id)
	sh.mu.Lock()
	if n, ok := sh.table[id]; ok {
		sh.stats.Invalidations++
		sh.remove(n)
	}
	sh.mu.Unlock()
}

// Len returns the number of cached values.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.table)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the accumulated statistics, summed over
// the shards. Entries and Bytes reflect current residency.
func (c *Cache[V]) Stats() Stats {
	var st Stats
	if c == nil {
		return st
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Hits += sh.stats.Hits
		st.Misses += sh.stats.Misses
		st.Evictions += sh.stats.Evictions
		st.Invalidations += sh.stats.Invalidations
		st.Entries += len(sh.table)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// --- intrusive LRU list (all called with the shard lock held) ---------------

func (sh *shard[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = sh.head
	if sh.head != nil {
		sh.head.prev = n
	}
	sh.head = n
	if sh.tail == nil {
		sh.tail = n
	}
}

func (sh *shard[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		sh.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		sh.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (sh *shard[V]) moveFront(n *node[V]) {
	if sh.head == n {
		return
	}
	sh.unlink(n)
	sh.pushFront(n)
}

// remove unlinks n and deletes it from the table, adjusting residency.
func (sh *shard[V]) remove(n *node[V]) {
	sh.unlink(n)
	delete(sh.table, n.id)
	sh.bytes -= n.bytes
	var zero V
	n.val = zero // release the value for the GC
}
