package nodecache

import (
	"fmt"
	"sync"
	"testing"

	"allnn/internal/storage"
)

func TestGetPutBasics(t *testing.T) {
	c := NewSharded[string](1<<20, 1)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "one", 100)
	c.Put(2, "two", 100)
	if v, ok := c.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("residency = %d entries / %d bytes, want 2 / 200", st.Entries, st.Bytes)
	}
}

func TestPutReplaces(t *testing.T) {
	c := NewSharded[string](1<<20, 1)
	c.Put(7, "a", 100)
	c.Put(7, "b", 300)
	if v, _ := c.Get(7); v != "b" {
		t.Fatalf("Get = %q, want replacement", v)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 300 {
		t.Fatalf("residency = %+v, want 1 entry / 300 bytes", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewSharded[int](300, 1)
	c.Put(1, 1, 100)
	c.Put(2, 2, 100)
	c.Put(3, 3, 100)
	// Touch 1 so that 2 is the LRU victim.
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 should be resident")
	}
	c.Put(4, 4, 100)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted (LRU)")
	}
	for _, id := range []storage.PageID{1, 3, 4} {
		if _, ok := c.Get(id); !ok {
			t.Fatalf("%d should be resident", id)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestByteBoundHonoured(t *testing.T) {
	const budget = 1000
	c := NewSharded[int](budget, 1)
	for i := 0; i < 100; i++ {
		c.Put(storage.PageID(i), i, 90)
		if st := c.Stats(); st.Bytes > budget {
			t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, budget)
		}
	}
}

func TestOversizedValueNotRetained(t *testing.T) {
	c := NewSharded[int](100, 1)
	c.Put(1, 1, 500)
	if _, ok := c.Get(1); ok {
		t.Fatal("value larger than the budget must not be retained")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("residency = %+v, want empty", st)
	}
}

func TestInvalidate(t *testing.T) {
	c := NewSharded[int](1<<20, 1)
	c.Put(5, 5, 10)
	c.Invalidate(5)
	c.Invalidate(6) // absent: no-op
	if _, ok := c.Get(5); ok {
		t.Fatal("invalidated value still resident")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestNilCacheIsValid(t *testing.T) {
	var c *Cache[int]
	if _, ok := c.Get(1); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(1, 1, 10)
	c.Invalidate(1)
	if c.Len() != 0 || c.Cap() != 0 || c.NumShards() != 0 {
		t.Fatal("nil cache should report empty")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestSingleShardBelowThreshold(t *testing.T) {
	if n := New[int](64 * storage.PageSize).NumShards(); n != 1 {
		t.Fatalf("small cache uses %d shards, want 1", n)
	}
	if n := New[int](64 << 20).NumShards(); n < 1 {
		t.Fatalf("large cache uses %d shards", n)
	}
}

func TestWarmGetDoesNotAllocate(t *testing.T) {
	c := NewSharded[[]int](1<<20, 1)
	c.Put(3, []int{1, 2, 3}, 24)
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := c.Get(3); !ok {
			t.Fatal("lost the cached value")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Get performs %.1f allocs/op, want 0", allocs)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](256 * storage.PageSize)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := storage.PageID((seed*31 + i) % 512)
				switch i % 3 {
				case 0:
					c.Put(id, i, int64(storage.PageSize/4))
				case 1:
					c.Get(id)
				default:
					c.Invalidate(id)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > c.Cap() {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, c.Cap())
	}
}

func TestCountersAddDelta(t *testing.T) {
	a := Counters{Hits: 1, Misses: 2, Evictions: 3, Invalidations: 4}
	b := a
	a.Add(b)
	want := Counters{Hits: 2, Misses: 4, Evictions: 6, Invalidations: 8}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
	if d := a.Delta(b); d != b {
		t.Fatalf("Delta = %+v, want %+v", d, b)
	}
}

func TestCountersResidencySplit(t *testing.T) {
	// Residency is a gauge: two snapshots around idle activity must be
	// identical (not doubled), while counters accumulate.
	c := NewSharded[int](1<<20, 1)
	c.Put(1, 1, 100)
	c.Put(2, 2, 100)
	c.Get(1)
	c.Get(3) // miss
	before := c.Residency()
	c.Get(1) // hit: counter moves, residency must not
	after := c.Residency()
	if before != after {
		t.Fatalf("residency changed across pure hits: %+v -> %+v", before, after)
	}
	if after != (Residency{Entries: 2, Bytes: 200}) {
		t.Fatalf("residency = %+v, want 2 entries / 200 bytes", after)
	}
	ct := c.Counters()
	if ct.Hits != 2 || ct.Misses != 1 {
		t.Fatalf("counters = %+v, want 2 hits / 1 miss", ct)
	}
	// The combined Stats view carries both halves via embedding.
	st := c.Stats()
	if st.Hits != 2 || st.Entries != 2 {
		t.Fatalf("combined stats = %+v", st)
	}
}

func TestShardBudgetSplit(t *testing.T) {
	c := NewSharded[int](1001, 4)
	var total int64
	for i := range c.shards {
		total += c.shards[i].maxBytes
	}
	if total != 1001 {
		t.Fatalf("shard budgets sum to %d, want 1001", total)
	}
}

func BenchmarkGetWarm(b *testing.B) {
	c := New[[]int](64 << 20)
	for i := 0; i < 1024; i++ {
		c.Put(storage.PageID(i), []int{i}, 1024)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(storage.PageID(i % 1024))
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c := New[[]int](1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(storage.PageID(i%8192), []int{i}, 4096)
	}
}

func ExampleCache() {
	c := New[string](1 << 20)
	c.Put(1, "decoded node", 64)
	v, ok := c.Get(1)
	fmt.Println(v, ok)
	// Output: decoded node true
}
