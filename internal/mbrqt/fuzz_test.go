package mbrqt

import (
	"encoding/binary"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/storage"
)

// seedRecords renders one valid leaf and one valid internal record at the
// given dimensionality, so the fuzzers start from the real wire format.
func seedRecords(dim int) (leaf, internal []byte) {
	t := &Tree{dim: dim}
	pt := make(geom.Point, dim)
	for d := range pt {
		pt[d] = float64(d) + 0.5
	}
	leafSegs := t.serializeNode(&node{leaf: true, objects: []object{{id: 42, pt: pt}}})
	mbr := geom.NewRect(pt.Clone(), pt.Clone())
	intSegs := t.serializeNode(&node{children: []childSlot{{quad: 3, ref: 7, count: 1, mbr: mbr}}})
	return leafSegs[0], intSegs[0]
}

// FuzzDecodeRecord feeds arbitrary bytes to the node-record decoder: it
// must reject malformed input with an error wrapping ErrCorruptPage and
// never panic or read out of bounds.
func FuzzDecodeRecord(f *testing.F) {
	for _, dim := range []int{1, 2, 3, 10} {
		leaf, internal := seedRecords(dim)
		f.Add(leaf, uint8(dim), true)
		f.Add(internal, uint8(dim), true)
		f.Add(internal, uint8(dim), false)
	}
	f.Add([]byte{}, uint8(2), true)
	f.Add([]byte{1, 0, 255, 255, 0, 0, 0, 0}, uint8(2), true)
	f.Fuzz(func(t *testing.T, rec []byte, dimByte uint8, first bool) {
		dim := int(dimByte)%MaxDim + 1
		n := &node{}
		next, err := decodeRecord(n, rec, dim, first)
		if err != nil {
			if !storage.IsCorrupt(err) {
				t.Fatalf("decode error does not wrap ErrCorruptPage: %v", err)
			}
			return
		}
		// A record that decodes must round-trip its entry count.
		if n.leaf && len(n.objects) == 0 && len(rec) > recNodeHeader {
			t.Fatalf("non-empty leaf record decoded to zero objects")
		}
		_ = next
	})
}

// FuzzRecordFromPage feeds arbitrary bytes to the slotted-page accessor.
func FuzzRecordFromPage(f *testing.F) {
	// A valid one-record page.
	page := make([]byte, storage.PageSize)
	initPage(page)
	rec := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	high := storage.PageSize - len(rec)
	copy(page[high:], rec)
	setPageNumSlots(page, 1)
	setPageFreeHigh(page, high)
	setSlot(page, 0, high, len(rec))
	f.Add(page, 0)
	f.Add(page, 1)
	f.Add([]byte{}, 0)
	f.Add(make([]byte, recHeaderLen), -1)
	f.Fuzz(func(t *testing.T, data []byte, slot int) {
		out, err := recordFromPage(data, slot)
		if err != nil {
			if !storage.IsCorrupt(err) {
				t.Fatalf("accessor error does not wrap ErrCorruptPage: %v", err)
			}
			return
		}
		if len(out) == 0 {
			t.Fatal("accessor returned an empty record without error")
		}
		// The record must lie inside the page: stash a byte through the
		// alias and find it in data.
		dirLen := recHeaderLen + pageNumSlots(data)*slotEntryLen
		off := int(binary.LittleEndian.Uint16(data[recHeaderLen+slot*slotEntryLen:]))
		if off < dirLen || off+len(out) > len(data) {
			t.Fatalf("record [%d, %d) escapes page of %d bytes", off, off+len(out), len(data))
		}
	})
}
