package mbrqt

import (
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

// This file holds the copy-on-write face of the tree: snapshot
// publication for isolated readers, deferred-free reclaim, and the
// ordered checkpoint that makes the tree durable without ever
// overwriting a page the previous checkpoint still references. The
// write-ahead-log side of the protocol lives in the ann layer; the tree
// only exposes the ordering hook.

// EnableCoW switches the tree to copy-on-write mutation. From here on a
// mutation batch writes only pages it allocated (or recycled from the
// checkpoint-fenced free list); published pages stay byte-stable, so
// snapshots handed out by Publish read consistently while the writer
// advances, and a crash always finds the last checkpoint intact.
// Must be called before any CoW-era mutation, with no snapshot extant.
func (t *Tree) EnableCoW() { t.rs.enableCoW() }

// Publish freezes the current tree state into a Snapshot readers can
// traverse concurrently with later mutation batches, and returns a
// release function. The caller must invoke release exactly once, after
// every reader that could still hold the PREVIOUS snapshot has finished:
// it retires the records this batch unlinked (invalidating their cache
// entries and queueing them for reclaim). Publish itself must only be
// called between batches, by the single writer.
func (t *Tree) Publish() (*Snapshot, func()) {
	snap := &Snapshot{
		t:      t,
		root:   t.root,
		size:   t.size,
		height: t.height,
		bounds: t.bounds.Clone(),
	}
	freed := t.rs.publish()
	release := func() {
		if len(freed) == 0 {
			return
		}
		// Runs from whatever goroutine drops the last reference to the
		// superseded snapshot; everything here is concurrency-safe. The
		// cache entries must die here, not earlier: a reader of the old
		// snapshot could re-populate the cache after a premature
		// invalidation, and the stale decode would outlive the record.
		cache := t.cache.Load()
		for _, ref := range freed {
			cache.Invalidate(storage.PageID(ref))
		}
		t.reclaimMu.Lock()
		t.reclaimQ = append(t.reclaimQ, freed...)
		t.reclaimMu.Unlock()
	}
	return snap, release
}

// DrainReclaim processes refs whose release functions have fired,
// advancing wholly-dead pages toward reuse. Called by the writer (it
// touches record-store state), typically at batch start and inside
// CheckpointWith.
func (t *Tree) DrainReclaim() error {
	t.reclaimMu.Lock()
	q := t.reclaimQ
	t.reclaimQ = nil
	t.reclaimMu.Unlock()
	return t.rs.reclaim(q)
}

// CheckpointWith makes the current tree state durable with the ordering
// crash recovery depends on: every data page is flushed and synced
// BEFORE the header page, with the hook running between the two syncs.
// The ann layer's hook appends the header image to the WAL and syncs it,
// so a crash at any point leaves either the old checkpoint (data pages
// untouched by CoW) or a WAL-recorded new one. After the header sync the
// drained free pages are fenced for reuse. Must not run concurrently
// with mutation, and only between batches (no unpublished writes).
func (t *Tree) CheckpointWith(hook func(metaPage []byte) error) error {
	if err := t.DrainReclaim(); err != nil {
		return err
	}
	if err := t.writeMeta(); err != nil {
		return err
	}
	// No page faults happen between writeMeta and FlushPage below, so the
	// dirty header cannot be evicted — and hit the disk — before the hook
	// has made the new state recoverable.
	if err := t.pool.FlushAllExcept(t.meta); err != nil {
		return err
	}
	if err := t.pool.Store().Sync(); err != nil {
		return err
	}
	if hook != nil {
		f, err := t.pool.Get(t.meta)
		if err != nil {
			return err
		}
		page := make([]byte, storage.PageSize)
		copy(page, f.Data())
		f.Release()
		if err := hook(page); err != nil {
			return err
		}
	}
	if err := t.pool.FlushPage(t.meta); err != nil {
		return err
	}
	if err := t.pool.Store().Sync(); err != nil {
		return err
	}
	t.rs.fence()
	return nil
}

// Snapshot is a frozen, traversal-only view of the tree as of one
// Publish. It implements index.Tree and index.NodeCacher over the pages
// that were live at publication, which copy-on-write keeps byte-stable,
// so any number of snapshot readers run concurrently with the writer.
type Snapshot struct {
	t      *Tree
	root   nodeRef
	size   int
	height int
	bounds geom.Rect
}

// Dim implements index.Tree.
func (s *Snapshot) Dim() int { return s.t.dim }

// Len implements index.Tree.
func (s *Snapshot) Len() int { return s.size }

// Height returns the number of levels at publication time.
func (s *Snapshot) Height() int { return s.height }

// Bounds implements index.Tree.
func (s *Snapshot) Bounds() geom.Rect { return s.bounds.Clone() }

// Root implements index.Tree.
func (s *Snapshot) Root() (index.Entry, error) {
	if s.root == invalidRef {
		return index.Entry{Kind: index.NodeEntry, MBR: geom.EmptyRect(s.t.dim), Child: storage.PageID(invalidRef)}, nil
	}
	return index.Entry{
		Kind:  index.NodeEntry,
		MBR:   s.bounds.Clone(),
		Child: storage.PageID(s.root),
		Count: uint32(s.size),
	}, nil
}

// Expand implements index.Tree. Snapshot refs resolve against pages the
// writer never rewrites, so the parent tree's read path serves them.
func (s *Snapshot) Expand(e *index.Entry) ([]index.Entry, error) { return s.t.Expand(e) }

// SetNodeCache implements index.NodeCacher by attaching to the parent
// tree: refs are unique across snapshots of one tree (recycled only
// after invalidation), so the cache is shared.
func (s *Snapshot) SetNodeCache(c *index.NodeCache) { s.t.SetNodeCache(c) }

// NodeCacheRef implements index.NodeCacher.
func (s *Snapshot) NodeCacheRef() *index.NodeCache { return s.t.NodeCacheRef() }
