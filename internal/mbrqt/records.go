package mbrqt

import (
	"encoding/binary"
	"fmt"

	"allnn/internal/storage"
)

// MBRQT nodes are variable-size records packed many-per-page into slotted
// pages, the way SHORE stores them for the paper's experiments. A
// quadtree split in D dimensions produces up to 2^D children holding a
// handful of points each; giving each its own 8 KB page (as a naive
// implementation would) shatters the index into nearly empty pages and
// destroys the I/O behaviour that makes MBRQT attractive. Packing sibling
// records into shared pages keeps both the page count and the traversal
// locality close to the data's natural size.
//
// Page layout:
//
//	header:  numSlots uint16 | freeHigh uint16 | 4 bytes reserved
//	slots:   numSlots x (offset uint16, length uint16), growing upward
//	records: raw bytes, allocated downward from the end of the page
//
// A record is addressed by a nodeRef: page number (22 bits) and slot
// index (10 bits). Records never span pages; nodes larger than a page
// chain multiple records through a "next" ref inside the node payload.
type nodeRef uint32

const (
	invalidRef nodeRef = ^nodeRef(0)

	slotBits     = 10
	maxSlots     = 1 << slotBits
	slotMask     = maxSlots - 1
	maxRecPages  = 1 << (32 - slotBits)
	recHeaderLen = 8
	slotEntryLen = 4

	// maxRecordSize is the largest record a single page can hold: the
	// page minus the header and one slot entry.
	maxRecordSize = storage.PageSize - recHeaderLen - slotEntryLen
)

func makeRef(page storage.PageID, slot int) nodeRef {
	return nodeRef(uint32(page)<<slotBits | uint32(slot))
}

func (r nodeRef) page() storage.PageID { return storage.PageID(uint32(r) >> slotBits) }
func (r nodeRef) slot() int            { return int(uint32(r) & slotMask) }

// recordStore manages slotted pages inside a shared buffer pool. It is
// owned by a single tree and is not safe for concurrent use.
//
// In copy-on-write mode (enableCoW) the store adds the page discipline
// behind snapshot-isolated queries and crash recovery: a mutation batch
// may only write pages in its writable set — pages claimed fresh from
// the pool or recycled from the fenced free list during that batch.
// Records on published pages are never overwritten in place: freeing one
// merely records the ref in the deferred list, and updating one defers
// the old copy and allocates a new record on a writable page. Published
// pages therefore stay byte-stable until every record on them is dead
// AND a checkpoint has fenced them, at which point the page re-enters
// circulation whole. Readers of older snapshots only ever touch
// published pages, so they race with the writer on no byte; and no page
// referenced by the last durable checkpoint is rewritten before the next
// checkpoint, so a crash always finds the checkpointed tree intact.
// Space on published pages is reclaimed at whole-page granularity: a
// page with a long-lived survivor record keeps its dead space until the
// survivor itself is rewritten (the usual cost of no-overwrite storage).
type recordStore struct {
	pool *storage.BufferPool
	// fillPages caches pages that recently had free space, newest last;
	// allocation tries them before claiming a new page. In CoW mode it
	// holds only writable pages (publish clears it).
	fillPages []storage.PageID

	// Copy-on-write state; inert until enableCoW.
	cow      bool
	writable map[storage.PageID]bool // pages the current batch may write
	deferred []nodeRef               // refs freed on published pages this batch
	// freeList holds wholly-dead pages that a checkpoint has fenced:
	// reusable because no snapshot and no durable root references them.
	freeList []storage.PageID
	// drained holds wholly-dead pages still awaiting the checkpoint fence.
	drained []storage.PageID
	// deadSlots / liveInit track per published page how many of its
	// records have been reclaimed vs how many were live when its first
	// record died (published pages are frozen, so that count is stable).
	deadSlots map[storage.PageID]int
	liveInit  map[storage.PageID]int
}

func newRecordStore(pool *storage.BufferPool) *recordStore {
	return &recordStore{pool: pool}
}

// enableCoW switches the store to copy-on-write mode. Every page already
// on disk counts as published; the current (empty) batch starts with no
// writable pages.
func (rs *recordStore) enableCoW() {
	rs.cow = true
	rs.writable = make(map[storage.PageID]bool)
	rs.deadSlots = make(map[storage.PageID]int)
	rs.liveInit = make(map[storage.PageID]int)
	rs.fillPages = nil
}

// publish freezes the current batch: its writable pages become published
// (immutable until recycled) and the batch's deferred frees are handed to
// the caller, who may release them for reclaim only once every snapshot
// that could still read them has been dropped.
func (rs *recordStore) publish() []nodeRef {
	d := rs.deferred
	rs.deferred = nil
	rs.writable = make(map[storage.PageID]bool)
	rs.fillPages = nil
	return d
}

// reclaim marks deferred-freed refs as dead now that no snapshot can read
// them. A published page whose every live record has died moves to the
// drained list, where it waits for a checkpoint fence before reuse.
func (rs *recordStore) reclaim(refs []nodeRef) error {
	for _, ref := range refs {
		pid := ref.page()
		if _, ok := rs.liveInit[pid]; !ok {
			live, err := rs.liveSlotCount(pid)
			if err != nil {
				return err
			}
			rs.liveInit[pid] = live
		}
		rs.deadSlots[pid]++
		if rs.deadSlots[pid] >= rs.liveInit[pid] {
			rs.drained = append(rs.drained, pid)
			delete(rs.deadSlots, pid)
			delete(rs.liveInit, pid)
		}
	}
	return nil
}

// fence moves drained pages to the free list. Must be called only at the
// end of a checkpoint: the new durable root no longer references these
// pages, so rewriting them can no longer damage crash recovery.
func (rs *recordStore) fence() {
	rs.freeList = append(rs.freeList, rs.drained...)
	rs.drained = nil
}

// liveSlotCount counts the records physically present on a page. For a
// published page this is frozen, so one measurement is enough.
func (rs *recordStore) liveSlotCount(pid storage.PageID) (int, error) {
	f, err := rs.pool.Get(pid)
	if err != nil {
		return 0, err
	}
	defer f.Release()
	data := f.Data()
	n := pageNumSlots(data)
	live := 0
	for s := 0; s < n; s++ {
		if slotLength(data, s) > 0 {
			live++
		}
	}
	return live, nil
}

// --- page accessors ----------------------------------------------------------

func pageNumSlots(data []byte) int { return int(binary.LittleEndian.Uint16(data)) }
func pageFreeHigh(data []byte) int { return int(binary.LittleEndian.Uint16(data[2:])) }
func setPageNumSlots(data []byte, n int) {
	binary.LittleEndian.PutUint16(data, uint16(n))
}
func setPageFreeHigh(data []byte, v int) {
	binary.LittleEndian.PutUint16(data[2:], uint16(v))
}

func slotOffset(data []byte, slot int) int {
	return int(binary.LittleEndian.Uint16(data[recHeaderLen+slot*slotEntryLen:]))
}
func slotLength(data []byte, slot int) int {
	return int(binary.LittleEndian.Uint16(data[recHeaderLen+slot*slotEntryLen+2:]))
}
func setSlot(data []byte, slot, offset, length int) {
	binary.LittleEndian.PutUint16(data[recHeaderLen+slot*slotEntryLen:], uint16(offset))
	binary.LittleEndian.PutUint16(data[recHeaderLen+slot*slotEntryLen+2:], uint16(length))
}

// initPage prepares a zeroed page as a slotted record page.
func initPage(data []byte) {
	setPageNumSlots(data, 0)
	setPageFreeHigh(data, storage.PageSize)
}

// pageFreeSpace returns the bytes available for one more record,
// accounting for a possibly needed new slot entry and assuming
// compaction (live bytes are what they are; dead space is reclaimable).
func pageLiveBytes(data []byte) int {
	n := pageNumSlots(data)
	live := 0
	for s := 0; s < n; s++ {
		live += slotLength(data, s)
	}
	return live
}

func pageFreeForNewRecord(data []byte) int {
	n := pageNumSlots(data)
	// A freed slot can be reused without growing the directory.
	dirLen := recHeaderLen + n*slotEntryLen
	reuse := false
	for s := 0; s < n; s++ {
		if slotLength(data, s) == 0 {
			reuse = true
			break
		}
	}
	if !reuse {
		if n >= maxSlots {
			return 0
		}
		dirLen += slotEntryLen
	}
	return storage.PageSize - dirLen - pageLiveBytes(data)
}

// compactPage rewrites all live records contiguously at the high end of
// the page, leaving maximal contiguous free space in the middle. Slot
// indices (and therefore refs) are preserved.
func compactPage(data []byte) {
	n := pageNumSlots(data)
	type rec struct {
		slot, off, length int
	}
	var recs []rec
	for s := 0; s < n; s++ {
		if l := slotLength(data, s); l > 0 {
			recs = append(recs, rec{s, slotOffset(data, s), l})
		}
	}
	// Copy live records out, then lay them back from the top.
	scratch := make([]byte, 0, storage.PageSize)
	for i := range recs {
		scratch = append(scratch, data[recs[i].off:recs[i].off+recs[i].length]...)
	}
	high := storage.PageSize
	consumed := 0
	for i := range recs {
		high -= recs[i].length
		copy(data[high:], scratch[consumed:consumed+recs[i].length])
		consumed += recs[i].length
		setSlot(data, recs[i].slot, high, recs[i].length)
	}
	setPageFreeHigh(data, high)
}

// alloc stores record bytes and returns their ref.
func (rs *recordStore) alloc(rec []byte) (nodeRef, error) {
	if len(rec) > maxRecordSize {
		return invalidRef, fmt.Errorf("mbrqt: record of %d bytes exceeds page capacity %d", len(rec), maxRecordSize)
	}
	// Try the cached fill pages, newest first.
	for i := len(rs.fillPages) - 1; i >= 0; i-- {
		pid := rs.fillPages[i]
		if rs.cow && !rs.writable[pid] {
			// Published since it was cached: never write it.
			rs.fillPages = append(rs.fillPages[:i], rs.fillPages[i+1:]...)
			continue
		}
		ref, ok, err := rs.tryAllocIn(pid, rec)
		if err != nil {
			return invalidRef, err
		}
		if ok {
			return ref, nil
		}
		// Page full: drop it from the cache.
		rs.fillPages = append(rs.fillPages[:i], rs.fillPages[i+1:]...)
	}
	// In CoW mode, recycle a fenced page before claiming a new one. The
	// record always fits a fresh page (checked above), and the page is
	// unreachable from every snapshot and from the durable root.
	if rs.cow && len(rs.freeList) > 0 {
		pid := rs.freeList[len(rs.freeList)-1]
		rs.freeList = rs.freeList[:len(rs.freeList)-1]
		f, err := rs.pool.Get(pid)
		if err != nil {
			return invalidRef, err
		}
		initPage(f.Data())
		f.MarkDirty()
		f.Release()
		rs.writable[pid] = true
		rs.noteFillPage(pid)
		ref, ok, err := rs.tryAllocIn(pid, rec)
		if err != nil {
			return invalidRef, err
		}
		if !ok {
			return invalidRef, fmt.Errorf("mbrqt: recycled page cannot hold %d-byte record", len(rec))
		}
		return ref, nil
	}
	f, err := rs.pool.NewPage()
	if err != nil {
		return invalidRef, err
	}
	pid := f.ID()
	if uint32(pid) >= maxRecPages {
		f.Release()
		return invalidRef, fmt.Errorf("mbrqt: store exceeds the addressable %d pages", maxRecPages)
	}
	initPage(f.Data())
	f.MarkDirty()
	f.Release()
	if rs.cow {
		rs.writable[pid] = true
	}
	rs.fillPages = append(rs.fillPages, pid)
	if len(rs.fillPages) > 8 {
		rs.fillPages = rs.fillPages[len(rs.fillPages)-8:]
	}
	ref, ok, err := rs.tryAllocIn(pid, rec)
	if err != nil {
		return invalidRef, err
	}
	if !ok {
		return invalidRef, fmt.Errorf("mbrqt: fresh page cannot hold %d-byte record", len(rec))
	}
	return ref, nil
}

// tryAllocIn attempts to place rec into page pid.
func (rs *recordStore) tryAllocIn(pid storage.PageID, rec []byte) (nodeRef, bool, error) {
	f, err := rs.pool.Get(pid)
	if err != nil {
		return invalidRef, false, err
	}
	defer f.Release()
	data := f.Data()
	if pageFreeForNewRecord(data) < len(rec) {
		return invalidRef, false, nil
	}
	n := pageNumSlots(data)
	slot := -1
	for s := 0; s < n; s++ {
		if slotLength(data, s) == 0 {
			slot = s
			break
		}
	}
	// Directory length after a possible growth by one entry.
	dirLen := recHeaderLen + n*slotEntryLen
	if slot == -1 {
		dirLen += slotEntryLen
	}
	// Compact first if the contiguous middle cannot take both the record
	// and the (possibly grown) directory. Compaction must happen before
	// the directory grows: the new slot entry's bytes may currently hold
	// record data.
	if pageFreeHigh(data)-dirLen < len(rec) {
		compactPage(data)
	}
	if slot == -1 {
		slot = n
		setPageNumSlots(data, n+1)
		setSlot(data, slot, 0, 0)
	}
	high := pageFreeHigh(data) - len(rec)
	copy(data[high:], rec)
	setPageFreeHigh(data, high)
	setSlot(data, slot, high, len(rec))
	f.MarkDirty()
	return makeRef(pid, slot), true, nil
}

// recordFromPage locates slot's record inside a slotted page, validating
// every offset against the page bounds first: data may be arbitrary bytes
// (a page that passed its checksum can still be logically damaged, legacy
// files carry no checksum at all, and the fuzzer feeds garbage directly).
// The returned slice aliases data. Structural violations wrap
// storage.ErrCorruptPage.
func recordFromPage(data []byte, slot int) ([]byte, error) {
	if len(data) < recHeaderLen {
		return nil, fmt.Errorf("mbrqt: slotted page truncated to %d bytes: %w", len(data), storage.ErrCorruptPage)
	}
	n := pageNumSlots(data)
	dirLen := recHeaderLen + n*slotEntryLen
	if n > maxSlots || dirLen > len(data) {
		return nil, fmt.Errorf("mbrqt: slotted page claims %d slots: %w", n, storage.ErrCorruptPage)
	}
	if slot < 0 || slot >= n {
		return nil, fmt.Errorf("mbrqt: dangling record ref: slot %d of %d: %w", slot, n, storage.ErrCorruptPage)
	}
	l := slotLength(data, slot)
	if l == 0 {
		return nil, fmt.Errorf("mbrqt: dangling record ref: slot %d is free: %w", slot, storage.ErrCorruptPage)
	}
	off := slotOffset(data, slot)
	if off < dirLen || off+l > len(data) {
		return nil, fmt.Errorf("mbrqt: record slot %d spans [%d, %d) outside the page: %w",
			slot, off, off+l, storage.ErrCorruptPage)
	}
	return data[off : off+l], nil
}

// read returns a copy of the record bytes.
func (rs *recordStore) read(ref nodeRef) ([]byte, error) {
	f, err := rs.pool.Get(ref.page())
	if err != nil {
		return nil, fmt.Errorf("mbrqt: read record %v: %w", ref, err)
	}
	defer f.Release()
	rec, err := recordFromPage(f.Data(), ref.slot())
	if err != nil {
		return nil, fmt.Errorf("page %d: %w", ref.page(), err)
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// free releases the record's slot. The page is re-registered as a fill
// candidate. In CoW mode a record on a published page is not touched:
// snapshots may still read it, so the free is deferred until publish
// hands it over for reclaim.
func (rs *recordStore) free(ref nodeRef) error {
	if rs.cow && !rs.writable[ref.page()] {
		rs.deferred = append(rs.deferred, ref)
		return nil
	}
	f, err := rs.pool.Get(ref.page())
	if err != nil {
		return err
	}
	setSlot(f.Data(), ref.slot(), 0, 0)
	f.MarkDirty()
	f.Release()
	rs.noteFillPage(ref.page())
	return nil
}

// update rewrites the record, in place when it fits its page (compacting
// if needed), otherwise relocating it; the returned ref is where the
// record now lives. In CoW mode a record on a published page is never
// rewritten in place: the old copy is deferred for the snapshots still
// reading it and the new version lands on a writable page.
func (rs *recordStore) update(ref nodeRef, rec []byte) (nodeRef, error) {
	if len(rec) > maxRecordSize {
		return invalidRef, fmt.Errorf("mbrqt: record of %d bytes exceeds page capacity %d", len(rec), maxRecordSize)
	}
	if rs.cow && !rs.writable[ref.page()] {
		rs.deferred = append(rs.deferred, ref)
		return rs.alloc(rec)
	}
	f, err := rs.pool.Get(ref.page())
	if err != nil {
		return invalidRef, err
	}
	data := f.Data()
	slot := ref.slot()
	oldLen := slotLength(data, slot)
	switch {
	case len(rec) <= oldLen:
		// Shrink or same size: overwrite in place.
		off := slotOffset(data, slot)
		copy(data[off:], rec)
		setSlot(data, slot, off, len(rec))
		f.MarkDirty()
		f.Release()
		return ref, nil
	case pageLiveBytes(data)-oldLen+len(rec) <=
		storage.PageSize-recHeaderLen-pageNumSlots(data)*slotEntryLen:
		// Fits after compaction: drop the old copy, compact, re-place.
		setSlot(data, slot, 0, 0)
		compactPage(data)
		high := pageFreeHigh(data) - len(rec)
		copy(data[high:], rec)
		setPageFreeHigh(data, high)
		setSlot(data, slot, high, len(rec))
		f.MarkDirty()
		f.Release()
		return ref, nil
	default:
		// Relocate.
		setSlot(data, slot, 0, 0)
		f.MarkDirty()
		f.Release()
		rs.noteFillPage(ref.page())
		return rs.alloc(rec)
	}
}

func (rs *recordStore) noteFillPage(pid storage.PageID) {
	for _, p := range rs.fillPages {
		if p == pid {
			return
		}
	}
	rs.fillPages = append(rs.fillPages, pid)
	if len(rs.fillPages) > 8 {
		rs.fillPages = rs.fillPages[1:]
	}
}
