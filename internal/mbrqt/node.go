// Package mbrqt implements the paper's MBRQT index: a disk-resident
// bucket PR quadtree whose internal entries are enhanced with explicit
// minimum bounding rectangles (Section 3.2).
//
// A plain PR quadtree decomposes space regularly, so sibling cells border
// each other and pairwise MINMINDIST is zero, which cripples
// distance-based pruning. Storing the exact MBR of the data below each
// child (at some storage cost) restores tight bounds while keeping the
// non-overlapping regular decomposition that makes the NXNDIST pruning
// metric effective.
//
// On disk, nodes are variable-size records packed many-per-page into the
// slotted pages of records.go; a node that outgrows a single page chains
// several records. The tree lives inside a shared page store, so several
// indexes and data files can compete for the same buffer pool exactly as
// they do inside SHORE in the paper's experiments.
package mbrqt

import (
	"encoding/binary"
	"fmt"
	"math"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

// MaxDim is the largest supported dimensionality: quadrant codes are bit
// masks with one bit per dimension stored in a uint32.
const MaxDim = 30

const (
	nodeTypeLeaf     = 1
	nodeTypeInternal = 2

	// Node record layout: 1 byte type, 1 byte pad, 2 bytes entry count,
	// 4 bytes continuation ref, then the entries.
	recNodeHeader = 8
)

// childSlot is one entry of an internal node: a quadrant of the node's
// cell that holds data, with the exact MBR and point count of the data
// below it.
type childSlot struct {
	quad  uint32 // bit d set: child is the upper half of dimension d
	ref   nodeRef
	count uint32
	mbr   geom.Rect
}

// object is one point in a leaf bucket.
type object struct {
	id index.ObjectID
	pt geom.Point
}

// node is the in-memory form of a (de)serialised node chain.
type node struct {
	leaf     bool
	children []childSlot // internal nodes
	objects  []object    // leaves
}

// count returns the number of points under the node.
func (n *node) count() uint32 {
	if n.leaf {
		return uint32(len(n.objects))
	}
	var c uint32
	for i := range n.children {
		c += n.children[i].count
	}
	return c
}

// mbr returns the exact MBR of the data under the node.
func (n *node) mbr(dim int) geom.Rect {
	r := geom.EmptyRect(dim)
	if n.leaf {
		for i := range n.objects {
			r.ExpandPoint(n.objects[i].pt)
		}
	} else {
		for i := range n.children {
			r.ExpandRect(n.children[i].mbr)
		}
	}
	return r
}

// Entry sizes on disk.
func internalEntrySize(dim int) int { return 4 + 4 + 4 + 16*dim }
func leafEntrySize(dim int) int     { return 8 + 8*dim }

// entriesPerRecord returns how many entries of the given size fit one
// maximal record.
func entriesPerRecord(entrySize int) int {
	return (maxRecordSize - recNodeHeader) / entrySize
}

// decodeRecord appends one record's entries to n, validating the record
// structurally before touching a byte past the header: rec may be
// arbitrary bytes (logically damaged but checksum-valid pages, legacy
// files without checksums, fuzzer input). first selects whether the
// record establishes the node type or must continue it. The returned ref
// is the chain continuation. Violations wrap storage.ErrCorruptPage.
func decodeRecord(n *node, rec []byte, dim int, first bool) (nodeRef, error) {
	if len(rec) < recNodeHeader {
		return invalidRef, fmt.Errorf("mbrqt: node record truncated to %d bytes: %w", len(rec), storage.ErrCorruptPage)
	}
	typ := rec[0]
	if typ != nodeTypeLeaf && typ != nodeTypeInternal {
		return invalidRef, fmt.Errorf("mbrqt: invalid node type %d: %w", typ, storage.ErrCorruptPage)
	}
	leaf := typ == nodeTypeLeaf
	if first {
		n.leaf = leaf
	} else if n.leaf != leaf {
		return invalidRef, fmt.Errorf("mbrqt: node chain mixes record types: %w", storage.ErrCorruptPage)
	}
	num := int(binary.LittleEndian.Uint16(rec[2:]))
	next := nodeRef(binary.LittleEndian.Uint32(rec[4:]))
	entrySize := internalEntrySize(dim)
	if n.leaf {
		entrySize = leafEntrySize(dim)
	}
	if want := recNodeHeader + num*entrySize; want != len(rec) {
		return invalidRef, fmt.Errorf("mbrqt: node record of %d bytes claims %d entries (want %d bytes): %w",
			len(rec), num, want, storage.ErrCorruptPage)
	}
	off := recNodeHeader
	if n.leaf {
		// One flat coordinate array per record keeps deserialisation at
		// two allocations instead of one per point.
		coords := make([]float64, num*dim)
		n.objects = append(n.objects, make([]object, num)...)
		base := len(n.objects) - num
		for i := 0; i < num; i++ {
			o := &n.objects[base+i]
			o.id = index.ObjectID(binary.LittleEndian.Uint64(rec[off:]))
			off += 8
			o.pt = coords[i*dim : (i+1)*dim]
			for d := 0; d < dim; d++ {
				o.pt[d] = math.Float64frombits(binary.LittleEndian.Uint64(rec[off:]))
				off += 8
			}
		}
	} else {
		coords := make([]float64, num*2*dim)
		n.children = append(n.children, make([]childSlot, num)...)
		base := len(n.children) - num
		for i := 0; i < num; i++ {
			c := &n.children[base+i]
			c.ref = nodeRef(binary.LittleEndian.Uint32(rec[off:]))
			c.quad = binary.LittleEndian.Uint32(rec[off+4:])
			c.count = binary.LittleEndian.Uint32(rec[off+8:])
			off += 12
			lo := coords[i*2*dim : i*2*dim+dim]
			hi := coords[i*2*dim+dim : (i+1)*2*dim]
			for d := 0; d < dim; d++ {
				lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(rec[off:]))
				off += 8
			}
			for d := 0; d < dim; d++ {
				hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(rec[off:]))
				off += 8
			}
			c.mbr = geom.Rect{Lo: lo, Hi: hi}
		}
	}
	return next, nil
}

// maxChainLen bounds a node chain walk: a chain cannot hold more records
// than the store has slots, so exceeding that proves a ref cycle planted
// by corruption (which record reads alone would follow forever).
func (t *Tree) maxChainLen() int {
	return t.pool.Store().NumPages() * maxSlots
}

// readNode loads the node chain starting at ref into memory.
func (t *Tree) readNode(ref nodeRef) (*node, error) {
	n := &node{}
	limit := t.maxChainLen()
	for steps := 0; ref != invalidRef; steps++ {
		if steps >= limit {
			return nil, fmt.Errorf("mbrqt: node chain exceeds %d records (ref cycle): %w", limit, storage.ErrCorruptPage)
		}
		rec, err := t.rs.read(ref)
		if err != nil {
			return nil, err
		}
		next, err := decodeRecord(n, rec, t.dim, steps == 0)
		if err != nil {
			return nil, fmt.Errorf("record %v: %w", ref, err)
		}
		ref = next
	}
	return n, nil
}

// serializeNode renders n as a list of record byte slices, each within
// the single-page record limit, with the continuation refs left zeroed
// (the writers fill them in).
func (t *Tree) serializeNode(n *node) [][]byte {
	var entrySize, total int
	var typ byte
	if n.leaf {
		entrySize = leafEntrySize(t.dim)
		total = len(n.objects)
		typ = nodeTypeLeaf
	} else {
		entrySize = internalEntrySize(t.dim)
		total = len(n.children)
		typ = nodeTypeInternal
	}
	perRec := entriesPerRecord(entrySize)
	var segments [][]byte
	written := 0
	for {
		take := total - written
		if take > perRec {
			take = perRec
		}
		rec := make([]byte, recNodeHeader+take*entrySize)
		rec[0] = typ
		binary.LittleEndian.PutUint16(rec[2:], uint16(take))
		binary.LittleEndian.PutUint32(rec[4:], uint32(invalidRef))
		off := recNodeHeader
		if n.leaf {
			for i := written; i < written+take; i++ {
				o := &n.objects[i]
				binary.LittleEndian.PutUint64(rec[off:], uint64(o.id))
				off += 8
				for d := 0; d < t.dim; d++ {
					binary.LittleEndian.PutUint64(rec[off:], math.Float64bits(o.pt[d]))
					off += 8
				}
			}
		} else {
			for i := written; i < written+take; i++ {
				c := &n.children[i]
				binary.LittleEndian.PutUint32(rec[off:], uint32(c.ref))
				binary.LittleEndian.PutUint32(rec[off+4:], c.quad)
				binary.LittleEndian.PutUint32(rec[off+8:], c.count)
				off += 12
				for d := 0; d < t.dim; d++ {
					binary.LittleEndian.PutUint64(rec[off:], math.Float64bits(c.mbr.Lo[d]))
					off += 8
				}
				for d := 0; d < t.dim; d++ {
					binary.LittleEndian.PutUint64(rec[off:], math.Float64bits(c.mbr.Hi[d]))
					off += 8
				}
			}
		}
		segments = append(segments, rec)
		written += take
		if written >= total {
			return segments
		}
	}
}

// writeNewNode allocates a fresh chain for n and returns its head ref.
// Segments are allocated tail-first so each can embed its successor.
func (t *Tree) writeNewNode(n *node) (nodeRef, error) {
	segments := t.serializeNode(n)
	next := invalidRef
	for i := len(segments) - 1; i >= 0; i-- {
		binary.LittleEndian.PutUint32(segments[i][4:], uint32(next))
		ref, err := t.rs.alloc(segments[i])
		if err != nil {
			return invalidRef, err
		}
		next = ref
	}
	return next, nil
}

// updateNode rewrites the node at ref, returning its (possibly new) head
// ref. Single-record nodes update in place when they fit; chained nodes
// (rare: very wide internal nodes, duplicate-overflow leaves) are
// rewritten wholesale.
func (t *Tree) updateNode(ref nodeRef, n *node) (nodeRef, error) {
	segments := t.serializeNode(n)
	oldChain, err := t.chainRefs(ref)
	if err != nil {
		return invalidRef, err
	}
	// The decoded form of this node is stale whether or not the head ref
	// survives the rewrite.
	t.cache.Load().Invalidate(storage.PageID(ref))
	if len(segments) == 1 && len(oldChain) == 1 {
		return t.rs.update(ref, segments[0])
	}
	if err := t.freeNode(ref); err != nil {
		return invalidRef, err
	}
	next := invalidRef
	for i := len(segments) - 1; i >= 0; i-- {
		binary.LittleEndian.PutUint32(segments[i][4:], uint32(next))
		r, err := t.rs.alloc(segments[i])
		if err != nil {
			return invalidRef, err
		}
		next = r
	}
	return next, nil
}

// chainRefs returns the record refs of the node chain starting at ref.
func (t *Tree) chainRefs(ref nodeRef) ([]nodeRef, error) {
	var refs []nodeRef
	limit := t.maxChainLen()
	for ref != invalidRef {
		if len(refs) >= limit {
			return nil, fmt.Errorf("mbrqt: node chain exceeds %d records (ref cycle): %w", limit, storage.ErrCorruptPage)
		}
		refs = append(refs, ref)
		rec, err := t.rs.read(ref)
		if err != nil {
			return nil, err
		}
		if len(rec) < recNodeHeader {
			return nil, fmt.Errorf("mbrqt: node record %v truncated to %d bytes: %w", ref, len(rec), storage.ErrCorruptPage)
		}
		ref = nodeRef(binary.LittleEndian.Uint32(rec[4:]))
	}
	return refs, nil
}

// freeNode releases every record of the node chain at ref. Every ref in
// the chain is dropped from the node cache: freed refs can be recycled by
// later allocations, so a stale decode must not outlive the record.
func (t *Tree) freeNode(ref nodeRef) error {
	refs, err := t.chainRefs(ref)
	if err != nil {
		return err
	}
	for _, r := range refs {
		t.cache.Load().Invalidate(storage.PageID(r))
		if err := t.rs.free(r); err != nil {
			return err
		}
	}
	return nil
}
