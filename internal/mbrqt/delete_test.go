package mbrqt

import (
	"math/rand"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
)

func TestDeleteBasic(t *testing.T) {
	pool := newPool(256)
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, 100, 2, 1)
	tree, err := BulkLoad(pool, pts, nil, Config{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := tree.Delete(42, pts[42])
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Delete missed an indexed point")
	}
	if tree.Len() != 99 {
		t.Fatalf("Len = %d, want 99", tree.Len())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	res, err := tree.RangeSearch(geom.PointRect(pts[42]))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Object == 42 {
			t.Fatal("deleted object still indexed")
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	pool := newPool(64)
	tree, err := New(pool, unitSpace(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(1, geom.Point{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := tree.Delete(2, geom.Point{0.5, 0.5}); ok {
		t.Fatal("found nonexistent id")
	}
	if ok, _ := tree.Delete(1, geom.Point{0.1, 0.1}); ok {
		t.Fatal("found nonexistent coordinates")
	}
	if ok, _ := tree.Delete(1, geom.Point{5, 5}); ok {
		t.Fatal("found point outside the space")
	}
}

func TestDeleteEverything(t *testing.T) {
	pool := newPool(512)
	rng := rand.New(rand.NewSource(7))
	pts := uniformPoints(rng, 300, 2, 1)
	tree, err := BulkLoad(pool, pts, nil, Config{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	for step, i := range rng.Perm(len(pts)) {
		ok, err := tree.Delete(index.ObjectID(i), pts[i])
		if err != nil {
			t.Fatalf("delete %d: %v", step, err)
		}
		if !ok {
			t.Fatalf("delete %d: point %d not found", step, i)
		}
		if step%40 == 0 {
			if err := tree.CheckIntegrity(); err != nil {
				t.Fatalf("after %d deletes: %v", step+1, err)
			}
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tree.Len())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The tree must be reusable.
	if err := tree.Insert(7, geom.Point{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	if found, err := tree.Contains(geom.Point{0.25, 0.75}); err != nil || !found {
		t.Fatalf("tree unusable after emptying: %v %v", found, err)
	}
}

func TestDeleteWithDuplicates(t *testing.T) {
	pool := newPool(256)
	tree, err := New(pool, unitSpace(2), Config{BucketCapacity: 4, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{0.5, 0.5}
	for i := 0; i < 20; i++ {
		if err := tree.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	// Deleting one specific id must keep the other 19 duplicates.
	ok, err := tree.Delete(7, p)
	if err != nil || !ok {
		t.Fatalf("delete duplicate: %v %v", ok, err)
	}
	res, err := tree.RangeSearch(geom.PointRect(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 19 {
		t.Fatalf("%d duplicates remain, want 19", len(res))
	}
	for _, r := range res {
		if r.Object == 7 {
			t.Fatal("deleted duplicate still present")
		}
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteInsertChurn(t *testing.T) {
	pool := newPool(512)
	tree, err := New(pool, unitSpace(2), Config{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	live := map[index.ObjectID]geom.Point{}
	nextID := index.ObjectID(0)
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			p := geom.Point{rng.Float64(), rng.Float64()}
			if err := tree.Insert(nextID, p); err != nil {
				t.Fatal(err)
			}
			live[nextID] = p
			nextID++
		} else {
			// Delete an arbitrary live object.
			for id, p := range live {
				ok, err := tree.Delete(id, p)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("live object %d not found", id)
				}
				delete(live, id)
				break
			}
		}
	}
	if tree.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(live))
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if pool.PinnedFrames() != 0 {
		t.Fatal("pinned frame leak")
	}
}
