package mbrqt

import (
	"bytes"
	"math/rand"
	"testing"

	"allnn/internal/storage"
)

func newRS() *recordStore {
	return newRecordStore(storage.NewBufferPool(storage.NewMemStore(), 256))
}

func mkRec(seed byte, n int) []byte {
	rec := make([]byte, n)
	for i := range rec {
		rec[i] = seed + byte(i%7)
	}
	return rec
}

func TestRecordRoundTrip(t *testing.T) {
	rs := newRS()
	rec := mkRec(1, 100)
	ref, err := rs.alloc(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.read(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, got) {
		t.Fatal("record corrupted on round trip")
	}
}

func TestRecordsPackIntoSharedPages(t *testing.T) {
	rs := newRS()
	// 50 records of 100 bytes comfortably fit 1 page.
	var refs []nodeRef
	for i := 0; i < 50; i++ {
		ref, err := rs.alloc(mkRec(byte(i), 100))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	pages := map[storage.PageID]bool{}
	for _, r := range refs {
		pages[r.page()] = true
	}
	if len(pages) != 1 {
		t.Fatalf("50 x 100B records spread over %d pages, want 1", len(pages))
	}
}

func TestRecordAllocRejectsOversized(t *testing.T) {
	rs := newRS()
	if _, err := rs.alloc(make([]byte, maxRecordSize+1)); err == nil {
		t.Fatal("expected error for oversized record")
	}
	// Exactly max must work.
	if _, err := rs.alloc(make([]byte, maxRecordSize)); err != nil {
		t.Fatal(err)
	}
}

func TestRecordFreeAndReuse(t *testing.T) {
	rs := newRS()
	ref, err := rs.alloc(mkRec(1, 500))
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.free(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.read(ref); err == nil {
		t.Fatal("read of freed record should fail")
	}
	// The freed slot must be reusable.
	ref2, err := rs.alloc(mkRec(2, 500))
	if err != nil {
		t.Fatal(err)
	}
	if ref2.page() != ref.page() {
		t.Fatalf("freed space not reused: page %d vs %d", ref2.page(), ref.page())
	}
}

func TestRecordUpdateInPlace(t *testing.T) {
	rs := newRS()
	ref, err := rs.alloc(mkRec(1, 300))
	if err != nil {
		t.Fatal(err)
	}
	// Shrink: must stay at the same ref.
	small := mkRec(9, 200)
	newRef, err := rs.update(ref, small)
	if err != nil {
		t.Fatal(err)
	}
	if newRef != ref {
		t.Fatal("shrinking update relocated the record")
	}
	got, err := rs.read(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small, got) {
		t.Fatal("update lost data")
	}
}

func TestRecordUpdateGrowWithinPage(t *testing.T) {
	rs := newRS()
	ref, err := rs.alloc(mkRec(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	big := mkRec(2, 4000)
	newRef, err := rs.update(ref, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.read(newRef)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(big, got) {
		t.Fatal("grown record corrupted")
	}
}

func TestRecordUpdateRelocates(t *testing.T) {
	rs := newRS()
	// Fill a page nearly full.
	first, err := rs.alloc(mkRec(1, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.alloc(mkRec(2, 4000)); err != nil {
		t.Fatal(err)
	}
	// Growing the first record cannot fit its page anymore.
	big := mkRec(3, 6000)
	newRef, err := rs.update(first, big)
	if err != nil {
		t.Fatal(err)
	}
	if newRef == first {
		t.Fatal("update should have relocated the record")
	}
	got, err := rs.read(newRef)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(big, got) {
		t.Fatal("relocated record corrupted")
	}
	if _, err := rs.read(first); err == nil {
		t.Fatal("old slot should be freed after relocation")
	}
}

func TestRecordCompactionReclaimsFragmentation(t *testing.T) {
	rs := newRS()
	// Alternate-allocate then free half, leaving holes.
	var refs []nodeRef
	for i := 0; i < 16; i++ {
		ref, err := rs.alloc(mkRec(byte(i), 480))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	page := refs[0].page()
	for i := 0; i < 16; i += 2 {
		if refs[i].page() == page {
			if err := rs.free(refs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A large record must fit via compaction of the fragmented page.
	big := mkRec(99, 3000)
	ref, err := rs.alloc(big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.read(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(big, got) {
		t.Fatal("record corrupted after compaction path")
	}
	// Survivors must be intact.
	for i := 1; i < 16; i += 2 {
		got, err := rs.read(refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mkRec(byte(i), 480), got) {
			t.Fatalf("survivor %d corrupted after compaction", i)
		}
	}
}

// TestRecordRandomizedAgainstModel drives the store with random
// alloc/free/update/read traffic against an in-memory map model.
func TestRecordRandomizedAgainstModel(t *testing.T) {
	rs := newRS()
	rng := rand.New(rand.NewSource(31))
	model := map[nodeRef][]byte{}
	var live []nodeRef
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(live) == 0: // alloc
			rec := mkRec(byte(step), 16+rng.Intn(2000))
			ref, err := rs.alloc(rec)
			if err != nil {
				t.Fatal(err)
			}
			if _, clash := model[ref]; clash {
				t.Fatalf("step %d: alloc returned live ref %v", step, ref)
			}
			model[ref] = rec
			live = append(live, ref)
		case op < 6: // free
			i := rng.Intn(len(live))
			ref := live[i]
			if err := rs.free(ref); err != nil {
				t.Fatal(err)
			}
			delete(model, ref)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case op < 8: // update
			i := rng.Intn(len(live))
			ref := live[i]
			rec := mkRec(byte(step+1), 16+rng.Intn(3000))
			newRef, err := rs.update(ref, rec)
			if err != nil {
				t.Fatal(err)
			}
			if newRef != ref {
				delete(model, ref)
				live[i] = newRef
			}
			model[newRef] = rec
		default: // read
			ref := live[rng.Intn(len(live))]
			got, err := rs.read(ref)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(model[ref], got) {
				t.Fatalf("step %d: record %v corrupted", step, ref)
			}
		}
	}
	// Final verification of every live record.
	for ref, want := range model {
		got, err := rs.read(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("final check: record %v corrupted", ref)
		}
	}
	if rs.pool.PinnedFrames() != 0 {
		t.Fatal("record store leaked pinned frames")
	}
}

func TestNodeRefEncoding(t *testing.T) {
	ref := makeRef(12345, 678)
	if ref.page() != 12345 || ref.slot() != 678 {
		t.Fatalf("ref round trip: page %d slot %d", ref.page(), ref.slot())
	}
}
