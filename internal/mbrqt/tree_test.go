package mbrqt

import (
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMemStore(), frames)
}

func uniformPoints(rng *rand.Rand, n, dim int, lim float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * lim
		}
		pts[i] = p
	}
	return pts
}

func unitSpace(dim int) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := range hi {
		hi[d] = 1
	}
	return geom.NewRect(lo, hi)
}

func TestNewRejectsBadDim(t *testing.T) {
	pool := newPool(16)
	if _, err := New(pool, geom.Rect{}, Config{}); err == nil {
		t.Error("expected error for 0-dim space")
	}
	lo := make(geom.Point, MaxDim+1)
	hi := make(geom.Point, MaxDim+1)
	for i := range hi {
		hi[i] = 1
	}
	if _, err := New(pool, geom.NewRect(lo, hi), Config{}); err == nil {
		t.Error("expected error for dim > MaxDim")
	}
}

func TestInsertAndLen(t *testing.T) {
	pool := newPool(64)
	tree, err := New(pool, unitSpace(2), Config{BucketCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, 100, 2, 1)
	for i, p := range pts {
		if err := tree.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tree.Len())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if tree.Height() < 2 {
		t.Fatalf("height = %d; tree with bucket cap 4 and 100 points must have split", tree.Height())
	}
}

func TestInsertOutsideSpaceFails(t *testing.T) {
	pool := newPool(16)
	tree, err := New(pool, unitSpace(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(0, geom.Point{2, 0.5}); err == nil {
		t.Fatal("expected error for point outside space")
	}
	if err := tree.Insert(0, geom.Point{0.5}); err == nil {
		t.Fatal("expected error for wrong dimensionality")
	}
}

func TestRangeSearchMatchesLinearScan(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 6} {
		rng := rand.New(rand.NewSource(int64(dim)))
		pool := newPool(256)
		pts := uniformPoints(rng, 500, dim, 100)
		tree, err := BulkLoad(pool, pts, nil, Config{BucketCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 20; iter++ {
			q := randQueryRect(rng, dim, 100)
			got, err := tree.RangeSearch(q)
			if err != nil {
				t.Fatal(err)
			}
			var want []int
			for i, p := range pts {
				if q.Contains(p) {
					want = append(want, i)
				}
			}
			gotIDs := make([]int, len(got))
			for i, r := range got {
				gotIDs[i] = int(r.Object)
			}
			sort.Ints(gotIDs)
			if len(gotIDs) != len(want) {
				t.Fatalf("dim %d: range search found %d, scan %d", dim, len(gotIDs), len(want))
			}
			for i := range want {
				if gotIDs[i] != want[i] {
					t.Fatalf("dim %d: result mismatch at %d: %d vs %d", dim, i, gotIDs[i], want[i])
				}
			}
		}
	}
}

func randQueryRect(rng *rand.Rand, dim int, lim float64) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		a := rng.Float64() * lim
		b := rng.Float64() * lim
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return geom.NewRect(lo, hi)
}

func TestNearestNeighborsMatchesLinearScan(t *testing.T) {
	for _, dim := range []int{2, 4} {
		rng := rand.New(rand.NewSource(int64(dim) * 7))
		pool := newPool(256)
		pts := uniformPoints(rng, 400, dim, 10)
		tree, err := BulkLoad(pool, pts, nil, Config{BucketCapacity: 8})
		if err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 25; iter++ {
			q := make(geom.Point, dim)
			for d := range q {
				q[d] = rng.Float64() * 10
			}
			for _, k := range []int{1, 3, 10} {
				got, err := tree.NearestNeighbors(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteKNN(pts, q, k)
				if len(got) != len(want) {
					t.Fatalf("kNN returned %d results, want %d", len(got), len(want))
				}
				for i := range got {
					// Compare distances (ties may reorder ids).
					if gd, wd := geom.DistSq(q, got[i].Point), want[i]; gd != wd {
						t.Fatalf("dim %d k %d: result %d dist %g, want %g", dim, k, i, gd, wd)
					}
				}
			}
		}
	}
}

func bruteKNN(pts []geom.Point, q geom.Point, k int) []float64 {
	d := make([]float64, len(pts))
	for i, p := range pts {
		d[i] = geom.DistSq(q, p)
	}
	sort.Float64s(d)
	if k > len(d) {
		k = len(d)
	}
	return d[:k]
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := uniformPoints(rng, 300, 2, 50)

	poolA := newPool(256)
	bulk, err := BulkLoad(poolA, pts, nil, Config{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	poolB := newPool(256)
	incr, err := New(poolB, bulk.Space(), Config{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := incr.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	for _, tree := range []*Tree{bulk, incr} {
		if err := tree.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
	}
	// Both trees must answer queries identically.
	for iter := 0; iter < 10; iter++ {
		q := randQueryRect(rng, 2, 50)
		a, err := bulk.RangeSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := incr.RangeSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("bulk found %d, incremental %d", len(a), len(b))
		}
	}
	if bulk.Len() != incr.Len() {
		t.Fatalf("sizes differ: %d vs %d", bulk.Len(), incr.Len())
	}
}

func TestDuplicatePointsOverflowChain(t *testing.T) {
	// Insert many coincident points: the tree cannot separate them, so it
	// must stop at MaxDepth and chain overflow pages instead of looping.
	pool := newPool(256)
	tree, err := New(pool, unitSpace(2), Config{BucketCapacity: 4, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{0.3, 0.3}
	for i := 0; i < 100; i++ {
		if err := tree.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tree.Len())
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	res, err := tree.RangeSearch(geom.PointRect(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 100 {
		t.Fatalf("found %d duplicates, want 100", len(res))
	}
}

func TestExpandRootAndChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pool := newPool(256)
	pts := uniformPoints(rng, 200, 2, 1)
	tree, err := BulkLoad(pool, pts, nil, Config{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	root, err := tree.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root.IsObject() || int(root.Count) != 200 {
		t.Fatalf("root entry = %+v", root)
	}
	entries, err := tree.Expand(&root)
	if err != nil {
		t.Fatal(err)
	}
	var total uint32
	for _, e := range entries {
		if e.IsObject() {
			total++
			continue
		}
		total += e.Count
		if !root.MBR.ContainsRect(e.MBR) {
			t.Fatalf("child MBR %v escapes root MBR %v", e.MBR, root.MBR)
		}
	}
	if total != 200 {
		t.Fatalf("children count to %d, want 200", total)
	}
	if _, err := tree.Expand(&index.Entry{Kind: index.ObjectEntry}); err == nil {
		t.Fatal("Expand of an object entry must fail")
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	pool := newPool(16)
	tree, err := New(pool, unitSpace(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tree.RangeSearch(unitSpace(2)); err != nil || len(res) != 0 {
		t.Fatalf("range on empty tree: %v, %v", res, err)
	}
	if res, err := tree.NearestNeighbors(geom.Point{0.5, 0.5}, 3); err != nil || len(res) != 0 {
		t.Fatalf("kNN on empty tree: %v, %v", res, err)
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	store := storage.NewMemStore()
	pool := storage.NewBufferPool(store, 128)
	rng := rand.New(rand.NewSource(12))
	pts := uniformPoints(rng, 250, 3, 10)
	tree, err := BulkLoad(pool, pts, nil, Config{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	meta := tree.MetaPage()

	// Reopen through a brand-new pool over the same store.
	pool2 := storage.NewBufferPool(store, 128)
	reopened, err := Open(pool2, meta)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 250 || reopened.Dim() != 3 {
		t.Fatalf("reopened: len=%d dim=%d", reopened.Len(), reopened.Dim())
	}
	if err := reopened.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	res, err := reopened.NearestNeighbors(pts[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DistSq != 0 {
		t.Fatalf("NN of an indexed point should be itself: %+v", res)
	}
}

func TestOpenRejectsNonHeaderPage(t *testing.T) {
	pool := newPool(16)
	f, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	pid := f.ID()
	f.Release()
	if _, err := Open(pool, pid); err == nil {
		t.Fatal("expected error opening a zero page as a tree")
	}
}

func TestHighDimensionalTree(t *testing.T) {
	// 10-D data forces multi-page internal nodes (1024 possible quadrants).
	rng := rand.New(rand.NewSource(10))
	pool := newPool(1024)
	pts := uniformPoints(rng, 2000, 10, 1)
	tree, err := BulkLoad(pool, pts, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Root should have more children than fit a single page for 10-D.
	root, _ := tree.Root()
	entries, err := tree.Expand(&root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) <= 1 {
		t.Fatalf("10-D root has %d children", len(entries))
	}
	got, err := tree.NearestNeighbors(pts[42], 5)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKNN(pts, pts[42], 5)
	for i := range got {
		if geom.DistSq(pts[42], got[i].Point) != want[i] {
			t.Fatalf("10-D kNN mismatch at %d", i)
		}
	}
}

func TestStatsReport(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := newPool(256)
	pts := uniformPoints(rng, 300, 2, 1)
	tree, err := BulkLoad(pool, pts, nil, Config{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	r, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if r.Points != 300 {
		t.Fatalf("stats points = %d, want 300", r.Points)
	}
	if r.Leaves == 0 || r.Internal == 0 || r.Nodes != r.Leaves+r.Internal {
		t.Fatalf("inconsistent node counts: %+v", r)
	}
	if r.MaxDepth != tree.Height() {
		t.Fatalf("stats depth %d != height %d", r.MaxDepth, tree.Height())
	}
}

func TestSmallBufferPoolStillWorks(t *testing.T) {
	// The tree must function with the paper's tiny 64-frame pool even
	// while building; evictions must not corrupt structure.
	rng := rand.New(rand.NewSource(77))
	pool := newPool(2)
	tree, err := New(pool, unitSpace(2), Config{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	pts := uniformPoints(rng, 3000, 2, 1)
	for i, p := range pts {
		if err := tree.Insert(index.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if pool.PinnedFrames() != 0 {
		t.Fatalf("%d frames still pinned after operations", pool.PinnedFrames())
	}
	if st := pool.Stats(); st.Misses == 0 {
		t.Fatal("a 2-frame pool over this workload must miss")
	}
}
