package mbrqt

import (
	"allnn/internal/geom"
	"allnn/internal/index"
)

// Delete removes the point with the given id and coordinates, returning
// false if no such object is indexed. Leaves and internal nodes that
// become empty are removed from their parents. (Single-child internal
// nodes are deliberately kept: a PR quadtree node's cell is implied by
// its depth along the path, so collapsing levels would break the
// quadrant arithmetic of later descents.)
func (t *Tree) Delete(id index.ObjectID, pt geom.Point) (bool, error) {
	if t.root == invalidRef || len(pt) != t.dim || !t.space.Contains(pt) {
		return false, nil
	}
	res, err := t.deleteAt(t.root, t.space, id, pt)
	if err != nil {
		return false, err
	}
	if !res.found {
		return false, nil
	}
	t.size--
	if res.removed {
		t.root = invalidRef
		t.height = 0
		t.bounds = geom.EmptyRect(t.dim)
		return true, nil
	}
	t.root = res.ref
	t.bounds = res.mbr
	return true, nil
}

type qtDeleteResult struct {
	found bool
	// removed reports the node became empty and was freed.
	removed bool
	// ref is the node's (possibly relocated) ref when it survives.
	ref   nodeRef
	mbr   geom.Rect
	count uint32
}

func (t *Tree) deleteAt(ref nodeRef, cell geom.Rect, id index.ObjectID, pt geom.Point) (qtDeleteResult, error) {
	n, err := t.readNode(ref)
	if err != nil {
		return qtDeleteResult{}, err
	}
	if n.leaf {
		at := -1
		for i := range n.objects {
			if n.objects[i].id == id && n.objects[i].pt.Equal(pt) {
				at = i
				break
			}
		}
		if at == -1 {
			return qtDeleteResult{found: false}, nil
		}
		n.objects = append(n.objects[:at], n.objects[at+1:]...)
		if len(n.objects) == 0 {
			if err := t.freeNode(ref); err != nil {
				return qtDeleteResult{}, err
			}
			return qtDeleteResult{found: true, removed: true}, nil
		}
		newRef, err := t.updateNode(ref, n)
		if err != nil {
			return qtDeleteResult{}, err
		}
		return qtDeleteResult{found: true, ref: newRef, mbr: n.mbr(t.dim), count: n.count()}, nil
	}

	q := quadOf(pt, cell)
	for i := range n.children {
		c := &n.children[i]
		if c.quad != q {
			continue
		}
		res, err := t.deleteAt(c.ref, childCell(cell, q), id, pt)
		if err != nil {
			return qtDeleteResult{}, err
		}
		if !res.found {
			return qtDeleteResult{found: false}, nil
		}
		if res.removed {
			n.children = append(n.children[:i], n.children[i+1:]...)
		} else {
			c.ref = res.ref
			c.count = res.count
			c.mbr = res.mbr
		}
		if len(n.children) == 0 {
			if err := t.freeNode(ref); err != nil {
				return qtDeleteResult{}, err
			}
			return qtDeleteResult{found: true, removed: true}, nil
		}
		newRef, err := t.updateNode(ref, n)
		if err != nil {
			return qtDeleteResult{}, err
		}
		return qtDeleteResult{found: true, ref: newRef, mbr: n.mbr(t.dim), count: n.count()}, nil
	}
	return qtDeleteResult{found: false}, nil
}
