package mbrqt

import (
	"fmt"

	"allnn/internal/geom"
)

// CheckIntegrity validates the structural invariants of the tree and
// returns a descriptive error on the first violation:
//
//  1. every point lies inside the cell of its leaf;
//  2. each child slot's quadrant code matches the child's cell;
//  3. each slot's MBR is exactly the MBR of the data below it;
//  4. each slot's count is exactly the number of points below it;
//  5. leaves respect the bucket capacity unless at max depth;
//  6. the tree's size equals the total number of stored points.
func (t *Tree) CheckIntegrity() error {
	if t.root == invalidRef {
		if t.size != 0 {
			return fmt.Errorf("mbrqt: empty root but size %d", t.size)
		}
		return nil
	}
	count, mbr, err := t.checkNode(t.root, t.space, 1)
	if err != nil {
		return err
	}
	if int(count) != t.size {
		return fmt.Errorf("mbrqt: tree size %d but %d points found", t.size, count)
	}
	if t.size > 0 && !mbr.Equal(t.bounds) {
		return fmt.Errorf("mbrqt: tree bounds %v but data MBR %v", t.bounds, mbr)
	}
	return nil
}

func (t *Tree) checkNode(ref nodeRef, cell geom.Rect, depth int) (uint32, geom.Rect, error) {
	n, err := t.readNode(ref)
	if err != nil {
		return 0, geom.Rect{}, err
	}
	mbr := geom.EmptyRect(t.dim)
	if n.leaf {
		if len(n.objects) > t.cfg.BucketCapacity && depth < t.cfg.MaxDepth {
			return 0, geom.Rect{}, fmt.Errorf(
				"mbrqt: leaf %d holds %d > capacity %d at depth %d", ref, len(n.objects), t.cfg.BucketCapacity, depth)
		}
		for i := range n.objects {
			pt := n.objects[i].pt
			if !cell.Contains(pt) {
				return 0, geom.Rect{}, fmt.Errorf("mbrqt: leaf %d point %v outside cell %v", ref, pt, cell)
			}
			mbr.ExpandPoint(pt)
		}
		return uint32(len(n.objects)), mbr, nil
	}
	if len(n.children) == 0 {
		return 0, geom.Rect{}, fmt.Errorf("mbrqt: internal node %d has no children", ref)
	}
	var total uint32
	seen := make(map[uint32]bool, len(n.children))
	for i := range n.children {
		c := &n.children[i]
		if seen[c.quad] {
			return 0, geom.Rect{}, fmt.Errorf("mbrqt: node %d has duplicate quadrant %b", ref, c.quad)
		}
		seen[c.quad] = true
		sub := childCell(cell, c.quad)
		cnt, childMBR, err := t.checkNode(c.ref, sub, depth+1)
		if err != nil {
			return 0, geom.Rect{}, err
		}
		if cnt != c.count {
			return 0, geom.Rect{}, fmt.Errorf(
				"mbrqt: node %d slot %d count %d but subtree has %d points", ref, i, c.count, cnt)
		}
		if !childMBR.Equal(c.mbr) {
			return 0, geom.Rect{}, fmt.Errorf(
				"mbrqt: node %d slot %d MBR %v but subtree MBR %v", ref, i, c.mbr, childMBR)
		}
		if !sub.ContainsRect(childMBR) {
			return 0, geom.Rect{}, fmt.Errorf(
				"mbrqt: node %d slot %d subtree MBR %v escapes its cell %v", ref, i, childMBR, sub)
		}
		total += cnt
		mbr.ExpandRect(childMBR)
	}
	return total, mbr, nil
}

// StatsReport summarises the physical shape of the tree (for debugging
// and the experiments' index build reports).
type StatsReport struct {
	Nodes, Leaves, Internal int
	Pages                   int // distinct pages holding node records
	MaxDepth                int
	Points                  int
}

// Stats walks the tree and collects a StatsReport.
func (t *Tree) Stats() (StatsReport, error) {
	var r StatsReport
	if t.root == invalidRef {
		return r, nil
	}
	pages := make(map[uint32]bool)
	if err := t.statsAt(t.root, 1, &r, pages); err != nil {
		return r, err
	}
	r.Pages = len(pages)
	return r, nil
}

func (t *Tree) statsAt(ref nodeRef, depth int, r *StatsReport, pages map[uint32]bool) error {
	refs, err := t.chainRefs(ref)
	if err != nil {
		return err
	}
	for _, cr := range refs {
		pages[uint32(cr.page())] = true
	}
	n, err := t.readNode(ref)
	if err != nil {
		return err
	}
	r.Nodes++
	if depth > r.MaxDepth {
		r.MaxDepth = depth
	}
	if n.leaf {
		r.Leaves++
		r.Points += len(n.objects)
		return nil
	}
	r.Internal++
	for i := range n.children {
		if err := t.statsAt(n.children[i].ref, depth+1, r, pages); err != nil {
			return err
		}
	}
	return nil
}
