package mbrqt

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

// DefaultMaxDepth bounds the quadtree decomposition. Beyond this depth a
// bucket is allowed to overflow its record (duplicate or near-duplicate
// points would otherwise split forever).
const DefaultMaxDepth = 48

// Config tunes a tree. The zero value selects the defaults.
type Config struct {
	// BucketCapacity is the split threshold of a leaf. 0 means "as many
	// points as fit one page-sized record", the paper's disk-oriented
	// choice.
	BucketCapacity int
	// MaxDepth bounds the decomposition depth; 0 means DefaultMaxDepth.
	MaxDepth int
}

func (c Config) withDefaults(dim int) Config {
	if c.BucketCapacity <= 0 {
		c.BucketCapacity = entriesPerRecord(leafEntrySize(dim))
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	return c
}

// Tree is a disk-resident MBR-enhanced bucket PR quadtree.
type Tree struct {
	pool *storage.BufferPool
	rs   *recordStore
	meta storage.PageID // page holding the tree header
	dim  int
	cfg  Config

	root   nodeRef   // invalidRef while empty
	space  geom.Rect // the fixed cell of the root
	bounds geom.Rect // exact MBR of the data
	size   int
	height int

	// cache, when attached, serves Expand from decoded entry slices keyed
	// by node ref. Mutation paths invalidate through it (see freeNode and
	// updateNode). The pointer is atomic so concurrent readers (parallel
	// workers, or independent queries multiplexed over one shared tree by
	// the serving layer) can race with an idempotent re-attach without a
	// data race; the cache itself is concurrency-safe.
	cache atomic.Pointer[index.NodeCache]

	// reclaimQ collects deferred-freed refs whose snapshots have all been
	// released (see Publish); the writer drains it via DrainReclaim. The
	// mutex is needed because release functions run from reader
	// goroutines.
	reclaimMu sync.Mutex
	reclaimQ  []nodeRef
}

const metaMagic = 0x4D515432 // "MQT2"

// New creates an empty tree over the given space (the root cell of the
// PR decomposition — every inserted point must fall inside it). The tree
// allocates its pages from pool's store.
func New(pool *storage.BufferPool, space geom.Rect, cfg Config) (*Tree, error) {
	dim := space.Dim()
	if dim < 1 || dim > MaxDim {
		return nil, fmt.Errorf("mbrqt: dimensionality %d out of range [1, %d]", dim, MaxDim)
	}
	if space.IsEmpty() {
		return nil, fmt.Errorf("mbrqt: empty space rect")
	}
	t := &Tree{
		pool:   pool,
		rs:     newRecordStore(pool),
		dim:    dim,
		cfg:    cfg.withDefaults(dim),
		root:   invalidRef,
		space:  space.Clone(),
		bounds: geom.EmptyRect(dim),
	}
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	t.meta = f.ID()
	f.Release()
	return t, t.writeMeta()
}

// Open loads a previously persisted tree anchored at the given meta page.
func Open(pool *storage.BufferPool, meta storage.PageID) (*Tree, error) {
	t := &Tree{pool: pool, rs: newRecordStore(pool), meta: meta}
	f, err := pool.Get(meta)
	if err != nil {
		return nil, err
	}
	defer f.Release()
	data := f.Data()
	if binary.LittleEndian.Uint32(data) != metaMagic {
		return nil, fmt.Errorf("mbrqt: page %d is not an MBRQT header: %w", meta, storage.ErrCorruptPage)
	}
	t.dim = int(binary.LittleEndian.Uint32(data[4:]))
	if t.dim < 1 || t.dim > MaxDim {
		return nil, fmt.Errorf("mbrqt: header dim %d out of range: %w", t.dim, storage.ErrCorruptPage)
	}
	t.root = nodeRef(binary.LittleEndian.Uint32(data[8:]))
	t.size = int(binary.LittleEndian.Uint64(data[12:]))
	t.height = int(binary.LittleEndian.Uint32(data[20:]))
	t.cfg.BucketCapacity = int(binary.LittleEndian.Uint32(data[24:]))
	t.cfg.MaxDepth = int(binary.LittleEndian.Uint32(data[28:]))
	off := 32
	readRect := func() geom.Rect {
		r := geom.Rect{Lo: make(geom.Point, t.dim), Hi: make(geom.Point, t.dim)}
		for d := 0; d < t.dim; d++ {
			r.Lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		for d := 0; d < t.dim; d++ {
			r.Hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		return r
	}
	t.space = readRect()
	t.bounds = readRect()
	return t, nil
}

// writeMeta persists the tree header to its meta page.
func (t *Tree) writeMeta() error {
	f, err := t.pool.Get(t.meta)
	if err != nil {
		return err
	}
	defer f.Release()
	data := f.Data()
	binary.LittleEndian.PutUint32(data, metaMagic)
	binary.LittleEndian.PutUint32(data[4:], uint32(t.dim))
	binary.LittleEndian.PutUint32(data[8:], uint32(t.root))
	binary.LittleEndian.PutUint64(data[12:], uint64(t.size))
	binary.LittleEndian.PutUint32(data[20:], uint32(t.height))
	binary.LittleEndian.PutUint32(data[24:], uint32(t.cfg.BucketCapacity))
	binary.LittleEndian.PutUint32(data[28:], uint32(t.cfg.MaxDepth))
	off := 32
	writeRect := func(r geom.Rect) {
		for d := 0; d < t.dim; d++ {
			binary.LittleEndian.PutUint64(data[off:], math.Float64bits(r.Lo[d]))
			off += 8
		}
		for d := 0; d < t.dim; d++ {
			binary.LittleEndian.PutUint64(data[off:], math.Float64bits(r.Hi[d]))
			off += 8
		}
	}
	writeRect(t.space)
	b := t.bounds
	if b.IsEmpty() {
		// Persist the empty rect as inverted infinities, which round-trip.
		b = geom.EmptyRect(t.dim)
	}
	writeRect(b)
	f.MarkDirty()
	return nil
}

// Flush persists the tree durably: all dirty data pages are written and
// synced before the header page is, so a crash mid-flush can never leave
// a durable header pointing at unwritten pages. (CheckpointWith is the
// same protocol with a WAL hook between the two syncs.)
func (t *Tree) Flush() error {
	return t.CheckpointWith(nil)
}

// MetaPage returns the page anchoring this tree inside its store.
func (t *Tree) MetaPage() storage.PageID { return t.meta }

// Pool returns the buffer pool the tree performs its I/O through.
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// Dim implements index.Tree.
func (t *Tree) Dim() int { return t.dim }

// Len implements index.Tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int { return t.height }

// Bounds implements index.Tree.
func (t *Tree) Bounds() geom.Rect { return t.bounds.Clone() }

// Space returns the fixed root cell of the decomposition.
func (t *Tree) Space() geom.Rect { return t.space.Clone() }

// Root implements index.Tree.
func (t *Tree) Root() (index.Entry, error) {
	if t.root == invalidRef {
		return index.Entry{Kind: index.NodeEntry, MBR: geom.EmptyRect(t.dim), Child: storage.PageID(invalidRef)}, nil
	}
	return index.Entry{
		Kind:  index.NodeEntry,
		MBR:   t.bounds.Clone(),
		Child: storage.PageID(t.root),
		Count: uint32(t.size),
	}, nil
}

// SetNodeCache implements index.NodeCacher. The attached cache keys
// decoded entry slices by node ref (the value Expand receives in
// Entry.Child), so it must not be shared with another tree whose refs
// could collide; the engine attaches one cache per tree (or one shared
// cache for a self-join over the same tree).
func (t *Tree) SetNodeCache(c *index.NodeCache) { t.cache.Store(c) }

// NodeCacheRef implements index.NodeCacher.
func (t *Tree) NodeCacheRef() *index.NodeCache { return t.cache.Load() }

// Expand implements index.Tree. Entry.Child carries the node's record
// ref (an opaque handle from the engine's point of view). With a node
// cache attached, a warm expansion is a single lookup returning the
// shared immutable slice; a miss decodes the node and populates the
// cache.
func (t *Tree) Expand(e *index.Entry) ([]index.Entry, error) {
	if e.IsObject() {
		return nil, fmt.Errorf("mbrqt: Expand called on an object entry")
	}
	cache := t.cache.Load()
	if out, ok := cache.Get(e.Child); ok {
		return out, nil
	}
	out, err := t.decodeEntries(nodeRef(e.Child))
	if err != nil {
		return nil, err
	}
	index.CachePut(cache, e.Child, out)
	return out, nil
}

// decodeEntries reads the node at ref and materialises its entry slice.
func (t *Tree) decodeEntries(ref nodeRef) ([]index.Entry, error) {
	n, err := t.readNode(ref)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		out := make([]index.Entry, len(n.objects))
		for i := range n.objects {
			o := &n.objects[i]
			out[i] = index.Entry{
				Kind:   index.ObjectEntry,
				MBR:    geom.PointRect(o.pt),
				Count:  1,
				Object: o.id,
				Point:  o.pt,
			}
		}
		return out, nil
	}
	out := make([]index.Entry, len(n.children))
	for i := range n.children {
		c := &n.children[i]
		out[i] = index.Entry{
			Kind:  index.NodeEntry,
			MBR:   c.mbr,
			Child: storage.PageID(c.ref),
			Count: c.count,
		}
	}
	return out, nil
}

// quadOf returns the quadrant code of pt within cell: bit d is set when
// pt lies in the upper half of dimension d.
func quadOf(pt geom.Point, cell geom.Rect) uint32 {
	var q uint32
	for d := range pt {
		if pt[d] >= (cell.Lo[d]+cell.Hi[d])/2 {
			q |= 1 << uint(d)
		}
	}
	return q
}

// childCell returns the sub-cell of cell selected by quadrant code q.
func childCell(cell geom.Rect, q uint32) geom.Rect {
	dim := cell.Dim()
	sub := geom.Rect{Lo: make(geom.Point, dim), Hi: make(geom.Point, dim)}
	for d := 0; d < dim; d++ {
		mid := (cell.Lo[d] + cell.Hi[d]) / 2
		if q&(1<<uint(d)) != 0 {
			sub.Lo[d], sub.Hi[d] = mid, cell.Hi[d]
		} else {
			sub.Lo[d], sub.Hi[d] = cell.Lo[d], mid
		}
	}
	return sub
}

// Insert adds one point. The point must lie inside the tree's space.
func (t *Tree) Insert(id index.ObjectID, pt geom.Point) error {
	if len(pt) != t.dim {
		return fmt.Errorf("mbrqt: point dimensionality %d, tree %d", len(pt), t.dim)
	}
	if !t.space.Contains(pt) {
		return fmt.Errorf("mbrqt: point %v outside index space %v", pt, t.space)
	}
	if t.root == invalidRef {
		ref, err := t.writeNewNode(&node{leaf: true, objects: []object{{id: id, pt: pt.Clone()}}})
		if err != nil {
			return err
		}
		t.root = ref
		t.height = 1
		t.size = 1
		t.bounds = geom.NewRect(pt.Clone(), pt.Clone())
		return nil
	}
	newRoot, depth, err := t.insertAt(t.root, t.space, 1, id, pt)
	if err != nil {
		return err
	}
	t.root = newRoot
	t.size++
	if depth > t.height {
		t.height = depth
	}
	t.bounds.ExpandPoint(pt)
	return nil
}

// insertAt descends into the node at ref (whose cell is cell, at the
// given depth) and inserts the point, splitting overflowing leaves. It
// returns the node's possibly relocated ref and the depth of the leaf
// that received the point.
func (t *Tree) insertAt(ref nodeRef, cell geom.Rect, depth int, id index.ObjectID, pt geom.Point) (nodeRef, int, error) {
	n, err := t.readNode(ref)
	if err != nil {
		return invalidRef, 0, err
	}
	if n.leaf {
		n.objects = append(n.objects, object{id: id, pt: pt.Clone()})
		if len(n.objects) > t.cfg.BucketCapacity && depth < t.cfg.MaxDepth {
			split, splitDepth, err := t.splitLeaf(n, cell, depth)
			if err != nil {
				return invalidRef, 0, err
			}
			newRef, err := t.updateNode(ref, split)
			return newRef, splitDepth, err
		}
		newRef, err := t.updateNode(ref, n)
		return newRef, depth, err
	}

	q := quadOf(pt, cell)
	for i := range n.children {
		c := &n.children[i]
		if c.quad == q {
			childRef, leafDepth, err := t.insertAt(c.ref, childCell(cell, q), depth+1, id, pt)
			if err != nil {
				return invalidRef, 0, err
			}
			c.ref = childRef
			c.count++
			c.mbr.ExpandPoint(pt)
			newRef, err := t.updateNode(ref, n)
			return newRef, leafDepth, err
		}
	}
	// No child for this quadrant yet: create a fresh leaf.
	leafRef, err := t.writeNewNode(&node{leaf: true, objects: []object{{id: id, pt: pt.Clone()}}})
	if err != nil {
		return invalidRef, 0, err
	}
	n.children = append(n.children, childSlot{
		quad:  q,
		ref:   leafRef,
		count: 1,
		mbr:   geom.NewRect(pt.Clone(), pt.Clone()),
	})
	newRef, err := t.updateNode(ref, n)
	return newRef, depth + 1, err
}

// splitLeaf converts an overflowing leaf into an internal node whose
// children are fresh leaves, one per non-empty quadrant. Quadrants that
// still overflow are split recursively (all points may share a quadrant).
// The returned depth is that of the deepest leaf created.
func (t *Tree) splitLeaf(n *node, cell geom.Rect, depth int) (*node, int, error) {
	groups := make(map[uint32][]object)
	for _, o := range n.objects {
		q := quadOf(o.pt, cell)
		groups[q] = append(groups[q], o)
	}
	internal := &node{leaf: false}
	// Deterministic child order keeps the on-disk layout reproducible.
	quads := make([]uint32, 0, len(groups))
	for q := range groups {
		quads = append(quads, q)
	}
	sort.Slice(quads, func(i, j int) bool { return quads[i] < quads[j] })
	maxDepth := depth + 1
	for _, q := range quads {
		objs := groups[q]
		child := &node{leaf: true, objects: objs}
		sub := childCell(cell, q)
		if len(objs) > t.cfg.BucketCapacity && depth+1 < t.cfg.MaxDepth {
			var err error
			var d int
			child, d, err = t.splitLeaf(child, sub, depth+1)
			if err != nil {
				return nil, 0, err
			}
			if d > maxDepth {
				maxDepth = d
			}
		}
		ref, err := t.writeNewNode(child)
		if err != nil {
			return nil, 0, err
		}
		mbr := geom.EmptyRect(t.dim)
		for _, o := range objs {
			mbr.ExpandPoint(o.pt)
		}
		internal.children = append(internal.children, childSlot{
			quad:  q,
			ref:   ref,
			count: uint32(len(objs)),
			mbr:   mbr,
		})
	}
	return internal, maxDepth, nil
}

// BulkLoad builds a tree from a point set in one pass. The space defaults
// to the data MBR (inflated marginally so every point is strictly inside).
// IDs are 0..len(pts)-1 unless ids is non-nil. Nodes are written in
// post-order, which packs siblings into shared pages and gives the
// traversal its locality.
func BulkLoad(pool *storage.BufferPool, pts []geom.Point, ids []index.ObjectID, cfg Config) (*Tree, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("mbrqt: BulkLoad of empty point set")
	}
	if ids != nil && len(ids) != len(pts) {
		return nil, fmt.Errorf("mbrqt: %d ids for %d points", len(ids), len(pts))
	}
	bounds := geom.BoundingRect(pts)
	space := inflate(bounds)
	t, err := New(pool, space, cfg)
	if err != nil {
		return nil, err
	}
	objs := make([]object, len(pts))
	for i, p := range pts {
		oid := index.ObjectID(i)
		if ids != nil {
			oid = ids[i]
		}
		objs[i] = object{id: oid, pt: p}
	}
	rootRef, height, err := t.buildSubtree(objs, space, 1)
	if err != nil {
		return nil, err
	}
	t.root = rootRef
	t.height = height
	t.size = len(pts)
	t.bounds = bounds
	return t, t.writeMeta()
}

// buildSubtree writes the subtree for objs (all within cell) and returns
// its ref and height.
func (t *Tree) buildSubtree(objs []object, cell geom.Rect, depth int) (nodeRef, int, error) {
	if len(objs) <= t.cfg.BucketCapacity || depth >= t.cfg.MaxDepth {
		ref, err := t.writeNewNode(&node{leaf: true, objects: objs})
		return ref, depth, err
	}
	groups := make(map[uint32][]object)
	for _, o := range objs {
		q := quadOf(o.pt, cell)
		groups[q] = append(groups[q], o)
	}
	quads := make([]uint32, 0, len(groups))
	for q := range groups {
		quads = append(quads, q)
	}
	sort.Slice(quads, func(i, j int) bool { return quads[i] < quads[j] })

	n := &node{leaf: false}
	maxDepth := depth
	for _, q := range quads {
		g := groups[q]
		childRef, h, err := t.buildSubtree(g, childCell(cell, q), depth+1)
		if err != nil {
			return invalidRef, 0, err
		}
		if h > maxDepth {
			maxDepth = h
		}
		mbr := geom.EmptyRect(t.dim)
		for _, o := range g {
			mbr.ExpandPoint(o.pt)
		}
		n.children = append(n.children, childSlot{quad: q, ref: childRef, count: uint32(len(g)), mbr: mbr})
	}
	ref, err := t.writeNewNode(n)
	return ref, maxDepth, err
}

// inflate grows a rect by a tiny relative margin so that boundary points
// are strictly inside the returned space.
func inflate(r geom.Rect) geom.Rect {
	out := r.Clone()
	for d := range out.Lo {
		extent := out.Hi[d] - out.Lo[d]
		pad := extent * 1e-9
		if pad == 0 {
			pad = 1e-9
			if abs := math.Abs(out.Lo[d]); abs > 1 {
				pad = abs * 1e-9
			}
		}
		out.Lo[d] -= pad
		out.Hi[d] += pad
	}
	return out
}
