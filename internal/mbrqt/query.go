package mbrqt

import (
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/pq"
)

// Result is a point returned by a query.
type Result struct {
	Object index.ObjectID
	Point  geom.Point
	// DistSq is the squared distance to the query point (kNN queries only).
	DistSq float64
}

// RangeSearch returns every indexed point inside rect (boundaries
// inclusive), in no particular order.
func (t *Tree) RangeSearch(rect geom.Rect) ([]Result, error) {
	if t.root == invalidRef {
		return nil, nil
	}
	var out []Result
	err := t.rangeAt(t.root, rect, &out)
	return out, err
}

func (t *Tree) rangeAt(ref nodeRef, rect geom.Rect, out *[]Result) error {
	n, err := t.readNode(ref)
	if err != nil {
		return err
	}
	if n.leaf {
		for i := range n.objects {
			o := &n.objects[i]
			if rect.Contains(o.pt) {
				*out = append(*out, Result{Object: o.id, Point: o.pt})
			}
		}
		return nil
	}
	for i := range n.children {
		c := &n.children[i]
		if rect.Intersects(c.mbr) {
			if err := t.rangeAt(c.ref, rect, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// Contains reports whether the tree holds a point with exactly the given
// coordinates (any object id).
func (t *Tree) Contains(pt geom.Point) (bool, error) {
	res, err := t.RangeSearch(geom.PointRect(pt))
	return len(res) > 0, err
}

// NearestNeighbors returns the k nearest indexed points to q, ordered by
// ascending distance. Fewer than k are returned when the tree is smaller
// than k. This is the classic best-first (Hjaltason & Samet) search, used
// here by the MNN baseline and for standalone kNN queries.
func (t *Tree) NearestNeighbors(q geom.Point, k int) ([]Result, error) {
	if t.root == invalidRef || k < 1 {
		return nil, nil
	}
	frontier := pq.NewHeap[index.Entry](64)
	root, err := t.Root()
	if err != nil {
		return nil, err
	}
	frontier.Push(geom.MinDistPointRectSq(q, root.MBR), root)
	best := pq.NewKBest[Result](k)
	for frontier.Len() > 0 {
		item, _ := frontier.Pop()
		if item.Key >= best.Worst() {
			break // every remaining entry is at least this far away
		}
		entries, err := t.Expand(&item.Value)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsObject() {
				d := geom.DistSq(q, e.Point)
				if d < best.Worst() {
					best.Add(d, Result{Object: e.Object, Point: e.Point, DistSq: d})
				}
			} else {
				d := geom.MinDistPointRectSq(q, e.MBR)
				if d < best.Worst() {
					frontier.Push(d, e)
				}
			}
		}
	}
	items := best.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = it.Value
	}
	return out, nil
}
