package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/obs"
	"allnn/internal/wire"
)

// TestServedReportParity pins the tentpole acceptance criterion: the
// engine Stats inside a remote WantReport join are byte-identical to a
// direct ann library call with the same parameters — and, because
// engine counters carry a serial/parallel parity guarantee, identical
// to both a serial and a parallel direct run.
func TestServedReportParity(t *testing.T) {
	rPts := randomPoints(201, 600, 2)
	sPts := randomPoints(202, 700, 2)
	rix := buildIndex(t, rPts, ann.MBRQT)
	six := buildIndex(t, sPts, ann.RStar)
	srv, cl, _ := startServer(t, Config{Metrics: obs.NewRegistry()})
	if err := srv.Catalog().Add("r", rix); err != nil {
		t.Fatal(err)
	}
	if err := srv.Catalog().Add("s", six); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// The node-cache hit/miss split depends on cache state and worker
	// layout; only the total lookup count is parity-invariant. Fold the
	// split into one number, the same normalisation the engine's own
	// parity tests apply.
	normalize := func(s ann.Stats) ann.Stats {
		s.NodeCacheHits += s.NodeCacheMisses
		s.NodeCacheMisses = 0
		return s
	}
	directStats := func(par int, self bool) ann.Stats {
		t.Helper()
		var rep ann.QueryReport
		cfg := ann.QueryConfig{Parallelism: par,
			OnReport: func(r ann.QueryReport) { rep = r }}
		var err error
		if self {
			_, err = ann.SelfAllKNearestNeighbors(rix, 3, cfg)
		} else {
			_, err = ann.AllKNearestNeighbors(rix, six, 3, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		return normalize(rep.Engine)
	}

	for _, tc := range []struct {
		name string
		self bool
	}{{"join", false}, {"self-join", true}} {
		wantSerial := directStats(1, tc.self)
		wantParallel := directStats(4, tc.self)
		if wantSerial != wantParallel {
			t.Fatalf("%s: engine stats lost serial/parallel parity:\nserial   %+v\nparallel %+v",
				tc.name, wantSerial, wantParallel)
		}

		opts := client.JoinOptions{WantReport: true, TraceID: "parity-" + tc.name}
		var st *client.JoinStream
		var err error
		if tc.self {
			st, err = cl.SelfJoinApprox(ctx, "r", 3, opts)
		} else {
			st, err = cl.JoinApprox(ctx, "r", "s", 3, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		results := collectJoin(t, st)
		rep := st.Report()
		if rep == nil {
			t.Fatalf("%s: WantReport join returned no report", tc.name)
		}
		if normalize(rep.Engine) != wantSerial {
			t.Errorf("%s: served report engine stats diverge from direct call:\nserved %+v\ndirect %+v",
				tc.name, normalize(rep.Engine), wantSerial)
		}
		if rep.Engine.Results != uint64(len(results)) {
			t.Errorf("%s: report says %d results, stream delivered %d",
				tc.name, rep.Engine.Results, len(results))
		}
		if rep.TraceID != opts.TraceID {
			t.Errorf("%s: report trace id %q, want %q", tc.name, rep.TraceID, opts.TraceID)
		}
		// Service-side costs only the server can measure.
		if rep.EngineTime <= 0 {
			t.Errorf("%s: report engine time %v, want > 0", tc.name, rep.EngineTime)
		}
		if rep.Timings.Wall <= 0 {
			t.Errorf("%s: report wall time %v, want > 0", tc.name, rep.Timings.Wall)
		}
		if rep.BytesIn == 0 || rep.BytesOut == 0 {
			t.Errorf("%s: report bytes in/out = %d/%d, want both nonzero",
				tc.name, rep.BytesIn, rep.BytesOut)
		}
	}
}

// TestReportVersionGate pins backward compatibility of the header
// extension: requests without the new fields are served unchanged with
// a bare StreamEnd, and WantReport is rejected outside joins.
func TestReportVersionGate(t *testing.T) {
	pts := randomPoints(203, 400, 2)
	ix := buildIndex(t, pts, ann.MBRQT)
	srv, cl, addr := startServer(t, Config{})
	if err := srv.Catalog().Add("pts", ix); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	want, err := ann.SelfAllKNearestNeighbors(ix, 2, ann.QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// A plain join (the frame a pre-extension client sends, byte for
	// byte) is served identically and its end frame carries no report.
	st, err := cl.SelfJoin(ctx, "pts", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectJoin(t, st); !reflect.DeepEqual(got, want) {
		t.Fatal("plain join diverges with the trace extension deployed")
	}
	if st.Report() != nil {
		t.Error("plain join came back with an unsolicited report")
	}

	// Approx knobs without trace fields (the PR-8 frame layout) still
	// pass the extension gate.
	st, err = cl.SelfJoinApprox(ctx, "pts", 2, client.JoinOptions{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for st.Next() {
	}
	if err := st.Err(); err != nil {
		t.Fatalf("approx-only join with trace extension deployed: %v", err)
	}
	if st.Report() != nil {
		t.Error("approx-only join came back with an unsolicited report")
	}

	// WantReport on a non-join op is malformed. The typed client cannot
	// express it, so probe with a raw wire frame.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteHandshake(conn); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.EncodeRequest(
		wire.RequestHeader{ID: 1, Op: wire.OpKNN, WantReport: true, TraceID: "vg"},
		&wire.KNNReq{Index: "pts", K: 1, Point: []float64{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	_, kind, _, body, err := wire.DecodeResponse(reply)
	if err != nil {
		t.Fatal(err)
	}
	if kind != wire.KindError || body.(*wire.ErrorReply).Code != wire.CodeBadRequest {
		t.Errorf("WantReport on %s: got kind %d body %+v, want BAD_REQUEST", wire.OpKNN, kind, body)
	}

	srv.Catalog().RequireNoPinnedFrames(t)
}

// TestAdmissionMetrics pins the gauge and typed-counter surface of the
// admission controller: queue-depth and in-flight gauges rise while a
// burst saturates the server and fall back to zero after, and a
// SERVER_BUSY rejection increments its per-code error counter. Run
// with -race.
func TestAdmissionMetrics(t *testing.T) {
	pts := randomPoints(204, 50, 2)
	reg := obs.NewRegistry()
	srv, cl, _ := startServer(t, Config{MaxInFlight: 1, MaxQueue: 1, Metrics: reg})
	if err := srv.Catalog().Add("pts", buildIndex(t, pts, ann.MBRQT)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Saturate: occupy the only execution slot, then the only queue seat.
	if err := srv.admit.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	queuedCtx, cancelQueued := context.WithCancel(ctx)
	queued := make(chan error, 1)
	go func() { queued <- srv.admit.acquire(queuedCtx) }()
	for srv.admit.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}

	snap := reg.Snapshot()
	if snap.Gauges["server.inflight"] != 1 {
		t.Errorf("saturated server.inflight = %d, want 1", snap.Gauges["server.inflight"])
	}
	if snap.Gauges["server.queue_depth"] != 1 {
		t.Errorf("saturated server.queue_depth = %d, want 1", snap.Gauges["server.queue_depth"])
	}

	// Over capacity: the next query bounces with SERVER_BUSY and the
	// typed per-code counter records it.
	busyBefore := snap.Counters["server.errors.server_busy"]
	if _, err := cl.KNN(ctx, "pts", ann.Point{1, 2}, 1); !client.IsBusy(err) {
		t.Fatalf("over-capacity query: got %v, want SERVER_BUSY", err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["server.errors.server_busy"]; got != busyBefore+1 {
		t.Errorf("server.errors.server_busy = %d, want %d", got, busyBefore+1)
	}
	if snap.Counters["server.rejected"] == 0 {
		t.Error("server.rejected did not count the SERVER_BUSY rejection")
	}

	// Drain the synthetic load: the queued waiter takes the slot, then
	// both release. Gauges fall back to zero.
	cancelQueued()
	if err := <-queued; err == nil {
		// The waiter won the slot before cancellation; release it.
		srv.admit.release()
	}
	srv.admit.release()
	deadline := time.Now().Add(5 * time.Second)
	for srv.admit.inFlight() != 0 || srv.admit.queueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission gauges did not return to zero")
		}
		time.Sleep(time.Millisecond)
	}
	snap = reg.Snapshot()
	if snap.Gauges["server.inflight"] != 0 || snap.Gauges["server.queue_depth"] != 0 {
		t.Errorf("idle gauges inflight=%d queue_depth=%d, want 0/0",
			snap.Gauges["server.inflight"], snap.Gauges["server.queue_depth"])
	}

	// The server still works at full health.
	if _, err := cl.KNN(ctx, "pts", ann.Point{1, 2}, 1); err != nil {
		t.Fatalf("query after burst: %v", err)
	}
}

// logSink collects structured log lines behind a mutex for concurrent
// assertion.
type logSink struct {
	mu    sync.Mutex
	lines []string
}

func (l *logSink) logf(format string, args ...any) {
	l.mu.Lock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

func (l *logSink) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines...)
}

func (l *logSink) find(substrs ...string) string {
outer:
	for _, line := range l.all() {
		for _, sub := range substrs {
			if !strings.Contains(line, sub) {
				continue outer
			}
		}
		return line
	}
	return ""
}

// syncBuffer is a mutex-guarded line buffer usable as Config.AccessLog
// while the test reads it concurrently.
type syncBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.lines = append(b.lines, strings.TrimSuffix(string(p), "\n"))
	b.mu.Unlock()
	return len(p), nil
}

func (b *syncBuffer) snapshot() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.lines...)
}

// TestPanicRecoveryLogsRequestIdentity pins the satellite contract for
// the leveled logger: a handler panic produces one structured error
// line carrying the request and trace IDs, the client sees INTERNAL,
// and the connection keeps serving.
func TestPanicRecoveryLogsRequestIdentity(t *testing.T) {
	pts := randomPoints(205, 100, 2)
	sink := &logSink{}
	// The hook must be in place before the listener starts: connection
	// goroutines read it without synchronisation.
	srv := New(Config{Logf: sink.logf})
	var panicked bool
	srv.testHook = func(hdr wire.RequestHeader) {
		if hdr.Op == wire.OpJoin && !panicked {
			panicked = true
			panic("injected handler panic")
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		srv.Catalog().CloseAll()
	})
	if err := srv.Catalog().Add("pts", buildIndex(t, pts, ann.MBRQT)); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	ctx := context.Background()

	st, err := cl.SelfJoinApprox(ctx, "pts", 1, client.JoinOptions{TraceID: "panic-trace-7"})
	if err != nil {
		t.Fatal(err)
	}
	for st.Next() {
	}
	err = st.Err()
	if !wire.IsCode(err, wire.CodeInternal) {
		t.Fatalf("panicking join: got %v, want INTERNAL", err)
	}

	line := sink.find(`msg="request panic"`, "trace=panic-trace-7", "level=error")
	if line == "" {
		t.Fatalf("no panic log line with trace id; got lines:\n%s", strings.Join(sink.all(), "\n"))
	}
	if !strings.Contains(line, "req=") || !strings.Contains(line, "op=join") {
		t.Errorf("panic log line missing request identity: %q", line)
	}

	// The connection survived the panic and serves the same join fine.
	st, err = cl.SelfJoin(ctx, "pts", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectJoin(t, st); len(got) != len(pts) {
		t.Fatalf("join after panic returned %d results, want %d", len(got), len(pts))
	}
}

// TestDebugEndpointsUnderLoad drives a concurrent traced workload and
// checks the whole inspection surface: /debug/requests shows live
// entries while a request is provably in flight, /debug/slow captures
// every over-threshold request with its trace ID, the access log gets
// one JSONL record per request, and per-op quantiles appear in both the
// JSON snapshot and the Prometheus exposition.
func TestDebugEndpointsUnderLoad(t *testing.T) {
	pts := randomPoints(206, 500, 2)
	reg := obs.NewRegistry()
	sink := &logSink{}
	access := &syncBuffer{}
	srv, cl, addr := startServer(t, Config{
		MaxInFlight:   1,
		MaxQueue:      1 << 16,
		Metrics:       reg,
		Logf:          sink.logf,
		LogLevel:      LevelWarn,
		SlowThreshold: time.Nanosecond, // every request is slow
		SlowLogSize:   1024,
		AccessLog:     access,
	})
	if err := srv.Catalog().Add("pts", buildIndex(t, pts, ann.MBRQT)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	web := httptest.NewServer(obs.Mux(reg, srv.DebugRoutes()...))
	defer web.Close()

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}

	// Phase 1: live inspection. Occupy the single execution slot so a
	// traced join is deterministically parked in the queued stage, then
	// scrape /debug/requests.
	if err := srv.admit.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	liveDone := make(chan error, 1)
	go func() {
		cl2, err := client.Dial(addr)
		if err != nil {
			liveDone <- err
			return
		}
		defer cl2.Close()
		st, err := cl2.SelfJoinApprox(ctx, "pts", 1, client.JoinOptions{TraceID: "live-join"})
		if err != nil {
			liveDone <- err
			return
		}
		for st.Next() {
		}
		liveDone <- st.Err()
	}()

	var live struct {
		Count    int               `json:"count"`
		Requests []InFlightRequest `json:"requests"`
	}
	deadline := time.Now().Add(10 * time.Second)
	found := false
	for !found {
		if time.Now().After(deadline) {
			t.Fatal("traced join never appeared in /debug/requests")
		}
		getJSON("/debug/requests", &live)
		for _, r := range live.Requests {
			if r.TraceID == "live-join" && r.Op == "join" && r.Stage == "queued" {
				if r.ElapsedNs <= 0 {
					t.Errorf("live entry has elapsed %d, want > 0", r.ElapsedNs)
				}
				found = true
			}
		}
		time.Sleep(time.Millisecond)
	}
	srv.admit.release()
	if err := <-liveDone; err != nil {
		t.Fatalf("live join: %v", err)
	}

	// Phase 2: concurrent traced workload.
	const workers = 8
	const itersPer = 3
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wcl, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer wcl.Close()
			for it := 0; it < itersPer; it++ {
				tid := fmt.Sprintf("load-%d-%d", g, it)
				st, err := wcl.SelfJoinApprox(ctx, "pts", 1,
					client.JoinOptions{TraceID: tid, WantReport: true})
				if err != nil {
					errc <- fmt.Errorf("g%d: %w", g, err)
					return
				}
				for st.Next() {
				}
				if err := st.Err(); err != nil {
					errc <- fmt.Errorf("g%d stream: %w", g, err)
					return
				}
				if rep := st.Report(); rep == nil || rep.TraceID != tid {
					errc <- fmt.Errorf("g%d: report missing or mislabeled: %+v", g, rep)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The client sees StreamEnd before the server's deferred
	// finishRequest runs, so wait for the access log (the last
	// finishRequest step) to catch up before asserting.
	wantSlow := uint64(1 + workers*itersPer) // live join + workload
	deadline = time.Now().Add(10 * time.Second)
	for uint64(len(access.snapshot())) < wantSlow {
		if time.Now().After(deadline) {
			t.Fatalf("access log has %d records, want %d", len(access.snapshot()), wantSlow)
		}
		time.Sleep(time.Millisecond)
	}

	// /debug/slow captured every request (threshold 1ns) with its trace.
	var slow struct {
		ThresholdNs int64       `json:"threshold_ns"`
		Total       uint64      `json:"total"`
		Entries     []SlowQuery `json:"entries"`
	}
	getJSON("/debug/slow", &slow)
	if slow.ThresholdNs != 1 {
		t.Errorf("slow threshold = %d, want 1", slow.ThresholdNs)
	}
	if slow.Total != wantSlow {
		t.Errorf("slow log total = %d, want %d", slow.Total, wantSlow)
	}
	seen := make(map[string]bool)
	for _, e := range slow.Entries {
		seen[e.TraceID] = true
		if e.LatencyNs <= 0 || e.Op != "join" {
			t.Errorf("slow entry malformed: %+v", e)
		}
	}
	for g := 0; g < workers; g++ {
		for it := 0; it < itersPer; it++ {
			if tid := fmt.Sprintf("load-%d-%d", g, it); !seen[tid] {
				t.Errorf("slow log missing trace %s", tid)
			}
		}
	}
	if !seen["live-join"] {
		t.Error("slow log missing the live-phase join")
	}
	// Every slow request was also logged at warn level with its trace.
	if line := sink.find(`msg="slow query"`, "trace=load-0-0"); line == "" {
		t.Error("no warn-level slow-query log line for trace load-0-0")
	}

	// The access log holds one parseable JSONL record per request.
	accessLines := access.snapshot()
	if uint64(len(accessLines)) != wantSlow {
		t.Errorf("access log has %d records, want %d", len(accessLines), wantSlow)
	}
	for _, line := range accessLines {
		var rec SlowQuery
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad access log line %q: %v", line, err)
		}
	}

	// Per-op quantiles in the JSON snapshot…
	snap := reg.Snapshot()
	joinHist, ok := snap.Histograms["server.join.latency_ns"]
	if !ok {
		t.Fatal("server.join.latency_ns histogram missing from snapshot")
	}
	if joinHist.Count != uint64(wantSlow) {
		t.Errorf("join latency histogram count = %d, want %d", joinHist.Count, wantSlow)
	}
	if joinHist.P50 <= 0 || joinHist.P95 < joinHist.P50 || joinHist.P99 < joinHist.P95 {
		t.Errorf("join latency quantiles not monotone: p50=%v p95=%v p99=%v",
			joinHist.P50, joinHist.P95, joinHist.P99)
	}
	// …the per-op×per-index family…
	if _, ok := snap.Histograms["server.join.pts.latency_ns"]; !ok {
		t.Error("per-op×per-index histogram server.join.pts.latency_ns missing")
	}
	// …and the Prometheus exposition.
	resp, err := http.Get(web.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	promBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	promText := string(promBytes)
	for _, want := range []string{
		"server_join_latency_ns_p50",
		"server_join_latency_ns_p99",
		"server_join_latency_ns_bucket",
		"server_join_pts_latency_ns_count",
		"server_inflight",
		"server_requests",
	} {
		if !strings.Contains(promText, want) {
			t.Errorf("prometheus exposition missing %s", want)
		}
	}

	_ = cl // the startServer client stays idle in this test
	srv.Catalog().RequireNoPinnedFrames(t)
}
