package server

import (
	"context"
	"errors"
	"io/fs"
	"time"

	"allnn/ann"
	"allnn/internal/storage"
	"allnn/internal/wire"
)

// joinFrameResults bounds how many join results one KindStream frame
// carries: large enough to amortise framing, small enough that the
// client sees results flowing while a million-row join runs.
const joinFrameResults = 512

// pairFrameCount is the same bound for within-distance pair streams
// (pairs are much smaller than results).
const pairFrameCount = 4096

// dispatch executes one decoded request and writes its response
// frame(s). A returned error means no terminal frame was written yet;
// the caller turns it into KindError.
func (s *Server) dispatch(ctx context.Context, rc *reqCtx, hdr wire.RequestHeader, body wire.Message, w *connWriter) (err error) {
	// A panicking handler must not take the whole connection down:
	// report INTERNAL and keep serving.
	defer func() {
		if r := recover(); r != nil {
			s.log(LevelError, "request panic",
				"req", hdr.ID, "trace", rc.traceID, "op", hdr.Op, "index", rc.index,
				"panic", r)
			err = &wire.Error{Code: wire.CodeInternal, Msg: "internal error (recovered panic)"}
		}
	}()
	if s.testHook != nil {
		s.testHook(hdr)
	}

	// The approximate-query knobs ride the request header, but only the
	// ANN join honors them; every other operation is exact by contract
	// (kNN, range and closest-pairs results have no recall story), so a
	// request that sets them anywhere else is malformed — reject it here
	// rather than silently running an exact query the client believes is
	// approximate.
	if (hdr.Epsilon != 0 || hdr.RecallTarget != 0) && hdr.Op != wire.OpJoin {
		return badRequest("approximate-query knobs (epsilon=%v, recall_target=%v) are only valid for %s, not %s",
			hdr.Epsilon, hdr.RecallTarget, wire.OpJoin, hdr.Op)
	}
	// Reports ride a stream's terminating StreamEnd, which only joins
	// produce; asking for one anywhere else is equally malformed.
	if hdr.WantReport && hdr.Op != wire.OpJoin {
		return badRequest("WantReport is only valid for %s, not %s", wire.OpJoin, hdr.Op)
	}

	switch req := body.(type) {
	case *wire.OpenReq:
		return s.handleOpen(hdr, req, w)
	case *wire.CloseReq:
		return s.handleClose(hdr, req, w)
	case *wire.ListReq:
		return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.ListReply{Indexes: s.catalog.List()})
	case *wire.StatsReq:
		return s.handleStats(hdr, req, w)
	case *wire.KNNReq:
		return s.withSlot(ctx, rc, func() error { return s.handleKNN(ctx, hdr, req, w) })
	case *wire.BatchKNNReq:
		return s.withSlot(ctx, rc, func() error { return s.handleBatchKNN(ctx, hdr, req, w) })
	case *wire.RangeReq:
		return s.withSlot(ctx, rc, func() error { return s.handleRange(ctx, hdr, req, w) })
	case *wire.RangePointsReq:
		return s.withSlot(ctx, rc, func() error { return s.handleRangePoints(ctx, hdr, req, w) })
	case *wire.JoinReq:
		return s.withSlot(ctx, rc, func() error { return s.handleJoin(ctx, rc, hdr, req, w) })
	case *wire.WithinReq:
		return s.withSlot(ctx, rc, func() error { return s.handleWithin(ctx, hdr, req, w) })
	case *wire.PairsReq:
		return s.withSlot(ctx, rc, func() error { return s.handlePairs(ctx, hdr, req, w) })
	case *wire.InsertReq:
		return s.withSlot(ctx, rc, func() error { return s.handleInsert(hdr, req, w) })
	case *wire.DeleteReq:
		return s.withSlot(ctx, rc, func() error { return s.handleDelete(hdr, req, w) })
	default:
		return badRequest("unhandled request type %T", body)
	}
}

// withSlot runs fn under the query admission controller, accounting
// the time spent queued to rc. Catalog ops bypass it — only engine
// work is bounded.
func (s *Server) withSlot(ctx context.Context, rc *reqCtx, fn func() error) error {
	rc.stage.Store(stageQueued)
	waitStart := time.Now()
	err := s.admit.acquire(ctx)
	rc.admissionWaitNs.Store(time.Since(waitStart).Nanoseconds())
	if err != nil {
		return err
	}
	rc.stage.Store(stageRunning)
	defer s.admit.release()
	// The deadline may have expired while queued.
	if err := ctx.Err(); err != nil {
		return err
	}
	return fn()
}

// --- catalog ops ------------------------------------------------------------

func (s *Server) handleOpen(hdr wire.RequestHeader, req *wire.OpenReq, w *connWriter) error {
	ix, err := s.catalog.Open(req.Name, req.Path, ann.IndexConfig{
		BufferPoolBytes: s.cfg.IndexBufferBytes,
	})
	if err != nil {
		switch {
		case errors.Is(err, storage.ErrCorruptPage):
			return &wire.Error{Code: wire.CodeCorruptIndex, Msg: err.Error()}
		case errors.Is(err, fs.ErrNotExist):
			return &wire.Error{Code: wire.CodeNotFound, Msg: err.Error()}
		default:
			return badRequest("%v", err)
		}
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.OpenReply{Info: wire.IndexInfo{
		Name:   req.Name,
		Kind:   uint8(ix.Kind()),
		Points: uint64(ix.Len()),
		Dim:    uint32(ix.Dim()),
	}})
}

func (s *Server) handleClose(hdr wire.RequestHeader, req *wire.CloseReq, w *connWriter) error {
	if err := s.catalog.Close(req.Name); err != nil {
		return err
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.CloseReply{})
}

func (s *Server) handleStats(hdr wire.RequestHeader, req *wire.StatsReq, w *connWriter) error {
	e, ix, err := s.catalog.acquire(req.Name)
	if err != nil {
		return err
	}
	defer e.release()
	st := ix.Stats()
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.StatsReply{
		Info: wire.IndexInfo{
			Name:   req.Name,
			Kind:   uint8(st.Kind),
			Points: uint64(st.Points),
			Dim:    uint32(st.Dim),
		},
		PoolHits:         st.PoolHits,
		PoolMisses:       st.PoolMisses,
		PoolReads:        st.PoolReads,
		PoolWrites:       st.PoolWrites,
		PoolEvictions:    st.PoolEvictions,
		PoolRetries:      st.PoolRetries,
		PoolCorruptPages: st.PoolCorruptPages,
		PinnedFrames:     uint64(st.PinnedFrames),

		CacheHits:          st.CacheHits,
		CacheMisses:        st.CacheMisses,
		CacheEvictions:     st.CacheEvictions,
		CacheInvalidations: st.CacheInvalidations,
		CacheEntries:       uint64(st.CacheEntries),
		CacheBytes:         uint64(st.CacheBytes),

		WALRecords:     st.WALRecords,
		WALFsyncs:      st.WALFsyncs,
		WALCheckpoints: st.WALCheckpoints,
		WALReplayed:    st.WALReplayed,
		WALReplayNs:    uint64(st.WALReplayNs),
		SnapshotPins:   uint64(st.SnapshotPins),
	})
}

// --- mutations --------------------------------------------------------------

// The catalog entry's read lock is enough for a mutation: it only
// excludes Close, while ann.Index's own write lock serialises writers
// against each other (queries need no exclusion at all — they run on
// the snapshot published by the last completed batch).

func (s *Server) handleInsert(hdr wire.RequestHeader, req *wire.InsertReq, w *connWriter) error {
	e, ix, err := s.catalog.acquire(req.Index)
	if err != nil {
		return err
	}
	defer e.release()
	if err := ix.InsertBatch(req.IDs, req.Points); err != nil {
		return err
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.InsertReply{
		Inserted: uint64(len(req.IDs)),
		Size:     uint64(ix.Len()),
	})
}

func (s *Server) handleDelete(hdr wire.RequestHeader, req *wire.DeleteReq, w *connWriter) error {
	e, ix, err := s.catalog.acquire(req.Index)
	if err != nil {
		return err
	}
	defer e.release()
	found, err := ix.DeleteBatch(req.IDs, req.Points)
	if err != nil {
		return err
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.DeleteReply{
		Found: uint64(found),
		Size:  uint64(ix.Len()),
	})
}

// --- point and box queries --------------------------------------------------

func (s *Server) handleKNN(ctx context.Context, hdr wire.RequestHeader, req *wire.KNNReq, w *connWriter) error {
	e, ix, err := s.catalog.acquire(req.Index)
	if err != nil {
		return err
	}
	defer e.release()
	if req.K < 1 {
		return badRequest("k must be at least 1, got %d", req.K)
	}
	if len(req.Point) != ix.Dim() {
		return badRequest("query point has %d dims, index %q has %d", len(req.Point), req.Index, ix.Dim())
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	nbs, err := ix.NearestNeighbors(ann.Point(req.Point), int(req.K))
	if err != nil {
		return err
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.KNNReply{Neighbors: toWireNeighbors(nbs)})
}

func (s *Server) handleBatchKNN(ctx context.Context, hdr wire.RequestHeader, req *wire.BatchKNNReq, w *connWriter) error {
	e, ix, err := s.catalog.acquire(req.Index)
	if err != nil {
		return err
	}
	defer e.release()
	if req.K < 1 {
		return badRequest("k must be at least 1, got %d", req.K)
	}
	for i, p := range req.Points {
		if len(p) != ix.Dim() {
			return badRequest("query point %d has %d dims, index %q has %d", i, len(p), req.Index, ix.Dim())
		}
	}
	results := make([]wire.Result, len(req.Points))
	for i, p := range req.Points {
		// Deadlines hold between probes: a huge batch cannot overstay.
		if err := ctx.Err(); err != nil {
			return err
		}
		nbs, err := ix.NearestNeighbors(ann.Point(p), int(req.K))
		if err != nil {
			return err
		}
		results[i] = wire.Result{ID: uint64(i), Point: p, Neighbors: toWireNeighbors(nbs)}
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.BatchKNNReply{Results: results})
}

func (s *Server) handleRange(ctx context.Context, hdr wire.RequestHeader, req *wire.RangeReq, w *connWriter) error {
	e, ix, err := s.catalog.acquire(req.Index)
	if err != nil {
		return err
	}
	defer e.release()
	if len(req.Lo) != ix.Dim() || len(req.Hi) != ix.Dim() {
		return badRequest("box dims (%d, %d) do not match index %q dim %d", len(req.Lo), len(req.Hi), req.Index, ix.Dim())
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ids, err := ix.RangeSearch(ann.Point(req.Lo), ann.Point(req.Hi))
	if err != nil {
		return err
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.RangeReply{IDs: ids})
}

// handleRangePoints is the coordinate-bearing variant of handleRange,
// serving the boundary-strip fetches a router's distributed
// within-distance evaluation issues: the router needs the points
// themselves to compute exact cross-shard distances.
func (s *Server) handleRangePoints(ctx context.Context, hdr wire.RequestHeader, req *wire.RangePointsReq, w *connWriter) error {
	e, ix, err := s.catalog.acquire(req.Index)
	if err != nil {
		return err
	}
	defer e.release()
	if len(req.Lo) != ix.Dim() || len(req.Hi) != ix.Dim() {
		return badRequest("box dims (%d, %d) do not match index %q dim %d", len(req.Lo), len(req.Hi), req.Index, ix.Dim())
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ids, pts, err := ix.RangeSearchWithPoints(ann.Point(req.Lo), ann.Point(req.Hi))
	if err != nil {
		return err
	}
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.RangePointsReply{IDs: ids, Points: out})
}

// --- join ops ---------------------------------------------------------------

// acquirePair read-locks the R and S indexes of a two-index op. When
// both names are equal the entry is locked once — acquiring the same
// RWMutex twice from one goroutine can deadlock against a pending
// Close.
func (s *Server) acquirePair(rName, sName string) (rix, six *ann.Index, release func(), err error) {
	re, rix, err := s.catalog.acquire(rName)
	if err != nil {
		return nil, nil, nil, err
	}
	if sName == rName {
		return rix, rix, re.release, nil
	}
	se, six, err := s.catalog.acquire(sName)
	if err != nil {
		re.release()
		return nil, nil, nil, err
	}
	return rix, six, func() { se.release(); re.release() }, nil
}

// queryConfig is the QueryConfig served joins run under: ordered emit
// (so served results are byte-identical to direct library calls), the
// full QueryReport captured into rc (for wire reports and the
// slow-query log), and, when the server has a registry, engine counters
// folded into it.
func (s *Server) queryConfig(rc *reqCtx) ann.QueryConfig {
	var cfg ann.QueryConfig
	metrics := s.cfg.Metrics
	cfg.OnReport = func(rep ann.QueryReport) {
		if metrics != nil {
			rep.Engine.AddTo(metrics)
		}
		rc.report = &rep
	}
	return cfg
}

func (s *Server) handleJoin(ctx context.Context, rc *reqCtx, hdr wire.RequestHeader, req *wire.JoinReq, w *connWriter) error {
	if req.K < 1 {
		return badRequest("k must be at least 1, got %d", req.K)
	}
	sName := req.S
	if req.Self {
		sName = req.R
	}
	rix, six, release, err := s.acquirePair(req.R, sName)
	if err != nil {
		return err
	}
	defer release()
	if rix.Dim() != six.Dim() {
		return badRequest("indexes %q (dim %d) and %q (dim %d) do not join", req.R, rix.Dim(), req.S, six.Dim())
	}

	frame := wire.JoinFrame{Results: make([]wire.Result, 0, joinFrameResults)}
	var total uint64
	flush := func() error {
		if len(frame.Results) == 0 {
			return nil
		}
		err := w.send(hdr.ID, wire.KindStream, hdr.Op, &frame)
		frame.Results = frame.Results[:0]
		return err
	}
	emit := func(res ann.Result) error {
		total++
		frame.Results = append(frame.Results, wire.Result{
			ID:        res.ID,
			Point:     res.Point,
			Neighbors: toWireNeighbors(res.Neighbors),
		})
		if len(frame.Results) >= joinFrameResults {
			return flush()
		}
		return nil
	}

	cfg := s.queryConfig(rc)
	cfg.Epsilon = hdr.Epsilon
	cfg.RecallTarget = hdr.RecallTarget
	// Engine time excludes the frame flushes the emit callback triggers
	// mid-run, keeping the report's engine/flush split disjoint.
	flushBefore := rc.flushNs
	engineStart := time.Now()
	if req.Self {
		err = ann.StreamSelfAllKNearestNeighborsContext(ctx, rix, int(req.K), cfg, emit)
	} else {
		err = ann.StreamAllKNearestNeighborsContext(ctx, rix, six, int(req.K), cfg, emit)
	}
	rc.engineNs = time.Since(engineStart).Nanoseconds() - (rc.flushNs - flushBefore)
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	end := &wire.StreamEnd{Count: total}
	if hdr.WantReport {
		end.Report = rc.wireReport()
	}
	return w.send(hdr.ID, wire.KindEnd, hdr.Op, end)
}

func (s *Server) handleWithin(ctx context.Context, hdr wire.RequestHeader, req *wire.WithinReq, w *connWriter) error {
	if !(req.Dist >= 0) {
		return badRequest("distance must be non-negative, got %v", req.Dist)
	}
	rix, six, release, err := s.acquirePair(req.R, req.S)
	if err != nil {
		return err
	}
	defer release()
	if rix.Dim() != six.Dim() {
		return badRequest("indexes %q (dim %d) and %q (dim %d) do not join", req.R, rix.Dim(), req.S, six.Dim())
	}

	frame := wire.PairFrame{Pairs: make([]wire.Pair, 0, pairFrameCount)}
	var total uint64
	flush := func() error {
		if len(frame.Pairs) == 0 {
			return nil
		}
		err := w.send(hdr.ID, wire.KindStream, hdr.Op, &frame)
		frame.Pairs = frame.Pairs[:0]
		return err
	}
	err = ann.WithinDistanceContext(ctx, rix, six, req.Dist, req.ExcludeSelf, func(rID, sID uint64, dist float64) error {
		total++
		frame.Pairs = append(frame.Pairs, wire.Pair{R: rID, S: sID, Dist: dist})
		if len(frame.Pairs) >= pairFrameCount {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	return w.send(hdr.ID, wire.KindEnd, hdr.Op, &wire.StreamEnd{Count: total})
}

func (s *Server) handlePairs(ctx context.Context, hdr wire.RequestHeader, req *wire.PairsReq, w *connWriter) error {
	if req.K < 1 {
		return badRequest("k must be at least 1, got %d", req.K)
	}
	rix, six, release, err := s.acquirePair(req.R, req.S)
	if err != nil {
		return err
	}
	defer release()
	if rix.Dim() != six.Dim() {
		return badRequest("indexes %q (dim %d) and %q (dim %d) do not join", req.R, rix.Dim(), req.S, six.Dim())
	}
	pairs, err := ann.ClosestPairsContext(ctx, rix, six, int(req.K), req.ExcludeSelf)
	if err != nil {
		return err
	}
	out := make([]wire.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = wire.Pair{R: p.R, S: p.S, Dist: p.Dist}
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.PairsReply{Pairs: out})
}

// toWireNeighbors converts library neighbors to their wire form.
func toWireNeighbors(nbs []ann.Neighbor) []wire.Neighbor {
	out := make([]wire.Neighbor, len(nbs))
	for i, n := range nbs {
		out[i] = wire.Neighbor{ID: n.ID, Dist: n.Dist, Point: n.Point}
	}
	return out
}
