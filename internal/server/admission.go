package server

import (
	"context"
	"sync/atomic"

	"allnn/internal/wire"
)

// admission is the server's two-stage admission controller: up to
// maxInFlight requests execute concurrently, up to maxQueue more wait
// for a slot (respecting their deadlines), and everything beyond that
// is rejected immediately with SERVER_BUSY. The queue bound is exact —
// an Add-then-revert on an atomic counter, not a racy read — so the
// busy error fires at precisely the configured depth.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire blocks until a slot is free, the queue is full, or ctx ends.
// It returns a typed *wire.Error on rejection.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return &wire.Error{Code: wire.CodeServerBusy, Msg: "admission queue full"}
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		if ctx.Err() == context.Canceled {
			return &wire.Error{Code: wire.CodeShuttingDown, Msg: "request abandoned while queued"}
		}
		return &wire.Error{Code: wire.CodeDeadlineExceeded, Msg: "deadline expired while queued for admission"}
	}
}

// release frees the slot taken by a successful acquire.
func (a *admission) release() { <-a.slots }

// inFlight returns the number of occupied slots.
func (a *admission) inFlight() int64 { return int64(len(a.slots)) }

// queueDepth returns the number of requests waiting for a slot.
func (a *admission) queueDepth() int64 { return a.queued.Load() }
