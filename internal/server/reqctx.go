package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"allnn/ann"
	"allnn/internal/obs"
	"allnn/internal/wire"
)

// Request stages, readable by the /debug/requests handler while the
// owning goroutine advances them.
const (
	stageDecode int32 = iota
	stageQueued
	stageRunning
)

func stageName(st int32) string {
	switch st {
	case stageDecode:
		return "decode"
	case stageQueued:
		return "queued"
	case stageRunning:
		return "running"
	default:
		return "unknown"
	}
}

// reqCtx is the server-side record of one in-flight request. The
// immutable identity fields are set before the context enters the
// in-flight table; stage and admissionWaitNs are atomics because the
// debug handlers read them cross-goroutine; everything else is owned by
// the connection goroutine and only read after the request leaves the
// table (finish).
type reqCtx struct {
	seq     uint64 // server-wide sequence, the in-flight table key
	id      uint64 // wire request id (client-chosen, per connection)
	op      wire.Op
	index   string // index label ("r" or "r+s" for joins), may be empty
	traceID string
	remote  string
	start   time.Time

	wantReport bool

	stage           atomic.Int32
	admissionWaitNs atomic.Int64

	// Owned by the connection goroutine.
	bytesIn  uint64
	bytesOut uint64
	flushNs  int64
	engineNs int64
	report   *ann.QueryReport // captured by OnReport when the op ran the engine
}

// requestIndexLabel names the index (or index pair) a request targets,
// for per-index metrics and the slow-query log. Catalog-wide ops have
// no label.
func requestIndexLabel(body wire.Message) string {
	switch req := body.(type) {
	case *wire.OpenReq:
		return req.Name
	case *wire.CloseReq:
		return req.Name
	case *wire.StatsReq:
		return req.Name
	case *wire.KNNReq:
		return req.Index
	case *wire.BatchKNNReq:
		return req.Index
	case *wire.RangeReq:
		return req.Index
	case *wire.JoinReq:
		if req.Self || req.S == req.R || req.S == "" {
			return req.R
		}
		return req.R + "+" + req.S
	case *wire.WithinReq:
		if req.S == req.R {
			return req.R
		}
		return req.R + "+" + req.S
	case *wire.PairsReq:
		if req.S == req.R {
			return req.R
		}
		return req.R + "+" + req.S
	default:
		return ""
	}
}

// wireReport flattens the captured engine report plus the service-side
// costs into the wire form attached to a StreamEnd.
func (rc *reqCtx) wireReport() *wire.Report {
	out := &wire.Report{
		TraceID:         rc.traceID,
		AdmissionWaitNs: rc.admissionWaitNs.Load(),
		EngineNs:        rc.engineNs,
		FlushNs:         rc.flushNs,
		BytesIn:         rc.bytesIn,
		BytesOut:        rc.bytesOut,
	}
	if rep := rc.report; rep != nil {
		out.EngineDistanceCalcs = rep.Engine.DistanceCalcs
		out.EngineLPQsCreated = rep.Engine.LPQsCreated
		out.EngineEnqueued = rep.Engine.Enqueued
		out.EnginePrunedOnProbe = rep.Engine.PrunedOnProbe
		out.EnginePrunedByFilter = rep.Engine.PrunedByFilter
		out.EngineNodesExpandedR = rep.Engine.NodesExpandedR
		out.EngineNodesExpandedS = rep.Engine.NodesExpandedS
		out.EngineResults = rep.Engine.Results
		out.EngineNodeCacheHits = rep.Engine.NodeCacheHits
		out.EngineNodeCacheMisses = rep.Engine.NodeCacheMisses
		out.EnginePrunedSubtrees = rep.Engine.PrunedSubtrees
		out.EnginePrunedEntries = rep.Engine.PrunedEntries
		out.EngineLPQEarlyTerms = rep.Engine.LPQEarlyTerms

		out.PoolHits = rep.Pool.Hits
		out.PoolMisses = rep.Pool.Misses
		out.PoolReads = rep.Pool.Reads
		out.PoolWrites = rep.Pool.Writes
		out.PoolEvictions = rep.Pool.Evictions
		out.PoolRetries = rep.Pool.Retries
		out.PoolCorruptPages = rep.Pool.CorruptPages

		out.CacheHits = rep.Cache.Hits
		out.CacheMisses = rep.Cache.Misses
		out.CacheEvictions = rep.Cache.Evictions
		out.CacheInvalidations = rep.Cache.Invalidations
		out.CacheEntries = int64(rep.CacheResidency.Entries)
		out.CacheBytes = rep.CacheResidency.Bytes

		out.WallNs = rep.Timings.Wall.Nanoseconds()
		out.SetupNs = rep.Timings.Setup.Nanoseconds()
		out.SeedNs = rep.Timings.Seed.Nanoseconds()
		out.FrontierNs = rep.Timings.Frontier.Nanoseconds()
		out.TraverseNs = rep.Timings.Traverse.Nanoseconds()
		out.ExpandNs = rep.Timings.Expand.Nanoseconds()
		out.FilterNs = rep.Timings.Filter.Nanoseconds()
		out.GatherNs = rep.Timings.Gather.Nanoseconds()

		out.SchedTasks = rep.Sched.Tasks
		out.SchedSteals = rep.Sched.Steals
		out.SchedSplits = rep.Sched.Splits
		out.SchedKernelBlocks = rep.Sched.KernelBlocks
		out.SchedKernelPairs = rep.Sched.KernelPairs
		out.SchedKernelEarlyOuts = rep.Sched.KernelEarlyOuts
	}
	return out
}

// SlowQuery is one slow-query log entry, JSON-shaped for /debug/slow
// and the access log.
type SlowQuery struct {
	Time            time.Time `json:"time"`
	Seq             uint64    `json:"seq"`
	ReqID           uint64    `json:"req_id"`
	TraceID         string    `json:"trace_id,omitempty"`
	Op              string    `json:"op"`
	Index           string    `json:"index,omitempty"`
	Remote          string    `json:"remote,omitempty"`
	Code            string    `json:"code,omitempty"` // error code, absent on success
	LatencyNs       int64     `json:"latency_ns"`
	AdmissionWaitNs int64     `json:"admission_wait_ns"`
	EngineNs        int64     `json:"engine_ns"`
	FlushNs         int64     `json:"flush_ns"`
	BytesIn         uint64    `json:"bytes_in"`
	BytesOut        uint64    `json:"bytes_out"`
	// Engine report summary (zero when the op never ran the engine).
	DistanceCalcs uint64 `json:"distance_calcs,omitempty"`
	PoolMisses    uint64 `json:"pool_misses,omitempty"`
	Results       uint64 `json:"results,omitempty"`
}

// record builds the log entry for a finished request.
func (rc *reqCtx) record(now time.Time, code string) SlowQuery {
	e := SlowQuery{
		Time:            now,
		Seq:             rc.seq,
		ReqID:           rc.id,
		TraceID:         rc.traceID,
		Op:              rc.op.String(),
		Index:           rc.index,
		Remote:          rc.remote,
		Code:            code,
		LatencyNs:       now.Sub(rc.start).Nanoseconds(),
		AdmissionWaitNs: rc.admissionWaitNs.Load(),
		EngineNs:        rc.engineNs,
		FlushNs:         rc.flushNs,
		BytesIn:         rc.bytesIn,
		BytesOut:        rc.bytesOut,
	}
	if rep := rc.report; rep != nil {
		e.DistanceCalcs = rep.Engine.DistanceCalcs
		e.PoolMisses = rep.Pool.Misses
		e.Results = rep.Engine.Results
	}
	return e
}

// slowLog is a bounded ring of the most recent over-threshold requests.
type slowLog struct {
	mu      sync.Mutex
	entries []SlowQuery // ring storage
	next    int         // next write position
	total   uint64      // entries ever recorded (ring may have dropped some)
}

func newSlowLog(capacity int) *slowLog {
	if capacity < 1 {
		capacity = 128
	}
	return &slowLog{entries: make([]SlowQuery, 0, capacity)}
}

func (l *slowLog) add(e SlowQuery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.entries) < cap(l.entries) {
		l.entries = append(l.entries, e)
		l.next = len(l.entries) % cap(l.entries)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % cap(l.entries)
}

// snapshot returns the retained entries, newest first.
func (l *slowLog) snapshot() (entries []SlowQuery, total uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.entries))
	for i := 1; i <= len(l.entries); i++ {
		out = append(out, l.entries[(l.next-i+len(l.entries))%len(l.entries)])
	}
	return out, l.total
}

// InFlightRequest is one /debug/requests row.
type InFlightRequest struct {
	Seq             uint64 `json:"seq"`
	ReqID           uint64 `json:"req_id"`
	TraceID         string `json:"trace_id,omitempty"`
	Op              string `json:"op"`
	Index           string `json:"index,omitempty"`
	Remote          string `json:"remote,omitempty"`
	Stage           string `json:"stage"`
	ElapsedNs       int64  `json:"elapsed_ns"`
	AdmissionWaitNs int64  `json:"admission_wait_ns,omitempty"`
}

// trackRequest inserts rc into the in-flight table under a fresh
// sequence number.
func (s *Server) trackRequest(rc *reqCtx) {
	rc.seq = s.reqSeq.Add(1)
	s.inflightMu.Lock()
	s.inflight[rc.seq] = rc
	s.inflightMu.Unlock()
}

func (s *Server) untrackRequest(rc *reqCtx) {
	s.inflightMu.Lock()
	delete(s.inflight, rc.seq)
	s.inflightMu.Unlock()
}

// inFlightSnapshot lists the live requests, oldest first.
func (s *Server) inFlightSnapshot() []InFlightRequest {
	now := time.Now()
	s.inflightMu.Lock()
	out := make([]InFlightRequest, 0, len(s.inflight))
	for _, rc := range s.inflight {
		out = append(out, InFlightRequest{
			Seq:             rc.seq,
			ReqID:           rc.id,
			TraceID:         rc.traceID,
			Op:              rc.op.String(),
			Index:           rc.index,
			Remote:          rc.remote,
			Stage:           stageName(rc.stage.Load()),
			ElapsedNs:       now.Sub(rc.start).Nanoseconds(),
			AdmissionWaitNs: rc.admissionWaitNs.Load(),
		})
	}
	s.inflightMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// DebugRoutes returns the server's live-inspection endpoints for the
// obs debug mux: /debug/slow (the slow-query ring) and /debug/requests
// (the in-flight table).
func (s *Server) DebugRoutes() []obs.Route {
	return []obs.Route{
		{Pattern: "/debug/slow", Handler: http.HandlerFunc(s.serveSlow)},
		{Pattern: "/debug/requests", Handler: http.HandlerFunc(s.serveRequests)},
	}
}

func (s *Server) serveSlow(w http.ResponseWriter, _ *http.Request) {
	entries, total := s.slow.snapshot()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		ThresholdNs int64       `json:"threshold_ns"`
		Capacity    int         `json:"capacity"`
		Total       uint64      `json:"total"`
		Entries     []SlowQuery `json:"entries"`
	}{s.cfg.SlowThreshold.Nanoseconds(), cap(s.slow.entries), total, entries})
}

func (s *Server) serveRequests(w http.ResponseWriter, _ *http.Request) {
	reqs := s.inFlightSnapshot()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Count    int               `json:"count"`
		Requests []InFlightRequest `json:"requests"`
	}{len(reqs), reqs})
}
