package server

import (
	"context"
	"testing"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/wire"
)

// TestServedMutations drives the insert/delete wire ops end to end:
// writes through the client change what subsequent served queries see,
// and error classification matches the client helpers.
func TestServedMutations(t *testing.T) {
	pts := randomPoints(110, 200, 2)
	ix := buildIndex(t, pts, ann.MBRQT)
	srv, cl, _ := startServer(t, Config{})
	if err := srv.Catalog().Add("pts", ix); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Insert a far-corner point and find it as its own nearest neighbor.
	target := ann.Point{99.5, 99.5}
	size, err := cl.Insert(ctx, "pts", []uint64{9000}, []ann.Point{target})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if size != uint64(len(pts))+1 {
		t.Fatalf("insert reported size %d, want %d", size, len(pts)+1)
	}
	nb, err := cl.KNN(ctx, "pts", target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 1 || nb[0].ID != 9000 {
		t.Fatalf("post-insert NN = %v, want id 9000", nb)
	}

	// Delete it again; a second delete finds nothing.
	found, size, err := cl.Delete(ctx, "pts", []uint64{9000}, []ann.Point{target})
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if found != 1 || size != uint64(len(pts)) {
		t.Fatalf("delete reported found=%d size=%d", found, size)
	}
	if found, _, err = cl.Delete(ctx, "pts", []uint64{9000}, []ann.Point{target}); err != nil || found != 0 {
		t.Fatalf("re-delete: found=%d err=%v", found, err)
	}

	// Validation failures surface as BAD_REQUEST before anything is
	// logged or applied.
	if _, err := cl.Insert(ctx, "pts", []uint64{1}, []ann.Point{{1, 2, 3}}); !client.IsBadRequest(err) {
		t.Fatalf("dim-mismatch insert: %v, want BAD_REQUEST", err)
	}
	if _, err := cl.Insert(ctx, "pts", []uint64{1, 2}, []ann.Point{{1, 2}}); !client.IsBadRequest(err) {
		t.Fatalf("id/point count mismatch: %v, want BAD_REQUEST", err)
	}
	if _, err := cl.Insert(ctx, "nope", []uint64{1}, []ann.Point{{1, 2}}); !client.IsNotFound(err) {
		t.Fatalf("unknown index: %v, want NOT_FOUND", err)
	}

	// The WRITE_FAILED classification helper matches the wire code.
	if !client.IsWriteFailed(&wire.Error{Code: wire.CodeWriteFailed}) {
		t.Fatal("IsWriteFailed must match CodeWriteFailed")
	}
	if client.IsWriteFailed(&wire.Error{Code: wire.CodeBadRequest}) {
		t.Fatal("IsWriteFailed must not match other codes")
	}
}
