package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"allnn/ann"
	"allnn/internal/storage"
	"allnn/internal/wire"
)

// ErrIndexNotFound is returned for catalog names with no open index.
var ErrIndexNotFound = errors.New("server: index not found")

// Catalog is the server's set of named, concurrently-shared index
// handles. Queries hold a per-entry read lock for their duration;
// Close takes the write lock, so an index is only ever closed once the
// last query over it has finished — the invariant that makes
// ann.Index.Close safe under a live query mix.
type Catalog struct {
	mu      sync.Mutex
	entries map[string]*catalogEntry
}

type catalogEntry struct {
	// mu guards the index against Close: every query holds RLock while
	// it runs; Close holds Lock while closing.
	mu     sync.RWMutex
	ix     *ann.Index
	closed bool
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: make(map[string]*catalogEntry)}
}

// Add adopts an already-built index under name. The catalog owns the
// index from here on: it is closed by Catalog.Close or CloseAll.
func (c *Catalog) Add(name string, ix *ann.Index) error {
	if name == "" {
		return errors.New("server: index name must not be empty")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok {
		return fmt.Errorf("server: index %q already open", name)
	}
	c.entries[name] = &catalogEntry{ix: ix}
	return nil
}

// Open opens the index file at path (see ann.OpenIndex) and adds it
// under name.
func (c *Catalog) Open(name, path string, cfg ann.IndexConfig) (*ann.Index, error) {
	// Reserve the name before the (slow) open so two concurrent opens
	// of the same name cannot both succeed.
	if name == "" {
		return nil, errors.New("server: index name must not be empty")
	}
	c.mu.Lock()
	if _, ok := c.entries[name]; ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("server: index %q already open", name)
	}
	placeholder := &catalogEntry{}
	placeholder.mu.Lock() // held until the open resolves
	c.entries[name] = placeholder
	c.mu.Unlock()

	ix, err := ann.OpenIndex(path, cfg)
	if err != nil {
		c.mu.Lock()
		delete(c.entries, name)
		c.mu.Unlock()
		placeholder.closed = true
		placeholder.mu.Unlock()
		return nil, err
	}
	placeholder.ix = ix
	placeholder.mu.Unlock()
	return ix, nil
}

// acquire returns the named index with its entry read-locked; the
// caller must call release exactly once when the query finishes.
func (c *Catalog) acquire(name string) (*catalogEntry, *ann.Index, error) {
	c.mu.Lock()
	e, ok := c.entries[name]
	c.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrIndexNotFound, name)
	}
	e.mu.RLock()
	if e.closed || e.ix == nil {
		e.mu.RUnlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrIndexNotFound, name)
	}
	return e, e.ix, nil
}

func (e *catalogEntry) release() { e.mu.RUnlock() }

// Close removes the named index from the catalog and closes it once
// every in-flight query over it has finished.
func (c *Catalog) Close(name string) error {
	c.mu.Lock()
	e, ok := c.entries[name]
	delete(c.entries, name)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrIndexNotFound, name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("%w: %q", ErrIndexNotFound, name)
	}
	e.closed = true
	return e.ix.Close()
}

// List returns one wire.IndexInfo per open index, sorted by name.
func (c *Catalog) List() []wire.IndexInfo {
	c.mu.Lock()
	names := make([]string, 0, len(c.entries))
	for name := range c.entries {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	out := make([]wire.IndexInfo, 0, len(names))
	for _, name := range names {
		e, ix, err := c.acquire(name)
		if err != nil {
			continue // closed between the snapshot and now
		}
		out = append(out, wire.IndexInfo{
			Name:   name,
			Kind:   uint8(ix.Kind()),
			Points: uint64(ix.Len()),
			Dim:    uint32(ix.Dim()),
		})
		e.release()
	}
	return out
}

// CloseAll closes every index, returning the first error.
func (c *Catalog) CloseAll() error {
	c.mu.Lock()
	entries := c.entries
	c.entries = make(map[string]*catalogEntry)
	c.mu.Unlock()
	var first error
	for _, e := range entries {
		e.mu.Lock()
		if !e.closed {
			e.closed = true
			if err := e.ix.Close(); err != nil && first == nil {
				first = err
			}
		}
		e.mu.Unlock()
	}
	return first
}

// RequireNoPinnedFrames asserts, for every open index, that no buffer
// frames are pinned — the leak check concurrency tests run between
// workload phases.
func (c *Catalog) RequireNoPinnedFrames(t storage.TB) {
	c.mu.Lock()
	entries := make([]*catalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	for _, e := range entries {
		e.mu.RLock()
		if !e.closed && e.ix != nil {
			e.ix.RequireNoPinnedFrames(t)
		}
		e.mu.RUnlock()
	}
}
