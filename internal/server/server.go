// Package server implements annserve: a TCP query service over a
// catalog of ann indexes. It speaks the internal/wire protocol and
// reuses the engine's production plumbing end to end — per-request
// context cancellation, obs metrics and trace spans, checksummed
// storage — adding the serving-side concerns: admission control,
// per-connection panic isolation, and graceful drain.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"allnn/ann"
	"allnn/internal/obs"
	"allnn/internal/wire"
)

// tidServer is the trace lane for request spans, above the engine's
// worker (1..) and storage (1000..) lanes.
const tidServer = 2000

// handshakeTimeout bounds how long a fresh connection may take to send
// its preamble before the server gives up on it.
const handshakeTimeout = 10 * time.Second

// Config parameterises a Server. The zero value is usable.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (not catalog
	// ops). Zero selects GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot; beyond it
	// requests fail fast with SERVER_BUSY. Zero selects 4×MaxInFlight.
	// Negative disables queueing entirely.
	MaxQueue int
	// IndexBufferBytes is the buffer-pool budget for indexes opened via
	// the catalog OpOpen request (see ann.IndexConfig.BufferPoolBytes).
	IndexBufferBytes int
	// Metrics, when non-nil, receives the server.* metric families and
	// the engine.* counters of served joins.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one span per request on the
	// server lane.
	Tracer *obs.Tracer
	// Logf, when non-nil, receives the server's structured key=value
	// log lines (see Server.log) — one line per call, no trailing
	// newline expected from the sink.
	Logf func(format string, args ...any)
	// LogLevel is the minimum severity Logf receives. The zero value
	// (LevelDebug) emits everything.
	LogLevel LogLevel
	// SlowThreshold, when positive, is the latency at or above which a
	// finished request enters the slow-query ring (served at
	// /debug/slow) and is logged at warn level. Zero disables the ring.
	SlowThreshold time.Duration
	// SlowLogSize is the slow-query ring capacity (default 128).
	SlowLogSize int
	// AccessLog, when non-nil, receives one JSON line per finished
	// request (the SlowQuery shape). Writes are serialised by the
	// server.
	AccessLog io.Writer
}

// Server owns a catalog and serves the wire protocol over any number
// of listeners (in practice one).
type Server struct {
	cfg     Config
	catalog *Catalog
	admit   *admission

	// baseCtx is the parent of every request context; cancelling it
	// (forced shutdown) aborts in-flight queries through the engine's
	// cancellation machinery.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu            sync.Mutex
	listeners     map[net.Listener]struct{}
	conns         map[net.Conn]struct{}
	activeReqs    int
	draining      bool
	drained       chan struct{}
	drainedClosed bool

	connWG sync.WaitGroup

	// In-flight request table behind /debug/requests, keyed by a
	// server-wide sequence number (its own mutex: debug scrapes must
	// not contend with the connection/drain lock).
	inflightMu sync.Mutex
	inflight   map[uint64]*reqCtx
	reqSeq     atomic.Uint64

	// slow is the bounded ring behind /debug/slow.
	slow *slowLog

	// accessMu serialises JSONL access-log writes.
	accessMu sync.Mutex

	// server.* metrics (nil-safe: a nil Registry hands out working
	// no-op instruments).
	requests  *obs.Counter
	errors    *obs.Counter
	rejected  *obs.Counter
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
	latencies map[wire.Op]*obs.Histogram

	// testHook, when set (tests only), runs at the top of dispatch.
	testHook func(wire.RequestHeader)
}

// New creates a Server with an empty catalog.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	s := &Server{
		cfg:       cfg,
		catalog:   NewCatalog(),
		admit:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		drained:   make(chan struct{}),
		inflight:  make(map[uint64]*reqCtx),
		slow:      newSlowLog(cfg.SlowLogSize),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())

	reg := cfg.Metrics
	s.requests = reg.Counter("server.requests")
	s.errors = reg.Counter("server.errors")
	s.rejected = reg.Counter("server.rejected")
	s.bytesIn = reg.Counter("server.bytes_in")
	s.bytesOut = reg.Counter("server.bytes_out")
	reg.GaugeFunc("server.inflight", s.admit.inFlight)
	reg.GaugeFunc("server.queue_depth", s.admit.queueDepth)
	reg.GaugeFunc("server.connections", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	})
	s.latencies = make(map[wire.Op]*obs.Histogram)
	for _, op := range []wire.Op{
		wire.OpOpen, wire.OpClose, wire.OpList, wire.OpStats,
		wire.OpKNN, wire.OpBatchKNN, wire.OpRange, wire.OpRangePoints,
		wire.OpJoin, wire.OpWithinDistance, wire.OpClosestPairs,
	} {
		s.latencies[op] = reg.Histogram("server."+op.String()+".latency_ns", obs.LatencyBuckets())
	}
	return s
}

// Catalog returns the server's index catalog, for preloading indexes
// in-process before (or while) serving.
func (s *Server) Catalog() *Catalog { return s.catalog }

// Serve accepts connections on ln until the listener fails or the
// server drains. It returns nil on a drain-initiated stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn owns one connection: handshake, then a sequential
// request/response loop. A panic below it poisons only this
// connection.
func (s *Server) handleConn(conn net.Conn) {
	remote := conn.RemoteAddr().String()
	defer s.connWG.Done()
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			s.log(LevelError, "connection panic", "conn", remote, "panic", r, "stack", string(buf))
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	if err := wire.ReadHandshake(conn); err != nil {
		s.log(LevelWarn, "handshake failed", "conn", remote, "err", err)
		return
	}
	conn.SetReadDeadline(time.Time{})

	br := bufio.NewReader(conn)
	w := &connWriter{bw: bufio.NewWriter(conn), out: s.bytesOut}
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.log(LevelWarn, "read failed", "conn", remote, "err", err)
			}
			return
		}
		s.bytesIn.Add(uint64(4 + len(payload)))
		if !s.serveRequest(w, remote, payload) {
			return
		}
	}
}

// serveRequest decodes and dispatches one request, writing its
// response frame(s). It reports whether the connection is still usable.
func (s *Server) serveRequest(w *connWriter, remote string, payload []byte) bool {
	hdr, body, err := wire.DecodeRequest(payload)
	if err != nil {
		// The header might not have parsed, but its fixed-width prefix
		// decodes something for the id either way; echoing it back is
		// best-effort before giving up on the stream's framing.
		s.log(LevelWarn, "bad request frame", "conn", remote, "req", hdr.ID, "err", err)
		w.sendError(hdr.ID, hdr.Op, &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}

	if !s.beginRequest() {
		w.sendError(hdr.ID, hdr.Op, &wire.Error{Code: wire.CodeShuttingDown, Msg: "server is draining"})
		return true
	}
	defer s.endRequest()

	rc := &reqCtx{
		id:         hdr.ID,
		op:         hdr.Op,
		index:      requestIndexLabel(body),
		traceID:    hdr.TraceID,
		remote:     remote,
		start:      time.Now(),
		wantReport: hdr.WantReport,
		bytesIn:    uint64(4 + len(payload)),
	}
	s.trackRequest(rc)
	w.req = rc
	var code string // terminal error code name; empty on success
	defer func() {
		w.req = nil
		s.untrackRequest(rc)
		s.finishRequest(rc, code)
	}()

	s.requests.Inc()
	var span obs.Span
	if s.cfg.Tracer != nil {
		span = s.cfg.Tracer.Begin("server."+hdr.Op.String(), tidServer)
		span.Arg("req", int64(hdr.ID))
		defer span.End()
	}

	ctx := s.baseCtx
	if hdr.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, hdr.Timeout)
		defer cancel()
	}

	if err := s.dispatch(ctx, rc, hdr, body, w); err != nil {
		s.errors.Inc()
		we := toWireError(err)
		code = we.Code.String()
		if we.Code == wire.CodeServerBusy {
			s.rejected.Inc()
		}
		s.cfg.Metrics.Counter("server.errors." + strings.ToLower(code)).Inc()
		s.log(LevelInfo, "request failed",
			"req", rc.id, "trace", rc.traceID, "op", rc.op, "index", rc.index,
			"conn", remote, "code", code, "err", we.Msg)
		w.sendError(hdr.ID, hdr.Op, we)
	}
	return true
}

// finishRequest records a finished request into the per-op and
// per-op×per-index latency histograms, the slow-query ring, and the
// access log. code is the terminal error code name, empty on success.
func (s *Server) finishRequest(rc *reqCtx, code string) {
	now := time.Now()
	lat := now.Sub(rc.start)
	s.latencies[rc.op].Observe(float64(lat.Nanoseconds()))
	if rc.index != "" && s.cfg.Metrics != nil {
		s.cfg.Metrics.
			Histogram("server."+rc.op.String()+"."+rc.index+".latency_ns", obs.LatencyBuckets()).
			Observe(float64(lat.Nanoseconds()))
	}
	slow := s.cfg.SlowThreshold > 0 && lat >= s.cfg.SlowThreshold
	if slow {
		s.slow.add(rc.record(now, code))
		s.log(LevelWarn, "slow query",
			"req", rc.id, "trace", rc.traceID, "op", rc.op, "index", rc.index,
			"latency_ns", lat.Nanoseconds(), "admission_wait_ns", rc.admissionWaitNs.Load(),
			"engine_ns", rc.engineNs, "flush_ns", rc.flushNs, "code", code)
	}
	if s.cfg.AccessLog != nil {
		line, err := json.Marshal(rc.record(now, code))
		if err == nil {
			s.accessMu.Lock()
			_, err = s.cfg.AccessLog.Write(append(line, '\n'))
			s.accessMu.Unlock()
		}
		if err != nil {
			s.log(LevelWarn, "access log write failed", "req", rc.id, "err", err)
		}
	}
}

// beginRequest registers an executing request unless the server is
// draining.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.activeReqs++
	return true
}

func (s *Server) endRequest() {
	s.mu.Lock()
	s.activeReqs--
	if s.draining && s.activeReqs == 0 && !s.drainedClosed {
		s.drainedClosed = true
		close(s.drained)
	}
	s.mu.Unlock()
}

// Shutdown gracefully drains the server: listeners stop accepting, new
// requests are refused with SHUTTING_DOWN, and in-flight requests run
// to completion. If ctx expires first, the remaining queries are
// cancelled through their request contexts and Shutdown returns
// ctx.Err() once connections are torn down. The catalog stays open —
// close it separately with Catalog().CloseAll().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: shutdown already in progress")
	}
	s.draining = true
	if s.activeReqs == 0 && !s.drainedClosed {
		s.drainedClosed = true
		close(s.drained)
	}
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()

	var err error
	select {
	case <-s.drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelBase() // abort in-flight queries
		<-s.drained    // cancellation unblocks them promptly
	}

	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.cancelBase()
	return err
}

// connWriter serialises response frames for one connection, reusing
// one encode buffer across frames. req points at the request currently
// being served (set by serveRequest) so frame bytes and flush time are
// attributed per request as well as to the server-wide counters.
type connWriter struct {
	bw  *bufio.Writer
	out *obs.Counter
	buf []byte
	req *reqCtx
}

// send encodes and writes one response frame and flushes it to the
// socket (streamed frames must reach the client as they are produced).
func (w *connWriter) send(id uint64, kind wire.ResponseKind, op wire.Op, body wire.Message) error {
	start := time.Now()
	payload, err := wire.EncodeResponse(id, kind, op, body, w.buf)
	if err != nil {
		return err
	}
	w.buf = payload // keep the grown storage for the next frame
	if err := wire.WriteFrame(w.bw, payload); err != nil {
		return err
	}
	w.out.Add(uint64(4 + len(payload)))
	err = w.bw.Flush()
	if w.req != nil {
		w.req.bytesOut += uint64(4 + len(payload))
		w.req.flushNs += time.Since(start).Nanoseconds()
	}
	return err
}

// sendError writes a KindError frame, best-effort.
func (w *connWriter) sendError(id uint64, op wire.Op, we *wire.Error) {
	body := &wire.ErrorReply{Code: we.Code, Msg: we.Msg}
	payload, err := wire.EncodeResponse(id, wire.KindError, op, body, w.buf)
	if err != nil {
		// The op may be unknown (undecodable request); force a generic
		// envelope the client can still map by request id.
		payload, err = wire.EncodeResponse(id, wire.KindError, wire.OpList, body, w.buf)
		if err != nil {
			return
		}
	}
	w.buf = payload
	if wire.WriteFrame(w.bw, payload) == nil {
		w.out.Add(uint64(4 + len(payload)))
		if w.req != nil {
			w.req.bytesOut += uint64(4 + len(payload))
		}
		w.bw.Flush()
	}
}

// toWireError maps an internal failure to its protocol error class.
func toWireError(err error) *wire.Error {
	var we *wire.Error
	switch {
	case errors.As(err, &we):
		return we
	case errors.Is(err, ErrIndexNotFound):
		return &wire.Error{Code: wire.CodeNotFound, Msg: err.Error()}
	case errors.Is(err, ann.ErrInvalidConfig):
		return &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
	case errors.Is(err, ann.ErrWriteFailed):
		return &wire.Error{Code: wire.CodeWriteFailed, Msg: err.Error()}
	case errors.Is(err, ann.ErrCorruptPage):
		return &wire.Error{Code: wire.CodeCorruptIndex, Msg: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &wire.Error{Code: wire.CodeDeadlineExceeded, Msg: "request deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &wire.Error{Code: wire.CodeShuttingDown, Msg: "request cancelled by server shutdown"}
	default:
		return &wire.Error{Code: wire.CodeInternal, Msg: err.Error()}
	}
}

// badRequest builds a BAD_REQUEST error.
func badRequest(format string, args ...any) *wire.Error {
	return &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf(format, args...)}
}
