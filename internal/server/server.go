// Package server implements annserve: a TCP query service over a
// catalog of ann indexes. It speaks the internal/wire protocol and
// reuses the engine's production plumbing end to end — per-request
// context cancellation, obs metrics and trace spans, checksummed
// storage — adding the serving-side concerns: admission control,
// per-connection panic isolation, and graceful drain.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"allnn/ann"
	"allnn/internal/obs"
	"allnn/internal/wire"
)

// tidServer is the trace lane for request spans, above the engine's
// worker (1..) and storage (1000..) lanes.
const tidServer = 2000

// handshakeTimeout bounds how long a fresh connection may take to send
// its preamble before the server gives up on it.
const handshakeTimeout = 10 * time.Second

// Config parameterises a Server. The zero value is usable.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (not catalog
	// ops). Zero selects GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot; beyond it
	// requests fail fast with SERVER_BUSY. Zero selects 4×MaxInFlight.
	// Negative disables queueing entirely.
	MaxQueue int
	// IndexBufferBytes is the buffer-pool budget for indexes opened via
	// the catalog OpOpen request (see ann.IndexConfig.BufferPoolBytes).
	IndexBufferBytes int
	// Metrics, when non-nil, receives the server.* metric families and
	// the engine.* counters of served joins.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one span per request on the
	// server lane.
	Tracer *obs.Tracer
	// Logf, when non-nil, receives connection-level incidents
	// (handshake failures, recovered panics).
	Logf func(format string, args ...any)
}

// Server owns a catalog and serves the wire protocol over any number
// of listeners (in practice one).
type Server struct {
	cfg     Config
	catalog *Catalog
	admit   *admission

	// baseCtx is the parent of every request context; cancelling it
	// (forced shutdown) aborts in-flight queries through the engine's
	// cancellation machinery.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu            sync.Mutex
	listeners     map[net.Listener]struct{}
	conns         map[net.Conn]struct{}
	activeReqs    int
	draining      bool
	drained       chan struct{}
	drainedClosed bool

	connWG sync.WaitGroup

	// server.* metrics (nil-safe: a nil Registry hands out working
	// no-op instruments).
	requests  *obs.Counter
	errors    *obs.Counter
	rejected  *obs.Counter
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
	latencies map[wire.Op]*obs.Histogram
}

// New creates a Server with an empty catalog.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	s := &Server{
		cfg:       cfg,
		catalog:   NewCatalog(),
		admit:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		drained:   make(chan struct{}),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())

	reg := cfg.Metrics
	s.requests = reg.Counter("server.requests")
	s.errors = reg.Counter("server.errors")
	s.rejected = reg.Counter("server.rejected")
	s.bytesIn = reg.Counter("server.bytes_in")
	s.bytesOut = reg.Counter("server.bytes_out")
	reg.GaugeFunc("server.inflight", s.admit.inFlight)
	reg.GaugeFunc("server.queue_depth", s.admit.queueDepth)
	reg.GaugeFunc("server.connections", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	})
	s.latencies = make(map[wire.Op]*obs.Histogram)
	for _, op := range []wire.Op{
		wire.OpOpen, wire.OpClose, wire.OpList, wire.OpStats,
		wire.OpKNN, wire.OpBatchKNN, wire.OpRange,
		wire.OpJoin, wire.OpWithinDistance, wire.OpClosestPairs,
	} {
		s.latencies[op] = reg.Histogram("server."+op.String()+".latency_ns", obs.LatencyBuckets())
	}
	return s
}

// Catalog returns the server's index catalog, for preloading indexes
// in-process before (or while) serving.
func (s *Server) Catalog() *Catalog { return s.catalog }

// logf reports a connection-level incident.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until the listener fails or the
// server drains. It returns nil on a drain-initiated stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn owns one connection: handshake, then a sequential
// request/response loop. A panic below it poisons only this
// connection.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			s.logf("server: connection %s: panic: %v\n%s", conn.RemoteAddr(), r, buf)
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	if err := wire.ReadHandshake(conn); err != nil {
		s.logf("server: connection %s: %v", conn.RemoteAddr(), err)
		return
	}
	conn.SetReadDeadline(time.Time{})

	br := bufio.NewReader(conn)
	w := &connWriter{bw: bufio.NewWriter(conn), out: s.bytesOut}
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("server: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.bytesIn.Add(uint64(4 + len(payload)))
		if !s.serveRequest(w, payload) {
			return
		}
	}
}

// serveRequest decodes and dispatches one request, writing its
// response frame(s). It reports whether the connection is still usable.
func (s *Server) serveRequest(w *connWriter, payload []byte) bool {
	hdr, body, err := wire.DecodeRequest(payload)
	if err != nil {
		// The header might not have parsed, but its fixed-width prefix
		// decodes something for the id either way; echoing it back is
		// best-effort before giving up on the stream's framing.
		w.sendError(hdr.ID, hdr.Op, &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}

	if !s.beginRequest() {
		w.sendError(hdr.ID, hdr.Op, &wire.Error{Code: wire.CodeShuttingDown, Msg: "server is draining"})
		return true
	}
	defer s.endRequest()

	s.requests.Inc()
	start := time.Now()
	defer func() {
		s.latencies[hdr.Op].Observe(float64(time.Since(start).Nanoseconds()))
	}()
	var span obs.Span
	if s.cfg.Tracer != nil {
		span = s.cfg.Tracer.Begin("server."+hdr.Op.String(), tidServer)
		span.Arg("req", int64(hdr.ID))
		defer span.End()
	}

	ctx := s.baseCtx
	if hdr.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, hdr.Timeout)
		defer cancel()
	}

	if err := s.dispatch(ctx, hdr, body, w); err != nil {
		s.errors.Inc()
		we := toWireError(err)
		if we.Code == wire.CodeServerBusy {
			s.rejected.Inc()
		}
		w.sendError(hdr.ID, hdr.Op, we)
	}
	return true
}

// beginRequest registers an executing request unless the server is
// draining.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.activeReqs++
	return true
}

func (s *Server) endRequest() {
	s.mu.Lock()
	s.activeReqs--
	if s.draining && s.activeReqs == 0 && !s.drainedClosed {
		s.drainedClosed = true
		close(s.drained)
	}
	s.mu.Unlock()
}

// Shutdown gracefully drains the server: listeners stop accepting, new
// requests are refused with SHUTTING_DOWN, and in-flight requests run
// to completion. If ctx expires first, the remaining queries are
// cancelled through their request contexts and Shutdown returns
// ctx.Err() once connections are torn down. The catalog stays open —
// close it separately with Catalog().CloseAll().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: shutdown already in progress")
	}
	s.draining = true
	if s.activeReqs == 0 && !s.drainedClosed {
		s.drainedClosed = true
		close(s.drained)
	}
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()

	var err error
	select {
	case <-s.drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelBase() // abort in-flight queries
		<-s.drained    // cancellation unblocks them promptly
	}

	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.cancelBase()
	return err
}

// connWriter serialises response frames for one connection, reusing
// one encode buffer across frames.
type connWriter struct {
	bw  *bufio.Writer
	out *obs.Counter
	buf []byte
}

// send encodes and writes one response frame and flushes it to the
// socket (streamed frames must reach the client as they are produced).
func (w *connWriter) send(id uint64, kind wire.ResponseKind, op wire.Op, body wire.Message) error {
	payload, err := wire.EncodeResponse(id, kind, op, body, w.buf)
	if err != nil {
		return err
	}
	w.buf = payload // keep the grown storage for the next frame
	if err := wire.WriteFrame(w.bw, payload); err != nil {
		return err
	}
	w.out.Add(uint64(4 + len(payload)))
	return w.bw.Flush()
}

// sendError writes a KindError frame, best-effort.
func (w *connWriter) sendError(id uint64, op wire.Op, we *wire.Error) {
	body := &wire.ErrorReply{Code: we.Code, Msg: we.Msg}
	payload, err := wire.EncodeResponse(id, wire.KindError, op, body, w.buf)
	if err != nil {
		// The op may be unknown (undecodable request); force a generic
		// envelope the client can still map by request id.
		payload, err = wire.EncodeResponse(id, wire.KindError, wire.OpList, body, w.buf)
		if err != nil {
			return
		}
	}
	w.buf = payload
	if wire.WriteFrame(w.bw, payload) == nil {
		w.out.Add(uint64(4 + len(payload)))
		w.bw.Flush()
	}
}

// toWireError maps an internal failure to its protocol error class.
func toWireError(err error) *wire.Error {
	var we *wire.Error
	switch {
	case errors.As(err, &we):
		return we
	case errors.Is(err, ErrIndexNotFound):
		return &wire.Error{Code: wire.CodeNotFound, Msg: err.Error()}
	case errors.Is(err, ann.ErrInvalidConfig):
		return &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &wire.Error{Code: wire.CodeDeadlineExceeded, Msg: "request deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &wire.Error{Code: wire.CodeShuttingDown, Msg: "request cancelled by server shutdown"}
	default:
		return &wire.Error{Code: wire.CodeInternal, Msg: err.Error()}
	}
}

// badRequest builds a BAD_REQUEST error.
func badRequest(format string, args ...any) *wire.Error {
	return &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf(format, args...)}
}
