package server

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/obs"
	"allnn/internal/wire"
)

func randomPoints(seed int64, n, dim int) []ann.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]ann.Point, n)
	for i := range pts {
		p := make(ann.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

// startServer runs a server over a loopback listener and returns a
// connected client. Cleanup drains the server and closes the catalog.
func startServer(t *testing.T, cfg Config) (*Server, *client.Client, string) {
	t.Helper()
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx) // double-shutdown in tests that drain themselves is reported, not fatal
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		srv.Catalog().CloseAll()
	})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl, addr
}

func buildIndex(t *testing.T, pts []ann.Point, kind ann.IndexKind) *ann.Index {
	t.Helper()
	ix, err := ann.BuildIndex(pts, ann.IndexConfig{Kind: kind})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// collectJoin drains a join stream into a slice.
func collectJoin(t *testing.T, st *client.JoinStream) []ann.Result {
	t.Helper()
	var out []ann.Result
	for st.Next() {
		out = append(out, st.Result())
	}
	if err := st.Err(); err != nil {
		t.Fatalf("join stream: %v", err)
	}
	if st.Count() != uint64(len(out)) {
		t.Fatalf("stream end reported %d results, received %d", st.Count(), len(out))
	}
	return out
}

// TestServedParity pins the acceptance criterion: served results are
// byte-identical to direct ann library calls for kNN, batch kNN, range,
// ANN and AkNN (k ∈ {1, 4}), within-distance, and closest-pairs.
func TestServedParity(t *testing.T) {
	rPts := randomPoints(101, 400, 2)
	sPts := randomPoints(102, 500, 2)
	rix := buildIndex(t, rPts, ann.MBRQT)
	six := buildIndex(t, sPts, ann.RStar)

	reg := obs.NewRegistry()
	srv, cl, _ := startServer(t, Config{Metrics: reg, Tracer: obs.NewTracer()})
	if err := srv.Catalog().Add("r", rix); err != nil {
		t.Fatal(err)
	}
	if err := srv.Catalog().Add("s", six); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, k := range []int{1, 4} {
		// Point kNN.
		for _, q := range []ann.Point{{5, 5}, {50, 50}, {99, 1}} {
			want, err := six.NearestNeighbors(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cl.KNN(ctx, "s", q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d: served KNN(%v) = %+v, want %+v", k, q, got, want)
			}
		}

		// Batch kNN.
		batch := rPts[:25]
		gotBatch, err := cl.BatchKNN(ctx, "s", batch, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotBatch) != len(batch) {
			t.Fatalf("batch returned %d results, want %d", len(gotBatch), len(batch))
		}
		for i, q := range batch {
			want, err := six.NearestNeighbors(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if gotBatch[i].ID != uint64(i) || !reflect.DeepEqual(gotBatch[i].Neighbors, want) {
				t.Fatalf("k=%d: batch result %d diverges from direct call", k, i)
			}
		}

		// ANN / AkNN join.
		want, err := ann.AllKNearestNeighbors(rix, six, k, ann.QueryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := cl.Join(ctx, "r", "s", k)
		if err != nil {
			t.Fatal(err)
		}
		got := collectJoin(t, st)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: served join diverges from direct AllKNearestNeighbors", k)
		}

		// Self-join variant.
		wantSelf, err := ann.SelfAllKNearestNeighbors(rix, k, ann.QueryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		st, err = cl.SelfJoin(ctx, "r", k)
		if err != nil {
			t.Fatal(err)
		}
		gotSelf := collectJoin(t, st)
		if !reflect.DeepEqual(gotSelf, wantSelf) {
			t.Fatalf("k=%d: served self-join diverges from direct SelfAllKNearestNeighbors", k)
		}
	}

	// Range search.
	lo, hi := ann.Point{20, 20}, ann.Point{60, 60}
	wantIDs, err := six.RangeSearch(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, err := cl.Range(ctx, "s", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("served range = %v, want %v", gotIDs, wantIDs)
	}

	// Within-distance join (streamed).
	type pairKey struct {
		r, s uint64
		d    float64
	}
	var wantPairs []pairKey
	err = ann.WithinDistance(rix, six, 3.0, false, func(r, s uint64, d float64) error {
		wantPairs = append(wantPairs, pairKey{r, s, d})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var gotPairs []pairKey
	total, err := cl.WithinDistance(ctx, "r", "s", 3.0, false, func(r, s uint64, d float64) error {
		gotPairs = append(gotPairs, pairKey{r, s, d})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != uint64(len(wantPairs)) || !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Fatalf("served within-distance: %d pairs, want %d", len(gotPairs), len(wantPairs))
	}

	// Closest pairs.
	wantCP, err := ann.ClosestPairs(rix, six, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	gotCP, err := cl.ClosestPairs(ctx, "r", "s", 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCP, wantCP) {
		t.Fatalf("served closest-pairs = %+v, want %+v", gotCP, wantCP)
	}

	// Catalog introspection.
	infos, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "r" || infos[1].Name != "s" {
		t.Fatalf("List = %+v", infos)
	}
	if infos[1].Kind != ann.RStar || infos[1].Points != 500 || infos[1].Dim != 2 {
		t.Fatalf("List entry for s = %+v", infos[1])
	}
	stats, err := cl.Stats(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != 500 || stats.PoolHits == 0 {
		t.Fatalf("served stats = %+v", stats)
	}

	// The server published its metric families.
	snap := reg.Snapshot()
	if snap.Counters["server.requests"] == 0 || snap.Counters["server.bytes_out"] == 0 {
		t.Errorf("server metrics missing from registry: %+v", snap.Counters)
	}
	if snap.Counters["engine.results"] == 0 {
		t.Errorf("join engine counters not folded into registry")
	}

	srv.Catalog().RequireNoPinnedFrames(t)
}

// TestServedApprox pins the approximate-join wire path: a served approx
// join is byte-identical to the direct library call with the same knobs,
// zero knobs through the approx entry point stay byte-identical to the
// exact served join, invalid knob values surface as BAD_REQUEST, and the
// knobs are rejected on every non-join operation.
func TestServedApprox(t *testing.T) {
	pts := randomPoints(110, 2000, 2)
	ix := buildIndex(t, pts, ann.MBRQT)
	srv, cl, addr := startServer(t, Config{})
	if err := srv.Catalog().Add("pts", ix); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Zero knobs over the approx entry point: byte-identical to exact.
	wantExact, err := ann.SelfAllKNearestNeighbors(ix, 3, ann.QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.SelfJoinApprox(ctx, "pts", 3, client.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectJoin(t, st); !reflect.DeepEqual(got, wantExact) {
		t.Fatal("served eps=0 approx join diverges from exact")
	}

	// Nonzero knobs: served results match the direct library call with
	// the identical QueryConfig.
	for _, opts := range []client.JoinOptions{
		{Epsilon: 0.2},
		{Epsilon: 0.1, RecallTarget: 0.9},
	} {
		want, err := ann.SelfAllKNearestNeighbors(ix, 3, ann.QueryConfig{
			Epsilon: opts.Epsilon, RecallTarget: opts.RecallTarget,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := cl.SelfJoinApprox(ctx, "pts", 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := collectJoin(t, st); !reflect.DeepEqual(got, want) {
			t.Fatalf("served approx join %+v diverges from direct call", opts)
		}
	}

	// Invalid knob values are rejected at frame decode as BAD_REQUEST.
	// A frame that fails to decode is fatal to its connection, so each
	// probe uses a throwaway client.
	for _, opts := range []client.JoinOptions{{Epsilon: -1}, {RecallTarget: 1.5}} {
		bad, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		st, err := bad.SelfJoinApprox(ctx, "pts", 1, opts)
		if err == nil {
			for st.Next() {
			}
			err = st.Err()
		}
		if !client.IsBadRequest(err) {
			t.Errorf("knobs %+v: got %v, want BAD_REQUEST", opts, err)
		}
		bad.Close()
	}

	// Approx knobs on a non-join op are malformed. The typed client
	// cannot express this, so probe with a raw wire frame.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteHandshake(conn); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.EncodeRequest(
		wire.RequestHeader{ID: 1, Op: wire.OpKNN, Epsilon: 0.1},
		&wire.KNNReq{Index: "pts", K: 1, Point: []float64{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	_, kind, _, body, err := wire.DecodeResponse(reply)
	if err != nil {
		t.Fatal(err)
	}
	if kind != wire.KindError || body.(*wire.ErrorReply).Code != wire.CodeBadRequest {
		t.Errorf("approx knobs on %s: got kind %d body %+v, want BAD_REQUEST", wire.OpKNN, kind, body)
	}

	srv.Catalog().RequireNoPinnedFrames(t)
}

// TestErrorTaxonomy checks the typed error surface: NOT_FOUND for
// unknown names, BAD_REQUEST for invalid parameters.
func TestErrorTaxonomy(t *testing.T) {
	pts := randomPoints(103, 50, 2)
	srv, cl, _ := startServer(t, Config{})
	if err := srv.Catalog().Add("pts", buildIndex(t, pts, ann.MBRQT)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := cl.KNN(ctx, "nope", ann.Point{1, 2}, 1); !client.IsNotFound(err) {
		t.Errorf("unknown index: got %v, want NOT_FOUND", err)
	}
	if _, err := cl.KNN(ctx, "pts", ann.Point{1, 2, 3}, 1); !client.IsBadRequest(err) {
		t.Errorf("dim mismatch: got %v, want BAD_REQUEST", err)
	}
	if _, err := cl.KNN(ctx, "pts", ann.Point{1, 2}, 0); !client.IsBadRequest(err) {
		t.Errorf("k=0: got %v, want BAD_REQUEST", err)
	}
	if _, err := cl.Open(ctx, "ghost", filepath.Join(t.TempDir(), "missing.pages")); !client.IsNotFound(err) {
		t.Errorf("missing file: got %v, want NOT_FOUND", err)
	}
	if err := cl.CloseIndex(ctx, "ghost"); !client.IsNotFound(err) {
		t.Errorf("closing unknown index: got %v, want NOT_FOUND", err)
	}
	// The connection survives every rejected request.
	if _, err := cl.KNN(ctx, "pts", ann.Point{1, 2}, 1); err != nil {
		t.Fatalf("connection unusable after errors: %v", err)
	}
}

// TestAdmissionControl pins the SERVER_BUSY and queued
// DEADLINE_EXCEEDED behaviour at exact bounds.
func TestAdmissionControl(t *testing.T) {
	pts := randomPoints(104, 50, 2)
	srv, cl, _ := startServer(t, Config{MaxInFlight: 1, MaxQueue: 1})
	if err := srv.Catalog().Add("pts", buildIndex(t, pts, ann.MBRQT)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Occupy the only execution slot and the only queue seat.
	if err := srv.admit.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		qctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
		defer cancel()
		queued <- srv.admit.acquire(qctx)
	}()
	// Wait for the queued acquire to take its seat.
	for srv.admit.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}

	// The next query must bounce immediately with SERVER_BUSY.
	if _, err := cl.KNN(ctx, "pts", ann.Point{1, 2}, 1); !client.IsBusy(err) {
		t.Errorf("over-capacity query: got %v, want SERVER_BUSY", err)
	}
	// Catalog ops bypass admission and still work at full capacity.
	if _, err := cl.List(ctx); err != nil {
		t.Errorf("List under full admission: %v", err)
	}
	// The queued waiter times out with a deadline error.
	if err := <-queued; !wire.IsCode(err, wire.CodeDeadlineExceeded) {
		t.Errorf("queued waiter: got %v, want DEADLINE_EXCEEDED", err)
	}
	srv.admit.release()

	// With the slot free the same query succeeds.
	if _, err := cl.KNN(ctx, "pts", ann.Point{1, 2}, 1); err != nil {
		t.Fatalf("query after release: %v", err)
	}
}

// TestRequestDeadline checks that a client deadline aborts a served
// join engine-side and surfaces as DEADLINE_EXCEEDED.
func TestRequestDeadline(t *testing.T) {
	pts := randomPoints(105, 100_000, 2)
	srv, cl, _ := startServer(t, Config{})
	if err := srv.Catalog().Add("pts", buildIndex(t, pts, ann.MBRQT)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	st, err := cl.SelfJoin(ctx, "pts", 4)
	if err != nil {
		t.Fatal(err)
	}
	for st.Next() {
	}
	if err := st.Err(); !client.IsDeadlineExceeded(err) {
		t.Fatalf("expired join: got %v, want DEADLINE_EXCEEDED", err)
	}
	srv.Catalog().RequireNoPinnedFrames(t)
}

// TestGracefulDrain starts a streamed join, then shuts the server down
// mid-stream: the join must run to completion with full parity while
// fresh requests are refused with SHUTTING_DOWN.
func TestGracefulDrain(t *testing.T) {
	pts := randomPoints(106, 20_000, 2)
	ix := buildIndex(t, pts, ann.MBRQT)
	srv, cl, addr := startServer(t, Config{})
	if err := srv.Catalog().Add("pts", ix); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	want, err := ann.SelfAllKNearestNeighbors(ix, 1, ann.QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// A second connection, established before the drain begins.
	cl2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	st, err := cl.SelfJoin(ctx, "pts", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pull the first result so the join is demonstrably in flight.
	if !st.Next() {
		t.Fatalf("join produced nothing: %v", st.Err())
	}
	results := []ann.Result{st.Result()}

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(sctx)
	}()

	// Wait until the drain flag is visible, then probe with a fresh
	// request on the second connection.
	for {
		srv.mu.Lock()
		draining := srv.draining
		srv.mu.Unlock()
		if draining {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := cl2.KNN(ctx, "pts", ann.Point{1, 2}, 1); !client.IsShuttingDown(err) {
		t.Errorf("request during drain: got %v, want SHUTTING_DOWN", err)
	}

	// The in-flight stream runs to completion, unharmed.
	for st.Next() {
		results = append(results, st.Result())
	}
	if err := st.Err(); err != nil {
		t.Fatalf("drained join failed: %v", err)
	}
	if !reflect.DeepEqual(results, want) {
		t.Fatalf("drained join diverges from direct call (%d vs %d results)", len(results), len(want))
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown returned %v", err)
	}
	// New connections are refused once drained.
	if _, err := client.Dial(addr); err == nil {
		t.Error("dial succeeded after drain")
	}
}

// TestMixedWorkloadRace is the ≥64-goroutine interleaved workload of
// the issue: kNN, batch kNN, range, joins, pairs, and catalog
// open/stats/close traffic against one server, with exact parity
// against direct library calls and zero pinned frames at the end.
// Run with -race.
func TestMixedWorkloadRace(t *testing.T) {
	rPts := randomPoints(107, 300, 2)
	sPts := randomPoints(108, 400, 2)
	rix := buildIndex(t, rPts, ann.MBRQT)
	six := buildIndex(t, sPts, ann.RStar)

	// A page file for the catalog open/close churn.
	pageFile := filepath.Join(t.TempDir(), "scratch.pages")
	scratch, err := ann.BuildIndex(randomPoints(109, 200, 2), ann.IndexConfig{PageFile: pageFile})
	if err != nil {
		t.Fatal(err)
	}
	if err := scratch.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := scratch.Close(); err != nil {
		t.Fatal(err)
	}

	srv, _, addr := startServer(t, Config{MaxInFlight: 8, MaxQueue: 1 << 20, Metrics: obs.NewRegistry()})
	if err := srv.Catalog().Add("r", rix); err != nil {
		t.Fatal(err)
	}
	if err := srv.Catalog().Add("s", six); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Direct-call baselines, computed once.
	wantJoin, err := ann.AllKNearestNeighbors(rix, six, 2, ann.QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantSelf, err := ann.SelfAllKNearestNeighbors(rix, 1, ann.QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantCP, err := ann.ClosestPairs(rix, six, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ann.Point{10, 10}, ann.Point{70, 70}
	wantIDs, err := six.RangeSearch(lo, hi)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 64
	const iters = 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for it := 0; it < iters; it++ {
				switch (g + it) % 6 {
				case 0: // point kNN
					q := rPts[rng.Intn(len(rPts))]
					want, err := six.NearestNeighbors(q, 3)
					if err != nil {
						errc <- err
						return
					}
					got, err := cl.KNN(ctx, "s", q, 3)
					if err != nil {
						errc <- fmt.Errorf("g%d knn: %w", g, err)
						return
					}
					if !reflect.DeepEqual(got, want) {
						errc <- fmt.Errorf("g%d: knn parity failure", g)
						return
					}
				case 1: // batch kNN
					start := rng.Intn(250)
					qs := rPts[start : start+10]
					got, err := cl.BatchKNN(ctx, "s", qs, 2)
					if err != nil {
						errc <- fmt.Errorf("g%d batch: %w", g, err)
						return
					}
					for i, q := range qs {
						want, err := six.NearestNeighbors(q, 2)
						if err != nil {
							errc <- err
							return
						}
						if !reflect.DeepEqual(got[i].Neighbors, want) {
							errc <- fmt.Errorf("g%d: batch parity failure at %d", g, i)
							return
						}
					}
				case 2: // streamed AkNN join
					st, err := cl.Join(ctx, "r", "s", 2)
					if err != nil {
						errc <- fmt.Errorf("g%d join: %w", g, err)
						return
					}
					var got []ann.Result
					for st.Next() {
						got = append(got, st.Result())
					}
					if err := st.Err(); err != nil {
						errc <- fmt.Errorf("g%d join stream: %w", g, err)
						return
					}
					if !reflect.DeepEqual(got, wantJoin) {
						errc <- fmt.Errorf("g%d: join parity failure", g)
						return
					}
				case 3: // streamed self-join
					st, err := cl.SelfJoin(ctx, "r", 1)
					if err != nil {
						errc <- fmt.Errorf("g%d self-join: %w", g, err)
						return
					}
					var got []ann.Result
					for st.Next() {
						got = append(got, st.Result())
					}
					if err := st.Err(); err != nil {
						errc <- fmt.Errorf("g%d self-join stream: %w", g, err)
						return
					}
					if !reflect.DeepEqual(got, wantSelf) {
						errc <- fmt.Errorf("g%d: self-join parity failure", g)
						return
					}
				case 4: // range + closest pairs
					gotIDs, err := cl.Range(ctx, "s", lo, hi)
					if err != nil {
						errc <- fmt.Errorf("g%d range: %w", g, err)
						return
					}
					if !reflect.DeepEqual(gotIDs, wantIDs) {
						errc <- fmt.Errorf("g%d: range parity failure", g)
						return
					}
					gotCP, err := cl.ClosestPairs(ctx, "r", "s", 5, false)
					if err != nil {
						errc <- fmt.Errorf("g%d pairs: %w", g, err)
						return
					}
					if !reflect.DeepEqual(gotCP, wantCP) {
						errc <- fmt.Errorf("g%d: closest-pairs parity failure", g)
						return
					}
				case 5: // catalog churn: open a private name, stats, close
					name := fmt.Sprintf("scratch-%d-%d", g, it)
					info, err := cl.Open(ctx, name, pageFile)
					if err != nil {
						errc <- fmt.Errorf("g%d open: %w", g, err)
						return
					}
					if info.Points != 200 {
						errc <- fmt.Errorf("g%d: opened index has %d points", g, info.Points)
						return
					}
					if _, err := cl.Stats(ctx, name); err != nil {
						errc <- fmt.Errorf("g%d stats: %w", g, err)
						return
					}
					if _, err := cl.List(ctx); err != nil {
						errc <- fmt.Errorf("g%d list: %w", g, err)
						return
					}
					if err := cl.CloseIndex(ctx, name); err != nil {
						errc <- fmt.Errorf("g%d close: %w", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	srv.Catalog().RequireNoPinnedFrames(t)
}
