package server

import (
	"fmt"
	"strings"
)

// LogLevel orders the server's log severities. Config.LogLevel is the
// minimum level emitted; LevelInfo is the default.
type LogLevel int

const (
	LevelDebug LogLevel = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer with the log line's level token.
func (l LogLevel) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// log emits one structured key=value line through Config.Logf:
//
//	level=warn msg="handshake failed" conn=127.0.0.1:9 err="bad magic"
//
// kv is alternating key, value pairs; values are rendered with %v and
// quoted when they contain spaces, quotes or control bytes, so the line
// stays machine-splittable on spaces. Request-scoped call sites always
// pass the request and trace IDs — the contract that makes a slow-query
// entry, an access-log record and a log line about one request joinable.
func (s *Server) log(level LogLevel, msg string, kv ...any) {
	if s.cfg.Logf == nil || level < s.cfg.LogLevel {
		return
	}
	var b strings.Builder
	b.WriteString("level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(logValue(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		b.WriteString(logValue(fmt.Sprintf("%v", kv[i+1])))
	}
	s.cfg.Logf("%s", b.String())
}

// logValue renders one value token, quoting only when needed.
func logValue(v string) string {
	if v == "" {
		return `""`
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c <= ' ' || c == '"' || c == '=' || c > 0x7e {
			return fmt.Sprintf("%q", v)
		}
	}
	return v
}
