package router

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"allnn/ann/client"
	"allnn/internal/obs"
	"allnn/internal/wire"
)

// handshakeTimeout bounds a fresh connection's preamble, as in
// internal/server.
const handshakeTimeout = 10 * time.Second

// Mode selects the router's failure policy when a shard's backend is
// unreachable after retries.
type Mode int

const (
	// Strict fails the whole request fast with SHARD_UNAVAILABLE — the
	// default: no silent data loss.
	Strict Mode = iota
	// Degraded answers with what the live shards produced, marked
	// PARTIAL_RESULT. A degraded reply is the exact answer over the
	// union of the live shards' points.
	Degraded
)

func (m Mode) String() string {
	if m == Degraded {
		return "degraded"
	}
	return "strict"
}

// ParseMode maps "strict"/"degraded" to its Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "strict", "":
		return Strict, nil
	case "degraded":
		return Degraded, nil
	default:
		return 0, fmt.Errorf("router: unknown mode %q (want strict or degraded)", s)
	}
}

// Config parameterises a Router. The zero value is usable (strict
// mode, fan-out bounded at 2×GOMAXPROCS).
type Config struct {
	// Mode is the failure policy for dead shards.
	Mode Mode
	// MaxFanout bounds concurrently outstanding backend RPCs across the
	// whole router (scatter admission). 1 degenerates to serial scatter
	// — useful for debugging and as the parity baseline. Zero selects
	// 2×GOMAXPROCS (minimum 4).
	MaxFanout int
	// Dial tunes backend dialling; the zero value selects
	// client.DialConfig's defaults.
	Dial client.DialConfig
	// BackoffBase and BackoffMax bound the per-backend circuit-breaker
	// cool-off after transport failures (defaults 100ms and 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Metrics, when non-nil, receives the router.* metric families.
	Metrics *obs.Registry
	// Logf, when non-nil, receives structured key=value log lines.
	Logf func(format string, args ...any)
}

// Router serves the wire protocol over one or more shard-mapped
// datasets, scatter-gathering each request across the owning backends.
type Router struct {
	cfg      Config
	datasets map[string]*dataset

	// fanout is the scatter admission semaphore: one slot per
	// outstanding backend RPC, router-wide.
	fanout chan struct{}

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu            sync.Mutex
	listeners     map[net.Listener]struct{}
	conns         map[net.Conn]struct{}
	activeReqs    int
	draining      bool
	drained       chan struct{}
	drainedClosed bool
	connWG        sync.WaitGroup

	// router.* metrics (nil-safe through the registry).
	requests        *obs.Counter
	errors          *obs.Counter
	shardsContacted *obs.Counter
	shardsPruned    *obs.Counter
	unavailable     *obs.Counter
	partials        *obs.Counter
	mergeStreams    *obs.Histogram
	latencies       map[wire.Op]*obs.Histogram
}

// New creates a Router over the given shard maps (one per logical
// dataset). Backends are dialled lazily on first use.
func New(cfg Config, maps ...*MapFile) (*Router, error) {
	if cfg.MaxFanout <= 0 {
		cfg.MaxFanout = 2 * runtime.GOMAXPROCS(0)
		if cfg.MaxFanout < 4 {
			cfg.MaxFanout = 4
		}
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	r := &Router{
		cfg:       cfg,
		datasets:  make(map[string]*dataset),
		fanout:    make(chan struct{}, cfg.MaxFanout),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		drained:   make(chan struct{}),
	}
	for _, m := range maps {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("router: shard map %q: %w", m.Name, err)
		}
		if _, dup := r.datasets[m.Name]; dup {
			return nil, fmt.Errorf("router: duplicate dataset %q", m.Name)
		}
		ds, err := newDataset(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("router: dataset %q: %w", m.Name, err)
		}
		r.datasets[m.Name] = ds
	}
	r.baseCtx, r.cancelBase = context.WithCancel(context.Background())

	reg := cfg.Metrics
	r.requests = reg.Counter("router.requests")
	r.errors = reg.Counter("router.errors")
	r.shardsContacted = reg.Counter("router.shards_contacted")
	r.shardsPruned = reg.Counter("router.shards_pruned")
	r.unavailable = reg.Counter("router.shard_unavailable")
	r.partials = reg.Counter("router.partial_results")
	r.mergeStreams = reg.Histogram("router.merge.streams", obs.ExpBuckets(1, 2, 8))
	r.latencies = make(map[wire.Op]*obs.Histogram)
	for _, op := range []wire.Op{
		wire.OpList, wire.OpShardMap,
		wire.OpKNN, wire.OpBatchKNN, wire.OpRange, wire.OpRangePoints,
		wire.OpJoin, wire.OpWithinDistance,
	} {
		r.latencies[op] = reg.Histogram("router."+op.String()+".latency_ns", obs.LatencyBuckets())
	}
	return r, nil
}

func (r *Router) log(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until the listener fails or the
// router drains. It returns nil on a drain-initiated stop.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		ln.Close()
		return errors.New("router: already shut down")
	}
	r.listeners[ln] = struct{}{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.listeners, ln)
		r.mu.Unlock()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			draining := r.draining
			r.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			conn.Close()
			return nil
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.connWG.Add(1)
		go r.handleConn(conn)
	}
}

// Shutdown drains the router: listeners close, new requests are
// refused with SHUTTING_DOWN, in-flight requests finish (or are
// cancelled when ctx expires), then connections — including backend
// connections — are torn down.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return errors.New("router: shutdown already in progress")
	}
	r.draining = true
	if r.activeReqs == 0 && !r.drainedClosed {
		r.drainedClosed = true
		close(r.drained)
	}
	for ln := range r.listeners {
		ln.Close()
	}
	r.mu.Unlock()

	var err error
	select {
	case <-r.drained:
	case <-ctx.Done():
		err = ctx.Err()
		r.cancelBase()
		<-r.drained
	}

	r.mu.Lock()
	for conn := range r.conns {
		conn.Close()
	}
	r.mu.Unlock()
	r.connWG.Wait()
	r.cancelBase()
	for _, ds := range r.datasets {
		for _, s := range ds.shards {
			s.backend.close()
		}
	}
	return err
}

func (r *Router) handleConn(conn net.Conn) {
	remote := conn.RemoteAddr().String()
	defer r.connWG.Done()
	defer func() {
		if rec := recover(); rec != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			r.log("level=error msg=%q conn=%s panic=%v stack=%q", "connection panic", remote, rec, string(buf))
		}
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
	}()

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	if err := wire.ReadHandshake(conn); err != nil {
		r.log("level=warn msg=%q conn=%s err=%v", "handshake failed", remote, err)
		return
	}
	conn.SetReadDeadline(time.Time{})

	br := bufio.NewReader(conn)
	w := &frameWriter{bw: bufio.NewWriter(conn)}
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				r.log("level=warn msg=%q conn=%s err=%v", "read failed", remote, err)
			}
			return
		}
		if !r.serveRequest(w, remote, payload) {
			return
		}
	}
}

func (r *Router) serveRequest(w *frameWriter, remote string, payload []byte) bool {
	hdr, body, err := wire.DecodeRequest(payload)
	if err != nil {
		r.log("level=warn msg=%q conn=%s req=%d err=%v", "bad request frame", remote, hdr.ID, err)
		w.sendError(hdr.ID, hdr.Op, &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}
	if !r.beginRequest() {
		w.sendError(hdr.ID, hdr.Op, &wire.Error{Code: wire.CodeShuttingDown, Msg: "router is draining"})
		return true
	}
	defer r.endRequest()

	r.requests.Inc()
	start := time.Now()
	ctx := r.baseCtx
	if hdr.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, hdr.Timeout)
		defer cancel()
	}
	err = r.dispatch(ctx, hdr, body, w)
	if h := r.latencies[hdr.Op]; h != nil {
		h.Observe(float64(time.Since(start).Nanoseconds()))
	}
	if err != nil {
		r.errors.Inc()
		we := toWireError(err)
		if we.Code == wire.CodeShardUnavailable {
			r.unavailable.Inc()
		}
		r.log("level=info msg=%q conn=%s req=%d op=%s code=%s err=%q",
			"request failed", remote, hdr.ID, hdr.Op, we.Code, we.Msg)
		w.sendError(hdr.ID, hdr.Op, we)
	}
	return true
}

func (r *Router) beginRequest() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return false
	}
	r.activeReqs++
	return true
}

func (r *Router) endRequest() {
	r.mu.Lock()
	r.activeReqs--
	if r.draining && r.activeReqs == 0 && !r.drainedClosed {
		r.drainedClosed = true
		close(r.drained)
	}
	r.mu.Unlock()
}

// dispatch executes one decoded request. A returned error means no
// terminal frame was written yet.
func (r *Router) dispatch(ctx context.Context, hdr wire.RequestHeader, body wire.Message, w *frameWriter) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			r.log("level=error msg=%q req=%d op=%s panic=%v", "request panic", hdr.ID, hdr.Op, rec)
			err = &wire.Error{Code: wire.CodeInternal, Msg: "internal error (recovered panic)"}
		}
	}()
	if hdr.Epsilon != 0 || hdr.RecallTarget != 0 {
		return badRequest("the router serves exact queries only (epsilon=%v, recall_target=%v rejected): shard-local approximation bounds do not compose across a merge", hdr.Epsilon, hdr.RecallTarget)
	}
	if hdr.WantReport {
		return badRequest("WantReport is not supported on routed requests")
	}

	switch req := body.(type) {
	case *wire.ListReq:
		return r.handleList(hdr, w)
	case *wire.ShardMapReq:
		ds, err := r.dataset(req.Name)
		if err != nil {
			return err
		}
		return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.ShardMapReply{Map: ds.wireMap})
	case *wire.KNNReq:
		return r.handleKNN(ctx, hdr, req, w)
	case *wire.BatchKNNReq:
		return r.handleBatchKNN(ctx, hdr, req, w)
	case *wire.RangeReq:
		return r.handleRange(ctx, hdr, req, w)
	case *wire.RangePointsReq:
		return r.handleRangePoints(ctx, hdr, req, w)
	case *wire.WithinReq:
		return r.handleWithin(ctx, hdr, req, w)
	case *wire.JoinReq:
		return r.handleJoin(ctx, hdr, req, w)
	case *wire.OpenReq, *wire.CloseReq:
		return badRequest("the router's datasets are fixed by its shard map; open and close indexes on the shard backends")
	case *wire.InsertReq, *wire.DeleteReq:
		return badRequest("mutations are not routed; write to the owning shard backend directly (the shard map's key ranges determine ownership)")
	case *wire.StatsReq:
		return badRequest("stats are per-backend; query the shard servers directly")
	case *wire.PairsReq:
		return badRequest("closest-pairs is not distributed; run it against a single backend")
	default:
		return badRequest("unhandled request type %T", body)
	}
}

func (r *Router) handleList(hdr wire.RequestHeader, w *frameWriter) error {
	names := make([]string, 0, len(r.datasets))
	for name := range r.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]wire.IndexInfo, len(names))
	for i, name := range names {
		ds := r.datasets[name]
		infos[i] = wire.IndexInfo{Name: name, Points: ds.points(), Dim: uint32(ds.dim)}
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.ListReply{Indexes: infos})
}

// dataset resolves a logical dataset name.
func (r *Router) dataset(name string) (*dataset, error) {
	ds, ok := r.datasets[name]
	if !ok {
		return nil, &wire.Error{Code: wire.CodeNotFound, Msg: fmt.Sprintf("router: no dataset %q in the shard map", name)}
	}
	return ds, nil
}

// --- scatter-gather plumbing ------------------------------------------------

// gather tracks one request's scatter across shards: which shards
// failed (for degraded replies), plus the strict-mode abort.
type gather struct {
	mode Mode
	mu   sync.Mutex
	// missing names the shards that were unavailable (degraded mode).
	missing []string
	// failed is the first hard failure (strict-mode shardError, or any
	// non-shard error in either mode).
	failed error
}

// shardDown records one unavailable shard, returning false when the
// gather must abort (strict mode).
func (g *gather) shardDown(name string, err error) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.mode == Degraded {
		g.missing = append(g.missing, name)
		return true
	}
	if g.failed == nil {
		g.failed = &wire.Error{Code: wire.CodeShardUnavailable, Msg: err.Error()}
	}
	return false
}

// hardFail records a non-shard failure (always aborts).
func (g *gather) hardFail(err error) {
	g.mu.Lock()
	if g.failed == nil {
		g.failed = err
	}
	g.mu.Unlock()
}

// err returns the recorded abort error, if any.
func (g *gather) err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failed
}

// isMissing reports whether a shard already failed this gather —
// multi-phase requests skip work destined for a shard that is known
// dead.
func (g *gather) isMissing(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.missing {
		if m == name {
			return true
		}
	}
	return false
}

// partial returns the PartialInfo block for a degraded gather (nil when
// every shard answered). Shard names are deduplicated (a shard can fail
// in several phases) and sorted for determinism.
func (g *gather) partial() *wire.PartialInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.missing) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(g.missing))
	var missing []string
	for _, m := range g.missing {
		if !seen[m] {
			seen[m] = true
			missing = append(missing, m)
		}
	}
	sort.Strings(missing)
	return &wire.PartialInfo{Missing: missing}
}

// newGather starts a gather under the router's failure mode.
func (r *Router) newGather() *gather { return &gather{mode: r.cfg.Mode} }

// scatterN runs fn once per task index, bounded by the router-wide
// fan-out semaphore (MaxFanout=1 degenerates to serial execution in
// index order). A shardError from fn (which names its shard) is routed
// through the gather's failure policy; any other error aborts.
// scatterN returns the gather's abort error, if any. fn runs
// concurrently — it must synchronise its own result writes.
func (r *Router) scatterN(ctx context.Context, g *gather, n int, fn func(int) error) error {
	var wg sync.WaitGroup
	abort := make(chan struct{})
	var abortOnce sync.Once
	doAbort := func() { abortOnce.Do(func() { close(abort) }) }
	for i := 0; i < n; i++ {
		stop := false
		select {
		case r.fanout <- struct{}{}:
		case <-abort:
			// A strict-mode failure already decided the request; skip the
			// remaining legs.
			stop = true
		case <-ctx.Done():
			g.hardFail(ctx.Err())
			stop = true
		}
		if stop {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-r.fanout }()
			err := fn(i)
			if err == nil {
				return
			}
			var se *shardError
			if errors.As(err, &se) {
				if !g.shardDown(se.shard, err) {
					doAbort()
				}
				return
			}
			g.hardFail(err)
			doAbort()
		}(i)
	}
	wg.Wait()
	return g.err()
}

// scatter runs fn once per selected shard via scatterN, recording the
// contacted counter and per-shard latency histogram.
func (r *Router) scatter(ctx context.Context, g *gather, shards []*shard, fn func(*shard) error) error {
	return r.scatterN(ctx, g, len(shards), func(i int) error {
		s := shards[i]
		r.shardsContacted.Inc()
		start := time.Now()
		err := fn(s)
		if r.cfg.Metrics != nil {
			r.cfg.Metrics.Histogram("router.shard."+s.name+".latency_ns", obs.LatencyBuckets()).
				Observe(float64(time.Since(start).Nanoseconds()))
		}
		return err
	})
}

// prune records n pruned shards.
func (r *Router) prune(n int) {
	if n > 0 {
		r.shardsPruned.Add(uint64(n))
	}
}

// finishPartial bumps the partial-results counter when a degraded
// gather lost shards.
func (r *Router) finishPartial(p *wire.PartialInfo) *wire.PartialInfo {
	if p != nil {
		r.partials.Inc()
	}
	return p
}

// --- response writing -------------------------------------------------------

// frameWriter serialises response frames for one connection, reusing
// one encode buffer (internal/server's connWriter, minus the
// per-request accounting).
type frameWriter struct {
	bw  *bufio.Writer
	buf []byte
}

func (w *frameWriter) send(id uint64, kind wire.ResponseKind, op wire.Op, body wire.Message) error {
	payload, err := wire.EncodeResponse(id, kind, op, body, w.buf)
	if err != nil {
		return err
	}
	w.buf = payload
	if err := wire.WriteFrame(w.bw, payload); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *frameWriter) sendError(id uint64, op wire.Op, we *wire.Error) {
	body := &wire.ErrorReply{Code: we.Code, Msg: we.Msg}
	payload, err := wire.EncodeResponse(id, wire.KindError, op, body, w.buf)
	if err != nil {
		payload, err = wire.EncodeResponse(id, wire.KindError, wire.OpList, body, w.buf)
		if err != nil {
			return
		}
	}
	w.buf = payload
	if wire.WriteFrame(w.bw, payload) == nil {
		w.bw.Flush()
	}
}

// toWireError maps an internal failure to its protocol error class.
func toWireError(err error) *wire.Error {
	var we *wire.Error
	switch {
	case errors.As(err, &we):
		return we
	case errors.Is(err, context.DeadlineExceeded):
		return &wire.Error{Code: wire.CodeDeadlineExceeded, Msg: "request deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &wire.Error{Code: wire.CodeShuttingDown, Msg: "request cancelled by router shutdown"}
	default:
		return &wire.Error{Code: wire.CodeInternal, Msg: err.Error()}
	}
}

func badRequest(format string, args ...any) *wire.Error {
	return &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf(format, args...)}
}
