package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"allnn/ann/client"
	"allnn/internal/wire"
)

// backend is one shard's connection to its annserve node: a lazily
// dialled wire client plus health state. A backend that fails a
// transport-level operation is marked down for an exponentially growing
// cool-off (capped), during which RPCs against it fail immediately —
// one slow dead node must not add its full dial timeout to every
// scatter. Protocol-level errors (BAD_REQUEST and friends) prove the
// node alive and never trip the breaker.
type backend struct {
	shardName string
	addr      string
	dial      client.DialConfig

	backoffBase time.Duration
	backoffMax  time.Duration

	mu        sync.Mutex
	cli       *client.Client
	fails     int
	downUntil time.Time
}

func newBackend(shardName, addr string, cfg Config) *backend {
	return &backend{
		shardName:   shardName,
		addr:        addr,
		dial:        cfg.Dial,
		backoffBase: cfg.BackoffBase,
		backoffMax:  cfg.BackoffMax,
	}
}

// shardError marks an RPC failure as "this shard is unavailable" — the
// signal the gather layer turns into SHARD_UNAVAILABLE (strict mode) or
// a PartialInfo entry (degraded mode). Any other error from a backend
// RPC is a real answer from a live node and propagates untouched.
type shardError struct {
	shard string
	err   error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard %s unavailable: %v", e.shard, e.err)
}

func (e *shardError) Unwrap() error { return e.err }

// transientRPC classifies the failure taxonomy the backend retries or
// breaks on: transport errors (dead conn, refused dial, timeout at the
// socket) plus the two wire codes that mean "node alive but not
// serving right now" (SERVER_BUSY, SHUTTING_DOWN). Everything else —
// BAD_REQUEST, NOT_FOUND, engine errors — is an authoritative answer.
func transientRPC(err error) bool {
	var we *wire.Error
	if errors.As(err, &we) {
		return we.Code == wire.CodeServerBusy || we.Code == wire.CodeShuttingDown
	}
	// The caller's own context expiring is not the backend's fault.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true // transport-level failure
}

// acquire returns a connected client, dialling if needed. While the
// breaker is open it fails immediately with a shardError.
func (b *backend) acquire(ctx context.Context) (*client.Client, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cli != nil {
		return b.cli, nil
	}
	if wait := time.Until(b.downUntil); wait > 0 {
		return nil, &shardError{shard: b.shardName,
			err: fmt.Errorf("backend %s cooling off for %v after %d failures", b.addr, wait.Round(time.Millisecond), b.fails)}
	}
	cli, err := client.DialRetry(ctx, b.addr, b.dial)
	if err != nil {
		b.tripLocked()
		return nil, &shardError{shard: b.shardName, err: err}
	}
	b.cli = cli
	return cli, nil
}

// dropConn discards cli if it is still the backend's current
// connection, and trips the breaker.
func (b *backend) dropConn(cli *client.Client) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cli == cli {
		cli.Close()
		b.cli = nil
	}
	b.tripLocked()
}

// tripLocked opens the breaker: cool-off doubles per consecutive
// failure, capped.
func (b *backend) tripLocked() {
	b.fails++
	d := b.backoffBase << (b.fails - 1)
	if d > b.backoffMax || d <= 0 {
		d = b.backoffMax
	}
	b.downUntil = time.Now().Add(d)
}

// markUp resets the breaker after a successful RPC.
func (b *backend) markUp() {
	b.mu.Lock()
	b.fails = 0
	b.downUntil = time.Time{}
	b.mu.Unlock()
}

// close tears the connection down (router shutdown).
func (b *backend) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cli != nil {
		b.cli.Close()
		b.cli = nil
	}
}

// do runs one RPC against the backend, retrying a transient failure
// once on a fresh connection (a stale pooled conn whose peer restarted
// looks exactly like a dead node until redialled). A second transient
// failure trips the breaker and surfaces as a shardError.
func (b *backend) do(ctx context.Context, fn func(*client.Client) error) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cli, err := b.acquire(ctx)
		if err != nil {
			return err
		}
		err = fn(cli)
		if err == nil {
			b.markUp()
			return nil
		}
		if !transientRPC(err) {
			b.markUp()
			return err
		}
		b.dropConn(cli)
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return &shardError{shard: b.shardName, err: lastErr}
}
