package router

import (
	"context"
	"math"
	"sort"
	"sync"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/geom"
	"allnn/internal/wire"
)

// Frame sizing, matching internal/server so routed streams frame like
// single-node streams.
const (
	joinFrameResults = 512
	pairFrameCount   = 4096
)

// --- distributed within-distance --------------------------------------------
//
// A within-distance self-join over a partitioned dataset decomposes
// exactly: every qualifying pair is either intra-shard (both points in
// one shard — found by that shard's own distance join) or cross-shard
// (one point in each of two shards). A cross-shard pair (p ∈ i, q ∈ j)
// requires q within distance d of shard i's boundary MBR, so the
// router fetches the two boundary strips — shard i's points inside
// inflate(MBR_j, d) and shard j's points inside inflate(MBR_i, d) —
// via OpRangePoints and brute-forces the strip product locally.
// Shard pairs whose MINDIST(MBR_i, MBR_j) exceeds d are pruned without
// any fetch.

// inflate grows a rect by d in every direction.
func inflate(r geom.Rect, d float64) geom.Rect {
	out := r.Clone()
	for i := range out.Lo {
		out.Lo[i] -= d
		out.Hi[i] += d
	}
	return out
}

// strip is one shard's boundary slice: global ids and coordinates.
type strip struct {
	ids []uint64
	pts []ann.Point
}

func (r *Router) handleWithin(ctx context.Context, hdr wire.RequestHeader, req *wire.WithinReq, w *frameWriter) error {
	if req.R != req.S {
		return badRequest("the router distributes self-joins of one routed dataset; got R=%q, S=%q (join a routed dataset against itself, or run cross-dataset joins on a single backend)", req.R, req.S)
	}
	ds, err := r.dataset(req.R)
	if err != nil {
		return err
	}
	if !(req.Dist >= 0) {
		return badRequest("distance must be non-negative, got %v", req.Dist)
	}
	d := req.Dist
	g := r.newGather()

	// Phase A: every shard's own distance join, gathered into per-shard
	// pair lists (kept separate so emission preserves shard order).
	selfPairs := make([][]wire.Pair, len(ds.shards))
	if err := r.scatter(ctx, g, ds.shards, func(s *shard) error {
		var pairs []wire.Pair
		err := s.backend.do(ctx, func(cli *client.Client) error {
			pairs = pairs[:0] // a retried stream starts over
			_, err := cli.WithinDistance(ctx, s.name, s.name, d, req.ExcludeSelf, func(rID, sID uint64, dist float64) error {
				pairs = append(pairs, wire.Pair{R: rID + s.idBase, S: sID + s.idBase, Dist: dist})
				return nil
			})
			return err
		})
		if err != nil {
			return err
		}
		selfPairs[shardIndex(ds, s)] = pairs
		return nil
	}); err != nil {
		return err
	}

	// Phase B: cross-shard strips. Fetch each shard's boundary slice at
	// most once per partner shard; prune shard pairs beyond d.
	type task struct{ i, j int }
	var tasks []task
	prunedPairs := 0
	for i := range ds.shards {
		for j := i + 1; j < len(ds.shards); j++ {
			if g.isMissing(ds.shards[i].name) || g.isMissing(ds.shards[j].name) {
				continue
			}
			if geom.MinDist(ds.shards[i].mbr, ds.shards[j].mbr) > d {
				prunedPairs++
				continue
			}
			tasks = append(tasks, task{i, j})
		}
	}
	r.prune(prunedPairs)

	crossPairs := make([][]wire.Pair, len(tasks))
	distSq := d * d
	if err := r.scatterN(ctx, g, len(tasks), func(ti int) error {
		t := tasks[ti]
		si, sj := ds.shards[t.i], ds.shards[t.j]
		fetch := func(s *shard, box geom.Rect) (strip, error) {
			var st strip
			err := s.backend.do(ctx, func(cli *client.Client) error {
				var err error
				st.ids, st.pts, err = cli.RangePoints(ctx, s.name, box.Lo, box.Hi)
				return err
			})
			return st, err
		}
		stripI, err := fetch(si, inflate(sj.mbr, d))
		if err != nil {
			return err
		}
		stripJ, err := fetch(sj, inflate(si.mbr, d))
		if err != nil {
			return err
		}
		// Brute-force the strip product with the engine's exact
		// comparison (inclusive, on squared distance). Both directions
		// are emitted — a single-node R×S self-join reports each
		// unordered pair twice.
		var pairs []wire.Pair
		for a, p := range stripI.pts {
			for b, q := range stripJ.pts {
				dsq := geom.DistSq(geom.Point(p), geom.Point(q))
				if dsq > distSq {
					continue
				}
				dist := math.Sqrt(dsq)
				gi, gj := stripI.ids[a]+si.idBase, stripJ.ids[b]+sj.idBase
				pairs = append(pairs, wire.Pair{R: gi, S: gj, Dist: dist}, wire.Pair{R: gj, S: gi, Dist: dist})
			}
		}
		crossPairs[ti] = pairs
		return nil
	}); err != nil {
		return err
	}

	// Emit: intra-shard pairs in shard order (each in its engine's
	// order), then cross-shard pairs sorted by (R, S) — a deterministic
	// routed order.
	var cross []wire.Pair
	for _, pairs := range crossPairs {
		cross = append(cross, pairs...)
	}
	sort.Slice(cross, func(a, b int) bool {
		if cross[a].R != cross[b].R {
			return cross[a].R < cross[b].R
		}
		return cross[a].S < cross[b].S
	})
	r.mergeStreams.Observe(float64(len(ds.shards) + len(tasks)))

	frame := wire.PairFrame{Pairs: make([]wire.Pair, 0, pairFrameCount)}
	var total uint64
	flush := func() error {
		if len(frame.Pairs) == 0 {
			return nil
		}
		err := w.send(hdr.ID, wire.KindStream, hdr.Op, &frame)
		frame.Pairs = frame.Pairs[:0]
		return err
	}
	emit := func(p wire.Pair) error {
		total++
		frame.Pairs = append(frame.Pairs, p)
		if len(frame.Pairs) >= pairFrameCount {
			return flush()
		}
		return nil
	}
	for _, pairs := range selfPairs {
		for _, p := range pairs {
			if err := emit(p); err != nil {
				return err
			}
		}
	}
	for _, p := range cross {
		if err := emit(p); err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return r.endStream(hdr, g, total, w)
}

// endStream terminates a routed stream: KindEnd on a complete gather,
// or — per the protocol's degraded-stream convention — a KindError
// frame with PARTIAL_RESULT in place of KindEnd when shards were lost
// (everything streamed before it remains valid).
func (r *Router) endStream(hdr wire.RequestHeader, g *gather, total uint64, w *frameWriter) error {
	if p := r.finishPartial(g.partial()); p != nil {
		w.sendError(hdr.ID, hdr.Op, &wire.Error{
			Code: wire.CodePartialResult,
			Msg:  "shards unavailable: " + joinNames(p.Missing),
		})
		return nil
	}
	return w.send(hdr.ID, wire.KindEnd, hdr.Op, &wire.StreamEnd{Count: total})
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// --- distributed ANN self-join ----------------------------------------------
//
// The all-k-nearest-neighbor self-join decomposes into a per-shard
// self-join plus a boundary fix-up: a point's true neighbors can only
// lie outside its shard if another shard's boundary MBR is closer than
// its k-th within-shard neighbor (MINDIST(p, MBR) ≤ bound). The router
// gathers the per-shard joins, computes each point's candidate foreign
// shards from its within-shard bound, batches the surviving probes as
// one BatchKNN per foreign shard, and merges per point by (distance,
// global id). Shards carry contiguous global-id ranges in curve order,
// so emitting shard streams in shard order yields the same ascending-id
// result stream a single node produces over the curve-ordered dataset.

func (r *Router) handleJoin(ctx context.Context, hdr wire.RequestHeader, req *wire.JoinReq, w *frameWriter) error {
	if !req.Self {
		return badRequest("the router distributes self-joins of one routed dataset; got R=%q, S=%q (run cross-dataset joins on a single backend)", req.R, req.S)
	}
	ds, err := r.dataset(req.R)
	if err != nil {
		return err
	}
	if req.K < 1 {
		return badRequest("k must be at least 1, got %d", req.K)
	}
	k := int(req.K)
	g := r.newGather()

	// Phase A: per-shard self-joins, buffered per shard in stream
	// (ascending local id) order.
	type shardResults struct {
		results []ann.Result // local ids, within-shard neighbors
		extra   [][]wire.Neighbor
	}
	perShard := make([]shardResults, len(ds.shards))
	if err := r.scatter(ctx, g, ds.shards, func(s *shard) error {
		var results []ann.Result
		err := s.backend.do(ctx, func(cli *client.Client) error {
			results = results[:0]
			st, err := cli.SelfJoin(ctx, s.name, k)
			if err != nil {
				return err
			}
			for st.Next() {
				results = append(results, st.Result())
			}
			return st.Close()
		})
		if err != nil {
			return err
		}
		// The engine emits traversal order; the routed stream's contract
		// is ascending global id, so canonicalize each shard's slice by
		// local id here (global order then falls out of the contiguous
		// idBase concatenation).
		sort.Slice(results, func(a, b int) bool { return results[a].ID < results[b].ID })
		si := shardIndex(ds, s)
		perShard[si] = shardResults{results: results, extra: make([][]wire.Neighbor, len(results))}
		return nil
	}); err != nil {
		return err
	}

	// Phase B: boundary fix-up. For each point, its k-th within-shard
	// distance bounds how far a foreign neighbor can be; foreign shards
	// whose MINDIST to the point exceeds it are pruned, the rest are
	// probed in one BatchKNN per shard.
	type probeRef struct {
		shard int // home shard
		pos   int // position in the home shard's result slice
	}
	probes := make([][]probeRef, len(ds.shards)) // target shard -> refs
	prunedProbes := 0
	for si := range ds.shards {
		for pos, res := range perShard[si].results {
			bound := math.Inf(1)
			if len(res.Neighbors) >= k {
				bound = res.Neighbors[k-1].Dist
			}
			for sj, t := range ds.shards {
				if sj == si || g.isMissing(t.name) {
					continue
				}
				if geom.MinDistPointRect(res.Point, t.mbr) <= bound {
					probes[sj] = append(probes[sj], probeRef{shard: si, pos: pos})
				} else {
					prunedProbes++
				}
			}
		}
	}
	r.prune(prunedProbes)

	var probeShards []*shard
	for sj := range ds.shards {
		if len(probes[sj]) > 0 {
			probeShards = append(probeShards, ds.shards[sj])
		}
	}
	var extraMu sync.Mutex
	if err := r.scatter(ctx, g, probeShards, func(s *shard) error {
		sj := shardIndex(ds, s)
		refs := probes[sj]
		pts := make([]ann.Point, len(refs))
		for i, ref := range refs {
			pts[i] = perShard[ref.shard].results[ref.pos].Point
		}
		var res []ann.Result
		err := s.backend.do(ctx, func(cli *client.Client) error {
			var err error
			res, err = cli.BatchKNN(ctx, s.name, pts, k)
			return err
		})
		if err != nil {
			return err
		}
		extraMu.Lock()
		for i, ref := range refs {
			home := &perShard[ref.shard]
			home.extra[ref.pos] = append(home.extra[ref.pos], translate(s, res[i].Neighbors)...)
		}
		extraMu.Unlock()
		return nil
	}); err != nil {
		return err
	}

	// Merge and emit in ascending global id order: shards in shard
	// order, points in local order.
	r.mergeStreams.Observe(float64(len(ds.shards)))
	frame := wire.JoinFrame{Results: make([]wire.Result, 0, joinFrameResults)}
	var total uint64
	flush := func() error {
		if len(frame.Results) == 0 {
			return nil
		}
		err := w.send(hdr.ID, wire.KindStream, hdr.Op, &frame)
		frame.Results = frame.Results[:0]
		return err
	}
	for si, s := range ds.shards {
		for pos, res := range perShard[si].results {
			cands := translate(s, res.Neighbors)
			cands = append(cands, perShard[si].extra[pos]...)
			sortNeighbors(cands)
			if len(cands) > k {
				cands = cands[:k]
			}
			total++
			frame.Results = append(frame.Results, wire.Result{
				ID:        res.ID + s.idBase,
				Point:     res.Point,
				Neighbors: cands,
			})
			if len(frame.Results) >= joinFrameResults {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return r.endStream(hdr, g, total, w)
}
