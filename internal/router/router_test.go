package router

import (
	"context"
	"fmt"
	"math"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/curve"
	"allnn/internal/datagen"
	"allnn/internal/geom"
	"allnn/internal/obs"
	"allnn/internal/server"
)

// --- fixture -----------------------------------------------------------------

// testBackend is one in-process annserve shard the tests can kill.
type testBackend struct {
	srv  *server.Server
	addr string
	done chan error
}

func (b *testBackend) kill(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.srv.Shutdown(ctx); err != nil {
		t.Fatalf("killing backend %s: %v", b.addr, err)
	}
	if err := <-b.done; err != nil {
		t.Fatalf("backend %s serve: %v", b.addr, err)
	}
	b.done = nil
	b.srv.Catalog().CloseAll()
}

// fixture is a routed deployment: n shard backends, a curve-ordered
// single-node baseline over the identical points, and a router in the
// requested mode.
type fixture struct {
	name     string
	pts      []ann.Point // curve order == global id order
	perShard [][2]uint64 // [idBase, count] per shard
	backends []*testBackend
	reg      *obs.Registry
	routed   *client.Client
	single   *client.Client
}

// startBackend serves the given points as index name on a loopback
// listener and registers cleanup.
func startBackend(t *testing.T, name string, pts []ann.Point) *testBackend {
	t.Helper()
	ix, err := ann.BuildIndex(pts, ann.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{})
	if err := srv.Catalog().Add(name, ix); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := &testBackend{srv: srv, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { b.done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if b.done == nil {
			return // already killed by the test
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-b.done
		srv.Catalog().CloseAll()
	})
	return b
}

// startFixture partitions pts into shards Hilbert shards and stands up
// the whole deployment. Backoff is kept short so failure tests don't
// stall on the circuit breaker.
func startFixture(t *testing.T, pts []geom.Point, shards int, mode Mode, fanout int) *fixture {
	t.Helper()
	part, err := curve.Partition(pts, shards, curve.Hilbert)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{name: "pts", reg: obs.NewRegistry()}
	addrs := make([]string, len(part.Shards))
	for i, s := range part.Shards {
		shardPts := make([]ann.Point, len(s.Points))
		for j, idx := range s.Points {
			shardPts[j] = ann.Point(pts[idx])
			f.pts = append(f.pts, ann.Point(pts[idx]))
		}
		f.perShard = append(f.perShard, [2]uint64{uint64(len(f.pts) - len(shardPts)), uint64(len(shardPts))})
		b := startBackend(t, fmt.Sprintf("pts-%d", i), shardPts)
		f.backends = append(f.backends, b)
		addrs[i] = b.addr
	}
	sb := startBackend(t, "pts", f.pts)

	rt, err := New(Config{
		Mode:        mode,
		MaxFanout:   fanout,
		Metrics:     f.reg,
		Dial:        client.DialConfig{Retries: 1, Backoff: 10 * time.Millisecond},
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}, MapFromPartitioning("pts", part, addrs))
	if err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rt.Serve(rln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("router serve: %v", err)
		}
	})

	f.routed = dial(t, rln.Addr().String())
	f.single = dial(t, sb.addr)
	return f
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// uniformPoints is the general-position workload: uniform random floats
// never tie, so parity is exact with no canonicalization caveats.
func uniformPoints(seed int64, n int) []geom.Point {
	return datagen.Uniform(seed, n, datagen.ScaledBounds(2, 1000))
}

// queryMix samples on-data and off-data query points.
func queryMix(pts []ann.Point) []ann.Point {
	qs := []ann.Point{{0, 0}, {500, 500}, {999.5, 3.25}}
	for i := 0; i < len(pts); i += 37 {
		qs = append(qs, pts[i])
	}
	return qs
}

// collectJoin drains a self-join stream; the error (nil, partial, or
// hard failure) is returned alongside whatever arrived.
func collectJoin(t *testing.T, cl *client.Client, name string, k int) ([]ann.Result, error) {
	t.Helper()
	st, err := cl.SelfJoin(context.Background(), name, k)
	if err != nil {
		return nil, err
	}
	var out []ann.Result
	for st.Next() {
		out = append(out, st.Result())
	}
	return out, st.Close()
}

// sortResults canonicalizes a join stream by ascending id (the order
// the router emits natively; a single node emits traversal order).
func sortResults(rs []ann.Result) {
	sort.Slice(rs, func(a, b int) bool { return rs[a].ID < rs[b].ID })
}

type pair struct {
	r, s uint64
	d    float64
}

func collectWithin(t *testing.T, cl *client.Client, name string, dist float64) ([]pair, error) {
	t.Helper()
	var out []pair
	_, err := cl.WithinDistance(context.Background(), name, name, dist, true, func(r, s uint64, d float64) error {
		out = append(out, pair{r, s, d})
		return nil
	})
	sort.Slice(out, func(a, b int) bool {
		if out[a].r != out[b].r {
			return out[a].r < out[b].r
		}
		return out[a].s < out[b].s
	})
	return out, err
}

// --- parity ------------------------------------------------------------------

// TestRoutedParity pins the acceptance criterion: every routed answer
// is identical to the single node's over the same curve-ordered
// dataset — point and batched kNN exactly (k ∈ {1, 4}), range and
// range-points as id-sorted sets, within-distance as the sorted pair
// multiset, and the ANN self-join per point after id-canonicalizing the
// single node's traversal-ordered stream. Runs with serial scatter
// (fanout 1) and parallel fan-out.
func TestRoutedParity(t *testing.T) {
	pts := uniformPoints(11, 600)
	for _, fanout := range []int{1, 0} {
		label := "parallel"
		if fanout == 1 {
			label = "serial"
		}
		t.Run(label, func(t *testing.T) {
			f := startFixture(t, pts, 4, Strict, fanout)
			ctx := context.Background()

			for _, k := range []int{1, 4} {
				for _, q := range queryMix(f.pts) {
					want, err := f.single.KNN(ctx, "pts", q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := f.routed.KNN(ctx, "pts", q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("k=%d q=%v: routed %+v, single %+v", k, q, got, want)
					}
				}

				qs := queryMix(f.pts)
				want, err := f.single.BatchKNN(ctx, "pts", qs, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := f.routed.BatchKNN(ctx, "pts", qs, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("batch k=%d: routed and single answers differ", k)
				}

				gotJoin, err := collectJoin(t, f.routed, "pts", k)
				if err != nil {
					t.Fatal(err)
				}
				if !sort.SliceIsSorted(gotJoin, func(a, b int) bool { return gotJoin[a].ID < gotJoin[b].ID }) {
					t.Fatalf("k=%d: routed join stream is not in ascending global id order", k)
				}
				wantJoin, err := collectJoin(t, f.single, "pts", k)
				if err != nil {
					t.Fatal(err)
				}
				sortResults(wantJoin)
				if len(gotJoin) != len(wantJoin) {
					t.Fatalf("k=%d: routed join has %d results, single %d", k, len(gotJoin), len(wantJoin))
				}
				for i := range wantJoin {
					if !reflect.DeepEqual(gotJoin[i], wantJoin[i]) {
						t.Fatalf("k=%d id=%d: routed %+v, single %+v", k, wantJoin[i].ID, gotJoin[i], wantJoin[i])
					}
				}
			}

			for _, box := range [][2]ann.Point{
				{{100, 100}, {300, 300}},
				{{0, 0}, {1000, 1000}},
				{{400, 400}, {401, 401}}, // likely empty
			} {
				want, err := f.single.Range(ctx, "pts", box[0], box[1])
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
				got, err := f.routed.Range(ctx, "pts", box[0], box[1])
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("range %v: routed %v, single (sorted) %v", box, got, want)
				}

				ids, rpts, err := f.routed.RangePoints(ctx, "pts", box[0], box[1])
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ids, got) && !(len(ids) == 0 && len(got) == 0) {
					t.Fatalf("range-points %v: ids %v, range ids %v", box, ids, got)
				}
				for i, id := range ids {
					if !reflect.DeepEqual(rpts[i], f.pts[id]) {
						t.Fatalf("range-points %v: id %d has point %v, dataset has %v", box, id, rpts[i], f.pts[id])
					}
				}
			}

			gotW, err := collectWithin(t, f.routed, "pts", 30)
			if err != nil {
				t.Fatal(err)
			}
			wantW, err := collectWithin(t, f.single, "pts", 30)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotW) == 0 {
				t.Fatal("within-distance produced no pairs; widen the radius")
			}
			if !reflect.DeepEqual(gotW, wantW) {
				t.Fatalf("within d=30: routed %d pairs, single %d pairs, contents differ", len(gotW), len(wantW))
			}
		})
	}
}

// TestRoutedKNNPrunesShards verifies the two-phase NXNDIST bound does
// real work: on clustered data, interior queries must skip shards whose
// MINDIST exceeds the merged k-best bound, and parity must survive the
// pruning.
func TestRoutedKNNPrunesShards(t *testing.T) {
	pts := datagen.GaussianClusters(7, 800, datagen.ScaledBounds(2, 1000), 20, 0.01)
	// Clamping at the bounds corners can create coincident points whose
	// tie order is engine-defined; drop duplicates to keep parity exact.
	seen := map[[2]float64]bool{}
	var uniq []geom.Point
	for _, p := range pts {
		key := [2]float64{p[0], p[1]}
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, p)
		}
	}
	f := startFixture(t, uniq, 4, Strict, 0)
	ctx := context.Background()

	pruned := f.reg.Counter("router.shards_pruned")
	before := pruned.Value()
	for i := 0; i < len(f.pts); i += 11 {
		q := f.pts[i]
		want, err := f.single.KNN(ctx, "pts", q, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.routed.KNN(ctx, "pts", q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("q=%v: routed %+v, single %+v", q, got, want)
		}
	}
	if pruned.Value() == before {
		t.Fatal("no shard contacts pruned across a clustered kNN sweep; the NXNDIST bound is not biting")
	}
}

// --- failure model -----------------------------------------------------------

// deadShardQuery returns a query point owned by the given shard (its
// first point) and one owned by a different live shard.
func (f *fixture) ownerPoints(dead int) (deadQ, liveQ ann.Point) {
	deadBase := f.perShard[dead][0]
	deadQ = f.pts[deadBase]
	for i := range f.perShard {
		if i != dead {
			return deadQ, f.pts[f.perShard[i][0]]
		}
	}
	panic("single-shard fixture")
}

// TestStrictShardFailure kills one backend under a strict router: any
// request that needs the dead shard fails fast with SHARD_UNAVAILABLE,
// while queries whose bounds prune the dead shard keep answering
// exactly.
func TestStrictShardFailure(t *testing.T) {
	pts := datagen.GaussianClusters(7, 600, datagen.ScaledBounds(2, 1000), 12, 0.01)
	f := startFixture(t, pts, 4, Strict, 0)
	ctx := context.Background()

	const dead = 1
	deadQ, liveQ := f.ownerPoints(dead)
	// Pre-failure sanity: the live query's k=1 answer, for post-kill
	// comparison (its bound must prune the dead shard).
	wantLive, err := f.routed.KNN(ctx, "pts", liveQ, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.backends[dead].kill(t)

	if _, err := f.routed.KNN(ctx, "pts", deadQ, 1); !client.IsShardUnavailable(err) {
		t.Fatalf("kNN owned by the dead shard: got %v, want SHARD_UNAVAILABLE", err)
	}
	if _, err := collectJoin(t, f.routed, "pts", 4); !client.IsShardUnavailable(err) {
		t.Fatalf("self-join with a dead shard: got %v, want SHARD_UNAVAILABLE", err)
	}
	if _, err := collectWithin(t, f.routed, "pts", 20); !client.IsShardUnavailable(err) {
		t.Fatalf("within-distance with a dead shard: got %v, want SHARD_UNAVAILABLE", err)
	}
	if unavailable := f.reg.Counter("router.shard_unavailable").Value(); unavailable == 0 {
		t.Fatal("router.shard_unavailable counter did not advance")
	}

	// An on-cluster k=1 query owned by a live shard: the NXNDIST-seeded
	// bound prunes the dead shard, so strict mode still answers.
	gotLive, err := f.routed.KNN(ctx, "pts", liveQ, 1)
	if err != nil {
		t.Fatalf("kNN pruning the dead shard: %v", err)
	}
	if !reflect.DeepEqual(gotLive, wantLive) {
		t.Fatalf("post-failure answer changed: %+v, want %+v", gotLive, wantLive)
	}
}

// TestDegradedPartialResult kills one backend under a degraded router:
// replies carry the live shards' exact answer plus the PARTIAL_RESULT
// marker, and streams end with PARTIAL_RESULT instead of a clean end.
func TestDegradedPartialResult(t *testing.T) {
	pts := uniformPoints(23, 500)
	f := startFixture(t, pts, 4, Degraded, 0)
	ctx := context.Background()

	const dead = 2
	deadBase, deadCount := f.perShard[dead][0], f.perShard[dead][1]
	inDead := func(id uint64) bool { return id >= deadBase && id < deadBase+deadCount }
	f.backends[dead].kill(t)

	// Degraded kNN is the exact answer over the union of live shards —
	// checked against brute force over the live points.
	q := ann.Point{500, 500}
	const k = 5
	got, err := f.routed.KNN(ctx, "pts", q, k)
	if !client.IsPartialResult(err) {
		t.Fatalf("degraded kNN error: got %v, want PARTIAL_RESULT", err)
	}
	type cand struct {
		id uint64
		d  float64
	}
	var want []cand
	for id, p := range f.pts {
		if inDead(uint64(id)) {
			continue
		}
		dx, dy := p[0]-q[0], p[1]-q[1]
		want = append(want, cand{uint64(id), math.Sqrt(dx*dx + dy*dy)})
	}
	sort.Slice(want, func(a, b int) bool { return want[a].d < want[b].d })
	if len(got) != k {
		t.Fatalf("degraded kNN returned %d neighbors, want %d", len(got), k)
	}
	for i, n := range got {
		if n.ID != want[i].id || math.Abs(n.Dist-want[i].d) > 1e-9 {
			t.Fatalf("degraded kNN rank %d: got id %d dist %v, want id %d dist %v",
				i, n.ID, n.Dist, want[i].id, want[i].d)
		}
	}

	// Degraded streams: data from the live shards, then PARTIAL_RESULT.
	results, err := collectJoin(t, f.routed, "pts", 2)
	if !client.IsPartialResult(err) {
		t.Fatalf("degraded self-join error: got %v, want PARTIAL_RESULT", err)
	}
	if len(results) == 0 {
		t.Fatal("degraded self-join returned no results from the live shards")
	}
	for _, r := range results {
		if inDead(uint64(r.ID)) {
			t.Fatalf("degraded self-join emitted result for dead-shard point %d", r.ID)
		}
		for _, n := range r.Neighbors {
			if inDead(uint64(n.ID)) {
				t.Fatalf("degraded self-join point %d lists dead-shard neighbor %d", r.ID, n.ID)
			}
		}
	}
	if got := len(results); got != len(f.pts)-int(deadCount) {
		t.Fatalf("degraded self-join returned %d results, want %d (live points)", got, len(f.pts)-int(deadCount))
	}

	pairs, err := collectWithin(t, f.routed, "pts", 40)
	if !client.IsPartialResult(err) {
		t.Fatalf("degraded within error: got %v, want PARTIAL_RESULT", err)
	}
	if len(pairs) == 0 {
		t.Fatal("degraded within-distance returned no pairs from the live shards")
	}
	for _, p := range pairs {
		if inDead(p.r) || inDead(p.s) {
			t.Fatalf("degraded within emitted dead-shard pair (%d, %d)", p.r, p.s)
		}
	}
	if f.reg.Counter("router.partial_results").Value() == 0 {
		t.Fatal("router.partial_results counter did not advance")
	}
}

// --- request validation ------------------------------------------------------

func TestRouterRejects(t *testing.T) {
	f := startFixture(t, uniformPoints(5, 200), 2, Strict, 0)
	ctx := context.Background()

	if _, err := f.routed.KNN(ctx, "nope", ann.Point{1, 2}, 1); !client.IsNotFound(err) {
		t.Errorf("unknown dataset: got %v, want NOT_FOUND", err)
	}
	if _, err := f.routed.KNN(ctx, "pts", ann.Point{1, 2, 3}, 1); !client.IsBadRequest(err) {
		t.Errorf("dimension mismatch: got %v, want BAD_REQUEST", err)
	}
	if _, err := f.routed.KNN(ctx, "pts", ann.Point{1, 2}, 0); !client.IsBadRequest(err) {
		t.Errorf("k=0: got %v, want BAD_REQUEST", err)
	}
	st, err := f.routed.SelfJoinApprox(ctx, "pts", 2, client.JoinOptions{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for st.Next() {
	}
	if err := st.Close(); !client.IsBadRequest(err) {
		t.Errorf("approximate routed join: got %v, want BAD_REQUEST", err)
	}
	if _, err := f.routed.WithinDistance(ctx, "pts", "other", 5, true, func(uint64, uint64, float64) error { return nil }); !client.IsBadRequest(err) {
		t.Errorf("cross-dataset within: got %v, want BAD_REQUEST", err)
	}
	if _, err := f.routed.Insert(ctx, "pts", nil, []ann.Point{{1, 2}}); !client.IsBadRequest(err) {
		t.Errorf("mutation through the router: got %v, want BAD_REQUEST", err)
	}
}

func TestShardMapServed(t *testing.T) {
	f := startFixture(t, uniformPoints(3, 300), 3, Strict, 0)
	m, err := f.routed.ShardMap(context.Background(), "pts")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "pts" || len(m.Shards) != 3 {
		t.Fatalf("shard map: name %q, %d shards; want pts, 3", m.Name, len(m.Shards))
	}
	var total uint64
	for i, s := range m.Shards {
		if s.Count == 0 {
			t.Errorf("shard %d is empty", i)
		}
		if s.IDBase != total {
			t.Errorf("shard %d id base %d, want %d", i, s.IDBase, total)
		}
		total += s.Count
	}
	if total != 300 {
		t.Fatalf("shard counts sum to %d, want 300", total)
	}
	if _, err := f.routed.ShardMap(context.Background(), "nope"); !client.IsNotFound(err) {
		t.Fatalf("unknown dataset shard map: got %v, want NOT_FOUND", err)
	}
}

// --- unit tests --------------------------------------------------------------

func TestGatherPartialDedup(t *testing.T) {
	g := &gather{mode: Degraded}
	for _, name := range []string{"b", "a", "b", "a", "c"} {
		if !g.shardDown(name, fmt.Errorf("down")) {
			t.Fatal("degraded gather aborted on a shard failure")
		}
	}
	p := g.partial()
	if p == nil || !reflect.DeepEqual(p.Missing, []string{"a", "b", "c"}) {
		t.Fatalf("partial() = %+v, want sorted deduped [a b c]", p)
	}
	if !g.isMissing("a") || g.isMissing("d") {
		t.Fatal("isMissing misreports")
	}
}

func TestInflate(t *testing.T) {
	r := geom.NewRect(geom.Point{1, 2}, geom.Point{3, 4})
	in := inflate(r, 0.5)
	if !reflect.DeepEqual(in.Lo, geom.Point{0.5, 1.5}) || !reflect.DeepEqual(in.Hi, geom.Point{3.5, 4.5}) {
		t.Fatalf("inflate = %+v", in)
	}
	// The input must be untouched (Clone semantics).
	if !reflect.DeepEqual(r.Lo, geom.Point{1, 2}) {
		t.Fatalf("inflate mutated its input: %+v", r)
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"strict", Strict, true}, {"", Strict, true}, {"degraded", Degraded, true}, {"lenient", 0, false},
	} {
		got, err := ParseMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}
