package router

import (
	"context"
	"math"
	"sort"
	"sync"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/geom"
	"allnn/internal/wire"
)

// --- kNN (point and batch) --------------------------------------------------
//
// Routed kNN is two-phase, after the paper's bound structure:
//
//  1. The shard owning the query point's curve key answers first; its
//     k-th neighbor distance is an upper bound on the true k-th
//     distance. Before any shard answers, the NXNDIST seed already
//     bounds the radius: every shard MBR guarantees one point within
//     NXNDIST(q, MBR) of q (Lemma 3.1), so the k-th smallest NXNDIST
//     across shards bounds the k-th neighbor distance.
//  2. Only the shards whose MINDIST(q, MBR) does not exceed the bound
//     are contacted; the rest are pruned. Gathered candidates merge by
//     (distance, global id).
//
// The NXNDIST seed is geometric: it holds whether or not the shard's
// backend is reachable, because the shard's points exist either way —
// so in strict mode (where the answer always covers the full dataset,
// or fails) it is always safe. A degraded reply covers only the live
// shards' points, and a bound derived from a dead shard's MBR could
// wrongly prune a live shard, so degraded gathers seed with +Inf.

// knnAcc accumulates one query's candidates, kept sorted by
// (distance, global id) so the k-th distance bound and the final top-k
// fall out directly.
type knnAcc struct {
	mu    sync.Mutex
	k     int
	seed  float64
	cands []wire.Neighbor
}

func newKNNAcc(k int, seed float64) *knnAcc { return &knnAcc{k: k, seed: seed} }

// add merges translated neighbors from one shard.
func (a *knnAcc) add(nbs []wire.Neighbor) {
	a.mu.Lock()
	a.cands = append(a.cands, nbs...)
	sortNeighbors(a.cands)
	if len(a.cands) > a.k {
		a.cands = a.cands[:a.k]
	}
	a.mu.Unlock()
}

// bound returns the current pruning radius: the k-th candidate
// distance once k candidates are gathered, never above the seed.
func (a *knnAcc) bound() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.seed
	if len(a.cands) >= a.k && a.cands[a.k-1].Dist < b {
		b = a.cands[a.k-1].Dist
	}
	return b
}

// top returns the final top-k (already sorted and trimmed).
func (a *knnAcc) top() []wire.Neighbor {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cands
}

// sortNeighbors orders by ascending distance, ties by ascending global
// id — the canonical merged order.
func sortNeighbors(nbs []wire.Neighbor) {
	sort.SliceStable(nbs, func(i, j int) bool {
		if nbs[i].Dist != nbs[j].Dist {
			return nbs[i].Dist < nbs[j].Dist
		}
		return nbs[i].ID < nbs[j].ID
	})
}

// translate converts one shard's local-id neighbors to global ids.
func translate(s *shard, nbs []ann.Neighbor) []wire.Neighbor {
	out := make([]wire.Neighbor, len(nbs))
	for i, n := range nbs {
		out[i] = wire.Neighbor{ID: n.ID + s.idBase, Dist: n.Dist, Point: n.Point}
	}
	return out
}

// nxnSeed returns the k-th smallest NXNDIST(q, shard MBR) across
// shards — the pre-contact bound on the k-th neighbor distance — or
// +Inf when fewer than k shards exist.
func nxnSeed(ds *dataset, q geom.Point, k int) float64 {
	dists := make([]float64, 0, len(ds.shards))
	for _, s := range ds.shards {
		if s.count == 0 {
			continue
		}
		dists = append(dists, geom.NXNDist(geom.PointRect(q), s.mbr))
	}
	if len(dists) < k {
		return math.Inf(1)
	}
	sort.Float64s(dists)
	return dists[k-1]
}

// routedBatch answers a batch of kNN probes with grouped two-phase
// scatter: one BatchKNN per owner shard, then one BatchKNN per
// fan-out shard carrying every query that could not prune it. Returns
// per-query neighbor lists (request order) and the pruned-shard count.
func (r *Router) routedBatch(ctx context.Context, g *gather, ds *dataset, queries [][]float64, k int) ([][]wire.Neighbor, int, error) {
	seedInf := r.cfg.Mode == Degraded
	accs := make([]*knnAcc, len(queries))
	owners := make([]int, len(queries))
	for qi, q := range queries {
		seed := math.Inf(1)
		if !seedInf {
			seed = nxnSeed(ds, q, k)
		}
		accs[qi] = newKNNAcc(k, seed)
		owners[qi] = ds.locate(q)
	}

	// Phase 1: group queries by owner shard, in shard order.
	phase1 := make(map[int][]int) // shard index -> query indices
	for qi := range queries {
		phase1[owners[qi]] = append(phase1[owners[qi]], qi)
	}
	runPhase := func(groups map[int][]int) error {
		shards := make([]*shard, 0, len(groups))
		for si := range ds.shards {
			if _, ok := groups[si]; ok {
				shards = append(shards, ds.shards[si])
			}
		}
		return r.scatter(ctx, g, shards, func(s *shard) error {
			si := shardIndex(ds, s)
			qidx := groups[si]
			pts := make([]ann.Point, len(qidx))
			for i, qi := range qidx {
				pts[i] = queries[qi]
			}
			var res []ann.Result
			err := s.backend.do(ctx, func(cli *client.Client) error {
				var err error
				res, err = cli.BatchKNN(ctx, s.name, pts, k)
				return err
			})
			if err != nil {
				return err
			}
			for i, rr := range res {
				accs[qidx[i]].add(translate(s, rr.Neighbors))
			}
			return nil
		})
	}
	if err := runPhase(phase1); err != nil {
		return nil, 0, err
	}

	// Phase 2: per query, fan out only to the shards whose MINDIST beats
	// the bound gathered so far.
	pruned := 0
	phase2 := make(map[int][]int)
	for qi, q := range queries {
		b := accs[qi].bound()
		for si, s := range ds.shards {
			if si == owners[qi] {
				continue
			}
			if geom.MinDistPointRect(q, s.mbr) <= b {
				phase2[si] = append(phase2[si], qi)
			} else {
				pruned++
			}
		}
	}
	if err := runPhase(phase2); err != nil {
		return nil, 0, err
	}

	out := make([][]wire.Neighbor, len(queries))
	for qi := range out {
		out[qi] = accs[qi].top()
	}
	return out, pruned, nil
}

// shardIndex finds s's position in the dataset (shard counts are small;
// linear scan beats carrying the index through the scatter plumbing).
func shardIndex(ds *dataset, s *shard) int {
	for i, t := range ds.shards {
		if t == s {
			return i
		}
	}
	return -1
}

func (r *Router) handleKNN(ctx context.Context, hdr wire.RequestHeader, req *wire.KNNReq, w *frameWriter) error {
	ds, err := r.dataset(req.Index)
	if err != nil {
		return err
	}
	if req.K < 1 {
		return badRequest("k must be at least 1, got %d", req.K)
	}
	if len(req.Point) != ds.dim {
		return badRequest("query point has %d dims, dataset %q has %d", len(req.Point), req.Index, ds.dim)
	}
	g := r.newGather()
	res, pruned, err := r.routedBatch(ctx, g, ds, [][]float64{req.Point}, int(req.K))
	if err != nil {
		return err
	}
	r.prune(pruned)
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.KNNReply{
		Neighbors: res[0],
		Partial:   r.finishPartial(g.partial()),
	})
}

func (r *Router) handleBatchKNN(ctx context.Context, hdr wire.RequestHeader, req *wire.BatchKNNReq, w *frameWriter) error {
	ds, err := r.dataset(req.Index)
	if err != nil {
		return err
	}
	if req.K < 1 {
		return badRequest("k must be at least 1, got %d", req.K)
	}
	for i, p := range req.Points {
		if len(p) != ds.dim {
			return badRequest("query point %d has %d dims, dataset %q has %d", i, len(p), req.Index, ds.dim)
		}
	}
	g := r.newGather()
	res, pruned, err := r.routedBatch(ctx, g, ds, req.Points, int(req.K))
	if err != nil {
		return err
	}
	r.prune(pruned)
	results := make([]wire.Result, len(req.Points))
	for i, p := range req.Points {
		results[i] = wire.Result{ID: uint64(i), Point: p, Neighbors: res[i]}
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.BatchKNNReply{
		Results: results,
		Partial: r.finishPartial(g.partial()),
	})
}

// --- box queries ------------------------------------------------------------

// boxShards validates the box and selects the shards whose boundary
// MBR intersects it, counting the rest as pruned.
func (r *Router) boxShards(ds *dataset, name string, lo, hi []float64) ([]*shard, *wire.Error) {
	if len(lo) != ds.dim || len(hi) != ds.dim {
		return nil, badRequest("box dims (%d, %d) do not match dataset %q dim %d", len(lo), len(hi), name, ds.dim)
	}
	for d := range lo {
		if lo[d] > hi[d] {
			return nil, badRequest("inverted box bounds in dimension %d: [%g, %g]", d, lo[d], hi[d])
		}
	}
	box := geom.Rect{Lo: lo, Hi: hi}
	var hit []*shard
	pruned := 0
	for _, s := range ds.shards {
		if s.mbr.Intersects(box) {
			hit = append(hit, s)
		} else {
			pruned++
		}
	}
	r.prune(pruned)
	return hit, nil
}

func (r *Router) handleRange(ctx context.Context, hdr wire.RequestHeader, req *wire.RangeReq, w *frameWriter) error {
	ds, err := r.dataset(req.Index)
	if err != nil {
		return err
	}
	hit, werr := r.boxShards(ds, req.Index, req.Lo, req.Hi)
	if werr != nil {
		return werr
	}
	g := r.newGather()
	var mu sync.Mutex
	var ids []uint64
	if err := r.scatter(ctx, g, hit, func(s *shard) error {
		var local []uint64
		err := s.backend.do(ctx, func(cli *client.Client) error {
			var err error
			local, err = cli.Range(ctx, s.name, req.Lo, req.Hi)
			return err
		})
		if err != nil {
			return err
		}
		mu.Lock()
		for _, id := range local {
			ids = append(ids, id+s.idBase)
		}
		mu.Unlock()
		return nil
	}); err != nil {
		return err
	}
	// Canonical routed order: ascending global id (a single node's
	// traversal order does not survive a merge).
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return w.send(hdr.ID, wire.KindResult, hdr.Op, &wire.RangeReply{
		IDs:     ids,
		Partial: r.finishPartial(g.partial()),
	})
}

func (r *Router) handleRangePoints(ctx context.Context, hdr wire.RequestHeader, req *wire.RangePointsReq, w *frameWriter) error {
	ds, err := r.dataset(req.Index)
	if err != nil {
		return err
	}
	hit, werr := r.boxShards(ds, req.Index, req.Lo, req.Hi)
	if werr != nil {
		return werr
	}
	g := r.newGather()
	type entry struct {
		id uint64
		pt []float64
	}
	var mu sync.Mutex
	var entries []entry
	if err := r.scatter(ctx, g, hit, func(s *shard) error {
		var ids []uint64
		var pts []ann.Point
		err := s.backend.do(ctx, func(cli *client.Client) error {
			var err error
			ids, pts, err = cli.RangePoints(ctx, s.name, req.Lo, req.Hi)
			return err
		})
		if err != nil {
			return err
		}
		mu.Lock()
		for i, id := range ids {
			entries = append(entries, entry{id: id + s.idBase, pt: pts[i]})
		}
		mu.Unlock()
		return nil
	}); err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	reply := &wire.RangePointsReply{
		IDs:     make([]uint64, len(entries)),
		Points:  make([][]float64, len(entries)),
		Partial: r.finishPartial(g.partial()),
	}
	for i, e := range entries {
		reply.IDs[i] = e.id
		reply.Points[i] = e.pt
	}
	return w.send(hdr.ID, wire.KindResult, hdr.Op, reply)
}
