// Package router implements annrouter: a scatter-gather front end that
// serves the internal/wire protocol over a dataset space-partitioned
// across annserve backends. Each backend owns one shard — a contiguous
// space-filling-curve key range of the dataset (internal/curve) — and
// the router holds the shard map: per shard, the backend address, the
// key range, the contiguous global-id range, and the tight boundary MBR
// of the shard's points.
//
// Queries scatter only to the shards whose boundary MBR can contribute:
// point kNN runs two-phase (the shard owning the query point's curve
// key first, then only the shards whose MINDIST to the query beats the
// gathered k-th distance, with the paper's NXNDIST bound seeding the
// radius before any shard answers), box queries go to intersecting MBRs
// only, and distributed self-joins combine per-shard self-joins with a
// boundary fix-up pass. Because shards carry contiguous global-id
// ranges in curve order, gathered streams concatenate into one globally
// id-ordered stream with no sort — byte-identical to a single-node run
// over the curve-ordered unpartitioned dataset.
//
// A dead backend fails a strict-mode router's requests fast with
// SHARD_UNAVAILABLE; a degraded-mode router answers with what the live
// shards produced, marked PARTIAL_RESULT. Either way the semantics are
// crisp: a degraded reply is the exact answer over the union of the
// live shards' points.
package router

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"allnn/internal/curve"
	"allnn/internal/geom"
	"allnn/internal/wire"
)

// MapShard is one shard entry of the on-disk shard map (the JSON twin
// of wire.ShardInfo).
type MapShard struct {
	// Name is the index name mounted on the backend's catalog.
	Name string `json:"name"`
	// Addr is the backend's host:port.
	Addr string `json:"addr"`
	// LoKey and HiKey delimit the shard's curve-key range (inclusive on
	// both ends; consecutive shards tile the whole uint64 key space).
	LoKey uint64 `json:"lo_key"`
	HiKey uint64 `json:"hi_key"`
	// IDBase is the global id of the shard's first point: global id =
	// IDBase + local id on the backend.
	IDBase uint64 `json:"id_base"`
	Count  uint64 `json:"count"`
	// MBRLo and MBRHi are the corners of the shard's boundary MBR.
	MBRLo []float64 `json:"mbr_lo"`
	MBRHi []float64 `json:"mbr_hi"`
}

// MapFile is the on-disk shard map: one logical dataset cut into
// curve-range shards. cmd/anngen writes it next to the per-shard point
// files; cmd/annrouter loads it at startup.
type MapFile struct {
	// Name is the logical dataset name the router serves.
	Name string `json:"name"`
	// Curve is the partitioning curve ("zorder" or "hilbert").
	Curve string `json:"curve"`
	// BoundsLo and BoundsHi are the curve encoder's bounds (the dataset
	// bounding rect at partitioning time); query points map to curve
	// keys against them.
	BoundsLo []float64 `json:"bounds_lo"`
	BoundsHi []float64 `json:"bounds_hi"`
	Shards   []MapShard `json:"shards"`
}

// LoadMapFile reads and validates a shard map.
func LoadMapFile(path string) (*MapFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("router: read shard map: %w", err)
	}
	var m MapFile
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("router: parse shard map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("router: shard map %s: %w", path, err)
	}
	return &m, nil
}

// Save writes the map as indented JSON.
func (m *MapFile) Save(path string) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Validate checks the structural invariants routing depends on: a known
// curve, matching dimensionalities, and shard key ranges that are
// adjacent, ascending and tile the whole key space, with contiguous
// global-id ranges in shard order.
func (m *MapFile) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("dataset name is empty")
	}
	if _, err := curve.ParseKind(m.Curve); err != nil {
		return err
	}
	dim := len(m.BoundsLo)
	if dim == 0 || len(m.BoundsHi) != dim {
		return fmt.Errorf("bounds dims (%d, %d) invalid", len(m.BoundsLo), len(m.BoundsHi))
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("no shards")
	}
	if m.Shards[0].LoKey != 0 {
		return fmt.Errorf("first shard starts at key %d, want 0", m.Shards[0].LoKey)
	}
	if last := m.Shards[len(m.Shards)-1]; last.HiKey != math.MaxUint64 {
		return fmt.Errorf("last shard ends at key %d, want MaxUint64", last.HiKey)
	}
	var idNext uint64
	for i, s := range m.Shards {
		if s.Name == "" || s.Addr == "" {
			return fmt.Errorf("shard %d: empty name or addr", i)
		}
		if s.LoKey > s.HiKey {
			return fmt.Errorf("shard %d: inverted key range [%d, %d]", i, s.LoKey, s.HiKey)
		}
		if i > 0 && s.LoKey != m.Shards[i-1].HiKey+1 {
			return fmt.Errorf("shard %d: range starts at %d, previous ends at %d (must be adjacent)", i, s.LoKey, m.Shards[i-1].HiKey)
		}
		if s.IDBase != idNext {
			return fmt.Errorf("shard %d: id base %d, want %d (global ids must be contiguous in shard order)", i, s.IDBase, idNext)
		}
		idNext += s.Count
		if len(s.MBRLo) != dim || len(s.MBRHi) != dim {
			return fmt.Errorf("shard %d: MBR dims (%d, %d) do not match bounds dim %d", i, len(s.MBRLo), len(s.MBRHi), dim)
		}
	}
	return nil
}

// ToWire converts the map to its wire form (served over OpShardMap).
func (m *MapFile) ToWire() wire.ShardMap {
	kind, _ := curve.ParseKind(m.Curve)
	wm := wire.ShardMap{
		Name:     m.Name,
		Curve:    uint8(kind),
		BoundsLo: m.BoundsLo,
		BoundsHi: m.BoundsHi,
		Shards:   make([]wire.ShardInfo, len(m.Shards)),
	}
	for i, s := range m.Shards {
		wm.Shards[i] = wire.ShardInfo{
			Name: s.Name, Addr: s.Addr,
			LoKey: s.LoKey, HiKey: s.HiKey,
			IDBase: s.IDBase, Count: s.Count,
			MBRLo: s.MBRLo, MBRHi: s.MBRHi,
		}
	}
	return wm
}

// MapFromPartitioning builds the shard map for a partitioning: shard i
// is named "<name>-<i>", served at addrs[i] (addrs may be nil — fill
// Addr in before serving). Point counts and id bases follow the
// partitioning's curve order.
func MapFromPartitioning(name string, p *curve.Partitioning, addrs []string) *MapFile {
	m := &MapFile{
		Name:     name,
		Curve:    p.Kind.String(),
		BoundsLo: p.Bounds.Lo,
		BoundsHi: p.Bounds.Hi,
	}
	var idBase uint64
	for i, s := range p.Shards {
		ms := MapShard{
			Name:   fmt.Sprintf("%s-%d", name, i),
			LoKey:  s.LoKey,
			HiKey:  s.HiKey,
			IDBase: idBase,
			Count:  uint64(len(s.Points)),
			MBRLo:  s.MBR.Lo,
			MBRHi:  s.MBR.Hi,
		}
		if i < len(addrs) {
			ms.Addr = addrs[i]
		}
		idBase += ms.Count
		m.Shards = append(m.Shards, ms)
	}
	return m
}

// dataset is the runtime form of one routed dataset: parsed rects, the
// curve encoder for key routing, and the backends.
type dataset struct {
	name    string
	curve   curve.Kind
	bounds  geom.Rect
	dim     int
	enc     curve.Encoder
	shards  []*shard
	wireMap wire.ShardMap
}

// shard pairs one map entry with its backend connection state.
type shard struct {
	name    string // index name on the backend (also the PartialInfo label)
	idBase  uint64
	count   uint64
	loKey   uint64
	hiKey   uint64
	mbr     geom.Rect
	backend *backend
}

// newDataset parses a validated map into its runtime form, one backend
// per shard (two shards on the same address get independent
// connections — a wire client serialises requests per connection, and
// scatter legs must not serialise behind each other).
func newDataset(m *MapFile, cfg Config) (*dataset, error) {
	kind, err := curve.ParseKind(m.Curve)
	if err != nil {
		return nil, err
	}
	bounds := geom.Rect{Lo: m.BoundsLo, Hi: m.BoundsHi}
	enc, err := curve.NewEncoder(kind, bounds)
	if err != nil {
		return nil, err
	}
	ds := &dataset{
		name:    m.Name,
		curve:   kind,
		bounds:  bounds,
		dim:     bounds.Dim(),
		enc:     enc,
		wireMap: m.ToWire(),
	}
	for _, s := range m.Shards {
		ds.shards = append(ds.shards, &shard{
			name:   s.Name,
			idBase: s.IDBase,
			count:  s.Count,
			loKey:  s.LoKey,
			hiKey:  s.HiKey,
			mbr:    geom.Rect{Lo: s.MBRLo, Hi: s.MBRHi},
			backend: newBackend(s.Name, s.Addr, cfg),
		})
	}
	return ds, nil
}

// locate returns the index of the shard owning q's curve key. The
// encoder clamps points outside the partitioning bounds to the nearest
// cell, so every query point routes to exactly one owner.
func (ds *dataset) locate(q geom.Point) int {
	key := ds.enc.Value(q)
	return curve.LocateKey(key, len(ds.shards), func(i int) uint64 { return ds.shards[i].loKey })
}

// points returns the dataset's total point count.
func (ds *dataset) points() uint64 {
	var n uint64
	for _, s := range ds.shards {
		n += s.count
	}
	return n
}
