package datagen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"allnn/internal/geom"
)

// Dataset file format: a small header followed by raw little-endian
// float64 coordinates, n*dim of them.
//
//	magic   uint32  "APTS"
//	version uint32  1
//	dim     uint32
//	count   uint64
//	coords  float64 x (count*dim)
const (
	fileMagic   = 0x41505453
	fileVersion = 1
)

// WriteFile stores pts at path.
func WriteFile(path string, pts []geom.Point) error {
	if len(pts) == 0 {
		return fmt.Errorf("datagen: refusing to write empty dataset %s", path)
	}
	dim := len(pts[0])
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(dim))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(pts)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var buf [8]byte
	for _, p := range pts {
		if len(p) != dim {
			f.Close()
			return fmt.Errorf("datagen: ragged dataset: point with dim %d, expected %d", len(p), dim)
		}
		for _, v := range p {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := w.Write(buf[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a dataset written by WriteFile.
func ReadFile(path string) ([]geom.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("datagen: short header in %s: %w", path, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != fileMagic {
		return nil, fmt.Errorf("datagen: %s is not a dataset file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != fileVersion {
		return nil, fmt.Errorf("datagen: %s has unsupported version %d", path, v)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	count64 := binary.LittleEndian.Uint64(hdr[12:])
	if dim < 1 || dim > 1024 {
		return nil, fmt.Errorf("datagen: %s has implausible dimensionality %d", path, dim)
	}
	// Validate the declared count against the actual file size before
	// allocating: a corrupt header must produce a clean error, not an
	// out-of-memory panic on the slice allocation.
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if maxCount := (uint64(st.Size()) - uint64(len(hdr))) / (8 * uint64(dim)); count64 > maxCount {
		return nil, fmt.Errorf("datagen: %s declares %d points but holds at most %d (truncated or corrupt header)",
			path, count64, maxCount)
	}
	count := int(count64)
	pts := make([]geom.Point, count)
	coords := make([]byte, 8*dim)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(r, coords); err != nil {
			return nil, fmt.Errorf("datagen: truncated dataset %s at point %d: %w", path, i, err)
		}
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = math.Float64frombits(binary.LittleEndian.Uint64(coords[8*d:]))
		}
		pts[i] = p
	}
	return pts, nil
}
