// Package datagen produces the experimental workloads. It plays the role
// of the GSTD generator (Theodoridis et al.) used in the paper for the
// synthetic 500K 2/4/6-D datasets, and provides deterministic surrogates
// for the two real datasets the paper uses but which are not available
// offline:
//
//   - TAC: the Twin Astrographic Catalog (~700 K 2-D star positions).
//     The surrogate is a many-cluster Gaussian mixture over a sky band
//     plus a uniform background — matching its cardinality,
//     dimensionality, and non-uniform clustered density, which is what
//     drives ANN cost on this dataset.
//   - FC: the UCI Forest Cover dataset (~580 K rows, the 10 numeric
//     attributes). The surrogate draws from a correlated latent-factor
//     model: the attributes of a cell (elevation, slopes, distances,
//     hillshades...) are correlated, and it is this correlation structure
//     in 10-D that shapes index and join behaviour.
//
// All generators are deterministic in their seed.
package datagen

import (
	"math"
	"math/rand"

	"allnn/internal/geom"
)

// Uniform returns n points uniformly distributed in bounds.
func Uniform(seed int64, n int, bounds geom.Rect) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	dim := bounds.Dim()
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = bounds.Lo[d] + rng.Float64()*(bounds.Hi[d]-bounds.Lo[d])
		}
		pts[i] = p
	}
	return pts
}

// GaussianClusters returns n points drawn from `clusters` Gaussian blobs
// with the given relative spread (fraction of the bounds extent used as
// the standard deviation). Points are clamped to bounds.
func GaussianClusters(seed int64, n int, bounds geom.Rect, clusters int, spread float64) []geom.Point {
	if clusters < 1 {
		clusters = 1
	}
	rng := rand.New(rand.NewSource(seed))
	dim := bounds.Dim()
	centers := Uniform(seed^0x5bf03635, clusters, bounds)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			sigma := (bounds.Hi[d] - bounds.Lo[d]) * spread
			p[d] = clampf(c[d]+rng.NormFloat64()*sigma, bounds.Lo[d], bounds.Hi[d])
		}
		pts[i] = p
	}
	return pts
}

// Skewed returns n points whose coordinates are concentrated toward the
// low corner of bounds with the given exponent (1 = uniform; larger =
// more skew). This models the skewed distributions that defeat
// hash-partitioned ANN methods.
func Skewed(seed int64, n int, bounds geom.Rect, exponent float64) []geom.Point {
	if exponent < 1 {
		exponent = 1
	}
	rng := rand.New(rand.NewSource(seed))
	dim := bounds.Dim()
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			u := math.Pow(rng.Float64(), exponent)
			p[d] = bounds.Lo[d] + u*(bounds.Hi[d]-bounds.Lo[d])
		}
		pts[i] = p
	}
	return pts
}

// UnitBounds returns the [0,1]^dim rectangle.
func UnitBounds(dim int) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := range hi {
		hi[d] = 1
	}
	return geom.NewRect(lo, hi)
}

// ScaledBounds returns the [0,extent]^dim rectangle.
func ScaledBounds(dim int, extent float64) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := range hi {
		hi[d] = extent
	}
	return geom.NewRect(lo, hi)
}

// Synthetic500K reproduces the paper's GSTD workloads (Table 2): 500 K
// points of the requested dimensionality in a [0,1000]^dim space, drawn
// as a Gaussian-cluster mixture (the GSTD generator's gaussian mode).
// n scales the cardinality (pass 500_000 for the paper's size).
//
// The mixture is fully clustered: a uniform background component looks
// harmless in 2-D but in 6-D its points are so isolated that their NN
// radii span a large fraction of the space, which turns *every* method's
// cost profile into one the paper's numbers clearly do not exhibit.
func Synthetic500K(seed int64, n, dim int) []geom.Point {
	bounds := ScaledBounds(dim, 1000)
	return GaussianClusters(seed, n, bounds, 100, 0.02)
}

// TACSurrogate generates a TAC-like 2-D star catalog of n points
// (the real catalog has ~700 K). Coordinates are (right ascension,
// declination) in degrees: RA in [0, 360), Dec in [-90, 90]. Stars are a
// mixture of a smooth background whose density increases toward the
// celestial equator band and many compact "star field" clusters.
func TACSurrogate(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 250
	clusterCenters := make([]geom.Point, clusters)
	for i := range clusterCenters {
		clusterCenters[i] = geom.Point{rng.Float64() * 360, sampleDec(rng)}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		if rng.Float64() < 0.6 {
			// Compact star field: sigma ~ 0.5 degrees.
			c := clusterCenters[rng.Intn(clusters)]
			pts[i] = geom.Point{
				wrap360(c[0] + rng.NormFloat64()*0.5),
				clampf(c[1]+rng.NormFloat64()*0.5, -90, 90),
			}
		} else {
			pts[i] = geom.Point{rng.Float64() * 360, sampleDec(rng)}
		}
	}
	return pts
}

// sampleDec draws a declination concentrated toward the equator
// (|dec| small) with tails to the poles, via rejection sampling against a
// cosine-like density.
func sampleDec(rng *rand.Rand) float64 {
	for {
		dec := rng.Float64()*180 - 90
		// Acceptance proportional to 0.25 + 0.75*cos(dec)^2.
		c := math.Cos(dec * math.Pi / 180)
		if rng.Float64() < 0.25+0.75*c*c {
			return dec
		}
	}
}

func wrap360(v float64) float64 {
	v = math.Mod(v, 360)
	if v < 0 {
		v += 360
	}
	return v
}

// FCSurrogate generates an FC-like 10-D dataset of n points (the real
// dataset has ~580 K rows over its 10 numeric attributes). Attributes are
// produced from a 3-factor latent model plus attribute noise, then mapped
// to ranges resembling the Forest Cover numeric columns (elevation,
// aspect, slope, distances, hillshades).
func FCSurrogate(seed int64, n int) []geom.Point {
	const dim = 10
	const factors = 3
	rng := rand.New(rand.NewSource(seed))
	// Loading matrix: how strongly each attribute follows each factor.
	loading := make([][]float64, dim)
	for d := range loading {
		loading[d] = make([]float64, factors)
		for f := range loading[d] {
			loading[d][f] = rng.NormFloat64()
		}
	}
	// Attribute scales and offsets (roughly Forest-Cover-like ranges).
	ranges := [dim][2]float64{
		{1800, 3900}, // elevation (m)
		{0, 360},     // aspect (deg)
		{0, 66},      // slope (deg)
		{0, 1400},    // horizontal distance to hydrology
		{-170, 600},  // vertical distance to hydrology
		{0, 7100},    // horizontal distance to roadways
		{0, 254},     // hillshade 9am
		{0, 254},     // hillshade noon
		{0, 254},     // hillshade 3pm
		{0, 7170},    // horizontal distance to fire points
	}
	// The real dataset is a raster of 30 m x 30 m cells: adjacent cells
	// of the same forest patch have nearly identical attribute tuples, so
	// the attribute space consists of dense "region" clouds, typical NN
	// distances are tiny relative to the attribute ranges, and a large
	// share of rows are exact duplicates (all ten columns are integers).
	// The surrogate reproduces this by drawing one latent tuple per
	// region, emitting member rows with small integer jitter, and making
	// ~30% of rows exact copies of earlier rows. Regions hold ~256 rows,
	// so k <= 50 neighborhoods stay inside one patch cloud.
	regions := n / 256
	if regions < 1 {
		regions = 1
	}
	regionCenter := make([][]float64, regions)
	z := make([]float64, factors)
	for rIdx := range regionCenter {
		for f := range z {
			z[f] = rng.NormFloat64()
		}
		c := make([]float64, dim)
		for d := 0; d < dim; d++ {
			v := 0.0
			for f := 0; f < factors; f++ {
				v += loading[d][f] * z[f]
			}
			v = v/2 + rng.NormFloat64()*0.35 // region-level attribute noise
			// Map the roughly standard-normal v into the attribute range
			// through a logistic squash (keeps everything in range while
			// preserving the correlation structure).
			u := 1 / (1 + math.Exp(-v))
			c[d] = ranges[d][0] + u*(ranges[d][1]-ranges[d][0])
		}
		regionCenter[rIdx] = c
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		if i > 16 && rng.Float64() < 0.3 {
			// Exact duplicate of an earlier row.
			pts[i] = pts[rng.Intn(i)]
			continue
		}
		c := regionCenter[rng.Intn(regions)]
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			// Within-region scatter: ~0.5% of the attribute range, then
			// rounded to an integer like the real (all-integer) columns.
			jitter := rng.NormFloat64() * (ranges[d][1] - ranges[d][0]) * 0.005
			p[d] = math.Round(clampf(c[d]+jitter, ranges[d][0], ranges[d][1]))
		}
		pts[i] = p
	}
	return pts
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
