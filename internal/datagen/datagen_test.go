package datagen

import (
	"math"
	"path/filepath"
	"testing"

	"allnn/internal/geom"
)

func TestUniformInBounds(t *testing.T) {
	b := geom.NewRect(geom.Point{-5, 10}, geom.Point{5, 20})
	pts := Uniform(1, 2000, b)
	if len(pts) != 2000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
	// Rough uniformity: the mean should be near the center.
	c := meanOf(pts)
	if math.Abs(c[0]) > 0.5 || math.Abs(c[1]-15) > 0.5 {
		t.Fatalf("mean %v far from center (0, 15)", c)
	}
}

func TestUniformDeterministic(t *testing.T) {
	b := UnitBounds(3)
	a := Uniform(42, 100, b)
	c := Uniform(42, 100, b)
	for i := range a {
		if !a[i].Equal(c[i]) {
			t.Fatal("same seed produced different data")
		}
	}
	d := Uniform(43, 100, b)
	same := true
	for i := range a {
		if !a[i].Equal(d[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGaussianClustersInBoundsAndClustered(t *testing.T) {
	b := ScaledBounds(2, 100)
	pts := GaussianClusters(7, 5000, b, 5, 0.01)
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
	// Clustered data must have much smaller mean NN distance than uniform
	// data of the same cardinality.
	uni := Uniform(7, 5000, b)
	if c, u := meanNNDist(pts[:500]), meanNNDist(uni[:500]); c >= u {
		t.Fatalf("clustered mean NN dist %g not below uniform %g", c, u)
	}
}

func TestSkewedConcentratesLow(t *testing.T) {
	b := UnitBounds(2)
	pts := Skewed(3, 3000, b, 4)
	c := meanOf(pts)
	if c[0] > 0.35 || c[1] > 0.35 {
		t.Fatalf("skewed mean %v not concentrated toward the low corner", c)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
}

func TestSynthetic500KShape(t *testing.T) {
	for _, dim := range []int{2, 4, 6} {
		pts := Synthetic500K(1, 3000, dim)
		if len(pts) != 3000 {
			t.Fatalf("dim %d: got %d points", dim, len(pts))
		}
		b := ScaledBounds(dim, 1000)
		for _, p := range pts {
			if len(p) != dim {
				t.Fatalf("dim %d: ragged point", dim)
			}
			if !b.Contains(p) {
				t.Fatalf("dim %d: point %v outside space", dim, p)
			}
		}
	}
}

func TestTACSurrogateShape(t *testing.T) {
	pts := TACSurrogate(1, 5000)
	if len(pts) != 5000 {
		t.Fatalf("got %d points", len(pts))
	}
	nearEquator := 0
	for _, p := range pts {
		if p[0] < 0 || p[0] >= 360 || p[1] < -90 || p[1] > 90 {
			t.Fatalf("star %v outside the sky", p)
		}
		if math.Abs(p[1]) < 30 {
			nearEquator++
		}
	}
	// The density model concentrates stars toward the equator band: well
	// over the uniform share (1/3) must lie within |dec| < 30.
	if frac := float64(nearEquator) / float64(len(pts)); frac < 0.40 {
		t.Fatalf("only %.2f of stars near the equator band; distribution looks uniform", frac)
	}
	// Clustering: mean NN distance must be far below uniform.
	uni := Uniform(9, 5000, geom.NewRect(geom.Point{0, -90}, geom.Point{360, 90}))
	if c, u := meanNNDist(pts[:500]), meanNNDist(uni[:500]); c >= u*0.8 {
		t.Fatalf("TAC surrogate mean NN dist %g vs uniform %g: not clustered", c, u)
	}
}

func TestFCSurrogateShapeAndCorrelation(t *testing.T) {
	pts := FCSurrogate(1, 4000)
	if len(pts) != 4000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if len(p) != 10 {
			t.Fatalf("point with %d attributes", len(p))
		}
	}
	// The latent-factor model must induce non-trivial correlation between
	// at least one attribute pair (real FC attributes are correlated;
	// independent uniform 10-D data would behave differently in joins).
	maxAbsCorr := 0.0
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			if c := math.Abs(correlation(pts, a, b)); c > maxAbsCorr {
				maxAbsCorr = c
			}
		}
	}
	if maxAbsCorr < 0.3 {
		t.Fatalf("max |correlation| between attributes is %.3f; latent factors not effective", maxAbsCorr)
	}
}

func TestFileRoundTrip(t *testing.T) {
	pts := Synthetic500K(5, 500, 4)
	path := filepath.Join(t.TempDir(), "pts.bin")
	if err := WriteFile(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("read %d points, wrote %d", len(got), len(pts))
	}
	for i := range pts {
		if !got[i].Equal(pts[i]) {
			t.Fatalf("point %d mismatch", i)
		}
	}
}

func TestWriteFileRejectsEmpty(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "x.bin"), nil); err == nil {
		t.Fatal("expected error writing empty dataset")
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.bin")
	if err := WriteFile(path, []geom.Point{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// --- helpers -----------------------------------------------------------------

func meanOf(pts []geom.Point) geom.Point {
	dim := len(pts[0])
	c := make(geom.Point, dim)
	for _, p := range pts {
		for d := range p {
			c[d] += p[d]
		}
	}
	for d := range c {
		c[d] /= float64(len(pts))
	}
	return c
}

func meanNNDist(pts []geom.Point) float64 {
	var sum float64
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := geom.DistSq(p, q); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(pts))
}

func correlation(pts []geom.Point, a, b int) float64 {
	n := float64(len(pts))
	var ma, mb float64
	for _, p := range pts {
		ma += p[a]
		mb += p[b]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for _, p := range pts {
		cov += (p[a] - ma) * (p[b] - mb)
		va += (p[a] - ma) * (p[a] - ma)
		vb += (p[b] - mb) * (p[b] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
