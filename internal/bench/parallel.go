package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"time"

	"allnn/internal/core"
	"allnn/internal/index"
)

// parallelPoolBytes is the buffer pool used by the scaling experiment.
// Unlike the paper's I/O experiments (512 KB pool, miss-driven costs),
// the scaling experiment measures CPU parallelism, so the working set is
// kept resident the way a production deployment would (and the pool
// shards itself at this size, letting workers pin pages concurrently).
const parallelPoolBytes = 64 << 20

// RunParallel measures the multi-core scaling of the parallel DFBI
// executor: a self-ANN join over the TAC surrogate, serial first, then
// with increasing worker counts up to Parallelism (default GOMAXPROCS).
// Every parallel run uses ordered emit and its output stream is hashed
// and compared against the serial run, so the table doubles as an
// end-to-end equivalence check. With Config.JSONPath set, a machine-
// readable summary (wall times, speedups, engine and scheduler counters,
// and the collection host's provenance) is written there, suitable for
// committing as BENCH_parallel.json. With Config.MinSpeedup4 set, the
// run fails unless parallelism 4 reaches that speedup over serial —
// unless the host's effective parallel capacity (min of NumCPU and
// GOMAXPROCS) is below 4, where scaling numbers are meaningless and the
// gate is skipped with a warning.
func RunParallel(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	maxWorkers := cfg.Parallelism
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	prov := CollectProvenance()
	// Effective parallel capacity: GOMAXPROCS can be raised above the CPU
	// count (e.g. GOMAXPROCS=4 on a 1-core runner), but the extra workers
	// only time-slice — for honesty both bounds apply.
	effective := prov.GOMAXPROCS
	if prov.NumCPU < effective {
		effective = prov.NumCPU
	}
	degraded := effective < maxWorkers
	pts := tacData(cfg)
	dim := len(pts[0])
	fmt.Fprintf(w, "\nParallel scaling: self-ANN on TAC surrogate (%d points, %d-D, MBRQT, k=1)\n", len(pts), dim)
	fmt.Fprintf(w, "host: %d CPUs, GOMAXPROCS=%d, %s; %d MB pool (resident working set; CPU scaling, not the paper's I/O model)\n",
		prov.NumCPU, prov.GOMAXPROCS, prov.GoVersion, parallelPoolBytes>>20)
	if degraded {
		fmt.Fprintf(w, "\n*** WARNING: effective parallel capacity %d (NumCPU=%d, GOMAXPROCS=%d) < requested parallelism %d. ***\n",
			effective, prov.NumCPU, prov.GOMAXPROCS, maxWorkers)
		fmt.Fprintf(w, "*** Workers will time-slice a single run queue; speedups below are NOT scaling data. ***\n")
		fmt.Fprintf(w, "*** The JSON summary is marked \"degraded\": true — do not commit it as a scaling result. ***\n\n")
	}

	p, err := prepareSelf(KindMBRQT, pts)
	if err != nil {
		return err
	}
	ir, is, _, err := p.openHinted(parallelPoolBytes, maxWorkers)
	if err != nil {
		return err
	}

	base := core.Options{ExcludeSelf: true}
	serialWall, serialStats, _, serialHash, err := timedRun(ir, is, base)
	if err != nil {
		return err
	}
	heartbeat(cfg, "parallel: serial", serialWall, serialStats.Results)

	type row struct {
		parallelism int
		wall        time.Duration
		stats       core.Stats
		sched       core.SchedStats
		identical   bool
	}
	rows := []row{{parallelism: 1, wall: serialWall, stats: serialStats, identical: true}}
	for _, workers := range workerLadder(maxWorkers) {
		opts := base
		opts.Parallelism = workers
		opts.OrderedEmit = true
		wall, stats, sched, hash, err := timedRun(ir, is, opts)
		if err != nil {
			return err
		}
		heartbeat(cfg, fmt.Sprintf("parallel: %d workers", workers), wall, stats.Results)
		rows = append(rows, row{workers, wall, stats, sched, hash == serialHash})
	}

	fmt.Fprintf(w, "\n%-12s %12s %10s %10s %14s %8s %8s %12s\n",
		"parallelism", "wall", "speedup", "results", "dist-calcs", "steals", "splits", "identical")
	speedupAt := map[int]float64{}
	for _, r := range rows {
		sp := float64(serialWall) / float64(r.wall)
		speedupAt[r.parallelism] = sp
		fmt.Fprintf(w, "%-12d %12s %9.2fx %10d %14d %8d %8d %12v\n",
			r.parallelism, fmtDur(r.wall), sp, r.stats.Results, r.stats.DistanceCalcs,
			r.sched.Steals, r.sched.Splits, r.identical)
		if !r.identical {
			return fmt.Errorf("parallel run at %d workers produced output differing from serial", r.parallelism)
		}
	}

	if cfg.JSONPath != "" {
		type runJSON struct {
			Parallelism     int             `json:"parallelism"`
			WallNS          int64           `json:"wall_ns"`
			Wall            string          `json:"wall"`
			SpeedupVsSerial float64         `json:"speedup_vs_serial"`
			IdenticalOutput bool            `json:"identical_output"`
			Degraded        bool            `json:"degraded"`
			Stats           core.Stats      `json:"stats"`
			Sched           core.SchedStats `json:"sched"`
		}
		doc := struct {
			Experiment string     `json:"experiment"`
			Dataset    string     `json:"dataset"`
			Points     int        `json:"points"`
			Dim        int        `json:"dim"`
			Index      string     `json:"index"`
			K          int        `json:"k"`
			Provenance Provenance `json:"provenance"`
			Degraded   bool       `json:"degraded"`
			PoolBytes  int        `json:"pool_bytes"`
			Runs       []runJSON  `json:"runs"`
		}{
			Experiment: "parallel",
			Dataset:    "TAC-surrogate",
			Points:     len(pts),
			Dim:        dim,
			Index:      "MBRQT",
			K:          1,
			Provenance: prov,
			Degraded:   degraded,
			PoolBytes:  parallelPoolBytes,
		}
		for _, r := range rows {
			doc.Runs = append(doc.Runs, runJSON{
				Parallelism:     r.parallelism,
				WallNS:          r.wall.Nanoseconds(),
				Wall:            r.wall.Round(time.Microsecond).String(),
				SpeedupVsSerial: float64(serialWall) / float64(r.wall),
				IdenticalOutput: r.identical,
				Degraded:        degraded && r.parallelism > effective,
				Stats:           r.stats,
				Sched:           r.sched,
			})
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(cfg.JSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nJSON summary written to %s\n", cfg.JSONPath)
	}

	if cfg.MinSpeedup4 > 0 {
		switch sp, ok := speedupAt[4]; {
		case effective < 4:
			fmt.Fprintf(w, "\nmin-speedup gate skipped: effective parallel capacity %d < 4 (degraded host cannot produce scaling data)\n",
				effective)
		case !ok:
			return fmt.Errorf("min-speedup gate: no run at parallelism 4 (parallelism ladder topped out at %d)", maxWorkers)
		case sp < cfg.MinSpeedup4:
			return fmt.Errorf("min-speedup gate: speedup at 4 workers is %.2fx, below the required %.2fx", sp, cfg.MinSpeedup4)
		default:
			fmt.Fprintf(w, "\nmin-speedup gate passed: %.2fx at 4 workers (required %.2fx)\n", sp, cfg.MinSpeedup4)
		}
	}
	return nil
}

// workerLadder returns the parallelism settings to benchmark: powers of
// two from 2 up to max, always ending at max itself.
func workerLadder(max int) []int {
	var out []int
	for p := 2; p < max; p *= 2 {
		out = append(out, p)
	}
	if max >= 2 {
		out = append(out, max)
	}
	return out
}

// timedRun executes the engine, hashing the emitted stream (ids,
// neighbor ids, exact distance bits, in emission order) so that two runs
// can be compared for byte-identical output, and collecting the
// scheduler/kernel counters alongside the engine Stats.
func timedRun(ir, is index.Tree, opts core.Options) (time.Duration, core.Stats, core.SchedStats, uint64, error) {
	h := fnv.New64a()
	var word [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	var sched core.SchedStats
	opts.Sched = &sched
	start := time.Now()
	stats, err := core.Run(ir, is, opts, func(r core.Result) error {
		write(uint64(r.Object))
		for _, n := range r.Neighbors {
			write(uint64(n.Object))
			write(math.Float64bits(n.Dist))
		}
		return nil
	})
	wall := time.Since(start)
	if err != nil {
		return 0, core.Stats{}, core.SchedStats{}, 0, err
	}
	return wall, stats, sched, h.Sum64(), nil
}
