package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"time"

	"allnn/internal/core"
	"allnn/internal/index"
)

// parallelPoolBytes is the buffer pool used by the scaling experiment.
// Unlike the paper's I/O experiments (512 KB pool, miss-driven costs),
// the scaling experiment measures CPU parallelism, so the working set is
// kept resident the way a production deployment would (and the pool
// shards itself at this size, letting workers pin pages concurrently).
const parallelPoolBytes = 64 << 20

// RunParallel measures the multi-core scaling of the parallel DFBI
// executor: a self-ANN join over the TAC surrogate, serial first, then
// with increasing worker counts up to Parallelism (default GOMAXPROCS).
// Every parallel run uses ordered emit and its output stream is hashed
// and compared against the serial run, so the table doubles as an
// end-to-end equivalence check. With Config.JSONPath set, a machine-
// readable summary (wall times, speedups, engine counters) is written
// there, suitable for committing as BENCH_parallel.json.
func RunParallel(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	maxWorkers := cfg.Parallelism
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	pts := tacData(cfg)
	dim := len(pts[0])
	fmt.Fprintf(w, "\nParallel scaling: self-ANN on TAC surrogate (%d points, %d-D, MBRQT, k=1)\n", len(pts), dim)
	fmt.Fprintf(w, "GOMAXPROCS=%d, %d MB pool (resident working set; CPU scaling, not the paper's I/O model)\n",
		runtime.GOMAXPROCS(0), parallelPoolBytes>>20)

	p, err := prepareSelf(KindMBRQT, pts)
	if err != nil {
		return err
	}
	ir, is, _, err := p.open(parallelPoolBytes)
	if err != nil {
		return err
	}

	base := core.Options{ExcludeSelf: true}
	serialWall, serialStats, serialHash, err := timedRun(ir, is, base)
	if err != nil {
		return err
	}
	heartbeat(cfg, "parallel: serial", serialWall, serialStats.Results)

	type row struct {
		parallelism int
		wall        time.Duration
		stats       core.Stats
		identical   bool
	}
	rows := []row{{1, serialWall, serialStats, true}}
	for _, workers := range workerLadder(maxWorkers) {
		opts := base
		opts.Parallelism = workers
		opts.OrderedEmit = true
		wall, stats, hash, err := timedRun(ir, is, opts)
		if err != nil {
			return err
		}
		heartbeat(cfg, fmt.Sprintf("parallel: %d workers", workers), wall, stats.Results)
		rows = append(rows, row{workers, wall, stats, hash == serialHash})
	}

	fmt.Fprintf(w, "\n%-12s %12s %10s %10s %14s %12s\n",
		"parallelism", "wall", "speedup", "results", "dist-calcs", "identical")
	for _, r := range rows {
		sp := float64(serialWall) / float64(r.wall)
		fmt.Fprintf(w, "%-12d %12s %9.2fx %10d %14d %12v\n",
			r.parallelism, fmtDur(r.wall), sp, r.stats.Results, r.stats.DistanceCalcs, r.identical)
		if !r.identical {
			return fmt.Errorf("parallel run at %d workers produced output differing from serial", r.parallelism)
		}
	}

	if cfg.JSONPath != "" {
		type runJSON struct {
			Parallelism     int        `json:"parallelism"`
			WallNS          int64      `json:"wall_ns"`
			Wall            string     `json:"wall"`
			SpeedupVsSerial float64    `json:"speedup_vs_serial"`
			IdenticalOutput bool       `json:"identical_output"`
			Stats           core.Stats `json:"stats"`
		}
		doc := struct {
			Experiment string    `json:"experiment"`
			Dataset    string    `json:"dataset"`
			Points     int       `json:"points"`
			Dim        int       `json:"dim"`
			Index      string    `json:"index"`
			K          int       `json:"k"`
			GOMAXPROCS int       `json:"gomaxprocs"`
			PoolBytes  int       `json:"pool_bytes"`
			Runs       []runJSON `json:"runs"`
		}{
			Experiment: "parallel",
			Dataset:    "TAC-surrogate",
			Points:     len(pts),
			Dim:        dim,
			Index:      "MBRQT",
			K:          1,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			PoolBytes:  parallelPoolBytes,
		}
		for _, r := range rows {
			doc.Runs = append(doc.Runs, runJSON{
				Parallelism:     r.parallelism,
				WallNS:          r.wall.Nanoseconds(),
				Wall:            r.wall.Round(time.Microsecond).String(),
				SpeedupVsSerial: float64(serialWall) / float64(r.wall),
				IdenticalOutput: r.identical,
				Stats:           r.stats,
			})
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(cfg.JSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nJSON summary written to %s\n", cfg.JSONPath)
	}
	return nil
}

// workerLadder returns the parallelism settings to benchmark: powers of
// two from 2 up to max, always ending at max itself.
func workerLadder(max int) []int {
	var out []int
	for p := 2; p < max; p *= 2 {
		out = append(out, p)
	}
	if max >= 2 {
		out = append(out, max)
	}
	return out
}

// timedRun executes the engine, hashing the emitted stream (ids,
// neighbor ids, exact distance bits, in emission order) so that two runs
// can be compared for byte-identical output.
func timedRun(ir, is index.Tree, opts core.Options) (time.Duration, core.Stats, uint64, error) {
	h := fnv.New64a()
	var word [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	start := time.Now()
	stats, err := core.Run(ir, is, opts, func(r core.Result) error {
		write(uint64(r.Object))
		for _, n := range r.Neighbors {
			write(uint64(n.Object))
			write(math.Float64bits(n.Dist))
		}
		return nil
	})
	wall := time.Since(start)
	if err != nil {
		return 0, core.Stats{}, 0, err
	}
	return wall, stats, h.Sum64(), nil
}
