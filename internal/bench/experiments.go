package bench

import (
	"fmt"

	"allnn/internal/bnn"
	"allnn/internal/core"
	"allnn/internal/datagen"
	"allnn/internal/geom"
	"allnn/internal/gorder"
	"allnn/internal/storage"
)

// datasets of the paper's Table 2, scaled.
func tacData(cfg Config) []geom.Point {
	return datagen.TACSurrogate(cfg.Seed, cfg.scaled(700_000))
}

func fcData(cfg Config) []geom.Point {
	return datagen.FCSurrogate(cfg.Seed, cfg.scaled(580_000))
}

func syntheticData(cfg Config, dim int) []geom.Point {
	return datagen.Synthetic500K(cfg.Seed, cfg.scaled(500_000), dim)
}

// RunTable2 prints the dataset inventory (paper Table 2) with the
// cardinalities actually generated at the configured scale.
func RunTable2(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	fmt.Fprintf(w, "\nTable 2: experimental datasets (scale %.3f of the paper's cardinalities)\n", cfg.Scale)
	fmt.Fprintf(w, "%-10s %12s %5s  %s\n", "dataset", "cardinality", "dim", "description")
	rows := []struct {
		name string
		pts  []geom.Point
		desc string
	}{
		{"500K2D", syntheticData(cfg, 2), "GSTD-style synthetic 2-D point data"},
		{"500K4D", syntheticData(cfg, 4), "GSTD-style synthetic 4-D point data"},
		{"500K6D", syntheticData(cfg, 6), "GSTD-style synthetic 6-D point data"},
		{"TAC", tacData(cfg), "Twin Astrographic Catalog surrogate (2-D star positions)"},
		{"FC", fcData(cfg), "Forest Cover surrogate (10 numeric attributes)"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %5d  %s\n", r.name, len(r.pts), len(r.pts[0]), r.desc)
	}
	return nil
}

// runBNNConfig executes BNN against a prepared R*-tree with the given
// pruning metric. The R side is charged a sequential scan of the query
// dataset (BNN reads R as a flat file to sort and group it).
func runBNNConfig(name string, cfg Config, p *prepared, pts []geom.Point, opts bnn.Options) (Measurement, error) {
	_, is, pool, err := p.open(cfg.PoolBytes)
	if err != nil {
		return Measurement{}, err
	}
	r := bnn.FromPoints(pts)
	extra := scanPages(len(pts), len(pts[0]))
	return measure(name, cfg, pool, extra, func() (uint64, error) {
		var results uint64
		st, err := bnn.BNN(r, is, opts, func(core.Result) error {
			results++
			return nil
		})
		st.AddTo(cfg.Metrics) // no-op on a nil registry
		return results, err
	})
}

// runGorderConfig executes GORDER over a fresh store/pool of the
// configured size; its sort-phase writes and join-phase reads all flow
// through that pool. The initial sequential read of both input datasets
// is charged explicitly.
func runGorderConfig(name string, cfg Config, rPts, sPts []geom.Point, opts gorder.Options) (Measurement, error) {
	pool := storage.NewBufferPool(storage.NewMemStore(), storage.FramesForBytes(cfg.PoolBytes))
	r := gorder.FromPoints(rPts)
	s := gorder.Dataset{IDs: r.IDs, Points: sPts}
	if len(sPts) != len(rPts) || &rPts[0] != &sPts[0] {
		s = gorder.FromPoints(sPts)
	}
	extra := scanPages(len(rPts), len(rPts[0])) + scanPages(len(sPts), len(sPts[0]))
	return measure(name, cfg, pool, extra, func() (uint64, error) {
		var results uint64
		st, err := gorder.Join(r, s, pool, opts, func(core.Result) error {
			results++
			return nil
		})
		st.AddTo(cfg.Metrics) // no-op on a nil registry
		return results, err
	})
}

// RunFig3a reproduces Figure 3(a): the ANN self-join of the TAC dataset
// under BNN, RBA and MBA with both pruning metrics, plus GORDER.
func RunFig3a(cfg Config) error {
	cfg = cfg.withDefaults()
	pts := tacData(cfg)
	qtPrep, err := prepareSelf(KindMBRQT, pts)
	if err != nil {
		return err
	}
	rsPrep, err := prepareSelf(KindRStar, pts)
	if err != nil {
		return err
	}

	var ms []Measurement
	add := func(m Measurement, err error) error {
		if err != nil {
			return err
		}
		ms = append(ms, m)
		return nil
	}
	for _, metric := range []core.Metric{core.MaxMaxDist, core.NXNDist} {
		if err := add(runBNNConfig("BNN "+metric.String(), cfg, rsPrep, pts,
			bnn.Options{Metric: metric, ExcludeSelf: true})); err != nil {
			return err
		}
	}
	for _, metric := range []core.Metric{core.MaxMaxDist, core.NXNDist} {
		if err := add(runMBA("RBA "+metric.String(), cfg, rsPrep,
			core.Options{Metric: metric, ExcludeSelf: true})); err != nil {
			return err
		}
	}
	for _, metric := range []core.Metric{core.MaxMaxDist, core.NXNDist} {
		if err := add(runMBA("MBA "+metric.String(), cfg, qtPrep,
			core.Options{Metric: metric, ExcludeSelf: true})); err != nil {
			return err
		}
	}
	if err := add(runGorderConfig("GORDER", cfg, pts, pts,
		gorder.Options{ExcludeSelf: true})); err != nil {
		return err
	}

	printTable(cfg.Out, fmt.Sprintf(
		"Figure 3(a): ANN on TAC (%d points, self-join, 512KB pool)", len(pts)), ms)
	// ms order: 0 BNN/MAXMAX, 1 BNN/NXN, 2 RBA/MAXMAX, 3 RBA/NXN,
	// 4 MBA/MAXMAX, 5 MBA/NXN, 6 GORDER.
	fmt.Fprintf(cfg.Out,
		"\nheadline ratios — NXNDIST over MAXMAXDIST: MBA %s, RBA %s, BNN %s; MBA over GORDER %s; MBA over RBA (both NXNDIST) %s\n",
		speedup(ms[4], ms[5]), speedup(ms[2], ms[3]), speedup(ms[0], ms[1]),
		speedup(ms[6], ms[5]), speedup(ms[3], ms[5]))
	return nil
}

// RunFig3b reproduces Figure 3(b): ANN on the 10-D FC dataset, MBA vs
// GORDER, with the buffer pool varied from 512 KB to 8 MB.
func RunFig3b(cfg Config) error {
	cfg = cfg.withDefaults()
	pts := fcData(cfg)
	prep, err := prepareSelf(KindMBRQT, pts)
	if err != nil {
		return err
	}
	var ms []Measurement
	for _, poolBytes := range []int{512 << 10, 1 << 20, 4 << 20, 8 << 20} {
		c := cfg
		c.PoolBytes = poolBytes
		label := fmt.Sprintf("%dKB", poolBytes>>10)
		m, err := runMBA("MBA "+label, c, prep, core.Options{ExcludeSelf: true})
		if err != nil {
			return err
		}
		ms = append(ms, m)
		g, err := runGorderConfig("GORDER "+label, c, pts, pts, gorder.Options{ExcludeSelf: true})
		if err != nil {
			return err
		}
		ms = append(ms, g)
	}
	printTable(cfg.Out, fmt.Sprintf(
		"Figure 3(b): ANN on FC (%d points, 10-D, self-join) across buffer pool sizes", len(pts)), ms)
	return nil
}

// RunFig4 reproduces Figure 4: the effect of dimensionality on MBA vs
// GORDER over the synthetic 500K 2/4/6-D datasets.
func RunFig4(cfg Config) error {
	cfg = cfg.withDefaults()
	var ms []Measurement
	for _, dim := range []int{2, 4, 6} {
		pts := syntheticData(cfg, dim)
		prep, err := prepareSelf(KindMBRQT, pts)
		if err != nil {
			return err
		}
		m, err := runMBA(fmt.Sprintf("MBA %dD", dim), cfg, prep, core.Options{ExcludeSelf: true})
		if err != nil {
			return err
		}
		ms = append(ms, m)
		g, err := runGorderConfig(fmt.Sprintf("GORDER %dD", dim), cfg, pts, pts,
			gorder.Options{ExcludeSelf: true})
		if err != nil {
			return err
		}
		ms = append(ms, g)
	}
	printTable(cfg.Out, "Figure 4: effect of dimensionality (synthetic 500K datasets, self-join ANN)", ms)
	for i := 0; i < len(ms); i += 2 {
		fmt.Fprintf(cfg.Out, "  %s: MBA faster than GORDER by %s\n", ms[i].Name[4:], speedup(ms[i+1], ms[i]))
	}
	return nil
}

// RunFig5 reproduces Figure 5: AkNN on TAC for k = 10..50.
func RunFig5(cfg Config) error {
	return runAkNNSweep(cfg, "Figure 5: AkNN on TAC", tacData(cfg.withDefaults()))
}

// RunFig6 reproduces Figure 6: AkNN on FC for k = 10..50.
func RunFig6(cfg Config) error {
	return runAkNNSweep(cfg, "Figure 6: AkNN on FC", fcData(cfg.withDefaults()))
}

func runAkNNSweep(cfg Config, title string, pts []geom.Point) error {
	cfg = cfg.withDefaults()
	prep, err := prepareSelf(KindMBRQT, pts)
	if err != nil {
		return err
	}
	var ms []Measurement
	for k := 10; k <= 50; k += 10 {
		m, err := runMBA(fmt.Sprintf("MBA k=%d", k), cfg, prep,
			core.Options{K: k, ExcludeSelf: true})
		if err != nil {
			return err
		}
		ms = append(ms, m)
		g, err := runGorderConfig(fmt.Sprintf("GORDER k=%d", k), cfg, pts, pts,
			gorder.Options{K: k, ExcludeSelf: true})
		if err != nil {
			return err
		}
		ms = append(ms, g)
	}
	printTable(cfg.Out, fmt.Sprintf("%s (%d points, self-join)", title, len(pts)), ms)
	for i := 0; i < len(ms); i += 2 {
		fmt.Fprintf(cfg.Out, "  %s: MBA faster than GORDER by %s\n", ms[i].Name[4:], speedup(ms[i+1], ms[i]))
	}
	return nil
}
