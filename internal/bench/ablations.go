package bench

import (
	"fmt"

	"allnn/internal/core"
	"allnn/internal/geom"
	"allnn/internal/hnn"
	"allnn/internal/storage"
)

// RunAblations measures the design choices DESIGN.md calls out, all on
// the TAC workload (self-join, 512 KB pool):
//
//   - traversal order: depth-first (the paper's ANN-DFBI) vs breadth-first;
//   - the default engine vs the paper-literal variants (volatile LPQ
//     bounds, per-object gather);
//   - AkNN bound strategy: the paper's max-of-members vs the tighter
//     k-th-smallest (at k = 10);
//   - index structure under the identical engine: MBRQT (MBA) vs
//     R*-tree (RBA), both with NXNDIST.
func RunAblations(cfg Config) error {
	cfg = cfg.withDefaults()
	pts := tacData(cfg)
	qt, err := prepareSelf(KindMBRQT, pts)
	if err != nil {
		return err
	}
	rs, err := prepareSelf(KindRStar, pts)
	if err != nil {
		return err
	}

	var ms []Measurement
	add := func(m Measurement, err error) error {
		if err != nil {
			return err
		}
		ms = append(ms, m)
		return nil
	}

	base := core.Options{ExcludeSelf: true}
	if err := add(runMBA("MBA (default engine)", cfg, qt, base)); err != nil {
		return err
	}
	bfs := base
	bfs.Traversal = core.BreadthFirst
	if err := add(runMBA("MBA breadth-first", cfg, qt, bfs)); err != nil {
		return err
	}
	vol := base
	vol.VolatileBounds = true
	if err := add(runMBA("MBA paper-literal bounds", cfg, qt, vol)); err != nil {
		return err
	}
	pog := base
	pog.PerObjectGather = true
	if err := add(runMBA("MBA paper-literal gather", cfg, qt, pog)); err != nil {
		return err
	}
	lit := base
	lit.VolatileBounds = true
	lit.PerObjectGather = true
	if err := add(runMBA("MBA fully paper-literal", cfg, qt, lit)); err != nil {
		return err
	}
	if err := add(runMBA("RBA (R*-tree, same engine)", cfg, rs, base)); err != nil {
		return err
	}

	hnnM, err := runHNNConfig("HNN (hash-based, no index)", cfg, pts)
	if err != nil {
		return err
	}
	ms = append(ms, hnnM)

	// The max-of-MAXD AkNN bound degrades so badly (its bound is the
	// *largest* member MAXD, which barely prunes) that the comparison
	// runs on a quarter of the dataset to keep the suite usable.
	quarter := pts[:len(pts)/4]
	qtQ, err := prepareSelf(KindMBRQT, quarter)
	if err != nil {
		return err
	}
	k10 := core.Options{ExcludeSelf: true, K: 10, KBound: core.KBoundMaxAll}
	if err := add(runMBA("AkNN k=10, max-all bound (1/4 data)", cfg, qtQ, k10)); err != nil {
		return err
	}
	k10.KBound = core.KBoundKth
	if err := add(runMBA("AkNN k=10, kth bound (1/4 data)", cfg, qtQ, k10)); err != nil {
		return err
	}

	printTable(cfg.Out, fmt.Sprintf(
		"Ablations on TAC (%d points, self-join, 512KB pool)", len(pts)), ms)
	return nil
}

// runHNNConfig executes the hash-based baseline over a fresh store/pool
// of the configured size; both the bucket spill and the ring searches
// flow through the pool. The sequential read of both inputs is charged
// explicitly.
func runHNNConfig(name string, cfg Config, pts []geom.Point) (Measurement, error) {
	pool := storage.NewBufferPool(storage.NewMemStore(), storage.FramesForBytes(cfg.PoolBytes))
	ds := hnn.FromPoints(pts)
	extra := 2 * scanPages(len(pts), len(pts[0]))
	return measure(name, cfg, pool, extra, func() (uint64, error) {
		var results uint64
		st, err := hnn.Join(ds, ds, pool, hnn.Options{ExcludeSelf: true}, func(core.Result) error {
			results++
			return nil
		})
		st.AddTo(cfg.Metrics) // no-op on a nil registry
		return results, err
	})
}
