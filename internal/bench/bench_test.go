package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyConfig runs experiments at a cardinality small enough for unit
// tests while still exercising every code path.
func tinyConfig(out *bytes.Buffer) Config {
	return Config{
		Scale:       0.004, // a few thousand points per dataset
		PageLatency: time.Millisecond,
		PoolBytes:   512 * 1024,
		Seed:        1,
		Out:         out,
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var out bytes.Buffer
			if err := e.Run(tinyConfig(&out)); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if out.Len() == 0 {
				t.Fatalf("%s produced no output", e.Name)
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("fig3a"); !ok {
		t.Fatal("fig3a not registered")
	}
	if _, ok := Find("nonsense"); ok {
		t.Fatal("Find accepted an unknown name")
	}
}

func TestFig3aMentionsAllConfigurations(t *testing.T) {
	var out bytes.Buffer
	if err := RunFig3a(tinyConfig(&out)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"BNN MAXMAXDIST", "BNN NXNDIST",
		"RBA MAXMAXDIST", "RBA NXNDIST",
		"MBA MAXMAXDIST", "MBA NXNDIST",
		"GORDER", "headline ratios",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fig3a output missing %q", want)
		}
	}
}

func TestFig3bSweepsPools(t *testing.T) {
	var out bytes.Buffer
	if err := RunFig3b(tinyConfig(&out)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"512KB", "1024KB", "4096KB", "8192KB"} {
		if !strings.Contains(text, want) {
			t.Errorf("fig3b output missing pool size %q", want)
		}
	}
}

func TestAkNNSweepCoversK(t *testing.T) {
	var out bytes.Buffer
	if err := RunFig5(tinyConfig(&out)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"k=10", "k=20", "k=30", "k=40", "k=50"} {
		if !strings.Contains(text, want) {
			t.Errorf("fig5 output missing %q", want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 0.05 || cfg.PoolBytes != 512*1024 || cfg.Seed != 1 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if got := cfg.scaled(500_000); got != 25_000 {
		t.Fatalf("scaled(500K) = %d", got)
	}
	small := Config{Scale: 1e-9}.withDefaults()
	if got := small.scaled(500_000); got != 100 {
		t.Fatalf("scaled floor = %d, want 100", got)
	}
}

func TestMeasurementTotal(t *testing.T) {
	m := Measurement{CPU: time.Second, IOTime: 2 * time.Second}
	if m.Total() != 3*time.Second {
		t.Fatalf("Total = %v", m.Total())
	}
}

func TestScanPages(t *testing.T) {
	// 2-D points: 24 bytes each, 8188 usable bytes per page => 341/page.
	if got := scanPages(341, 2); got != 1 {
		t.Fatalf("scanPages(341, 2) = %d", got)
	}
	if got := scanPages(342, 2); got != 2 {
		t.Fatalf("scanPages(342, 2) = %d", got)
	}
}

func TestSpeedupFormat(t *testing.T) {
	slow := Measurement{CPU: 10 * time.Second}
	fast := Measurement{CPU: 2 * time.Second}
	if got := speedup(slow, fast); got != "5.0x" {
		t.Fatalf("speedup = %q", got)
	}
}
