// Package bench is the experiment harness: one runner per table/figure of
// the paper's evaluation section (Section 4). Each experiment builds its
// datasets and indexes, re-opens them through a buffer pool of the
// paper's size (512 KB unless the experiment varies it), executes every
// algorithm configuration, and prints a table with the same rows/series
// the paper reports.
//
// Times: CPU time is measured wall time (the algorithms are
// single-threaded and the in-memory page store adds only copies); I/O
// time is derived as pageTransfers x PageLatency, the way the paper's
// SHORE numbers are dominated by buffer misses under LRU. Absolute values
// differ from the paper's 2007 hardware; the claims under reproduction
// are the relative shapes.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"allnn/internal/bnn"
	"allnn/internal/core"
	"allnn/internal/geom"
	"allnn/internal/gorder"
	"allnn/internal/hnn"
	"allnn/internal/index"
	"allnn/internal/mbrqt"
	"allnn/internal/nodecache"
	"allnn/internal/obs"
	"allnn/internal/rstar"
	"allnn/internal/storage"
)

// Config parameterises an experiment run.
type Config struct {
	// Scale multiplies the paper's dataset cardinalities (default 0.05;
	// 1.0 reproduces the full 500K-700K sizes).
	Scale float64
	// PageLatency converts page transfers into I/O time (default 1ms).
	PageLatency time.Duration
	// PoolBytes is the buffer pool size (default 512 KB, the paper's).
	PoolBytes int
	// Seed drives the dataset generators.
	Seed int64
	// Out receives the report (default os.Stdout set by the caller).
	Out io.Writer
	// Parallelism caps the worker count explored by the parallel scaling
	// experiment (0 = up to runtime.GOMAXPROCS(0)). Other experiments run
	// the paper's single-threaded configurations and ignore it.
	Parallelism int
	// JSONPath, when non-empty, makes experiments that support it (the
	// parallel scaling and nodecache runs) also write a machine-readable
	// summary there.
	JSONPath string
	// NodeCacheBytes is the decoded-node cache budget explored by the
	// nodecache experiment (0 = the engine default, <0 = disabled). The
	// paper-reproduction experiments always run cache-free regardless:
	// cache hits bypass the buffer pool, so a cache would deflate the
	// page-transfer counts the paper's figures are built on.
	NodeCacheBytes int64
	// Progress, when non-nil, receives one heartbeat line per completed
	// measurement (elapsed time, result rows, rows/sec), so long runs
	// show liveness without polluting the report on Out. annbench wires
	// os.Stderr here unless -quiet is given.
	Progress io.Writer
	// TracePath, when non-empty, makes experiments that support it
	// (currently "mba") write a Chrome trace-event JSON of their traced
	// run there — open it at https://ui.perfetto.dev.
	TracePath string
	// Metrics, when non-nil, receives the counters of experiments that
	// publish them (currently "mba"); annbench serves it at
	// -metrics-addr.
	Metrics *obs.Registry
	// MinSpeedup4, when positive, makes the parallel scaling experiment
	// fail unless the run at parallelism 4 reaches this speedup over
	// serial. CI smoke uses it as a scaling regression gate. The gate is
	// skipped (with a loud warning) when min(NumCPU, GOMAXPROCS) < 4 — a
	// machine that
	// cannot run 4 workers cannot fail a 4-worker scaling bar.
	MinSpeedup4 float64
	// MinRecall, when positive, makes the approx experiment fail unless
	// at least one ε > 0 (or recall-target) run reaches this measured
	// recall against the brute-force oracle. CI smoke uses it as the
	// approximation-quality regression gate.
	MinRecall float64
}

// Provenance records the runtime context a bench artifact was collected
// under. Committed artifacts carry it so a single-core collection can
// never be mistaken for a real scaling result (the repo once shipped a
// BENCH_parallel.json collected at GOMAXPROCS=1 that made parallelism
// look like a slowdown).
type Provenance struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// CollectProvenance samples the current runtime.
func CollectProvenance() Provenance {
	return Provenance{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.PageLatency <= 0 {
		c.PageLatency = time.Millisecond
	}
	if c.PoolBytes <= 0 {
		c.PoolBytes = 512 * 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 100 {
		v = 100
	}
	return v
}

// Measurement is the outcome of one algorithm configuration.
type Measurement struct {
	Name    string
	CPU     time.Duration
	IOCount uint64
	IOTime  time.Duration
	Results uint64
}

// Total returns CPU + I/O time.
func (m Measurement) Total() time.Duration { return m.CPU + m.IOTime }

// Experiment is a registered, runnable experiment.
type Experiment struct {
	Name        string
	Description string
	Run         func(Config) error
}

// Experiments lists every table/figure runner in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Table 2: experimental dataset inventory", RunTable2},
		{"fig3a", "Figure 3(a): ANN on TAC — BNN/RBA/MBA x {MAXMAXDIST, NXNDIST} + GORDER", RunFig3a},
		{"fig3b", "Figure 3(b): ANN on FC (10-D) — MBA vs GORDER across buffer pool sizes", RunFig3b},
		{"fig4", "Figure 4: effect of dimensionality (500K 2D/4D/6D) — MBA vs GORDER", RunFig4},
		{"fig5", "Figure 5: AkNN on TAC, k = 10..50 — MBA vs GORDER", RunFig5},
		{"fig6", "Figure 6: AkNN on FC, k = 10..50 — MBA vs GORDER", RunFig6},
		{"prune", "Section 4.3 support: node-level pruning power, NXNDIST vs MAXMAXDIST on both indexes", RunPruning},
		{"ablate", "Ablations: traversal order, k-bound strategy, engine enhancements, index choice", RunAblations},
		{"parallel", "Multi-core scaling: concurrent DFBI subtree workers vs the serial engine", RunParallel},
		{"approx", "Approximate mode: ε / recall-target sweep vs exact and the brute-force oracle, with measured recall", RunApprox},
		{"nodecache", "Decoded-node cache: cache-off vs cold vs warm, MBA and RBA", RunNodeCache},
		{"mba", "Observability deep-dive: one traced MBA self-join with the unified QueryReport (counters, stage timings; -trace writes Perfetto JSON)", RunMBAReport},
		{"shard", "Distributed routing: Hilbert-sharded backends behind the scatter-gather router vs a single node, with shard-prune counters and byte-parity checks", RunShard},
	}
}

// Find returns the experiment with the given name.
func Find(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- index preparation -------------------------------------------------------

// IndexKind selects the index structure for prepared experiments.
type IndexKind int

// Index structure choices.
const (
	KindMBRQT IndexKind = iota
	KindRStar
)

// prepared holds flushed indexes in a store, ready to be re-opened
// through an experiment-sized pool (so query-time I/O starts cold but the
// build cost is excluded, as in the paper: indexes are prebuilt).
type prepared struct {
	store storage.Store
	kind  IndexKind
	metaR storage.PageID
	metaS storage.PageID // equal to metaR for self-joins
}

// prepareSelf builds one index over pts and flushes it; self-joins use
// the same tree as both I_R and I_S, exactly like a real deployment.
func prepareSelf(kind IndexKind, pts []geom.Point) (*prepared, error) {
	store := storage.NewMemStore()
	buildPool := storage.NewBufferPool(store, 16384) // generous pool for building only
	meta, err := buildTree(kind, buildPool, pts)
	if err != nil {
		return nil, err
	}
	if err := buildPool.FlushAll(); err != nil {
		return nil, err
	}
	return &prepared{store: store, kind: kind, metaR: meta, metaS: meta}, nil
}

func buildTree(kind IndexKind, pool *storage.BufferPool, pts []geom.Point) (storage.PageID, error) {
	switch kind {
	case KindRStar:
		// Built by repeated insertion, as a SHORE-resident index populated
		// tuple-at-a-time would be: this produces the realistic amount of
		// MBR overlap. (STR bulk loading packs the R*-tree so well that it
		// behaves almost like a regular decomposition, hiding exactly the
		// weakness of R*-trees the paper's MBRQT comparison measures.)
		t, err := rstar.New(pool, len(pts[0]), rstar.Config{})
		if err != nil {
			return 0, err
		}
		for i, p := range pts {
			if err := t.Insert(index.ObjectID(i), p); err != nil {
				return 0, err
			}
		}
		return t.MetaPage(), t.Flush()
	default:
		t, err := mbrqt.BulkLoad(pool, pts, nil, mbrqt.Config{})
		if err != nil {
			return 0, err
		}
		return t.MetaPage(), t.Flush()
	}
}

// open re-opens the prepared indexes through a fresh pool of poolBytes.
func (p *prepared) open(poolBytes int) (ir, is index.Tree, pool *storage.BufferPool, err error) {
	return p.openHinted(poolBytes, 0)
}

// openHinted is open with an expected-concurrent-readers hint, so the
// pool's shard count covers the parallel workers that will pin pages
// through it (see storage.BufferPoolConfig.ShardHint).
func (p *prepared) openHinted(poolBytes, readers int) (ir, is index.Tree, pool *storage.BufferPool, err error) {
	pool = storage.NewBufferPoolWithConfig(p.store, storage.FramesForBytes(poolBytes),
		storage.BufferPoolConfig{ShardHint: readers})
	ir, err = p.openTree(pool, p.metaR)
	if err != nil {
		return nil, nil, nil, err
	}
	if p.metaS == p.metaR {
		return ir, ir, pool, nil
	}
	is, err = p.openTree(pool, p.metaS)
	return ir, is, pool, err
}

func (p *prepared) openTree(pool *storage.BufferPool, meta storage.PageID) (index.Tree, error) {
	if p.kind == KindRStar {
		return rstar.Open(pool, meta)
	}
	return mbrqt.Open(pool, meta)
}

// --- measurement -------------------------------------------------------------

// measure executes fn, reading work done from pool's statistics.
func measure(name string, cfg Config, pool *storage.BufferPool, extraIO uint64, fn func() (uint64, error)) (Measurement, error) {
	runtime.GC()
	pool.ResetStats()
	start := time.Now()
	results, err := fn()
	cpu := time.Since(start)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, err)
	}
	heartbeat(cfg, name, cpu, results)
	st := pool.Stats()
	io := st.Reads + st.Writes + extraIO
	return Measurement{
		Name:    name,
		CPU:     cpu,
		IOCount: io,
		IOTime:  time.Duration(io) * cfg.PageLatency,
		Results: results,
	}, nil
}

// heartbeat emits one liveness line per completed measurement to
// cfg.Progress (nil = silent). Long experiments run many configurations
// back to back; the heartbeat shows which one just finished and how fast
// it went without touching the report on cfg.Out.
func heartbeat(cfg Config, name string, wall time.Duration, results uint64) {
	if cfg.Progress == nil {
		return
	}
	rate := "-"
	if wall > 0 {
		rate = fmt.Sprintf("%.0f rows/s", float64(results)/wall.Seconds())
	}
	fmt.Fprintf(cfg.Progress, "[bench] %-32s %10s %12d rows %14s\n", name, fmtDur(wall), results, rate)
}

// runMBA executes the core engine (MBA over MBRQT, RBA over R*-tree)
// against prepared indexes. The decoded-node cache is always disabled
// here: its hits bypass the buffer pool, and the paper experiments
// reproduce I/O counts that assume every expansion reads its page. The
// dedicated nodecache experiment measures the cache on its own terms.
func runMBA(name string, cfg Config, p *prepared, opts core.Options) (Measurement, error) {
	opts.NodeCacheBytes = core.NodeCacheDisabled
	ir, is, pool, err := p.open(cfg.PoolBytes)
	if err != nil {
		return Measurement{}, err
	}
	return measure(name, cfg, pool, 0, func() (uint64, error) {
		stats, err := core.Run(ir, is, opts, func(core.Result) error { return nil })
		stats.AddTo(cfg.Metrics) // no-op on a nil registry
		return stats.Results, err
	})
}

// DeclareMetricFamilies pre-creates the six stats families in r by
// accumulating zero-valued stats, so a freshly served -metrics-addr
// snapshot lists every stable metric name (DESIGN.md §10) before any
// experiment has produced counts.
func DeclareMetricFamilies(r *obs.Registry) {
	core.Stats{}.AddTo(r)
	storage.Stats{}.AddTo(r, "pool")
	nodecache.Counters{}.AddTo(r, "cache")
	gorder.Stats{}.AddTo(r)
	hnn.Stats{}.AddTo(r)
	bnn.Stats{}.AddTo(r)
}

// scanPages is the number of pages a sequential scan of n dim-dimensional
// points occupies; used to charge the query-side dataset scan of the
// BNN/MNN/GORDER-style algorithms that read R as a flat file.
func scanPages(n, dim int) uint64 {
	perPage := (storage.PageSize - 4) / (8 + 8*dim)
	return uint64((n + perPage - 1) / perPage)
}

// --- reporting ---------------------------------------------------------------

// printTable writes measurements as an aligned table with the paper's
// CPU/I-O split.
func printTable(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-28s %12s %12s %12s %12s %10s\n",
		"configuration", "cpu", "io-time", "total", "page-io", "results")
	for _, m := range ms {
		fmt.Fprintf(w, "%-28s %12s %12s %12s %12d %10d\n",
			m.Name, fmtDur(m.CPU), fmtDur(m.IOTime), fmtDur(m.Total()), m.IOCount, m.Results)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// speedup formats the ratio between two totals.
func speedup(slow, fast Measurement) string {
	if fast.Total() == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(slow.Total())/float64(fast.Total()))
}
