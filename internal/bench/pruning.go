package bench

import (
	"fmt"
	"math"
	"sort"

	"allnn/internal/core"
	"allnn/internal/geom"
	"allnn/internal/index"
)

// RunPruning is a supplementary experiment backing Section 4.3's claim
// directly at the node level: for owner nodes of each index level, how
// many same-level candidate nodes survive the basic pruning rule
//
//	keep N if MINMINDIST(M, N) <= min over N' of PM(M, N')
//
// under PM = NXNDIST versus PM = MAXMAXDIST, on both index structures.
// This isolates the pruning power of the metric (and of the index's
// decomposition) from the engine's exact-distance feedback, which in a
// full ANN run takes over as soon as leaf objects are reached.
func RunPruning(cfg Config) error {
	cfg = cfg.withDefaults()
	pts := tacData(cfg)
	w := cfg.Out
	fmt.Fprintf(w, "\nPruning power of the metrics on TAC (%d points): average surviving\n", len(pts))
	fmt.Fprintf(w, "same-level candidates per owner node (lower is better)\n")
	fmt.Fprintf(w, "%-10s %6s %10s %12s %12s %9s\n", "index", "level", "nodes", "NXNDIST", "MAXMAXDIST", "ratio")

	for _, kind := range []IndexKind{KindMBRQT, KindRStar} {
		prep, err := prepareSelf(kind, pts)
		if err != nil {
			return err
		}
		tree, _, _, err := prep.open(64 << 20)
		if err != nil {
			return err
		}
		levels, err := collectLevels(tree)
		if err != nil {
			return err
		}
		name := "MBRQT"
		if kind == KindRStar {
			name = "R*-tree"
		}
		for lvl := 1; lvl < len(levels); lvl++ {
			nodes := levels[lvl]
			if len(nodes) < 2 {
				continue
			}
			nxn := avgSurvivors(nodes, core.NXNDist)
			mm := avgSurvivors(nodes, core.MaxMaxDist)
			ratio := "inf"
			if nxn > 0 {
				ratio = fmt.Sprintf("%.1fx", mm/nxn)
			}
			fmt.Fprintf(w, "%-10s %6d %10d %12.2f %12.2f %9s\n",
				name, lvl, len(nodes), nxn, mm, ratio)
		}
	}
	return nil
}

// collectLevels returns the node MBRs of the tree grouped by depth
// (level 0 = root).
func collectLevels(t index.Tree) ([][]geom.Rect, error) {
	root, err := t.Root()
	if err != nil {
		return nil, err
	}
	if root.Count == 0 {
		return nil, nil
	}
	var levels [][]geom.Rect
	frontier := []index.Entry{root}
	for len(frontier) > 0 {
		mbrs := make([]geom.Rect, len(frontier))
		for i := range frontier {
			mbrs[i] = frontier[i].MBR
		}
		levels = append(levels, mbrs)
		var next []index.Entry
		for i := range frontier {
			entries, err := t.Expand(&frontier[i])
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if !e.IsObject() {
					next = append(next, e)
				}
			}
		}
		frontier = next
	}
	return levels, nil
}

// avgSurvivors computes, over a sample of owner nodes, the mean number of
// same-level candidates with MINMINDIST below the metric-derived bound.
func avgSurvivors(nodes []geom.Rect, metric core.Metric) float64 {
	const maxOwners = 200
	step := 1
	if len(nodes) > maxOwners {
		step = len(nodes) / maxOwners
	}
	var total float64
	owners := 0
	for i := 0; i < len(nodes); i += step {
		m := nodes[i]
		bound := math.Inf(1)
		for j := range nodes {
			if j == i {
				continue
			}
			if b := metric.BoundSq(m, nodes[j]); b < bound {
				bound = b
			}
		}
		survivors := 0
		for j := range nodes {
			if j == i {
				continue
			}
			if geom.MinDistSq(m, nodes[j]) <= bound {
				survivors++
			}
		}
		total += float64(survivors)
		owners++
	}
	if owners == 0 {
		return 0
	}
	return total / float64(owners)
}

// sortRectsByCenter gives deterministic sampling order (helper for tests).
func sortRectsByCenter(rects []geom.Rect) {
	sort.Slice(rects, func(a, b int) bool {
		ca, cb := rects[a].Center(), rects[b].Center()
		for d := range ca {
			if ca[d] != cb[d] {
				return ca[d] < cb[d]
			}
		}
		return false
	})
}
