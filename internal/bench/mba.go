package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"allnn/internal/core"
	"allnn/internal/obs"
)

// RunMBAReport is the observability deep-dive: one self-ANN join over the
// TAC surrogate executed through core.RunReport, so the full unified
// QueryReport — engine counters, buffer-pool and node-cache activity,
// and the Expand/Filter/Gather stage timing breakdown — is printed for a
// single query instead of the aggregate tables of the paper experiments.
//
// With Config.TracePath set, the run is traced and written as Chrome
// trace-event JSON (open it at https://ui.perfetto.dev). With
// Config.JSONPath set, the QueryReport itself is written as JSON — the
// input to the EXPERIMENTS.md counter-reproduction workflow. With
// Config.Metrics set, the counters are also published there (annbench
// serves that registry at -metrics-addr).
//
// Config.Parallelism > 1 runs the parallel executor, which adds worker
// and subtree lanes to the trace; the default is the paper's serial
// engine.
func RunMBAReport(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	pts := tacData(cfg)
	dim := len(pts[0])

	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	fmt.Fprintf(w, "\nObservability deep-dive: self-ANN on TAC surrogate (%d points, %d-D, MBRQT, k=1, parallelism=%d)\n",
		len(pts), dim, workers)

	p, err := prepareSelf(KindMBRQT, pts)
	if err != nil {
		return err
	}
	ir, is, _, err := p.open(cfg.PoolBytes)
	if err != nil {
		return err
	}

	opts := core.Options{
		ExcludeSelf:    true,
		Parallelism:    workers,
		OrderedEmit:    workers > 1,
		NodeCacheBytes: cfg.NodeCacheBytes,
		Registry:       cfg.Metrics,
	}
	var tracer *obs.Tracer
	if cfg.TracePath != "" {
		tracer = obs.NewTracer()
		opts.Tracer = tracer
	}

	rep, err := core.RunReport(ir, is, opts, func(core.Result) error { return nil })
	if err != nil {
		return err
	}
	heartbeat(cfg, "mba: traced run", rep.Timings.Wall, rep.Engine.Results)

	printReport(w, rep)

	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\ntrace (%d events) written to %s — open at https://ui.perfetto.dev\n",
			tracer.Len(), cfg.TracePath)
	}
	if cfg.JSONPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(cfg.JSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "QueryReport JSON written to %s\n", cfg.JSONPath)
	}
	return nil
}

// printReport renders one QueryReport as the counter/timing breakdown
// tables EXPERIMENTS.md documents.
func printReport(w io.Writer, rep core.QueryReport) {
	e := rep.Engine
	fmt.Fprintf(w, "\n%-24s %14s\n", "engine counter", "value")
	for _, row := range []struct {
		name string
		v    uint64
	}{
		{"distance_calcs", e.DistanceCalcs},
		{"lpqs_created", e.LPQsCreated},
		{"enqueued", e.Enqueued},
		{"pruned_on_probe", e.PrunedOnProbe},
		{"pruned_by_filter", e.PrunedByFilter},
		{"nodes_expanded_r", e.NodesExpandedR},
		{"nodes_expanded_s", e.NodesExpandedS},
		{"results", e.Results},
		{"node_cache_hits", e.NodeCacheHits},
		{"node_cache_misses", e.NodeCacheMisses},
	} {
		fmt.Fprintf(w, "%-24s %14d\n", row.name, row.v)
	}
	fmt.Fprintf(w, "\n%-24s %14s\n", "io", "value")
	fmt.Fprintf(w, "%-24s %14d\n", "pool_misses (page I/O)", rep.Pool.Misses)
	fmt.Fprintf(w, "%-24s %14d\n", "pool_hits", rep.Pool.Hits)
	fmt.Fprintf(w, "%-24s %14d\n", "cache_hits", rep.Cache.Hits)
	fmt.Fprintf(w, "%-24s %14d\n", "cache_misses", rep.Cache.Misses)
	fmt.Fprintf(w, "%-24s %14d\n", "cache_resident_bytes", rep.CacheResidency.Bytes)

	tm := rep.Timings
	fmt.Fprintf(w, "\n%-24s %14s %8s\n", "stage", "time", "of wall")
	pct := func(d time.Duration) string {
		if tm.Wall <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(tm.Wall))
	}
	for _, row := range []struct {
		name string
		d    time.Duration
	}{
		{"wall", tm.Wall},
		{"setup", tm.Setup},
		{"seed", tm.Seed},
		{"frontier", tm.Frontier},
		{"traverse", tm.Traverse},
		{"  expand (excl filter)", tm.Expand},
		{"  filter", tm.Filter},
		{"  gather", tm.Gather},
	} {
		fmt.Fprintf(w, "%-24s %14s %8s\n", row.name, fmtDur(row.d), pct(row.d))
	}
}
