package bench

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"os"
	"sort"
	"time"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/curve"
	"allnn/internal/datagen"
	"allnn/internal/geom"
	"allnn/internal/obs"
	"allnn/internal/router"
	"allnn/internal/server"
)

// Shard-experiment shape: the clustered workload makes the Hilbert
// shards spatially tight, which is what gives NXNDIST/MINDIST pruning
// something to cut — a uniform dataset's shard MBRs tile the space and
// almost every query touches every shard.
const (
	shardCount   = 4
	shardKNNK    = 10
	shardJoinK   = 4
	shardQueries = 200
)

// RunShard measures the distributed router against a single node over
// the identical dataset: a clustered 2-D workload is cut into
// Hilbert-range shards, each mounted on its own in-process annserve
// backend, and a strict-mode router scatter-gathers point kNN and the
// ANN self-join across them. The single-node baseline serves the same
// points in curve order, so global ids line up and every routed answer
// must be byte-identical to the single-node one — the experiment fails
// otherwise. The router's shard-pruning counters are read from its
// metrics registry per workload; on this clustered workload the
// NXNDIST-seeded two-phase kNN must prune at least one shard contact or
// the run fails. With Config.JSONPath set, a machine-readable summary
// suitable for committing as BENCH_shard.json is written there.
func RunShard(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	prov := CollectProvenance()

	// The generator clamps out-of-bounds cluster samples onto the bounds
	// corners, piling up coincident points; a point at distance-0 from
	// several twins makes the engine's neighbor tie order (traversal-
	// dependent) diverge from the router's canonical (distance, id)
	// order. Deduplicating keeps the parity check meaningful: distinct
	// random points tie with probability ~0.
	pts := dedupePoints(datagen.GaussianClusters(cfg.Seed, cfg.scaled(500_000), datagen.ScaledBounds(2, 1000), 40, 0.02))
	part, err := curve.Partition(pts, shardCount, curve.Hilbert)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nDistributed routing: %d clustered 2-D points, %d Hilbert shards, strict mode\n",
		len(pts), len(part.Shards))
	fmt.Fprintf(w, "host: %d CPUs, GOMAXPROCS=%d, %s; in-process backends over loopback TCP\n",
		prov.NumCPU, prov.GOMAXPROCS, prov.GoVersion)

	// One in-process annserve per shard, plus a single-node baseline
	// serving the whole dataset in curve order (the router's global id
	// order, so answers compare byte-for-byte).
	var cleanups []func()
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}()
	startBackend := func(name string, pts []ann.Point) (string, error) {
		ix, err := ann.BuildIndex(pts, ann.IndexConfig{})
		if err != nil {
			return "", err
		}
		srv := server.New(server.Config{})
		if err := srv.Catalog().Add(name, ix); err != nil {
			return "", err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		cleanups = append(cleanups, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-done
			srv.Catalog().CloseAll()
		})
		return ln.Addr().String(), nil
	}

	addrs := make([]string, len(part.Shards))
	ordered := make([]ann.Point, 0, len(pts))
	for i, s := range part.Shards {
		shardPts := make([]ann.Point, len(s.Points))
		for j, idx := range s.Points {
			shardPts[j] = ann.Point(pts[idx])
			ordered = append(ordered, ann.Point(pts[idx]))
		}
		addr, err := startBackend(fmt.Sprintf("clustered-%d", i), shardPts)
		if err != nil {
			return err
		}
		addrs[i] = addr
	}
	singleAddr, err := startBackend("clustered", ordered)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	rt, err := router.New(router.Config{Metrics: reg}, router.MapFromPartitioning("clustered", part, addrs))
	if err != nil {
		return err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	rtDone := make(chan error, 1)
	go func() { rtDone <- rt.Serve(rln) }()
	cleanups = append(cleanups, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
		<-rtDone
	})

	routed, err := client.Dial(rln.Addr().String())
	if err != nil {
		return err
	}
	cleanups = append(cleanups, func() { routed.Close() })
	single, err := client.Dial(singleAddr)
	if err != nil {
		return err
	}
	cleanups = append(cleanups, func() { single.Close() })

	contacted := reg.Counter("router.shards_contacted")
	pruned := reg.Counter("router.shards_pruned")
	ctx := context.Background()

	type run struct {
		name             string
		routed, baseline time.Duration
		contacted        uint64
		pruned           uint64
		results          uint64
		identical        bool
	}
	var runs []run
	measure := func(name string, fn func(cl *client.Client, h *hashSink) error) error {
		c0, p0 := contacted.Value(), pruned.Value()
		var rh, sh hashSink
		start := time.Now()
		if err := fn(routed, &rh); err != nil {
			return fmt.Errorf("%s (routed): %w", name, err)
		}
		routedWall := time.Since(start)
		start = time.Now()
		if err := fn(single, &sh); err != nil {
			return fmt.Errorf("%s (single): %w", name, err)
		}
		r := run{
			name:      name,
			routed:    routedWall,
			baseline:  time.Since(start),
			contacted: contacted.Value() - c0,
			pruned:    pruned.Value() - p0,
			results:   rh.count,
			identical: rh.sum() == sh.sum(),
		}
		runs = append(runs, r)
		heartbeat(cfg, "shard: "+name, r.routed, r.results)
		if !r.identical {
			return fmt.Errorf("shard: %s: routed results differ from the single-node baseline", name)
		}
		return nil
	}

	// Workload 1: point kNN over queries sampled from the dataset (every
	// query has a tight owner shard, so phase-2 fan-out is where the
	// NXNDIST seed earns its pruning).
	queries := make([]ann.Point, 0, shardQueries)
	for i := 0; i < len(ordered) && len(queries) < shardQueries; i += max(1, len(ordered)/shardQueries) {
		queries = append(queries, ordered[i])
	}
	if err := measure(fmt.Sprintf("kNN k=%d x%d", shardKNNK, len(queries)), func(cl *client.Client, h *hashSink) error {
		for _, q := range queries {
			nbs, err := cl.KNN(ctx, "clustered", q, shardKNNK)
			if err != nil {
				return err
			}
			for _, n := range nbs {
				h.add(n.ID, n.Dist)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Workload 2: within-distance self-join at a radius that keeps pairs
	// mostly intra-cluster. Pair order differs between engine and router
	// (the router re-orders cross-shard pairs), so the hash is over the
	// multiset: per-pair hashes are summed, not chained.
	dist := 0.004 * 1000 // 2x the cluster-spread sigma
	if err := measure(fmt.Sprintf("within d=%g", dist), func(cl *client.Client, h *hashSink) error {
		_, err := cl.WithinDistance(ctx, "clustered", "clustered", dist, true, func(rID, sID uint64, d float64) error {
			h.add(rID, float64(sID))
			return nil
		})
		return err
	}); err != nil {
		return err
	}

	// Workload 3: the ANN self-join. The router emits ascending global
	// id (the canonical routed order); a single node emits index
	// traversal order. Both streams are canonicalized by id before the
	// order-sensitive chained hash, so per-point results — neighbor ids,
	// distances, and ranks — must still match exactly.
	if err := measure(fmt.Sprintf("self-join k=%d", shardJoinK), func(cl *client.Client, h *hashSink) error {
		st, err := cl.SelfJoin(ctx, "clustered", shardJoinK)
		if err != nil {
			return err
		}
		var results []ann.Result
		for st.Next() {
			results = append(results, st.Result())
		}
		if err := st.Close(); err != nil {
			return err
		}
		sort.Slice(results, func(a, b int) bool { return results[a].ID < results[b].ID })
		for _, res := range results {
			h.chain(uint64(res.ID))
			for _, n := range res.Neighbors {
				h.chain(uint64(n.ID), math.Float64bits(n.Dist))
			}
		}
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintf(w, "\n%-20s %10s %12s %10s %8s %8s %10s\n",
		"workload", "routed", "single-node", "contacted", "pruned", "prune%", "identical")
	for _, r := range runs {
		total := r.contacted + r.pruned
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.pruned) / float64(total)
		}
		fmt.Fprintf(w, "%-20s %10s %12s %10d %8d %7.1f%% %10v\n",
			r.name, fmtDur(r.routed), fmtDur(r.baseline), r.contacted, r.pruned, pct, r.identical)
	}

	var totalPruned uint64
	for _, r := range runs {
		totalPruned += r.pruned
	}
	if totalPruned == 0 {
		return fmt.Errorf("shard: no shard contacts pruned on a clustered %d-shard workload — the NXNDIST/MINDIST bounds are not biting", len(part.Shards))
	}
	fmt.Fprintf(w, "\n%d shard contacts pruned across the suite (clustered data keeps shard MBRs tight)\n", totalPruned)

	if cfg.JSONPath != "" {
		type runJSON struct {
			Workload        string `json:"workload"`
			RoutedNS        int64  `json:"routed_ns"`
			SingleNS        int64  `json:"single_node_ns"`
			ShardsContacted uint64 `json:"shards_contacted"`
			ShardsPruned    uint64 `json:"shards_pruned"`
			Results         uint64 `json:"results"`
			Identical       bool   `json:"identical_to_single_node"`
		}
		doc := struct {
			Experiment string     `json:"experiment"`
			Dataset    string     `json:"dataset"`
			Points     int        `json:"points"`
			Dim        int        `json:"dim"`
			Shards     int        `json:"shards"`
			Curve      string     `json:"curve"`
			Mode       string     `json:"mode"`
			Provenance Provenance `json:"provenance"`
			Runs       []runJSON  `json:"runs"`
		}{
			Experiment: "shard",
			Dataset:    "clustered",
			Points:     len(pts),
			Dim:        2,
			Shards:     len(part.Shards),
			Curve:      part.Kind.String(),
			Mode:       "strict",
			Provenance: prov,
		}
		for _, r := range runs {
			doc.Runs = append(doc.Runs, runJSON{
				Workload:        r.name,
				RoutedNS:        r.routed.Nanoseconds(),
				SingleNS:        r.baseline.Nanoseconds(),
				ShardsContacted: r.contacted,
				ShardsPruned:    r.pruned,
				Results:         r.results,
				Identical:       r.identical,
			})
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(cfg.JSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "JSON summary written to %s\n", cfg.JSONPath)
	}
	return nil
}

// hashSink accumulates a result hash two ways: chain() is
// order-sensitive (FNV over the value stream) for workloads whose
// routed emit order must match the single node's; add() folds an
// order-insensitive term (per-record hashes summed) for workloads where
// only the result multiset is pinned.
type hashSink struct {
	chained uint64
	bag     uint64
	count   uint64
}

func (h *hashSink) chain(vs ...uint64) {
	if h.chained == 0 {
		h.chained = 14695981039346656037 // FNV-64a offset basis
	}
	for _, v := range vs {
		var word [8]byte
		binary.LittleEndian.PutUint64(word[:], v)
		for _, b := range word {
			h.chained ^= uint64(b)
			h.chained *= 1099511628211
		}
	}
	h.count++
}

func (h *hashSink) add(id uint64, v float64) {
	f := fnv.New64a()
	var word [16]byte
	binary.LittleEndian.PutUint64(word[:8], id)
	binary.LittleEndian.PutUint64(word[8:], math.Float64bits(v))
	f.Write(word[:])
	h.bag += f.Sum64()
	h.count++
}

func (h *hashSink) sum() uint64 { return h.chained ^ h.bag }

// dedupePoints drops exact coordinate duplicates, preserving order.
func dedupePoints(pts []geom.Point) []geom.Point {
	seen := make(map[string]struct{}, len(pts))
	out := pts[:0]
	var key []byte
	for _, p := range pts {
		key = key[:0]
		for _, v := range p {
			var word [8]byte
			binary.LittleEndian.PutUint64(word[:], math.Float64bits(v))
			key = append(key, word[:]...)
		}
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		out = append(out, p)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
