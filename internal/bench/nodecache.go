package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"allnn/internal/core"
)

// RunNodeCache measures the decoded-node cache on the TAC self-join for
// both engine configurations (MBA over MBRQT, RBA over the R*-tree).
// Each index runs three times over a resident buffer pool — cache
// disabled, cache enabled cold, cache enabled warm (the trees keep their
// cache between runs, as a long-lived deployment would) — so the table
// separates the first-run decode cost from the steady state. The output
// stream of every run is hashed and compared against the cache-off run:
// the cache must change cost, never results.
//
// The pool is kept resident (as in the parallel scaling experiment)
// because the cache's win is decode CPU, not page I/O; with a cold 512 KB
// pool the page-latency model would drown the effect being measured.
// Config.NodeCacheBytes sets the budget (0 = engine default, 32 MiB per
// index). With Config.JSONPath set, a machine-readable summary suitable
// for committing as BENCH_nodecache.json is written there.
func RunNodeCache(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	pts := tacData(cfg)
	dim := len(pts[0])
	budget := cfg.NodeCacheBytes
	fmt.Fprintf(w, "\nDecoded-node cache: self-ANN on TAC surrogate (%d points, %d-D, k=1)\n", len(pts), dim)
	fmt.Fprintf(w, "%d MB resident pool; cache budget %s\n", parallelPoolBytes>>20, cacheBudgetLabel(budget))

	type row struct {
		index     string
		mode      string
		wall      time.Duration
		stats     core.Stats
		identical bool
	}
	var rows []row
	speedupVsOff := func(r row) float64 {
		for _, o := range rows {
			if o.index == r.index && o.mode == "off" {
				return float64(o.wall) / float64(r.wall)
			}
		}
		return 1
	}

	for _, kind := range []struct {
		kind  IndexKind
		label string
	}{{KindMBRQT, "MBA/MBRQT"}, {KindRStar, "RBA/R*-tree"}} {
		p, err := prepareSelf(kind.kind, pts)
		if err != nil {
			return err
		}
		ir, is, _, err := p.open(parallelPoolBytes)
		if err != nil {
			return err
		}
		off := core.Options{ExcludeSelf: true, NodeCacheBytes: core.NodeCacheDisabled}
		offWall, offStats, _, offHash, err := timedRun(ir, is, off)
		if err != nil {
			return err
		}
		heartbeat(cfg, kind.label+": cache off", offWall, offStats.Results)
		rows = append(rows, row{kind.label, "off", offWall, offStats, true})

		on := core.Options{ExcludeSelf: true, NodeCacheBytes: budget}
		for _, mode := range []string{"cold", "warm"} {
			wall, stats, _, hash, err := timedRun(ir, is, on)
			if err != nil {
				return err
			}
			heartbeat(cfg, kind.label+": cache "+mode, wall, stats.Results)
			rows = append(rows, row{kind.label, mode, wall, stats, hash == offHash})
		}
	}

	fmt.Fprintf(w, "\n%-12s %-6s %12s %10s %12s %12s %10s\n",
		"index", "cache", "wall", "vs off", "cache-hits", "cache-miss", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-6s %12s %9.2fx %12d %12d %10v\n",
			r.index, r.mode, fmtDur(r.wall), speedupVsOff(r),
			r.stats.NodeCacheHits, r.stats.NodeCacheMisses, r.identical)
		if !r.identical {
			return fmt.Errorf("nodecache: %s %s run produced output differing from cache-off", r.index, r.mode)
		}
	}

	if cfg.JSONPath != "" {
		type runJSON struct {
			Index           string     `json:"index"`
			CacheMode       string     `json:"cache_mode"`
			WallNS          int64      `json:"wall_ns"`
			Wall            string     `json:"wall"`
			SpeedupVsOff    float64    `json:"speedup_vs_cache_off"`
			IdenticalOutput bool       `json:"identical_output"`
			Stats           core.Stats `json:"stats"`
		}
		doc := struct {
			Experiment  string     `json:"experiment"`
			Dataset     string     `json:"dataset"`
			Points      int        `json:"points"`
			Dim         int        `json:"dim"`
			K           int        `json:"k"`
			Provenance  Provenance `json:"provenance"`
			PoolBytes   int        `json:"pool_bytes"`
			CacheBudget string     `json:"cache_budget"`
			Runs        []runJSON  `json:"runs"`
		}{
			Experiment:  "nodecache",
			Dataset:     "TAC-surrogate",
			Points:      len(pts),
			Dim:         dim,
			K:           1,
			Provenance:  CollectProvenance(),
			PoolBytes:   parallelPoolBytes,
			CacheBudget: cacheBudgetLabel(budget),
		}
		for _, r := range rows {
			doc.Runs = append(doc.Runs, runJSON{
				Index:           r.index,
				CacheMode:       r.mode,
				WallNS:          r.wall.Nanoseconds(),
				Wall:            r.wall.Round(time.Microsecond).String(),
				SpeedupVsOff:    speedupVsOff(r),
				IdenticalOutput: r.identical,
				Stats:           r.stats,
			})
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(cfg.JSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nJSON summary written to %s\n", cfg.JSONPath)
	}
	return nil
}

func cacheBudgetLabel(budget int64) string {
	switch {
	case budget < 0:
		return "disabled"
	case budget == 0:
		return "default (32 MiB per index)"
	default:
		return fmt.Sprintf("%d bytes", budget)
	}
}
