package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"allnn/internal/bruteforce"
	"allnn/internal/core"
	"allnn/internal/datagen"
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/storage"
)

// approxK is the neighbor count of the approximate-mode sweep. k = 10 is
// the low end of the paper's AkNN range (Figures 5-6): enough gather
// work per LPQ that ε-inflated pruning has something to cut, while the
// brute-force oracle stays affordable.
const approxK = 10

// approxSweep is the ε / recall-target grid the experiment measures.
// ε = 0 is the exactness control (hash-checked against the baseline);
// the ε ladder spans "indistinguishable" to "paper-figure coarse", and
// the recall-target rows exercise the leaf selector alone and combined.
var approxSweep = []struct {
	label string
	eps   float64
	rt    float64
}{
	{"exact (eps=0)", 0, 0},
	{"eps=0.02", 0.02, 0},
	{"eps=0.05", 0.05, 0},
	{"eps=0.1", 0.1, 0},
	{"eps=0.2", 0.2, 0},
	{"eps=0.5", 0.5, 0},
	{"eps=1.0", 1.0, 0},
	// Recall-target rows: note the per-leaf granularity — with 16-object
	// leaf buckets, ceil(rt x owners) only drops below the owner count at
	// rt <= 15/16, so targets above ~0.94 behave exactly.
	{"rt=0.9", 0, 0.9},
	{"rt=0.75", 0, 0.75},
	{"rt=0.5", 0, 0.5},
	{"eps=0.02 rt=0.9", 0.02, 0.9},
	{"eps=0.1 rt=0.75", 0.1, 0.75},
}

// RunApprox measures the approximate query mode: a self-AkNN join over
// the TAC surrogate, exact first, then across the ε / recall-target
// sweep, all serial (Parallelism 1) so speedups are per-core algorithmic
// savings rather than scheduling artifacts. The runs execute in the
// paper's cost model — the standard small buffer pool with the decoded-
// node cache disabled (as in the figure experiments), total time derived
// as CPU + pageTransfers x PageLatency — so the subtree descents that
// ε-inflated pruning avoids are charged at their modeled I/O cost, not
// just their in-memory CPU cost. Every run's result stream is scored
// against the brute-force oracle for measured recall and for the worst
// distance ratio (the observed ε), and the ε = 0 run must hash
// byte-identical to the exact baseline. With Config.JSONPath set, the
// table is also written as machine-readable JSON suitable for committing
// as BENCH_approx.json. With Config.MinRecall set, the run fails unless
// at least one ε > 0 configuration reaches that recall — the regression
// gate CI smoke uses to keep the approximation honest.
func RunApprox(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	prov := CollectProvenance()
	pts := approxData(cfg)
	dim := len(pts[0])
	fmt.Fprintf(w, "\nApproximate mode: self-AkNN on FC surrogate (%d points, %d-D, MBRQT, k=%d, serial)\n",
		len(pts), dim, approxK)
	fmt.Fprintf(w, "host: %d CPUs, GOMAXPROCS=%d, %s; %d KB pool, %s/page modeled I/O (the paper's cost model), node cache off\n",
		prov.NumCPU, prov.GOMAXPROCS, prov.GoVersion, cfg.PoolBytes>>10, cfg.PageLatency)

	oracleStart := time.Now()
	oracle := parallelOracle(pts, approxK)
	heartbeat(cfg, "approx: brute-force oracle", time.Since(oracleStart), uint64(len(oracle)))

	p, err := prepareSelf(KindMBRQT, pts)
	if err != nil {
		return err
	}
	ir, is, pool, err := p.open(cfg.PoolBytes)
	if err != nil {
		return err
	}

	base := core.Options{K: approxK, ExcludeSelf: true, Parallelism: 1,
		NodeCacheBytes: core.NodeCacheDisabled}
	// Warm-up: bring the pool to its steady thrashing state so every timed
	// run starts from the same page residency.
	if _, err := timedCollect(ir, is, pool, base); err != nil {
		return err
	}
	exactRes, err := bestOfCollect(ir, is, pool, base)
	if err != nil {
		return err
	}
	exactTotal := exactRes.wall + time.Duration(exactRes.io)*cfg.PageLatency
	heartbeat(cfg, "approx: exact baseline", exactTotal, exactRes.stats.Results)

	type row struct {
		label     string
		eps, rt   float64
		wall      time.Duration
		io        uint64
		total     time.Duration
		stats     core.Stats
		sched     core.SchedStats
		recall    float64
		maxRatio  float64
		identical bool
	}
	var rows []row
	// Ceiling measurement: seed every object's bound with its true k-th
	// neighbor distance from the oracle (via Options.BoundSeedSq). This
	// run upper-bounds every bound-based approximation — it is what a
	// two-pass pilot/verify scheme would cost with a perfect, free pilot —
	// so the gap between it and the exact row is the total speedup
	// headroom that ε-inflation or any recall-target selector can ever
	// reach at recall 1. On this engine the gap is small (~1.1-1.2x): the
	// shared leaf prefilter admits candidates by leaf-MBR mindist, which
	// tighter per-owner bounds barely affect, so the distance-calc count
	// is fixed by leaf-stream geometry rather than by bound quality.
	seed := make([]float64, len(pts))
	for i := range oracle {
		d := oracle[i].Neighbors[len(oracle[i].Neighbors)-1].Dist
		seed[oracle[i].Object] = d * d * (1 + 1e-9)
	}
	seedOpts := base
	seedOpts.BoundSeedSq = seed
	seedRes, err := bestOfCollect(ir, is, pool, seedOpts)
	if err != nil {
		return err
	}
	{
		recall, maxRatio := scoreAgainstOracle(seedRes.results, oracle)
		total := seedRes.wall + time.Duration(seedRes.io)*cfg.PageLatency
		rows = append(rows, row{"oracle-seeded", 0, 0, seedRes.wall, seedRes.io, total,
			seedRes.stats, seedRes.sched, recall, maxRatio, seedRes.hash == exactRes.hash})
	}
	for _, sw := range approxSweep {
		// The exact control row is the baseline measurement itself, so its
		// reported speedup is exactly 1 rather than timing noise.
		res := exactRes
		if sw.eps != 0 || sw.rt != 0 {
			opts := base
			opts.Epsilon = sw.eps
			opts.RecallTarget = sw.rt
			var err error
			res, err = bestOfCollect(ir, is, pool, opts)
			if err != nil {
				return fmt.Errorf("%s: %w", sw.label, err)
			}
		}
		recall, maxRatio := scoreAgainstOracle(res.results, oracle)
		total := res.wall + time.Duration(res.io)*cfg.PageLatency
		heartbeat(cfg, "approx: "+sw.label, total, res.stats.Results)
		rows = append(rows, row{sw.label, sw.eps, sw.rt, res.wall, res.io, total,
			res.stats, res.sched, recall, maxRatio, res.hash == exactRes.hash})
	}

	fmt.Fprintf(w, "\n%-18s %9s %9s %10s %9s %8s %10s %13s %10s %10s\n",
		"configuration", "cpu", "io-pages", "total", "speedup", "recall", "max-ratio", "dist-calcs", "expand-s", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %9s %9d %10s %8.2fx %8.4f %10.6f %13d %10d %10v\n",
			r.label, fmtDur(r.wall), r.io, fmtDur(r.total), float64(exactTotal)/float64(r.total),
			r.recall, r.maxRatio, r.stats.DistanceCalcs, r.stats.NodesExpandedS, r.identical)
	}

	// Invariants every collection must satisfy, regardless of gates: the
	// ε = 0 control is byte-identical to the baseline with perfect recall,
	// and no run breaks its own (1+ε) distance contract.
	for _, r := range rows {
		if r.eps == 0 && r.rt == 0 {
			if !r.identical {
				return fmt.Errorf("approx: eps=0 run is not byte-identical to the exact baseline")
			}
			if r.recall < 1 {
				return fmt.Errorf("approx: eps=0 run measured recall %.6f, want 1", r.recall)
			}
			if r.stats.LPQEarlyTerms != 0 {
				return fmt.Errorf("approx: eps=0 run recorded %d approx early terminations", r.stats.LPQEarlyTerms)
			}
		}
		// The (1+ε) distance contract only binds pure-ε runs: the
		// recall-target selector trades unbounded distance error on its
		// straggler fraction for the recall floor instead.
		if r.rt == 0 {
			if limit := (1 + r.eps) * (1 + 1e-9); r.maxRatio > limit {
				return fmt.Errorf("approx: %s returned a distance %.6fx the true one, breaking the (1+ε) contract",
					r.label, r.maxRatio)
			}
		}
	}

	if cfg.JSONPath != "" {
		type runJSON struct {
			Label           string          `json:"label"`
			Epsilon         float64         `json:"epsilon"`
			RecallTarget    float64         `json:"recall_target"`
			CPUNS           int64           `json:"cpu_ns"`
			IOPages         uint64          `json:"io_pages"`
			TotalNS         int64           `json:"total_ns"`
			Total           string          `json:"total"`
			SpeedupVsExact  float64         `json:"speedup_vs_exact"`
			Recall          float64         `json:"recall"`
			MaxDistRatio    float64         `json:"max_dist_ratio"`
			IdenticalOutput bool            `json:"identical_output"`
			Stats           core.Stats      `json:"stats"`
			Sched           core.SchedStats `json:"sched"`
		}
		doc := struct {
			Experiment    string     `json:"experiment"`
			Dataset       string     `json:"dataset"`
			Points        int        `json:"points"`
			Dim           int        `json:"dim"`
			Index         string     `json:"index"`
			K             int        `json:"k"`
			Provenance    Provenance `json:"provenance"`
			PoolBytes     int        `json:"pool_bytes"`
			PageLatencyNS int64      `json:"page_latency_ns"`
			Runs          []runJSON  `json:"runs"`
		}{
			Experiment:    "approx",
			Dataset:       "FC-surrogate",
			Points:        len(pts),
			Dim:           dim,
			Index:         "MBRQT",
			K:             approxK,
			Provenance:    prov,
			PoolBytes:     cfg.PoolBytes,
			PageLatencyNS: cfg.PageLatency.Nanoseconds(),
		}
		for _, r := range rows {
			doc.Runs = append(doc.Runs, runJSON{
				Label:           r.label,
				Epsilon:         r.eps,
				RecallTarget:    r.rt,
				CPUNS:           r.wall.Nanoseconds(),
				IOPages:         r.io,
				TotalNS:         r.total.Nanoseconds(),
				Total:           r.total.Round(time.Microsecond).String(),
				SpeedupVsExact:  float64(exactTotal) / float64(r.total),
				Recall:          r.recall,
				MaxDistRatio:    r.maxRatio,
				IdenticalOutput: r.identical,
				Stats:           r.stats,
				Sched:           r.sched,
			})
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(cfg.JSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nJSON summary written to %s\n", cfg.JSONPath)
	}

	if cfg.MinRecall > 0 {
		bestSpeedup, bestLabel := 0.0, ""
		for _, r := range rows {
			if r.eps == 0 && r.rt == 0 {
				continue
			}
			if sp := float64(exactTotal) / float64(r.total); r.recall >= cfg.MinRecall && sp > bestSpeedup {
				bestSpeedup, bestLabel = sp, r.label
			}
		}
		if bestLabel == "" {
			return fmt.Errorf("min-recall gate: no approximate run reached recall %.4f", cfg.MinRecall)
		}
		fmt.Fprintf(w, "\nmin-recall gate passed: %s at %.2fx speedup with recall >= %.4f\n",
			bestLabel, bestSpeedup, cfg.MinRecall)
	}
	return nil
}

// approxData is the sweep's dataset: the FC surrogate (10-D, correlated)
// at the TAC cardinality (35K points at the default scale). Approximation
// is a high-dimensional lever — in 2-D the exact bounds are already tight
// and the blocked kernel has no per-dimension early-out to feed, so an ε
// that visibly saves work there costs recall; in 10-D the ε-shrunk bounds
// cut boundary-region descents and kernel columns that exact bounds
// cannot, at negligible recall cost.
func approxData(cfg Config) []geom.Point {
	return datagen.FCSurrogate(cfg.Seed, cfg.scaled(700_000))
}

// approxRepeats is how many times each configuration is timed; the
// minimum CPU wall time is reported. The runs are deterministic
// (identical output, counters and page-transfer counts every repeat once
// the pool has warmed), so the minimum isolates algorithmic cost from
// scheduling noise — on the shared single-CPU collection hosts a single
// run's wall time can swing by ±20%.
const approxRepeats = 3

// collectRun is one measured configuration: CPU wall time, buffer-pool
// page transfers (reads + writes), the engine counters, the output hash
// and the captured result stream.
type collectRun struct {
	wall    time.Duration
	io      uint64
	stats   core.Stats
	sched   core.SchedStats
	hash    uint64
	results []core.Result
}

// bestOfCollect runs timedCollect approxRepeats times and keeps the
// fastest wall time alongside the (repeat-invariant) outputs. The page
// count is taken from the later repeats, which start from the pool
// residency the previous identical run left behind — the steady state a
// served workload would see.
func bestOfCollect(ir, is index.Tree, pool *storage.BufferPool, opts core.Options) (collectRun, error) {
	run, err := timedCollect(ir, is, pool, opts)
	if err != nil {
		return collectRun{}, err
	}
	for i := 1; i < approxRepeats; i++ {
		next, err := timedCollect(ir, is, pool, opts)
		if err != nil {
			return collectRun{}, err
		}
		if next.wall < run.wall {
			run.wall = next.wall
		}
		run.io = next.io
	}
	return run, nil
}

// timedCollect is timedRun plus result capture, so a run can be both
// hash-compared against the baseline and scored against the oracle. The
// pool's transfer counters are reset per run; reads and writes both
// count as page transfers, the way Measurement does for the paper's
// figure experiments.
func timedCollect(ir, is index.Tree, pool *storage.BufferPool, opts core.Options) (collectRun, error) {
	h := fnv.New64a()
	var word [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	var run collectRun
	opts.Sched = &run.sched
	pool.ResetStats()
	start := time.Now()
	stats, err := core.Run(ir, is, opts, func(r core.Result) error {
		write(uint64(r.Object))
		for _, n := range r.Neighbors {
			write(uint64(n.Object))
			write(math.Float64bits(n.Dist))
		}
		run.results = append(run.results, r)
		return nil
	})
	run.wall = time.Since(start)
	if err != nil {
		return collectRun{}, err
	}
	st := pool.Stats()
	run.io = st.Reads + st.Writes
	run.stats = stats
	run.hash = h.Sum64()
	return run, nil
}

// parallelOracle computes the brute-force self-AkNN ground truth with one
// goroutine per CPU over disjoint query chunks. The oracle is reference
// scoring, not a measured configuration, so parallelising it is free.
func parallelOracle(pts []geom.Point, k int) []bruteforce.Result {
	s := bruteforce.FromPoints(pts)
	out := make([]bruteforce.Result, len(pts))
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(pts) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(pts); lo += chunk {
		hi := lo + chunk
		if hi > len(pts) {
			hi = len(pts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			r := bruteforce.Dataset{IDs: s.IDs[lo:hi], Points: s.Points[lo:hi]}
			copy(out[lo:], bruteforce.AkNN(r, s, k, true))
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// scoreAgainstOracle computes distance-based recall (a neighbor at rank n
// counts when its distance is within float tolerance of the true rank-n
// distance — tie-insensitive) and the worst returned/true distance ratio
// across all ranks (the observed ε + 1).
func scoreAgainstOracle(results []core.Result, oracle []bruteforce.Result) (recall, maxRatio float64) {
	byObject := make([]*core.Result, len(oracle))
	for i := range results {
		byObject[results[i].Object] = &results[i]
	}
	hits, total := 0, 0
	maxRatio = 1
	for i := range oracle {
		got := byObject[oracle[i].Object]
		for n := range oracle[i].Neighbors {
			total++
			if got == nil || n >= len(got.Neighbors) {
				continue
			}
			want := oracle[i].Neighbors[n].Dist
			if got.Neighbors[n].Dist <= want*(1+1e-9) {
				hits++
			}
			if want > 0 {
				if ratio := got.Neighbors[n].Dist / want; ratio > maxRatio {
					maxRatio = ratio
				}
			}
		}
	}
	if total == 0 {
		return 1, maxRatio
	}
	return float64(hits) / float64(total), maxRatio
}
