package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"allnn/internal/core"
	"allnn/internal/obs"
)

// traceDoc mirrors the Chrome trace-event JSON for validation.
type traceDoc struct {
	TraceEvents []struct {
		Name string   `json:"name"`
		Ph   string   `json:"ph"`
		Ts   float64  `json:"ts"`
		Dur  *float64 `json:"dur"`
		Tid  int64    `json:"tid"`
	} `json:"traceEvents"`
}

// TestTraceSmoke is the end-to-end trace validation behind the Makefile's
// trace-smoke target: it runs the "mba" experiment exactly as
// `annbench -exp mba -trace out.json -json report.json` does and checks
// that the emitted artifacts are well-formed — the trace parses as Chrome
// trace-event JSON, its setup/seed/traverse spans cover >= 95% of the
// query span, every filter span nests inside an expand span, and the
// QueryReport JSON round-trips with the counters the registry saw.
func TestTraceSmoke(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	reportPath := filepath.Join(dir, "report.json")

	var out, progress bytes.Buffer
	reg := obs.NewRegistry()
	DeclareMetricFamilies(reg)
	cfg := tinyConfig(&out)
	cfg.TracePath = tracePath
	cfg.JSONPath = reportPath
	cfg.Metrics = reg
	cfg.Progress = &progress
	if err := RunMBAReport(cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(progress.Bytes(), []byte("mba: traced run")) {
		t.Fatalf("no heartbeat emitted:\n%s", progress.String())
	}

	// --- the trace ------------------------------------------------------
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace-event JSON: %v", err)
	}
	type span struct{ ts, end float64 }
	var query *span
	var phaseCover float64
	var expands, filters []span
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur == nil {
			continue
		}
		s := span{e.Ts, e.Ts + *e.Dur}
		switch e.Name {
		case "query":
			q := s
			query = &q
		case "setup", "seed", "traverse":
			phaseCover += s.end - s.ts
		case "expand":
			expands = append(expands, s)
		case "filter":
			filters = append(filters, s)
		}
	}
	if query == nil {
		t.Fatal("trace has no query span")
	}
	if wall := query.end - query.ts; phaseCover < 0.95*wall {
		t.Fatalf("setup+seed+traverse cover %.1f%% of the query span, want >= 95%%",
			100*phaseCover/wall)
	}
	if len(expands) == 0 || len(filters) == 0 {
		t.Fatalf("trace has %d expand / %d filter spans, want both > 0", len(expands), len(filters))
	}
	for _, f := range filters {
		ok := false
		for _, e := range expands {
			if f.ts >= e.ts-0.001 && f.end <= e.end+0.001 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("filter span [%g,%g] not nested in any expand span", f.ts, f.end)
		}
	}

	// --- the QueryReport JSON and the registry --------------------------
	repRaw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep core.QueryReport
	if err := json.Unmarshal(repRaw, &rep); err != nil {
		t.Fatalf("QueryReport JSON does not parse: %v", err)
	}
	if rep.Engine.Results == 0 {
		t.Fatal("QueryReport has zero results")
	}
	s := reg.Snapshot()
	if got := s.Counters["engine.results"]; got != rep.Engine.Results {
		t.Fatalf("registry engine.results = %d, report says %d", got, rep.Engine.Results)
	}
	if got := s.Counters["pool.misses"]; got < rep.Pool.Misses {
		t.Fatalf("registry pool.misses = %d < report's %d", got, rep.Pool.Misses)
	}
	// DeclareMetricFamilies must have pre-created every family's names.
	for _, name := range []string{
		"engine.distance_calcs", "pool.misses", "cache.hits",
		"gorder.blocks_read", "hnn.dist_calcs", "bnn.distance_calcs",
	} {
		if _, ok := s.Counters[name]; !ok {
			t.Fatalf("metric family %q not declared in the registry", name)
		}
	}
}
