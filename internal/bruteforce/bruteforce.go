// Package bruteforce provides the O(|R|·|S|) reference implementation of
// ANN and AkNN used as ground truth by the test suites and as the
// baseline sanity check of the benchmark harness.
package bruteforce

import (
	"math"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/pq"
)

// Neighbor is one neighbor of a query point.
type Neighbor struct {
	Object index.ObjectID
	Point  geom.Point
	Dist   float64
}

// Result lists the k nearest neighbors of one query point, ascending by
// distance.
type Result struct {
	Object    index.ObjectID
	Point     geom.Point
	Neighbors []Neighbor
}

// Dataset is a point collection with explicit object ids.
type Dataset struct {
	IDs    []index.ObjectID
	Points []geom.Point
}

// FromPoints builds a dataset with ids 0..n-1.
func FromPoints(pts []geom.Point) Dataset {
	ids := make([]index.ObjectID, len(pts))
	for i := range ids {
		ids[i] = index.ObjectID(i)
	}
	return Dataset{IDs: ids, Points: pts}
}

// AkNN computes, for every point of r, its k nearest neighbors in s by
// exhaustive scan. When excludeSelf is set, a neighbor with the same
// ObjectID as the query point is skipped (use for self-joins).
func AkNN(r, s Dataset, k int, excludeSelf bool) []Result {
	out := make([]Result, len(r.Points))
	for i, p := range r.Points {
		best := pq.NewKBest[int](k)
		for j, q := range s.Points {
			if excludeSelf && s.IDs[j] == r.IDs[i] {
				continue
			}
			best.Add(geom.DistSq(p, q), j)
		}
		items := best.Items()
		neighbors := make([]Neighbor, len(items))
		for n, it := range items {
			neighbors[n] = Neighbor{
				Object: s.IDs[it.Value],
				Point:  s.Points[it.Value],
				Dist:   math.Sqrt(it.Key),
			}
		}
		out[i] = Result{Object: r.IDs[i], Point: p, Neighbors: neighbors}
	}
	return out
}

// ANN is AkNN with k = 1.
func ANN(r, s Dataset, excludeSelf bool) []Result {
	return AkNN(r, s, 1, excludeSelf)
}
