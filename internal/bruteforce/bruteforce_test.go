package bruteforce

import (
	"math"
	"testing"

	"allnn/internal/geom"
)

func TestANNBasic(t *testing.T) {
	r := FromPoints([]geom.Point{{0, 0}, {10, 10}})
	s := FromPoints([]geom.Point{{1, 0}, {9, 10}, {100, 100}})
	res := ANN(r, s, false)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Neighbors[0].Object != 0 || math.Abs(res[0].Neighbors[0].Dist-1) > 1e-12 {
		t.Fatalf("NN of (0,0) = %+v", res[0].Neighbors[0])
	}
	if res[1].Neighbors[0].Object != 1 || math.Abs(res[1].Neighbors[0].Dist-1) > 1e-12 {
		t.Fatalf("NN of (10,10) = %+v", res[1].Neighbors[0])
	}
}

func TestAkNNOrderedAndComplete(t *testing.T) {
	pts := []geom.Point{{0}, {1}, {3}, {6}, {10}}
	res := AkNN(FromPoints(pts), FromPoints(pts), 3, true)
	for _, r := range res {
		if len(r.Neighbors) != 3 {
			t.Fatalf("object %d: %d neighbors", r.Object, len(r.Neighbors))
		}
		for i := 1; i < len(r.Neighbors); i++ {
			if r.Neighbors[i].Dist < r.Neighbors[i-1].Dist {
				t.Fatalf("object %d: neighbors not sorted", r.Object)
			}
		}
		for _, n := range r.Neighbors {
			if n.Object == r.Object {
				t.Fatalf("object %d returned itself despite excludeSelf", r.Object)
			}
		}
	}
	// NN of 0 is 1 (dist 1); of 10 is 6 (dist 4).
	if res[0].Neighbors[0].Dist != 1 || res[4].Neighbors[0].Dist != 4 {
		t.Fatalf("1-D neighbors wrong: %+v %+v", res[0].Neighbors[0], res[4].Neighbors[0])
	}
}

func TestAkNNSmallTarget(t *testing.T) {
	r := FromPoints([]geom.Point{{0, 0}})
	s := FromPoints([]geom.Point{{1, 1}, {2, 2}})
	res := AkNN(r, s, 10, false)
	if len(res[0].Neighbors) != 2 {
		t.Fatalf("expected all 2 targets, got %d", len(res[0].Neighbors))
	}
}

func TestFromPointsIDs(t *testing.T) {
	ds := FromPoints([]geom.Point{{1}, {2}, {3}})
	for i, id := range ds.IDs {
		if int(id) != i {
			t.Fatalf("id %d = %d", i, id)
		}
	}
}
