// Package wire defines the annserve binary protocol: a version-checked
// handshake followed by length-prefixed frames carrying one encoded
// message each. Both internal/server and ann/client speak through this
// package, so the encoding of every message has exactly one definition.
//
// Stream layout (all integers big-endian):
//
//	handshake: "ANNS" magic, uint8 protocol version  (client → server)
//	frame:     uint32 payload length, payload bytes  (both directions)
//
// Every request payload begins with a RequestHeader (id, op, timeout);
// every response payload with the echoed request id and a ResponseKind.
// Responses to one request are either a single KindResult frame, or a
// sequence of KindStream frames closed by KindEnd (streaming joins), or
// a single KindError frame carrying a typed error code.
package wire

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic opens every connection; a server reading anything else closes
// immediately (it is probably being probed by a non-annserve client).
const Magic = "ANNS"

// Version is the protocol version this build speaks. Version 2 added
// the shard-routing frames (OpShardMap, OpRangePoints, the partial-
// result reply block and the SHARD_UNAVAILABLE/PARTIAL_RESULT error
// codes). A server accepts any version in [MinVersion, Version] — the
// version-1 frame set is unchanged, so old clients keep working — but
// there are no negotiated downgrades: a version-2 client talking to a
// version-1 server is rejected at the handshake rather than failing
// mid-stream on a frame the server cannot parse.
const Version = 2

// MinVersion is the oldest protocol version a server still accepts.
const MinVersion = 1

// MaxFrame bounds a single frame's payload. Requests are small; join
// result streams chunk themselves well below this. A peer announcing a
// larger frame is malformed and the connection is dropped.
const MaxFrame = 16 << 20

// Op identifies a request type.
type Op uint8

const (
	// OpOpen loads an index file into the catalog under a name.
	OpOpen Op = 1
	// OpClose removes a catalog index and closes its page file.
	OpClose Op = 2
	// OpList enumerates the catalog.
	OpList Op = 3
	// OpStats snapshots one catalog index's storage counters.
	OpStats Op = 4
	// OpKNN answers a point k-nearest-neighbor probe.
	OpKNN Op = 5
	// OpBatchKNN answers many kNN probes in one request.
	OpBatchKNN Op = 6
	// OpRange returns the ids inside an axis-aligned box.
	OpRange Op = 7
	// OpJoin runs an ANN/AkNN join, streaming result frames.
	OpJoin Op = 8
	// OpWithinDistance runs a distance join, streaming pair frames.
	OpWithinDistance Op = 9
	// OpClosestPairs returns the k closest cross-index pairs.
	OpClosestPairs Op = 10
	// OpInsert durably adds a batch of points to a live index.
	OpInsert Op = 11
	// OpDelete durably removes a batch of points from a live index.
	OpDelete Op = 12
	// OpShardMap returns the shard topology of a routed dataset
	// (annrouter only; a plain annserve answers BAD_REQUEST).
	// Version-gated: requires protocol version >= 2.
	OpShardMap Op = 13
	// OpRangePoints returns the ids AND coordinates inside an
	// axis-aligned box — the boundary-strip fetch the router uses to
	// recover cross-shard pairs. Version-gated: requires version >= 2.
	OpRangePoints Op = 14
)

// String implements fmt.Stringer; it is also the server's per-op
// metric label.
func (op Op) String() string {
	switch op {
	case OpOpen:
		return "open"
	case OpClose:
		return "close"
	case OpList:
		return "list"
	case OpStats:
		return "stats"
	case OpKNN:
		return "knn"
	case OpBatchKNN:
		return "batch_knn"
	case OpRange:
		return "range"
	case OpJoin:
		return "join"
	case OpWithinDistance:
		return "within_distance"
	case OpClosestPairs:
		return "closest_pairs"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpShardMap:
		return "shard_map"
	case OpRangePoints:
		return "range_points"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// ResponseKind distinguishes the frames a request can receive back.
type ResponseKind uint8

const (
	// KindResult is the single, final reply of a non-streaming op.
	KindResult ResponseKind = 1
	// KindStream is one chunk of a streaming op's results.
	KindStream ResponseKind = 2
	// KindEnd closes a stream, carrying the total result count.
	KindEnd ResponseKind = 3
	// KindError is a terminal typed error (for streams it may arrive
	// after KindStream frames: results emitted so far remain valid).
	KindError ResponseKind = 4
)

// ErrorCode is the typed failure class carried by a KindError frame.
type ErrorCode uint16

const (
	// CodeServerBusy: the admission queue is full; retry later.
	CodeServerBusy ErrorCode = 1
	// CodeDeadlineExceeded: the request's deadline passed (queued or
	// mid-query).
	CodeDeadlineExceeded ErrorCode = 2
	// CodeNotFound: no catalog index with that name.
	CodeNotFound ErrorCode = 3
	// CodeBadRequest: the request was malformed or semantically invalid
	// (dimension mismatch, k < 1, unknown op...).
	CodeBadRequest ErrorCode = 4
	// CodeShuttingDown: the server is draining; no new work accepted.
	CodeShuttingDown ErrorCode = 5
	// CodeCorruptIndex: the index file failed its header or checksum
	// verification.
	CodeCorruptIndex ErrorCode = 6
	// CodeInternal: anything else, including recovered panics.
	CodeInternal ErrorCode = 7
	// CodeWriteFailed: a mutation could not be made durable (failed log
	// append or fsync); the index refuses further writes until reopened,
	// and the failed batch's durability is indeterminate.
	CodeWriteFailed ErrorCode = 8
	// CodeShardUnavailable: a routed request needed a shard whose
	// backend is down (after retries). Strict-mode routers fail the
	// whole request with this code rather than return partial data.
	CodeShardUnavailable ErrorCode = 9
	// CodePartialResult: a degraded-mode router gathered what it could
	// but one or more shards were unavailable. For streams this arrives
	// after the KindStream frames in place of KindEnd: everything
	// streamed so far is exact for the shards that answered.
	CodePartialResult ErrorCode = 10
)

// String implements fmt.Stringer with the protocol's canonical names.
func (c ErrorCode) String() string {
	switch c {
	case CodeServerBusy:
		return "SERVER_BUSY"
	case CodeDeadlineExceeded:
		return "DEADLINE_EXCEEDED"
	case CodeNotFound:
		return "NOT_FOUND"
	case CodeBadRequest:
		return "BAD_REQUEST"
	case CodeShuttingDown:
		return "SHUTTING_DOWN"
	case CodeCorruptIndex:
		return "CORRUPT_INDEX"
	case CodeInternal:
		return "INTERNAL"
	case CodeWriteFailed:
		return "WRITE_FAILED"
	case CodeShardUnavailable:
		return "SHARD_UNAVAILABLE"
	case CodePartialResult:
		return "PARTIAL_RESULT"
	default:
		return fmt.Sprintf("CODE(%d)", uint16(c))
	}
}

// Error is a typed protocol error as surfaced to client callers.
type Error struct {
	Code ErrorCode
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

// IsCode reports whether err is (or wraps) a protocol error with the
// given code.
func IsCode(err error, code ErrorCode) bool {
	var we *Error
	return errors.As(err, &we) && we.Code == code
}

// RequestHeader opens every request payload.
type RequestHeader struct {
	// ID is chosen by the client and echoed on every response frame,
	// tying frames back to requests.
	ID uint64
	// Op selects the message type that follows.
	Op Op
	// Timeout, when positive, is the client's remaining deadline budget
	// at send time; the server enforces it from arrival.
	Timeout time.Duration
	// Epsilon and RecallTarget carry the approximate-query knobs (see
	// ann.QueryConfig). Both zero — the exact query every pre-extension
	// client sends — encodes to the original fixed header with no
	// trailing extension, so old and new peers interoperate: an old
	// decoder never sees the extension bytes, and a new decoder treats
	// their absence as exact. When either is non-zero the encoder appends
	// both after the body as two F64s; only OpJoin honors them (the
	// server rejects them on any other op).
	Epsilon      float64
	RecallTarget float64
	// TraceID is an optional client-chosen identifier echoed through the
	// server's logs, slow-query ring and in-flight table, tying a wire
	// request to client-side context. WantReport asks the server to
	// attach a Report to the terminating StreamEnd of a join (rejected
	// on non-streaming ops, like the approximate knobs). Both zero-valued
	// — the only thing a pre-extension client can send — encode to a
	// frame byte-identical to the older format: the trace extension
	// (flags byte + trace-id string, preceded by the two approx F64s) is
	// appended only when at least one of them is set.
	TraceID    string
	WantReport bool
}

// flagWantReport is the only defined bit of the trace extension's flags
// byte; decoders reject unknown bits so they can be assigned meaning
// later without silently changing old servers' behavior.
const flagWantReport = 1 << 0

// MaxTraceIDLen bounds a client-supplied trace ID. Trace IDs land in
// logs, JSON tables and metrics labels, so they are kept short and
// (see CheckTraceID) printable.
const MaxTraceIDLen = 128

// CheckTraceID validates a trace ID for the wire: at most MaxTraceIDLen
// bytes of printable non-space ASCII, no quotes or backslashes — safe to
// embed in key=value log lines and JSON without escaping surprises. The
// empty string is valid (no trace).
func CheckTraceID(s string) error {
	if len(s) > MaxTraceIDLen {
		return fmt.Errorf("wire: trace id of %d bytes exceeds limit %d", len(s), MaxTraceIDLen)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= 0x20 || c > 0x7e || c == '"' || c == '\\' {
			return fmt.Errorf("wire: trace id contains invalid byte 0x%02x at %d", c, i)
		}
	}
	return nil
}

// --- handshake --------------------------------------------------------------

// WriteHandshake sends the connection preamble.
func WriteHandshake(w io.Writer) error {
	var b [5]byte
	copy(b[:], Magic)
	b[4] = Version
	_, err := w.Write(b[:])
	return err
}

// ReadHandshake consumes and verifies the connection preamble.
func ReadHandshake(r io.Reader) error {
	var b [5]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("wire: reading handshake: %w", err)
	}
	if string(b[:4]) != Magic {
		return fmt.Errorf("wire: bad handshake magic %q", b[:4])
	}
	if b[4] < MinVersion || b[4] > Version {
		return fmt.Errorf("wire: protocol version %d, want %d..%d", b[4], MinVersion, Version)
	}
	return nil
}

// --- frames -----------------------------------------------------------------

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	hdr[0] = byte(len(payload) >> 24)
	hdr[1] = byte(len(payload) >> 16)
	hdr[2] = byte(len(payload) >> 8)
	hdr[3] = byte(len(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting frames beyond
// MaxFrame before allocating.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: peer announced %d-byte frame, limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: truncated %d-byte frame: %w", n, err)
	}
	return payload, nil
}
