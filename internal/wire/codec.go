package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder appends primitive values to a growing payload buffer. It
// never fails: sizing errors are the decoder's problem, by design —
// every value the encoder can produce must decode back.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder reusing buf's storage (pass nil to
// allocate fresh).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

func (e *Encoder) U8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *Encoder) I64(v int64)  { e.U64(uint64(v)) }
func (e *Encoder) F64(v float64) {
	e.U64(math.Float64bits(v))
}
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Uvarint writes a variable-length count or length.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// String writes a uvarint length followed by the raw bytes.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// F64s writes a uvarint count followed by the coordinates.
func (e *Encoder) F64s(vs []float64) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// U64s writes a uvarint count followed by the values.
func (e *Encoder) U64s(vs []uint64) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// Decoder reads primitive values from a payload buffer. It is
// sticky-error: after the first malformed read every further read
// returns a zero value, and Err reports the failure. Every slice count
// is validated against the bytes actually remaining, so a hostile
// payload cannot force a large allocation.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over the payload.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns the decoder's error, or an error if unread bytes
// remain — a length-prefixed payload must be consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or malformed %s at offset %d", what, d.off)
	}
}

// failWith records a semantic validation failure (the bytes decoded but
// the value is out of range), keeping the sticky-error contract.
func (d *Decoder) failWith(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) U8(what string) uint8 {
	b := d.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) U16(what string) uint16 {
	b := d.take(2, what)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *Decoder) U32(what string) uint32 {
	b := d.take(4, what)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *Decoder) U64(what string) uint64 {
	b := d.take(8, what)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *Decoder) I64(what string) int64 { return int64(d.U64(what)) }

func (d *Decoder) F64(what string) float64 { return math.Float64frombits(d.U64(what)) }

func (d *Decoder) Bool(what string) bool {
	switch d.U8(what) {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(what)
		return false
	}
}

func (d *Decoder) Uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

// Count reads a uvarint element count and validates it against the
// bytes remaining, given the minimum encoded size of one element.
func (d *Decoder) Count(minElemBytes int, what string) int {
	v := d.Uvarint(what)
	if d.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if v > uint64(d.Remaining()/minElemBytes) {
		d.fail(what)
		return 0
	}
	return int(v)
}

func (d *Decoder) String(what string) string {
	n := d.Count(1, what)
	b := d.take(n, what)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *Decoder) F64s(what string) []float64 {
	n := d.Count(8, what)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.F64(what)
	}
	return vs
}

func (d *Decoder) U64s(what string) []uint64 {
	n := d.Count(8, what)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = d.U64(what)
	}
	return vs
}
