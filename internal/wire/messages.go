package wire

import (
	"fmt"
	"math"
	"time"
)

// Message is one encodable protocol body (request or response). The
// concrete type is selected by the frame's header — op for requests,
// (kind, op) for responses — so bodies carry no type tag of their own.
type Message interface {
	encode(*Encoder)
	decode(*Decoder)
}

// --- shared value types -----------------------------------------------------

// Neighbor mirrors ann.Neighbor on the wire.
type Neighbor struct {
	ID    uint64
	Dist  float64
	Point []float64
}

func (n *Neighbor) encode(e *Encoder) {
	e.U64(n.ID)
	e.F64(n.Dist)
	e.F64s(n.Point)
}

func (n *Neighbor) decode(d *Decoder) {
	n.ID = d.U64("neighbor id")
	n.Dist = d.F64("neighbor dist")
	n.Point = d.F64s("neighbor point")
}

// Result mirrors ann.Result on the wire.
type Result struct {
	ID        uint64
	Point     []float64
	Neighbors []Neighbor
}

// minResultBytes is the smallest encoding of a Result (empty point and
// neighbor list), used to validate counts before allocating.
const minResultBytes = 8 + 1 + 1

func (r *Result) encode(e *Encoder) {
	e.U64(r.ID)
	e.F64s(r.Point)
	e.Uvarint(uint64(len(r.Neighbors)))
	for i := range r.Neighbors {
		r.Neighbors[i].encode(e)
	}
}

func (r *Result) decode(d *Decoder) {
	r.ID = d.U64("result id")
	r.Point = d.F64s("result point")
	n := d.Count(8+8+1, "result neighbors")
	if d.Err() != nil || n == 0 {
		return
	}
	r.Neighbors = make([]Neighbor, n)
	for i := range r.Neighbors {
		r.Neighbors[i].decode(d)
	}
}

// Pair mirrors ann.Pair on the wire.
type Pair struct {
	R, S uint64
	Dist float64
}

func (p *Pair) encode(e *Encoder) {
	e.U64(p.R)
	e.U64(p.S)
	e.F64(p.Dist)
}

func (p *Pair) decode(d *Decoder) {
	p.R = d.U64("pair r")
	p.S = d.U64("pair s")
	p.Dist = d.F64("pair dist")
}

// IndexInfo is one catalog entry as reported by list/open/stats.
type IndexInfo struct {
	Name   string
	Kind   uint8 // ann.IndexKind
	Points uint64
	Dim    uint32
}

func (ii *IndexInfo) encode(e *Encoder) {
	e.String(ii.Name)
	e.U8(ii.Kind)
	e.U64(ii.Points)
	e.U32(ii.Dim)
}

func (ii *IndexInfo) decode(d *Decoder) {
	ii.Name = d.String("index name")
	ii.Kind = d.U8("index kind")
	ii.Points = d.U64("index points")
	ii.Dim = d.U32("index dim")
}

// --- requests ---------------------------------------------------------------

// OpenReq (OpOpen) loads the index file at Path into the catalog as Name.
type OpenReq struct {
	Name string
	Path string
}

func (m *OpenReq) encode(e *Encoder) { e.String(m.Name); e.String(m.Path) }
func (m *OpenReq) decode(d *Decoder) { m.Name = d.String("open name"); m.Path = d.String("open path") }

// CloseReq (OpClose) drops the named index from the catalog.
type CloseReq struct {
	Name string
}

func (m *CloseReq) encode(e *Encoder) { e.String(m.Name) }
func (m *CloseReq) decode(d *Decoder) { m.Name = d.String("close name") }

// ListReq (OpList) has no body.
type ListReq struct{}

func (m *ListReq) encode(*Encoder) {}
func (m *ListReq) decode(*Decoder) {}

// StatsReq (OpStats) snapshots the named index.
type StatsReq struct {
	Name string
}

func (m *StatsReq) encode(e *Encoder) { e.String(m.Name) }
func (m *StatsReq) decode(d *Decoder) { m.Name = d.String("stats name") }

// KNNReq (OpKNN) is a single point probe against a catalog index.
type KNNReq struct {
	Index string
	K     uint32
	Point []float64
}

func (m *KNNReq) encode(e *Encoder) {
	e.String(m.Index)
	e.U32(m.K)
	e.F64s(m.Point)
}

func (m *KNNReq) decode(d *Decoder) {
	m.Index = d.String("knn index")
	m.K = d.U32("knn k")
	m.Point = d.F64s("knn point")
}

// BatchKNNReq (OpBatchKNN) carries many probe points in one request.
type BatchKNNReq struct {
	Index  string
	K      uint32
	Points [][]float64
}

func (m *BatchKNNReq) encode(e *Encoder) {
	e.String(m.Index)
	e.U32(m.K)
	e.Uvarint(uint64(len(m.Points)))
	for _, p := range m.Points {
		e.F64s(p)
	}
}

func (m *BatchKNNReq) decode(d *Decoder) {
	m.Index = d.String("batch index")
	m.K = d.U32("batch k")
	n := d.Count(1, "batch points")
	if d.Err() != nil || n == 0 {
		return
	}
	m.Points = make([][]float64, n)
	for i := range m.Points {
		m.Points[i] = d.F64s("batch point")
	}
}

// RangeReq (OpRange) asks for the ids inside the box [Lo, Hi].
type RangeReq struct {
	Index  string
	Lo, Hi []float64
}

func (m *RangeReq) encode(e *Encoder) {
	e.String(m.Index)
	e.F64s(m.Lo)
	e.F64s(m.Hi)
}

func (m *RangeReq) decode(d *Decoder) {
	m.Index = d.String("range index")
	m.Lo = d.F64s("range lo")
	m.Hi = d.F64s("range hi")
}

// JoinReq (OpJoin) runs AllKNearestNeighbors(R, S, K) — or, with Self
// set, SelfAllKNearestNeighbors(R, K) — streaming results back in
// KindStream frames closed by KindEnd.
type JoinReq struct {
	R, S string
	K    uint32
	Self bool
}

func (m *JoinReq) encode(e *Encoder) {
	e.String(m.R)
	e.String(m.S)
	e.U32(m.K)
	e.Bool(m.Self)
}

func (m *JoinReq) decode(d *Decoder) {
	m.R = d.String("join r")
	m.S = d.String("join s")
	m.K = d.U32("join k")
	m.Self = d.Bool("join self")
}

// WithinReq (OpWithinDistance) streams every cross-index pair within
// Dist as KindStream frames closed by KindEnd. Pass the same name for R
// and S with ExcludeSelf for a self-join.
type WithinReq struct {
	R, S        string
	Dist        float64
	ExcludeSelf bool
}

func (m *WithinReq) encode(e *Encoder) {
	e.String(m.R)
	e.String(m.S)
	e.F64(m.Dist)
	e.Bool(m.ExcludeSelf)
}

func (m *WithinReq) decode(d *Decoder) {
	m.R = d.String("within r")
	m.S = d.String("within s")
	m.Dist = d.F64("within dist")
	m.ExcludeSelf = d.Bool("within exclude-self")
}

// PairsReq (OpClosestPairs) returns the K closest cross-index pairs.
type PairsReq struct {
	R, S        string
	K           uint32
	ExcludeSelf bool
}

func (m *PairsReq) encode(e *Encoder) {
	e.String(m.R)
	e.String(m.S)
	e.U32(m.K)
	e.Bool(m.ExcludeSelf)
}

func (m *PairsReq) decode(d *Decoder) {
	m.R = d.String("pairs r")
	m.S = d.String("pairs s")
	m.K = d.U32("pairs k")
	m.ExcludeSelf = d.Bool("pairs exclude-self")
}

// InsertReq (OpInsert) durably adds a batch of points to a live index.
// IDs and Points are parallel slices; the whole batch is committed with
// one log fsync, so a success reply means all of it survives any crash.
type InsertReq struct {
	Index  string
	IDs    []uint64
	Points [][]float64
}

func (m *InsertReq) encode(e *Encoder) {
	e.String(m.Index)
	e.U64s(m.IDs)
	e.Uvarint(uint64(len(m.Points)))
	for _, p := range m.Points {
		e.F64s(p)
	}
}

func (m *InsertReq) decode(d *Decoder) {
	m.Index = d.String("insert index")
	m.IDs = d.U64s("insert ids")
	n := d.Count(1, "insert points")
	if d.Err() != nil || n == 0 {
		return
	}
	m.Points = make([][]float64, n)
	for i := range m.Points {
		m.Points[i] = d.F64s("insert point")
	}
}

// DeleteReq (OpDelete) durably removes a batch of points (matched by id
// AND coordinates) from a live index. Absent points are durable no-ops,
// counted by the reply's Found.
type DeleteReq struct {
	Index  string
	IDs    []uint64
	Points [][]float64
}

func (m *DeleteReq) encode(e *Encoder) {
	e.String(m.Index)
	e.U64s(m.IDs)
	e.Uvarint(uint64(len(m.Points)))
	for _, p := range m.Points {
		e.F64s(p)
	}
}

func (m *DeleteReq) decode(d *Decoder) {
	m.Index = d.String("delete index")
	m.IDs = d.U64s("delete ids")
	n := d.Count(1, "delete points")
	if d.Err() != nil || n == 0 {
		return
	}
	m.Points = make([][]float64, n)
	for i := range m.Points {
		m.Points[i] = d.F64s("delete point")
	}
}

// --- responses --------------------------------------------------------------

// ErrorReply (KindError) carries a typed failure.
type ErrorReply struct {
	Code ErrorCode
	Msg  string
}

func (m *ErrorReply) encode(e *Encoder) { e.U16(uint16(m.Code)); e.String(m.Msg) }
func (m *ErrorReply) decode(d *Decoder) {
	m.Code = ErrorCode(d.U16("error code"))
	m.Msg = d.String("error msg")
}

// OpenReply answers OpOpen with the opened index's shape.
type OpenReply struct {
	Info IndexInfo
}

func (m *OpenReply) encode(e *Encoder) { m.Info.encode(e) }
func (m *OpenReply) decode(d *Decoder) { m.Info.decode(d) }

// CloseReply answers OpClose.
type CloseReply struct{}

func (m *CloseReply) encode(*Encoder) {}
func (m *CloseReply) decode(*Decoder) {}

// ListReply answers OpList with every catalog entry.
type ListReply struct {
	Indexes []IndexInfo
}

func (m *ListReply) encode(e *Encoder) {
	e.Uvarint(uint64(len(m.Indexes)))
	for i := range m.Indexes {
		m.Indexes[i].encode(e)
	}
}

func (m *ListReply) decode(d *Decoder) {
	n := d.Count(1+1+8+4, "list entries")
	if d.Err() != nil || n == 0 {
		return
	}
	m.Indexes = make([]IndexInfo, n)
	for i := range m.Indexes {
		m.Indexes[i].decode(d)
	}
}

// StatsReply answers OpStats; the counter fields mirror ann.IndexStats.
type StatsReply struct {
	Info IndexInfo

	PoolHits         uint64
	PoolMisses       uint64
	PoolReads        uint64
	PoolWrites       uint64
	PoolEvictions    uint64
	PoolRetries      uint64
	PoolCorruptPages uint64
	PinnedFrames     uint64

	CacheHits          uint64
	CacheMisses        uint64
	CacheEvictions     uint64
	CacheInvalidations uint64
	CacheEntries       uint64
	CacheBytes         uint64

	WALRecords     uint64
	WALFsyncs      uint64
	WALCheckpoints uint64
	WALReplayed    uint64
	WALReplayNs    uint64
	SnapshotPins   uint64
}

func (m *StatsReply) encode(e *Encoder) {
	m.Info.encode(e)
	for _, v := range []uint64{
		m.PoolHits, m.PoolMisses, m.PoolReads, m.PoolWrites,
		m.PoolEvictions, m.PoolRetries, m.PoolCorruptPages, m.PinnedFrames,
		m.CacheHits, m.CacheMisses, m.CacheEvictions, m.CacheInvalidations,
		m.CacheEntries, m.CacheBytes,
		m.WALRecords, m.WALFsyncs, m.WALCheckpoints, m.WALReplayed,
		m.WALReplayNs, m.SnapshotPins,
	} {
		e.U64(v)
	}
}

func (m *StatsReply) decode(d *Decoder) {
	m.Info.decode(d)
	for _, p := range []*uint64{
		&m.PoolHits, &m.PoolMisses, &m.PoolReads, &m.PoolWrites,
		&m.PoolEvictions, &m.PoolRetries, &m.PoolCorruptPages, &m.PinnedFrames,
		&m.CacheHits, &m.CacheMisses, &m.CacheEvictions, &m.CacheInvalidations,
		&m.CacheEntries, &m.CacheBytes,
		&m.WALRecords, &m.WALFsyncs, &m.WALCheckpoints, &m.WALReplayed,
		&m.WALReplayNs, &m.SnapshotPins,
	} {
		*p = d.U64("stats counter")
	}
}

// KNNReply answers OpKNN. Partial is set only by a degraded-mode
// router when a shard was unavailable (see PartialInfo).
type KNNReply struct {
	Neighbors []Neighbor
	Partial   *PartialInfo
}

func (m *KNNReply) encode(e *Encoder) {
	e.Uvarint(uint64(len(m.Neighbors)))
	for i := range m.Neighbors {
		m.Neighbors[i].encode(e)
	}
	if m.Partial != nil {
		m.Partial.encode(e)
	}
}

func (m *KNNReply) decode(d *Decoder) {
	n := d.Count(8+8+1, "knn neighbors")
	if d.Err() != nil {
		return
	}
	if n > 0 {
		m.Neighbors = make([]Neighbor, n)
		for i := range m.Neighbors {
			m.Neighbors[i].decode(d)
		}
	}
	m.Partial = decodeTrailingPartial(d)
}

// BatchKNNReply answers OpBatchKNN, one Result per query point in
// request order. Partial is set only by a degraded-mode router.
type BatchKNNReply struct {
	Results []Result
	Partial *PartialInfo
}

func (m *BatchKNNReply) encode(e *Encoder) {
	e.Uvarint(uint64(len(m.Results)))
	for i := range m.Results {
		m.Results[i].encode(e)
	}
	if m.Partial != nil {
		m.Partial.encode(e)
	}
}

func (m *BatchKNNReply) decode(d *Decoder) {
	n := d.Count(minResultBytes, "batch results")
	if d.Err() != nil {
		return
	}
	if n > 0 {
		m.Results = make([]Result, n)
		for i := range m.Results {
			m.Results[i].decode(d)
		}
	}
	m.Partial = decodeTrailingPartial(d)
}

// RangeReply answers OpRange. Partial is set only by a degraded-mode
// router.
type RangeReply struct {
	IDs     []uint64
	Partial *PartialInfo
}

func (m *RangeReply) encode(e *Encoder) {
	e.U64s(m.IDs)
	if m.Partial != nil {
		m.Partial.encode(e)
	}
}

func (m *RangeReply) decode(d *Decoder) {
	m.IDs = d.U64s("range ids")
	m.Partial = decodeTrailingPartial(d)
}

// JoinFrame is one KindStream chunk of an OpJoin result stream.
type JoinFrame struct {
	Results []Result
}

func (m *JoinFrame) encode(e *Encoder) {
	e.Uvarint(uint64(len(m.Results)))
	for i := range m.Results {
		m.Results[i].encode(e)
	}
}

func (m *JoinFrame) decode(d *Decoder) {
	n := d.Count(minResultBytes, "join results")
	if d.Err() != nil || n == 0 {
		return
	}
	m.Results = make([]Result, n)
	for i := range m.Results {
		m.Results[i].decode(d)
	}
}

// PairFrame is one KindStream chunk of an OpWithinDistance pair stream.
type PairFrame struct {
	Pairs []Pair
}

func (m *PairFrame) encode(e *Encoder) {
	e.Uvarint(uint64(len(m.Pairs)))
	for i := range m.Pairs {
		m.Pairs[i].encode(e)
	}
}

func (m *PairFrame) decode(d *Decoder) {
	n := d.Count(8+8+8, "pair frame")
	if d.Err() != nil || n == 0 {
		return
	}
	m.Pairs = make([]Pair, n)
	for i := range m.Pairs {
		m.Pairs[i].decode(d)
	}
}

// PairsReply answers OpClosestPairs.
type PairsReply struct {
	Pairs []Pair
}

func (m *PairsReply) encode(e *Encoder) {
	e.Uvarint(uint64(len(m.Pairs)))
	for i := range m.Pairs {
		m.Pairs[i].encode(e)
	}
}

func (m *PairsReply) decode(d *Decoder) {
	n := d.Count(8+8+8, "pairs reply")
	if d.Err() != nil || n == 0 {
		return
	}
	m.Pairs = make([]Pair, n)
	for i := range m.Pairs {
		m.Pairs[i].decode(d)
	}
}

// InsertReply answers OpInsert. Size is the index's point count after
// the batch.
type InsertReply struct {
	Inserted uint64
	Size     uint64
}

func (m *InsertReply) encode(e *Encoder) { e.U64(m.Inserted); e.U64(m.Size) }
func (m *InsertReply) decode(d *Decoder) {
	m.Inserted = d.U64("insert inserted")
	m.Size = d.U64("insert size")
}

// DeleteReply answers OpDelete. Found counts the batch entries that
// matched an indexed point; Size is the index's point count after the
// batch.
type DeleteReply struct {
	Found uint64
	Size  uint64
}

func (m *DeleteReply) encode(e *Encoder) { e.U64(m.Found); e.U64(m.Size) }
func (m *DeleteReply) decode(d *Decoder) {
	m.Found = d.U64("delete found")
	m.Size = d.U64("delete size")
}

// Report is the per-request observability record carried back to the
// client when the request header set WantReport: the engine's
// core.Stats counters (serial/parallel parity-invariant, so a remote
// report is byte-comparable to a direct library run), pool and cache
// activity deltas, the stage timing breakdown, scheduler counters, and
// the service-side costs only the server can see (admission wait,
// engine vs flush time, bytes moved). The wire package mirrors the
// internal types field for field rather than importing them, keeping
// the protocol definition dependency-free.
type Report struct {
	// TraceID echoes the request's trace ID.
	TraceID string

	// Engine counters, mirroring core.Stats.
	EngineDistanceCalcs   uint64
	EngineLPQsCreated     uint64
	EngineEnqueued        uint64
	EnginePrunedOnProbe   uint64
	EnginePrunedByFilter  uint64
	EngineNodesExpandedR  uint64
	EngineNodesExpandedS  uint64
	EngineResults         uint64
	EngineNodeCacheHits   uint64
	EngineNodeCacheMisses uint64
	EnginePrunedSubtrees  uint64
	EnginePrunedEntries   uint64
	EngineLPQEarlyTerms   uint64

	// Buffer-pool activity during the run, mirroring storage.Stats.
	PoolHits         uint64
	PoolMisses       uint64
	PoolReads        uint64
	PoolWrites       uint64
	PoolEvictions    uint64
	PoolRetries      uint64
	PoolCorruptPages uint64

	// Decoded-node cache activity (nodecache.Counters) and post-run
	// residency (nodecache.Residency).
	CacheHits          uint64
	CacheMisses        uint64
	CacheEvictions     uint64
	CacheInvalidations uint64
	CacheEntries       int64
	CacheBytes         int64

	// Stage timings in nanoseconds, mirroring core.Timings.
	WallNs     int64
	SetupNs    int64
	SeedNs     int64
	FrontierNs int64
	TraverseNs int64
	ExpandNs   int64
	FilterNs   int64
	GatherNs   int64

	// Scheduler counters, mirroring core.SchedStats.
	SchedTasks           uint64
	SchedSteals          uint64
	SchedSplits          uint64
	SchedKernelBlocks    uint64
	SchedKernelPairs     uint64
	SchedKernelEarlyOuts uint64

	// Service-side breakdown: time spent queued in admission, running
	// the engine, and flushing result frames; bytes read from and
	// written to this request's connection (request frame in, result
	// frames out including the StreamEnd that carries this report —
	// whose own size is excluded, being unknowable before encoding).
	AdmissionWaitNs int64
	EngineNs        int64
	FlushNs         int64
	BytesIn         uint64
	BytesOut        uint64
}

// reportU64s returns pointers to every uint64 field in wire order.
func (r *Report) reportU64s() []*uint64 {
	return []*uint64{
		&r.EngineDistanceCalcs, &r.EngineLPQsCreated, &r.EngineEnqueued,
		&r.EnginePrunedOnProbe, &r.EnginePrunedByFilter,
		&r.EngineNodesExpandedR, &r.EngineNodesExpandedS, &r.EngineResults,
		&r.EngineNodeCacheHits, &r.EngineNodeCacheMisses,
		&r.EnginePrunedSubtrees, &r.EnginePrunedEntries, &r.EngineLPQEarlyTerms,
		&r.PoolHits, &r.PoolMisses, &r.PoolReads, &r.PoolWrites,
		&r.PoolEvictions, &r.PoolRetries, &r.PoolCorruptPages,
		&r.CacheHits, &r.CacheMisses, &r.CacheEvictions, &r.CacheInvalidations,
		&r.SchedTasks, &r.SchedSteals, &r.SchedSplits,
		&r.SchedKernelBlocks, &r.SchedKernelPairs, &r.SchedKernelEarlyOuts,
		&r.BytesIn, &r.BytesOut,
	}
}

// reportI64s returns pointers to every int64 field in wire order. All
// are sizes or nanosecond durations, so decode rejects negatives.
func (r *Report) reportI64s() []*int64 {
	return []*int64{
		&r.CacheEntries, &r.CacheBytes,
		&r.WallNs, &r.SetupNs, &r.SeedNs, &r.FrontierNs, &r.TraverseNs,
		&r.ExpandNs, &r.FilterNs, &r.GatherNs,
		&r.AdmissionWaitNs, &r.EngineNs, &r.FlushNs,
	}
}

func (r *Report) encode(e *Encoder) {
	e.String(r.TraceID)
	for _, p := range r.reportU64s() {
		e.U64(*p)
	}
	for _, p := range r.reportI64s() {
		e.I64(*p)
	}
}

func (r *Report) decode(d *Decoder) {
	r.TraceID = d.String("report trace id")
	if d.Err() == nil {
		if err := CheckTraceID(r.TraceID); err != nil {
			d.failWith(err)
			return
		}
	}
	for _, p := range r.reportU64s() {
		*p = d.U64("report counter")
	}
	for _, p := range r.reportI64s() {
		*p = d.I64("report value")
		if d.Err() == nil && *p < 0 {
			d.failWith(fmt.Errorf("wire: negative report value %d", *p))
			return
		}
	}
}

// StreamEnd (KindEnd) closes a result stream with the total count the
// client should have accumulated — a cheap end-to-end integrity check.
// Report is attached only when the request asked for one (WantReport):
// a bare StreamEnd is byte-identical to the pre-report format, and a
// client that did not ask never has to decode one.
type StreamEnd struct {
	Count  uint64
	Report *Report
}

func (m *StreamEnd) encode(e *Encoder) {
	e.U64(m.Count)
	if m.Report != nil {
		m.Report.encode(e)
	}
}

func (m *StreamEnd) decode(d *Decoder) {
	m.Count = d.U64("stream end count")
	if d.Err() == nil && d.Remaining() > 0 {
		m.Report = &Report{}
		m.Report.decode(d)
	}
}

// --- envelopes --------------------------------------------------------------

// requestBody returns a fresh body value for op.
func requestBody(op Op) (Message, error) {
	switch op {
	case OpOpen:
		return &OpenReq{}, nil
	case OpClose:
		return &CloseReq{}, nil
	case OpList:
		return &ListReq{}, nil
	case OpStats:
		return &StatsReq{}, nil
	case OpKNN:
		return &KNNReq{}, nil
	case OpBatchKNN:
		return &BatchKNNReq{}, nil
	case OpRange:
		return &RangeReq{}, nil
	case OpJoin:
		return &JoinReq{}, nil
	case OpWithinDistance:
		return &WithinReq{}, nil
	case OpClosestPairs:
		return &PairsReq{}, nil
	case OpInsert:
		return &InsertReq{}, nil
	case OpDelete:
		return &DeleteReq{}, nil
	case OpShardMap:
		return &ShardMapReq{}, nil
	case OpRangePoints:
		return &RangePointsReq{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown request op %d", uint8(op))
	}
}

// responseBody returns a fresh body value for a (kind, op) pair.
func responseBody(kind ResponseKind, op Op) (Message, error) {
	switch kind {
	case KindError:
		return &ErrorReply{}, nil
	case KindEnd:
		return &StreamEnd{}, nil
	case KindStream:
		switch op {
		case OpJoin:
			return &JoinFrame{}, nil
		case OpWithinDistance:
			return &PairFrame{}, nil
		}
		return nil, fmt.Errorf("wire: op %s does not stream", op)
	case KindResult:
		switch op {
		case OpOpen:
			return &OpenReply{}, nil
		case OpClose:
			return &CloseReply{}, nil
		case OpList:
			return &ListReply{}, nil
		case OpStats:
			return &StatsReply{}, nil
		case OpKNN:
			return &KNNReply{}, nil
		case OpBatchKNN:
			return &BatchKNNReply{}, nil
		case OpRange:
			return &RangeReply{}, nil
		case OpClosestPairs:
			return &PairsReply{}, nil
		case OpInsert:
			return &InsertReply{}, nil
		case OpDelete:
			return &DeleteReply{}, nil
		case OpShardMap:
			return &ShardMapReply{}, nil
		case OpRangePoints:
			return &RangePointsReply{}, nil
		}
		return nil, fmt.Errorf("wire: op %s has no single-frame result", op)
	default:
		return nil, fmt.Errorf("wire: unknown response kind %d", uint8(kind))
	}
}

// approxExtBytes is the size of the approximate-query header extension
// trailing the request body: Epsilon and RecallTarget as two F64s.
// Appended only when at least one knob is non-zero or a trace extension
// follows (the trace block sits after the knobs, so its presence forces
// them onto the wire even at zero), keeping every pre-extension frame
// valid and byte-identical.
const approxExtBytes = 16

// EncodeRequest encodes a request payload (header + body) into buf's
// storage, returning the payload. The body type must match hdr.Op —
// the peer's decoder holds callers to it.
func EncodeRequest(hdr RequestHeader, body Message, buf []byte) ([]byte, error) {
	if _, err := requestBody(hdr.Op); err != nil {
		return nil, err
	}
	if err := CheckTraceID(hdr.TraceID); err != nil {
		return nil, err
	}
	e := NewEncoder(buf)
	e.U64(hdr.ID)
	e.U8(uint8(hdr.Op))
	e.I64(int64(hdr.Timeout))
	body.encode(e)
	traceExt := hdr.TraceID != "" || hdr.WantReport
	if hdr.Epsilon != 0 || hdr.RecallTarget != 0 || traceExt {
		e.F64(hdr.Epsilon)
		e.F64(hdr.RecallTarget)
	}
	if traceExt {
		var flags uint8
		if hdr.WantReport {
			flags |= flagWantReport
		}
		e.U8(flags)
		e.String(hdr.TraceID)
	}
	return e.Bytes(), nil
}

// DecodeRequest decodes a request payload into its header and body.
// Bytes left over after the body are the header extensions: exactly
// approxExtBytes is the approximate-query extension alone (the PR-8
// format), more is the knobs followed by the trace extension (flags
// byte + trace-id string); older frames simply end at the body. All
// extension values are range-checked here so a hostile frame cannot
// smuggle NaN factors, unknown flag bits or an unloggable trace ID past
// the typed validation downstream.
func DecodeRequest(payload []byte) (RequestHeader, Message, error) {
	d := NewDecoder(payload)
	var hdr RequestHeader
	hdr.ID = d.U64("request id")
	hdr.Op = Op(d.U8("request op"))
	hdr.Timeout = time.Duration(d.I64("request timeout"))
	if err := d.Err(); err != nil {
		return hdr, nil, err
	}
	if hdr.Timeout < 0 {
		return hdr, nil, fmt.Errorf("wire: negative request timeout %d", hdr.Timeout)
	}
	body, err := requestBody(hdr.Op)
	if err != nil {
		return hdr, nil, err
	}
	body.decode(d)
	if d.Err() == nil && d.Remaining() >= approxExtBytes {
		hdr.Epsilon = d.F64("epsilon")
		hdr.RecallTarget = d.F64("recall target")
		if math.IsNaN(hdr.Epsilon) || math.IsInf(hdr.Epsilon, 0) || hdr.Epsilon < 0 {
			return hdr, nil, fmt.Errorf("wire: invalid epsilon %v", hdr.Epsilon)
		}
		if math.IsNaN(hdr.RecallTarget) || hdr.RecallTarget < 0 || hdr.RecallTarget > 1 {
			return hdr, nil, fmt.Errorf("wire: invalid recall target %v", hdr.RecallTarget)
		}
		if d.Remaining() > 0 {
			flags := d.U8("request flags")
			if d.Err() == nil && flags&^uint8(flagWantReport) != 0 {
				return hdr, nil, fmt.Errorf("wire: unknown request flag bits 0x%02x", flags&^uint8(flagWantReport))
			}
			hdr.WantReport = flags&flagWantReport != 0
			hdr.TraceID = d.String("trace id")
			if d.Err() == nil {
				if err := CheckTraceID(hdr.TraceID); err != nil {
					return hdr, nil, err
				}
			}
		}
	}
	if err := d.Finish(); err != nil {
		return hdr, nil, err
	}
	return hdr, body, nil
}

// EncodeResponse encodes a response payload (id + kind + op + body)
// into buf's storage, returning the payload.
func EncodeResponse(id uint64, kind ResponseKind, op Op, body Message, buf []byte) ([]byte, error) {
	if _, err := responseBody(kind, op); err != nil {
		return nil, err
	}
	e := NewEncoder(buf)
	e.U64(id)
	e.U8(uint8(kind))
	e.U8(uint8(op))
	body.encode(e)
	return e.Bytes(), nil
}

// DecodeResponse decodes a response payload into its request id,
// kind, op, and body.
func DecodeResponse(payload []byte) (uint64, ResponseKind, Op, Message, error) {
	d := NewDecoder(payload)
	id := d.U64("response id")
	kind := ResponseKind(d.U8("response kind"))
	op := Op(d.U8("response op"))
	if err := d.Err(); err != nil {
		return id, kind, op, nil, err
	}
	body, err := responseBody(kind, op)
	if err != nil {
		return id, kind, op, nil, err
	}
	body.decode(d)
	if err := d.Finish(); err != nil {
		return id, kind, op, nil, err
	}
	return id, kind, op, body, nil
}
