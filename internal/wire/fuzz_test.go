package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary payloads through the request
// decoder and checks the round-trip property: anything that decodes
// must re-encode to a payload that decodes to the same message. The
// decoder must never panic or over-allocate regardless of input.
func FuzzDecodeRequest(f *testing.F) {
	for _, s := range requestSamples() {
		payload, err := EncodeRequest(s.hdr, s.body, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		hdr, body, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		re, err := EncodeRequest(hdr, body, nil)
		if err != nil {
			t.Fatalf("decoded request failed to re-encode: %v", err)
		}
		hdr2, _, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if hdr2 != hdr {
			t.Fatalf("header changed across round trip: %+v vs %+v", hdr, hdr2)
		}
		// The canonical encoding is a fixed point: encoding twice must
		// produce identical bytes (the first decode may accept the same
		// message in non-canonical uvarint form, so compare re-encodes).
		_, body3, err := DecodeRequest(re)
		if err != nil {
			t.Fatal(err)
		}
		re2, err := EncodeRequest(hdr2, body3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("re-encoding is not a fixed point:\n%x\n%x", re, re2)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	for _, s := range responseSamples() {
		payload, err := EncodeResponse(s.id, s.kind, s.op, s.body, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		id, kind, op, body, err := DecodeResponse(payload)
		if err != nil {
			return
		}
		re, err := EncodeResponse(id, kind, op, body, nil)
		if err != nil {
			t.Fatalf("decoded response failed to re-encode: %v", err)
		}
		id2, kind2, op2, body2, err := DecodeResponse(re)
		if err != nil {
			t.Fatalf("re-encoded response failed to decode: %v", err)
		}
		if id2 != id || kind2 != kind || op2 != op {
			t.Fatalf("envelope changed across round trip")
		}
		re2, err := EncodeResponse(id2, kind2, op2, body2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("re-encoding is not a fixed point:\n%x\n%x", re, re2)
		}
	})
}
