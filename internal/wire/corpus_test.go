package wire

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var writeCorpus = flag.Bool("write-corpus", false,
	"rewrite testdata/fuzz seed corpora from requestSamples/responseSamples")

// TestRefreshFuzzCorpus regenerates the checked-in fuzz seed corpora
// when run with -write-corpus (see `make fuzz-corpus`), so that every
// sample frame — including newly added protocol frames — is a seed.
// Without the flag it verifies the corpus is fresh: every sample's
// encoding must exist as a seed file, which fails the build when a new
// frame is added to the samples but the corpus was not regenerated.
func TestRefreshFuzzCorpus(t *testing.T) {
	var reqs, resps [][]byte
	for _, s := range requestSamples() {
		payload, err := EncodeRequest(s.hdr, s.body, nil)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, payload)
	}
	for _, s := range responseSamples() {
		payload, err := EncodeResponse(s.id, s.kind, s.op, s.body, nil)
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, payload)
	}
	for dir, payloads := range map[string][][]byte{
		"FuzzDecodeRequest":  reqs,
		"FuzzDecodeResponse": resps,
	} {
		path := filepath.Join("testdata", "fuzz", dir)
		if *writeCorpus {
			// Only the generated seed-NN files are ours to rewrite;
			// legacy-* entries are curated (fuzzer-minimized and
			// prior-version) inputs that a refresh must not discard.
			old, err := filepath.Glob(filepath.Join(path, "seed-*"))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range old {
				if err := os.Remove(f); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.MkdirAll(path, 0o755); err != nil {
				t.Fatal(err)
			}
			for i, p := range payloads {
				seed := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", p)
				name := filepath.Join(path, fmt.Sprintf("seed-%02d", i))
				if err := os.WriteFile(name, []byte(seed), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			t.Logf("wrote %d seeds to %s", len(payloads), path)
			continue
		}
		have := make(map[string]bool)
		entries, err := os.ReadDir(path)
		if err != nil {
			t.Fatalf("reading corpus %s (run `make fuzz-corpus`?): %v", path, err)
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(path, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			have[string(b)] = true
		}
		for i, p := range payloads {
			seed := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", p)
			if !have[seed] {
				t.Errorf("%s: sample %d has no seed file — run `make fuzz-corpus` to refresh", dir, i)
			}
		}
	}
}
