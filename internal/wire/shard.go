package wire

// Shard-routing frames (protocol version 2). The shard map describes a
// dataset partitioned across annserve backends by contiguous
// space-filling-curve key ranges; the router serves it over OpShardMap
// so clients and operators can inspect the topology, and loads it from
// the same encoding's JSON twin on disk (internal/router).

// ShardInfo is one shard of a partitioned dataset: the backend that
// owns it, the half of the curve-key space it covers, the contiguous
// global-id range of its points, and its tight boundary MBR (the rect
// routed queries prune against).
type ShardInfo struct {
	// Name is the index name mounted on the backend's catalog.
	Name string
	// Addr is the backend's host:port.
	Addr string
	// LoKey and HiKey delimit the shard's curve-key range, inclusive on
	// both ends; consecutive shards' ranges are adjacent, tiling the
	// whole uint64 key space.
	LoKey uint64
	HiKey uint64
	// IDBase is the global object id of the shard's first point; the
	// shard's points carry local ids 0..Count-1, so global id =
	// IDBase + local id. Global id ranges of consecutive shards are
	// contiguous, which is what lets the router merge per-shard streams
	// into one globally id-ordered stream without a sort.
	IDBase uint64
	Count  uint64
	// MBRLo and MBRHi are the corners of the shard's boundary MBR.
	MBRLo []float64
	MBRHi []float64
}

func (s *ShardInfo) encode(e *Encoder) {
	e.String(s.Name)
	e.String(s.Addr)
	e.U64(s.LoKey)
	e.U64(s.HiKey)
	e.U64(s.IDBase)
	e.U64(s.Count)
	e.F64s(s.MBRLo)
	e.F64s(s.MBRHi)
}

func (s *ShardInfo) decode(d *Decoder) {
	s.Name = d.String("shard name")
	s.Addr = d.String("shard addr")
	s.LoKey = d.U64("shard lo key")
	s.HiKey = d.U64("shard hi key")
	s.IDBase = d.U64("shard id base")
	s.Count = d.U64("shard count")
	s.MBRLo = d.F64s("shard mbr lo")
	s.MBRHi = d.F64s("shard mbr hi")
}

// minShardInfoBytes is the smallest encoding of a ShardInfo (empty
// strings and MBR corners), used to validate counts before allocating.
const minShardInfoBytes = 1 + 1 + 8*4 + 1 + 1

// ShardMap is the routed topology of one logical dataset.
type ShardMap struct {
	// Name is the logical dataset name the router serves it under.
	Name string
	// Curve is the partitioning curve (curve.Kind: 1 zorder, 2 hilbert).
	Curve uint8
	// BoundsLo and BoundsHi are the curve encoder's bounds — the
	// bounding rect of the dataset at partitioning time. Query points
	// are mapped to curve keys against these bounds.
	BoundsLo []float64
	BoundsHi []float64
	Shards   []ShardInfo
}

func (m *ShardMap) encode(e *Encoder) {
	e.String(m.Name)
	e.U8(m.Curve)
	e.F64s(m.BoundsLo)
	e.F64s(m.BoundsHi)
	e.Uvarint(uint64(len(m.Shards)))
	for i := range m.Shards {
		m.Shards[i].encode(e)
	}
}

func (m *ShardMap) decode(d *Decoder) {
	m.Name = d.String("map name")
	m.Curve = d.U8("map curve")
	m.BoundsLo = d.F64s("map bounds lo")
	m.BoundsHi = d.F64s("map bounds hi")
	n := d.Count(minShardInfoBytes, "map shards")
	if d.Err() != nil || n == 0 {
		return
	}
	m.Shards = make([]ShardInfo, n)
	for i := range m.Shards {
		m.Shards[i].decode(d)
	}
}

// ShardMapReq (OpShardMap) asks a router for the topology of a routed
// dataset.
type ShardMapReq struct {
	Name string
}

func (m *ShardMapReq) encode(e *Encoder) { e.String(m.Name) }
func (m *ShardMapReq) decode(d *Decoder) { m.Name = d.String("shard map name") }

// ShardMapReply answers OpShardMap.
type ShardMapReply struct {
	Map ShardMap
}

func (m *ShardMapReply) encode(e *Encoder) { m.Map.encode(e) }
func (m *ShardMapReply) decode(d *Decoder) { m.Map.decode(d) }

// RangePointsReq (OpRangePoints) asks for the ids and coordinates of
// every point inside the box [Lo, Hi].
type RangePointsReq struct {
	Index  string
	Lo, Hi []float64
}

func (m *RangePointsReq) encode(e *Encoder) {
	e.String(m.Index)
	e.F64s(m.Lo)
	e.F64s(m.Hi)
}

func (m *RangePointsReq) decode(d *Decoder) {
	m.Index = d.String("range points index")
	m.Lo = d.F64s("range points lo")
	m.Hi = d.F64s("range points hi")
}

// RangePointsReply answers OpRangePoints. IDs and Points are parallel.
type RangePointsReply struct {
	IDs    []uint64
	Points [][]float64
	// Partial, when non-nil, marks a degraded routed reply (see
	// PartialInfo); encoded only when set.
	Partial *PartialInfo
}

func (m *RangePointsReply) encode(e *Encoder) {
	e.U64s(m.IDs)
	e.Uvarint(uint64(len(m.Points)))
	for _, p := range m.Points {
		e.F64s(p)
	}
	if m.Partial != nil {
		m.Partial.encode(e)
	}
}

func (m *RangePointsReply) decode(d *Decoder) {
	m.IDs = d.U64s("range points ids")
	n := d.Count(1, "range points points")
	if d.Err() != nil {
		return
	}
	if n > 0 {
		m.Points = make([][]float64, n)
		for i := range m.Points {
			m.Points[i] = d.F64s("range points point")
		}
	}
	m.Partial = decodeTrailingPartial(d)
}

// PartialInfo marks a degraded-mode scatter-gather reply: the named
// shards were unavailable, so the reply holds only what the live shards
// produced. It is appended after the reply body only when set, so a
// complete reply stays byte-identical to the version-1 encoding (the
// same presence-gating discipline as StreamEnd's Report). Streaming ops
// signal partiality differently — a KindError frame with
// CodePartialResult in place of KindEnd.
type PartialInfo struct {
	// Missing names the shards that did not answer.
	Missing []string
}

func (p *PartialInfo) encode(e *Encoder) {
	e.Uvarint(uint64(len(p.Missing)))
	for _, s := range p.Missing {
		e.String(s)
	}
}

func (p *PartialInfo) decode(d *Decoder) {
	n := d.Count(1, "partial missing")
	if d.Err() != nil || n == 0 {
		return
	}
	p.Missing = make([]string, n)
	for i := range p.Missing {
		p.Missing[i] = d.String("partial shard")
	}
}

// decodeTrailingPartial reads an optional trailing PartialInfo block —
// shared by the reply types that can be served partially by a
// degraded-mode router.
func decodeTrailingPartial(d *Decoder) *PartialInfo {
	if d.Err() != nil || d.Remaining() == 0 {
		return nil
	}
	p := &PartialInfo{}
	p.decode(d)
	return p
}
