package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

// requestSamples covers every request op with representative field
// values, including empty-slice edge cases.
func requestSamples() []struct {
	hdr  RequestHeader
	body Message
} {
	return []struct {
		hdr  RequestHeader
		body Message
	}{
		{RequestHeader{ID: 1, Op: OpOpen, Timeout: 2 * time.Second}, &OpenReq{Name: "pts", Path: "/tmp/pts.pages"}},
		{RequestHeader{ID: 2, Op: OpClose}, &CloseReq{Name: "pts"}},
		{RequestHeader{ID: 3, Op: OpList}, &ListReq{}},
		{RequestHeader{ID: 4, Op: OpStats, Timeout: time.Millisecond}, &StatsReq{Name: "pts"}},
		{RequestHeader{ID: 5, Op: OpKNN}, &KNNReq{Index: "pts", K: 4, Point: []float64{1.5, -2.25}}},
		{RequestHeader{ID: 6, Op: OpBatchKNN}, &BatchKNNReq{Index: "pts", K: 1, Points: [][]float64{{0, 0}, {9, 9}}}},
		{RequestHeader{ID: 7, Op: OpRange}, &RangeReq{Index: "pts", Lo: []float64{0, 0}, Hi: []float64{10, 10}}},
		{RequestHeader{ID: 8, Op: OpJoin}, &JoinReq{R: "r", S: "s", K: 4}},
		{RequestHeader{ID: 9, Op: OpJoin}, &JoinReq{R: "r", K: 1, Self: true}},
		{RequestHeader{ID: 10, Op: OpWithinDistance}, &WithinReq{R: "r", S: "r", Dist: 3.5, ExcludeSelf: true}},
		{RequestHeader{ID: 11, Op: OpClosestPairs}, &PairsReq{R: "r", S: "s", K: 8}},
		{RequestHeader{ID: 12, Op: OpKNN}, &KNNReq{Index: "", K: 0, Point: nil}},
		// Approximate-query header extension (trailing Epsilon/RecallTarget).
		{RequestHeader{ID: 13, Op: OpJoin, Epsilon: 0.1, RecallTarget: 0.95}, &JoinReq{R: "r", S: "s", K: 2}},
		{RequestHeader{ID: 14, Op: OpJoin, Timeout: time.Second, Epsilon: 0.5}, &JoinReq{R: "r", K: 1, Self: true}},
		{RequestHeader{ID: 15, Op: OpJoin, RecallTarget: 1}, &JoinReq{R: "r", K: 1, Self: true}},
		// Trace header extension (flags + trace ID after the knobs).
		{RequestHeader{ID: 16, Op: OpJoin, TraceID: "req-0042", WantReport: true}, &JoinReq{R: "r", K: 1, Self: true}},
		{RequestHeader{ID: 17, Op: OpKNN, TraceID: "probe/7"}, &KNNReq{Index: "pts", K: 2, Point: []float64{1, 2}}},
		{RequestHeader{ID: 18, Op: OpJoin, Epsilon: 0.1, RecallTarget: 0.95, WantReport: true}, &JoinReq{R: "r", S: "s", K: 2}},
		// Mutations.
		{RequestHeader{ID: 19, Op: OpInsert}, &InsertReq{Index: "pts", IDs: []uint64{10, 11}, Points: [][]float64{{1, 2}, {3, 4}}}},
		{RequestHeader{ID: 20, Op: OpDelete}, &DeleteReq{Index: "pts", IDs: []uint64{10}, Points: [][]float64{{1, 2}}}},
		// Shard-routing frames (protocol version 2).
		{RequestHeader{ID: 21, Op: OpShardMap}, &ShardMapReq{Name: "pts"}},
		{RequestHeader{ID: 22, Op: OpRangePoints}, &RangePointsReq{Index: "pts", Lo: []float64{0, 0}, Hi: []float64{1, 1}}},
		{RequestHeader{ID: 23, Op: OpRangePoints, TraceID: "strip-3"}, &RangePointsReq{Index: "s0"}},
	}
}

// sampleShardMap is a two-shard topology exercising every ShardMap
// field.
func sampleShardMap() ShardMap {
	return ShardMap{
		Name:     "pts",
		Curve:    2, // hilbert
		BoundsLo: []float64{0, 0},
		BoundsHi: []float64{1, 1},
		Shards: []ShardInfo{
			{Name: "pts-s0", Addr: "10.0.0.1:7070", LoKey: 0, HiKey: 1 << 40, IDBase: 0, Count: 500,
				MBRLo: []float64{0, 0}, MBRHi: []float64{0.6, 1}},
			{Name: "pts-s1", Addr: "10.0.0.2:7070", LoKey: 1<<40 + 1, HiKey: math.MaxUint64, IDBase: 500, Count: 500,
				MBRLo: []float64{0.4, 0}, MBRHi: []float64{1, 1}},
		},
	}
}

// sampleReport fills every Report field with a distinct value so a
// round trip that drops or reorders one cannot pass.
func sampleReport() *Report {
	r := &Report{TraceID: "req-0042"}
	for i, p := range r.reportU64s() {
		*p = uint64(1000 + i)
	}
	for i, p := range r.reportI64s() {
		*p = int64(2000 + i)
	}
	return r
}

// responseSamples covers every (kind, op) response shape.
func responseSamples() []struct {
	id   uint64
	kind ResponseKind
	op   Op
	body Message
} {
	nb := []Neighbor{{ID: 7, Dist: 1.25, Point: []float64{3, 4}}}
	res := []Result{{ID: 0, Point: []float64{1, 2}, Neighbors: nb}, {ID: 1}}
	prs := []Pair{{R: 1, S: 2, Dist: 0.5}}
	return []struct {
		id   uint64
		kind ResponseKind
		op   Op
		body Message
	}{
		{1, KindResult, OpOpen, &OpenReply{Info: IndexInfo{Name: "pts", Kind: 1, Points: 100, Dim: 2}}},
		{2, KindResult, OpClose, &CloseReply{}},
		{3, KindResult, OpList, &ListReply{Indexes: []IndexInfo{{Name: "a", Points: 1, Dim: 3}, {Name: "b"}}}},
		{4, KindResult, OpStats, &StatsReply{Info: IndexInfo{Name: "pts"}, PoolHits: 10, CacheBytes: 1 << 20, WALRecords: 42, WALFsyncs: 7, SnapshotPins: 3}},
		{5, KindResult, OpKNN, &KNNReply{Neighbors: nb}},
		{6, KindResult, OpBatchKNN, &BatchKNNReply{Results: res}},
		{7, KindResult, OpRange, &RangeReply{IDs: []uint64{3, 1, 4}}},
		{8, KindStream, OpJoin, &JoinFrame{Results: res}},
		{9, KindStream, OpWithinDistance, &PairFrame{Pairs: prs}},
		{10, KindResult, OpClosestPairs, &PairsReply{Pairs: prs}},
		{11, KindEnd, OpJoin, &StreamEnd{Count: 42}},
		{12, KindError, OpKNN, &ErrorReply{Code: CodeServerBusy, Msg: "queue full"}},
		{13, KindResult, OpKNN, &KNNReply{}},
		{14, KindEnd, OpJoin, &StreamEnd{Count: 7, Report: sampleReport()}},
		{15, KindEnd, OpJoin, &StreamEnd{Count: 0, Report: &Report{}}},
		{16, KindResult, OpInsert, &InsertReply{Inserted: 2, Size: 102}},
		{17, KindResult, OpDelete, &DeleteReply{Found: 1, Size: 101}},
		{18, KindError, OpInsert, &ErrorReply{Code: CodeWriteFailed, Msg: "fsync failed"}},
		// Shard-routing frames (protocol version 2).
		{19, KindResult, OpShardMap, &ShardMapReply{Map: sampleShardMap()}},
		{20, KindResult, OpRangePoints, &RangePointsReply{IDs: []uint64{3, 7}, Points: [][]float64{{0.1, 0.2}, {0.3, 0.4}}}},
		{21, KindResult, OpRangePoints, &RangePointsReply{}},
		{22, KindResult, OpKNN, &KNNReply{Neighbors: nb, Partial: &PartialInfo{Missing: []string{"pts-s1"}}}},
		{23, KindResult, OpBatchKNN, &BatchKNNReply{Results: res, Partial: &PartialInfo{Missing: []string{"pts-s0", "pts-s1"}}}},
		{24, KindResult, OpRange, &RangeReply{IDs: []uint64{1}, Partial: &PartialInfo{}}},
		{25, KindError, OpJoin, &ErrorReply{Code: CodePartialResult, Msg: "shard pts-s1 unavailable"}},
		{26, KindError, OpKNN, &ErrorReply{Code: CodeShardUnavailable, Msg: "dial refused"}},
		{27, KindResult, OpRangePoints, &RangePointsReply{IDs: []uint64{9}, Points: [][]float64{{1.5, -2.5}},
			Partial: &PartialInfo{Missing: []string{"pts-s2"}}}},
		{28, KindResult, OpRangePoints, &RangePointsReply{Partial: &PartialInfo{Missing: []string{"pts-s0"}}}},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, s := range requestSamples() {
		payload, err := EncodeRequest(s.hdr, s.body, nil)
		if err != nil {
			t.Fatalf("encode %s: %v", s.hdr.Op, err)
		}
		hdr, body, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("decode %s: %v", s.hdr.Op, err)
		}
		if hdr != s.hdr {
			t.Errorf("%s: header %+v, want %+v", s.hdr.Op, hdr, s.hdr)
		}
		if !reflect.DeepEqual(body, s.body) {
			t.Errorf("%s: body %+v, want %+v", s.hdr.Op, body, s.body)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, s := range responseSamples() {
		payload, err := EncodeResponse(s.id, s.kind, s.op, s.body, nil)
		if err != nil {
			t.Fatalf("encode (%d,%s): %v", s.kind, s.op, err)
		}
		id, kind, op, body, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("decode (%d,%s): %v", s.kind, s.op, err)
		}
		if id != s.id || kind != s.kind || op != s.op {
			t.Errorf("envelope (%d,%d,%s), want (%d,%d,%s)", id, kind, op, s.id, s.kind, s.op)
		}
		if !reflect.DeepEqual(body, s.body) {
			t.Errorf("(%d,%s): body %+v, want %+v", s.kind, s.op, body, s.body)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	// Unknown op.
	if _, _, err := DecodeRequest([]byte{0, 0, 0, 0, 0, 0, 0, 1, 99, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown op accepted")
	}
	// Truncated header.
	if _, _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Error("truncated header accepted")
	}
	// Trailing garbage after a valid message.
	payload, _ := EncodeRequest(RequestHeader{ID: 1, Op: OpList}, &ListReq{}, nil)
	if _, _, err := DecodeRequest(append(payload, 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// A huge announced count with no backing bytes must fail cleanly,
	// not allocate.
	e := NewEncoder(nil)
	e.U64(1)
	e.U8(uint8(OpKNN))
	e.I64(0)
	e.String("pts")
	e.U32(1)
	e.Uvarint(1 << 40) // count of a point that isn't there
	if _, _, err := DecodeRequest(e.Bytes()); err == nil {
		t.Error("absurd count accepted")
	}
	// Streaming kinds are invalid for non-streaming ops.
	if _, err := EncodeResponse(1, KindStream, OpKNN, &JoinFrame{}, nil); err == nil {
		t.Error("KindStream for OpKNN accepted")
	}
}

// TestApproxExtension pins the compatibility contract of the trailing
// Epsilon/RecallTarget extension: zero knobs encode to the pre-extension
// frame byte-for-byte, pre-extension frames decode with zero knobs, and
// hostile extension values (NaN, negatives, out-of-range targets) are
// rejected at decode rather than reaching query validation.
func TestApproxExtension(t *testing.T) {
	exact, err := EncodeRequest(RequestHeader{ID: 1, Op: OpJoin}, &JoinReq{R: "r", K: 1, Self: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := EncodeRequest(RequestHeader{ID: 1, Op: OpJoin, Epsilon: 0.25}, &JoinReq{R: "r", K: 1, Self: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) != len(exact)+16 {
		t.Fatalf("extension adds %d bytes, want 16", len(approx)-len(exact))
	}
	if !bytes.Equal(approx[:len(exact)], exact) {
		t.Error("approx frame is not the exact frame plus a trailing extension")
	}
	// A pre-extension frame (no trailing bytes) decodes to zero knobs.
	hdr, _, err := DecodeRequest(exact)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Epsilon != 0 || hdr.RecallTarget != 0 {
		t.Errorf("old frame decoded with knobs %v/%v", hdr.Epsilon, hdr.RecallTarget)
	}
	// Hostile extension values must be rejected at decode.
	bad := [][2]float64{
		{math.NaN(), 0},
		{0, math.NaN()},
		{math.Inf(1), 0},
		{-0.5, 0},
		{0.1, -0.1},
		{0.1, 1.5},
	}
	for _, kv := range bad {
		e := NewEncoder(nil)
		e.U64(1)
		e.U8(uint8(OpJoin))
		e.I64(0)
		(&JoinReq{R: "r", K: 1, Self: true}).encode(e)
		e.F64(kv[0])
		e.F64(kv[1])
		if _, _, err := DecodeRequest(e.Bytes()); err == nil {
			t.Errorf("extension (%v, %v) accepted", kv[0], kv[1])
		}
	}
}

// TestTraceExtension pins the compatibility contract of the trace
// header extension, mirroring TestApproxExtension: zero-valued trace
// fields encode to the pre-extension frame byte-for-byte, the trace
// block appends after the approx knobs (forcing them onto the wire even
// at zero), and hostile flags or trace IDs are rejected at decode.
func TestTraceExtension(t *testing.T) {
	plain, err := EncodeRequest(RequestHeader{ID: 1, Op: OpJoin}, &JoinReq{R: "r", K: 1, Self: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := EncodeRequest(RequestHeader{ID: 1, Op: OpJoin, TraceID: "t-1", WantReport: true}, &JoinReq{R: "r", K: 1, Self: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// knobs (16) + flags (1) + string len uvarint (1) + "t-1" (3).
	if len(traced) != len(plain)+16+1+1+3 {
		t.Fatalf("trace extension adds %d bytes, want 21", len(traced)-len(plain))
	}
	if !bytes.Equal(traced[:len(plain)], plain) {
		t.Error("traced frame is not the plain frame plus a trailing extension")
	}
	// A pre-extension frame decodes with zero trace fields.
	hdr, _, err := DecodeRequest(plain)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.TraceID != "" || hdr.WantReport {
		t.Errorf("old frame decoded with trace fields %q/%v", hdr.TraceID, hdr.WantReport)
	}
	// An approx-only frame (exactly 16 trailing bytes, the PR-8 format)
	// still decodes as knobs-only.
	approx, err := EncodeRequest(RequestHeader{ID: 1, Op: OpJoin, Epsilon: 0.25}, &JoinReq{R: "r", K: 1, Self: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err = DecodeRequest(approx)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Epsilon != 0.25 || hdr.TraceID != "" || hdr.WantReport {
		t.Errorf("approx-only frame decoded as %+v", hdr)
	}
	// The full round trip preserves every header field.
	full := RequestHeader{ID: 9, Op: OpJoin, Epsilon: 0.1, RecallTarget: 0.9, TraceID: "abc-123", WantReport: true}
	payload, err := EncodeRequest(full, &JoinReq{R: "r", K: 1, Self: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err = DecodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != full {
		t.Errorf("round trip = %+v, want %+v", hdr, full)
	}

	// Hostile trace extensions must be rejected at decode: unknown flag
	// bits, oversized IDs, and IDs with unprintable or quoting bytes.
	encodeRaw := func(flags uint8, trace string) []byte {
		e := NewEncoder(nil)
		e.U64(1)
		e.U8(uint8(OpJoin))
		e.I64(0)
		(&JoinReq{R: "r", K: 1, Self: true}).encode(e)
		e.F64(0)
		e.F64(0)
		e.U8(flags)
		e.String(trace)
		return e.Bytes()
	}
	bad := []struct {
		flags uint8
		trace string
	}{
		{0x02, "ok"}, // unknown flag bit
		{0x80, ""},   // unknown flag bit
		{0x01, string(bytes.Repeat([]byte{'a'}, 129))}, // over MaxTraceIDLen
		{0x01, "has space"},
		{0x01, "new\nline"},
		{0x01, `has"quote`},
		{0x01, `back\slash`},
		{0x01, "\x7f"},
	}
	for _, tc := range bad {
		if _, _, err := DecodeRequest(encodeRaw(tc.flags, tc.trace)); err == nil {
			t.Errorf("hostile trace extension (flags=0x%02x, trace=%q) accepted", tc.flags, tc.trace)
		}
	}
	// The encoder enforces the same trace-ID contract.
	if _, err := EncodeRequest(RequestHeader{ID: 1, Op: OpJoin, TraceID: "bad id"}, &JoinReq{R: "r", K: 1}, nil); err == nil {
		t.Error("encoder accepted an invalid trace id")
	}
}

// TestStreamEndReport pins the report block's compatibility contract: a
// report-free StreamEnd is byte-identical to the pre-report format, a
// report-bearing one decodes losslessly, and negative durations are
// rejected.
func TestStreamEndReport(t *testing.T) {
	bare, err := EncodeResponse(3, KindEnd, OpJoin, &StreamEnd{Count: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Envelope (8+1+1) + count (8): the exact pre-report frame size.
	if len(bare) != 8+1+1+8 {
		t.Fatalf("bare StreamEnd is %d bytes, want 18", len(bare))
	}
	_, _, _, body, err := DecodeResponse(bare)
	if err != nil {
		t.Fatal(err)
	}
	if end := body.(*StreamEnd); end.Count != 5 || end.Report != nil {
		t.Errorf("bare StreamEnd decoded as %+v", end)
	}

	rep := sampleReport()
	withRep, err := EncodeResponse(3, KindEnd, OpJoin, &StreamEnd{Count: 5, Report: rep}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withRep[:len(bare)], bare) {
		t.Error("report-bearing StreamEnd is not the bare frame plus a trailing block")
	}
	_, _, _, body, err = DecodeResponse(withRep)
	if err != nil {
		t.Fatal(err)
	}
	if got := body.(*StreamEnd).Report; !reflect.DeepEqual(got, rep) {
		t.Errorf("report round trip = %+v, want %+v", got, rep)
	}

	// A negative duration in the report is hostile and rejected.
	neg := sampleReport()
	neg.WallNs = -1
	hostile, err := EncodeResponse(3, KindEnd, OpJoin, &StreamEnd{Count: 5, Report: neg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := DecodeResponse(hostile); err == nil {
		t.Error("negative report duration accepted")
	}
}

// TestPartialExtension pins the compatibility contract of the trailing
// PartialInfo block on scatter-gather replies: a complete reply is
// byte-identical to the version-1 encoding, a partial one appends the
// block after the body, and the round trip is lossless.
func TestPartialExtension(t *testing.T) {
	nb := []Neighbor{{ID: 7, Dist: 1.25, Point: []float64{3, 4}}}
	complete, err := EncodeResponse(1, KindResult, OpKNN, &KNNReply{Neighbors: nb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := EncodeResponse(1, KindResult, OpKNN,
		&KNNReply{Neighbors: nb, Partial: &PartialInfo{Missing: []string{"s1"}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(partial[:len(complete)], complete) {
		t.Error("partial KNNReply is not the complete frame plus a trailing block")
	}
	// count (1) + string len (1) + "s1" (2).
	if len(partial) != len(complete)+4 {
		t.Fatalf("partial block adds %d bytes, want 4", len(partial)-len(complete))
	}
	_, _, _, body, err := DecodeResponse(complete)
	if err != nil {
		t.Fatal(err)
	}
	if body.(*KNNReply).Partial != nil {
		t.Error("complete reply decoded with a Partial block")
	}
	_, _, _, body, err = DecodeResponse(partial)
	if err != nil {
		t.Fatal(err)
	}
	got := body.(*KNNReply).Partial
	if got == nil || len(got.Missing) != 1 || got.Missing[0] != "s1" {
		t.Errorf("partial reply decoded as %+v", got)
	}

	// Same contract on RangeReply (whose body has no element count of
	// its own beyond the id list).
	full, err := EncodeResponse(2, KindResult, OpRange, &RangeReply{IDs: []uint64{3, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := EncodeResponse(2, KindResult, OpRange,
		&RangeReply{IDs: []uint64{3, 1}, Partial: &PartialInfo{Missing: []string{"a", "b"}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part[:len(full)], full) {
		t.Error("partial RangeReply is not the complete frame plus a trailing block")
	}
	_, _, _, body, err = DecodeResponse(part)
	if err != nil {
		t.Fatal(err)
	}
	if got := body.(*RangeReply).Partial; got == nil || len(got.Missing) != 2 {
		t.Errorf("partial RangeReply decoded as %+v", got)
	}
}

// TestShardMapRoundTrip exercises the full topology encoding.
func TestShardMapRoundTrip(t *testing.T) {
	want := sampleShardMap()
	payload, err := EncodeResponse(9, KindResult, OpShardMap, &ShardMapReply{Map: want}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, body, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got := body.(*ShardMapReply).Map; !reflect.DeepEqual(got, want) {
		t.Errorf("shard map round trip = %+v, want %+v", got, want)
	}
	// A hostile shard count with no backing bytes fails cleanly.
	e := NewEncoder(nil)
	e.U64(9)
	e.U8(uint8(KindResult))
	e.U8(uint8(OpShardMap))
	e.String("pts")
	e.U8(1)
	e.F64s(nil)
	e.F64s(nil)
	e.Uvarint(1 << 40)
	if _, _, _, _, err := DecodeResponse(e.Bytes()); err == nil {
		t.Error("absurd shard count accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 100_000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d bytes, want %d", len(got), len(p))
		}
	}
	// An announced length beyond MaxFrame is rejected before allocation.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestHandshake(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadHandshake(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadHandshake(bytes.NewReader([]byte("HTTP1"))); err == nil {
		t.Error("bad magic accepted")
	}
	if err := ReadHandshake(bytes.NewReader([]byte{'A', 'N', 'N', 'S', 99})); err == nil {
		t.Error("future version accepted")
	}
	// The version gate: every version in [MinVersion, Version] is
	// accepted (version-1 clients predate the shard-routing frames but
	// speak a compatible frame set), anything outside is rejected.
	for v := MinVersion; v <= Version; v++ {
		if err := ReadHandshake(bytes.NewReader([]byte{'A', 'N', 'N', 'S', byte(v)})); err != nil {
			t.Errorf("version %d rejected: %v", v, err)
		}
	}
	if err := ReadHandshake(bytes.NewReader([]byte{'A', 'N', 'N', 'S', 0})); err == nil {
		t.Error("version 0 accepted")
	}
}

func TestErrorHelpers(t *testing.T) {
	err := error(&Error{Code: CodeServerBusy, Msg: "queue full"})
	if !IsCode(err, CodeServerBusy) || IsCode(err, CodeNotFound) {
		t.Error("IsCode misclassified")
	}
	wrapped := errors.Join(errors.New("outer"), err)
	if !IsCode(wrapped, CodeServerBusy) {
		t.Error("IsCode missed wrapped error")
	}
	if got := err.Error(); got != "SERVER_BUSY: queue full" {
		t.Errorf("Error() = %q", got)
	}
}
