package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine.distance_calcs")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("engine.distance_calcs") != c {
		t.Fatal("Counter is not get-or-create: second lookup returned a different instance")
	}

	g := r.Gauge("cache.bytes")
	g.Set(100)
	g.Add(-30)
	if got := g.Value(); got != 70 {
		t.Fatalf("gauge = %d, want 70", got)
	}
	if r.Gauge("cache.bytes") != g {
		t.Fatal("Gauge is not get-or-create")
	}

	s := r.Snapshot()
	if s.Counters["engine.distance_calcs"] != 42 || s.Gauges["cache.bytes"] != 70 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("engine.query_nanos", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if r.Histogram("engine.query_nanos", nil) != h {
		t.Fatal("Histogram is not get-or-create (bounds of the existing histogram must win)")
	}
	s := r.Snapshot().Histograms["engine.query_nanos"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 5+10+11+99+5000 {
		t.Fatalf("sum = %g, want %d", s.Sum, 5+10+11+99+5000)
	}
	wantBuckets := []uint64{2, 2, 0} // <=10: {5,10}; <=100: {11,99}; <=1000: {}
	for i, want := range wantBuckets {
		if s.Buckets[i].Count != want {
			t.Fatalf("bucket %d (le %g) = %d, want %d", i, s.Buckets[i].UpperBound, s.Buckets[i].Count, want)
		}
	}
	if s.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1 (the 5000 observation)", s.Overflow)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e3, 4, 3)
	want := []float64{1e3, 4e3, 16e3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if n := len(LatencyBuckets()); n != 13 {
		t.Fatalf("LatencyBuckets has %d bounds, want 13", n)
	}
}

func TestCallbackMetricsReplace(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("pool.misses", func() uint64 { return 1 })
	r.CounterFunc("pool.misses", func() uint64 { return 7 }) // re-register replaces
	r.GaugeFunc("pool.pinned_frames", func() int64 { return -3 })
	s := r.Snapshot()
	if s.Counters["pool.misses"] != 7 {
		t.Fatalf("callback counter = %d, want the replacement's 7", s.Counters["pool.misses"])
	}
	if s.Gauges["pool.pinned_frames"] != -3 {
		t.Fatalf("callback gauge = %d, want -3", s.Gauges["pool.pinned_frames"])
	}
}

// TestNilRegistryNoOps: a nil registry (observability disabled) must be
// fully usable — accessors return nil metrics whose methods do nothing.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Gauge("y").Set(1)
	r.Gauge("y").Add(-1)
	r.Histogram("z", LatencyBuckets()).Observe(3)
	r.CounterFunc("f", func() uint64 { return 1 })
	r.GaugeFunc("g", func() int64 { return 1 })
	if v := r.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter Value = %d", v)
	}
	if v := r.Gauge("y").Value(); v != 0 {
		t.Fatalf("nil gauge Value = %d", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryConcurrent hammers one registry from 8 goroutines — mixed
// get-or-create lookups, updates, callback re-registration and snapshots
// — and checks the final totals. Run under -race this is the registry's
// safety proof.
func TestRegistryConcurrent(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist", []float64{10, 1000}).Observe(float64(i % 20))
				r.CounterFunc("shared.func", func() uint64 { return 11 })
				if i%64 == 0 {
					_ = r.Snapshot() // reads race against the writers above
				}
			}
		}(g)
	}
	wg.Wait()

	s := r.Snapshot()
	const total = goroutines * iters
	if s.Counters["shared.counter"] != total {
		t.Fatalf("counter = %d, want %d", s.Counters["shared.counter"], total)
	}
	if s.Gauges["shared.gauge"] != total {
		t.Fatalf("gauge = %d, want %d", s.Gauges["shared.gauge"], total)
	}
	h := s.Histograms["shared.hist"]
	if h.Count != total {
		t.Fatalf("histogram count = %d, want %d", h.Count, total)
	}
	// Each goroutine observes i%20 ∈ [0,19]: values <=10 are 11 of every
	// 20, the rest land in the <=1000 bucket; none overflow.
	if want := uint64(total * 11 / 20); h.Buckets[0].Count != want {
		t.Fatalf("bucket 0 = %d, want %d", h.Buckets[0].Count, want)
	}
	if h.Overflow != 0 {
		t.Fatalf("overflow = %d, want 0", h.Overflow)
	}
	if s.Counters["shared.func"] != 11 {
		t.Fatalf("callback counter = %d, want 11", s.Counters["shared.func"])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.results").Add(9)
	r.Gauge("cache.entries").Set(4)
	r.Histogram("engine.query_nanos", LatencyBuckets()).Observe(2e3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if s.Counters["engine.results"] != 9 || s.Gauges["cache.entries"] != 4 {
		t.Fatalf("round-tripped snapshot mismatch: %+v", s)
	}
	h := s.Histograms["engine.query_nanos"]
	if h.Count != 1 || h.Sum != 2e3 {
		t.Fatalf("round-tripped histogram mismatch: %+v", h)
	}
}
