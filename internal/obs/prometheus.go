package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promName maps a registry name ("server.join.latency_ns") to a valid
// Prometheus metric name ("server_join_latency_ns"): dots become
// underscores and any remaining character outside [a-zA-Z0-9_:] is
// replaced with '_'. A leading digit gains a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus text exposition expects
// (shortest round-trip decimal; +Inf spelled out).
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the current snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges map directly;
// each histogram becomes a cumulative `_bucket{le="..."}` series plus
// `_sum`/`_count`, and its interpolated p50/p95/p99 estimates are
// exported as separate `<name>_p50` (etc.) gauges — a scrape-friendly
// stand-in for a native summary, which cannot share a histogram's name.
// Output is sorted by name so successive scrapes diff cleanly.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(b.UpperBound), cum); err != nil {
				return err
			}
		}
		cum += h.Overflow
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
		for _, q := range [...]struct {
			suffix string
			value  float64
		}{{"p50", h.P50}, {"p95", h.P95}, {"p99", h.P99}} {
			qn := n + "_" + q.suffix
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", qn, qn, promFloat(q.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusHandler serves the registry's Prometheus text exposition —
// mounted at /metrics/prom on the debug mux. A nil registry serves an
// empty (still valid) exposition.
func PrometheusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg.Snapshot())
	})
}
