package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%g) on empty snapshot = %g, want 0", q, got)
		}
	}
	r := NewRegistry()
	r.Histogram("empty.hist", LatencyBuckets())
	h := r.Snapshot().Histograms["empty.hist"]
	if h.P50 != 0 || h.P95 != 0 || h.P99 != 0 {
		t.Fatalf("empty histogram quantiles = %g/%g/%g, want 0/0/0", h.P50, h.P95, h.P99)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("single.hist", []float64{100, 200})
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	s := r.Snapshot().Histograms["single.hist"]
	// All mass sits in the first bucket [0, 100]: the estimator
	// interpolates linearly across it, so Quantile(q) ≈ q*100.
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if s.P50 != 50 {
		t.Fatalf("snapshot P50 = %g, want 50", s.P50)
	}
}

func TestQuantileOverflowHeavy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("over.hist", []float64{10, 100})
	h.Observe(5)
	for i := 0; i < 99; i++ {
		h.Observe(1e6) // overflow
	}
	s := r.Snapshot().Histograms["over.hist"]
	if s.Overflow != 99 {
		t.Fatalf("overflow = %d, want 99", s.Overflow)
	}
	// 99% of mass is past the last finite bound: the estimator must
	// clamp to that bound rather than invent a value it cannot see.
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 100 {
			t.Fatalf("Quantile(%g) = %g, want last finite bound 100", q, got)
		}
	}
	// The rank that still lands in a real bucket interpolates normally.
	if got := s.Quantile(0.005); got != 5 {
		t.Fatalf("Quantile(0.005) = %g, want 5 (midpoint of [0,10] at half the bucket)", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("interp.hist", []float64{10, 20, 40})
	for i := 0; i < 10; i++ {
		h.Observe(5) // bucket [0,10]
	}
	for i := 0; i < 10; i++ {
		h.Observe(15) // bucket (10,20]
	}
	s := r.Snapshot().Histograms["interp.hist"]
	// rank(0.5)=10 falls exactly at the end of the first bucket.
	if got := s.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Quantile(0.5) = %g, want 10", got)
	}
	// rank(0.75)=15: halfway through the second bucket (10,20] → 15.
	if got := s.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Fatalf("Quantile(0.75) = %g, want 15", got)
	}
	// Out-of-range q clamps instead of extrapolating.
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Fatalf("Quantile(-1) = %g, want clamp to Quantile(0) = %g", got, s.Quantile(0))
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Fatalf("Quantile(2) = %g, want clamp to Quantile(1) = %g", got, s.Quantile(1))
	}
}

// TestSnapshotQuantilesInJSON: the JSON exposition carries p50/p95/p99 so
// annbench output and /metrics scrapers see them without re-deriving.
func TestSnapshotQuantilesInJSON(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.hist", []float64{100})
	h.Observe(10)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Histograms map[string]map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"p50", "p95", "p99"} {
		if _, ok := raw.Histograms["q.hist"][key]; !ok {
			t.Fatalf("JSON snapshot missing %q: %s", key, buf.String())
		}
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"server.join.latency_ns", "server_join_latency_ns"},
		{"pool.misses", "pool_misses"},
		{"a-b c", "a_b_c"},
		{"9lives", "_9lives"},
		{"ok_name:sub", "ok_name:sub"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Fatalf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// parsePromText is a minimal validator for the text exposition format:
// every non-comment line must be `name[{label="value"}] number`, and
// every series must be preceded by a # TYPE comment for its family.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	values := map[string]float64{}
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			typed[parts[2]] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		family := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, series)
			}
			family = series[:i]
		}
		// Histogram child series inherit the family's TYPE line.
		base := family
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(family, suffix); ok && typed[cut] {
				base = cut
			}
		}
		if !typed[base] {
			t.Fatalf("line %d: series %q has no preceding # TYPE for %q", ln+1, series, base)
		}
		values[series] = v
	}
	return values
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Add(7)
	r.Gauge("server.inflight").Set(2)
	r.GaugeFunc("server.queue_depth", func() int64 { return 3 })
	h := r.Histogram("server.join.latency_ns", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(1e9) // overflow

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	values := parsePromText(t, buf.String())

	if values["server_requests"] != 7 {
		t.Fatalf("server_requests = %g, want 7", values["server_requests"])
	}
	if values["server_inflight"] != 2 || values["server_queue_depth"] != 3 {
		t.Fatalf("gauges = %g/%g, want 2/3", values["server_inflight"], values["server_queue_depth"])
	}
	// Buckets must be cumulative and capped by +Inf == _count.
	if values[`server_join_latency_ns_bucket{le="10"}`] != 1 {
		t.Fatalf("le=10 bucket = %g, want 1", values[`server_join_latency_ns_bucket{le="10"}`])
	}
	if values[`server_join_latency_ns_bucket{le="100"}`] != 2 {
		t.Fatalf("le=100 bucket = %g, want cumulative 2", values[`server_join_latency_ns_bucket{le="100"}`])
	}
	if values[`server_join_latency_ns_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("+Inf bucket = %g, want 3", values[`server_join_latency_ns_bucket{le="+Inf"}`])
	}
	if values["server_join_latency_ns_count"] != 3 {
		t.Fatalf("_count = %g, want 3", values["server_join_latency_ns_count"])
	}
	if values["server_join_latency_ns_sum"] != 5+50+1e9 {
		t.Fatalf("_sum = %g, want %g", values["server_join_latency_ns_sum"], 5+50+1e9)
	}
	for _, q := range []string{"_p50", "_p95", "_p99"} {
		if _, ok := values["server_join_latency_ns"+q]; !ok {
			t.Fatalf("missing quantile gauge server_join_latency_ns%s in:\n%s", q, buf.String())
		}
	}

	// Deterministic output: a second snapshot writes byte-identically.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("exposition is not deterministic:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestPrometheusEndpointAndRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests").Inc()
	extraHit := false
	srv := httptest.NewServer(Mux(reg, Route{
		Pattern: "/debug/slow",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			extraHit = true
			w.WriteHeader(http.StatusOK)
		}),
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prom endpoint status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("prom content-type = %q", ct)
	}
	values := parsePromText(t, string(body))
	if values["server_requests"] != 1 {
		t.Fatalf("scraped server_requests = %g, want 1", values["server_requests"])
	}

	resp2, err := http.Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !extraHit {
		t.Fatalf("extra route not served: status=%d hit=%v", resp2.StatusCode, extraHit)
	}
}

// TestWritePrometheusNil: a nil registry produces a valid empty
// exposition (the PrometheusHandler contract when metrics are disabled).
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry exposition not empty: %q", buf.String())
	}
}
