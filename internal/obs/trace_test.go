package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// traceDoc mirrors the Chrome trace-event JSON for decoding in tests.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int64          `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

func decodeTrace(t *testing.T, tr *Tracer) traceDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	return doc
}

func TestTracerSpansAndJSON(t *testing.T) {
	tr := NewTracer()
	if !tr.Enabled() {
		t.Fatal("non-nil tracer must report Enabled")
	}
	tr.SetThreadName(TidMain, "engine")

	outer := tr.Begin("query", TidMain)
	inner := tr.Begin("expand", TidMain)
	inner.Arg("children", 4)
	time.Sleep(time.Millisecond)
	inner.End()
	tr.Instant("cache.hit", TidCache, "node", 7)
	outer.End()

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (two spans + one instant)", tr.Len())
	}
	doc := decodeTrace(t, tr)

	byName := map[string]int{}
	for i, e := range doc.TraceEvents {
		byName[e.Name] = i
	}
	meta := doc.TraceEvents[byName["thread_name"]]
	if meta.Ph != "M" || meta.Args["name"] != "engine" {
		t.Fatalf("thread_name metadata wrong: %+v", meta)
	}

	expand := doc.TraceEvents[byName["expand"]]
	if expand.Ph != "X" || expand.Dur == nil || *expand.Dur <= 0 {
		t.Fatalf("expand span malformed: %+v", expand)
	}
	if v, ok := expand.Args["children"].(float64); !ok || v != 4 {
		t.Fatalf("expand arg = %v, want children=4", expand.Args)
	}

	query := doc.TraceEvents[byName["query"]]
	// Nesting: the inner span must be contained in the outer one (ts/dur
	// are fractional microseconds).
	if expand.Ts < query.Ts || expand.Ts+*expand.Dur > query.Ts+*query.Dur {
		t.Fatalf("expand [%g,+%g] not contained in query [%g,+%g]",
			expand.Ts, *expand.Dur, query.Ts, *query.Dur)
	}

	hit := doc.TraceEvents[byName["cache.hit"]]
	if hit.Ph != "i" || hit.S != "t" || hit.Dur != nil || hit.Tid != TidCache {
		t.Fatalf("instant malformed: %+v", hit)
	}
}

func TestTracerComplete(t *testing.T) {
	tr := NewTracer()
	start := time.Now()
	end := start.Add(5 * time.Millisecond)
	tr.Complete("filter", TidWorkerBase, start, end, "kept", 12)
	tr.Complete("bare", TidMain, start, end, "", 0) // argName "" omits the arg

	doc := decodeTrace(t, tr)
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	filter := doc.TraceEvents[0]
	if filter.Name != "filter" || *filter.Dur != 5000 { // 5ms = 5000µs
		t.Fatalf("filter span: %+v", filter)
	}
	if doc.TraceEvents[1].Args != nil {
		t.Fatalf("empty argName must omit args, got %v", doc.TraceEvents[1].Args)
	}
}

func TestTracerDropCap(t *testing.T) {
	tr := NewTracerLimit(2)
	now := time.Now()
	for i := 0; i < 5; i++ {
		tr.Complete("e", TidMain, now, now, "", 0)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want the cap 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	doc := decodeTrace(t, tr)
	if doc.OtherData["droppedEvents"] != "3" {
		t.Fatalf("otherData = %v, want droppedEvents=3", doc.OtherData)
	}
}

// TestNilTracerNoOps: a nil tracer is the disabled state — every method,
// including spans begun on it, must be a safe no-op.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must not report Enabled")
	}
	tr.SetThreadName(TidMain, "x")
	sp := tr.Begin("query", TidMain)
	sp.Arg("a", 1)
	sp.End()
	tr.Complete("c", TidMain, time.Now(), time.Now(), "", 0)
	tr.Instant("i", TidMain, "", 0)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report zero events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer emitted events: %+v", doc.TraceEvents)
	}
}

// TestTracerConcurrent drives the tracer from 8 goroutines (as the
// parallel executor, buffer pool and node cache do) — meaningful under
// -race, and checks nothing is lost below the cap.
func TestTracerConcurrent(t *testing.T) {
	const goroutines, iters = 8, 500
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tid := TidWorkerBase + int64(g)
			tr.SetThreadName(tid, "worker")
			for i := 0; i < iters; i++ {
				sp := tr.Begin("subtree", tid)
				tr.Instant("cache.hit", TidCache, "", 0)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if want := goroutines * iters * 2; tr.Len() != want {
		t.Fatalf("Len = %d, want %d", tr.Len(), want)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
}
