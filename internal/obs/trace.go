package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Reserved trace lanes ("tid" values). The serial engine and the parallel
// frontier builder record on TidMain; parallel workers use TidWorkerBase+i;
// the buffer pool and the decoded-node cache get lanes of their own, since
// their events can be emitted concurrently from any worker.
const (
	TidMain       int64 = 0
	TidWorkerBase int64 = 1
	TidPool       int64 = 1000
	TidCache      int64 = 1001
)

// DefaultTraceEvents caps a Tracer's buffered events (~64 B each). Events
// past the cap are dropped and counted, so tracing a paper-scale run
// degrades to a truncated trace instead of unbounded memory growth.
const DefaultTraceEvents = 1 << 20

// event is one buffered trace record. Timestamps are nanoseconds since
// the tracer's epoch; dur < 0 marks an instant event, ph 'M' a metadata
// (thread name) record.
type event struct {
	name    string
	ph      byte
	tid     int64
	ts      int64
	dur     int64
	argName string
	argVal  int64
}

// Tracer buffers spans and instant events and renders them as Chrome
// trace-event JSON (chrome://tracing, https://ui.perfetto.dev). It is safe
// for concurrent use; a nil *Tracer is a valid no-op, which is how
// tracing stays free when disabled.
type Tracer struct {
	epoch   time.Time
	max     int
	dropped atomic.Uint64

	mu     sync.Mutex
	events []event
	names  map[int64]string // tid -> thread name
}

// NewTracer creates a tracer capped at DefaultTraceEvents events.
func NewTracer() *Tracer { return NewTracerLimit(DefaultTraceEvents) }

// NewTracerLimit creates a tracer buffering at most maxEvents events;
// further events are dropped and counted in the output metadata.
func NewTracerLimit(maxEvents int) *Tracer {
	if maxEvents < 1 {
		maxEvents = 1
	}
	return &Tracer{epoch: time.Now(), max: maxEvents, names: map[int64]string{}}
}

// Enabled reports whether t records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// SetThreadName labels a tid lane in the trace viewer.
func (t *Tracer) SetThreadName(tid int64, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.names[tid] = name
	t.mu.Unlock()
}

func (t *Tracer) push(e event) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Span is an in-flight interval started by Begin. The zero Span (from a
// nil tracer) is a no-op; End must be called exactly once.
type Span struct {
	t       *Tracer
	start   time.Time
	name    string
	tid     int64
	argName string
	argVal  int64
}

// Begin starts a span on the given lane. The returned Span is a value —
// no allocation — and records nothing until End.
func (t *Tracer) Begin(name string, tid int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now(), name: name, tid: tid}
}

// Arg attaches one integer argument, shown in the trace viewer's span
// details. At most one argument per span keeps the record allocation-free.
func (s *Span) Arg(name string, v int64) {
	s.argName, s.argVal = name, v
}

// End completes the span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Complete(s.name, s.tid, s.start, time.Now(), s.argName, s.argVal)
}

// Complete records a finished interval with explicit endpoints (the form
// the engine uses when it already holds the timestamps for stage
// timings). argName "" omits the argument.
func (t *Tracer) Complete(name string, tid int64, start, end time.Time, argName string, argVal int64) {
	if t == nil {
		return
	}
	t.push(event{
		name: name, ph: 'X', tid: tid,
		ts: start.Sub(t.epoch).Nanoseconds(), dur: end.Sub(start).Nanoseconds(),
		argName: argName, argVal: argVal,
	})
}

// Instant records a zero-duration marker (buffer-pool and node-cache
// fetches use these: they are too frequent and too concurrent for clean
// span nesting in a single lane).
func (t *Tracer) Instant(name string, tid int64, argName string, argVal int64) {
	if t == nil {
		return
	}
	t.push(event{
		name: name, ph: 'i', tid: tid,
		ts: time.Since(t.epoch).Nanoseconds(), dur: -1,
		argName: argName, argVal: argVal,
	})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events lost to the buffer cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// jsonEvent is the Chrome trace-event wire form. ts/dur are fractional
// microseconds, which Perfetto resolves back to nanoseconds.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON renders the buffered events as a Chrome trace-event JSON
// object ({"traceEvents": [...]}), loadable in Perfetto or
// chrome://tracing. The tracer remains usable afterwards.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		TraceEvents     []jsonEvent       `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData,omitempty"`
	}{DisplayTimeUnit: "ns"}
	if t != nil {
		t.mu.Lock()
		events := append([]event(nil), t.events...)
		names := make(map[int64]string, len(t.names))
		for tid, n := range t.names {
			names[tid] = n
		}
		t.mu.Unlock()

		doc.TraceEvents = make([]jsonEvent, 0, len(events)+len(names))
		for tid, name := range names {
			doc.TraceEvents = append(doc.TraceEvents, jsonEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": name},
			})
		}
		for _, e := range events {
			je := jsonEvent{
				Name: e.name, Ph: string(e.ph), Pid: 1, Tid: e.tid,
				Ts: float64(e.ts) / 1e3,
			}
			if e.ph == 'X' {
				d := float64(e.dur) / 1e3
				je.Dur = &d
			}
			if e.ph == 'i' {
				je.S = "t" // thread-scoped instant
			}
			if e.argName != "" {
				je.Args = map[string]any{e.argName: e.argVal}
			}
			doc.TraceEvents = append(doc.TraceEvents, je)
		}
		if d := t.dropped.Load(); d > 0 {
			doc.OtherData = map[string]string{"droppedEvents": strconv.FormatUint(d, 10)}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
