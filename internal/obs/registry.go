// Package obs is the unified observability layer of the ANN stack: a
// concurrency-safe metrics Registry (atomic counters, gauges and
// fixed-bucket histograms, exported as a JSON snapshot and over HTTP), a
// lightweight query Tracer emitting Chrome trace-event JSON loadable in
// Perfetto, and profiling hooks shared by the cmd tools.
//
// Everything is stdlib-only and nil-safe: a nil *Registry, *Tracer,
// *Counter, *Gauge or *Histogram is a valid no-op, so instrumented code
// pays one nil check when observability is disabled — the engine's
// 0 allocs/op hot paths hold with and without it.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (a point-in-time level, such
// as cache residency). The zero value is ready to use; a nil *Gauge is a
// no-op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over float64 observations
// (latencies in nanoseconds, sizes in bytes, ...). Buckets are cumulative
// upper bounds; observations above the last bound land in an implicit
// overflow bucket. All methods are safe for concurrent use; a nil
// *Histogram is a no-op.
type Histogram struct {
	bounds []float64 // ascending upper bounds (finite)
	counts []atomic.Uint64
	over   atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.over.Add(1)
}

// HistogramBucket is one (upper bound, count) pair of a snapshot. Counts
// are per bucket, not cumulative.
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is the JSON-able state of a Histogram. Overflow holds
// observations above the last bucket bound (kept out of Buckets so the
// snapshot never contains +Inf, which JSON cannot encode). P50/P95/P99
// are bucket-interpolated quantile estimates (see Quantile).
type HistogramSnapshot struct {
	Count    uint64            `json:"count"`
	Sum      float64           `json:"sum"`
	Buckets  []HistogramBucket `json:"buckets"`
	Overflow uint64            `json:"overflow"`
	P50      float64           `json:"p50"`
	P95      float64           `json:"p95"`
	P99      float64           `json:"p99"`
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the bucket holding the target rank, taking the
// previous bucket's bound (0 for the first) as the bucket's lower edge.
// An empty snapshot reports 0. A rank landing in the overflow bucket
// reports the last finite bound — the estimator cannot see beyond its
// buckets, and a conservative finite answer beats fabricating one.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum, lower := 0.0, 0.0
	for _, b := range s.Buckets {
		c := float64(b.Count)
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			return lower + frac*(b.UpperBound-lower)
		}
		cum += c
		lower = b.UpperBound
	}
	return lower
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		Sum:      math.Float64frombits(h.sum.Load()),
		Overflow: h.over.Load(),
		Buckets:  make([]HistogramBucket, len(h.bounds)),
	}
	for i, b := range h.bounds {
		s.Buckets[i] = HistogramBucket{UpperBound: b, Count: h.counts[i].Load()}
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given factor — the helper behind the default latency and
// size bucket layouts.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default layout for durations in nanoseconds:
// 1µs .. ~16s in powers of 4.
func LatencyBuckets() []float64 { return ExpBuckets(1e3, 4, 13) }

// SizeBuckets is the default layout for sizes in bytes: 64 B .. 1 GiB in
// powers of 4.
func SizeBuckets() []float64 { return ExpBuckets(64, 4, 13) }

// Registry is a named family of metrics. Metric accessors are
// get-or-create and safe for concurrent use; reads during concurrent
// updates see a consistent point-in-time snapshot per metric (not across
// metrics). A nil *Registry is valid: accessors return nil metrics whose
// methods are no-ops, so call sites need no guards.
//
// Naming convention: "family.metric" in snake_case — e.g.
// "engine.distance_calcs", "pool.misses", "cache.bytes". The catalogue of
// families used by this repo is documented in DESIGN.md §10.
type Registry struct {
	mu           sync.RWMutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	hists        map[string]*Histogram
	counterFuncs map[string]func() uint64
	gaugeFuncs   map[string]func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     map[string]*Counter{},
		gauges:       map[string]*Gauge{},
		hists:        map[string]*Histogram{},
		counterFuncs: map[string]func() uint64{},
		gaugeFuncs:   map[string]func() int64{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if needed (the bounds of an existing histogram are kept).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds))
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers (or replaces) a callback-backed counter: the
// snapshot calls fn for the current value. Used to wire long-lived
// components (buffer pools, node caches) whose own counters stay
// authoritative — re-registering is idempotent, so attach-on-every-run
// wiring is safe.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counterFuncs[name] = fn
	r.mu.Unlock()
}

// GaugeFunc registers (or replaces) a callback-backed gauge.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Snapshot is a point-in-time JSON-able view of every metric.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. Callback-backed metrics are evaluated
// outside the registry lock (their components take their own locks).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]int64{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	cfs := make(map[string]func() uint64, len(r.counterFuncs))
	for name, fn := range r.counterFuncs {
		cfs[name] = fn
	}
	gfs := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		gfs[name] = fn
	}
	r.mu.RUnlock()
	for name, fn := range cfs {
		s.Counters[name] = fn()
	}
	for name, fn := range gfs {
		s.Gauges[name] = fn()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeHTTP implements http.Handler, serving the JSON snapshot (the
// expvar-style endpoint behind the cmd tools' -metrics-addr flag).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = r.WriteJSON(w)
}
