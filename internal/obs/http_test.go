package obs

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func TestMuxMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.results").Add(3)
	srv := httptest.NewServer(Mux(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["engine.results"] != 3 {
		t.Fatalf("served snapshot = %+v", s)
	}

	// The pprof index must be mounted on the same mux.
	resp2, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp2.StatusCode)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("cache.bytes").Set(64)
	addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Gauges["cache.bytes"] != 64 {
		t.Fatalf("served snapshot = %+v", s)
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	var f ProfileFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}

	stop, err := f.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

// TestProfileFlagsZero: with no flags set, Start is a no-op and the stop
// function still works — the wiring every cmd tool relies on.
func TestProfileFlagsZero(t *testing.T) {
	var f ProfileFlags
	stop, err := f.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
