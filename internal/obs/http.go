package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
)

// Route is an extra endpoint mounted on the debug mux — how components
// (the annserve daemon's /debug/slow and /debug/requests tables) attach
// their inspectors to the shared metrics server.
type Route struct {
	Pattern string
	Handler http.Handler
}

// Mux returns the debug mux served at -metrics-addr / -pprof-addr:
// /metrics holds the registry snapshot (when reg is non-nil),
// /metrics/prom its Prometheus text exposition, and /debug/pprof/ the
// standard profiling endpoints. Extra routes are mounted as given.
func Mux(reg *Registry, extra ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg)
		mux.Handle("/metrics/prom", PrometheusHandler(reg))
		mux.Handle("/", http.RedirectHandler("/metrics", http.StatusFound))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// Serve starts the debug server on addr in a background goroutine and
// returns the bound address (useful with ":0"). The server lives until
// the process exits; tools treat it as fire-and-forget.
func Serve(addr string, reg *Registry, extra ...Route) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Mux(reg, extra...)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// ProfileFlags bundles the profiling hooks shared by the cmd tools:
// -cpuprofile, -memprofile and -pprof-addr.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
	PprofAddr  string
	// BoundAddr is the address the debug server actually bound, set by
	// Start when PprofAddr is non-empty (useful with ":0").
	BoundAddr string
}

// Register declares the three flags on fs.
func (f *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.PprofAddr, "pprof-addr", "", "serve net/http/pprof (and /metrics) on this address")
}

// Start begins CPU profiling and the pprof server as requested. The
// returned stop function (never nil) ends the CPU profile and writes the
// heap profile; call it once on the way out. reg may be nil (the pprof
// server then has no /metrics endpoint). Extra routes are mounted on
// the debug mux alongside /metrics and /debug/pprof/.
func (f *ProfileFlags) Start(reg *Registry, extra ...Route) (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := runtimepprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	if f.PprofAddr != "" {
		addr, err := Serve(f.PprofAddr, reg, extra...)
		if err != nil {
			if cpuFile != nil {
				runtimepprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, err
		}
		f.BoundAddr = addr
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
	}
	return func() error {
		if cpuFile != nil {
			runtimepprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return err
			}
			defer mf.Close()
			runtime.GC() // materialise up-to-date allocation stats
			if err := runtimepprof.WriteHeapProfile(mf); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
