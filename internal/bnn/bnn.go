// Package bnn implements the two index-based competitors of Zhang et al.
// (SSDBM 2004) that the paper compares against:
//
//   - MNN (multiple nearest-neighbor search): an index-nested-loops join —
//     one best-first kNN search against the target index per query point,
//     with the query points visited in space-filling-curve order to
//     maximise buffer locality.
//   - BNN (batched nearest-neighbor search): query points are grouped
//     into spatially coherent batches (curve order again) and the target
//     index is traversed once per batch, amortising node accesses and
//     distance computations over the whole group.
//
// Both take the pruning metric as a parameter, which is how the paper
// produces its "BNN MAXMAXDIST" vs "BNN NXNDIST" bars: the original BNN
// uses MAXMAXDIST; switching the metric is the paper's drop-in
// improvement.
package bnn

import (
	"fmt"
	"math"

	"allnn/internal/core"
	"allnn/internal/curve"
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/obs"
	"allnn/internal/pq"
)

// Options configures an MNN/BNN execution.
type Options struct {
	// K is the number of neighbors per query point (0 means 1).
	K int
	// Metric is the pruning upper bound (default NXNDist; the original
	// BNN corresponds to MaxMaxDist).
	Metric core.Metric
	// GroupSize is the number of query points per BNN batch (0 means 256).
	GroupSize int
	// ExcludeSelf skips neighbors with the query point's own ObjectID.
	ExcludeSelf bool
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 1
	}
	if o.GroupSize <= 0 {
		o.GroupSize = 256
	}
	return o
}

// Stats counts the work performed.
type Stats struct {
	DistanceCalcs uint64 // point/MBR distance evaluations
	NodesVisited  uint64 // target index nodes expanded
	Groups        uint64 // batches processed (BNN) or points (MNN)
}

// AddTo accumulates the counters into a metrics registry under the "bnn"
// family (see DESIGN.md §10). MNN runs share the family: an MNN point is
// a batch of one.
func (s Stats) AddTo(r *obs.Registry) {
	r.Counter("bnn.distance_calcs").Add(s.DistanceCalcs)
	r.Counter("bnn.nodes_visited").Add(s.NodesVisited)
	r.Counter("bnn.groups").Add(s.Groups)
}

// Dataset is the in-memory query-side input.
type Dataset struct {
	IDs    []index.ObjectID
	Points []geom.Point
}

// FromPoints wraps pts with ids 0..n-1.
func FromPoints(pts []geom.Point) Dataset {
	ids := make([]index.ObjectID, len(pts))
	for i := range ids {
		ids[i] = index.ObjectID(i)
	}
	return Dataset{IDs: ids, Points: pts}
}

// curveOrder returns the query point indices in space-filling-curve order
// (Hilbert in 2-D, Z-order otherwise).
func curveOrder(pts []geom.Point) []int {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	if len(pts) == 0 {
		return idx
	}
	if len(pts[0]) == 2 {
		curve.SortHilbert(pts, idx)
	} else {
		curve.SortZOrder(pts, idx)
	}
	return idx
}

// MNN runs the index-nested-loops baseline: one kNN search per query
// point, in curve order. emit is called once per query point.
func MNN(r Dataset, is index.Tree, opts Options, emit func(core.Result) error) (Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if err := validate(r, is); err != nil {
		return stats, err
	}
	effK := opts.K
	if opts.ExcludeSelf {
		effK++
	}
	for _, i := range curveOrder(r.Points) {
		stats.Groups++
		res, err := index.NearestNeighbors(is, r.Points[i], effK)
		if err != nil {
			return stats, err
		}
		if err := emit(assembleResult(r.IDs[i], r.Points[i], res, opts)); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// assembleResult converts raw kNN output into a core.Result, applying the
// exclude-self rule.
func assembleResult(id index.ObjectID, pt geom.Point, res []index.QueryResult, opts Options) core.Result {
	neighbors := make([]core.Neighbor, 0, opts.K)
	selfSeen := false
	for _, n := range res {
		if opts.ExcludeSelf && !selfSeen && n.Object == id {
			selfSeen = true
			continue
		}
		if len(neighbors) == opts.K {
			break
		}
		neighbors = append(neighbors, core.Neighbor{
			Object: n.Object,
			Point:  n.Point,
			Dist:   math.Sqrt(n.DistSq),
		})
	}
	return core.Result{Object: id, Point: pt, Neighbors: neighbors}
}

// BNN runs the batched baseline: query points are grouped in curve order
// and the target index is traversed once per group.
func BNN(r Dataset, is index.Tree, opts Options, emit func(core.Result) error) (Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if err := validate(r, is); err != nil {
		return stats, err
	}
	order := curveOrder(r.Points)
	for start := 0; start < len(order); start += opts.GroupSize {
		end := start + opts.GroupSize
		if end > len(order) {
			end = len(order)
		}
		if err := bnnGroup(r, order[start:end], is, opts, &stats, emit); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// bnnGroup answers the kNN queries of one batch with a single best-first
// traversal of the target index.
func bnnGroup(r Dataset, group []int, is index.Tree, opts Options, stats *Stats, emit func(core.Result) error) error {
	stats.Groups++
	effK := opts.K
	if opts.ExcludeSelf {
		effK++
	}
	mbr := geom.EmptyRect(len(r.Points[group[0]]))
	for _, i := range group {
		mbr.ExpandPoint(r.Points[i])
	}

	best := make([]*pq.KBest[index.QueryResult], len(group))
	for g := range best {
		best[g] = pq.NewKBest[index.QueryResult](effK)
	}
	// groupBound: every group member has its k-th NN within this squared
	// distance. It is folded from timeless single-entry guarantees, so it
	// only tightens over the traversal:
	//   - for k == 1, the pruning metric of any entry bounds the NN
	//     distance of every member;
	//   - for any k, an entry whose subtree holds at least k points bounds
	//     the k-th NN distance of every member by its MAXMAXDIST (all its
	//     points are within that distance of every member).
	groupBound := math.Inf(1)

	frontier := pq.NewHeap[index.Entry](64)
	root, err := is.Root()
	if err != nil {
		return err
	}
	push := func(e index.Entry) {
		stats.DistanceCalcs++
		mind := geom.MinDistSq(mbr, e.MBR)
		if mind > groupBound {
			return
		}
		if effK == 1 {
			var bound float64
			if e.IsObject() {
				bound = geom.MaxDistPointRectSq(e.Point, mbr)
			} else {
				bound = opts.Metric.BoundSq(mbr, e.MBR)
			}
			if bound < groupBound {
				groupBound = bound
			}
		} else if int(e.Count) >= effK {
			if bound := geom.MaxDistSq(mbr, e.MBR); bound < groupBound {
				groupBound = bound
			}
		}
		frontier.Push(mind, e)
	}
	push(root)

	for frontier.Len() > 0 {
		item, _ := frontier.Pop()
		// currentBound: the group can stop refining once every member has
		// k candidates closer than any remaining frontier entry.
		worst := 0.0
		for _, b := range best {
			if w := b.Worst(); w > worst {
				worst = w
			}
		}
		if w := math.Min(worst, groupBound); item.Key > w {
			break
		}
		entries, err := is.Expand(&item.Value)
		if err != nil {
			return err
		}
		stats.NodesVisited++
		for _, e := range entries {
			if e.IsObject() {
				// Join the object against every group member.
				for g, i := range group {
					stats.DistanceCalcs++
					d := geom.DistSq(r.Points[i], e.Point)
					if d < best[g].Worst() {
						best[g].Add(d, index.QueryResult{Object: e.Object, Point: e.Point, DistSq: d})
					}
				}
			} else {
				push(e)
			}
		}
	}

	for g, i := range group {
		items := best[g].Items()
		res := make([]index.QueryResult, len(items))
		for n, it := range items {
			res[n] = it.Value
		}
		if err := emit(assembleResult(r.IDs[i], r.Points[i], res, opts)); err != nil {
			return err
		}
	}
	return nil
}

func validate(r Dataset, is index.Tree) error {
	if len(r.IDs) != len(r.Points) {
		return fmt.Errorf("bnn: %d ids for %d points", len(r.IDs), len(r.Points))
	}
	if len(r.Points) > 0 && len(r.Points[0]) != is.Dim() {
		return fmt.Errorf("bnn: query dimensionality %d, index %d", len(r.Points[0]), is.Dim())
	}
	return nil
}
