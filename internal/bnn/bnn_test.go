package bnn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/bruteforce"
	"allnn/internal/core"
	"allnn/internal/geom"
	"allnn/internal/rstar"
	"allnn/internal/storage"
)

const tol = 1e-9

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMemStore(), frames)
}

func uniformPoints(rng *rand.Rand, n, dim int, lim float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * lim
		}
		pts[i] = p
	}
	return pts
}

type runner func(r Dataset, is *rstar.Tree, opts Options) ([]core.Result, error)

func runMNN(r Dataset, is *rstar.Tree, opts Options) ([]core.Result, error) {
	var out []core.Result
	_, err := MNN(r, is, opts, func(res core.Result) error {
		out = append(out, res)
		return nil
	})
	return out, err
}

func runBNN(r Dataset, is *rstar.Tree, opts Options) ([]core.Result, error) {
	var out []core.Result
	_, err := BNN(r, is, opts, func(res core.Result) error {
		out = append(out, res)
		return nil
	})
	return out, err
}

func checkAgainstBrute(t *testing.T, run runner, rPts, sPts []geom.Point, opts Options) {
	t.Helper()
	is, err := rstar.BulkLoad(newPool(2048), sPts, nil, rstar.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, err := run(FromPoints(rPts), is, opts)
	if err != nil {
		t.Fatal(err)
	}
	k := opts.K
	if k <= 0 {
		k = 1
	}
	want := bruteforce.AkNN(bruteforce.FromPoints(rPts), bruteforce.FromPoints(sPts), k, opts.ExcludeSelf)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	sort.Slice(got, func(a, b int) bool { return got[a].Object < got[b].Object })
	for i := range want {
		g, w := got[i], want[i]
		if g.Object != w.Object {
			t.Fatalf("result %d for object %d, want %d", i, g.Object, w.Object)
		}
		if len(g.Neighbors) != len(w.Neighbors) {
			t.Fatalf("object %d: %d neighbors, want %d", g.Object, len(g.Neighbors), len(w.Neighbors))
		}
		for n := range w.Neighbors {
			if math.Abs(g.Neighbors[n].Dist-w.Neighbors[n].Dist) > tol {
				t.Fatalf("object %d neighbor %d: dist %g, want %g",
					g.Object, n, g.Neighbors[n].Dist, w.Neighbors[n].Dist)
			}
		}
	}
}

func TestMNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rPts := uniformPoints(rng, 200, 2, 100)
	sPts := uniformPoints(rng, 300, 2, 100)
	for _, k := range []int{1, 4} {
		checkAgainstBrute(t, runMNN, rPts, sPts, Options{K: k})
	}
}

func TestBNNMatchesBruteBothMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rPts := uniformPoints(rng, 300, 2, 100)
	sPts := uniformPoints(rng, 300, 2, 100)
	for _, metric := range []core.Metric{core.NXNDist, core.MaxMaxDist} {
		for _, k := range []int{1, 3, 10} {
			checkAgainstBrute(t, runBNN, rPts, sPts, Options{K: k, Metric: metric})
		}
	}
}

func TestBNNGroupSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rPts := uniformPoints(rng, 250, 3, 50)
	sPts := uniformPoints(rng, 250, 3, 50)
	for _, gs := range []int{1, 7, 64, 1000} {
		checkAgainstBrute(t, runBNN, rPts, sPts, Options{GroupSize: gs})
	}
}

func TestBNNSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := uniformPoints(rng, 300, 2, 100)
	checkAgainstBrute(t, runBNN, pts, pts, Options{K: 2, ExcludeSelf: true})
	checkAgainstBrute(t, runMNN, pts, pts, Options{K: 2, ExcludeSelf: true})
}

func TestBNNHighDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rPts := uniformPoints(rng, 120, 10, 1)
	sPts := uniformPoints(rng, 150, 10, 1)
	checkAgainstBrute(t, runBNN, rPts, sPts, Options{K: 3})
}

func TestBNNTinyInputs(t *testing.T) {
	checkAgainstBrute(t, runBNN, []geom.Point{{1, 2}}, []geom.Point{{3, 4}}, Options{})
	checkAgainstBrute(t, runBNN, []geom.Point{{1, 2}, {5, 5}}, []geom.Point{{3, 4}}, Options{K: 5})
}

func TestValidateRejectsMismatch(t *testing.T) {
	is, err := rstar.BulkLoad(newPool(64), []geom.Point{{1, 1, 1}}, nil, rstar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runBNN(FromPoints([]geom.Point{{1, 2}}), is, Options{}); err == nil {
		t.Fatal("expected dimensionality error")
	}
	bad := Dataset{IDs: nil, Points: []geom.Point{{1, 1, 1}}}
	if _, err := BNN(bad, is, Options{}, func(core.Result) error { return nil }); err == nil {
		t.Fatal("expected id/point mismatch error")
	}
}

func TestBNNDoesLessWorkThanMNN(t *testing.T) {
	// Batching is the whole point: BNN must visit far fewer index nodes
	// than per-point MNN on a clustered workload.
	rng := rand.New(rand.NewSource(6))
	rPts := uniformPoints(rng, 1000, 2, 100)
	sPts := uniformPoints(rng, 1000, 2, 100)
	is, err := rstar.BulkLoad(newPool(2048), sPts, nil, rstar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mnnStats, err := MNN(FromPoints(rPts), is, Options{}, func(core.Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	bnnStats, err := BNN(FromPoints(rPts), is, Options{}, func(core.Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MNN nodes=%d, BNN nodes=%d", mnnStats.NodesVisited, bnnStats.NodesVisited)
	if bnnStats.Groups >= mnnStats.Groups {
		t.Errorf("BNN groups %d not below MNN per-point count %d", bnnStats.Groups, mnnStats.Groups)
	}
}

func TestBNNNXNDistTighterThanMaxMax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rPts := uniformPoints(rng, 1500, 2, 1000)
	sPts := uniformPoints(rng, 1500, 2, 1000)
	is, err := rstar.BulkLoad(newPool(2048), sPts, nil, rstar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nxn, err := BNN(FromPoints(rPts), is, Options{Metric: core.NXNDist}, func(core.Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	mm, err := BNN(FromPoints(rPts), is, Options{Metric: core.MaxMaxDist}, func(core.Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("NXNDIST dist calcs=%d, MAXMAX dist calcs=%d", nxn.DistanceCalcs, mm.DistanceCalcs)
	if nxn.DistanceCalcs > mm.DistanceCalcs {
		t.Errorf("NXNDIST did more distance calcs (%d) than MAXMAXDIST (%d)",
			nxn.DistanceCalcs, mm.DistanceCalcs)
	}
}
