// Package extsort provides an external merge sort over paged storage:
// fixed-size (key, value) records are sorted into bounded in-memory runs,
// each run is spilled to pages allocated from a buffer pool's store, and
// the runs are k-way merged reading back through the pool.
//
// GORDER's grid-order phase is defined as an external sort (the datasets
// the paper targets do not fit memory); routing the sort through the
// same buffer pool as the join keeps the harness's I/O accounting
// faithful for that phase.
package extsort

import (
	"encoding/binary"
	"fmt"
	"sort"

	"allnn/internal/storage"
)

// Item is one sortable record: ordered by Key (ascending), with ties
// broken by Value so the sort is deterministic.
type Item struct {
	Key   uint64
	Value uint32
}

const itemSize = 12

// itemsPerPage is the run-page capacity: a small header holds the count.
const runHeader = 4

func itemsPerPage() int { return (storage.PageSize - runHeader) / itemSize }

// Sort sorts items by (Key, Value) using runs of at most runItems
// in-memory items (0 means items fit memory in one run, i.e. plain
// sorting with no spills). The sorted items are returned; all spills and
// merge reads go through pool.
func Sort(pool *storage.BufferPool, items []Item, runItems int) ([]Item, error) {
	if runItems <= 0 || runItems >= len(items) {
		sorted := append([]Item(nil), items...)
		sortItems(sorted)
		return sorted, nil
	}

	// Phase 1: sorted runs, spilled to pages.
	var runs []*run
	for start := 0; start < len(items); start += runItems {
		end := start + runItems
		if end > len(items) {
			end = len(items)
		}
		chunk := append([]Item(nil), items[start:end]...)
		sortItems(chunk)
		r, err := spillRun(pool, chunk)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}

	// Phase 2: k-way merge through the pool. The cursor heap compares
	// full (Key, Value) pairs: 64-bit keys cannot ride a float64-keyed
	// heap without losing precision above 2^53.
	out := make([]Item, 0, len(items))
	var heap cursorHeap
	for _, r := range runs {
		c := &cursor{run: r, pool: pool}
		ok, err := c.next()
		if err != nil {
			return nil, err
		}
		if ok {
			heap.push(c)
		}
	}
	for heap.len() > 0 {
		c := heap.pop()
		out = append(out, c.cur)
		ok, err := c.next()
		if err != nil {
			return nil, err
		}
		if ok {
			heap.push(c)
		}
	}
	if len(out) != len(items) {
		return nil, fmt.Errorf("extsort: merged %d of %d items", len(out), len(items))
	}
	return out, nil
}

func sortItems(items []Item) {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Key != items[b].Key {
			return items[a].Key < items[b].Key
		}
		return items[a].Value < items[b].Value
	})
}

// run is one sorted spill: a sequence of pages.
type run struct {
	pages []storage.PageID
}

func spillRun(pool *storage.BufferPool, items []Item) (*run, error) {
	r := &run{}
	per := itemsPerPage()
	for start := 0; start < len(items); start += per {
		end := start + per
		if end > len(items) {
			end = len(items)
		}
		f, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		data := f.Data()
		binary.LittleEndian.PutUint32(data, uint32(end-start))
		off := runHeader
		for _, it := range items[start:end] {
			binary.LittleEndian.PutUint64(data[off:], it.Key)
			binary.LittleEndian.PutUint32(data[off+8:], it.Value)
			off += itemSize
		}
		f.MarkDirty()
		pid := f.ID()
		f.Release()
		r.pages = append(r.pages, pid)
	}
	return r, nil
}

// cursor streams a run's items back page by page.
type cursor struct {
	run  *run
	pool *storage.BufferPool

	pageIdx int
	buf     []Item
	bufPos  int
	cur     Item
}

// less orders cursors by their current item.
func (c *cursor) less(o *cursor) bool {
	if c.cur.Key != o.cur.Key {
		return c.cur.Key < o.cur.Key
	}
	return c.cur.Value < o.cur.Value
}

// cursorHeap is a binary min-heap of run cursors with exact comparisons.
type cursorHeap struct {
	cs []*cursor
}

func (h *cursorHeap) len() int { return len(h.cs) }

func (h *cursorHeap) push(c *cursor) {
	h.cs = append(h.cs, c)
	i := len(h.cs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.cs[i].less(h.cs[parent]) {
			break
		}
		h.cs[i], h.cs[parent] = h.cs[parent], h.cs[i]
		i = parent
	}
}

func (h *cursorHeap) pop() *cursor {
	top := h.cs[0]
	last := len(h.cs) - 1
	h.cs[0] = h.cs[last]
	h.cs = h.cs[:last]
	i := 0
	for {
		child := 2*i + 1
		if child >= len(h.cs) {
			break
		}
		if r := child + 1; r < len(h.cs) && h.cs[r].less(h.cs[child]) {
			child = r
		}
		if !h.cs[child].less(h.cs[i]) {
			break
		}
		h.cs[i], h.cs[child] = h.cs[child], h.cs[i]
		i = child
	}
	return top
}

// next advances the cursor; false means the run is exhausted.
func (c *cursor) next() (bool, error) {
	for c.bufPos >= len(c.buf) {
		if c.pageIdx >= len(c.run.pages) {
			return false, nil
		}
		f, err := c.pool.Get(c.run.pages[c.pageIdx])
		if err != nil {
			return false, err
		}
		data := f.Data()
		count := int(binary.LittleEndian.Uint32(data))
		c.buf = c.buf[:0]
		off := runHeader
		for i := 0; i < count; i++ {
			c.buf = append(c.buf, Item{
				Key:   binary.LittleEndian.Uint64(data[off:]),
				Value: binary.LittleEndian.Uint32(data[off+8:]),
			})
			off += itemSize
		}
		f.Release()
		c.pageIdx++
		c.bufPos = 0
	}
	c.cur = c.buf[c.bufPos]
	c.bufPos++
	return true, nil
}
