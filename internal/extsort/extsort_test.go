package extsort

import (
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/storage"
)

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMemStore(), frames)
}

func isSorted(items []Item) bool {
	return sort.SliceIsSorted(items, func(a, b int) bool {
		if items[a].Key != items[b].Key {
			return items[a].Key < items[b].Key
		}
		return items[a].Value < items[b].Value
	})
}

func TestSortInMemoryPath(t *testing.T) {
	pool := newPool(8)
	items := []Item{{Key: 3, Value: 0}, {Key: 1, Value: 1}, {Key: 2, Value: 2}}
	out, err := Sort(pool, items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !isSorted(out) || len(out) != 3 {
		t.Fatalf("not sorted: %v", out)
	}
	if pool.Stats().IOs() != 0 {
		t.Fatal("in-memory path should not touch the pool")
	}
	// Input must be untouched.
	if items[0].Key != 3 {
		t.Fatal("input mutated")
	}
}

func TestSortExternalMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{10, 1000, 20000} {
		for _, runItems := range []int{7, 256, 4096} {
			items := make([]Item, n)
			for i := range items {
				items[i] = Item{Key: rng.Uint64(), Value: uint32(i)}
			}
			pool := newPool(16)
			out, err := Sort(pool, items, runItems)
			if err != nil {
				t.Fatalf("n=%d run=%d: %v", n, runItems, err)
			}
			if len(out) != n {
				t.Fatalf("n=%d run=%d: lost items: %d", n, runItems, len(out))
			}
			if !isSorted(out) {
				t.Fatalf("n=%d run=%d: output not sorted", n, runItems)
			}
			// Multiset equality via the deterministic (Key, Value) order.
			want := append([]Item(nil), items...)
			sortItems(want)
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("n=%d run=%d: item %d = %v, want %v", n, runItems, i, out[i], want[i])
				}
			}
			if pool.PinnedFrames() != 0 {
				t.Fatal("pinned frame leak")
			}
		}
	}
}

func TestSortHighBitKeys(t *testing.T) {
	// Keys above 2^53 must stay exactly ordered (the float64 trap).
	base := uint64(1) << 60
	items := []Item{
		{Key: base + 3, Value: 0},
		{Key: base + 1, Value: 1},
		{Key: base + 2, Value: 2},
		{Key: base + 1, Value: 0}, // tie on key, ordered by value
	}
	out, err := Sort(newPool(8), items, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Item{{base + 1, 0}, {base + 1, 1}, {base + 2, 2}, {base + 3, 0}}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("item %d = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestSortDuplicateKeys(t *testing.T) {
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{Key: uint64(i % 3), Value: uint32(i)}
	}
	out, err := Sort(newPool(8), items, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !isSorted(out) || len(out) != 500 {
		t.Fatal("duplicate-key sort broken")
	}
}

func TestSortEmpty(t *testing.T) {
	out, err := Sort(newPool(2), nil, 10)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sort: %v %v", out, err)
	}
}

func TestSortCountsIO(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := make([]Item, 10000)
	for i := range items {
		items[i] = Item{Key: rng.Uint64(), Value: uint32(i)}
	}
	pool := newPool(4)
	if _, err := Sort(pool, items, 1000); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	// 10000 items / ~682 per page = 15 pages spilled and read back.
	if st.Writes == 0 || st.Misses == 0 {
		t.Fatalf("external sort should do I/O: %+v", st)
	}
}
