package geom

// Cache-blocked batch distance kernel for the leaf-level object join.
//
// The engine's leaf join offers every surviving candidate object to every
// owner object of an I_R leaf. Computed one candidate at a time, each probe
// re-streams the owners' coordinates and bounds through the cache; computed
// as an owner-tile x candidate-tile block, every coordinate loaded into L1
// is reused across the whole opposite tile. The kernel works on packed
// row-major coordinate matrices the caller gathers once per leaf, so the
// inner loops see only contiguous float64 slabs.

const (
	// BlockOwnerTile is the kernel's owner-axis tile. 64 owners x 8 bytes
	// x dim stays within L1 alongside one candidate tile for the paper's
	// 2-3 dimensional datasets.
	BlockOwnerTile = 64
	// BlockCandTile is the candidate-axis tile, and the natural flush
	// granularity for callers batching candidates incrementally.
	BlockCandTile = 128
)

// DistSqBlock computes squared Euclidean distances between m owner points
// and n candidate points, both given as packed row-major matrices
// (owners[oi*dim:(oi+1)*dim] is owner oi), writing out[ci*m+oi] for every
// pair. limits[oi] is an early-out threshold per owner: once a pair's
// partial sum exceeds it, the remaining dimensions are skipped and the
// partial sum is stored. The contract callers rely on:
//
//   - out[ci*m+oi] <= limits[oi] implies out holds the exact squared
//     distance, accumulated dimension-by-dimension in ascending order with
//     a single accumulator — bit-for-bit the value the scalar probe path
//     computes (Go does not reassociate floating-point expressions).
//   - out[ci*m+oi] > limits[oi] implies the exact distance also exceeds
//     limits[oi] (partial sums of squares only grow), so the caller may
//     treat the pair as pruned against any bound >= the stored value...
//     and must not read it as a distance.
//
// The two-dimensional case — the paper's datasets — skips the early-out
// branch entirely: both terms are cheaper than the comparison.
//
// The returned count is the number of pairs whose accumulation stopped
// early with dimensions still unprocessed — a work-saved diagnostic (the
// 2-D fast path always reports zero). It feeds SchedStats and never
// influences results.
func DistSqBlock(owners []float64, m int, cands []float64, n, dim int, limits, out []float64) int {
	if len(owners) != m*dim || len(cands) != n*dim {
		panic("geom: DistSqBlock matrix length mismatch")
	}
	if len(limits) < m || len(out) < n*m {
		panic("geom: DistSqBlock limits/out too short")
	}
	earlyOuts := 0
	for c0 := 0; c0 < n; c0 += BlockCandTile {
		c1 := min(c0+BlockCandTile, n)
		for o0 := 0; o0 < m; o0 += BlockOwnerTile {
			o1 := min(o0+BlockOwnerTile, m)
			if dim == 2 {
				distSqBlock2D(owners, cands, o0, o1, c0, c1, m, out)
			} else {
				earlyOuts += distSqBlockGeneric(owners, cands, o0, o1, c0, c1, m, dim, limits, out)
			}
		}
	}
	return earlyOuts
}

// distSqBlock2D is the dim==2 tile body: dx*dx + dy*dy matches the scalar
// loop's ascending-dimension accumulation exactly.
func distSqBlock2D(owners, cands []float64, o0, o1, c0, c1, m int, out []float64) {
	for ci := c0; ci < c1; ci++ {
		cx, cy := cands[2*ci], cands[2*ci+1]
		row := out[ci*m : ci*m+m]
		for oi := o0; oi < o1; oi++ {
			dx := owners[2*oi] - cx
			dy := owners[2*oi+1] - cy
			row[oi] = dx*dx + dy*dy
		}
	}
}

// distSqBlockGeneric is the any-dimension tile body with the per-owner
// early-out. It returns the number of pairs aborted before the final
// dimension (an abort at the last dimension produced the full sum and is
// not counted).
func distSqBlockGeneric(owners, cands []float64, o0, o1, c0, c1, m, dim int, limits, out []float64) int {
	earlyOuts := 0
	for ci := c0; ci < c1; ci++ {
		cp := cands[ci*dim : (ci+1)*dim]
		row := out[ci*m : ci*m+m]
		for oi := o0; oi < o1; oi++ {
			op := owners[oi*dim : (oi+1)*dim]
			limit := limits[oi]
			var s float64
			for d := range cp {
				diff := op[d] - cp[d]
				s += diff * diff
				if s > limit {
					if d+1 < dim {
						earlyOuts++
					}
					break
				}
			}
			row[oi] = s
		}
	}
	return earlyOuts
}
