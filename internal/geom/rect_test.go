package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randRect returns a random rectangle in [-lim, lim]^dim.
func randRect(rng *rand.Rand, dim int, lim float64) Rect {
	lo := make(Point, dim)
	hi := make(Point, dim)
	for d := 0; d < dim; d++ {
		a := (rng.Float64()*2 - 1) * lim
		b := (rng.Float64()*2 - 1) * lim
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return Rect{Lo: lo, Hi: hi}
}

// randPointIn returns a random point inside r.
func randPointIn(rng *rand.Rand, r Rect) Point {
	p := make(Point, r.Dim())
	for d := range p {
		p[d] = r.Lo[d] + rng.Float64()*(r.Hi[d]-r.Lo[d])
	}
	return p
}

func TestNewRectPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inverted bounds")
		}
	}()
	NewRect(Point{1, 5}, Point{2, 4})
}

func TestNewRectPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	NewRect(Point{1}, Point{2, 3})
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect(3)
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 {
		t.Fatalf("empty rect area = %g, want 0", e.Area())
	}
	e.ExpandPoint(Point{1, 2, 3})
	if e.IsEmpty() {
		t.Fatal("rect should be non-empty after ExpandPoint")
	}
	if !e.Equal(PointRect(Point{1, 2, 3})) {
		t.Fatalf("expanded empty rect = %v", e)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 5})
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},   // corner inclusive
		{Point{10, 5}, true},  // opposite corner inclusive
		{Point{5, 2.5}, true}, // interior
		{Point{-0.1, 2}, false},
		{Point{5, 5.1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	if !r.ContainsRect(NewRect(Point{1, 1}, Point{9, 9})) {
		t.Error("inner rect should be contained")
	}
	if !r.ContainsRect(r) {
		t.Error("rect should contain itself")
	}
	if r.ContainsRect(NewRect(Point{1, 1}, Point{11, 9})) {
		t.Error("overhanging rect should not be contained")
	}
	if !r.ContainsRect(EmptyRect(2)) {
		t.Error("empty rect should be contained in everything")
	}
}

func TestRectIntersects(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{4, 4})
	cases := []struct {
		s    Rect
		want bool
	}{
		{NewRect(Point{2, 2}, Point{6, 6}), true},
		{NewRect(Point{4, 4}, Point{6, 6}), true}, // touching corner counts
		{NewRect(Point{5, 5}, Point{6, 6}), false},
		{NewRect(Point{-2, 1}, Point{-1, 2}), false},
		{NewRect(Point{1, 1}, Point{2, 2}), true}, // fully inside
	}
	for _, c := range cases {
		if got := r.Intersects(c.s); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.s, got, c.want)
		}
		if got := c.s.Intersects(r); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.s)
		}
	}
}

func TestRectAreaMargin(t *testing.T) {
	r := NewRect(Point{0, 0, 0}, Point{2, 3, 4})
	if got := r.Area(); got != 24 {
		t.Errorf("Area = %g, want 24", got)
	}
	if got := r.Margin(); got != 9 {
		t.Errorf("Margin = %g, want 9", got)
	}
}

func TestRectOverlapArea(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{4, 4})
	s := NewRect(Point{2, 2}, Point{6, 6})
	if got := r.OverlapArea(s); got != 4 {
		t.Errorf("OverlapArea = %g, want 4", got)
	}
	if got := r.OverlapArea(NewRect(Point{4, 4}, Point{5, 5})); got != 0 {
		t.Errorf("touching rects OverlapArea = %g, want 0", got)
	}
	if got := r.OverlapArea(NewRect(Point{9, 9}, Point{10, 10})); got != 0 {
		t.Errorf("disjoint rects OverlapArea = %g, want 0", got)
	}
}

func TestRectUnionCoversBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		r := randRect(rng, 3, 100)
		s := randRect(rng, 3, 100)
		u := r.Union(s)
		if !u.ContainsRect(r) || !u.ContainsRect(s) {
			t.Fatalf("union %v does not cover %v and %v", u, r, s)
		}
		// Union must be minimal: every face of u touches r or s.
		for d := 0; d < 3; d++ {
			if u.Lo[d] != math.Min(r.Lo[d], s.Lo[d]) || u.Hi[d] != math.Max(r.Hi[d], s.Hi[d]) {
				t.Fatalf("union not tight in dim %d", d)
			}
		}
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{{1, 5}, {3, 2}, {-1, 4}}
	r := BoundingRect(pts)
	want := NewRect(Point{-1, 2}, Point{3, 5})
	if !r.Equal(want) {
		t.Fatalf("BoundingRect = %v, want %v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("BoundingRect does not contain %v", p)
		}
	}
}

func TestBoundingRectPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty point set")
		}
	}()
	BoundingRect(nil)
}

func TestRectCenter(t *testing.T) {
	r := NewRect(Point{0, 2}, Point{4, 8})
	if !r.Center().Equal(Point{2, 5}) {
		t.Fatalf("Center = %v", r.Center())
	}
}

func TestRectCloneIndependent(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	c := r.Clone()
	c.Lo[0] = -5
	if r.Lo[0] != 0 {
		t.Fatal("Clone aliases bounds")
	}
}

func TestContainsExpandedPointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 4, 50)
		p := Point{rng.Float64() * 200, rng.Float64() * 200, rng.Float64() * 200, rng.Float64() * 200}
		r.ExpandPoint(p)
		return r.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
