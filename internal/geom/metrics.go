package geom

import "math"

// This file implements the MBR-to-MBR distance metrics of Section 3.1 of the
// paper. Figure 2(a) of the paper illustrates the relationships; for two
// MBRs M and N the metrics always satisfy
//
//	MINMINDIST(M,N) <= MINMAXDIST(M,N)
//	MINMINDIST(M,N) <= NXNDIST(M,N) <= MAXMAXDIST(M,N)
//
// NXNDIST (a.k.a. MINMAXMINDIST) is the paper's new upper bound for ANN
// pruning: for every point r in M, the distance from r to its nearest
// neighbor among any point set whose MBR is N is at most NXNDIST(M,N)
// (Lemma 3.1). Unlike MINMINDIST, NXNDIST is *not* symmetric in its
// arguments.

// MinDistSq returns the squared MINMINDIST between two MBRs: the squared
// minimum possible distance between a point in m and a point in n. It is
// zero when the rectangles intersect.
func MinDistSq(m, n Rect) float64 {
	if len(m.Lo) != len(n.Lo) {
		panic(dimMismatch(len(m.Lo), len(n.Lo)))
	}
	var s float64
	for d := range m.Lo {
		// Gap between the intervals [m.Lo[d], m.Hi[d]] and
		// [n.Lo[d], n.Hi[d]]; zero if they overlap.
		var gap float64
		switch {
		case n.Lo[d] > m.Hi[d]:
			gap = n.Lo[d] - m.Hi[d]
		case m.Lo[d] > n.Hi[d]:
			gap = m.Lo[d] - n.Hi[d]
		}
		s += gap * gap
	}
	return s
}

// MinDist returns the MINMINDIST between two MBRs.
func MinDist(m, n Rect) float64 { return math.Sqrt(MinDistSq(m, n)) }

// MaxDistSq returns the squared MAXMAXDIST between two MBRs: the squared
// maximum possible distance between a point in m and a point in n. This is
// the traditional ANN pruning upper bound that NXNDIST improves upon.
func MaxDistSq(m, n Rect) float64 {
	if len(m.Lo) != len(n.Lo) {
		panic(dimMismatch(len(m.Lo), len(n.Lo)))
	}
	var s float64
	for d := range m.Lo {
		g := maxDistDim(m.Lo[d], m.Hi[d], n.Lo[d], n.Hi[d])
		s += g * g
	}
	return s
}

// MaxDist returns the MAXMAXDIST between two MBRs.
func MaxDist(m, n Rect) float64 { return math.Sqrt(MaxDistSq(m, n)) }

// maxDistDim is MAXDIST_d of the paper: the maximum distance in one
// dimension between a coordinate in [ml, mh] and a coordinate in [nl, nh].
// It equals max(|ml-nh|, |mh-nl|); the other two corner combinations of
// Algorithm 1 line 4 are dominated by these two.
func maxDistDim(ml, mh, nl, nh float64) float64 {
	a := math.Abs(ml - nh)
	if b := math.Abs(mh - nl); b > a {
		a = b
	}
	return a
}

// maxMinDim is MAXMIN_d of Definition 3.1: the maximum over p in [ml, mh]
// of the distance from p to the *nearer* endpoint of [nl, nh].
//
// The function f(p) = min(|p-nl|, |p-nh|) is piecewise linear: it falls to
// zero at nl and nh, peaks at the midpoint c = (nl+nh)/2 with value
// (nh-nl)/2, and increases linearly outside [nl, nh]. Over the interval
// [ml, mh] its maximum is therefore attained either at an endpoint of the
// interval or at c when c lies inside the interval, giving an O(1)
// evaluation.
func maxMinDim(ml, mh, nl, nh float64) float64 {
	f := func(p float64) float64 {
		return math.Min(math.Abs(p-nl), math.Abs(p-nh))
	}
	v := math.Max(f(ml), f(mh))
	if c := (nl + nh) / 2; c >= ml && c <= mh {
		v = math.Max(v, (nh-nl)/2)
	}
	return v
}

// MinMaxDistSq returns the squared MINMAXDIST between two MBRs
// (Corral et al., SIGMOD 2000): an upper bound on the distance between at
// least one pair of points, one on a face of each MBR. It is included for
// completeness and for distance-join style operations; the paper notes it
// is *not* a valid ANN pruning bound (it bounds the closest pair, not every
// point's NN).
//
// MINMAXDIST(m, n) = min over dimensions d of the distance obtained by
// pinning dimension d to the nearer face of n and taking the maximal spread
// in every other dimension.
func MinMaxDistSq(m, n Rect) float64 {
	dim := len(m.Lo)
	if dim != len(n.Lo) {
		panic(dimMismatch(dim, len(n.Lo)))
	}
	// S = sum over d of MAXDIST_d^2, then for each pinned dimension i
	// replace MAXDIST_i^2 with the min distance from m's interval to the
	// nearer face of n in dimension i.
	var total float64
	maxd := make([]float64, dim)
	for d := range m.Lo {
		maxd[d] = maxDistDim(m.Lo[d], m.Hi[d], n.Lo[d], n.Hi[d])
		total += maxd[d] * maxd[d]
	}
	best := math.Inf(1)
	for d := 0; d < dim; d++ {
		// Pin dimension d to one face of n: the bound uses the face whose
		// maximal distance from m's interval is smaller, with the maximal
		// spread retained in every other dimension.
		fl := maxPointToValue(m.Lo[d], m.Hi[d], n.Lo[d])
		fh := maxPointToValue(m.Lo[d], m.Hi[d], n.Hi[d])
		pinned := math.Min(fl, fh)
		cand := total - maxd[d]*maxd[d] + pinned*pinned
		if cand < best {
			best = cand
		}
	}
	return best
}

// maxPointToValue is the maximum distance from a coordinate in [lo, hi] to
// the fixed coordinate v.
func maxPointToValue(lo, hi, v float64) float64 {
	return math.Max(math.Abs(lo-v), math.Abs(hi-v))
}

// MinMaxDist returns the MINMAXDIST between two MBRs.
func MinMaxDist(m, n Rect) float64 { return math.Sqrt(MinMaxDistSq(m, n)) }

// NXNDistSq returns the squared NXNDIST (MINMAXMINDIST) between two MBRs,
// computed with the O(D) two-pass scheme of the paper's Algorithm 1:
//
//	pass 1: S = sum over d of MAXDIST_d(M,N)^2
//	pass 2: NXNDIST^2 = min over d of S - MAXDIST_d^2 + MAXMIN_d^2
//
// Geometrically (Figure 1), for each dimension d a search region is formed
// by sweeping a (D-1)-dimensional slab of full MAXDIST extent along
// dimension d by only MAXMIN_d; every such region is guaranteed to contain,
// for any r in M, at least one point of any point set whose MBR is N. The
// squared diagonal of the smallest region is the bound.
func NXNDistSq(m, n Rect) float64 {
	dim := len(m.Lo)
	if dim != len(n.Lo) {
		panic(dimMismatch(dim, len(n.Lo)))
	}
	var total float64
	// Pass 1 accumulates S; pass 2 needs each MAXDIST_d again. For the
	// dimensionalities this library targets (D <= 32) a stack-friendly
	// fixed array avoids per-call allocation on the hot path.
	var buf [32]float64
	maxd := buf[:0]
	if dim > len(buf) {
		maxd = make([]float64, 0, dim)
	}
	for d := 0; d < dim; d++ {
		g := maxDistDim(m.Lo[d], m.Hi[d], n.Lo[d], n.Hi[d])
		maxd = append(maxd, g)
		total += g * g
	}
	best := total
	for d := 0; d < dim; d++ {
		mm := maxMinDim(m.Lo[d], m.Hi[d], n.Lo[d], n.Hi[d])
		cand := total - maxd[d]*maxd[d] + mm*mm
		if cand < best {
			best = cand
		}
	}
	return best
}

// NXNDist returns the NXNDIST between two MBRs. Note the metric is
// asymmetric: NXNDist(m, n) bounds the NN distance *from* points of m *to*
// point sets bounded by n, and generally differs from NXNDist(n, m).
func NXNDist(m, n Rect) float64 { return math.Sqrt(NXNDistSq(m, n)) }

// MinDistPointRectSq returns the squared minimum distance from point p to
// rectangle r (zero if p is inside r).
func MinDistPointRectSq(p Point, r Rect) float64 {
	if len(p) != len(r.Lo) {
		panic(dimMismatch(len(p), len(r.Lo)))
	}
	var s float64
	for d := range p {
		var gap float64
		switch {
		case p[d] < r.Lo[d]:
			gap = r.Lo[d] - p[d]
		case p[d] > r.Hi[d]:
			gap = p[d] - r.Hi[d]
		}
		s += gap * gap
	}
	return s
}

// MinDistPointRect returns the minimum distance from point p to rectangle r.
func MinDistPointRect(p Point, r Rect) float64 {
	return math.Sqrt(MinDistPointRectSq(p, r))
}

// MaxDistPointRectSq returns the squared maximum distance from point p to
// any point of rectangle r.
func MaxDistPointRectSq(p Point, r Rect) float64 {
	if len(p) != len(r.Lo) {
		panic(dimMismatch(len(p), len(r.Lo)))
	}
	var s float64
	for d := range p {
		g := maxPointToValue(r.Lo[d], r.Hi[d], p[d])
		s += g * g
	}
	return s
}

// MaxDistPointRect returns the maximum distance from point p to rectangle r.
func MaxDistPointRect(p Point, r Rect) float64 {
	return math.Sqrt(MaxDistPointRectSq(p, r))
}

// DistSqWithin computes the squared distance between p and q with early
// abort: as soon as the partial sum exceeds limit, it stops and reports
// ok = false (the true distance is at least the returned partial sum).
// The ANN probe loops reject the vast majority of candidates, so paying
// only a prefix of the dimensions is a large win in high dimensionality.
func DistSqWithin(p, q Point, limit float64) (float64, bool) {
	var s float64
	for d := range p {
		diff := p[d] - q[d]
		s += diff * diff
		if s > limit {
			return s, false
		}
	}
	return s, true
}
