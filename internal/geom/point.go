// Package geom provides the geometric primitives used throughout the
// library: D-dimensional points, minimum bounding rectangles (MBRs), and
// the family of MBR-to-MBR distance metrics from Chen & Patel (ICDE 2007),
// including the NXNDIST (MINMAXMINDIST) pruning metric that is the paper's
// first contribution.
//
// All metrics are available both as true Euclidean distances and as squared
// distances. The squared forms avoid the final square root and are the ones
// the query engines use on their hot paths; comparisons between squared
// distances are order-preserving because all distances are non-negative.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point in D-dimensional Euclidean space. The dimensionality is
// the slice length. Points are treated as immutable by every function in
// this package.
type Point []float64

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns a deep copy of the point.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for d := range p {
		if p[d] != q[d] {
			return false
		}
	}
	return true
}

// String renders the point as "(x1, x2, ..., xD)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for d, v := range p {
		if d > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Dist returns the Euclidean distance between p and q.
// It panics if the dimensionalities differ.
func Dist(p, q Point) float64 { return math.Sqrt(DistSq(p, q)) }

// DistSq returns the squared Euclidean distance between p and q.
// It panics if the dimensionalities differ.
func DistSq(p, q Point) float64 {
	if len(p) != len(q) {
		panic(dimMismatch(len(p), len(q)))
	}
	var s float64
	for d := range p {
		diff := p[d] - q[d]
		s += diff * diff
	}
	return s
}

func dimMismatch(a, b int) string {
	return fmt.Sprintf("geom: dimensionality mismatch: %d vs %d", a, b)
}
