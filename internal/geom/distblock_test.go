package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestDistSqBlockMatchesScalar checks the kernel contract on random
// matrices: every pair at or below its owner's limit holds the exact
// squared distance bit-for-bit, and every pair above it is a true reject
// (the exact distance exceeds the limit too).
func TestDistSqBlockMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{1, 2, 3, 5, 8} {
		for trial := 0; trial < 20; trial++ {
			m := 1 + rng.Intn(2*BlockOwnerTile+5)
			n := 1 + rng.Intn(2*BlockCandTile+5)
			owners := randMatrix(rng, m, dim)
			cands := randMatrix(rng, n, dim)
			limits := make([]float64, m)
			for i := range limits {
				switch rng.Intn(3) {
				case 0:
					limits[i] = math.Inf(1)
				case 1:
					limits[i] = 0.1 * rng.Float64()
				default:
					limits[i] = 2 * rng.Float64()
				}
			}
			out := make([]float64, n*m)
			DistSqBlock(owners, m, cands, n, dim, limits, out)
			for ci := 0; ci < n; ci++ {
				cp := Point(cands[ci*dim : (ci+1)*dim])
				for oi := 0; oi < m; oi++ {
					op := Point(owners[oi*dim : (oi+1)*dim])
					exact := DistSq(op, cp)
					got := out[ci*m+oi]
					if got <= limits[oi] {
						if got != exact {
							t.Fatalf("dim=%d pair(%d,%d): kernel %v != exact %v (limit %v)",
								dim, oi, ci, got, exact, limits[oi])
						}
					} else if exact <= limits[oi] {
						t.Fatalf("dim=%d pair(%d,%d): kernel rejected %v but exact %v <= limit %v",
							dim, oi, ci, got, exact, limits[oi])
					}
				}
			}
		}
	}
}

// TestDistSqBlockAccumulationOrder pins the bit-identity guarantee the
// engine's byte-identical parallel output depends on: the kernel's value
// must equal a single-accumulator ascending-dimension scalar loop, not
// merely be close to it.
func TestDistSqBlockAccumulationOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{2, 7} {
		m, n := 9, 13
		owners := randMatrix(rng, m, dim)
		cands := randMatrix(rng, n, dim)
		limits := make([]float64, m)
		for i := range limits {
			limits[i] = math.Inf(1)
		}
		out := make([]float64, n*m)
		DistSqBlock(owners, m, cands, n, dim, limits, out)
		for ci := 0; ci < n; ci++ {
			for oi := 0; oi < m; oi++ {
				var s float64
				for d := 0; d < dim; d++ {
					diff := owners[oi*dim+d] - cands[ci*dim+d]
					s += diff * diff
				}
				if out[ci*m+oi] != s {
					t.Fatalf("dim=%d pair(%d,%d): kernel bits differ from scalar accumulation", dim, oi, ci)
				}
			}
		}
	}
}

func randMatrix(rng *rand.Rand, rows, dim int) []float64 {
	out := make([]float64, rows*dim)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func BenchmarkDistSqBlock2D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m, n := BlockOwnerTile, BlockCandTile
	owners := randMatrix(rng, m, 2)
	cands := randMatrix(rng, n, 2)
	limits := make([]float64, m)
	for i := range limits {
		limits[i] = math.Inf(1)
	}
	out := make([]float64, n*m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistSqBlock(owners, m, cands, n, 2, limits, out)
	}
}
