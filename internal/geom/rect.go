package geom

import (
	"fmt"
	"math"
)

// Rect is a D-dimensional axis-aligned minimum bounding rectangle (MBR),
// represented as in the paper by a lower-bound vector Lo and an upper-bound
// vector Hi: Lo[d] <= Hi[d] for every dimension d.
type Rect struct {
	Lo, Hi Point
}

// NewRect returns a rectangle with the given bounds. It panics if the two
// vectors have different lengths or if any lower bound exceeds the
// corresponding upper bound.
func NewRect(lo, hi Point) Rect {
	if len(lo) != len(hi) {
		panic(dimMismatch(len(lo), len(hi)))
	}
	for d := range lo {
		if lo[d] > hi[d] {
			panic(fmt.Sprintf("geom: inverted rect bounds in dimension %d: [%g, %g]", d, lo[d], hi[d]))
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// PointRect returns the degenerate rectangle covering exactly the point p.
// The returned rectangle aliases p; callers that mutate bounds must Clone.
func PointRect(p Point) Rect { return Rect{Lo: p, Hi: p} }

// EmptyRect returns the canonical empty rectangle in D dimensions: bounds
// inverted at +/-Inf so that Expand* operations treat it as an identity.
func EmptyRect(dim int) Rect {
	lo := make(Point, dim)
	hi := make(Point, dim)
	for d := 0; d < dim; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	return Rect{Lo: lo, Hi: hi}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// IsEmpty reports whether the rectangle is empty (has inverted bounds in
// some dimension, as produced by EmptyRect).
func (r Rect) IsEmpty() bool {
	for d := range r.Lo {
		if r.Lo[d] > r.Hi[d] {
			return true
		}
	}
	return len(r.Lo) == 0
}

// Clone returns a deep copy of the rectangle.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Equal reports whether r and s have identical bounds.
func (r Rect) Equal(s Rect) bool {
	return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi)
}

// Center returns the center point of the rectangle.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for d := range r.Lo {
		c[d] = (r.Lo[d] + r.Hi[d]) / 2
	}
	return c
}

// Contains reports whether the point p lies inside the rectangle
// (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	if len(p) != len(r.Lo) {
		panic(dimMismatch(len(p), len(r.Lo)))
	}
	for d := range p {
		if p[d] < r.Lo[d] || p[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r
// (boundaries inclusive). An empty s is contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	for d := range r.Lo {
		if s.Lo[d] < r.Lo[d] || s.Hi[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point
// (boundaries inclusive).
func (r Rect) Intersects(s Rect) bool {
	if len(r.Lo) != len(s.Lo) {
		panic(dimMismatch(len(r.Lo), len(s.Lo)))
	}
	for d := range r.Lo {
		if r.Lo[d] > s.Hi[d] || s.Lo[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// ExpandPoint grows r in place so that it covers p and returns r.
func (r *Rect) ExpandPoint(p Point) {
	for d := range p {
		if p[d] < r.Lo[d] {
			r.Lo[d] = p[d]
		}
		if p[d] > r.Hi[d] {
			r.Hi[d] = p[d]
		}
	}
}

// ExpandRect grows r in place so that it covers s.
func (r *Rect) ExpandRect(s Rect) {
	if s.IsEmpty() {
		return
	}
	for d := range s.Lo {
		if s.Lo[d] < r.Lo[d] {
			r.Lo[d] = s.Lo[d]
		}
		if s.Hi[d] > r.Hi[d] {
			r.Hi[d] = s.Hi[d]
		}
	}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	u := r.Clone()
	u.ExpandRect(s)
	return u
}

// Area returns the D-dimensional volume of the rectangle
// (zero for degenerate rectangles, zero for empty ones).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	a := 1.0
	for d := range r.Lo {
		a *= r.Hi[d] - r.Lo[d]
	}
	return a
}

// Margin returns the sum of the edge lengths of the rectangle, the "margin"
// quantity minimised by the R*-tree split axis selection.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	var m float64
	for d := range r.Lo {
		m += r.Hi[d] - r.Lo[d]
	}
	return m
}

// OverlapArea returns the volume of the intersection of r and s, or zero if
// they do not intersect.
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for d := range r.Lo {
		lo := math.Max(r.Lo[d], s.Lo[d])
		hi := math.Min(r.Hi[d], s.Hi[d])
		if lo >= hi {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// BoundingRect returns the MBR of a point set. It panics on an empty set.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	r := EmptyRect(len(pts[0]))
	for _, p := range pts {
		r.ExpandPoint(p)
	}
	return r
}

// String renders the rectangle as "[lo -> hi]".
func (r Rect) String() string {
	return fmt.Sprintf("[%s -> %s]", r.Lo, r.Hi)
}
