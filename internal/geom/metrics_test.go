package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

// --- Hand-computed fixtures -------------------------------------------------

func TestMinDist2D(t *testing.T) {
	m := NewRect(Point{0, 0}, Point{1, 1})
	cases := []struct {
		n    Rect
		want float64
	}{
		{NewRect(Point{3, 0}, Point{5, 4}), 2},       // gap only in x
		{NewRect(Point{4, 5}, Point{7, 9}), 5},       // gap 3 in x, 4 in y
		{NewRect(Point{0.5, 0.5}, Point{2, 2}), 0},   // overlapping
		{NewRect(Point{1, 1}, Point{2, 2}), 0},       // touching corner
		{NewRect(Point{-4, 0.2}, Point{-2, 0.8}), 2}, // gap to the left
		{NewRect(Point{0.2, -9}, Point{0.8, -2}), 2}, // gap below
	}
	for _, c := range cases {
		if got := MinDist(m, c.n); math.Abs(got-c.want) > tol {
			t.Errorf("MinDist(m, %v) = %g, want %g", c.n, got, c.want)
		}
	}
}

func TestMaxDist2D(t *testing.T) {
	m := NewRect(Point{0, 0}, Point{1, 1})
	n := NewRect(Point{3, 0}, Point{5, 4})
	// Farthest corners are (0,0) and (5,4): sqrt(25+16).
	if got := MaxDist(m, n); math.Abs(got-math.Sqrt(41)) > tol {
		t.Errorf("MaxDist = %g, want sqrt(41)", got)
	}
	// A rect against itself: diagonal length.
	if got := MaxDist(m, m); math.Abs(got-math.Sqrt2) > tol {
		t.Errorf("MaxDist(m,m) = %g, want sqrt(2)", got)
	}
}

func TestNXNDistHandComputed(t *testing.T) {
	// M = [0,1]^2, N = [3,5]x[0,4].
	// MAXDIST = (5, 4), S = 41.
	// MAXMIN_x = 3 (at p=0), MAXMIN_y = 1 (at p=1).
	// candidates: 41-25+9 = 25 (x), 41-16+1 = 26 (y)  =>  NXNDIST = 5.
	m := NewRect(Point{0, 0}, Point{1, 1})
	n := NewRect(Point{3, 0}, Point{5, 4})
	if got := NXNDist(m, n); math.Abs(got-5) > tol {
		t.Errorf("NXNDist(m, n) = %g, want 5", got)
	}
	// Asymmetry (the paper notes NXNDIST is not commutable):
	// reversed, MAXMIN = (4, 3), candidates 32 (x) and 34 (y).
	if got := NXNDistSq(n, m); math.Abs(got-32) > tol {
		t.Errorf("NXNDistSq(n, m) = %g, want 32", got)
	}
}

func TestNXNDistIdenticalRects(t *testing.T) {
	// M = N = [0,2]^2: MAXDIST = (2,2), S = 8, MAXMIN = (1,1) at the
	// midpoints, candidates 5 and 5  =>  NXNDIST = sqrt(5).
	m := NewRect(Point{0, 0}, Point{2, 2})
	if got := NXNDistSq(m, m); math.Abs(got-5) > tol {
		t.Errorf("NXNDistSq(m, m) = %g, want 5", got)
	}
}

func TestNXNDistPointOwner(t *testing.T) {
	// Degenerate M (single point): MAXMIN_d reduces to the distance from
	// the point to the nearer face of N in each dimension.
	p := PointRect(Point{0, 0})
	n := NewRect(Point{2, 1}, Point{4, 3})
	// MAXDIST = (4, 3), S = 25. MAXMIN_x = 2, MAXMIN_y = 1.
	// candidates: 25-16+4 = 13, 25-9+1 = 17  =>  13.
	if got := NXNDistSq(p, n); math.Abs(got-13) > tol {
		t.Errorf("NXNDistSq = %g, want 13", got)
	}
}

func TestNXNDist3D(t *testing.T) {
	// 3-D hand computation. M = [0,1]^3, N = [2,4]x[0,2]x[5,6].
	// MAXDIST = (4, 2, 6); S = 16+4+36 = 56.
	// MAXMIN_x: f over [0,1] of min(|p-2|,|p-4|): f(0)=2, f(1)=1, mid 3 outside => 2.
	// MAXMIN_y: f over [0,1] of min(|p|,|p-2|): f(0)=0, f(1)=1, mid 1 inside => 1.
	// MAXMIN_z: f over [0,1] of min(|p-5|,|p-6|): f(0)=5, f(1)=4, mid 5.5 outside => 5.
	// candidates: 56-16+4=44, 56-4+1=53, 56-36+25=45  =>  44.
	m := NewRect(Point{0, 0, 0}, Point{1, 1, 1})
	n := NewRect(Point{2, 0, 5}, Point{4, 2, 6})
	if got := NXNDistSq(m, n); math.Abs(got-44) > tol {
		t.Errorf("NXNDistSq = %g, want 44", got)
	}
}

// TestLemma33CounterExample reproduces the spirit of the paper's Figure 2(b):
// a child pair (m, n) whose MINMINDIST exceeds NXNDIST of the parents, which
// is why NXNDIST enables early pruning that MAXMAXDIST cannot (Lemma 3.3).
func TestLemma33CounterExample(t *testing.T) {
	bigM := NewRect(Point{0, 0}, Point{2, 10})
	bigN := NewRect(Point{8, 0}, Point{10, 10})
	// MAXDIST = (10, 10), S = 200. MAXMIN_x = 8, MAXMIN_y = 5.
	// candidates: 200-100+64 = 164, 200-100+25 = 125  =>  NXNDIST^2 = 125.
	if got := NXNDistSq(bigM, bigN); math.Abs(got-125) > tol {
		t.Fatalf("NXNDistSq(M, N) = %g, want 125", got)
	}
	childM := NewRect(Point{0, 0}, Point{0.1, 0.1}) // bottom-left of M
	childN := NewRect(Point{8, 10}, Point{9.9, 10}) // top edge of N
	minmin := MinDistSq(childM, childN)             // 7.9^2 + 9.9^2 = 160.42
	if minmin <= 125 {
		t.Fatalf("counter-example broken: MINMINDIST^2(m,n) = %g should exceed 125", minmin)
	}
}

func TestMinMaxDistPointToRect(t *testing.T) {
	// Classic MINMAXDIST from a point to a rect: for p=(0,0) and
	// N=[2,4]x[1,3], pinning x to the nearer face (x=2) gives 4+9=13;
	// pinning y to y=1 gives 16+1=17. MINMAXDIST^2 = 13.
	p := PointRect(Point{0, 0})
	n := NewRect(Point{2, 1}, Point{4, 3})
	if got := MinMaxDistSq(p, n); math.Abs(got-13) > tol {
		t.Errorf("MinMaxDistSq = %g, want 13", got)
	}
}

// --- Property tests ---------------------------------------------------------

// TestLemma31Soundness is the central correctness property: for any point
// set S with MBR N, and any point r in M, the distance from r to its
// nearest neighbor in S is at most NXNDIST(M, N).
func TestLemma31Soundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dim := range []int{1, 2, 3, 5, 8} {
		for iter := 0; iter < 300; iter++ {
			npts := 2 + rng.Intn(20)
			pts := make([]Point, npts)
			box := randRect(rng, dim, 100)
			for i := range pts {
				pts[i] = randPointIn(rng, box)
			}
			n := BoundingRect(pts)
			m := randRect(rng, dim, 100)
			bound := NXNDist(m, n)
			for rep := 0; rep < 10; rep++ {
				r := randPointIn(rng, m)
				nn := math.Inf(1)
				for _, s := range pts {
					if d := Dist(r, s); d < nn {
						nn = d
					}
				}
				if nn > bound+tol {
					t.Fatalf("dim=%d: NN dist %g exceeds NXNDIST %g for r=%v m=%v n=%v",
						dim, nn, bound, r, m, n)
				}
			}
		}
	}
}

// TestLemma32Monotone: shrinking the owner MBR never increases NXNDIST.
func TestLemma32Monotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 1000; iter++ {
		dim := 1 + rng.Intn(6)
		m := randRect(rng, dim, 100)
		n := randRect(rng, dim, 100)
		// Build a random child of m.
		child := Rect{Lo: make(Point, dim), Hi: make(Point, dim)}
		for d := 0; d < dim; d++ {
			a := m.Lo[d] + rng.Float64()*(m.Hi[d]-m.Lo[d])
			b := m.Lo[d] + rng.Float64()*(m.Hi[d]-m.Lo[d])
			if a > b {
				a, b = b, a
			}
			child.Lo[d], child.Hi[d] = a, b
		}
		if NXNDistSq(child, n) > NXNDistSq(m, n)+tol {
			t.Fatalf("monotonicity violated: child %v vs parent %v against %v", child, m, n)
		}
	}
}

// TestMetricOrdering: MINMIN <= NXNDIST <= MAXMAX and MINMIN <= MINMAX <= MAXMAX.
func TestMetricOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 2000; iter++ {
		dim := 1 + rng.Intn(8)
		m := randRect(rng, dim, 100)
		n := randRect(rng, dim, 100)
		minmin := MinDistSq(m, n)
		nxn := NXNDistSq(m, n)
		maxmax := MaxDistSq(m, n)
		minmax := MinMaxDistSq(m, n)
		if minmin > nxn+tol {
			t.Fatalf("MINMIN %g > NXNDIST %g for %v, %v", minmin, nxn, m, n)
		}
		if nxn > maxmax+tol {
			t.Fatalf("NXNDIST %g > MAXMAX %g for %v, %v", nxn, maxmax, m, n)
		}
		if minmin > minmax+tol {
			t.Fatalf("MINMIN %g > MINMAX %g for %v, %v", minmin, minmax, m, n)
		}
		if minmax > maxmax+tol {
			t.Fatalf("MINMAX %g > MAXMAX %g for %v, %v", minmax, maxmax, m, n)
		}
	}
}

// TestMinDistSymmetric: MINMINDIST and MAXMAXDIST are symmetric; NXNDIST
// generally is not (verified by the hand case above), but must still be
// well-defined in both directions.
func TestMinDistSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		dim := 1 + rng.Intn(5)
		m := randRect(rng, dim, 50)
		n := randRect(rng, dim, 50)
		if MinDistSq(m, n) != MinDistSq(n, m) {
			t.Fatalf("MinDistSq asymmetric for %v, %v", m, n)
		}
		if MaxDistSq(m, n) != MaxDistSq(n, m) {
			t.Fatalf("MaxDistSq asymmetric for %v, %v", m, n)
		}
	}
}

// TestMaxMinDimAgainstSampling checks the O(1) MAXMIN_d evaluation against a
// dense 1-D sampling of Definition 3.1.
func TestMaxMinDimAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		ml := (rng.Float64()*2 - 1) * 50
		mh := ml + rng.Float64()*50
		nl := (rng.Float64()*2 - 1) * 50
		nh := nl + rng.Float64()*50
		exact := maxMinDim(ml, mh, nl, nh)
		const steps = 2000
		var sampled float64
		for i := 0; i <= steps; i++ {
			p := ml + (mh-ml)*float64(i)/steps
			f := math.Min(math.Abs(p-nl), math.Abs(p-nh))
			if f > sampled {
				sampled = f
			}
		}
		if sampled > exact+tol {
			t.Fatalf("sampled MAXMIN %g exceeds exact %g for M=[%g,%g] N=[%g,%g]",
				sampled, exact, ml, mh, nl, nh)
		}
		if exact-sampled > (mh-ml)/steps+tol {
			t.Fatalf("exact MAXMIN %g too far above sampled %g", exact, sampled)
		}
	}
}

// TestMinDistPointRectAgainstRectForm: the point-to-rect fast path must
// agree with the general rect-to-rect form applied to a degenerate rect.
func TestMinDistPointRectAgainstRectForm(t *testing.T) {
	f := func(a [3]float64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := clampSlice(a[:])
		r := randRect(rng, 3, 100)
		return math.Abs(MinDistPointRectSq(p, r)-MinDistSq(PointRect(p), r)) <= tol &&
			math.Abs(MaxDistPointRectSq(p, r)-MaxDistSq(PointRect(p), r)) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMinDistZeroIffIntersect: MINMINDIST is zero exactly when the rects
// intersect.
func TestMinDistZeroIffIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 2000; iter++ {
		dim := 1 + rng.Intn(4)
		m := randRect(rng, dim, 10)
		n := randRect(rng, dim, 10)
		zero := MinDistSq(m, n) == 0
		if zero != m.Intersects(n) {
			t.Fatalf("MinDist zero=%v but Intersects=%v for %v, %v", zero, m.Intersects(n), m, n)
		}
	}
}

// TestNXNDistHighDim exercises the heap-allocation fallback path (D > 32).
func TestNXNDistHighDim(t *testing.T) {
	dim := 40
	lo := make(Point, dim)
	hi := make(Point, dim)
	lo2 := make(Point, dim)
	hi2 := make(Point, dim)
	for d := 0; d < dim; d++ {
		hi[d] = 1
		lo2[d] = 2
		hi2[d] = 3
	}
	m := NewRect(lo, hi)
	n := NewRect(lo2, hi2)
	got := NXNDistSq(m, n)
	// Each dimension: MAXDIST = 3, MAXMIN = 2 (f(0)=2, f(1)=1, mid 2.5 outside
	// of [0,1] => 2). S = 9*40 = 360; candidate = 360 - 9 + 4 = 355.
	if math.Abs(got-355) > tol {
		t.Fatalf("NXNDistSq = %g, want 355", got)
	}
}

func BenchmarkNXNDist2D(b *testing.B)  { benchNXN(b, 2) }
func BenchmarkNXNDist10D(b *testing.B) { benchNXN(b, 10) }

func benchNXN(b *testing.B, dim int) {
	rng := rand.New(rand.NewSource(1))
	m := randRect(rng, dim, 100)
	n := randRect(rng, dim, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += NXNDistSq(m, n)
	}
}

var sink float64
