package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDim(t *testing.T) {
	if got := (Point{1, 2, 3}).Dim(); got != 3 {
		t.Fatalf("Dim() = %d, want 3", got)
	}
	if got := (Point{}).Dim(); got != 0 {
		t.Fatalf("Dim() = %d, want 0", got)
	}
}

func TestPointClone(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatalf("Clone aliases the original: p = %v", p)
	}
	if !p.Equal(Point{1, 2}) {
		t.Fatalf("original mutated: %v", p)
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},
		{Point{1, 2}, Point{1, 3}, false},
		{Point{1, 2}, Point{1, 2, 3}, false},
		{Point{}, Point{}, true},
	}
	for _, c := range cases {
		if got := c.p.Equal(c.q); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1}, Point{1}, 0},
		{Point{0, 0, 0}, Point{1, 2, 2}, 3},
		{Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, c := range cases {
		if got := Dist(c.p, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %g, want %g", c.p, c.q, got, c.want)
		}
	}
}

// clamp maps an arbitrary float (possibly huge) into [-1000, 1000] so that
// squared terms cannot overflow in property tests.
func clamp(v float64) float64 {
	if v != v { // NaN
		return 0
	}
	return math.Mod(v, 1000)
}

func clampSlice(a []float64) Point {
	p := make(Point, len(a))
	for i, v := range a {
		p[i] = clamp(v)
	}
	return p
}

func TestDistSqMatchesDist(t *testing.T) {
	f := func(a, b [4]float64) bool {
		p := clampSlice(a[:])
		q := clampSlice(b[:])
		d := Dist(p, q)
		return math.Abs(d*d-DistSq(p, q)) <= 1e-9*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(a, b [3]float64) bool {
		return DistSq(Point(a[:]), Point(b[:])) == DistSq(Point(b[:]), Point(a[:]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		p, q, r := Point(a[:]), Point(b[:]), Point(c[:])
		return Dist(p, r) <= Dist(p, q)+Dist(q, r)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dist(Point{1}, Point{1, 2})
}
