package pq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapBasicOrder(t *testing.T) {
	h := NewHeap[string](4)
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	want := []string{"a", "b", "c"}
	for _, w := range want {
		item, ok := h.Pop()
		if !ok || item.Value != w {
			t.Fatalf("Pop = %v/%v, want %q", item, ok, w)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap returned ok")
	}
}

func TestHeapPeek(t *testing.T) {
	h := &Heap[int]{}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap returned ok")
	}
	h.Push(5, 50)
	h.Push(2, 20)
	item, ok := h.Peek()
	if !ok || item.Key != 2 || item.Value != 20 {
		t.Fatalf("Peek = %v/%v", item, ok)
	}
	if h.Len() != 2 {
		t.Fatal("Peek consumed an item")
	}
}

func TestHeapClear(t *testing.T) {
	h := NewHeap[int](2)
	h.Push(1, 1)
	h.Clear()
	if h.Len() != 0 {
		t.Fatal("Clear did not empty the heap")
	}
	h.Push(7, 7)
	if item, _ := h.Pop(); item.Value != 7 {
		t.Fatal("heap unusable after Clear")
	}
}

// TestHeapSortsRandomInput: popping everything must yield ascending keys
// (heap sort property).
func TestHeapSortsRandomInput(t *testing.T) {
	f := func(keys []float64) bool {
		h := &Heap[int]{}
		for i, k := range keys {
			if math.IsNaN(k) {
				k = 0
			}
			h.Push(k, i)
		}
		prev := math.Inf(-1)
		for h.Len() > 0 {
			item, _ := h.Pop()
			if item.Key < prev {
				return false
			}
			prev = item.Key
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeapDuplicateKeys(t *testing.T) {
	h := &Heap[int]{}
	for i := 0; i < 10; i++ {
		h.Push(1, i)
	}
	seen := map[int]bool{}
	for h.Len() > 0 {
		item, _ := h.Pop()
		if seen[item.Value] {
			t.Fatalf("value %d popped twice", item.Value)
		}
		seen[item.Value] = true
	}
	if len(seen) != 10 {
		t.Fatalf("popped %d values, want 10", len(seen))
	}
}

func TestKBestPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k = 0")
		}
	}()
	NewKBest[int](0)
}

func TestKBestCollectsSmallest(t *testing.T) {
	b := NewKBest[int](3)
	keys := []float64{9, 1, 8, 2, 7, 3}
	for i, k := range keys {
		b.Add(k, i)
	}
	items := b.Items()
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	wantKeys := []float64{1, 2, 3}
	for i, item := range items {
		if item.Key != wantKeys[i] {
			t.Fatalf("item %d key = %g, want %g", i, item.Key, wantKeys[i])
		}
	}
}

func TestKBestWorstBound(t *testing.T) {
	b := NewKBest[int](2)
	if !math.IsInf(b.Worst(), 1) {
		t.Fatal("Worst should be +Inf while not full")
	}
	b.Add(5, 0)
	if !math.IsInf(b.Worst(), 1) {
		t.Fatal("Worst should be +Inf with 1 of 2 items")
	}
	b.Add(3, 1)
	if b.Worst() != 5 {
		t.Fatalf("Worst = %g, want 5", b.Worst())
	}
	if !b.Add(4, 2) {
		t.Fatal("4 should displace 5")
	}
	if b.Worst() != 4 {
		t.Fatalf("Worst = %g, want 4", b.Worst())
	}
	if b.Add(9, 3) {
		t.Fatal("9 should be rejected")
	}
}

func TestKBestRejectsEqualToWorst(t *testing.T) {
	b := NewKBest[int](1)
	b.Add(5, 0)
	if b.Add(5, 1) {
		t.Fatal("equal key must not displace the incumbent")
	}
}

// TestKBestMatchesSort cross-checks against sorting the whole key stream.
func TestKBestMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		k := 1 + rng.Intn(10)
		n := rng.Intn(100)
		keys := make([]float64, n)
		b := NewKBest[int](k)
		for i := range keys {
			keys[i] = rng.Float64() * 100
			b.Add(keys[i], i)
		}
		sort.Float64s(keys)
		items := b.Items()
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(items) != wantLen {
			t.Fatalf("len = %d, want %d", len(items), wantLen)
		}
		for i, item := range items {
			if item.Key != keys[i] {
				t.Fatalf("iter %d: item %d key = %g, want %g", iter, i, item.Key, keys[i])
			}
		}
	}
}

func TestKBestReset(t *testing.T) {
	b := NewKBest[int](2)
	b.Add(1, 1)
	b.Add(2, 2)
	b.Reset()
	if b.Len() != 0 || b.Full() {
		t.Fatal("Reset did not empty the collector")
	}
	if !math.IsInf(b.Worst(), 1) {
		t.Fatal("Worst after Reset should be +Inf")
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, 1024)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	h := NewHeap[int](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(keys[i%1024], i)
		if h.Len() > 512 {
			h.Pop()
		}
	}
}

func BenchmarkKBestAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, 1024)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	kb := NewKBest[int](10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kb.Add(keys[i%1024], i)
	}
}
