// Package pq provides the priority-queue building blocks used by the
// query engines: a float64-keyed binary min-heap for best-first index
// traversal, and a bounded "k best" collector for kNN candidate lists.
//
// The container/heap interface forces an interface{}-shaped element and a
// separate Fix/Push protocol; on the ANN hot path that indirection costs
// enough that hand-rolled generic heaps are worthwhile.
package pq

import "math"

// Item is a keyed heap element.
type Item[T any] struct {
	Key   float64
	Value T
}

// Heap is a binary min-heap ordered by Item.Key. The zero value is an
// empty heap ready for use.
type Heap[T any] struct {
	items []Item[T]
}

// NewHeap returns a heap with capacity preallocated for n items.
func NewHeap[T any](n int) *Heap[T] {
	return &Heap[T]{items: make([]Item[T], 0, n)}
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Clear removes every item, retaining the allocated capacity.
func (h *Heap[T]) Clear() { h.items = h.items[:0] }

// Reset removes every item like Clear, but also zeroes the retained
// backing array so stale references cannot pin their targets between
// uses of a pooled heap.
func (h *Heap[T]) Reset() {
	var zero Item[T]
	items := h.items[:cap(h.items)]
	for i := range items {
		items[i] = zero
	}
	h.items = h.items[:0]
}

// Push queues v with the given key.
func (h *Heap[T]) Push(key float64, v T) {
	h.items = append(h.items, Item[T]{Key: key, Value: v})
	h.siftUp(len(h.items) - 1)
}

// Peek returns the minimum-key item without removing it. The boolean is
// false when the heap is empty.
func (h *Heap[T]) Peek() (Item[T], bool) {
	if len(h.items) == 0 {
		var zero Item[T]
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum-key item. The boolean is false when
// the heap is empty.
func (h *Heap[T]) Pop() (Item[T], bool) {
	if len(h.items) == 0 {
		var zero Item[T]
		return zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top, true
}

func (h *Heap[T]) siftUp(i int) {
	item := h.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Key <= item.Key {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = item
}

func (h *Heap[T]) siftDown(i int) {
	item := h.items[i]
	n := len(h.items)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.items[r].Key < h.items[child].Key {
			child = r
		}
		if item.Key <= h.items[child].Key {
			break
		}
		h.items[i] = h.items[child]
		i = child
	}
	h.items[i] = item
}

// KBest collects the k items with the smallest keys seen so far. It is
// the candidate list of a kNN search: Worst() is the pruning bound (the
// k-th best distance, or +Inf while fewer than k candidates are known).
//
// Internally it is a max-heap over the current k best, so Add is
// O(log k) and Worst is O(1).
type KBest[T any] struct {
	k     int
	items []Item[T]
}

// NewKBest returns a collector for the k smallest keys. k must be >= 1.
func NewKBest[T any](k int) *KBest[T] {
	if k < 1 {
		panic("pq: KBest requires k >= 1")
	}
	return &KBest[T]{k: k, items: make([]Item[T], 0, k)}
}

// K returns the configured capacity.
func (b *KBest[T]) K() int { return b.k }

// Len returns the number of collected items (<= k).
func (b *KBest[T]) Len() int { return len(b.items) }

// Full reports whether k items have been collected.
func (b *KBest[T]) Full() bool { return len(b.items) == b.k }

// Worst returns the current pruning bound: the largest key among the
// collected items once full, or +Inf while the collector still has room.
func (b *KBest[T]) Worst() float64 {
	if !b.Full() {
		return inf
	}
	return b.items[0].Key
}

// Add offers an item. It is kept iff its key beats the current bound;
// the return value reports whether it was kept.
func (b *KBest[T]) Add(key float64, v T) bool {
	if len(b.items) < b.k {
		b.items = append(b.items, Item[T]{Key: key, Value: v})
		b.siftUpMax(len(b.items) - 1)
		return true
	}
	if key >= b.items[0].Key {
		return false
	}
	b.items[0] = Item[T]{Key: key, Value: v}
	b.siftDownMax(0)
	return true
}

// Items returns the collected items sorted by ascending key. The
// collector is consumed: it is empty afterwards.
func (b *KBest[T]) Items() []Item[T] {
	out := make([]Item[T], len(b.items))
	for i := len(b.items) - 1; i >= 0; i-- {
		out[i] = b.popMax()
	}
	return out
}

// AppendItems appends the collected items to dst sorted by ascending key
// and returns the extended slice. The collector is consumed: it is empty
// afterwards. Unlike Items, it lets callers reuse a scratch buffer.
func (b *KBest[T]) AppendItems(dst []Item[T]) []Item[T] {
	base := len(dst)
	n := len(b.items)
	if cap(dst)-base < n {
		grown := make([]Item[T], base, base+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+n]
	for i := n - 1; i >= 0; i-- {
		dst[base+i] = b.popMax()
	}
	return dst
}

// Reset empties the collector, retaining capacity.
func (b *KBest[T]) Reset() { b.items = b.items[:0] }

func (b *KBest[T]) popMax() Item[T] {
	top := b.items[0]
	last := len(b.items) - 1
	b.items[0] = b.items[last]
	b.items = b.items[:last]
	if last > 0 {
		b.siftDownMax(0)
	}
	return top
}

func (b *KBest[T]) siftUpMax(i int) {
	item := b.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if b.items[parent].Key >= item.Key {
			break
		}
		b.items[i] = b.items[parent]
		i = parent
	}
	b.items[i] = item
}

func (b *KBest[T]) siftDownMax(i int) {
	item := b.items[i]
	n := len(b.items)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && b.items[r].Key > b.items[child].Key {
			child = r
		}
		if item.Key >= b.items[child].Key {
			break
		}
		b.items[i] = b.items[child]
		i = child
	}
	b.items[i] = item
}

var inf = math.Inf(1)
