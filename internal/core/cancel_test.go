package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"allnn/internal/geom"
	"allnn/internal/mbrqt"
	"allnn/internal/storage"
)

// buildSlowTree builds an MBRQT whose store delays every read, so a full
// ANN run over it takes far longer than the cancellation deadlines below.
// The tiny pool plus NodeCacheDisabled in the options keep the traversal
// hitting the slow store instead of warm frames.
func buildSlowTree(t testing.TB, pts []geom.Point, readLatency time.Duration) (*mbrqt.Tree, *storage.BufferPool) {
	t.Helper()
	fs := storage.NewFaultStore(storage.NewMemStore(), storage.FaultConfig{})
	pool := storage.NewBufferPool(fs, 4)
	tree, err := mbrqt.BulkLoad(pool, pts, nil, mbrqt.Config{BucketCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	fs.SetConfig(storage.FaultConfig{ReadLatency: readLatency})
	return tree, pool
}

// TestCancelStopsRun cancels a slow query mid-flight — serially and with
// four workers — and checks that it returns promptly with
// context.Canceled and no pinned frames left behind.
func TestCancelStopsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := clusteredPoints(rng, 5000, 2, 100)
	tree, pool := buildSlowTree(t, pts, 2*time.Millisecond)

	for _, par := range []int{1, 4} {
		name := "serial"
		if par > 1 {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			timer := time.AfterFunc(20*time.Millisecond, cancel)
			defer timer.Stop()

			start := time.Now()
			_, _, err := CollectContext(ctx, tree, tree, Options{
				K:              1,
				ExcludeSelf:    true,
				Parallelism:    par,
				NodeCacheBytes: NodeCacheDisabled,
			})
			elapsed := time.Since(start)

			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// The bound is generous — what matters is that the run did not
			// grind through the multi-second full traversal.
			if elapsed > 1500*time.Millisecond {
				t.Fatalf("run took %v after a 20ms cancellation", elapsed)
			}
			storage.RequireNoPinnedFrames(t, pool)
		})
	}
}

// TestCancelDeadline runs the same slow query under context.WithTimeout
// and expects DeadlineExceeded — the annquery -timeout path.
func TestCancelDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := clusteredPoints(rng, 5000, 2, 100)
	tree, pool := buildSlowTree(t, pts, 2*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := CollectContext(ctx, tree, tree, Options{
		K:              1,
		ExcludeSelf:    true,
		NodeCacheBytes: NodeCacheDisabled,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("run took %v after a 25ms deadline", elapsed)
	}
	storage.RequireNoPinnedFrames(t, pool)
}

// TestCancelBeforeRun passes an already-cancelled context: the run must
// return immediately without touching the index.
func TestCancelBeforeRun(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := clusteredPoints(rng, 100, 2, 100)
	tree, pool := buildSlowTree(t, pts, 0)
	before := pool.Stats()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats, err := CollectContext(ctx, tree, tree, Options{K: 1, ExcludeSelf: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 0 {
		t.Fatalf("pre-cancelled run produced %d results", len(results))
	}
	if stats.NodesExpandedR != 0 || stats.NodesExpandedS != 0 {
		t.Fatalf("pre-cancelled run expanded %d/%d nodes", stats.NodesExpandedR, stats.NodesExpandedS)
	}
	if after := pool.Stats(); after.Reads != before.Reads {
		t.Fatalf("pre-cancelled run performed %d reads", after.Reads-before.Reads)
	}
	storage.RequireNoPinnedFrames(t, pool)
}

// TestCancelDistanceJoin cancels a slow distance self-join mid-flight
// and checks that it stops promptly, surfaces the context error, and
// releases every pinned frame.
func TestCancelDistanceJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts := clusteredPoints(rng, 5000, 2, 100)
	tree, pool := buildSlowTree(t, pts, 2*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	emitted := 0
	_, err := DistanceJoinContext(ctx, tree, tree, 5, true, func(Pair) error {
		emitted++
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("join took %v after a 25ms deadline", elapsed)
	}
	storage.RequireNoPinnedFrames(t, pool)

	// Pre-cancelled context: immediate error, no emission.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	emitted = 0
	if _, err := DistanceJoinContext(pre, tree, tree, 5, true, func(Pair) error {
		emitted++
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
	if emitted != 0 {
		t.Fatalf("pre-cancelled join emitted %d pairs", emitted)
	}
}

// TestCancelClosestPairs cancels a slow k-closest-pairs traversal and
// checks for a prompt, pair-free return with the context error.
func TestCancelClosestPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pts := clusteredPoints(rng, 5000, 2, 100)
	tree, pool := buildSlowTree(t, pts, 2*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	pairs, _, err := KClosestPairsContext(ctx, tree, tree, 8, true)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if len(pairs) != 0 {
		t.Fatalf("cancelled traversal returned %d pairs, want none", len(pairs))
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("traversal took %v after a 25ms deadline", elapsed)
	}
	storage.RequireNoPinnedFrames(t, pool)
}

// TestCancelReportCoversPartialWork checks RunReportContext under
// cancellation: the error surfaces and the report reflects only the work
// done before the abort (no negative or absurd counters, pins released).
func TestCancelReportCoversPartialWork(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := clusteredPoints(rng, 5000, 2, 100)
	tree, pool := buildSlowTree(t, pts, 2*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	rep, err := RunReportContext(ctx, tree, tree, Options{
		K:              1,
		ExcludeSelf:    true,
		NodeCacheBytes: NodeCacheDisabled,
	}, func(Result) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if rep.Timings.Wall <= 0 {
		t.Fatalf("report wall time %v, want > 0", rep.Timings.Wall)
	}
	storage.RequireNoPinnedFrames(t, pool)
}
