package core

import (
	"math/rand"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/mbrqt"
	"allnn/internal/storage"
)

// chaosPoolConfig keeps the retry machinery on but makes the backoff
// sleeps negligible so the chaos runs stay fast.
var chaosPoolConfig = storage.BufferPoolConfig{
	ReadRetries:     storage.DefaultReadRetries,
	RetryBackoff:    1,
	RetryBackoffMax: 10,
}

// buildChaosTree builds an MBRQT over a FaultStore-wrapped MemStore with
// faults disarmed, flushes every page to the store, and returns the
// pieces so the caller can arm faults afterwards.
func buildChaosTree(t testing.TB, pts []geom.Point, frames int) (*mbrqt.Tree, *storage.BufferPool, *storage.FaultStore) {
	t.Helper()
	fs := storage.NewFaultStore(storage.NewMemStore(), storage.FaultConfig{})
	pool := storage.NewBufferPoolWithConfig(fs, frames, chaosPoolConfig)
	tree, err := mbrqt.BulkLoad(pool, pts, nil, mbrqt.Config{BucketCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return tree, pool, fs
}

// requireChaosErr accepts the only outcomes allowed under fault
// injection: success, or an error classified as transient or corrupt.
// Anything else (an unclassified error, or — via the harness — a panic)
// fails the run.
func requireChaosErr(t *testing.T, err error) {
	t.Helper()
	if err != nil && !storage.IsTransient(err) && !storage.IsCorrupt(err) {
		t.Fatalf("fault injection surfaced an unclassified error: %v", err)
	}
}

// TestChaosPointQueriesUnderFaults runs 10k nearest-neighbor queries
// against a tree whose store fails 1% of reads. With retries on, almost
// all queries succeed; the rest must surface classified errors, and the
// pool must end every query with zero pinned frames.
func TestChaosPointQueriesUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := clusteredPoints(rng, 2000, 2, 100)
	// The slotted pages pack many nodes each, so the pool must be smaller
	// than the page count for queries to reach the (faulty) store at all.
	tree, pool, fs := buildChaosTree(t, pts, 4)
	if n := fs.NumPages(); n <= 4 {
		t.Fatalf("tree occupies only %d pages; pool would mask the store", n)
	}
	fs.SetConfig(storage.FaultConfig{Seed: 42, ReadErrProb: 0.01})

	const queries = 10000
	failed := 0
	for i := 0; i < queries; i++ {
		q := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		_, err := tree.NearestNeighbors(q, 3)
		requireChaosErr(t, err)
		if err != nil {
			failed++
		}
		storage.RequireNoPinnedFrames(t, pool)
		if t.Failed() {
			t.Fatalf("pinned frames leaked after query %d (err=%v)", i, err)
		}
	}
	// With 3 retries a 1% fault rate needs four consecutive failures to
	// surface, so nearly every query must have recovered.
	if failed > queries/100 {
		t.Fatalf("%d of %d queries failed; retries should have absorbed almost all faults", failed, queries)
	}
	if st := pool.Stats(); st.Retries == 0 {
		t.Fatal("no retries recorded despite 1% read fault rate")
	}
	t.Logf("chaos: %d/%d queries failed, %d retries, %d injected read errors",
		failed, queries, pool.Stats().Retries, fs.Stats().ReadErrors)
}

// TestChaosANNRunsUnderFaults drives full ANN executions — serial and
// parallel — over a faulty store. Runs either succeed or fail with a
// classified error; pins are released either way.
func TestChaosANNRunsUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := clusteredPoints(rng, 5000, 2, 100)
	// 8 frames: small enough that the ~25-page tree keeps missing, large
	// enough that four workers' concurrent pins never exhaust the pool.
	tree, pool, fs := buildChaosTree(t, pts, 8)
	if n := fs.NumPages(); n <= 8 {
		t.Fatalf("tree occupies only %d pages; pool would mask the store", n)
	}
	fs.SetConfig(storage.FaultConfig{Seed: 7, ReadErrProb: 0.01})

	for _, par := range []int{1, 4} {
		for run := 0; run < 12; run++ {
			opts := Options{
				K:              2,
				ExcludeSelf:    true,
				Parallelism:    par,
				NodeCacheBytes: NodeCacheDisabled,
			}
			results, _, err := Collect(tree, tree, opts)
			requireChaosErr(t, err)
			if err == nil && len(results) != len(pts) {
				t.Fatalf("parallelism=%d run %d: %d results, want %d", par, run, len(results), len(pts))
			}
			storage.RequireNoPinnedFrames(t, pool)
			if t.Failed() {
				t.Fatalf("parallelism=%d run %d leaked pins (err=%v)", par, run, err)
			}
		}
	}
	if st := pool.Stats(); st.Retries == 0 {
		t.Fatal("no retries recorded despite 1% read fault rate")
	}
}

// TestChaosCorruptPageSurfaces flips one bit of an on-store page and
// checks that a fresh pool (no resident frames masking the damage)
// reports ErrCorruptPage rather than wrong answers or a panic — and
// that flipping the same bit back fully restores the tree.
func TestChaosCorruptPageSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := clusteredPoints(rng, 500, 2, 100)
	tree, _, fs := buildChaosTree(t, pts, 64)

	// Damage a payload byte on every page in turn until a query trips
	// over one of them (the meta page is read at Open, tree pages during
	// traversal).
	const bit = 8*(storage.PageHeaderSize+100) + 3
	n := fs.NumPages()
	for pid := storage.PageID(0); pid < storage.PageID(n); pid++ {
		if err := fs.FlipBit(pid, bit); err != nil {
			t.Fatal(err)
		}
	}
	pool2 := storage.NewBufferPoolWithConfig(fs, 64, chaosPoolConfig)
	tree2, err := mbrqt.Open(pool2, tree.MetaPage())
	if err == nil {
		_, err = tree2.NearestNeighbors(geom.Point{50, 50}, 1)
	}
	if !storage.IsCorrupt(err) {
		t.Fatalf("corrupted store: err = %v, want ErrCorruptPage", err)
	}
	storage.RequireNoPinnedFrames(t, pool2)

	// Flip the same bits back: the store is byte-identical again and a
	// fresh pool must serve correct answers.
	for pid := storage.PageID(0); pid < storage.PageID(n); pid++ {
		if err := fs.FlipBit(pid, bit); err != nil {
			t.Fatal(err)
		}
	}
	pool3 := storage.NewBufferPoolWithConfig(fs, 64, chaosPoolConfig)
	tree3, err := mbrqt.Open(pool3, tree.MetaPage())
	if err != nil {
		t.Fatalf("restored store failed to open: %v", err)
	}
	res, err := tree3.NearestNeighbors(pts[0], 1)
	if err != nil {
		t.Fatalf("restored store failed to query: %v", err)
	}
	if len(res) != 1 || res[0].DistSq != 0 {
		t.Fatalf("restored store returned wrong answer: %+v", res)
	}
}
