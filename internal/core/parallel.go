package core

import (
	"sync"
	"sync/atomic"
)

// subtreesPerWorker is the frontier granularity: the serial prefix of the
// traversal is expanded until at least Parallelism*subtreesPerWorker
// subtrees exist (or no further expansion is possible), so that a skewed
// subtree cannot leave most workers idle for long.
const subtreesPerWorker = 4

// runParallel is the parallel form of Algorithm 3 (ANN-DFBI). The
// children of any I_R node carry independent candidate sets and bounds
// (each child LPQ inherits its bound at creation and never reads its
// siblings), so distinct subtrees of the query index can be drained
// concurrently with zero coordination beyond stats aggregation and emit
// serialisation.
//
// The root of I_R (and as many further levels as needed) is expanded
// serially into a frontier of LPQs whose concatenated depth-first
// traversal equals the serial traversal exactly; workers then claim
// frontier subtrees from an atomic cursor and run the unchanged serial
// dfbi over each. Every worker keeps a private Stats, merged at the end,
// so counter totals match a serial run. Emission is either unordered
// (mutex-guarded callback, fastest) or order-preserving (per-subtree
// buffers released in frontier order — byte-identical to serial output).
func (e *engine) runParallel(root *lpq, workers int) error {
	frontier, err := e.buildFrontier(root, workers*subtreesPerWorker)
	if err != nil {
		return err
	}
	n := len(frontier)
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}

	var (
		cursor   atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	// Emission strategy shared by the workers.
	var (
		emitMu sync.Mutex // unordered mode
		seq    *sequencer // ordered mode
	)
	if e.opts.OrderedEmit {
		seq = newSequencer(n, e.emit)
	}

	var statsMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wstats Stats
			we := &engine{ir: e.ir, is: e.is, opts: e.opts, stats: &wstats}
			for !stop.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					break
				}
				q := frontier[i]
				// The frontier LPQs were created by the serial prefix with
				// the main Stats; re-point them at this worker's private
				// counters before touching them concurrently.
				q.stats = &wstats
				if seq != nil {
					var buf []Result
					we.emit = func(r Result) error {
						buf = append(buf, r)
						return nil
					}
					if err := we.dfbi(q); err != nil {
						fail(err)
						break
					}
					if err := seq.finish(i, buf); err != nil {
						fail(err)
						break
					}
				} else {
					we.emit = func(r Result) error {
						emitMu.Lock()
						defer emitMu.Unlock()
						return e.emit(r)
					}
					if err := we.dfbi(q); err != nil {
						fail(err)
						break
					}
				}
			}
			statsMu.Lock()
			e.stats.Add(wstats)
			statsMu.Unlock()
		}()
	}
	wg.Wait()
	return firstErr
}

// buildFrontier expands the query index serially, level by level, until
// the frontier holds at least target LPQs or only object owners remain.
// Each node-owner LPQ is replaced in place by its children, so the
// concatenation of the frontier subtrees' depth-first traversals is
// exactly the serial traversal order.
func (e *engine) buildFrontier(root *lpq, target int) ([]*lpq, error) {
	frontier := []*lpq{root}
	for {
		expandable := 0
		for _, q := range frontier {
			if !q.owner.IsObject() {
				expandable++
			}
		}
		if expandable == 0 || len(frontier) >= target {
			return frontier, nil
		}
		next := make([]*lpq, 0, len(frontier)*2)
		for _, q := range frontier {
			if q.owner.IsObject() {
				next = append(next, q)
				continue
			}
			children, err := e.expandAndPrune(q)
			if err != nil {
				return nil, err
			}
			releaseLPQ(q)
			next = append(next, children...)
		}
		frontier = next
	}
}

// sequencer releases buffered subtree results in frontier order: when
// subtree i completes, its buffer is stored, and whichever completion
// fills the gap at the release cursor flushes every consecutive finished
// buffer. Workers therefore stream results with no dedicated emitter
// goroutine, and the user callback is never invoked concurrently.
type sequencer struct {
	mu   sync.Mutex
	emit func(Result) error
	bufs [][]Result
	done []bool
	next int
	err  error
}

func newSequencer(n int, emit func(Result) error) *sequencer {
	return &sequencer{emit: emit, bufs: make([][]Result, n), done: make([]bool, n)}
}

// finish records subtree i's buffered results and flushes every released
// buffer. It returns the first emit error (also on later calls, so every
// worker learns to stop).
func (s *sequencer) finish(i int, buf []Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bufs[i] = buf
	s.done[i] = true
	for s.err == nil && s.next < len(s.done) && s.done[s.next] {
		for _, r := range s.bufs[s.next] {
			if s.err = s.emit(r); s.err != nil {
				break
			}
		}
		s.bufs[s.next] = nil
		s.next++
	}
	return s.err
}
