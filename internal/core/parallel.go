package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"allnn/internal/obs"
)

// subtreesPerWorker is the frontier granularity: the serial prefix of the
// traversal is expanded until at least Parallelism*subtreesPerWorker
// subtrees exist (or no further expansion is possible), so that a skewed
// subtree cannot leave most workers idle for long.
const subtreesPerWorker = 4

// runParallel is the parallel form of Algorithm 3 (ANN-DFBI). The
// children of any I_R node carry independent candidate sets and bounds
// (each child LPQ inherits its bound at creation and never reads its
// siblings), so distinct subtrees of the query index can be drained
// concurrently with zero coordination beyond stats aggregation and emit
// serialisation.
//
// The root of I_R (and as many further levels as needed) is expanded
// serially into a frontier of LPQs whose concatenated depth-first
// traversal equals the serial traversal exactly; workers then claim
// frontier subtrees from an atomic cursor and run the unchanged serial
// dfbi over each. Every worker keeps a private Stats, merged at the end,
// so counter totals match a serial run. Emission is either unordered
// (mutex-guarded callback, fastest) or order-preserving (per-subtree
// buffers released in frontier order — byte-identical to serial output).
func (e *engine) runParallel(root *lpq, workers int) error {
	var tFrontier time.Time
	if e.obsOn() {
		tFrontier = time.Now()
	}
	frontier, err := e.buildFrontier(root, workers*subtreesPerWorker)
	if e.obsOn() {
		now := time.Now()
		e.tr.Complete("frontier", obs.TidMain, tFrontier, now, "subtrees", int64(len(frontier)))
		if e.tm != nil {
			e.tm.Frontier += now.Sub(tFrontier)
		}
	}
	if err != nil {
		return err
	}
	n := len(frontier)
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}

	// Per-subtree drain times feed the "engine.subtree_nanos" histogram —
	// the skew diagnostic for the frontier decomposition — when a metrics
	// registry is attached.
	var subtreeHist *obs.Histogram
	if e.opts.Registry != nil {
		subtreeHist = e.opts.Registry.Histogram("engine.subtree_nanos", obs.LatencyBuckets())
	}
	timed := e.tr != nil || subtreeHist != nil

	var (
		cursor   atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	// Emission strategy shared by the workers.
	var (
		emitMu sync.Mutex // unordered mode
		seq    *sequencer // ordered mode
	)
	if e.opts.OrderedEmit {
		seq = newSequencer(n, e.emit)
	}

	var statsMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wstats Stats
			wtid := obs.TidWorkerBase + int64(w)
			var wtm *Timings
			if e.tm != nil {
				wtm = &Timings{}
			}
			we := &engine{ir: e.ir, is: e.is, opts: e.opts, stats: &wstats,
				ctx: e.ctx, cancelled: e.cancelled,
				tr: e.tr, tid: wtid, tm: wtm}
			var wSpan obs.Span
			if e.tr != nil {
				e.tr.SetThreadName(wtid, fmt.Sprintf("worker-%d", w))
				wSpan = e.tr.Begin("worker", wtid)
			}
			for !stop.Load() {
				// A cancelled context stops the claim loop too, so workers
				// cannot pick up fresh subtrees after the deadline; dfbi's
				// own polling aborts the subtree already in progress.
				if err := we.checkCancel(); err != nil {
					fail(err)
					break
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					break
				}
				q := frontier[i]
				// The frontier LPQs were created by the serial prefix with
				// the main Stats; re-point them at this worker's private
				// counters before touching them concurrently.
				q.stats = &wstats
				var tSub time.Time
				if timed {
					tSub = time.Now()
				}
				if seq != nil {
					var buf []Result
					we.emit = func(r Result) error {
						buf = append(buf, r)
						return nil
					}
					if err := we.dfbi(q); err != nil {
						fail(err)
						break
					}
					if timed {
						finishSubtree(e.tr, subtreeHist, wtid, i, tSub)
					}
					if err := seq.finish(i, buf); err != nil {
						fail(err)
						break
					}
				} else {
					we.emit = func(r Result) error {
						emitMu.Lock()
						defer emitMu.Unlock()
						return e.emit(r)
					}
					if err := we.dfbi(q); err != nil {
						fail(err)
						break
					}
					if timed {
						finishSubtree(e.tr, subtreeHist, wtid, i, tSub)
					}
				}
			}
			wSpan.End()
			statsMu.Lock()
			e.stats.Add(wstats)
			if wtm != nil {
				e.tm.addStages(*wtm)
			}
			statsMu.Unlock()
		}(w)
	}
	wg.Wait()
	return firstErr
}

// finishSubtree records one frontier subtree's drain: a "subtree" span on
// the worker's lane (nesting the expand/filter/gather spans the drain
// emitted) and an observation in the subtree-duration histogram.
func finishSubtree(tr *obs.Tracer, hist *obs.Histogram, tid int64, i int, start time.Time) {
	end := time.Now()
	tr.Complete("subtree", tid, start, end, "subtree", int64(i))
	hist.Observe(float64(end.Sub(start).Nanoseconds()))
}

// buildFrontier expands the query index serially, level by level, until
// the frontier holds at least target LPQs or only object owners remain.
// Each node-owner LPQ is replaced in place by its children, so the
// concatenation of the frontier subtrees' depth-first traversals is
// exactly the serial traversal order.
func (e *engine) buildFrontier(root *lpq, target int) ([]*lpq, error) {
	frontier := []*lpq{root}
	for {
		if err := e.checkCancel(); err != nil {
			return nil, err
		}
		expandable := 0
		for _, q := range frontier {
			if !q.owner.IsObject() {
				expandable++
			}
		}
		if expandable == 0 || len(frontier) >= target {
			return frontier, nil
		}
		next := make([]*lpq, 0, len(frontier)*2)
		for _, q := range frontier {
			if q.owner.IsObject() {
				next = append(next, q)
				continue
			}
			children, err := e.expandAndPrune(q)
			if err != nil {
				return nil, err
			}
			releaseLPQ(q)
			next = append(next, children...)
		}
		frontier = next
	}
}

// sequencer releases buffered subtree results in frontier order: when
// subtree i completes, its buffer is stored, and whichever completion
// fills the gap at the release cursor flushes every consecutive finished
// buffer. Workers therefore stream results with no dedicated emitter
// goroutine, and the user callback is never invoked concurrently.
type sequencer struct {
	mu   sync.Mutex
	emit func(Result) error
	bufs [][]Result
	done []bool
	next int
	err  error
}

func newSequencer(n int, emit func(Result) error) *sequencer {
	return &sequencer{emit: emit, bufs: make([][]Result, n), done: make([]bool, n)}
}

// finish records subtree i's buffered results and flushes every released
// buffer. It returns the first emit error (also on later calls, so every
// worker learns to stop).
func (s *sequencer) finish(i int, buf []Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bufs[i] = buf
	s.done[i] = true
	for s.err == nil && s.next < len(s.done) && s.done[s.next] {
		for _, r := range s.bufs[s.next] {
			if s.err = s.emit(r); s.err != nil {
				break
			}
		}
		s.bufs[s.next] = nil
		s.next++
	}
	return s.err
}
