package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"allnn/internal/obs"
)

// subtreesPerWorker is the initial frontier granularity: the serial
// prefix of the traversal is expanded until at least
// Parallelism*subtreesPerWorker subtrees exist (or no further expansion
// is possible). The work-stealing scheduler splits stragglers
// dynamically, so the frontier only needs to be wide enough to give
// every worker a starting block.
const subtreesPerWorker = 4

// splitDivisor and minSplitCount parameterise the dynamic-split
// heuristic: a claimed node-owner task is re-expanded into child tasks
// instead of drained in place when its subtree holds more than
// max(total/(workers*splitDivisor), minSplitCount) points. The divisor
// keeps the largest schedulable unit at a fraction of a fair share, so a
// skewed frontier cannot leave one worker draining a giant subtree while
// the rest idle; the floor stops the scheduler from shredding small
// subtrees into tasks that cost more to steal than to run.
const (
	splitDivisor  = 8
	minSplitCount = 64
)

// runParallel is the parallel form of Algorithm 3 (ANN-DFBI). The
// children of any I_R node carry independent candidate sets and bounds
// (each child LPQ inherits its bound at creation and never reads its
// siblings), so distinct subtrees of the query index can be drained
// concurrently with zero coordination beyond stats aggregation and emit
// serialisation.
//
// The root of I_R (and as many further levels as needed) is expanded
// serially into a frontier of LPQs whose concatenated depth-first
// traversal equals the serial traversal exactly. The frontier seeds a
// work-stealing scheduler: each worker owns a deque of subtree tasks,
// pops locally from the tail (LIFO — depth-first order, warm caches) and
// steals from another worker's head (FIFO — the oldest, typically
// largest subtree) when its own deque runs dry. A claimed task whose
// subtree exceeds the split threshold is re-expanded into child tasks —
// exactly the expandAndPrune call the serial traversal would make, so a
// split wastes no work and preserves Stats parity by construction.
//
// Every worker keeps a private Stats, merged at the end, so counter
// totals match a serial run. Emission is either unordered (mutex-guarded
// callback, fastest) or order-preserving through an emit tree whose
// depth-first leaf order is the serial traversal order even as splits
// grow it — byte-identical to serial output.
func (e *engine) runParallel(root *lpq, workers int) error {
	totalCount := uint64(root.owner.Count)
	var tFrontier time.Time
	if e.obsOn() {
		tFrontier = time.Now()
	}
	frontier, err := e.buildFrontier(root, workers*subtreesPerWorker)
	if e.obsOn() {
		now := time.Now()
		e.tr.Complete("frontier", obs.TidMain, tFrontier, now, "subtrees", int64(len(frontier)))
		if e.tm != nil {
			e.tm.Frontier += now.Sub(tFrontier)
		}
	}
	if err != nil {
		return err
	}
	n := len(frontier)
	if n == 0 {
		return nil
	}

	threshold := totalCount / uint64(workers*splitDivisor)
	if threshold < minSplitCount {
		threshold = minSplitCount
	}

	// Per-subtree drain times feed the "engine.subtree_nanos" histogram —
	// the skew diagnostic for the decomposition — when a metrics registry
	// is attached.
	var subtreeHist *obs.Histogram
	if e.opts.Registry != nil {
		subtreeHist = e.opts.Registry.Histogram("engine.subtree_nanos", obs.LatencyBuckets())
	}
	timed := e.tr != nil || subtreeHist != nil

	s := newScheduler(workers, threshold)

	// Emission strategy shared by the workers.
	var (
		emitMu sync.Mutex // unordered mode
		tree   *emitTree  // ordered mode
	)
	var rootSlots []*emitSlot
	if e.opts.OrderedEmit {
		tree, rootSlots = newEmitTree(e.emit, n)
	}

	// Seed the deques: worker w starts with a contiguous block of the
	// depth-first frontier, pushed in reverse so its LIFO pops drain the
	// block in depth-first order (thieves take the block's tail first).
	s.pending.Store(int64(n))
	s.queued.Store(int64(n))
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		for i := hi - 1; i >= lo; i-- {
			t := &wsTask{q: frontier[i], seq: int64(i)}
			if tree != nil {
				t.slot = rootSlots[i]
			}
			s.deques[w].push(t)
		}
	}
	s.nextSeq.Store(int64(n))

	var statsMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wstats Stats
			wtid := obs.TidWorkerBase + int64(w)
			var wtm *Timings
			if e.tm != nil {
				wtm = &Timings{}
			}
			we := &engine{ir: e.ir, is: e.is, opts: e.opts, stats: &wstats,
				shrink: e.shrink,
				ctx:    e.ctx, cancelled: e.cancelled,
				tr: e.tr, tid: wtid, tm: wtm}
			if e.memoS != nil {
				we.memoS = new(nodeMemo)
			}
			var wSpan obs.Span
			if e.tr != nil {
				e.tr.SetThreadName(wtid, fmt.Sprintf("worker-%d", w))
				wSpan = e.tr.Begin("worker", wtid)
			}
			for !s.stop.Load() {
				// A cancelled context stops the claim loop too, so workers
				// cannot pick up fresh subtrees after the deadline; dfbi's
				// own polling aborts the subtree already in progress.
				if err := we.checkCancel(); err != nil {
					s.fail(err)
					break
				}
				t := s.deques[w].pop()
				if t == nil {
					var victim int
					if t, victim = s.stealFor(w); t != nil {
						we.sched.Steals++
						if e.tr != nil {
							e.tr.Instant("steal", wtid, "victim", int64(victim))
						}
					}
				}
				if t == nil {
					if s.pending.Load() == 0 {
						break
					}
					s.idleWait()
					continue
				}
				s.queued.Add(-1)

				q := t.q
				// Task LPQs were created under another goroutine's Stats;
				// re-point at this worker's private counters before
				// touching them concurrently.
				q.stats = &wstats

				if !q.owner.IsObject() && uint64(q.owner.Count) > s.threshold {
					// Straggler: split instead of draining in place.
					var tSplit time.Time
					if e.tr != nil {
						tSplit = time.Now()
					}
					children, err := we.expandAndPrune(q)
					if err != nil {
						s.fail(err)
						s.retire()
						break
					}
					we.putLPQ(q)
					we.sched.Splits++
					if e.tr != nil {
						e.tr.Complete("split", wtid, tSplit, time.Now(), "children", int64(len(children)))
					}
					if len(children) == 0 {
						// Nothing below survived pruning; the slot is done.
						if tree != nil {
							if err := tree.finish(t.slot, nil); err != nil {
								s.fail(err)
							}
						}
						s.retire()
						continue
					}
					var slots []*emitSlot
					if tree != nil {
						slots = tree.split(t.slot, len(children))
					}
					base := s.nextSeq.Add(int64(len(children))) - int64(len(children))
					for i := len(children) - 1; i >= 0; i-- {
						ct := &wsTask{q: children[i], seq: base + int64(i)}
						if tree != nil {
							ct.slot = slots[i]
						}
						s.deques[w].push(ct)
					}
					// Children before retiring the parent, so pending can
					// only reach zero when the whole tree is drained.
					s.pending.Add(int64(len(children)))
					s.queued.Add(int64(len(children)))
					s.wake()
					s.retire()
					continue
				}

				var tSub time.Time
				if timed {
					tSub = time.Now()
				}
				if tree != nil {
					var buf []Result
					we.emit = func(r Result) error {
						buf = append(buf, r)
						return nil
					}
					if err := we.dfbi(q); err != nil {
						s.fail(err)
						s.retire()
						break
					}
					if timed {
						finishSubtree(e.tr, subtreeHist, wtid, t.seq, tSub)
					}
					if err := tree.finish(t.slot, buf); err != nil {
						s.fail(err)
						s.retire()
						break
					}
				} else {
					we.emit = func(r Result) error {
						emitMu.Lock()
						defer emitMu.Unlock()
						return e.emit(r)
					}
					if err := we.dfbi(q); err != nil {
						s.fail(err)
						s.retire()
						break
					}
					if timed {
						finishSubtree(e.tr, subtreeHist, wtid, t.seq, tSub)
					}
				}
				we.sched.Tasks++
				s.retire()
			}
			wSpan.End()
			statsMu.Lock()
			e.stats.Add(wstats)
			e.sched.Add(we.sched)
			if wtm != nil {
				e.tm.addStages(*wtm)
			}
			statsMu.Unlock()
		}(w)
	}
	wg.Wait()
	return s.firstErr()
}

// finishSubtree records one subtree task's drain: a "subtree" span on the
// worker's lane (nesting the expand/filter/gather spans the drain
// emitted) and an observation in the subtree-duration histogram.
func finishSubtree(tr *obs.Tracer, hist *obs.Histogram, tid int64, seq int64, start time.Time) {
	end := time.Now()
	tr.Complete("subtree", tid, start, end, "subtree", seq)
	hist.Observe(float64(end.Sub(start).Nanoseconds()))
}

// buildFrontier expands the query index serially, level by level, until
// the frontier holds at least target LPQs or only object owners remain.
// Each node-owner LPQ is replaced in place by its children, so the
// concatenation of the frontier subtrees' depth-first traversals is
// exactly the serial traversal order.
func (e *engine) buildFrontier(root *lpq, target int) ([]*lpq, error) {
	frontier := []*lpq{root}
	for {
		if err := e.checkCancel(); err != nil {
			return nil, err
		}
		expandable := 0
		for _, q := range frontier {
			if !q.owner.IsObject() {
				expandable++
			}
		}
		if expandable == 0 || len(frontier) >= target {
			return frontier, nil
		}
		next := make([]*lpq, 0, len(frontier)*2)
		for _, q := range frontier {
			if q.owner.IsObject() {
				next = append(next, q)
				continue
			}
			children, err := e.expandAndPrune(q)
			if err != nil {
				return nil, err
			}
			e.putLPQ(q)
			next = append(next, children...)
		}
		frontier = next
	}
}

// wsTask is one unit of schedulable work: an independent LPQ subtree,
// its slot in the ordered-emit tree (nil in unordered mode), and a
// sequence number for tracing.
type wsTask struct {
	q    *lpq
	slot *emitSlot
	seq  int64
}

// wsDeque is one worker's task queue. The owner pushes and pops at the
// tail (LIFO); thieves take from the head (FIFO). A mutex suffices: all
// operations are O(1), the owner only locks when it actually has or
// wants work, and idle workers are kept off the locks by the scheduler's
// queued counter.
type wsDeque struct {
	mu    sync.Mutex
	head  int
	tasks []*wsTask
}

func (d *wsDeque) push(t *wsTask) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *wsDeque) pop() *wsTask {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if d.head >= n {
		return nil
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	if d.head >= n-1 {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return t
}

func (d *wsDeque) steal() *wsTask {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.tasks) {
		return nil
	}
	t := d.tasks[d.head]
	d.tasks[d.head] = nil
	d.head++
	return t
}

// scheduler coordinates the worker deques: it tracks how many tasks are
// outstanding (pending) and how many of those sit unclaimed in deques
// (queued), parks workers that find every deque empty, and records the
// first error. The invariant that makes the idle wait safe: a task is
// retired only after any children it spawned were pushed, so
// pending > 0 with queued == 0 implies some worker is still executing —
// and that worker will either push (wake) or retire (wake on zero).
type scheduler struct {
	threshold uint64
	deques    []wsDeque
	pending   atomic.Int64
	queued    atomic.Int64
	nextSeq   atomic.Int64
	stop      atomic.Bool

	mu   sync.Mutex // guards cond
	cond *sync.Cond

	errMu sync.Mutex
	err   error
}

func newScheduler(workers int, threshold uint64) *scheduler {
	s := &scheduler{threshold: threshold, deques: make([]wsDeque, workers)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// stealFor scans the other deques (round-robin from w+1) and takes the
// head of the first non-empty one, returning the task and the victim.
func (s *scheduler) stealFor(w int) (*wsTask, int) {
	n := len(s.deques)
	for i := 1; i < n; i++ {
		v := (w + i) % n
		if t := s.deques[v].steal(); t != nil {
			return t, v
		}
	}
	return nil, -1
}

// idleWait parks the worker until work appears, everything is drained,
// or the run stops. Re-checks under the lock, so a wake between the
// caller's empty scan and the park is never lost.
func (s *scheduler) idleWait() {
	s.mu.Lock()
	for s.queued.Load() <= 0 && s.pending.Load() > 0 && !s.stop.Load() {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// wake signals parked workers after tasks were pushed.
func (s *scheduler) wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// retire marks one claimed task finished; the last retire wakes everyone
// so idle workers can observe completion and exit.
func (s *scheduler) retire() {
	if s.pending.Add(-1) == 0 {
		s.wake()
	}
}

// fail records the first error, stops the run and wakes parked workers.
func (s *scheduler) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.stop.Store(true)
	s.wake()
}

func (s *scheduler) firstErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// emitSlot is one node of the ordered-emit tree: a leaf holds the
// buffered results of one subtree task; an internal node was a task that
// split, and completes when its children do. The depth-first order of
// the tree's leaves is the serial traversal order at every moment —
// the frontier is depth-first ordered, and a split replaces a leaf by
// its depth-first-ordered children in place.
type emitSlot struct {
	parent   *emitSlot
	children []*emitSlot
	next     int // first not-yet-flushed child
	done     bool
	buf      []Result
}

// emitTree releases buffered subtree results in depth-first leaf order:
// a cursor walks the tree flushing every consecutive completed leaf and
// stops at the first pending one. Workers stream results with no
// dedicated emitter goroutine, the user callback is never invoked
// concurrently, and — unlike a flat sequencer — the order survives
// dynamic splits, which simply deepen the tree under the split slot.
type emitTree struct {
	mu   sync.Mutex
	emit func(Result) error
	root *emitSlot
	err  error
}

// newEmitTree builds the tree over the n frontier subtrees and returns
// their leaf slots.
func newEmitTree(emit func(Result) error, n int) (*emitTree, []*emitSlot) {
	t := &emitTree{emit: emit, root: &emitSlot{}}
	slots := make([]*emitSlot, n)
	for i := range slots {
		slots[i] = &emitSlot{parent: t.root}
	}
	t.root.children = slots
	return t, slots
}

// split turns leaf s into an internal node with n fresh leaves. Called
// by the worker that owns s, before any finish on it; n >= 1.
func (t *emitTree) split(s *emitSlot, n int) []*emitSlot {
	t.mu.Lock()
	defer t.mu.Unlock()
	kids := make([]*emitSlot, n)
	for i := range kids {
		kids[i] = &emitSlot{parent: s}
	}
	s.children = kids
	return kids
}

// finish records a completed leaf's buffered results and flushes every
// leaf the cursor can now pass. It returns the first emit error (also on
// later calls, so every worker learns to stop).
func (t *emitTree) finish(s *emitSlot, buf []Result) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.buf = buf
	s.done = true
	t.advance()
	return t.err
}

// advance walks the depth-first cursor from the root, flushing completed
// leaves until it hits a pending one. O(depth) re-descent per call;
// splits are rare and the tree shallow, so simplicity wins over a cached
// cursor.
func (t *emitTree) advance() {
	cur := t.root
	for t.err == nil {
		if cur.children != nil {
			if cur.next < len(cur.children) {
				cur = cur.children[cur.next]
				continue
			}
			// Internal node exhausted: pop to its parent.
			if cur.parent == nil {
				return
			}
			cur = cur.parent
			cur.next++
			continue
		}
		if !cur.done {
			return // cursor blocked on a pending subtree
		}
		for _, r := range cur.buf {
			if t.err = t.emit(r); t.err != nil {
				return
			}
		}
		cur.buf = nil
		if cur.parent == nil {
			return
		}
		cur = cur.parent
		cur.next++
	}
}
