package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/bruteforce"
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/mbrqt"
	"allnn/internal/rstar"
	"allnn/internal/storage"
)

const tol = 1e-9

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMemStore(), frames)
}

func uniformPoints(rng *rand.Rand, n, dim int, lim float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * lim
		}
		pts[i] = p
	}
	return pts
}

func clusteredPoints(rng *rand.Rand, n, dim int, lim float64) []geom.Point {
	const clusters = 6
	centers := uniformPoints(rng, clusters, dim, lim)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*lim/40
		}
		pts[i] = p
	}
	return pts
}

// buildMBRQT / buildRStar build an index over pts in a fresh pool.
func buildMBRQT(t testing.TB, pts []geom.Point) index.Tree {
	t.Helper()
	tree, err := mbrqt.BulkLoad(newPool(4096), pts, nil, mbrqt.Config{BucketCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func buildRStar(t testing.TB, pts []geom.Point) index.Tree {
	t.Helper()
	tree, err := rstar.BulkLoad(newPool(4096), pts, nil, rstar.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// checkAgainstBrute runs the engine with opts and compares the neighbor
// distances of every query object against the brute-force reference.
func checkAgainstBrute(t *testing.T, ir, is index.Tree, rPts, sPts []geom.Point, opts Options) Stats {
	t.Helper()
	got, stats, err := Collect(ir, is, opts)
	if err != nil {
		t.Fatal(err)
	}
	k := opts.K
	if k <= 0 {
		k = 1
	}
	want := bruteforce.AkNN(bruteforce.FromPoints(rPts), bruteforce.FromPoints(sPts), k, opts.ExcludeSelf)
	if len(got) != len(want) {
		t.Fatalf("engine returned %d results, want %d", len(got), len(want))
	}
	sort.Slice(got, func(a, b int) bool { return got[a].Object < got[b].Object })
	for i := range want {
		g, w := got[i], want[i]
		if g.Object != w.Object {
			t.Fatalf("result %d is for object %d, want %d", i, g.Object, w.Object)
		}
		if len(g.Neighbors) != len(w.Neighbors) {
			t.Fatalf("object %d has %d neighbors, want %d", g.Object, len(g.Neighbors), len(w.Neighbors))
		}
		for n := range w.Neighbors {
			// Distances must match exactly up to float tolerance (the ids
			// may differ under ties).
			if math.Abs(g.Neighbors[n].Dist-w.Neighbors[n].Dist) > tol {
				t.Fatalf("object %d neighbor %d dist %g, want %g",
					g.Object, n, g.Neighbors[n].Dist, w.Neighbors[n].Dist)
			}
		}
	}
	return stats
}

func TestANNBothIndexesBothMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	rPts := clusteredPoints(rng, 400, 2, 100)
	sPts := uniformPoints(rng, 300, 2, 100)
	builders := map[string]func(testing.TB, []geom.Point) index.Tree{
		"mbrqt": buildMBRQT,
		"rstar": buildRStar,
	}
	for name, build := range builders {
		for _, metric := range []Metric{NXNDist, MaxMaxDist} {
			t.Run(name+"/"+metric.String(), func(t *testing.T) {
				ir := build(t, rPts)
				is := build(t, sPts)
				checkAgainstBrute(t, ir, is, rPts, sPts, Options{Metric: metric})
			})
		}
	}
}

func TestANNMixedIndexes(t *testing.T) {
	// The engine must work with IR and IS of different index types.
	rng := rand.New(rand.NewSource(55))
	rPts := uniformPoints(rng, 200, 3, 50)
	sPts := clusteredPoints(rng, 250, 3, 50)
	ir := buildMBRQT(t, rPts)
	is := buildRStar(t, sPts)
	checkAgainstBrute(t, ir, is, rPts, sPts, Options{})
}

func TestAkNNVariousK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rPts := uniformPoints(rng, 150, 2, 100)
	sPts := clusteredPoints(rng, 400, 2, 100)
	ir := buildMBRQT(t, rPts)
	is := buildMBRQT(t, sPts)
	for _, k := range []int{1, 2, 5, 10, 50} {
		for _, kb := range []KBound{KBoundKth, KBoundMaxAll} {
			checkAgainstBrute(t, ir, is, rPts, sPts, Options{K: k, KBound: kb})
		}
	}
}

func TestAkNNLargerKThanDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	rPts := uniformPoints(rng, 30, 2, 10)
	sPts := uniformPoints(rng, 10, 2, 10)
	ir := buildMBRQT(t, rPts)
	is := buildMBRQT(t, sPts)
	checkAgainstBrute(t, ir, is, rPts, sPts, Options{K: 25})
}

func TestSelfJoinExcludeSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := clusteredPoints(rng, 300, 2, 100)
	for _, k := range []int{1, 5} {
		ir := buildMBRQT(t, pts)
		is := buildMBRQT(t, pts)
		stats := checkAgainstBrute(t, ir, is, pts, pts, Options{K: k, ExcludeSelf: true})
		if stats.Results != 300 {
			t.Fatalf("Results stat = %d, want 300", stats.Results)
		}
	}
}

func TestSelfJoinWithDuplicatePoints(t *testing.T) {
	// Duplicate coordinates: excluding "self" must still report the
	// coincident twin at distance zero.
	pts := []geom.Point{{1, 1}, {1, 1}, {5, 5}, {9, 9}}
	ir := buildMBRQT(t, pts)
	is := buildMBRQT(t, pts)
	got, _, err := Collect(ir, is, Options{ExcludeSelf: true})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(a, b int) bool { return got[a].Object < got[b].Object })
	if got[0].Neighbors[0].Dist != 0 || got[1].Neighbors[0].Dist != 0 {
		t.Fatalf("coincident twins should be distance 0: %+v %+v", got[0], got[1])
	}
	if got[0].Neighbors[0].Object == 0 {
		t.Fatal("object 0 returned itself as neighbor")
	}
}

func TestTraversalsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rPts := uniformPoints(rng, 200, 2, 100)
	sPts := uniformPoints(rng, 200, 2, 100)
	ir := buildMBRQT(t, rPts)
	is := buildMBRQT(t, sPts)
	for _, tr := range []Traversal{DepthFirst, BreadthFirst} {
		checkAgainstBrute(t, ir, is, rPts, sPts, Options{Traversal: tr, K: 3})
	}
}

func TestHighDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	rPts := uniformPoints(rng, 150, 10, 1)
	sPts := uniformPoints(rng, 150, 10, 1)
	ir := buildMBRQT(t, rPts)
	is := buildMBRQT(t, sPts)
	checkAgainstBrute(t, ir, is, rPts, sPts, Options{K: 3})
}

func TestOneDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rPts := uniformPoints(rng, 100, 1, 1000)
	sPts := uniformPoints(rng, 80, 1, 1000)
	ir := buildRStar(t, rPts)
	is := buildRStar(t, sPts)
	checkAgainstBrute(t, ir, is, rPts, sPts, Options{})
}

func TestTinyDatasets(t *testing.T) {
	cases := [][2][]geom.Point{
		{{{1, 1}}, {{2, 2}}},
		{{{1, 1}, {3, 3}}, {{2, 2}}},
		{{{1, 1}}, {{2, 2}, {0, 0}, {5, 5}}},
	}
	for _, c := range cases {
		ir := buildMBRQT(t, c[0])
		is := buildMBRQT(t, c[1])
		checkAgainstBrute(t, ir, is, c[0], c[1], Options{})
	}
}

func TestDimensionalityMismatchFails(t *testing.T) {
	ir := buildMBRQT(t, []geom.Point{{1, 1}})
	is := buildMBRQT(t, []geom.Point{{1, 1, 1}})
	if _, _, err := Collect(ir, is, Options{}); err == nil {
		t.Fatal("expected error for mismatched dimensionality")
	}
}

func TestNXNDistPrunesMoreThanMaxMax(t *testing.T) {
	// The paper's headline claim at the work-counter level: with the same
	// indexes and workload, NXNDIST must do fewer distance computations
	// and enqueue fewer entries than MAXMAXDIST.
	rng := rand.New(rand.NewSource(2))
	pts := clusteredPoints(rng, 2000, 2, 1000)
	ir := buildMBRQT(t, pts)
	is := buildMBRQT(t, pts)
	_, nxn, err := Collect(ir, is, Options{Metric: NXNDist, ExcludeSelf: true})
	if err != nil {
		t.Fatal(err)
	}
	_, mm, err := Collect(ir, is, Options{Metric: MaxMaxDist, ExcludeSelf: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("NXNDIST: dist=%d enq=%d; MAXMAX: dist=%d enq=%d",
		nxn.DistanceCalcs, nxn.Enqueued, mm.DistanceCalcs, mm.Enqueued)
	if nxn.DistanceCalcs >= mm.DistanceCalcs {
		t.Errorf("NXNDIST did %d distance calcs, MAXMAXDIST %d — expected strictly fewer",
			nxn.DistanceCalcs, mm.DistanceCalcs)
	}
	if nxn.Enqueued >= mm.Enqueued {
		t.Errorf("NXNDIST enqueued %d, MAXMAXDIST %d — expected strictly fewer",
			nxn.Enqueued, mm.Enqueued)
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := uniformPoints(rng, 300, 2, 100)
	ir := buildMBRQT(t, pts)
	is := buildMBRQT(t, pts)
	_, stats, err := Collect(ir, is, Options{ExcludeSelf: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Results != 300 {
		t.Errorf("Results = %d, want 300", stats.Results)
	}
	if stats.DistanceCalcs == 0 || stats.LPQsCreated == 0 || stats.Enqueued == 0 {
		t.Errorf("work counters not populated: %+v", stats)
	}
	if stats.NodesExpandedR == 0 || stats.NodesExpandedS == 0 {
		t.Errorf("node expansion counters not populated: %+v", stats)
	}
}

func TestEmptyTargetIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rPts := uniformPoints(rng, 50, 2, 10)
	ir := buildMBRQT(t, rPts)
	pool := newPool(64)
	empty, err := mbrqt.New(pool, geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10}), mbrqt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Collect(ir, empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("expected 50 empty results, got %d", len(got))
	}
	for _, r := range got {
		if len(r.Neighbors) != 0 {
			t.Fatalf("object %d has neighbors from an empty index", r.Object)
		}
	}
}

func TestEmptyQueryIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sPts := uniformPoints(rng, 50, 2, 10)
	is := buildMBRQT(t, sPts)
	pool := newPool(64)
	empty, err := mbrqt.New(pool, geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10}), mbrqt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Collect(empty, is, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected no results, got %d", len(got))
	}
}

func TestRandomizedSweep(t *testing.T) {
	// Randomised cross-validation across sizes, dims, k, metrics, and
	// index combinations.
	rng := rand.New(rand.NewSource(1234))
	for iter := 0; iter < 12; iter++ {
		dim := 1 + rng.Intn(4)
		nr := 1 + rng.Intn(150)
		ns := 1 + rng.Intn(150)
		k := 1 + rng.Intn(4)
		rPts := uniformPoints(rng, nr, dim, 100)
		sPts := clusteredPoints(rng, ns, dim, 100)
		var ir, is index.Tree
		if rng.Intn(2) == 0 {
			ir = buildMBRQT(t, rPts)
		} else {
			ir = buildRStar(t, rPts)
		}
		if rng.Intn(2) == 0 {
			is = buildMBRQT(t, sPts)
		} else {
			is = buildRStar(t, sPts)
		}
		metric := Metric(rng.Intn(2))
		checkAgainstBrute(t, ir, is, rPts, sPts, Options{K: k, Metric: metric})
	}
}
