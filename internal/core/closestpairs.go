package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/pq"
)

// KClosestPairs returns the k closest pairs (r, s), r from ir and s from
// is, ascending by distance — the k-closest-pair query of Corral et al.
// (SIGMOD 2000), the line of work the paper's MINMAXDIST discussion
// refers to. The traversal is best-first over subtree pairs ordered by
// MINMINDIST, with MAXMAXDIST-based upper bounds pruning pairs that
// cannot reach the top k.
//
// When excludeSelf is set, pairs with equal ObjectIDs are skipped, and
// for a self-join each unordered pair appears twice (once per direction),
// matching the two-dataset semantics of the operation.
func KClosestPairs(ir, is index.Tree, k int, excludeSelf bool) ([]Pair, Stats, error) {
	return KClosestPairsContext(context.Background(), ir, is, k, excludeSelf)
}

// KClosestPairsContext is KClosestPairs with cancellation: when ctx is
// cancelled or its deadline passes, the best-first traversal stops at
// the next frontier pop and returns ctx.Err() with no results (partial
// top-k output would be misleading — the pairs found so far need not be
// the globally closest). A context that can never be cancelled costs
// nothing — see RunContext.
func KClosestPairsContext(ctx context.Context, ir, is index.Tree, k int, excludeSelf bool) ([]Pair, Stats, error) {
	var stats Stats
	if ir.Dim() != is.Dim() {
		return nil, stats, fmt.Errorf("core: index dimensionality mismatch: %d vs %d", ir.Dim(), is.Dim())
	}
	if k < 1 {
		return nil, stats, fmt.Errorf("core: k must be at least 1, got %d", k)
	}
	cancelled, disarm, err := armCancel(ctx)
	if err != nil {
		return nil, stats, err
	}
	defer disarm()
	rootR, err := ir.Root()
	if err != nil {
		return nil, stats, err
	}
	rootS, err := is.Root()
	if err != nil {
		return nil, stats, err
	}
	if rootR.Count == 0 || rootS.Count == 0 {
		return nil, stats, nil
	}

	type nodePair struct {
		r, s *index.Entry
	}
	e := &engine{ir: ir, is: is, stats: &stats, ctx: ctx, cancelled: cancelled}

	// frontier: subtree pairs by ascending MINMINDIST. best: the k
	// closest object pairs so far (max-heap by distance).
	frontier := pq.NewHeap[nodePair](64)
	best := pq.NewKBest[Pair](k)
	push := func(r, s *index.Entry) {
		e.stats.DistanceCalcs++
		mind := geom.MinDistSq(r.MBR, s.MBR)
		if mind >= best.Worst() {
			e.stats.PrunedOnProbe++
			return
		}
		frontier.Push(mind, nodePair{r: r, s: s})
	}
	push(&rootR, &rootS)

	for frontier.Len() > 0 {
		if err := e.checkCancel(); err != nil {
			return nil, stats, err
		}
		item, _ := frontier.Pop()
		if item.Key >= best.Worst() {
			break // every remaining pair is at least this far apart
		}
		p := item.Value
		if p.r.IsObject() && p.s.IsObject() {
			if excludeSelf && p.r.Object == p.s.Object {
				continue
			}
			e.stats.DistanceCalcs++
			d := geom.DistSq(p.r.Point, p.s.Point)
			if d < best.Worst() {
				best.Add(d, Pair{
					R: p.r.Object, S: p.s.Object,
					RPoint: p.r.Point, SPoint: p.s.Point,
					Dist: math.Sqrt(d),
				})
			}
			continue
		}
		// Expand the side with the larger margin (objects cannot expand).
		expandR := !p.r.IsObject() && (p.s.IsObject() || p.r.MBR.Margin() >= p.s.MBR.Margin())
		if expandR {
			children, err := e.ir.Expand(p.r)
			if err != nil {
				return nil, stats, err
			}
			e.stats.NodesExpandedR++
			for i := range children {
				push(&children[i], p.s)
			}
		} else {
			children, err := e.is.Expand(p.s)
			if err != nil {
				return nil, stats, err
			}
			e.stats.NodesExpandedS++
			for i := range children {
				push(p.r, &children[i])
			}
		}
	}

	items := best.Items()
	out := make([]Pair, len(items))
	for i, it := range items {
		out[i] = it.Value
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	stats.Results = uint64(len(out))
	return out, stats, nil
}
