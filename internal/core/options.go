// Package core implements the paper's primary contribution: the MBA
// algorithm (Algorithms 2–4) for All-Nearest-Neighbor and
// All-k-Nearest-Neighbor queries over a pair of spatial indexes, with the
// Local Priority Queue (LPQ) structure and the Three-Stage
// (Expand/Filter/Gather) pruning strategy built on the NXNDIST metric.
//
// The engine traverses any pair of indexes implementing index.Tree; run
// over two MBRQTs it is the paper's MBA, over two R*-trees it is RBA.
// All distances are squared internally (comparisons are order-preserving
// and the square roots are paid only when results are emitted).
package core

import (
	"errors"
	"fmt"
	"math"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/obs"
)

// ErrInvalidOptions is wrapped by every Options validation failure, so
// callers can classify configuration errors with errors.Is.
var ErrInvalidOptions = errors.New("invalid options")

// Metric selects the pruning upper bound used between an owner MBR M (from
// the query index) and a candidate MBR N (from the target index).
type Metric uint8

const (
	// NXNDist is the paper's MINMAXMINDIST: the distance within which
	// every point of M is guaranteed a nearest neighbor inside N.
	NXNDist Metric = iota
	// MaxMaxDist is the traditional, looser bound used by prior work.
	MaxMaxDist
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case NXNDist:
		return "NXNDIST"
	case MaxMaxDist:
		return "MAXMAXDIST"
	default:
		return "UNKNOWN"
	}
}

// BoundSq evaluates the squared metric between two MBRs.
func (m Metric) BoundSq(owner, candidate geom.Rect) float64 {
	if m == MaxMaxDist {
		return geom.MaxDistSq(owner, candidate)
	}
	return geom.NXNDistSq(owner, candidate)
}

// Traversal selects how the FIFO queues of LPQs are processed.
type Traversal uint8

const (
	// DepthFirst recursively descends into each child LPQ before its
	// siblings' children (the paper's ANN-DFBI; minimal memory, best
	// locality).
	DepthFirst Traversal = iota
	// BreadthFirst drains a single global queue level by level. Provided
	// as an ablation of the paper's design choice.
	BreadthFirst
)

// String implements fmt.Stringer.
func (t Traversal) String() string {
	if t == BreadthFirst {
		return "breadth-first"
	}
	return "depth-first"
}

// KBound selects the AkNN pruning bound maintained by each LPQ.
type KBound uint8

const (
	// KBoundKth bounds the k-th NN distance by the k-th smallest MAXD
	// among entries ever enqueued — each entry roots a distinct subtree
	// guaranteeing at least one point within its MAXD. Tighter; default.
	KBoundKth KBound = iota
	// KBoundMaxAll is the paper's formulation: once at least k entries
	// have been seen, the maximum MAXD is an upper bound. Looser;
	// provided for ablation.
	KBoundMaxAll
)

// Options configures an ANN/AkNN execution. The zero value runs ANN (k=1)
// with NXNDIST pruning and depth-first traversal — the paper's MBA/RBA
// configuration.
type Options struct {
	// K is the number of neighbors per query object (0 means 1).
	K int
	// Metric is the pruning upper bound (default NXNDist).
	Metric Metric
	// Traversal orders the LPQ processing (default DepthFirst).
	Traversal Traversal
	// KBound selects the AkNN bound strategy (default KBoundKth).
	KBound KBound
	// ExcludeSelf skips the result pairing an object with itself (same
	// ObjectID); use it when R and S are the same dataset. Internally the
	// engine searches one extra neighbor so that pruning stays sound.
	ExcludeSelf bool
	// VolatileBounds selects the paper's literal LPQ bound maintenance:
	// the bound derives from the *current* queue members only, so it
	// loosens when members are dequeued. By default the engine instead
	// folds the bound with min over time so that it never loosens —
	// sound, because the true k-NN distance is a property of the data and
	// any bound value once valid stays valid. The volatile variant is
	// where a loose metric (MAXMAXDIST) keeps hurting after dequeues; it
	// exists for ablation.
	VolatileBounds bool
	// PerObjectGather selects the paper's literal leaf handling: each
	// query object's Gather Stage individually re-expands whatever
	// candidate nodes remain above object level. By default the engine
	// instead drains candidates to object level once per I_R leaf and
	// shares the expansions across all of the leaf's object LPQs,
	// maximising the synchronized-traversal locality the paper argues
	// for. The literal variant exists for ablation.
	PerObjectGather bool
	// Parallelism is the number of worker goroutines draining independent
	// subtrees of the query index concurrently. 0 and 1 run the serial
	// engine (the zero value stays the paper's configuration); higher
	// values expand the first level(s) of I_R serially and hand each
	// resulting LPQ subtree to a worker. Only the depth-first traversal
	// parallelises; combining Parallelism > 1 with BreadthFirst is a
	// configuration error and Run rejects it (a single global level queue
	// has no independent subtrees to hand out, and silently running
	// serially would misreport the requested concurrency). Workers read
	// I_S through the shared storage.BufferPool, which is safe for
	// concurrent readers.
	Parallelism int
	// OrderedEmit buffers each parallel subtree's results and releases
	// them in index traversal order, making parallel output identical to
	// the serial engine's, at the cost of buffering subtrees that finish
	// out of turn. Without it results are emitted (mutex-serialised) as
	// soon as workers produce them, in scheduling-dependent order — the
	// fastest mode. No effect when Parallelism <= 1.
	OrderedEmit bool
	// NodeCacheBytes bounds the decoded-node cache Run attaches to each
	// index that supports one (see index.NodeCacher): 0 selects
	// index.DefaultNodeCacheBytes, a positive value is the budget in
	// bytes, and a negative value (NodeCacheDisabled) detaches the cache
	// so every expansion decodes from the buffer pool — the configuration
	// the paper-reproduction experiments use, since cache hits bypass the
	// pool and would distort the reproduced I/O counts. The cache changes
	// only the cost of expansion, never the traversal: probe/expansion
	// counters in Stats are identical with and without it.
	NodeCacheBytes int64
	// Tracer, when non-nil, records the query's lifecycle as spans —
	// setup/seed/traverse, the per-LPQ Expand/Filter/Gather stages,
	// parallel worker and subtree lifetimes, plus buffer-pool reads and
	// node-cache fetches (wired for the duration of the run). Export the
	// trace with Tracer.WriteJSON and open it in Perfetto. Nil (the
	// default) records nothing and costs one nil check per stage.
	Tracer *obs.Tracer
	// Registry, when non-nil, receives engine observations that only
	// exist mid-run (currently the per-subtree drain-time histogram of
	// the parallel executor, "engine.subtree_nanos"). Final counters are
	// published by RunReport, not Run.
	Registry *obs.Registry
	// Sched, when non-nil, accumulates the execution's scheduling and
	// batch-kernel activity (see SchedStats). Unlike Stats these numbers
	// are not invariant across serial and parallel execution — steal and
	// split counts depend on timing — which is why they live outside
	// Stats and its parity guarantees. RunReport sets this to collect
	// QueryReport.Sched.
	Sched *SchedStats

	// Epsilon, when positive, runs the query in (1+ε)-approximate mode:
	// every returned neighbor distance is guaranteed to be at most (1+ε)
	// times the true k-th nearest-neighbor distance. The factor is split
	// across the engine's two pruning layers (candidate admission against
	// LPQ bounds and Gather-Stage termination against the best distance
	// found), each inflated by sqrt(1+ε) in distance terms so the composed
	// error stays within (1+ε) — see DESIGN.md §14. Zero (the default) is
	// exact, byte-identical to a build without the knob: the approximate
	// comparisons are gated behind a single equality check and introduce
	// no floating-point operations on the exact path. Result cardinality
	// never changes — only which neighbors are reported. Negative, NaN or
	// infinite values are rejected with ErrInvalidOptions.
	Epsilon float64
	// RecallTarget, when in (0,1), enables the recall-targeted leaf
	// selector: in each shared leaf join, the ceil(RecallTarget x owners)
	// query objects with the tightest admission bounds are served exactly,
	// and the remaining stragglers — whose wide bounds would otherwise
	// force every far candidate through the distance kernel for the whole
	// leaf — are excluded from the leaf's shared prefilter and subtree
	// cut-off bound. Stragglers still admit every candidate surviving the
	// tighter prefilter (and still return their full k results; owners not
	// yet holding k candidates are never selected), so per leaf at least a
	// RecallTarget fraction of objects get results identical to the exact
	// drain — the recall floor, by construction, when Epsilon == 0; with
	// Epsilon > 0 the floor applies to the (1+ε)-approximate results
	// instead. The target also arms the leaf drain's stopping rule: once
	// every owner holds k candidates and (owners x k)/(1-RecallTarget)
	// consecutive committed candidates produce no admission anywhere, the
	// rest of the leaf's candidate stream is abandoned — the observed
	// marginal admission rate has fallen below the tolerated 1-rt per
	// result slot. The stop is a calibrated heuristic, not a per-leaf
	// guarantee; the straggler floor plus the calibration keep measured
	// recall at or above the target across the recall-harness property
	// matrix. 0 (the default) and 1 disable the selector. Values outside
	// (0,1] — and combining the selector with the PerObjectGather
	// ablation, which has no shared leaf join to select within — are
	// rejected with ErrInvalidOptions.
	RecallTarget float64

	// BoundSeedSq, when non-nil, seeds each query object's LPQ admission
	// bound with the given squared distance, indexed by ObjectID. A seed
	// must be an upper bound on the object's true k-th neighbor distance
	// (squared) or neighbors beyond the seed are silently lost — the
	// engine takes the min of the seed and the inherited traversal bound.
	// This is the verification-pass hook of the two-pass approximate
	// pipeline (a pilot pass estimates per-object bounds, the seeded pass
	// re-runs with them); it is also usable directly by callers that know
	// domain bounds. Nil (the default) changes nothing.
	BoundSeedSq []float64

	// timings, when non-nil, receives the per-stage wall-time breakdown.
	// Set by RunReport; stage clocks cost two time.Now() calls per LPQ
	// when enabled and nothing when nil.
	timings *Timings
}

// NodeCacheDisabled disables the decoded-node cache when assigned to
// Options.NodeCacheBytes.
const NodeCacheDisabled int64 = -1

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 1
	}
	return o
}

// validate rejects semantically invalid knob combinations. Every failure
// wraps ErrInvalidOptions.
func (o Options) validate() error {
	if math.IsNaN(o.Epsilon) || math.IsInf(o.Epsilon, 0) || o.Epsilon < 0 {
		return fmt.Errorf("core: %w: Epsilon must be finite and >= 0, got %v", ErrInvalidOptions, o.Epsilon)
	}
	if o.RecallTarget != 0 {
		if math.IsNaN(o.RecallTarget) || o.RecallTarget < 0 || o.RecallTarget > 1 {
			return fmt.Errorf("core: %w: RecallTarget must be in (0,1] (0 means exact), got %v", ErrInvalidOptions, o.RecallTarget)
		}
		if o.RecallTarget < 1 && o.PerObjectGather {
			return fmt.Errorf("core: %w: RecallTarget requires the shared leaf join (the PerObjectGather ablation has no leaf selector)", ErrInvalidOptions)
		}
	}
	return nil
}

// approxShrink is the multiplier applied to squared pruning bounds at
// each of the two approximate pruning layers. Squared distances compare
// like distances, so shrinking a squared bound by 1/(1+ε) inflates the
// effective prune test by sqrt(1+ε) in distance terms; the two layers
// compose to at most (1+ε). Exactly 1 when the query is exact — the
// engine gates every approximate comparison behind shrink != 1.
func (o Options) approxShrink() float64 {
	if o.Epsilon <= 0 {
		return 1
	}
	return 1 / (1 + o.Epsilon)
}

// effectiveK is the number of neighbors actually gathered per object.
func (o Options) effectiveK() int {
	k := o.K
	if o.ExcludeSelf {
		k++
	}
	return k
}

// Neighbor is one neighbor of a query object.
type Neighbor struct {
	Object index.ObjectID
	Point  geom.Point
	Dist   float64
}

// Result groups the neighbors found for one query object. For ANN (k=1)
// Neighbors has exactly one element (unless the target set is smaller).
type Result struct {
	Object    index.ObjectID
	Point     geom.Point
	Neighbors []Neighbor
}

// Stats counts the work performed by one execution. The paper's CPU-cost
// differences between metrics and indexes show up directly in
// DistanceCalcs and the enqueue/prune counters.
type Stats struct {
	// DistanceCalcs counts (MIND, MAXD) evaluations between an owner and
	// a candidate entry — the Distances() calls of Algorithm 4.
	DistanceCalcs uint64
	// LPQsCreated counts LPQ allocations (one per unique I_R entry reached).
	LPQsCreated uint64
	// Enqueued counts entries accepted into some LPQ.
	Enqueued uint64
	// PrunedOnProbe counts candidates rejected by MIND > bound at probe time.
	PrunedOnProbe uint64
	// PrunedByFilter counts queued entries truncated by the Filter Stage.
	PrunedByFilter uint64
	// NodesExpandedR / NodesExpandedS count index node expansions.
	NodesExpandedR uint64
	NodesExpandedS uint64
	// Results counts emitted result rows (one per R object).
	Results uint64
	// NodeCacheHits / NodeCacheMisses count decoded-node cache lookups
	// made during this execution (zero when the cache is disabled or the
	// indexes do not support one). A hit serves an Expand without pool
	// I/O or decoding.
	NodeCacheHits   uint64
	NodeCacheMisses uint64
	// PrunedSubtrees / PrunedEntries count queued candidate subtrees
	// (node entries) and candidate objects discarded wholesale by a
	// terminal early-stop — a drain or Gather-Stage cut that throws away
	// the rest of a MIND-ordered queue at once, as opposed to the
	// per-candidate rejections in PrunedOnProbe/PrunedByFilter. Non-zero
	// for exact queries too (the exact cuts are counted the same way);
	// the approximate mode's effect shows up as the delta against an
	// exact run of the same query.
	PrunedSubtrees uint64
	PrunedEntries  uint64
	// LPQEarlyTerms counts terminal cuts attributable to the approximate
	// mode: Expand/Gather stops that fired strictly earlier than the
	// exact comparison would have, plus recall-target leaf-selector
	// stops. Always zero for an exact query.
	LPQEarlyTerms uint64
}

// Add accumulates other into s. The parallel executor gives each worker a
// private Stats and folds them into the caller's at the end, so counter
// totals are identical to a serial run of the same query.
func (s *Stats) Add(other Stats) {
	s.DistanceCalcs += other.DistanceCalcs
	s.LPQsCreated += other.LPQsCreated
	s.Enqueued += other.Enqueued
	s.PrunedOnProbe += other.PrunedOnProbe
	s.PrunedByFilter += other.PrunedByFilter
	s.NodesExpandedR += other.NodesExpandedR
	s.NodesExpandedS += other.NodesExpandedS
	s.Results += other.Results
	s.NodeCacheHits += other.NodeCacheHits
	s.NodeCacheMisses += other.NodeCacheMisses
	s.PrunedSubtrees += other.PrunedSubtrees
	s.PrunedEntries += other.PrunedEntries
	s.LPQEarlyTerms += other.LPQEarlyTerms
}

// SchedStats counts the parallel executor's scheduling decisions and the
// leaf join's batch-kernel throughput. It is diagnostic, not semantic:
// Tasks/Steals/Splits vary run to run with goroutine timing, and the
// kernel counters depend on batching boundaries — so none of this
// belongs in Stats, whose serial/parallel parity is tested. A serial run
// reports zero Tasks/Steals/Splits and whatever kernel batching the leaf
// join performed.
type SchedStats struct {
	// Tasks counts subtree tasks drained to completion by workers
	// (frontier subtrees plus split-produced children; splits themselves
	// are counted separately).
	Tasks uint64 `json:"tasks"`
	// Steals counts tasks a worker took from another worker's deque.
	Steals uint64 `json:"steals"`
	// Splits counts oversized subtree tasks re-expanded into child tasks
	// instead of being drained in place.
	Splits uint64 `json:"splits"`
	// KernelBlocks / KernelPairs count batch distance-kernel invocations
	// and the owner x candidate pairs they evaluated.
	KernelBlocks uint64 `json:"kernel_blocks"`
	KernelPairs  uint64 `json:"kernel_pairs"`
	// KernelEarlyOuts counts owner x candidate pairs the batch kernel
	// abandoned early because the partial sum crossed the owner's bound
	// snapshot. It lives here rather than in Stats because the snapshot
	// is taken per tile: batching boundaries (and, under the parallel
	// executor, subtree splits) move it, so the count is diagnostic, not
	// parity-guaranteed.
	KernelEarlyOuts uint64 `json:"kernel_early_outs"`
}

// Add accumulates other into s (workers keep private SchedStats, merged
// like Stats).
func (s *SchedStats) Add(other SchedStats) {
	s.Tasks += other.Tasks
	s.Steals += other.Steals
	s.Splits += other.Splits
	s.KernelBlocks += other.KernelBlocks
	s.KernelPairs += other.KernelPairs
	s.KernelEarlyOuts += other.KernelEarlyOuts
}

// AddTo accumulates the scheduling counters into a metrics registry
// under the "engine" family (see DESIGN.md §10).
func (s SchedStats) AddTo(r *obs.Registry) {
	r.Counter("engine.sched_tasks").Add(s.Tasks)
	r.Counter("engine.sched_steals").Add(s.Steals)
	r.Counter("engine.sched_splits").Add(s.Splits)
	r.Counter("engine.kernel_blocks").Add(s.KernelBlocks)
	r.Counter("engine.kernel_pairs").Add(s.KernelPairs)
	r.Counter("engine.prune_kernel_early_outs").Add(s.KernelEarlyOuts)
}

// AddTo accumulates the execution's counters into a metrics registry
// under the "engine" family. The metric names are the stable external
// form of Stats (see DESIGN.md §10).
func (s Stats) AddTo(r *obs.Registry) {
	r.Counter("engine.distance_calcs").Add(s.DistanceCalcs)
	r.Counter("engine.lpqs_created").Add(s.LPQsCreated)
	r.Counter("engine.enqueued").Add(s.Enqueued)
	r.Counter("engine.pruned_on_probe").Add(s.PrunedOnProbe)
	r.Counter("engine.pruned_by_filter").Add(s.PrunedByFilter)
	r.Counter("engine.nodes_expanded_r").Add(s.NodesExpandedR)
	r.Counter("engine.nodes_expanded_s").Add(s.NodesExpandedS)
	r.Counter("engine.results").Add(s.Results)
	r.Counter("engine.node_cache_hits").Add(s.NodeCacheHits)
	r.Counter("engine.node_cache_misses").Add(s.NodeCacheMisses)
	r.Counter("engine.prune_subtrees").Add(s.PrunedSubtrees)
	r.Counter("engine.prune_entries").Add(s.PrunedEntries)
	r.Counter("engine.prune_lpq_early_terms").Add(s.LPQEarlyTerms)
}

var infinity = math.Inf(1)
