package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
)

// joinOutcome captures everything observable about a leaf join run: the
// work counters, every owner's surviving queue contents (object ids and
// exact distance bits), and the final per-owner bounds.
type joinOutcome struct {
	stats  Stats
	queues [][]lpqItem
	bounds []float64
}

// runLeafJoin replays one leaf-join scenario — a fixed owner set and a
// fixed sequence of candidate batches — through either the batch kernel
// path (add/probeAll + flush) or the scalar reference path (probeOne per
// candidate). The batch path deliberately defers its final flush to the
// end, maximising prefilter staleness; the commit pass must still
// reproduce the scalar decisions exactly.
func runLeafJoin(owners []index.Entry, leafOwner *index.Entry, inherited []float64,
	k int, batches [][]index.Entry, asLeaf []bool, batch bool) joinOutcome {

	var stats Stats
	lpqcs := make([]*lpq, len(owners))
	for i := range owners {
		lpqcs[i] = newLPQ(&owners[i], inherited[i], k, KBoundKth, true, 1, &stats)
	}
	q := newLPQ(leafOwner, math.Inf(1), k, KBoundKth, true, 1, &stats)

	dim := len(owners[0].Point)
	j := &leafJoin{}
	j.reset(dim, q, lpqcs, &stats, nil)
	for bi, cands := range batches {
		switch {
		case !batch:
			for ci := range cands {
				j.probeOne(&cands[ci])
			}
		case asLeaf[bi]:
			j.probeAll(cands)
		default:
			for ci := range cands {
				j.add(&cands[ci])
			}
		}
	}
	if batch {
		j.flush()
	}

	out := joinOutcome{stats: stats, bounds: append([]float64(nil), j.bounds...)}
	for _, c := range lpqcs {
		out.queues = append(out.queues, append([]lpqItem(nil), c.items[c.head:]...))
	}
	j.finish()
	return out
}

// TestBatchLeafJoinMatchesScalar is the property test for the batch
// kernel path: on random leaves (random owner counts, bounds, dimensions
// and candidate streams, including streams long enough to force mid-batch
// tile flushes) the batch path must produce bit-identical distances,
// identical queue contents, identical bounds and identical Stats to the
// scalar probeOne path.
func TestBatchLeafJoinMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for _, dim := range []int{2, 3, 7} {
		for _, k := range []int{1, 3} {
			for trial := 0; trial < 25; trial++ {
				m := 1 + rng.Intn(70)
				owners := make([]index.Entry, m)
				lo := make(geom.Point, dim)
				hi := make(geom.Point, dim)
				for d := 0; d < dim; d++ {
					lo[d], hi[d] = math.Inf(1), math.Inf(-1)
				}
				for i := range owners {
					p := make(geom.Point, dim)
					for d := 0; d < dim; d++ {
						p[d] = rng.Float64()
						if p[d] < lo[d] {
							lo[d] = p[d]
						}
						if p[d] > hi[d] {
							hi[d] = p[d]
						}
					}
					owners[i] = index.Entry{Kind: index.ObjectEntry, Object: index.ObjectID(i),
						Point: p, MBR: geom.Rect{Lo: p, Hi: p}, Count: 1}
				}
				leafOwner := &index.Entry{Kind: index.NodeEntry, MBR: geom.Rect{Lo: lo, Hi: hi},
					Count: uint32(m)}
				inherited := make([]float64, m)
				for i := range inherited {
					switch rng.Intn(3) {
					case 0:
						inherited[i] = math.Inf(1)
					case 1:
						inherited[i] = 0.05 + 0.1*rng.Float64()
					default:
						inherited[i] = 0.5 + rng.Float64()
					}
				}

				nBatches := 1 + rng.Intn(4)
				batches := make([][]index.Entry, nBatches)
				asLeaf := make([]bool, nBatches)
				id := 1000
				for bi := range batches {
					n := 1 + rng.Intn(2*geom.BlockCandTile)
					cands := make([]index.Entry, n)
					for ci := range cands {
						p := make(geom.Point, dim)
						for d := 0; d < dim; d++ {
							if rng.Intn(4) == 0 {
								p[d] = rng.Float64() * 10 // far: exercises the prefilter
							} else {
								p[d] = rng.Float64()
							}
						}
						cands[ci] = index.Entry{Kind: index.ObjectEntry, Object: index.ObjectID(id),
							Point: p, MBR: geom.Rect{Lo: p, Hi: p}, Count: 1}
						id++
					}
					batches[bi] = cands
					asLeaf[bi] = rng.Intn(2) == 0
				}

				scalar := runLeafJoin(owners, leafOwner, inherited, k, batches, asLeaf, false)
				batched := runLeafJoin(owners, leafOwner, inherited, k, batches, asLeaf, true)

				if scalar.stats != batched.stats {
					t.Fatalf("dim=%d k=%d trial=%d: stats differ:\nscalar: %+v\nbatch:  %+v",
						dim, k, trial, scalar.stats, batched.stats)
				}
				if !reflect.DeepEqual(scalar.bounds, batched.bounds) {
					t.Fatalf("dim=%d k=%d trial=%d: bounds differ", dim, k, trial)
				}
				for i := range scalar.queues {
					sq, bq := scalar.queues[i], batched.queues[i]
					if len(sq) != len(bq) {
						t.Fatalf("dim=%d k=%d trial=%d owner=%d: queue lengths %d vs %d",
							dim, k, trial, i, len(sq), len(bq))
					}
					for x := range sq {
						if sq[x].e.Object != bq[x].e.Object || sq[x].mind != bq[x].mind || sq[x].maxd != bq[x].maxd {
							t.Fatalf("dim=%d k=%d trial=%d owner=%d item=%d: %v/%v vs %v/%v",
								dim, k, trial, i, x, sq[x].e.Object, sq[x].mind, bq[x].e.Object, bq[x].mind)
						}
					}
				}
			}
		}
	}
}
