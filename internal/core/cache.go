package core

import (
	"allnn/internal/index"
	"allnn/internal/nodecache"
)

// setupNodeCaches attaches (or detaches) decoded-node caches on the two
// indexes according to Options.NodeCacheBytes and returns the distinct
// caches in use, so Run can report per-execution hit/miss deltas. A
// self-join passes the same tree twice and therefore yields one cache.
//
// readers is the expected number of concurrent readers (the run's
// Parallelism); a parallel run sizes the cache's shard count so workers
// do not serialise on one shard lock. Attachment is idempotent: a tree
// keeps its cache (and its warm contents) across runs as long as the
// budget does not change and the shard count still covers the readers,
// which is what makes steady-state Collect calls allocation-free.
func setupNodeCaches(ir, is index.Tree, budget int64, readers int) []*index.NodeCache {
	var caches []*index.NodeCache
	seen := map[*index.NodeCache]bool{}
	for _, t := range []index.Tree{ir, is} {
		nc, ok := t.(index.NodeCacher)
		if !ok {
			continue
		}
		if budget < 0 {
			nc.SetNodeCache(nil)
			continue
		}
		want := budget
		if want == 0 {
			want = index.DefaultNodeCacheBytes
		}
		shards := nodecache.ShardsFor(want, readers)
		c := nc.NodeCacheRef()
		if c == nil || c.Cap() != want || c.NumShards() < shards {
			c = index.NewNodeCacheHinted(want, readers)
			nc.SetNodeCache(c)
		}
		if !seen[c] {
			seen[c] = true
			caches = append(caches, c)
		}
	}
	return caches
}

// cacheSnapshot sums the cumulative monotonic counters of the caches.
// Residency is deliberately not part of the snapshot: it is a gauge, and
// accumulating per-run residency deltas would double-count values that
// merely stayed resident.
func cacheSnapshot(caches []*index.NodeCache) nodecache.Counters {
	var ct nodecache.Counters
	for _, c := range caches {
		ct.Add(c.Counters())
	}
	return ct
}

// addCacheDelta folds the per-run change between two snapshots into the
// execution's Stats.
func addCacheDelta(stats *Stats, before, after nodecache.Counters) {
	stats.NodeCacheHits += after.Hits - before.Hits
	stats.NodeCacheMisses += after.Misses - before.Misses
}
